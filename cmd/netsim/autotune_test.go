package main

// CLI battery for -autotune: flag validation, the static pick on
// single-shot and recovery runs, the live-switch demonstration under
// an injected fault plan, determinism, and cache behaviour.

import (
	"strings"
	"testing"
)

// autotuneTrafficDemo is the pinned live-switch demonstration: a
// 16x16 mesh serving k=32 multicasts under a 3% dead-link plan. The
// surface trains healthy and picks OPT; observed repair-inflated
// latencies then drift the crossover and the policy switches live.
func autotuneTrafficDemo() options {
	return options{
		topo: "mesh", w: 16, h: 16, nodes: 128, policy: "straight",
		algo: "opt", k: 32, bytes: 4096, seed: 1,
		faults: 3, faultSeed: 1,
		traffic: true, rate: 200, arrival: "poisson", admission: "fifo",
		autotune: true,
	}
}

func TestAutotuneHeatmapRejected(t *testing.T) {
	o := base()
	o.autotune, o.heatmap = true, true
	_, err := capture(t, func() error { return run(o) })
	if err == nil || !strings.Contains(err.Error(), "-heatmap") || !strings.Contains(err.Error(), "-autotune") {
		t.Fatalf("want a clear -autotune/-heatmap coupling error, got %v", err)
	}
}

func TestAutotuneChurnRejected(t *testing.T) {
	o := base()
	o.autotune, o.churn = true, true
	o.churnRate, o.rejoinFrac, o.repairPolicy = 400, 0.5, "incr"
	_, err := capture(t, func() error { return run(o) })
	if err == nil || !strings.Contains(err.Error(), "-autotune") || !strings.Contains(err.Error(), "-churn") {
		t.Fatalf("want a clear -autotune/-churn coupling error, got %v", err)
	}
}

// TestAutotunePlainPick: single-shot mode trains the surface, reports
// the per-candidate means and the pick, then runs the picked tree.
func TestAutotunePlainPick(t *testing.T) {
	o := base()
	o.autotune = true
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"training surface on the healthy fabric",
		"binomial", "opt-tree", "opt",
		"picks", "multicast latency:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	again, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	if again != out {
		t.Fatalf("autotune rerun diverged:\nfirst:\n%s\nsecond:\n%s", out, again)
	}
}

// TestAutotuneRecoverSelects: with -recover the policy's pick enters
// through recover.Config.Select, below the fallback ladder.
func TestAutotuneRecoverSelects(t *testing.T) {
	o := base()
	o.autotune, o.recover = true, true
	o.faults, o.faultSeed = 3, 2
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"picks", "completion latency:", "delivered:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestAutotuneLiveSwitchUnderFaults: the acceptance demo — under an
// injected fault plan the online policy must record at least one live
// algorithm switch, and the whole run must replay identically.
func TestAutotuneLiveSwitchUnderFaults(t *testing.T) {
	o := autotuneTrafficDemo()
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "live switches:") {
		t.Fatalf("no switch report in output:\n%s", out)
	}
	if strings.Contains(out, "live switches:       0 ") {
		t.Fatalf("demo configuration recorded no live switch:\n%s", out)
	}
	if !strings.Contains(out, " -> ") {
		t.Fatalf("switch log lines missing:\n%s", out)
	}
	if !strings.Contains(out, "recalibrated t_end:") || !strings.Contains(out, "drift:") {
		t.Fatalf("recalibration report missing:\n%s", out)
	}
	again, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	if again != out {
		t.Fatalf("tuned traffic rerun diverged:\nfirst:\n%s\nsecond:\n%s", out, again)
	}
}

// TestAutotuneTrafficCacheRoundTrip: a cached tuned rerun replays the
// service metrics and the per-request selection counts exactly; only
// the live-policy diagnostics (switch log, drift) need a live run.
func TestAutotuneTrafficCacheRoundTrip(t *testing.T) {
	o := autotuneTrafficDemo()
	o.cacheDir = t.TempDir()
	live, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	cached, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	cut := func(s string) string {
		i := strings.Index(s, "live switches:")
		if i < 0 {
			return s
		}
		return s[:i]
	}
	if cut(cached) != cut(live) {
		t.Fatalf("cached tuned rerun differs before the live-only diagnostics:\nlive:\n%s\ncached:\n%s", live, cached)
	}
	if !strings.Contains(cached, "autotune selections:") {
		t.Fatalf("cached rerun lost the selection counts:\n%s", cached)
	}
	if strings.Contains(cached, "live switches:") {
		t.Fatalf("cached rerun fabricated live-policy diagnostics:\n%s", cached)
	}
}
