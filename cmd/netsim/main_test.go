package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		var out []byte
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(out)
	}()
	ferr := fn()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done, ferr
}

func base() options {
	return options{
		topo: "mesh", w: 8, h: 8, nodes: 64, policy: "straight",
		algo: "opt", k: 12, bytes: 1024, seed: 3,
	}
}

func TestMeshOptContentionFree(t *testing.T) {
	out, err := capture(t, func() error { return run(base()) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "contention:          0 blocked") {
		t.Fatalf("OPT on mesh contended:\n%s", out)
	}
}

func TestAllTopologiesAndAlgos(t *testing.T) {
	for _, topo := range []string{"mesh", "bmin", "bfly"} {
		for _, algo := range []string{"opt", "opt-tree", "binomial", "sequential"} {
			o := base()
			o.topo, o.algo = topo, algo
			if _, err := capture(t, func() error { return run(o) }); err != nil {
				t.Fatalf("%s/%s: %v", topo, algo, err)
			}
		}
	}
}

func TestBMINPolicies(t *testing.T) {
	for _, pol := range []string{"straight", "dest", "adaptive", "adaptive-dest"} {
		o := base()
		o.topo, o.policy = "bmin", pol
		if _, err := capture(t, func() error { return run(o) }); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
	}
}

func TestVerboseAndTraceOutputs(t *testing.T) {
	o := base()
	o.verbose, o.gantt, o.heatmap = true, true, true
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"deliveries", "message timeline", "hottest channels", "heatmap"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHeatmapRequiresMesh(t *testing.T) {
	for _, topo := range []string{"bmin", "bfly", "torus"} {
		o := base()
		o.topo, o.heatmap = topo, true
		_, err := capture(t, func() error { return run(o) })
		if err == nil || !strings.Contains(err.Error(), "heatmap requires a 2-D mesh") {
			t.Fatalf("%s: want a clear heatmap error, got %v", topo, err)
		}
	}
}

func TestFaultFlags(t *testing.T) {
	o := base()
	o.faults, o.degraded, o.flaky, o.faultSeed = 2, 5, 5, 3
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fault plan seed=3") {
		t.Fatalf("missing fault plan summary:\n%s", out)
	}
	// Same seed, same plan, same outcome.
	again, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	if again != out {
		t.Fatalf("faulted run not reproducible:\n--- first\n%s\n--- second\n%s", out, again)
	}
}

func TestFaultsCanPartition(t *testing.T) {
	// Seed 1 kills a link whose column the detour cannot route around;
	// the run must fail fast with the unreachable diagnostic, not hang.
	o := base()
	o.faults, o.faultSeed = 2, 1
	_, err := capture(t, func() error { return run(o) })
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("want unreachable error, got %v", err)
	}
}

func TestDeadlineFlag(t *testing.T) {
	o := base()
	o.deadline = 10
	_, err := capture(t, func() error { return run(o) })
	if err == nil || !strings.Contains(err.Error(), "not complete after 10 cycles") {
		t.Fatalf("want deadline error, got %v", err)
	}
}

func TestAddrBytesFlag(t *testing.T) {
	o := base()
	o.addrB = 16
	if _, err := capture(t, func() error { return run(o) }); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverCompletesWherePlainRunFails(t *testing.T) {
	// The TestFaultsCanPartition configuration: plain mcastsim aborts with
	// an unreachable destination. Recovery must instead finish the run and
	// account for every destination.
	o := base()
	o.faults, o.faultSeed, o.recover = 2, 1, true
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatalf("recovery errored where it must complete: %v", err)
	}
	for _, want := range []string{"delivered:", "give-ups (repairs):", "policy:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in recovery report:\n%s", want, out)
		}
	}
	again, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	if again != out {
		t.Fatalf("recovered run not reproducible:\n--- first\n%s\n--- second\n%s", out, again)
	}
}

func TestRecoverVerboseStatuses(t *testing.T) {
	o := base()
	o.faults, o.faultSeed, o.recover, o.verbose = 8, 3, true, true
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cycle status") || !strings.Contains(out, "delivered") {
		t.Fatalf("verbose recovery output missing statuses:\n%s", out)
	}
}

func TestRecoverRequiresFaults(t *testing.T) {
	o := base()
	o.recover = true
	_, err := capture(t, func() error { return run(o) })
	if err == nil || !strings.Contains(err.Error(), "-recover needs something to recover from") {
		t.Fatalf("want explicit -recover/-faults coupling error, got %v", err)
	}
}

func TestFaultPercentValidation(t *testing.T) {
	for name, mut := range map[string]func(*options){
		"negative faults":   func(o *options) { o.faults = -1 },
		"faults over 100":   func(o *options) { o.faults = 101 },
		"negative degraded": func(o *options) { o.degraded = -0.5 },
		"degraded over 100": func(o *options) { o.degraded = 200 },
		"negative flaky":    func(o *options) { o.flaky = -3 },
		"flaky over 100":    func(o *options) { o.flaky = 100.5 },
	} {
		o := base()
		mut(&o)
		_, err := capture(t, func() error { return run(o) })
		if err == nil || !strings.Contains(err.Error(), "outside [0,100]") {
			t.Errorf("%s: want a range error, got %v", name, err)
		}
	}
}

func TestErrors(t *testing.T) {
	for name, mut := range map[string]func(*options){
		"bad topo":   func(o *options) { o.topo = "ring" },
		"bad algo":   func(o *options) { o.algo = "magic" },
		"bad policy": func(o *options) { o.topo, o.policy = "bmin", "zigzag" },
		"k too big":  func(o *options) { o.k = 1000 },
	} {
		o := base()
		mut(&o)
		if _, err := capture(t, func() error { return run(o) }); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestCacheRoundTripsBothPaths: a cached rerun prints the same stdout
// as the live run, for both the plain and the recovery path.
func TestCacheRoundTripsBothPaths(t *testing.T) {
	for _, rec := range []bool{false, true} {
		o := base()
		o.verbose = true
		o.cacheDir = t.TempDir()
		if rec {
			o.faults, o.faultSeed, o.recover = 3, 2, true
		}
		live, err := capture(t, func() error { return run(o) })
		if err != nil {
			t.Fatal(err)
		}
		cached, err := capture(t, func() error { return run(o) })
		if err != nil {
			t.Fatal(err)
		}
		if cached != live {
			t.Fatalf("recover=%v: cached rerun differs:\nlive:\n%s\ncached:\n%s", rec, live, cached)
		}
	}
}

func trafficBase() options {
	o := base()
	o.traffic, o.rate = true, 400
	o.arrival, o.admission = "poisson", "fifo"
	return o
}

// TestTrafficSummary: the open-system mode prints the steady-state
// service report and is reproducible run to run, across arrival
// processes and admission policies.
func TestTrafficSummary(t *testing.T) {
	for _, mut := range []func(*options){
		func(o *options) {},
		func(o *options) { o.arrival = "bursty" },
		func(o *options) { o.admission = "bounded"; o.rate = 2000 },
		func(o *options) { o.skew = 0.5 },
	} {
		o := trafficBase()
		mut(&o)
		out, err := capture(t, func() error { return run(o) })
		if err != nil {
			t.Fatalf("%+v: %v", o, err)
		}
		for _, want := range []string{
			"traffic:", "offered (measured):", "delivered:",
			"completion latency:", "queueing delay:", "occupancy:",
		} {
			if !strings.Contains(out, want) {
				t.Fatalf("missing %q in traffic summary:\n%s", want, out)
			}
		}
		again, err := capture(t, func() error { return run(o) })
		if err != nil {
			t.Fatal(err)
		}
		if again != out {
			t.Fatalf("traffic run not reproducible:\n--- first\n%s\n--- second\n%s", out, again)
		}
	}
}

// TestTrafficReliableUnderFaults: a fault plan flips the engine into
// Reliable mode and the summary reports the recovery overhead.
func TestTrafficReliableUnderFaults(t *testing.T) {
	o := trafficBase()
	o.faults, o.faultSeed = 3, 2
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "reliable delivery on") || !strings.Contains(out, "recovery:") {
		t.Fatalf("faulted traffic run missing the recovery report:\n%s", out)
	}
}

// TestTrafficValidation: malformed traffic flags fail with actionable
// errors instead of running.
func TestTrafficValidation(t *testing.T) {
	for name, tc := range map[string]struct {
		mut  func(*options)
		want string
	}{
		"zero rate":         {func(o *options) { o.rate = 0 }, "rate must be > 0"},
		"negative rate":     {func(o *options) { o.rate = -5 }, "rate must be > 0"},
		"unknown arrival":   {func(o *options) { o.arrival = "steady" }, "unknown arrival process"},
		"unknown admission": {func(o *options) { o.admission = "lifo" }, "unknown admission policy"},
		"skew over 1":       {func(o *options) { o.skew = 1.5 }, "HotFrac"},
		"bad algo":          {func(o *options) { o.algo = "magic" }, "unknown algorithm"},
	} {
		o := trafficBase()
		tc.mut(&o)
		_, err := capture(t, func() error { return run(o) })
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", name, err, tc.want)
		}
	}
}

// TestTrafficHeatmapRejected: -heatmap has no meaning over an
// open-system run and must be refused up front.
func TestTrafficHeatmapRejected(t *testing.T) {
	o := trafficBase()
	o.heatmap = true
	_, err := capture(t, func() error { return run(o) })
	if err == nil || !strings.Contains(err.Error(), "-heatmap") || !strings.Contains(err.Error(), "-traffic") {
		t.Fatalf("want a clear -heatmap/-traffic coupling error, got %v", err)
	}
}

// TestTrafficCacheRoundTrip: a cached traffic rerun prints the same
// stdout as the live run — quantiles, rates and the -v per-request log
// all survive the metric/series encoding — healthy and faulted.
func TestTrafficCacheRoundTrip(t *testing.T) {
	for _, faulted := range []bool{false, true} {
		o := trafficBase()
		o.verbose = true
		o.cacheDir = t.TempDir()
		if faulted {
			o.faults, o.faultSeed = 3, 2
		}
		live, err := capture(t, func() error { return run(o) })
		if err != nil {
			t.Fatal(err)
		}
		cached, err := capture(t, func() error { return run(o) })
		if err != nil {
			t.Fatal(err)
		}
		if cached != live {
			t.Fatalf("faulted=%v: cached traffic rerun differs:\nlive:\n%s\ncached:\n%s", faulted, live, cached)
		}
	}
}

// TestTrafficCacheKeySeparatesRates: the offered rate is part of the
// cache identity; changing it must miss, not replay.
func TestTrafficCacheKeySeparatesRates(t *testing.T) {
	o := trafficBase()
	o.cacheDir = t.TempDir()
	first, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	o.rate = 800
	second, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	if first == second {
		t.Fatal("different rates produced identical output through the cache")
	}
}

// TestCacheKeySeparatesRuns: changing an input (the placement seed)
// must miss the cache, not replay the previous run's numbers.
func TestCacheKeySeparatesRuns(t *testing.T) {
	o := base()
	o.cacheDir = t.TempDir()
	first, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	o.seed = 99
	second, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	if first == second {
		t.Fatal("different seeds produced identical output through the cache")
	}
}

func churnBase() options {
	o := base()
	o.churn, o.churnRate, o.rejoinFrac = true, 400, 0.5
	o.repairPolicy = "incr"
	return o
}

// TestChurnSummary: the churn mode prints the membership report under
// every repair policy and is reproducible run to run.
func TestChurnSummary(t *testing.T) {
	for _, pol := range []string{"full", "incr", "binom"} {
		o := churnBase()
		o.repairPolicy = pol
		out, err := capture(t, func() error { return run(o) })
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		for _, want := range []string{
			"churn:", "delivered:", "membership:", "grafts",
			"give-ups (repairs):", "policy:",
		} {
			if !strings.Contains(out, want) {
				t.Fatalf("%s: missing %q in churn summary:\n%s", pol, want, out)
			}
		}
		again, err := capture(t, func() error { return run(o) })
		if err != nil {
			t.Fatal(err)
		}
		if again != out {
			t.Fatalf("%s: churn run not reproducible:\n--- first\n%s\n--- second\n%s", pol, out, again)
		}
	}
}

// TestChurnDegreeCap: the degree-bounded planner is selectable and
// announced in the report.
func TestChurnDegreeCap(t *testing.T) {
	o := churnBase()
	o.degreeCap = 3
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fan-out cap 3") {
		t.Fatalf("degree-bounded run missing the cap report:\n%s", out)
	}
}

// TestChurnVerbosePositions: -v lists every position with its
// membership state at quiesce.
func TestChurnVerbosePositions(t *testing.T) {
	o := churnBase()
	o.verbose = true
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "positions (node: cycle state):") || !strings.Contains(out, "member") {
		t.Fatalf("verbose churn output missing positions:\n%s", out)
	}
}

// TestChurnWithChannelFaults: channel fault flags compose with the
// churn schedule in one fault plan.
func TestChurnWithChannelFaults(t *testing.T) {
	o := churnBase()
	o.faults, o.faultSeed = 3, 2
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "dead") || !strings.Contains(out, "node outages") {
		t.Fatalf("churn+faults run missing the combined plan summary:\n%s", out)
	}
}

// TestChurnCacheRoundTrip: a cached churn rerun prints the same stdout
// as the live run, -v positions included.
func TestChurnCacheRoundTrip(t *testing.T) {
	o := churnBase()
	o.verbose = true
	o.cacheDir = t.TempDir()
	live, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	cached, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	if cached != live {
		t.Fatalf("cached churn rerun differs:\nlive:\n%s\ncached:\n%s", live, cached)
	}
}

// TestChurnCacheKeySeparatesPolicies: the repair policy is part of the
// cache identity; changing it must miss, not replay.
func TestChurnCacheKeySeparatesPolicies(t *testing.T) {
	o := churnBase()
	o.cacheDir = t.TempDir()
	o.churnRate = 3200 // hot enough that the policies actually diverge
	first, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	o.repairPolicy = "binom"
	second, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	if first == second {
		t.Fatal("different repair policies produced identical output through the cache")
	}
}

// TestChurnValidation: malformed churn flags fail with actionable
// errors instead of running.
func TestChurnValidation(t *testing.T) {
	for name, tc := range map[string]struct {
		mut  func(*options)
		want string
	}{
		"bad policy":     {func(o *options) { o.repairPolicy = "magic" }, "unknown repair policy"},
		"negative rate":  {func(o *options) { o.churnRate = -1 }, "churn-rate"},
		"rejoin over 1":  {func(o *options) { o.rejoinFrac = 1.5 }, "-rejoin"},
		"negative cap":   {func(o *options) { o.degreeCap = -2 }, "degree-cap"},
		"bad algo":       {func(o *options) { o.algo = "magic" }, "unknown algorithm"},
		"pool overflows": {func(o *options) { o.k = 64 }, "joiner pool exceeds fabric"},
		"with traffic":   {func(o *options) { o.traffic = true; o.rate = 400; o.arrival, o.admission = "poisson", "fifo" }, "pick one"},
	} {
		o := churnBase()
		tc.mut(&o)
		_, err := capture(t, func() error { return run(o) })
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", name, err, tc.want)
		}
	}
}
