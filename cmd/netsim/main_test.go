package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		var out []byte
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(out)
	}()
	ferr := fn()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done, ferr
}

func base() options {
	return options{
		topo: "mesh", w: 8, h: 8, nodes: 64, policy: "straight",
		algo: "opt", k: 12, bytes: 1024, seed: 3,
	}
}

func TestMeshOptContentionFree(t *testing.T) {
	out, err := capture(t, func() error { return run(base()) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "contention:          0 blocked") {
		t.Fatalf("OPT on mesh contended:\n%s", out)
	}
}

func TestAllTopologiesAndAlgos(t *testing.T) {
	for _, topo := range []string{"mesh", "bmin", "bfly"} {
		for _, algo := range []string{"opt", "opt-tree", "binomial", "sequential"} {
			o := base()
			o.topo, o.algo = topo, algo
			if _, err := capture(t, func() error { return run(o) }); err != nil {
				t.Fatalf("%s/%s: %v", topo, algo, err)
			}
		}
	}
}

func TestBMINPolicies(t *testing.T) {
	for _, pol := range []string{"straight", "dest", "adaptive", "adaptive-dest"} {
		o := base()
		o.topo, o.policy = "bmin", pol
		if _, err := capture(t, func() error { return run(o) }); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
	}
}

func TestVerboseAndTraceOutputs(t *testing.T) {
	o := base()
	o.verbose, o.gantt, o.heatmap = true, true, true
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"deliveries", "message timeline", "hottest channels", "heatmap"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHeatmapRequiresMesh(t *testing.T) {
	o := base()
	o.topo, o.heatmap = "bfly", true
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "only available for mesh") {
		t.Fatalf("missing mesh-only note:\n%s", out)
	}
}

func TestAddrBytesFlag(t *testing.T) {
	o := base()
	o.addrB = 16
	if _, err := capture(t, func() error { return run(o) }); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	for name, mut := range map[string]func(*options){
		"bad topo":   func(o *options) { o.topo = "ring" },
		"bad algo":   func(o *options) { o.algo = "magic" },
		"bad policy": func(o *options) { o.topo, o.policy = "bmin", "zigzag" },
		"k too big":  func(o *options) { o.k = 1000 },
	} {
		o := base()
		mut(&o)
		if _, err := capture(t, func() error { return run(o) }); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
