package main

// Online auto-tuning for netsim: train a small crossover surface on
// the healthy fabric (the same calibration discipline as the t_end
// measurement), compile it, and let a tuner.Policy pick the multicast
// algorithm — statically for single-shot runs, per request (with
// drift-driven live switching) under -traffic.

import (
	"fmt"
	"os"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/mcastsim"
	"repro/internal/model"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/tuner"
	"repro/internal/wormhole"
)

// Fixed shape of the CLI training sweep: placements per candidate and
// the drift window of the online policy. Small on purpose — the
// surface is rebuilt per invocation (and cached per cell), so training
// must stay interactive.
const (
	autotuneTrials = 3
	autotuneWindow = 4
)

// autotuneNames is the candidate vocabulary, in surface index order.
// The tie-break prefers binomial: with equal measured latency the
// topology-blind tree is the safer pick under drift.
var autotuneNames = []string{"binomial", "opt-tree", "opt"}

// autotuneAlgos binds the candidate names to their executable form on
// this fabric's chain order.
func autotuneAlgos(less func(a, b int) bool) []tuner.Algo {
	return []tuner.Algo{
		{Name: "binomial", Ordered: true, Table: func(k int, _, _ model.Time) core.SplitTable {
			return core.BinomialTable{Max: k}
		}},
		{Name: "opt-tree", Ordered: false, Table: func(k int, thold, tend model.Time) core.SplitTable {
			return core.NewOptTable(k, thold, tend)
		}},
		{Name: "opt", Ordered: true, Table: func(k int, thold, tend model.Time) core.SplitTable {
			return core.NewOptTable(k, thold, tend)
		}},
	}
}

// buildAutotunePolicy measures every candidate algorithm on the
// healthy fabric over autotuneTrials seeded placements, compiles the
// one-point crossover surface and wraps it in an online policy.
// Training cells go through the result cache when one is configured,
// so repeated invocations retrain for free.
func buildAutotunePolicy(o options, platform string, topo wormhole.Topology,
	less func(a, b int) bool, n int,
	soft model.Software, thold, tend model.Time, cfg wormhole.Config,
	cache *runner.Cache) (*tuner.Policy, error) {
	runCfg := mcastsim.Config{Software: soft, AddrBytes: o.addrB, MaxCycles: o.deadline}
	algos := autotuneAlgos(less)
	surf := tuner.New(platform, autotuneNames, []int{o.k}, []int{o.bytes}, []int{0})

	fmt.Printf("autotune:            training surface on the healthy fabric (%d placements per algorithm)\n", autotuneTrials)
	for ai, a := range algos {
		sum, cnt := 0.0, 0
		for tr := 0; tr < autotuneTrials; tr++ {
			seed := o.seed + uint64(tr)
			addrs := sim.NewRNG(seed).Sample(n, o.k)
			var ch chain.Chain
			if a.Ordered {
				ch = chain.New(addrs, less)
			} else {
				ch = chain.Unordered(addrs)
			}
			root, _ := ch.Index(addrs[0])
			key := runner.Key{
				Mode: "netsim", Platform: platform, Algo: a.Name, Soft: softwareKey(soft),
				K: o.k, Bytes: o.bytes, Seed: seed, AddrBytes: o.addrB, THold: thold, TEnd: tend,
				Extra: fmt.Sprintf("autotune=train,deadline=%d", o.deadline),
			}
			lat, hit := int64(0), false
			if cache != nil {
				cr, ok, cerr := cache.Load(key)
				if cerr != nil {
					return nil, cerr
				}
				if ok {
					lat, hit = int64(cr.Metric("latency")), true
				}
			}
			if !hit {
				res, err := mcastsim.Run(wormhole.New(topo, cfg), a.Table(o.k, thold, tend), ch, root, o.bytes, runCfg)
				if err != nil {
					return nil, err
				}
				lat = res.Latency
				if cache != nil {
					if err := cache.Store(key, mcastToCache(res)); err != nil {
						return nil, err
					}
				}
			}
			sum += float64(lat)
			cnt++
		}
		surf.Set(0, 0, 0, ai, sum/float64(cnt))
		fmt.Printf("autotune:              %-9s mean %.0f cycles\n", a.Name, sum/float64(cnt))
	}
	if err := surf.Compile(); err != nil {
		return nil, err
	}
	pol, err := tuner.NewPolicy(surf, algos, tuner.PolicyConfig{Window: autotuneWindow})
	if err != nil {
		return nil, err
	}
	fmt.Printf("autotune:            surface %s picks %s for k=%d, %d-byte messages\n",
		surf.Hash()[:12], pol.Name(pol.PickFor(o.k, o.bytes)), o.k, o.bytes)
	return pol, nil
}

// printAutotuneTraffic reports what the online selector did during a
// tuned traffic run: per-algorithm request counts from the service
// records, then (live runs only — a cache hit replays no policy state)
// the recorded switches, the drift windows and the recalibrated
// parameter estimates.
func printAutotuneTraffic(o options, pol *tuner.Policy, reqs []traffic.RequestResult, hit bool, tend model.Time) {
	counts := make([]int, len(autotuneNames))
	for _, rr := range reqs {
		if rr.Algo >= 0 && rr.Algo < len(counts) {
			counts[rr.Algo]++
		}
	}
	fmt.Printf("autotune selections: ")
	for ai, name := range autotuneNames {
		if ai > 0 {
			fmt.Printf("  ")
		}
		fmt.Printf("%s=%d", name, counts[ai])
	}
	fmt.Println()
	if hit {
		fmt.Fprintln(os.Stderr, "netsim: cached run; switch log and drift need a live run")
		return
	}
	sw, dropped := pol.Switches()
	fmt.Printf("live switches:       %d (log overflow %d)\n", len(sw), dropped)
	for _, s := range sw {
		fmt.Printf("  cycle %8d: %s -> %s  (k=%d, %dB)\n",
			s.At, pol.Name(s.From), pol.Name(s.To), s.K, s.Bytes)
	}
	fmt.Printf("drift:               ")
	for ai, name := range autotuneNames {
		if ai > 0 {
			fmt.Printf("  ")
		}
		fmt.Printf("%s=%.2f", name, pol.Drift(ai))
	}
	fmt.Printf("  (%d observations)\n", pol.Observations())
	fmt.Printf("recalibrated t_end:  %d -> %d\n", tend, pol.Recalibrated(tend))
}
