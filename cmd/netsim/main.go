// Command netsim runs a single multicast on the flit-level simulator and
// reports latency, contention and per-node delivery times.
//
// Usage:
//
//	netsim -topo mesh -w 16 -h 16 -algo opt-mesh -k 32 -bytes 4096
//	netsim -topo bmin -nodes 128 -algo u-min -k 16 -bytes 65536 -seed 7
//	netsim -topo bfly -nodes 64 -algo opt-tree -k 24 -bytes 8192 -v
//	netsim -topo mesh -algo opt -faults 5 -fault-seed 3 -deadline 200000
//	netsim -topo mesh -algo opt -faults 5 -recover -v
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bfly"
	"repro/internal/bmin"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mcastsim"
	"repro/internal/mesh"
	"repro/internal/model"
	recov "repro/internal/recover"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/torus"
	"repro/internal/trace"
	"repro/internal/wormhole"
)

func main() {
	var (
		topo     = flag.String("topo", "mesh", "fabric: mesh, torus, bmin, bfly")
		w        = flag.Int("w", 16, "mesh width")
		h        = flag.Int("h", 16, "mesh height")
		nodes    = flag.Int("nodes", 128, "bmin/bfly node count (power of two)")
		policy   = flag.String("policy", "straight", "bmin ascent policy: straight, dest, adaptive, adaptive-dest")
		algo     = flag.String("algo", "opt", "algorithm: opt (architecture chain), opt-tree (unordered), binomial, sequential")
		k        = flag.Int("k", 32, "multicast size (source + k-1 destinations)")
		bytes    = flag.Int("bytes", 4096, "message size in bytes")
		seed     = flag.Uint64("seed", 1, "placement seed")
		addrB    = flag.Int("addrbytes", 0, "payload bytes charged per carried destination address")
		verbose  = flag.Bool("v", false, "print per-node delivery times")
		gantt    = flag.Bool("trace", false, "print a message-timeline Gantt chart and the hottest channels")
		heatmap  = flag.Bool("heatmap", false, "print a mesh link-utilization heatmap (mesh only)")
		faults   = flag.Float64("faults", 0, "percent of fabric links to kill (dead links, routed around or unreachable)")
		degraded = flag.Float64("degraded", 0, "percent of fabric links at 1/4 bandwidth")
		flaky    = flag.Float64("flaky", 0, "percent of fabric links with periodic transient outages")
		fseed    = flag.Uint64("fault-seed", 1, "fault plan seed (same seed = same failed links)")
		deadline = flag.Int64("deadline", 0, "abort the multicast after this many cycles (0 = generous default)")
		rec      = flag.Bool("recover", false, "run the reliable-delivery layer (timeout/retransmit, tree repair, binomial fallback); requires a fault flag")
		cacheDir = flag.String("cache", "", "content-addressed result cache directory (reuse an identical prior run; ignored with -trace/-heatmap)")
	)
	flag.Parse()

	if err := run(options{
		topo: *topo, w: *w, h: *h, nodes: *nodes, policy: *policy, algo: *algo,
		k: *k, bytes: *bytes, seed: *seed, addrB: *addrB,
		verbose: *verbose, gantt: *gantt, heatmap: *heatmap,
		faults: *faults, degraded: *degraded, flaky: *flaky,
		faultSeed: *fseed, deadline: *deadline, recover: *rec,
		cacheDir: *cacheDir,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
}

type options struct {
	topo         string
	w, h, nodes  int
	policy, algo string
	k, bytes     int
	seed         uint64
	addrB        int
	verbose      bool
	gantt        bool
	heatmap      bool

	faults, degraded, flaky float64 // percentages of fabric links
	faultSeed               uint64
	deadline                int64
	recover                 bool   // reliable delivery instead of plain mcastsim
	cacheDir                string // content-addressed result cache, "" = off
}

func run(o options) error {
	topoName, w, h, nodes := o.topo, o.w, o.h, o.nodes
	policyName, algoName := o.policy, o.algo
	k, bytes, seed, addrB, verbose := o.k, o.bytes, o.seed, o.addrB, o.verbose
	cfg := wormhole.DefaultConfig()
	var (
		topo     wormhole.Topology
		less     func(a, b int) bool
		n        int
		theMesh  *mesh.Mesh
		platform string // cache-key fabric description
	)
	switch topoName {
	case "mesh":
		m := mesh.New2D(w, h)
		theMesh = m
		topo, less, n = m, m.DimOrderLess, m.NumNodes()
		platform = fmt.Sprintf("mesh%dx%d", w, h)
	case "torus":
		tr := torus.New2D(w, h)
		topo, less, n = tr, tr.DimOrderLess, tr.NumNodes()
		platform = fmt.Sprintf("torus%dx%d", w, h)
	case "bmin":
		var pol bmin.AscentPolicy
		switch policyName {
		case "straight":
			pol = bmin.AscentStraight
		case "dest":
			pol = bmin.AscentDest
		case "adaptive":
			pol = bmin.AscentAdaptive
		case "adaptive-dest":
			pol = bmin.AscentAdaptiveDest
		default:
			return fmt.Errorf("unknown policy %q", policyName)
		}
		b := bmin.New(nodes, pol)
		topo, less, n = b, b.LexLess, nodes
		platform = fmt.Sprintf("bmin%d/%s", nodes, policyName)
	case "bfly":
		b := bfly.New(nodes)
		topo, less, n = b, b.LexLess, nodes
		platform = fmt.Sprintf("bfly%d", nodes)
	default:
		return fmt.Errorf("unknown topology %q", topoName)
	}
	if k > n {
		return fmt.Errorf("k=%d exceeds fabric size %d", k, n)
	}
	if o.heatmap && theMesh == nil {
		return fmt.Errorf("-heatmap requires a 2-D mesh fabric, not %q (use -trace for per-channel reports on other topologies)", topoName)
	}

	for _, p := range []struct {
		name string
		pct  float64
	}{{"-faults", o.faults}, {"-degraded", o.degraded}, {"-flaky", o.flaky}} {
		if p.pct < 0 || p.pct > 100 {
			return fmt.Errorf("%s=%g outside [0,100] (a percentage of fabric links)", p.name, p.pct)
		}
	}
	var plan *fault.Plan
	if o.faults > 0 || o.degraded > 0 || o.flaky > 0 {
		var err error
		plan, err = fault.NewPlan(topo, fault.Spec{
			DeadFrac:     o.faults / 100,
			DegradedFrac: o.degraded / 100,
			FlakyFrac:    o.flaky / 100,
			Seed:         o.faultSeed,
		})
		if err != nil {
			return err
		}
	}
	if o.recover && plan == nil {
		return fmt.Errorf("-recover needs something to recover from: set -faults, -degraded or -flaky")
	}

	soft := model.DefaultSoftware()
	runCfg := mcastsim.Config{Software: soft, AddrBytes: addrB}

	// Measure t_end on this fabric for the OPT shapes.
	r := sim.NewRNG(seed)
	addrs := r.Sample(n, k)
	a, b := addrs[0], addrs[len(addrs)-1]
	tend, err := mcastsim.Unicast(wormhole.New(topo, cfg), a, b, bytes, runCfg)
	if err != nil {
		return err
	}
	thold := soft.Hold.At(bytes)

	var ch chain.Chain
	var tab core.SplitTable
	switch algoName {
	case "opt":
		ch = chain.New(addrs, less)
		tab = core.NewOptTable(k, thold, tend)
	case "opt-tree":
		ch = chain.Unordered(addrs)
		tab = core.NewOptTable(k, thold, tend)
	case "binomial":
		ch = chain.New(addrs, less)
		tab = core.BinomialTable{Max: k}
	case "sequential":
		ch = chain.New(addrs, less)
		tab = core.SequentialTable{Max: k}
	default:
		return fmt.Errorf("unknown algorithm %q", algoName)
	}
	root, _ := ch.Index(addrs[0])

	net := wormhole.New(topo, cfg)
	if plan != nil {
		// Calibration above ran on a healthy fabric (the tree is tuned for
		// the machine as specified); only the measured run is degraded.
		net.SetFaults(plan)
	}
	usage := trace.NewChannelUsage(topo)
	timeline := trace.NewTimeline()
	if o.gantt || o.heatmap {
		net.SetObserver(trace.Multi{usage, timeline})
	}
	mainCfg := runCfg
	mainCfg.MaxCycles = o.deadline
	printTraces := func() {
		if o.gantt {
			fmt.Println("\nmessage timeline ('!' marks blocked messages):")
			fmt.Print(timeline.Gantt(64))
			fmt.Println("\nhottest channels:")
			fmt.Print(usage.Report(10))
		}
		if o.heatmap && theMesh != nil {
			fmt.Println()
			fmt.Print(trace.MeshHeatmap(theMesh, usage))
		}
	}

	// The cache keys the measured run on every input that shapes it. A
	// -trace/-heatmap run must execute for real (the observers are the
	// output), so the cache is bypassed there.
	var cache *runner.Cache
	if o.cacheDir != "" {
		if o.gantt || o.heatmap {
			fmt.Fprintln(os.Stderr, "netsim: -trace/-heatmap need a live run; ignoring -cache")
		} else {
			cache, err = runner.OpenCache(o.cacheDir)
			if err != nil {
				return err
			}
		}
	}
	key := runner.Key{
		Mode: "netsim", Platform: platform, Algo: algoName, Soft: softwareKey(soft),
		K: k, Bytes: bytes, Seed: seed, AddrBytes: addrB, THold: thold, TEnd: tend,
		Extra: fmt.Sprintf("deadline=%d", o.deadline),
	}
	if o.recover {
		key.Mode = "netsim-recover"
	}
	if plan != nil {
		key.FaultSeed = o.faultSeed
		key.Extra = fmt.Sprintf("dead=%g,degraded=%g,flaky=%g,deadline=%d",
			o.faults, o.degraded, o.flaky, o.deadline)
	}

	fmt.Printf("fabric: %s (%d nodes)   algorithm: %s   k=%d   message=%d bytes\n",
		topoName, n, algoName, k, bytes)
	if plan != nil {
		fmt.Printf("faults: %s\n", plan)
	}
	fmt.Printf("measured parameters: t_hold=%d  t_end=%d  (ratio %.3f)\n",
		thold, tend, float64(thold)/float64(tend))

	if o.recover {
		var res recov.Result
		hit := false
		if cache != nil {
			if cr, ok := cache.Load(key); ok {
				res, hit = recoverFromCache(cr), true
				fmt.Fprintln(os.Stderr, "netsim: result from cache", o.cacheDir)
			}
		}
		if !hit {
			res, err = recov.Run(net, tab, ch, root, bytes, recov.Config{
				Sim:  mainCfg,
				TEnd: tend,
				Seed: seed,
			})
			if err != nil {
				return err
			}
			if cache != nil {
				if err := cache.Store(key, recoverToCache(res)); err != nil {
					return err
				}
			}
		}
		var counts [4]int
		for i, s := range res.Status {
			if i != root {
				counts[s]++
			}
		}
		oh := res.Overhead
		fmt.Printf("completion latency:  %d cycles\n", res.Latency)
		fmt.Printf("delivered:           %d/%d destinations (%d first-try, %d retried, %d adopted, %d abandoned)\n",
			res.Delivered, k-1, counts[mcastsim.StatusDelivered], counts[mcastsim.StatusRetried],
			counts[mcastsim.StatusAdopted], counts[mcastsim.StatusAbandoned])
		fmt.Printf("messages sent:       %d (retransmits %d, repair sends %d, orphan sends %d, cancelled %d)\n",
			oh.Sends, oh.Retransmits, oh.RepairSends, oh.OrphanSends, oh.Cancelled)
		fmt.Printf("give-ups (repairs):  %d\n", oh.Repairs)
		if res.FallbackAt >= 0 {
			fmt.Printf("policy:              fell back to binomial over survivors at cycle %d\n", res.FallbackAt)
		} else {
			fmt.Printf("policy:              %s tree throughout (no binomial fallback)\n", algoName)
		}
		fmt.Printf("contention:          %d blocked header cycles\n", res.BlockedCycles)
		fmt.Printf("one-port wait:       %d cycles\n", res.InjectWaitCycles)
		fmt.Printf("fabric cycles:       %d\n", res.Cycles)
		if verbose {
			printRecoveredDeliveries(ch, res)
		}
		printTraces()
		return nil
	}

	var res mcastsim.Result
	hit := false
	if cache != nil {
		if cr, ok := cache.Load(key); ok {
			res, hit = mcastFromCache(cr), true
			fmt.Fprintln(os.Stderr, "netsim: result from cache", o.cacheDir)
		}
	}
	if !hit {
		res, err = mcastsim.Run(net, tab, ch, root, bytes, mainCfg)
		if err != nil {
			return err
		}
		if cache != nil {
			if err := cache.Store(key, mcastToCache(res)); err != nil {
				return err
			}
		}
	}
	fmt.Printf("multicast latency:   %d cycles\n", res.Latency)
	fmt.Printf("messages sent:       %d\n", res.Worms)
	fmt.Printf("contention:          %d blocked header cycles\n", res.BlockedCycles)
	fmt.Printf("one-port wait:       %d cycles\n", res.InjectWaitCycles)
	fmt.Printf("fabric cycles:       %d\n", res.Cycles)

	if verbose {
		type del struct {
			node int
			at   int64
		}
		var ds []del
		for i, d := range res.Deliveries {
			ds = append(ds, del{node: ch[i], at: d})
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i].at < ds[j].at })
		fmt.Println("\ndeliveries (node: cycle):")
		for _, d := range ds {
			fmt.Printf("  %4d: %d\n", d.node, d.at)
		}
	}
	printTraces()
	return nil
}

// softwareKey canonically encodes the software cost model for cache
// keys (same encoding as internal/exp's cell keys).
func softwareKey(soft model.Software) string {
	enc := func(l model.Linear) string { return fmt.Sprintf("%g+%g/B", l.Fixed, l.PerByte) }
	return fmt.Sprintf("send=%s,recv=%s,hold=%s", enc(soft.Send), enc(soft.Recv), enc(soft.Hold))
}

// mcastToCache/mcastFromCache round-trip a plain simulation report
// through the cell cache. Every field is an int64 cycle or message
// count, so the float64 metric encoding is exact.
func mcastToCache(res mcastsim.Result) runner.Result {
	return runner.Result{
		Metrics: map[string]float64{
			"latency": float64(res.Latency),
			"worms":   float64(res.Worms),
			"blocked": float64(res.BlockedCycles),
			"wait":    float64(res.InjectWaitCycles),
			"cycles":  float64(res.Cycles),
		},
		Series: map[string][]int64{"deliveries": res.Deliveries},
	}
}

func mcastFromCache(r runner.Result) mcastsim.Result {
	return mcastsim.Result{
		Latency:          int64(r.Metric("latency")),
		Deliveries:       r.Series["deliveries"],
		Worms:            int64(r.Metric("worms")),
		BlockedCycles:    int64(r.Metric("blocked")),
		InjectWaitCycles: int64(r.Metric("wait")),
		Cycles:           int64(r.Metric("cycles")),
	}
}

// recoverToCache/recoverFromCache do the same for a reliable-delivery
// report, carrying the per-position statuses as an int64 series.
func recoverToCache(res recov.Result) runner.Result {
	status := make([]int64, len(res.Status))
	for i, s := range res.Status {
		status[i] = int64(s)
	}
	oh := res.Overhead
	return runner.Result{
		Metrics: map[string]float64{
			"latency":      float64(res.Latency),
			"delivered":    float64(res.Delivered),
			"abandoned":    float64(res.Abandoned),
			"fallback_at":  float64(res.FallbackAt),
			"worms":        float64(res.Worms),
			"blocked":      float64(res.BlockedCycles),
			"wait":         float64(res.InjectWaitCycles),
			"cycles":       float64(res.Cycles),
			"sends":        float64(oh.Sends),
			"retransmits":  float64(oh.Retransmits),
			"cancelled":    float64(oh.Cancelled),
			"repair_sends": float64(oh.RepairSends),
			"orphan_sends": float64(oh.OrphanSends),
			"repairs":      float64(oh.Repairs),
		},
		Series: map[string][]int64{"deliveries": res.Deliveries, "status": status},
	}
}

func recoverFromCache(r runner.Result) recov.Result {
	status := make([]mcastsim.DestStatus, len(r.Series["status"]))
	for i, s := range r.Series["status"] {
		status[i] = mcastsim.DestStatus(s)
	}
	return recov.Result{
		Latency:    int64(r.Metric("latency")),
		Deliveries: r.Series["deliveries"],
		Status:     status,
		Delivered:  int(r.Metric("delivered")),
		Abandoned:  int(r.Metric("abandoned")),
		Overhead: mcastsim.Overhead{
			Sends:       int64(r.Metric("sends")),
			Retransmits: int64(r.Metric("retransmits")),
			Cancelled:   int64(r.Metric("cancelled")),
			RepairSends: int64(r.Metric("repair_sends")),
			OrphanSends: int64(r.Metric("orphan_sends")),
			Repairs:     int64(r.Metric("repairs")),
		},
		FallbackAt:       int64(r.Metric("fallback_at")),
		Worms:            int64(r.Metric("worms")),
		BlockedCycles:    int64(r.Metric("blocked")),
		InjectWaitCycles: int64(r.Metric("wait")),
		Cycles:           int64(r.Metric("cycles")),
	}
}

// printRecoveredDeliveries lists every chain member in delivery order
// with its recovery status; abandoned members sort last.
func printRecoveredDeliveries(ch chain.Chain, res recov.Result) {
	type del struct {
		node   int
		at     int64
		status mcastsim.DestStatus
	}
	var ds []del
	for i, d := range res.Deliveries {
		ds = append(ds, del{node: ch[i], at: d, status: res.Status[i]})
	}
	sort.Slice(ds, func(i, j int) bool {
		ai, aj := ds[i].at, ds[j].at
		if (ai < 0) != (aj < 0) {
			return aj < 0 // delivered before abandoned
		}
		if ai != aj {
			return ai < aj
		}
		return ds[i].node < ds[j].node
	})
	fmt.Println("\ndeliveries (node: cycle status):")
	for _, d := range ds {
		if d.at < 0 {
			fmt.Printf("  %4d: -     %s\n", d.node, d.status)
		} else {
			fmt.Printf("  %4d: %-6d%s\n", d.node, d.at, d.status)
		}
	}
}
