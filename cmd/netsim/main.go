// Command netsim runs a single multicast on the flit-level simulator and
// reports latency, contention and per-node delivery times.
//
// Usage:
//
//	netsim -topo mesh -w 16 -h 16 -algo opt-mesh -k 32 -bytes 4096
//	netsim -topo bmin -nodes 128 -algo u-min -k 16 -bytes 65536 -seed 7
//	netsim -topo bfly -nodes 64 -algo opt-tree -k 24 -bytes 8192 -v
//	netsim -topo mesh -algo opt -faults 5 -fault-seed 3 -deadline 200000
//	netsim -topo mesh -algo opt -faults 5 -recover -v
//	netsim -topo mesh -traffic -rate 400 -arrival bursty -admission bounded
//	netsim -topo bmin -traffic -rate 800 -skew 0.5 -v
//	netsim -topo mesh -churn -churn-rate 800 -rejoin 0.5 -repair incr
//	netsim -topo bmin -churn -churn-rate 1600 -degree-cap 3 -v
//	netsim -topo mesh -autotune -k 32 -bytes 4096
//	netsim -topo mesh -traffic -autotune -faults 3 -rate 200 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bfly"
	"repro/internal/bmin"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mcastsim"
	"repro/internal/member"
	"repro/internal/mesh"
	"repro/internal/model"
	recov "repro/internal/recover"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/torus"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/tuner"
	"repro/internal/wormhole"
)

func main() {
	var (
		topo     = flag.String("topo", "mesh", "fabric: mesh, torus, bmin, bfly")
		w        = flag.Int("w", 16, "mesh width")
		h        = flag.Int("h", 16, "mesh height")
		nodes    = flag.Int("nodes", 128, "bmin/bfly node count (power of two)")
		policy   = flag.String("policy", "straight", "bmin ascent policy: straight, dest, adaptive, adaptive-dest")
		algo     = flag.String("algo", "opt", "algorithm: opt (architecture chain), opt-tree (unordered), binomial, sequential")
		k        = flag.Int("k", 32, "multicast size (source + k-1 destinations)")
		bytes    = flag.Int("bytes", 4096, "message size in bytes")
		seed     = flag.Uint64("seed", 1, "placement seed")
		addrB    = flag.Int("addrbytes", 0, "payload bytes charged per carried destination address")
		verbose  = flag.Bool("v", false, "print per-node delivery times")
		gantt    = flag.Bool("trace", false, "print a message-timeline Gantt chart and the hottest channels")
		heatmap  = flag.Bool("heatmap", false, "print a mesh link-utilization heatmap (mesh only)")
		faults   = flag.Float64("faults", 0, "percent of fabric links to kill (dead links, routed around or unreachable)")
		degraded = flag.Float64("degraded", 0, "percent of fabric links at 1/4 bandwidth")
		flaky    = flag.Float64("flaky", 0, "percent of fabric links with periodic transient outages")
		fseed    = flag.Uint64("fault-seed", 1, "fault plan seed (same seed = same failed links)")
		deadline = flag.Int64("deadline", 0, "abort the multicast after this many cycles (0 = generous default)")
		rec      = flag.Bool("recover", false, "run the reliable-delivery layer (timeout/retransmit, tree repair, binomial fallback); requires a fault flag")
		cacheDir = flag.String("cache", "", "content-addressed result cache directory (reuse an identical prior run; ignored with -trace/-heatmap)")
		tra      = flag.Bool("traffic", false, "run sustained open-system traffic (seeded arrivals at -rate) instead of a single multicast")
		rate     = flag.Float64("rate", 200, "traffic: offered load in requests per million cycles")
		arr      = flag.String("arrival", "poisson", "traffic: arrival process, poisson or bursty")
		adm      = flag.String("admission", "fifo", "traffic: admission policy, fifo (unbounded queue) or bounded (overflow is shed)")
		skew     = flag.Float64("skew", 0, "traffic: fraction of destination draws aimed at a seeded hot set (0 = uniform)")
		churn    = flag.Bool("churn", false, "run the multicast under a seeded membership churn schedule (joins, leaves, crashes, rejoins)")
		churnR   = flag.Float64("churn-rate", 400, "churn: membership events per million cycles")
		rejoin   = flag.Float64("rejoin", 0.5, "churn: fraction of crashed members that rejoin after the outage window")
		repair   = flag.String("repair", "incr", "churn: repair policy, full (re-plan), incr (graft/excise), binom (binomial over survivors)")
		degCap   = flag.Int("degree-cap", 0, "churn: per-node fan-out cap for degree-bounded trees (0 = one-port split table)")
		autotune = flag.Bool("autotune", false, "train a crossover surface on the healthy fabric and let the tuner pick the algorithm (overrides -algo); with -traffic the policy re-picks per request and switches live on observed drift")
	)
	flag.Parse()

	if err := run(options{
		topo: *topo, w: *w, h: *h, nodes: *nodes, policy: *policy, algo: *algo,
		k: *k, bytes: *bytes, seed: *seed, addrB: *addrB,
		verbose: *verbose, gantt: *gantt, heatmap: *heatmap,
		faults: *faults, degraded: *degraded, flaky: *flaky,
		faultSeed: *fseed, deadline: *deadline, recover: *rec,
		cacheDir: *cacheDir,
		traffic:  *tra, rate: *rate, arrival: *arr, admission: *adm, skew: *skew,
		churn: *churn, churnRate: *churnR, rejoinFrac: *rejoin,
		repairPolicy: *repair, degreeCap: *degCap,
		autotune: *autotune,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
}

type options struct {
	topo         string
	w, h, nodes  int
	policy, algo string
	k, bytes     int
	seed         uint64
	addrB        int
	verbose      bool
	gantt        bool
	heatmap      bool

	faults, degraded, flaky float64 // percentages of fabric links
	faultSeed               uint64
	deadline                int64
	recover                 bool   // reliable delivery instead of plain mcastsim
	cacheDir                string // content-addressed result cache, "" = off

	traffic            bool    // open-system traffic instead of a single multicast
	rate               float64 // offered requests per Mcycle
	arrival, admission string  // traffic process and queueing policy
	skew               float64 // hot-spot fraction of destination draws

	churn        bool    // multicast under a membership churn schedule
	churnRate    float64 // membership events per Mcycle
	rejoinFrac   float64 // fraction of crashes that rejoin
	repairPolicy string  // full, incr, binom
	degreeCap    int     // per-node fan-out cap (0 = split table)

	autotune bool // crossover-surface algorithm selection instead of -algo
}

func run(o options) error {
	topoName, w, h, nodes := o.topo, o.w, o.h, o.nodes
	policyName, algoName := o.policy, o.algo
	k, bytes, seed, addrB, verbose := o.k, o.bytes, o.seed, o.addrB, o.verbose
	cfg := wormhole.DefaultConfig()
	var (
		topo     wormhole.Topology
		less     func(a, b int) bool
		n        int
		theMesh  *mesh.Mesh
		platform string // cache-key fabric description
	)
	switch topoName {
	case "mesh":
		m := mesh.New2D(w, h)
		theMesh = m
		topo, less, n = m, m.DimOrderLess, m.NumNodes()
		platform = fmt.Sprintf("mesh%dx%d", w, h)
	case "torus":
		tr := torus.New2D(w, h)
		topo, less, n = tr, tr.DimOrderLess, tr.NumNodes()
		platform = fmt.Sprintf("torus%dx%d", w, h)
	case "bmin":
		var pol bmin.AscentPolicy
		switch policyName {
		case "straight":
			pol = bmin.AscentStraight
		case "dest":
			pol = bmin.AscentDest
		case "adaptive":
			pol = bmin.AscentAdaptive
		case "adaptive-dest":
			pol = bmin.AscentAdaptiveDest
		default:
			return fmt.Errorf("unknown policy %q", policyName)
		}
		b := bmin.New(nodes, pol)
		topo, less, n = b, b.LexLess, nodes
		platform = fmt.Sprintf("bmin%d/%s", nodes, policyName)
	case "bfly":
		b := bfly.New(nodes)
		topo, less, n = b, b.LexLess, nodes
		platform = fmt.Sprintf("bfly%d", nodes)
	default:
		return fmt.Errorf("unknown topology %q", topoName)
	}
	if k > n {
		return fmt.Errorf("k=%d exceeds fabric size %d", k, n)
	}
	if o.heatmap && theMesh == nil {
		return fmt.Errorf("-heatmap requires a 2-D mesh fabric, not %q (use -trace for per-channel reports on other topologies)", topoName)
	}
	if o.heatmap && o.traffic {
		return fmt.Errorf("-heatmap visualizes a single multicast; it cannot overlay -traffic's open-system run (use -trace for the aggregate timeline)")
	}
	if o.autotune && o.heatmap {
		return fmt.Errorf("-heatmap visualizes one fixed algorithm's link usage; it cannot follow -autotune's per-request selection (pick an -algo explicitly)")
	}
	if o.autotune && o.churn {
		return fmt.Errorf("-autotune and -churn compose their own policies (the churn repair ladder already re-plans trees); pick one")
	}

	for _, p := range []struct {
		name string
		pct  float64
	}{{"-faults", o.faults}, {"-degraded", o.degraded}, {"-flaky", o.flaky}} {
		if p.pct < 0 || p.pct > 100 {
			return fmt.Errorf("%s=%g outside [0,100] (a percentage of fabric links)", p.name, p.pct)
		}
	}
	var plan *fault.Plan
	if o.faults > 0 || o.degraded > 0 || o.flaky > 0 {
		var err error
		plan, err = fault.NewPlan(topo, fault.Spec{
			DeadFrac:     o.faults / 100,
			DegradedFrac: o.degraded / 100,
			FlakyFrac:    o.flaky / 100,
			Seed:         o.faultSeed,
		})
		if err != nil {
			return err
		}
	}
	if o.recover && plan == nil {
		return fmt.Errorf("-recover needs something to recover from: set -faults, -degraded or -flaky")
	}

	soft := model.DefaultSoftware()
	runCfg := mcastsim.Config{Software: soft, AddrBytes: addrB}

	// Measure t_end on this fabric for the OPT shapes.
	r := sim.NewRNG(seed)
	addrs := r.Sample(n, k)
	a, b := addrs[0], addrs[len(addrs)-1]
	tend, err := mcastsim.Unicast(wormhole.New(topo, cfg), a, b, bytes, runCfg)
	if err != nil {
		return err
	}
	thold := soft.Hold.At(bytes)

	if o.traffic && o.churn {
		return fmt.Errorf("-traffic and -churn are different drive loops; pick one")
	}
	var pol *tuner.Policy
	if o.autotune {
		var tcache *runner.Cache
		if o.cacheDir != "" && !o.gantt {
			tcache, err = runner.OpenCache(o.cacheDir)
			if err != nil {
				return err
			}
		}
		pol, err = buildAutotunePolicy(o, platform, topo, less, n, soft, thold, tend, cfg, tcache)
		if err != nil {
			return err
		}
		// Single-shot modes run the surface's static pick; -traffic hands
		// the whole policy to the engine for per-request selection.
		o.algo = pol.Name(pol.PickFor(o.k, o.bytes))
		algoName = o.algo
	}
	if o.traffic {
		return runTraffic(o, topoName, platform, topo, less, n, plan, soft, thold, tend, cfg, pol)
	}
	if o.churn {
		return runChurn(o, topoName, platform, topo, less, n, soft, thold, tend, cfg)
	}

	var ch chain.Chain
	var tab core.SplitTable
	switch algoName {
	case "opt":
		ch = chain.New(addrs, less)
		tab = core.NewOptTable(k, thold, tend)
	case "opt-tree":
		ch = chain.Unordered(addrs)
		tab = core.NewOptTable(k, thold, tend)
	case "binomial":
		ch = chain.New(addrs, less)
		tab = core.BinomialTable{Max: k}
	case "sequential":
		ch = chain.New(addrs, less)
		tab = core.SequentialTable{Max: k}
	default:
		return fmt.Errorf("unknown algorithm %q", algoName)
	}
	root, _ := ch.Index(addrs[0])

	net := wormhole.New(topo, cfg)
	if plan != nil {
		// Calibration above ran on a healthy fabric (the tree is tuned for
		// the machine as specified); only the measured run is degraded.
		net.SetFaults(plan)
	}
	usage := trace.NewChannelUsage(topo)
	timeline := trace.NewTimeline()
	if o.gantt || o.heatmap {
		net.SetObserver(trace.Multi{usage, timeline})
	}
	mainCfg := runCfg
	mainCfg.MaxCycles = o.deadline
	printTraces := func() {
		if o.gantt {
			fmt.Println("\nmessage timeline ('!' marks blocked messages):")
			fmt.Print(timeline.Gantt(64))
			fmt.Println("\nhottest channels:")
			fmt.Print(usage.Report(10))
		}
		if o.heatmap && theMesh != nil {
			fmt.Println()
			fmt.Print(trace.MeshHeatmap(theMesh, usage))
		}
	}

	// The cache keys the measured run on every input that shapes it. A
	// -trace/-heatmap run must execute for real (the observers are the
	// output), so the cache is bypassed there.
	var cache *runner.Cache
	if o.cacheDir != "" {
		if o.gantt || o.heatmap {
			fmt.Fprintln(os.Stderr, "netsim: -trace/-heatmap need a live run; ignoring -cache")
		} else {
			cache, err = runner.OpenCache(o.cacheDir)
			if err != nil {
				return err
			}
		}
	}
	key := runner.Key{
		Mode: "netsim", Platform: platform, Algo: algoName, Soft: softwareKey(soft),
		K: k, Bytes: bytes, Seed: seed, AddrBytes: addrB, THold: thold, TEnd: tend,
		Extra: fmt.Sprintf("deadline=%d", o.deadline),
	}
	if o.recover {
		key.Mode = "netsim-recover"
	}
	if plan != nil {
		key.FaultSeed = o.faultSeed
		key.Extra = fmt.Sprintf("dead=%g,degraded=%g,flaky=%g,deadline=%d",
			o.faults, o.degraded, o.flaky, o.deadline)
	}

	fmt.Printf("fabric: %s (%d nodes)   algorithm: %s   k=%d   message=%d bytes\n",
		topoName, n, algoName, k, bytes)
	if plan != nil {
		fmt.Printf("faults: %s\n", plan)
	}
	fmt.Printf("measured parameters: t_hold=%d  t_end=%d  (ratio %.3f)\n",
		thold, tend, float64(thold)/float64(tend))

	if o.recover {
		var res recov.Result
		hit := false
		if cache != nil {
			cr, ok, cerr := cache.Load(key)
			if cerr != nil {
				return cerr
			}
			if ok {
				res, hit = recoverFromCache(cr), true
				fmt.Fprintln(os.Stderr, "netsim: result from cache", o.cacheDir)
			}
		}
		if !hit {
			rcfg := recov.Config{
				Sim:  mainCfg,
				TEnd: tend,
				Seed: seed,
			}
			if pol != nil {
				// Admission-time selection below the recovery ladder: the
				// policy's pick replaces the caller's table at Run start.
				rcfg.Select = func(kk int) core.SplitTable {
					return pol.TableFor(kk, bytes, thold, tend)
				}
			}
			res, err = recov.Run(net, tab, ch, root, bytes, rcfg)
			if err != nil {
				return err
			}
			if cache != nil {
				if err := cache.Store(key, recoverToCache(res)); err != nil {
					return err
				}
			}
		}
		var counts [4]int
		for i, s := range res.Status {
			if i != root {
				counts[s]++
			}
		}
		oh := res.Overhead
		fmt.Printf("completion latency:  %d cycles\n", res.Latency)
		fmt.Printf("delivered:           %d/%d destinations (%d first-try, %d retried, %d adopted, %d abandoned)\n",
			res.Delivered, k-1, counts[mcastsim.StatusDelivered], counts[mcastsim.StatusRetried],
			counts[mcastsim.StatusAdopted], counts[mcastsim.StatusAbandoned])
		fmt.Printf("messages sent:       %d (retransmits %d, repair sends %d, orphan sends %d, cancelled %d)\n",
			oh.Sends, oh.Retransmits, oh.RepairSends, oh.OrphanSends, oh.Cancelled)
		fmt.Printf("give-ups (repairs):  %d\n", oh.Repairs)
		if res.FallbackAt >= 0 {
			fmt.Printf("policy:              fell back to binomial over survivors at cycle %d\n", res.FallbackAt)
		} else {
			fmt.Printf("policy:              %s tree throughout (no binomial fallback)\n", algoName)
		}
		fmt.Printf("contention:          %d blocked header cycles\n", res.BlockedCycles)
		fmt.Printf("one-port wait:       %d cycles\n", res.InjectWaitCycles)
		fmt.Printf("fabric cycles:       %d\n", res.Cycles)
		if verbose {
			printRecoveredDeliveries(ch, res)
		}
		printTraces()
		return nil
	}

	var res mcastsim.Result
	hit := false
	if cache != nil {
		cr, ok, cerr := cache.Load(key)
		if cerr != nil {
			return cerr
		}
		if ok {
			res, hit = mcastFromCache(cr), true
			fmt.Fprintln(os.Stderr, "netsim: result from cache", o.cacheDir)
		}
	}
	if !hit {
		res, err = mcastsim.Run(net, tab, ch, root, bytes, mainCfg)
		if err != nil {
			return err
		}
		if cache != nil {
			if err := cache.Store(key, mcastToCache(res)); err != nil {
				return err
			}
		}
	}
	fmt.Printf("multicast latency:   %d cycles\n", res.Latency)
	fmt.Printf("messages sent:       %d\n", res.Worms)
	fmt.Printf("contention:          %d blocked header cycles\n", res.BlockedCycles)
	fmt.Printf("one-port wait:       %d cycles\n", res.InjectWaitCycles)
	fmt.Printf("fabric cycles:       %d\n", res.Cycles)

	if verbose {
		type del struct {
			node int
			at   int64
		}
		var ds []del
		for i, d := range res.Deliveries {
			ds = append(ds, del{node: ch[i], at: d})
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i].at < ds[j].at })
		fmt.Println("\ndeliveries (node: cycle):")
		for _, d := range ds {
			fmt.Printf("  %4d: %d\n", d.node, d.at)
		}
	}
	printTraces()
	return nil
}

// Fixed shape of a CLI traffic run: enough arrivals for stable
// steady-state quantiles at interactive speed.
const (
	trafficRequests = 64
	trafficWarmup   = 8
)

// runTraffic drives the open-system engine: seeded arrivals at the
// configured rate, every request a k-node multicast of the configured
// size, planned by the chosen algorithm under the measured parameters.
func runTraffic(o options, topoName, platform string, topo wormhole.Topology,
	less func(a, b int) bool, n int, plan *fault.Plan,
	soft model.Software, thold, tend model.Time, cfg wormhole.Config,
	pol *tuner.Policy) error {
	var planFn func(kk int, th, te model.Time) core.SplitTable
	ordered := true
	switch o.algo {
	case "opt":
		planFn = func(kk int, th, te model.Time) core.SplitTable { return core.NewOptTable(kk, th, te) }
	case "opt-tree":
		ordered = false
		planFn = func(kk int, th, te model.Time) core.SplitTable { return core.NewOptTable(kk, th, te) }
	case "binomial":
		planFn = func(kk int, _, _ model.Time) core.SplitTable { return core.BinomialTable{Max: kk} }
	case "sequential":
		planFn = func(kk int, _, _ model.Time) core.SplitTable { return core.SequentialTable{Max: kk} }
	default:
		return fmt.Errorf("unknown algorithm %q", o.algo)
	}
	var lessFn func(a, b int) bool
	if ordered || pol != nil {
		// The tuner mixes ordered and unordered candidates per request,
		// so the chain order must always be available.
		lessFn = less
	}
	hotNodes := n / 8
	if hotNodes < 2 {
		hotNodes = 2
	}
	tcfg := traffic.Config{
		Software:  soft,
		AddrBytes: o.addrB,
		Arrival:   traffic.ArrivalSpec{Kind: o.arrival, RatePerMcycle: o.rate},
		Load:      traffic.Workload{Ks: []int{o.k}, Sizes: []int{o.bytes}, HotFrac: o.skew, HotNodes: hotNodes},
		Admit:     traffic.Admission{Policy: o.admission},
		Requests:  trafficRequests,
		Warmup:    trafficWarmup,
		Less:      lessFn,
		Plan:      planFn,
		TEnd:      func(int) model.Time { return tend },
		Reliable:  plan != nil,
		Seed:      o.seed,
		MaxCycles: o.deadline,
	}
	algoLabel := o.algo
	if pol != nil {
		tcfg.Tuner = pol
		algoLabel = "auto"
	}

	var cache *runner.Cache
	if o.cacheDir != "" {
		if o.gantt {
			fmt.Fprintln(os.Stderr, "netsim: -trace needs a live run; ignoring -cache")
		} else {
			var err error
			cache, err = runner.OpenCache(o.cacheDir)
			if err != nil {
				return err
			}
		}
	}
	key := runner.Key{
		Mode: "netsim-traffic", Platform: platform, Algo: algoLabel, Soft: softwareKey(soft),
		K: o.k, Bytes: o.bytes, Seed: o.seed, AddrBytes: o.addrB, THold: thold, TEnd: tend,
		Extra: fmt.Sprintf("rate=%g,arr=%s,adm=%s,skew=%g,req=%d,warm=%d,deadline=%d",
			o.rate, o.arrival, o.admission, o.skew, trafficRequests, trafficWarmup, o.deadline),
	}
	if plan != nil {
		key.FaultSeed = o.faultSeed
		key.Extra += fmt.Sprintf(",dead=%g,degraded=%g,flaky=%g", o.faults, o.degraded, o.flaky)
	}
	if pol != nil {
		// The tuned run is a pure function of flags plus the trained
		// surface, so the surface's content hash joins the key.
		key.Extra += fmt.Sprintf(",autotune=1,win=%d,train=%d,surface=%.16s",
			autotuneWindow, autotuneTrials, pol.SurfaceHash())
	}

	fmt.Printf("fabric: %s (%d nodes)   algorithm: %s   k=%d   message=%d bytes\n",
		topoName, n, algoLabel, o.k, o.bytes)
	if plan != nil {
		fmt.Printf("faults: %s   (reliable delivery on)\n", plan)
	}
	fmt.Printf("measured parameters: t_hold=%d  t_end=%d  (ratio %.3f)\n",
		thold, tend, float64(thold)/float64(tend))
	fmt.Printf("traffic:             %s arrivals at %g req/Mcycle, %s admission\n",
		o.arrival, o.rate, o.admission)
	if o.skew > 0 {
		fmt.Printf("hot spot:            %.0f%% of destination draws -> %d-node hot set\n", o.skew*100, hotNodes)
	}

	var res traffic.Result
	hit := false
	if cache != nil {
		cr, ok, cerr := cache.Load(key)
		if cerr != nil {
			return cerr
		}
		if ok {
			res, hit = trafficFromCache(cr), true
			fmt.Fprintln(os.Stderr, "netsim: result from cache", o.cacheDir)
		}
	}
	if !hit {
		net := wormhole.New(topo, cfg)
		if plan != nil {
			net.SetFaults(plan)
		}
		usage := trace.NewChannelUsage(topo)
		timeline := trace.NewTimeline()
		if o.gantt {
			net.SetObserver(trace.Multi{usage, timeline})
		}
		var err error
		res, err = traffic.Run(net, tcfg)
		if err != nil {
			return err
		}
		if cache != nil {
			if err := cache.Store(key, trafficToCache(res)); err != nil {
				return err
			}
		}
		if o.gantt {
			defer func() {
				fmt.Println("\nmessage timeline ('!' marks blocked messages):")
				fmt.Print(timeline.Gantt(64))
				fmt.Println("\nhottest channels:")
				fmt.Print(usage.Report(10))
			}()
		}
	}

	m := res.Metrics
	fmt.Printf("requests:            %d arrivals (%d warm-up), %d completed, %d shed\n",
		m.Requests, trafficWarmup, m.Completed, m.Shed)
	fmt.Printf("offered (measured):  %.1f req/Mcycle\n", m.OfferedPerMcycle)
	fmt.Printf("delivered:           %.1f req/Mcycle\n", m.DeliveredPerMcycle)
	fmt.Printf("completion latency:  p50=%.0f  p99=%.0f  p999=%.0f  mean=%.1f cycles\n",
		m.P50, m.P99, m.P999, m.MeanLatency)
	fmt.Printf("queueing delay:      mean %.1f cycles, max %d\n", m.MeanQueueDelay, m.MaxQueueDelay)
	fmt.Printf("occupancy:           %.2f requests in service (mean)\n", m.MeanOccupancy)
	if tcfg.Reliable {
		fmt.Printf("recovery:            %d retransmits, %d repair sends, %d cancelled, %d abandoned destinations\n",
			m.Retransmits, m.RepairSends, m.Cancelled, m.AbandonedDests)
	}
	fmt.Printf("contention:          %d blocked header cycles\n", m.BlockedCycles)
	fmt.Printf("one-port wait:       %d cycles\n", m.InjectWaitCycles)
	fmt.Printf("fabric cycles:       %d\n", m.Cycles)
	if pol != nil {
		printAutotuneTraffic(o, pol, res.Requests, hit, tend)
	}

	if o.verbose {
		fmt.Println("\nrequests (arrive -> start -> done):")
		for i, rr := range res.Requests {
			if rr.Shed {
				fmt.Printf("  %4d: %8d  shed\n", i, rr.Arrive)
				continue
			}
			fmt.Printf("  %4d: %8d -> %8d -> %8d  (%d cycles, k=%d, %dB)\n",
				i, rr.Arrive, rr.Start, rr.Done, rr.Done-rr.Arrive, rr.K, rr.Bytes)
		}
	}
	return nil
}

// Fixed shape of a CLI churn run, matching the F5 figure's scenario:
// the schedule horizon, the crash outage window, and the joiner-pool
// divisor (pool = max(2, k/churnPoolDiv) extra addresses that may join).
const (
	churnHorizon    = 65536
	churnDownCycles = 4096
	churnPoolDiv    = 4
)

// runChurn drives the membership engine: a reliable multicast of the
// k-member group while a seeded churn schedule fires joins, leaves,
// crashes and rejoins, with crash windows compiled into the fault plan
// next to any requested channel faults.
func runChurn(o options, topoName, platform string, topo wormhole.Topology,
	less func(a, b int) bool, n int,
	soft model.Software, thold, tend model.Time, cfg wormhole.Config) error {
	var pol recov.RepairPolicy
	switch o.repairPolicy {
	case "full":
		pol = recov.RepairFull
	case "incr":
		pol = recov.RepairIncremental
	case "binom":
		pol = recov.RepairBinomial
	default:
		return fmt.Errorf("unknown repair policy %q (want full, incr or binom)", o.repairPolicy)
	}
	if o.churnRate < 0 {
		return fmt.Errorf("-churn-rate=%g must be >= 0 events/Mcycle", o.churnRate)
	}
	if o.rejoinFrac < 0 || o.rejoinFrac > 1 {
		return fmt.Errorf("-rejoin=%g outside [0,1]", o.rejoinFrac)
	}
	if o.degreeCap < 0 {
		return fmt.Errorf("-degree-cap=%d must be >= 0", o.degreeCap)
	}
	pool := o.k / churnPoolDiv
	if pool < 2 {
		pool = 2
	}
	if o.k+pool > n {
		return fmt.Errorf("k=%d plus a %d-node joiner pool exceeds fabric size %d", o.k, pool, n)
	}
	addrs := sim.NewRNG(o.seed).Sample(n, o.k+pool)
	members, joiners := addrs[:o.k], addrs[o.k:]
	sched, err := member.GenSchedule(member.ChurnSpec{
		RatePerMcycle: o.churnRate,
		Horizon:       churnHorizon,
		RejoinFrac:    o.rejoinFrac,
		DownCycles:    churnDownCycles,
		Seed:          o.faultSeed,
	}, members, joiners)
	if err != nil {
		return err
	}
	plan, err := fault.NewPlan(topo, fault.Spec{
		DeadFrac:     o.faults / 100,
		DegradedFrac: o.degraded / 100,
		FlakyFrac:    o.flaky / 100,
		NodeOutages:  sched.Outages,
		Seed:         o.faultSeed,
	})
	if err != nil {
		return err
	}

	var ch chain.Chain
	switch o.algo {
	case "opt", "binomial", "sequential":
		ch = chain.New(addrs, less)
	case "opt-tree":
		ch = chain.Unordered(addrs)
	default:
		return fmt.Errorf("unknown algorithm %q", o.algo)
	}
	var tab core.SplitTable
	switch o.algo {
	case "opt", "opt-tree":
		tab = core.NewOptTable(len(ch), thold, tend)
	case "binomial":
		tab = core.BinomialTable{Max: len(ch)}
	case "sequential":
		tab = core.SequentialTable{Max: len(ch)}
	}

	var cache *runner.Cache
	if o.cacheDir != "" {
		if o.gantt || o.heatmap {
			fmt.Fprintln(os.Stderr, "netsim: -trace/-heatmap need a live run; ignoring -cache")
		} else {
			cache, err = runner.OpenCache(o.cacheDir)
			if err != nil {
				return err
			}
		}
	}
	key := runner.Key{
		Mode: "netsim-churn", Platform: platform, Algo: o.algo, Soft: softwareKey(soft),
		K: o.k, Bytes: o.bytes, Seed: o.seed, AddrBytes: o.addrB, THold: thold, TEnd: tend,
		FaultSeed: o.faultSeed,
		Extra: fmt.Sprintf("rate=%g,rejoin=%g,repair=%s,cap=%d,pool=%d,horizon=%d,down=%d,dead=%g,degraded=%g,flaky=%g,deadline=%d",
			o.churnRate, o.rejoinFrac, o.repairPolicy, o.degreeCap, pool,
			churnHorizon, churnDownCycles, o.faults, o.degraded, o.flaky, o.deadline),
	}

	crashes := len(sched.Outages)
	fmt.Printf("fabric: %s (%d nodes)   algorithm: %s   k=%d (+%d joiner pool)   message=%d bytes\n",
		topoName, n, o.algo, o.k, pool, o.bytes)
	fmt.Printf("faults: %s\n", plan)
	fmt.Printf("measured parameters: t_hold=%d  t_end=%d  (ratio %.3f)\n",
		thold, tend, float64(thold)/float64(tend))
	fmt.Printf("churn:               %g events/Mcycle over %d cycles: %d events (%d crashes), rejoin %.0f%%\n",
		o.churnRate, int64(churnHorizon), len(sched.Events), crashes, o.rejoinFrac*100)
	if o.degreeCap > 0 {
		fmt.Printf("trees:               degree-bounded, fan-out cap %d\n", o.degreeCap)
	}

	var res member.Result
	hit := false
	if cache != nil {
		cr, ok, cerr := cache.Load(key)
		if cerr != nil {
			return cerr
		}
		if ok {
			res, hit = memberFromCache(cr), true
			fmt.Fprintln(os.Stderr, "netsim: result from cache", o.cacheDir)
		}
	}
	if !hit {
		net := wormhole.New(topo, cfg)
		net.SetFaults(plan)
		usage := trace.NewChannelUsage(topo)
		timeline := trace.NewTimeline()
		if o.gantt {
			net.SetObserver(trace.Multi{usage, timeline})
		}
		mainCfg := mcastsim.Config{Software: soft, AddrBytes: o.addrB, MaxCycles: o.deadline}
		res, err = member.Run(net, tab, ch, sched, o.bytes, member.Config{
			Sim:       mainCfg,
			TEnd:      tend,
			Repair:    pol,
			DegreeCap: o.degreeCap,
			Seed:      o.seed,
		})
		if err != nil {
			return err
		}
		if cache != nil {
			if err := cache.Store(key, memberToCache(res)); err != nil {
				return err
			}
		}
		if o.gantt {
			defer func() {
				fmt.Println("\nmessage timeline ('!' marks blocked messages):")
				fmt.Print(timeline.Gantt(64))
				fmt.Println("\nhottest channels:")
				fmt.Print(usage.Report(10))
			}()
		}
	}

	oracleN := 0
	for i, ok := range res.Oracle {
		if ok && res.Member[i] {
			oracleN++
		}
	}
	oh := res.Overhead
	fmt.Printf("completion latency:  %d cycles (last delivery to a surviving member)\n", res.Latency)
	fmt.Printf("delivered:           %d/%d surviving members (oracle ceiling %d reachable)\n",
		res.Delivered, res.Delivered+res.Undelivered, oracleN-1)
	fmt.Printf("membership:          %d left, %d crashed for good\n", res.Left, res.Dead)
	fmt.Printf("messages sent:       %d (retransmits %d, repair sends %d, orphan sends %d, grafts %d, cancelled %d)\n",
		oh.Sends, oh.Retransmits, oh.RepairSends, oh.OrphanSends, res.Grafts, oh.Cancelled)
	fmt.Printf("give-ups (repairs):  %d\n", oh.Repairs)
	if res.FallbackAt >= 0 {
		fmt.Printf("policy:              %s, degraded to binomial over survivors at cycle %d\n", o.repairPolicy, res.FallbackAt)
	} else {
		fmt.Printf("policy:              %s throughout (no binomial degradation)\n", o.repairPolicy)
	}
	if o.verbose {
		printChurnDeliveries(ch, res)
	}
	return nil
}

// printChurnDeliveries lists every chain position with its membership
// state and delivery time at quiesce.
func printChurnDeliveries(ch chain.Chain, res member.Result) {
	fmt.Println("\npositions (node: cycle state):")
	for i, node := range ch {
		state := "member"
		switch {
		case !res.Alive[i]:
			state = "crashed"
		case !res.Member[i]:
			state = "left"
		}
		if res.Deliveries[i] < 0 {
			fmt.Printf("  %4d: -       %s\n", node, state)
		} else {
			fmt.Printf("  %4d: %-7d %s\n", node, res.Deliveries[i], state)
		}
	}
}

// memberToCache/memberFromCache round-trip a churn report through the
// cell cache: integer metrics widen to float64 exactly, and the
// per-position membership flags travel as 0/1 series.
func memberToCache(res member.Result) runner.Result {
	k := len(res.Deliveries)
	memb, alive, oracle := make([]int64, k), make([]int64, k), make([]int64, k)
	for i := 0; i < k; i++ {
		if res.Member[i] {
			memb[i] = 1
		}
		if res.Alive[i] {
			alive[i] = 1
		}
		if res.Oracle[i] {
			oracle[i] = 1
		}
	}
	oh := res.Overhead
	return runner.Result{
		Metrics: map[string]float64{
			"latency":      float64(res.Latency),
			"delivered":    float64(res.Delivered),
			"undelivered":  float64(res.Undelivered),
			"left":         float64(res.Left),
			"dead":         float64(res.Dead),
			"grafts":       float64(res.Grafts),
			"events":       float64(res.Events),
			"fallback_at":  float64(res.FallbackAt),
			"worms":        float64(res.Worms),
			"sends":        float64(oh.Sends),
			"retransmits":  float64(oh.Retransmits),
			"cancelled":    float64(oh.Cancelled),
			"repair_sends": float64(oh.RepairSends),
			"orphan_sends": float64(oh.OrphanSends),
			"repairs":      float64(oh.Repairs),
		},
		Series: map[string][]int64{
			"deliveries": res.Deliveries,
			"member":     memb,
			"alive":      alive,
			"oracle":     oracle,
		},
	}
}

func memberFromCache(r runner.Result) member.Result {
	k := len(r.Series["deliveries"])
	memb, alive, oracle := make([]bool, k), make([]bool, k), make([]bool, k)
	for i := 0; i < k; i++ {
		memb[i] = r.Series["member"][i] != 0
		alive[i] = r.Series["alive"][i] != 0
		oracle[i] = r.Series["oracle"][i] != 0
	}
	return member.Result{
		Latency:     int64(r.Metric("latency")),
		Deliveries:  r.Series["deliveries"],
		Member:      memb,
		Alive:       alive,
		Oracle:      oracle,
		Delivered:   int(r.Metric("delivered")),
		Undelivered: int(r.Metric("undelivered")),
		Left:        int(r.Metric("left")),
		Dead:        int(r.Metric("dead")),
		Overhead: mcastsim.Overhead{
			Sends:       int64(r.Metric("sends")),
			Retransmits: int64(r.Metric("retransmits")),
			Cancelled:   int64(r.Metric("cancelled")),
			RepairSends: int64(r.Metric("repair_sends")),
			OrphanSends: int64(r.Metric("orphan_sends")),
			Repairs:     int64(r.Metric("repairs")),
		},
		Grafts:     int64(r.Metric("grafts")),
		Events:     int(r.Metric("events")),
		FallbackAt: int64(r.Metric("fallback_at")),
		Worms:      int64(r.Metric("worms")),
	}
}

// trafficToCache/trafficFromCache round-trip the summary-relevant part
// of a traffic report through the cell cache: the full Metrics block
// plus per-request service times for -v. Integer fields widen to
// float64 exactly, and the float metrics survive because the cache's
// JSON encoding round-trips float64 bit for bit.
func trafficToCache(res traffic.Result) runner.Result {
	m := res.Metrics
	nr := len(res.Requests)
	arrive, start, done := make([]int64, nr), make([]int64, nr), make([]int64, nr)
	ks, sizes, algos := make([]int64, nr), make([]int64, nr), make([]int64, nr)
	for i, rr := range res.Requests {
		arrive[i], start[i], done[i] = rr.Arrive, rr.Start, rr.Done
		ks[i], sizes[i] = int64(rr.K), int64(rr.Bytes)
		algos[i] = int64(rr.Algo)
	}
	return runner.Result{
		Metrics: map[string]float64{
			"requests":           float64(m.Requests),
			"measured":           float64(m.Measured),
			"completed":          float64(m.Completed),
			"shed":               float64(m.Shed),
			"completed_measured": float64(m.CompletedMeasured),
			"shed_measured":      float64(m.ShedMeasured),
			"abandoned":          float64(m.AbandonedDests),
			"retransmits":        float64(m.Retransmits),
			"repair_sends":       float64(m.RepairSends),
			"cancelled":          float64(m.Cancelled),
			"warm_start":         float64(m.WarmStart),
			"last_arrival":       float64(m.LastArrival),
			"end":                float64(m.End),
			"offered":            m.OfferedPerMcycle,
			"delivered":          m.DeliveredPerMcycle,
			"p50":                m.P50,
			"p99":                m.P99,
			"p999":               m.P999,
			"mean_latency":       m.MeanLatency,
			"queue_delay":        m.MeanQueueDelay,
			"max_queue_delay":    float64(m.MaxQueueDelay),
			"occupancy":          m.MeanOccupancy,
			"worms":              float64(m.Worms),
			"blocked":            float64(m.BlockedCycles),
			"wait":               float64(m.InjectWaitCycles),
			"cycles":             float64(m.Cycles),
		},
		Series: map[string][]int64{
			"arrive": arrive, "start": start, "done": done, "k": ks, "bytes": sizes,
			"algo": algos,
		},
	}
}

func trafficFromCache(r runner.Result) traffic.Result {
	arrive := r.Series["arrive"]
	reqs := make([]traffic.RequestResult, len(arrive))
	for i := range reqs {
		start := r.Series["start"][i]
		// Entries written before the selector existed carry no algo
		// series; those runs were static (-1) by construction.
		algo := int64(-1)
		if a := r.Series["algo"]; a != nil {
			algo = a[i]
		}
		reqs[i] = traffic.RequestResult{
			Arrive: arrive[i],
			Start:  start,
			Done:   r.Series["done"][i],
			K:      int(r.Series["k"][i]),
			Bytes:  int(r.Series["bytes"][i]),
			Shed:   start < 0,
			Algo:   int(algo),
		}
	}
	return traffic.Result{
		Requests: reqs,
		Metrics: traffic.Metrics{
			Requests:           int(r.Metric("requests")),
			Measured:           int(r.Metric("measured")),
			Completed:          int(r.Metric("completed")),
			Shed:               int(r.Metric("shed")),
			CompletedMeasured:  int(r.Metric("completed_measured")),
			ShedMeasured:       int(r.Metric("shed_measured")),
			AbandonedDests:     int(r.Metric("abandoned")),
			Retransmits:        int64(r.Metric("retransmits")),
			RepairSends:        int64(r.Metric("repair_sends")),
			Cancelled:          int64(r.Metric("cancelled")),
			WarmStart:          int64(r.Metric("warm_start")),
			LastArrival:        int64(r.Metric("last_arrival")),
			End:                int64(r.Metric("end")),
			OfferedPerMcycle:   r.Metric("offered"),
			DeliveredPerMcycle: r.Metric("delivered"),
			P50:                r.Metric("p50"),
			P99:                r.Metric("p99"),
			P999:               r.Metric("p999"),
			MeanLatency:        r.Metric("mean_latency"),
			MeanQueueDelay:     r.Metric("queue_delay"),
			MaxQueueDelay:      int64(r.Metric("max_queue_delay")),
			MeanOccupancy:      r.Metric("occupancy"),
			Worms:              int64(r.Metric("worms")),
			BlockedCycles:      int64(r.Metric("blocked")),
			InjectWaitCycles:   int64(r.Metric("wait")),
			Cycles:             int64(r.Metric("cycles")),
		},
	}
}

// softwareKey canonically encodes the software cost model for cache
// keys (same encoding as internal/exp's cell keys).
func softwareKey(soft model.Software) string {
	enc := func(l model.Linear) string { return fmt.Sprintf("%g+%g/B", l.Fixed, l.PerByte) }
	return fmt.Sprintf("send=%s,recv=%s,hold=%s", enc(soft.Send), enc(soft.Recv), enc(soft.Hold))
}

// mcastToCache/mcastFromCache round-trip a plain simulation report
// through the cell cache. Every field is an int64 cycle or message
// count, so the float64 metric encoding is exact.
func mcastToCache(res mcastsim.Result) runner.Result {
	return runner.Result{
		Metrics: map[string]float64{
			"latency": float64(res.Latency),
			"worms":   float64(res.Worms),
			"blocked": float64(res.BlockedCycles),
			"wait":    float64(res.InjectWaitCycles),
			"cycles":  float64(res.Cycles),
		},
		Series: map[string][]int64{"deliveries": res.Deliveries},
	}
}

func mcastFromCache(r runner.Result) mcastsim.Result {
	return mcastsim.Result{
		Latency:          int64(r.Metric("latency")),
		Deliveries:       r.Series["deliveries"],
		Worms:            int64(r.Metric("worms")),
		BlockedCycles:    int64(r.Metric("blocked")),
		InjectWaitCycles: int64(r.Metric("wait")),
		Cycles:           int64(r.Metric("cycles")),
	}
}

// recoverToCache/recoverFromCache do the same for a reliable-delivery
// report, carrying the per-position statuses as an int64 series.
func recoverToCache(res recov.Result) runner.Result {
	status := make([]int64, len(res.Status))
	adopted := make([]int64, len(res.AdoptedBy))
	for i, s := range res.Status {
		status[i] = int64(s)
	}
	for i, a := range res.AdoptedBy {
		adopted[i] = int64(a)
	}
	oh := res.Overhead
	return runner.Result{
		Metrics: map[string]float64{
			"latency":      float64(res.Latency),
			"delivered":    float64(res.Delivered),
			"abandoned":    float64(res.Abandoned),
			"fallback_at":  float64(res.FallbackAt),
			"worms":        float64(res.Worms),
			"blocked":      float64(res.BlockedCycles),
			"wait":         float64(res.InjectWaitCycles),
			"cycles":       float64(res.Cycles),
			"sends":        float64(oh.Sends),
			"retransmits":  float64(oh.Retransmits),
			"cancelled":    float64(oh.Cancelled),
			"repair_sends": float64(oh.RepairSends),
			"orphan_sends": float64(oh.OrphanSends),
			"repairs":      float64(oh.Repairs),
		},
		Series: map[string][]int64{"deliveries": res.Deliveries, "status": status, "adopted_by": adopted},
	}
}

func recoverFromCache(r runner.Result) recov.Result {
	status := make([]mcastsim.DestStatus, len(r.Series["status"]))
	for i, s := range r.Series["status"] {
		status[i] = mcastsim.DestStatus(s)
	}
	adopted := make([]int, len(r.Series["adopted_by"]))
	for i, a := range r.Series["adopted_by"] {
		adopted[i] = int(a)
	}
	return recov.Result{
		Latency:    int64(r.Metric("latency")),
		Deliveries: r.Series["deliveries"],
		Status:     status,
		AdoptedBy:  adopted,
		Delivered:  int(r.Metric("delivered")),
		Abandoned:  int(r.Metric("abandoned")),
		Overhead: mcastsim.Overhead{
			Sends:       int64(r.Metric("sends")),
			Retransmits: int64(r.Metric("retransmits")),
			Cancelled:   int64(r.Metric("cancelled")),
			RepairSends: int64(r.Metric("repair_sends")),
			OrphanSends: int64(r.Metric("orphan_sends")),
			Repairs:     int64(r.Metric("repairs")),
		},
		FallbackAt:       int64(r.Metric("fallback_at")),
		Worms:            int64(r.Metric("worms")),
		BlockedCycles:    int64(r.Metric("blocked")),
		InjectWaitCycles: int64(r.Metric("wait")),
		Cycles:           int64(r.Metric("cycles")),
	}
}

// printRecoveredDeliveries lists every chain member in delivery order
// with its recovery status; abandoned members sort last.
func printRecoveredDeliveries(ch chain.Chain, res recov.Result) {
	type del struct {
		node   int
		at     int64
		status mcastsim.DestStatus
	}
	var ds []del
	for i, d := range res.Deliveries {
		ds = append(ds, del{node: ch[i], at: d, status: res.Status[i]})
	}
	sort.Slice(ds, func(i, j int) bool {
		ai, aj := ds[i].at, ds[j].at
		if (ai < 0) != (aj < 0) {
			return aj < 0 // delivered before abandoned
		}
		if ai != aj {
			return ai < aj
		}
		return ds[i].node < ds[j].node
	})
	fmt.Println("\ndeliveries (node: cycle status):")
	for _, d := range ds {
		if d.at < 0 {
			fmt.Printf("  %4d: -     %s\n", d.node, d.status)
		} else {
			fmt.Printf("  %4d: %-6d%s\n", d.node, d.at, d.status)
		}
	}
}
