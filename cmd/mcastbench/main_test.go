package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		var out []byte
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(out)
	}()
	ferr := fn()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done, ferr
}

func TestRunFigure1(t *testing.T) {
	out, err := capture(t, func() error { return run(options{fig: "1", trials: 2, seed: 1, workers: 1}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "130 (paper: 130)") || !strings.Contains(out, "165 (paper: 165)") {
		t.Fatalf("figure 1 output wrong:\n%s", out)
	}
}

func TestRunRatioText(t *testing.T) {
	out, err := capture(t, func() error { return run(options{fig: "ratio", trials: 2, seed: 1, workers: 1, chart: true}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "binomial") || !strings.Contains(out, "sequential") {
		t.Fatalf("ratio output wrong:\n%s", out)
	}
}

func TestRunFigure3CSV(t *testing.T) {
	out, err := capture(t, func() error { return run(options{fig: "3", trials: 2, seed: 1, workers: 1, csv: true}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "U-mesh mean") || strings.Count(out, "\n") < 5 {
		t.Fatalf("CSV output wrong:\n%s", out)
	}
}

func TestRunHypercube(t *testing.T) {
	out, err := capture(t, func() error { return run(options{fig: "h1", trials: 1, seed: 1, workers: 1}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "OPT-cube") {
		t.Fatalf("h1 output wrong:\n%s", out)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	_, err := capture(t, func() error { return run(options{fig: "nope", trials: 2, seed: 1, workers: 1}) })
	if err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunDeterministicOutput(t *testing.T) {
	f := func() string {
		out, err := capture(t, func() error { return run(options{fig: "conc", trials: 2, seed: 5, workers: 1, chart: true}) })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if f() != f() {
		t.Fatal("same seed produced different tables")
	}
}

// TestRunShardCacheMerge: the CLI flags compose end to end — two shard
// runs fill a cache, the merge run recomputes nothing and prints the
// same bytes as a serial cold run, and the summary records it.
func TestRunShardCacheMerge(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache")
	sumPath := filepath.Join(dir, "summary.json")
	serial, err := capture(t, func() error {
		return run(options{fig: "conc", trials: 2, seed: 5, workers: 1})
	})
	if err != nil {
		t.Fatal(err)
	}
	for sh := 0; sh < 2; sh++ {
		out, err := capture(t, func() error {
			return run(options{fig: "conc", trials: 2, seed: 5, workers: 1,
				shard: fmt.Sprintf("%d/2", sh), cacheDir: cache})
		})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "deferred") {
			t.Fatalf("shard %d did not defer its table:\n%s", sh, out)
		}
	}
	merged, err := capture(t, func() error {
		return run(options{fig: "conc", trials: 2, seed: 5, workers: 1,
			cacheDir: cache, resume: true, summary: sumPath})
	})
	if err != nil {
		t.Fatal(err)
	}
	if merged != serial {
		t.Fatalf("merge differs from serial cold run:\nserial:\n%s\nmerged:\n%s", serial, merged)
	}
	buf, err := os.ReadFile(sumPath)
	if err != nil {
		t.Fatal(err)
	}
	var sum struct {
		Computed int  `json:"computed"`
		Cached   int  `json:"cached"`
		Complete bool `json:"complete"`
	}
	if err := json.Unmarshal(buf, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Computed != 0 || sum.Cached == 0 || !sum.Complete {
		t.Fatalf("summary = %+v, want computed 0, cached > 0, complete", sum)
	}
}

func TestParseShard(t *testing.T) {
	if _, _, err := parseShard("2/2"); err == nil {
		t.Fatal("shard index == n must be rejected")
	}
	if _, _, err := parseShard("junk"); err == nil {
		t.Fatal("malformed shard must be rejected")
	}
	i, n, err := parseShard("1/4")
	if err != nil || i != 1 || n != 4 {
		t.Fatalf("parseShard(1/4) = %d, %d, %v", i, n, err)
	}
	i, n, err = parseShard("")
	if err != nil || i != 0 || n != 1 {
		t.Fatalf("parseShard(\"\") = %d, %d, %v", i, n, err)
	}
}

// TestRunFigureF5: the churn figure prints all three policy tables and
// is reproducible run to run.
func TestRunFigureF5(t *testing.T) {
	f := func() string {
		out, err := capture(t, func() error { return run(options{fig: "f5", trials: 2, seed: 3, workers: 1}) })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	out := f()
	for _, want := range []string{
		"F5a: completion latency under churn",
		"F5b: delivered fraction under churn",
		"F5c: repair sends under churn",
		"incremental (mesh)", "binomial (BMIN)", "reachable (mesh)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in f5 output:\n%s", want, out)
		}
	}
	if out != f() {
		t.Fatal("same seed produced different f5 tables")
	}
}
