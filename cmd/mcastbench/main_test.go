package main

import (
	"os"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		var out []byte
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(out)
	}()
	ferr := fn()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done, ferr
}

func TestRunFigure1(t *testing.T) {
	out, err := capture(t, func() error { return run("1", 2, 1, 1, false, false) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "130 (paper: 130)") || !strings.Contains(out, "165 (paper: 165)") {
		t.Fatalf("figure 1 output wrong:\n%s", out)
	}
}

func TestRunRatioText(t *testing.T) {
	out, err := capture(t, func() error { return run("ratio", 2, 1, 1, false, true) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "binomial") || !strings.Contains(out, "sequential") {
		t.Fatalf("ratio output wrong:\n%s", out)
	}
}

func TestRunFigure3CSV(t *testing.T) {
	out, err := capture(t, func() error { return run("3", 2, 1, 1, true, false) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "U-mesh mean") || strings.Count(out, "\n") < 5 {
		t.Fatalf("CSV output wrong:\n%s", out)
	}
}

func TestRunHypercube(t *testing.T) {
	out, err := capture(t, func() error { return run("h1", 1, 1, 1, false, false) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "OPT-cube") {
		t.Fatalf("h1 output wrong:\n%s", out)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	_, err := capture(t, func() error { return run("nope", 2, 1, 1, false, false) })
	if err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunDeterministicOutput(t *testing.T) {
	f := func() string {
		out, err := capture(t, func() error { return run("conc", 2, 5, 1, false, true) })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if f() != f() {
		t.Fatal("same seed produced different tables")
	}
}
