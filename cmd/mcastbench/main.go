// Command mcastbench regenerates the paper's figures and this
// repository's ablations on the flit-level simulator and prints them as
// aligned tables (or CSV).
//
// Usage:
//
//	mcastbench -fig 2            # Figure 2: 32-node size sweep, 16x16 mesh
//	mcastbench -fig all -csv     # everything, machine readable
//	mcastbench -fig 3 -trials 4  # quicker, noisier
//
// Every sweep decomposes into a manifest of independent cells, so runs
// can be split across machines and resumed:
//
//	mcastbench -fig all -shard 0/4 -cache results/cache   # machine 1 of 4
//	mcastbench -fig all -resume -summary -                # merge from cache
//
// The f4 scale figure additionally accepts -parallel P (run the
// wall-time ladder with P simulation domains) and -big (extend the
// ladder to the 1024x1024 mesh and the 65536-node BMIN):
//
//	mcastbench -fig f4 -parallel 4 -trials 2
//
// The f6 tuner figure additionally accepts -surface FILE (write the
// compiled crossover surfaces as a hash-verified JSON artifact):
//
//	mcastbench -fig f6 -surface results/tuner_surface.json
//
// Figures: 1, 2, 2b, 3, b2, b3, contention, ratio, addr, policy, e1, e2, h1, t1, b4, conc, model, f1, f2, f3, f4, f5, f6, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bmin"
	"repro/internal/exp"
	"repro/internal/model"
	"repro/internal/runner"
	"repro/internal/tuner"
	"repro/internal/wallclock"
	"repro/internal/wormhole"
)

type options struct {
	fig      string
	trials   int
	seed     uint64
	workers  int
	csv      bool
	chart    bool
	shard    string // "i/n", or "" for all cells
	cacheDir string
	resume   bool
	summary  string // summary JSON path, "-" = stderr, "" = none
	progress bool
	parallel int
	big      bool
	surface  string
}

func main() {
	var o options
	flag.StringVar(&o.fig, "fig", "all", "figure to regenerate: 1, 2, 2b, 3, b2, b3, contention, ratio, addr, policy, e1, e2, h1, t1, b4, conc, model, f1, f2, f3, f4, f5, f6, all")
	flag.IntVar(&o.trials, "trials", 16, "random placements per data point (the paper uses 16)")
	flag.Uint64Var(&o.seed, "seed", 1997, "PRNG seed")
	flag.IntVar(&o.workers, "workers", 0, "parallel workers (0 = GOMAXPROCS)")
	flag.BoolVar(&o.csv, "csv", false, "emit CSV instead of aligned text")
	flag.BoolVar(&o.chart, "chart", false, "also draw each figure as an ASCII chart")
	flag.StringVar(&o.shard, "shard", "", "compute only slice i of n of every sweep manifest, format i/n (e.g. 0/4); requires -cache to be useful")
	flag.StringVar(&o.cacheDir, "cache", "", "content-addressed cell cache directory; without -resume every owned cell recomputes and overwrites its entry")
	flag.BoolVar(&o.resume, "resume", false, "reuse cached cell results before computing (cache dir defaults to results/cache when -cache is unset)")
	flag.StringVar(&o.summary, "summary", "", "write a per-run JSON summary (cells computed/cached/skipped, wall time) to this file; \"-\" = stderr")
	flag.BoolVar(&o.progress, "progress", false, "print progress/ETA lines to stderr")
	flag.IntVar(&o.parallel, "parallel", 0, "with -fig f4: also run the wall-time ladder with this many simulation domains (>= 2) and print serial-vs-parallel timings; 0 skips the ladder")
	flag.BoolVar(&o.big, "big", false, "with -fig f4 -parallel: extend the wall-time ladder to the 1024x1024 mesh and the 65536-node BMIN")
	flag.StringVar(&o.surface, "surface", "", "with -fig f6: write the compiled crossover surfaces (hash-verified JSON artifact) to this file")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "mcastbench:", err)
		os.Exit(1)
	}
}

// parseShard parses "i/n" into (i, n); "" means (0, 1) — all cells.
func parseShard(s string) (int, int, error) {
	if s == "" {
		return 0, 1, nil
	}
	var i, n int
	if _, err := fmt.Sscanf(s, "%d/%d", &i, &n); err != nil {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/n, e.g. 0/4)", s)
	}
	if n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("bad -shard %q: need 0 <= i < n", s)
	}
	return i, n, nil
}

func run(o options) error {
	shard, nshards, err := parseShard(o.shard)
	if err != nil {
		return err
	}
	ex := &runner.Exec{
		Workers: o.workers,
		Shard:   shard, NShards: nshards,
		Resume:  o.resume,
		Summary: &runner.Summary{},
	}
	cacheDir := o.cacheDir
	if cacheDir == "" && o.resume {
		cacheDir = filepath.Join("results", "cache")
	}
	if cacheDir != "" {
		c, err := runner.OpenCache(cacheDir)
		if err != nil {
			return err
		}
		ex.Cache = c
	}
	if o.progress {
		ex.Progress = os.Stderr
	}
	start := wallclock.Now()

	cfg := wormhole.DefaultConfig()
	newSuite := func(p exp.Platform) *exp.Suite {
		s := exp.DefaultSuite(p)
		s.Trials, s.Seed, s.Workers = o.trials, o.seed, o.workers
		s.Exec = ex
		return s
	}
	meshSuite := func() *exp.Suite { return newSuite(exp.MeshPlatform(16, 16, cfg)) }
	bminSuite := func() *exp.Suite { return newSuite(exp.BMINPlatform(128, bmin.AscentStraight, cfg)) }

	emit := func(t *exp.Table, err error) error {
		if err != nil {
			return err
		}
		if t.Incomplete {
			// A shard run computed (and cached) its slice of this sweep;
			// the merge happens on whichever run sees the full cache.
			fmt.Printf("%s\n  [deferred: shard %s computed its cells; merge needs every shard's cache entries]\n", t.Title, o.shard)
			return nil
		}
		if o.csv {
			fmt.Println("#", t.Title)
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Format())
		}
		if o.chart {
			fmt.Println(t.Chart(64, 16))
		}
		return nil
	}

	figures := map[string]func() error{
		"1": func() error {
			f, err := exp.Figure1()
			if err != nil {
				return err
			}
			fmt.Printf("Figure 1 (worked example): 6x6 mesh, 8 nodes, t_hold=%d, t_end=%d\n", f.THold, f.TEnd)
			fmt.Printf("  OPT-mesh multicast latency: %d (paper: 130)\n", f.OptLatency)
			fmt.Printf("  U-mesh   multicast latency: %d (paper: 165)\n", f.UMeshLat)
			fmt.Println("  OPT tree (chain positions, children in send order):")
			fmt.Print(indent(f.OptTree.String(), "    "))
			fmt.Println("  U-mesh tree:")
			fmt.Print(indent(f.UMeshTree.String(), "    "))
			return nil
		},
		"2":  func() error { return emit(exp.Figure2(meshSuite())) },
		"2b": func() error { return emit(exp.Figure2b(meshSuite())) },
		"3":  func() error { return emit(exp.Figure3(meshSuite())) },
		"b2": func() error { return emit(exp.BMINSizes(bminSuite())) },
		"b3": func() error { return emit(exp.BMINNodes(bminSuite())) },
		"contention": func() error {
			return emit(exp.ContentionComparison(meshSuite(), bminSuite(), 32, exp.DefaultSizes()))
		},
		"ratio": func() error {
			ratios := []float64{0.01, 0.05, 0.1, 0.2, 0.36, 0.5, 0.75, 1.0}
			return emit(exp.RatioAblation(32, 1000, ratios), nil)
		},
		"addr": func() error {
			return emit(exp.AddrAblation(meshSuite(), 32, 4096, 4))
		},
		"policy": func() error {
			return emit(exp.PolicyAblation(128, cfg, model.DefaultSoftware(), o.trials, o.seed, 32, 4096, ex))
		},
		"e1": func() error {
			return emit(exp.ButterflyTemporal(newSuite(exp.ButterflyPlatform(128, cfg)), 32, exp.DefaultSizes()))
		},
		"h1": func() error {
			return emit(exp.HypercubeSizes(newSuite(exp.HypercubePlatform(8, cfg)), 32, exp.DefaultSizes()))
		},
		"model": func() error {
			return emit(exp.ModelValidation(meshSuite(), []int{4, 8, 16, 32, 64, 128, 256}, 4096))
		},
		"b4": func() error {
			sizes := []int{256, 1024, 4096, 16384, 65536, 262144, 1048576}
			return emit(exp.BroadcastCrossover(meshSuite(), sizes))
		},
		"t1": func() error {
			return emit(exp.TorusSizes(newSuite(exp.TorusPlatform(16, 16, cfg)), 32, exp.DefaultSizes()))
		},
		"conc": func() error {
			return emit(exp.ConcurrentInterference(meshSuite(), []int{1, 2, 4, 8}, 16, 4096))
		},
		"e2": func() error {
			return emit(exp.TemporalTuning(newSuite(exp.ButterflyPlatform(128, cfg)), 32, 4096, 400))
		},
		"f1": func() error {
			// A k=32 chain spans the fabric, so a run survives only if every
			// hop can route around its dead links; past a few percent almost
			// no run delivers. Sweep the transition region.
			return emit(exp.FaultSweep(meshSuite(), bminSuite(), 32, 4096, []int{0, 1, 2, 3, 4, 5}, o.seed))
		},
		"f2": func() error {
			// The same fault plans as F1, now with the recovery layer on:
			// completion latency, delivered fraction vs the reachability
			// oracle, and the retransmission overhead bought.
			f2, err := exp.RecoverSweep(meshSuite(), bminSuite(), 32, 4096, []int{0, 1, 2, 3, 4, 5}, o.seed)
			if err != nil {
				return err
			}
			for _, t := range []*exp.Table{f2.Latency, f2.Delivered, f2.Overhead} {
				if err := emit(t, nil); err != nil {
					return err
				}
			}
			return nil
		},
		"f3": func() error {
			// The open system: sustained multicast service under seeded
			// Poisson load. Offered rate sweeps through the saturation knee
			// of every tree; the notes pin each series' knee.
			f3, err := exp.TrafficSweep(meshSuite(), bminSuite(), exp.DefaultTrafficRates(), exp.DefaultTrafficScenario())
			if err != nil {
				return err
			}
			for _, t := range []*exp.Table{f3.Latency, f3.Throughput, f3.Queue} {
				if err := emit(t, nil); err != nil {
					return err
				}
			}
			return nil
		},
		"f5": func() error {
			// Dynamic membership: the reliable multicast under seeded
			// join/leave/crash/rejoin churn, comparing full re-planning,
			// incremental graft/excise repair and the binomial fallback.
			// Rates are hot enough that churn overlaps the delivery wave,
			// where the repair policies actually diverge.
			f5, err := exp.ChurnSweep(meshSuite(), bminSuite(), 32, 4096, []int{100, 200, 400, 800, 1600}, o.seed)
			if err != nil {
				return err
			}
			for _, t := range []*exp.Table{f5.Latency, f5.Delivered, f5.Repair} {
				if err := emit(t, nil); err != nil {
					return err
				}
			}
			return nil
		},
		"f6": func() error {
			// The crossover surface as a service: train a per-platform
			// best-algorithm surface on half the trials, evaluate the
			// selector against the static envelope on the held-out half.
			f6, err := exp.TunerSweep(meshSuite(), bminSuite(), exp.DefaultTunerGrid(), o.seed)
			if err != nil {
				return err
			}
			for _, t := range []*exp.Table{f6.Selection, f6.Latency, f6.Regret} {
				if err := emit(t, nil); err != nil {
					return err
				}
			}
			if o.surface != "" {
				if len(f6.Surfaces) == 0 {
					fmt.Fprintf(os.Stderr, "mcastbench: -surface skipped: shard run built no surfaces\n")
					return nil
				}
				buf, err := tuner.EncodeSet(f6.Surfaces...)
				if err != nil {
					return err
				}
				return os.WriteFile(o.surface, buf, 0o644)
			}
			return nil
		},
		"f4": func() error {
			// Scalability: the same 32-node multicast on ever larger
			// fabrics. The latency table is deterministic (part of the
			// golden output); the wall-time ladder below it is run
			// metadata, printed only when -parallel asks for it.
			if err := emit(exp.ScaleLatency(cfg, model.DefaultSoftware(), o.trials, o.seed, ex)); err != nil {
				return err
			}
			if o.parallel > 0 {
				nowMS := func() float64 { return float64(wallclock.Since(start).Microseconds()) / 1000 }
				rows, err := exp.ScaleWall(o.parallel, o.big, cfg, model.DefaultSoftware(), o.seed, nowMS)
				if err != nil {
					return err
				}
				fmt.Printf("F4 wall-time ladder (P=%d; display-only, excluded from golden output):\n", o.parallel)
				fmt.Printf("  %-28s %8s %6s %3s %10s %10s %10s %8s\n",
					"fabric", "nodes", "groups", "k", "cycles", "serial ms", "par ms", "speedup")
				for _, r := range rows {
					fmt.Printf("  %-28s %8d %6d %3d %10d %10.1f %10.1f %7.2fx\n",
						r.Fabric, r.Nodes, r.Groups, r.K, r.Cycles, r.SerialMS, r.ParallelMS, r.Speedup)
				}
			}
			return nil
		},
	}

	runFigs := func() error {
		order := []string{"1", "2", "2b", "3", "b2", "b3", "contention", "ratio", "addr", "policy", "e1", "e2", "h1", "t1", "b4", "conc", "model", "f1", "f2", "f3", "f4", "f5", "f6"}
		if o.fig == "all" {
			for _, name := range order {
				fmt.Printf("==== %s ====\n", name)
				if err := figures[name](); err != nil {
					return fmt.Errorf("figure %s: %w", name, err)
				}
				fmt.Println()
			}
			return nil
		}
		f, ok := figures[o.fig]
		if !ok {
			return fmt.Errorf("unknown figure %q (want one of %s, all)", o.fig, strings.Join(order, ", "))
		}
		return f()
	}
	if err := runFigs(); err != nil {
		return err
	}

	ex.Summary.Finish(o.fig, o.shard, o.workers, cacheDir, wallclock.Since(start).Milliseconds())
	if o.summary != "" {
		return ex.Summary.WriteFile(o.summary)
	}
	return nil
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
