// Command mcastbench regenerates the paper's figures and this
// repository's ablations on the flit-level simulator and prints them as
// aligned tables (or CSV).
//
// Usage:
//
//	mcastbench -fig 2            # Figure 2: 32-node size sweep, 16x16 mesh
//	mcastbench -fig all -csv     # everything, machine readable
//	mcastbench -fig 3 -trials 4  # quicker, noisier
//
// Figures: 1, 2, 2b, 3, b2, b3, contention, ratio, addr, policy, e1, e2, h1, t1, b4, conc, model, f1, f2, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bmin"
	"repro/internal/exp"
	"repro/internal/model"
	"repro/internal/wormhole"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 1, 2, 2b, 3, b2, b3, contention, ratio, addr, policy, e1, e2, h1, t1, b4, conc, model, f1, f2, all")
		trials  = flag.Int("trials", 16, "random placements per data point (the paper uses 16)")
		seed    = flag.Uint64("seed", 1997, "PRNG seed")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		chart   = flag.Bool("chart", false, "also draw each figure as an ASCII chart")
	)
	flag.Parse()

	if err := run(*fig, *trials, *seed, *workers, *csv, *chart); err != nil {
		fmt.Fprintln(os.Stderr, "mcastbench:", err)
		os.Exit(1)
	}
}

func run(fig string, trials int, seed uint64, workers int, csv, chart bool) error {
	cfg := wormhole.DefaultConfig()
	meshSuite := func() *exp.Suite {
		s := exp.DefaultSuite(exp.MeshPlatform(16, 16, cfg))
		s.Trials, s.Seed, s.Workers = trials, seed, workers
		return s
	}
	bminSuite := func() *exp.Suite {
		s := exp.DefaultSuite(exp.BMINPlatform(128, bmin.AscentStraight, cfg))
		s.Trials, s.Seed, s.Workers = trials, seed, workers
		return s
	}

	emit := func(t *exp.Table, err error) error {
		if err != nil {
			return err
		}
		if csv {
			fmt.Println("#", t.Title)
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Format())
		}
		if chart {
			fmt.Println(t.Chart(64, 16))
		}
		return nil
	}

	figures := map[string]func() error{
		"1": func() error {
			f, err := exp.Figure1()
			if err != nil {
				return err
			}
			fmt.Printf("Figure 1 (worked example): 6x6 mesh, 8 nodes, t_hold=%d, t_end=%d\n", f.THold, f.TEnd)
			fmt.Printf("  OPT-mesh multicast latency: %d (paper: 130)\n", f.OptLatency)
			fmt.Printf("  U-mesh   multicast latency: %d (paper: 165)\n", f.UMeshLat)
			fmt.Println("  OPT tree (chain positions, children in send order):")
			fmt.Print(indent(f.OptTree.String(), "    "))
			fmt.Println("  U-mesh tree:")
			fmt.Print(indent(f.UMeshTree.String(), "    "))
			return nil
		},
		"2":  func() error { return emit(exp.Figure2(meshSuite())) },
		"2b": func() error { return emit(exp.Figure2b(meshSuite())) },
		"3":  func() error { return emit(exp.Figure3(meshSuite())) },
		"b2": func() error { return emit(exp.BMINSizes(bminSuite())) },
		"b3": func() error { return emit(exp.BMINNodes(bminSuite())) },
		"contention": func() error {
			return emit(exp.ContentionComparison(meshSuite(), bminSuite(), 32, exp.DefaultSizes()))
		},
		"ratio": func() error {
			ratios := []float64{0.01, 0.05, 0.1, 0.2, 0.36, 0.5, 0.75, 1.0}
			return emit(exp.RatioAblation(32, 1000, ratios), nil)
		},
		"addr": func() error {
			return emit(exp.AddrAblation(meshSuite(), 32, 4096, 4))
		},
		"policy": func() error {
			return emit(exp.PolicyAblation(128, cfg, model.DefaultSoftware(), trials, seed, 32, 4096))
		},
		"e1": func() error {
			s := exp.DefaultSuite(exp.ButterflyPlatform(128, cfg))
			s.Trials, s.Seed, s.Workers = trials, seed, workers
			return emit(exp.ButterflyTemporal(s, 32, exp.DefaultSizes()))
		},
		"h1": func() error {
			s := exp.DefaultSuite(exp.HypercubePlatform(8, cfg))
			s.Trials, s.Seed, s.Workers = trials, seed, workers
			return emit(exp.HypercubeSizes(s, 32, exp.DefaultSizes()))
		},
		"model": func() error {
			return emit(exp.ModelValidation(meshSuite(), []int{4, 8, 16, 32, 64, 128, 256}, 4096))
		},
		"b4": func() error {
			s := exp.DefaultSuite(exp.MeshPlatform(16, 16, cfg))
			s.Trials, s.Seed, s.Workers = trials, seed, workers
			sizes := []int{256, 1024, 4096, 16384, 65536, 262144, 1048576}
			return emit(exp.BroadcastCrossover(s, sizes))
		},
		"t1": func() error {
			s := exp.DefaultSuite(exp.TorusPlatform(16, 16, cfg))
			s.Trials, s.Seed, s.Workers = trials, seed, workers
			return emit(exp.TorusSizes(s, 32, exp.DefaultSizes()))
		},
		"conc": func() error {
			return emit(exp.ConcurrentInterference(meshSuite(), []int{1, 2, 4, 8}, 16, 4096))
		},
		"e2": func() error {
			s := exp.DefaultSuite(exp.ButterflyPlatform(128, cfg))
			s.Trials, s.Seed, s.Workers = trials, seed, workers
			return emit(exp.TemporalTuning(s, 32, 4096, 400))
		},
		"f1": func() error {
			// A k=32 chain spans the fabric, so a run survives only if every
			// hop can route around its dead links; past a few percent almost
			// no run delivers. Sweep the transition region.
			return emit(exp.FaultSweep(meshSuite(), bminSuite(), 32, 4096, []int{0, 1, 2, 3, 4, 5}, seed))
		},
		"f2": func() error {
			// The same fault plans as F1, now with the recovery layer on:
			// completion latency, delivered fraction vs the reachability
			// oracle, and the retransmission overhead bought.
			f2, err := exp.RecoverSweep(meshSuite(), bminSuite(), 32, 4096, []int{0, 1, 2, 3, 4, 5}, seed)
			if err != nil {
				return err
			}
			for _, t := range []*exp.Table{f2.Latency, f2.Delivered, f2.Overhead} {
				if err := emit(t, nil); err != nil {
					return err
				}
			}
			return nil
		},
	}

	order := []string{"1", "2", "2b", "3", "b2", "b3", "contention", "ratio", "addr", "policy", "e1", "e2", "h1", "t1", "b4", "conc", "model", "f1", "f2"}
	if fig == "all" {
		for _, name := range order {
			fmt.Printf("==== %s ====\n", name)
			if err := figures[name](); err != nil {
				return fmt.Errorf("figure %s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	}
	f, ok := figures[fig]
	if !ok {
		return fmt.Errorf("unknown figure %q (want one of %s, all)", fig, strings.Join(order, ", "))
	}
	return f()
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
