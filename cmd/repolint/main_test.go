package main

import (
	"strings"
	"testing"
)

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"../../internal/sim"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d on clean package; stdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected diagnostics:\n%s", out.String())
	}
}

func TestSeededViolationsExitNonzero(t *testing.T) {
	// The panicstyle fixture lives under repro/internal/..., so the real
	// driver pipeline (loader, scoping, runner) flags it end to end.
	var out, errOut strings.Builder
	code := run([]string{"../../internal/analysis/panicstyle/testdata/src/a"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d on seeded violations, want 1; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[panicstyle]") {
		t.Errorf("missing panicstyle diagnostics in output:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "issue(s) found") {
		t.Errorf("missing summary on stderr:\n%s", errOut.String())
	}
}

func TestDocFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-doc"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d for -doc", code)
	}
	for _, name := range []string{"nodeterm", "maporder", "sharedcapture", "panicstyle", "errcheck"} {
		if !strings.Contains(out.String(), name+":") {
			t.Errorf("-doc output missing analyzer %s:\n%s", name, out.String())
		}
	}
}
