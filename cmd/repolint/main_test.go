package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/lint"
)

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"../../internal/sim"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d on clean package; stdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected diagnostics:\n%s", out.String())
	}
}

func TestSeededViolationsExitNonzero(t *testing.T) {
	// The panicstyle fixture lives under repro/internal/..., so the real
	// driver pipeline (loader, scoping, runner) flags it end to end.
	var out, errOut strings.Builder
	code := run([]string{"../../internal/analysis/panicstyle/testdata/src/a"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d on seeded violations, want 1; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[panicstyle]") {
		t.Errorf("missing panicstyle diagnostics in output:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "issue(s) found") {
		t.Errorf("missing summary on stderr:\n%s", errOut.String())
	}
}

func TestDocFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-doc"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d for -doc", code)
	}
	for _, name := range []string{
		"detclock", "errcheck", "hotalloc", "locksafe", "maporder",
		"nodeterm", "panicstyle", "sharedcapture", "waitleak",
	} {
		if !strings.Contains(out.String(), name+":") {
			t.Errorf("-doc output missing analyzer %s:\n%s", name, out.String())
		}
	}
}

// A pattern that matches no Go packages is an invocation error, not a
// clean run: a typo'd path in CI must fail the job rather than
// vacuously pass it.
func TestZeroPackagesExitsNonzero(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"./testdata/empty/..."}, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit %d on zero-package pattern, want 2; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "match no Go packages") {
		t.Errorf("stderr does not explain the empty match:\n%s", errOut.String())
	}
}

func TestUnknownFormatExitsNonzero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-format", "xml", "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d for unknown format, want 2", code)
	}
	if !strings.Contains(errOut.String(), `unknown -format "xml"`) {
		t.Errorf("stderr does not name the bad format:\n%s", errOut.String())
	}
}

func TestBaselineWithWriteBaselineRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-baseline", "x.json", "-write-baseline", "y.json", "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d for -baseline with -write-baseline, want 2", code)
	}
}

const seededFixture = "../../internal/analysis/panicstyle/testdata/src/a"

func TestBaselineRoundTripCLI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")

	var out, errOut strings.Builder
	if code := run([]string{"-write-baseline", path, seededFixture}, &out, &errOut); code != 0 {
		t.Fatalf("write-baseline exit %d; stderr:\n%s", code, errOut.String())
	}

	// With every current finding baselined, the same run is clean.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", path, seededFixture}, &out, &errOut); code != 0 {
		t.Fatalf("baselined run exit %d; stdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("baselined run still prints findings:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "accepted by baseline") {
		t.Errorf("stderr does not report accepted count:\n%s", errOut.String())
	}

	// Dropping an entry makes that finding new again: exit 1.
	b, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) == 0 {
		t.Fatal("seeded fixture produced an empty baseline")
	}
	b.Findings = b.Findings[1:]
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", path, seededFixture}, &out, &errOut); code != 1 {
		t.Fatalf("run with truncated baseline exit %d, want 1; stdout:\n%s", code, out.String())
	}

	// A corrupt or wrong-version baseline is an environment error.
	if err := os.WriteFile(path, []byte(`{"version": 99, "findings": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-baseline", path, seededFixture}, &out, &errOut); code != 2 {
		t.Fatalf("run with wrong-version baseline exit %d, want 2", code)
	}
}

func TestJSONFormat(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-format", "json", "../../internal/analysis/waitleak/testdata/src/a"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d on seeded fixture, want 1; stderr:\n%s", code, errOut.String())
	}
	var report struct {
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out.String()), &report); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(report.Findings) == 0 {
		t.Fatal("no findings in JSON output")
	}
	f := report.Findings[0]
	if f.Analyzer != "waitleak" || f.Line == 0 {
		t.Errorf("finding missing fields: %+v", f)
	}
	if strings.Contains(f.File, "\\") || filepath.IsAbs(f.File) {
		t.Errorf("file %q is not module-relative slash-separated", f.File)
	}
}

func TestSARIFFormat(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-format", "sarif", "../../internal/analysis/waitleak/testdata/src/a"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d on seeded fixture, want 1; stderr:\n%s", code, errOut.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("output is not SARIF JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF envelope: version=%q runs=%d", log.Version, len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "repolint" || len(r.Tool.Driver.Rules) == 0 {
		t.Errorf("driver not populated: %+v", r.Tool.Driver)
	}
	if len(r.Results) == 0 {
		t.Fatal("no results in SARIF output")
	}
	if r.Results[0].RuleID != "waitleak" {
		t.Errorf("ruleId = %q, want waitleak", r.Results[0].RuleID)
	}
	if uri := r.Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; !strings.HasPrefix(uri, "internal/") {
		t.Errorf("artifact URI %q is not module-relative", uri)
	}
}
