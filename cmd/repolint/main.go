// Command repolint runs the repo's static analyzers — the determinism
// and concurrency checks in internal/analysis — over the given package
// patterns and exits nonzero if any invariant is violated.
//
// Usage:
//
//	go run ./cmd/repolint ./...
//	go run ./cmd/repolint ./internal/exp ./internal/sim/...
//
// With no arguments it analyzes ./... relative to the current
// directory. Diagnostics are printed one per line as
// "file:line:col: [analyzer] message", sorted by position, so output
// is stable across runs. The -doc flag prints each analyzer's
// documentation instead of analyzing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	doc := fs.Bool("doc", false, "print analyzer documentation and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *doc {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	modRoot, err := lint.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	diags, err := lint.Run(loader, analysis.All(), dirs)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(wd, name); err == nil {
			name = rel
		}
		fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "repolint: %d issue(s) found\n", len(diags))
		return 1
	}
	return 0
}
