// Command repolint runs the repo's static analyzers — the determinism
// and concurrency checks in internal/analysis — over the given package
// patterns and exits nonzero if any invariant is violated.
//
// Usage:
//
//	go run ./cmd/repolint ./...
//	go run ./cmd/repolint -baseline results/lint_baseline.json ./...
//	go run ./cmd/repolint -write-baseline results/lint_baseline.json ./...
//	go run ./cmd/repolint -format json ./internal/exp
//
// With no arguments it analyzes ./... relative to the current
// directory. Diagnostics are printed one per line as
// "file:line:col: [analyzer] message", sorted by position, so output
// is stable across runs; -format json and -format sarif emit
// machine-readable findings instead. -baseline filters findings
// through a checked-in acceptance file and fails only on new ones;
// -write-baseline regenerates that file from the current findings.
// The -doc flag prints each analyzer's documentation instead of
// analyzing.
//
// Exit codes: 0 clean (or all findings baselined), 1 findings,
// 2 usage or environment error (including patterns that match no
// packages).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	doc := fs.Bool("doc", false, "print analyzer documentation and exit")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	baselinePath := fs.String("baseline", "", "accept findings recorded in this baseline file; fail only on new ones")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *doc {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "repolint: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}
	if *baselinePath != "" && *writeBaseline != "" {
		fmt.Fprintln(stderr, "repolint: -baseline and -write-baseline are mutually exclusive: checking against a file while rewriting it would always pass")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	modRoot, err := lint.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintf(stderr, "repolint: patterns %s match no Go packages\n", strings.Join(patterns, " "))
		return 2
	}
	diags, err := lint.Run(loader, analysis.All(), dirs)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}

	if *writeBaseline != "" {
		b := lint.NewBaseline(diags, modRoot)
		if err := b.WriteFile(*writeBaseline); err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "repolint: wrote %d accepted finding(s) to %s\n", len(diags), *writeBaseline)
		return 0
	}
	if *baselinePath != "" {
		b, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
		var accepted int
		diags, accepted = b.Apply(diags, modRoot)
		if accepted > 0 {
			fmt.Fprintf(stderr, "repolint: %d finding(s) accepted by baseline %s\n", accepted, *baselinePath)
		}
	}

	switch *format {
	case "json":
		writeJSON(stdout, diags, modRoot)
	case "sarif":
		writeSARIF(stdout, diags, modRoot)
	default:
		for _, d := range diags {
			name := d.Pos.Filename
			if rel, err := filepath.Rel(wd, name); err == nil {
				name = rel
			}
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "repolint: %d issue(s) found\n", len(diags))
		return 1
	}
	return 0
}

// jsonFinding is the -format json record: one object per diagnostic,
// with the file module-root-relative so output is checkout-portable
// (the same shape the baseline uses, plus position).
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func relSlash(modRoot, filename string) string {
	if rel, err := filepath.Rel(modRoot, filename); err == nil && !filepath.IsAbs(rel) {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

func writeJSON(w io.Writer, diags []lint.Diagnostic, modRoot string) {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			Analyzer: d.Analyzer,
			File:     relSlash(modRoot, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encode cannot fail on this shape; findings is plain data.
	_ = enc.Encode(struct {
		Findings []jsonFinding `json:"findings"`
	}{findings})
}

// writeSARIF emits a minimal SARIF 2.1.0 log: one run, one driver with
// a rule per analyzer that produced a finding, one result per
// diagnostic. Enough for code-scanning upload and editor ingestion
// without modeling the parts of the spec we don't use.
func writeSARIF(w io.Writer, diags []lint.Diagnostic, modRoot string) {
	type sarifMessage struct {
		Text string `json:"text"`
	}
	type sarifRule struct {
		ID               string       `json:"id"`
		ShortDescription sarifMessage `json:"shortDescription"`
	}
	type sarifRegion struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn"`
	}
	type sarifArtifactLocation struct {
		URI string `json:"uri"`
	}
	type sarifPhysicalLocation struct {
		ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
		Region           sarifRegion           `json:"region"`
	}
	type sarifLocation struct {
		PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
	}
	type sarifResult struct {
		RuleID    string          `json:"ruleId"`
		Level     string          `json:"level"`
		Message   sarifMessage    `json:"message"`
		Locations []sarifLocation `json:"locations"`
	}

	docs := make(map[string]string)
	for _, a := range analysis.All() {
		docs[a.Name] = a.Doc
	}
	docs[lint.DirectiveAnalyzer] = "validates //lint: directives themselves"

	rules := []sarifRule{}
	seen := make(map[string]bool)
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		if !seen[d.Analyzer] {
			seen[d.Analyzer] = true
			rules = append(rules, sarifRule{
				ID:               d.Analyzer,
				ShortDescription: sarifMessage{Text: docs[d.Analyzer]},
			})
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relSlash(modRoot, d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	log := map[string]any{
		"$schema": "https://json.schemastore.org/sarif-2.1.0.json",
		"version": "2.1.0",
		"runs": []any{map[string]any{
			"tool": map[string]any{
				"driver": map[string]any{
					"name":  "repolint",
					"rules": rules,
				},
			},
			"results": results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(log)
}
