package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleLog = `goos: linux
goarch: amd64
pkg: repro
cpu: test
BenchmarkKernel-8    	     100	    123456 ns/op	    2048 B/op	      10 allocs/op
BenchmarkFigure2-8   	       1	  99999999 ns/op	 5000000 B/op	   16799 allocs/op
PASS
`

func runWith(t *testing.T, o options, stdin string) (string, string, error) {
	t.Helper()
	var out, errw strings.Builder
	err := run(o, strings.NewReader(stdin), &out, &errw)
	return out.String(), errw.String(), err
}

func TestRunEmitsJSON(t *testing.T) {
	out, _, err := runWith(t, options{}, sampleLog)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, out)
	}
	if len(rep.Benchmarks) != 2 || rep.Benchmarks[0].Name != "BenchmarkKernel" {
		t.Fatalf("benchmarks = %+v", rep.Benchmarks)
	}
	if rep.Benchmarks[0].Metrics["allocs/op"] != 10 {
		t.Fatalf("metrics = %+v", rep.Benchmarks[0].Metrics)
	}
}

// A renamed benchmark (or a bad -bench regexp) must not silently write
// an empty report: zero parsed lines is a hard error.
func TestRunZeroBenchmarksFails(t *testing.T) {
	_, _, err := runWith(t, options{}, "PASS\nok  \trepro\t0.01s\n")
	if err == nil || !strings.Contains(err.Error(), "no benchmark lines") {
		t.Fatalf("err = %v, want no-benchmark-lines error", err)
	}
}

func TestRunFailInputFails(t *testing.T) {
	_, _, err := runWith(t, options{}, sampleLog+"FAIL\n")
	if err == nil || !strings.Contains(err.Error(), "FAIL") {
		t.Fatalf("err = %v, want FAIL error", err)
	}
}

// writeReport commits a report JSON for -compare tests.
func writeReport(t *testing.T, benchmarks []result) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "old.json")
	buf, err := json.Marshal(report{Benchmarks: benchmarks})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	old := writeReport(t, []result{
		{Name: "BenchmarkKernel", Metrics: map[string]float64{"allocs/op": 10, "B/op": 2048, "ns/op": 1}},
		{Name: "BenchmarkFigure2", Metrics: map[string]float64{"allocs/op": 16000, "B/op": 4800000}},
	})
	// Input is sampleLog: Kernel identical, Figure2 within 25% of old.
	_, errw, err := runWith(t, options{compareFile: old, tolerance: 25}, sampleLog)
	if err != nil {
		t.Fatalf("err = %v\n%s", err, errw)
	}
	// ns/op moved 123456x but is informational by default.
	if !strings.Contains(errw, "informational") {
		t.Fatalf("expected informational ns/op line:\n%s", errw)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	old := writeReport(t, []result{
		{Name: "BenchmarkFigure2", Metrics: map[string]float64{"allocs/op": 10000}},
	})
	_, errw, err := runWith(t, options{compareFile: old, tolerance: 25}, sampleLog)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("err = %v, want regression (16799 allocs vs 10000 +25%%)\n%s", err, errw)
	}
	if !strings.Contains(errw, "REGRESSION") {
		t.Fatalf("expected REGRESSION line:\n%s", errw)
	}
}

// Small absolute drifts below the gate floor pass even when the
// relative change is large: +2 allocs on a 4-alloc benchmark is not a
// regression worth failing CI over.
func TestCompareFloorAbsorbsTinyDrift(t *testing.T) {
	old := writeReport(t, []result{
		{Name: "BenchmarkKernel", Metrics: map[string]float64{"allocs/op": 4}},
	})
	_, errw, err := runWith(t, options{compareFile: old, tolerance: 25}, sampleLog)
	if err != nil {
		t.Fatalf("err = %v (10 vs 4 allocs is +150%% but only +6 absolute)\n%s", err, errw)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	old := writeReport(t, []result{
		{Name: "BenchmarkGone", Metrics: map[string]float64{"allocs/op": 10}},
	})
	_, _, err := runWith(t, options{compareFile: old, tolerance: 25}, sampleLog)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("err = %v, want missing-benchmark failure", err)
	}
}

func TestCompareTimeToleranceGatesNsOp(t *testing.T) {
	old := writeReport(t, []result{
		{Name: "BenchmarkKernel", Metrics: map[string]float64{"ns/op": 1000}},
	})
	_, _, err := runWith(t, options{compareFile: old, tolerance: 25, timeTolerance: 50}, sampleLog)
	if err == nil {
		t.Fatal("123456 ns/op vs 1000 must fail a 50% time gate")
	}
}

// An empty or unparseable reference would gate nothing; treat it as an
// error rather than a vacuous pass.
func TestCompareEmptyReferenceFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.json")
	if err := os.WriteFile(path, []byte(`{"benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := runWith(t, options{compareFile: path}, sampleLog)
	if err == nil || !strings.Contains(err.Error(), "no benchmark lines") {
		t.Fatalf("err = %v, want empty-reference error", err)
	}
}

func TestBaselineRawLogEmbeds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.log")
	if err := os.WriteFile(path, []byte(sampleLog), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err := runWith(t, options{baseline: path}, sampleLog)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Baseline) != 2 {
		t.Fatalf("baseline = %+v", rep.Baseline)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkKernel-8":    "BenchmarkKernel",
		"BenchmarkKernel":      "BenchmarkKernel",
		"BenchmarkOpt-mesh-16": "BenchmarkOpt-mesh",
	} {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
