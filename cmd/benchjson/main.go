// Command benchjson converts `go test -bench` output on stdin into a
// small JSON document so benchmark numbers can be committed and diffed
// (BENCH_kernel.json). With -o, the input is echoed to stdout unchanged
// (without -o, the JSON itself goes to stdout and the echo to stderr), so
// it composes as a pipe without hiding the bench log:
//
//	go test -run='^$' -bench=. -benchtime=1x . | go run ./cmd/benchjson -o BENCH_kernel.json
//
// With -baseline FILE, a previously saved bench log is parsed the same
// way and embedded under "baseline", recording a before/after pair in one
// artifact.
//
// With -compare FILE, the input is gated against a previously committed
// JSON report: the deterministic metrics (allocs/op and B/op) must stay
// within -tolerance percent of the old values, and every old benchmark
// must still exist. ns/op is reported but not gated unless
// -time-tolerance is set, because single-iteration CI timings are noise.
//
//	go test -run='^$' -bench=. -benchtime=1x . | go run ./cmd/benchjson -compare BENCH_kernel.json
//
// benchjson exits non-zero if any input (stdin, -baseline, -compare)
// contains no benchmark lines or reports a test failure, so a bench
// smoke step in CI fails loudly instead of writing an empty file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line: its iteration count plus every
// reported metric (ns/op, B/op, allocs/op, and any ReportMetric units).
type result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// report is the emitted document.
type report struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []result          `json:"benchmarks"`
	Baseline   []result          `json:"baseline,omitempty"`
}

// parse consumes a `go test -bench` log, returning parsed benchmark
// lines, context headers (goos/goarch/pkg/cpu), and whether a FAIL line
// was seen. When echo is non-nil every input line is copied to it.
func parse(r io.Reader, echo io.Writer) ([]result, map[string]string, bool, error) {
	var results []result
	ctx := make(map[string]string)
	failed := false
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		if strings.HasPrefix(line, "FAIL") {
			failed = true
		}
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				ctx[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := result{Name: trimProcSuffix(fields[0]), Iters: iters, Metrics: make(map[string]float64)}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			res.Metrics[fields[i+1]] = v
		}
		results = append(results, res)
	}
	return results, ctx, failed, sc.Err()
}

// trimProcSuffix drops the trailing "-N" GOMAXPROCS marker from a
// benchmark name, keeping names stable across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// gates are the metrics compared against a committed report. allocs/op
// and B/op are machine-independent for deterministic code, so they gate
// hard; the floor ignores absolute wiggle below it (a +1 alloc on a
// 2-alloc benchmark is 50% but meaningless as a gate).
var gates = []struct {
	unit  string
	floor float64
}{
	{"allocs/op", 8},
	{"B/op", 1024},
}

// compare gates cur against old. tolerance and timeTolerance are
// percentages; timeTolerance <= 0 leaves ns/op informational. It returns
// human-readable report lines plus the list of violations.
func compare(old, cur []result, tolerance, timeTolerance float64) (lines, violations []string) {
	curByName := make(map[string]result, len(cur))
	for _, r := range cur {
		curByName[r.Name] = r
	}
	exceeds := func(oldV, newV, tol, floor float64) bool {
		return newV > oldV*(1+tol/100) && newV-oldV > floor
	}
	for _, o := range old {
		c, ok := curByName[o.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: benchmark missing from input (renamed or deleted?)", o.Name))
			continue
		}
		for _, g := range gates {
			oldV, ok := o.Metrics[g.unit]
			if !ok {
				continue
			}
			newV := c.Metrics[g.unit]
			line := fmt.Sprintf("%s %s: %g -> %g", o.Name, g.unit, oldV, newV)
			if exceeds(oldV, newV, tolerance, g.floor) {
				violations = append(violations, line+fmt.Sprintf(" (over %+.0f%% tolerance)", tolerance))
			} else {
				lines = append(lines, line)
			}
		}
		if oldV, ok := o.Metrics["ns/op"]; ok {
			newV := c.Metrics["ns/op"]
			line := fmt.Sprintf("%s ns/op: %g -> %g", o.Name, oldV, newV)
			if timeTolerance > 0 && exceeds(oldV, newV, timeTolerance, 0) {
				violations = append(violations, line+fmt.Sprintf(" (over %+.0f%% time tolerance)", timeTolerance))
			} else {
				lines = append(lines, line+" (informational)")
			}
		}
		delete(curByName, o.Name)
	}
	var extra []string
	for name := range curByName {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		lines = append(lines, fmt.Sprintf("%s: new benchmark (no committed reference)", name))
	}
	return lines, violations
}

// options are the parsed flags; run is separated from main for tests.
type options struct {
	out           string
	baseline      string
	compareFile   string
	tolerance     float64
	timeTolerance float64
}

// parseFile parses a saved bench log or JSON report at path. JSON files
// (committed reports) contribute their "benchmarks" section; anything
// else is parsed as a raw `go test -bench` log. Zero parsed benchmarks
// is an error either way — an empty reference would gate nothing.
func parseFile(path string) ([]result, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []result
	if json.Valid(buf) {
		var rep report
		if err := json.Unmarshal(buf, &rep); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		results = rep.Benchmarks
	} else {
		results, _, _, err = parse(strings.NewReader(string(buf)), nil)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines", path)
	}
	return results, nil
}

func run(o options, stdin io.Reader, stdout, stderr io.Writer) error {
	echo := stdout
	if o.out == "" {
		echo = stderr
	}
	results, ctx, failed, err := parse(stdin, echo)
	if err != nil {
		return err
	}
	if failed {
		return fmt.Errorf("input reports FAIL")
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines in input")
	}
	rep := report{Context: ctx, Benchmarks: results}
	if o.baseline != "" {
		base, err := parseFile(o.baseline)
		if err != nil {
			return err
		}
		rep.Baseline = base
	}
	if o.compareFile != "" {
		old, err := parseFile(o.compareFile)
		if err != nil {
			return err
		}
		lines, violations := compare(old, results, o.tolerance, o.timeTolerance)
		for _, l := range lines {
			fmt.Fprintln(stderr, "benchjson:", l)
		}
		for _, v := range violations {
			fmt.Fprintln(stderr, "benchjson: REGRESSION:", v)
		}
		if len(violations) > 0 {
			return fmt.Errorf("%d benchmark regression(s) vs %s", len(violations), o.compareFile)
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if o.out == "" {
		_, err := stdout.Write(buf)
		return err
	}
	return os.WriteFile(o.out, buf, 0o644)
}

func main() {
	var o options
	flag.StringVar(&o.out, "o", "", "output JSON path (default: JSON to stdout)")
	flag.StringVar(&o.baseline, "baseline", "", "optional saved bench log to embed under \"baseline\"")
	flag.StringVar(&o.compareFile, "compare", "", "committed JSON report (or raw bench log) to gate against")
	flag.Float64Var(&o.tolerance, "tolerance", 25, "allowed regression percentage for allocs/op and B/op in -compare mode")
	flag.Float64Var(&o.timeTolerance, "time-tolerance", 0, "also gate ns/op at this percentage (0 = informational only; CI timings are noisy)")
	flag.Parse()

	if err := run(o, os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
