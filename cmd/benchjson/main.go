// Command benchjson converts `go test -bench` output on stdin into a
// small JSON document so benchmark numbers can be committed and diffed
// (BENCH_kernel.json). With -o, the input is echoed to stdout unchanged
// (without -o, the JSON itself goes to stdout and the echo to stderr), so
// it composes as a pipe without hiding the bench log:
//
//	go test -run='^$' -bench=. -benchtime=1x . | go run ./cmd/benchjson -o BENCH_kernel.json
//
// With -baseline FILE, a previously saved bench log is parsed the same
// way and embedded under "baseline", recording a before/after pair in one
// artifact. benchjson exits non-zero if the input contains no benchmark
// lines or reports a test failure, so a bench smoke step in CI fails
// loudly instead of writing an empty file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line: its iteration count plus every
// reported metric (ns/op, B/op, allocs/op, and any ReportMetric units).
type result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// report is the emitted document.
type report struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []result          `json:"benchmarks"`
	Baseline   []result          `json:"baseline,omitempty"`
}

// parse consumes a `go test -bench` log, returning parsed benchmark
// lines, context headers (goos/goarch/pkg/cpu), and whether a FAIL line
// was seen. When echo is non-nil every input line is copied to it.
func parse(r io.Reader, echo io.Writer) ([]result, map[string]string, bool, error) {
	var results []result
	ctx := make(map[string]string)
	failed := false
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		if strings.HasPrefix(line, "FAIL") {
			failed = true
		}
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				ctx[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := result{Name: trimProcSuffix(fields[0]), Iters: iters, Metrics: make(map[string]float64)}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			res.Metrics[fields[i+1]] = v
		}
		results = append(results, res)
	}
	return results, ctx, failed, sc.Err()
}

// trimProcSuffix drops the trailing "-N" GOMAXPROCS marker from a
// benchmark name, keeping names stable across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

func main() {
	out := flag.String("o", "", "output JSON path (default: JSON to stdout)")
	baseline := flag.String("baseline", "", "optional saved bench log to embed under \"baseline\"")
	flag.Parse()

	echo := io.Writer(os.Stdout)
	if *out == "" {
		echo = os.Stderr
	}
	results, ctx, failed, err := parse(os.Stdin, echo)
	if err != nil {
		fatal(err)
	}
	if failed {
		fatal(fmt.Errorf("input reports FAIL"))
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines in input"))
	}
	rep := report{Context: ctx, Benchmarks: results}
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fatal(err)
		}
		base, _, _, err := parse(f, nil)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		rep.Baseline = base
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(buf); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
}
