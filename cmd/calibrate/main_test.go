package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		var out []byte
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(out)
	}()
	ferr := fn()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done, ferr
}

func TestCalibrateMesh(t *testing.T) {
	out, err := capture(t, func() error { return run("mesh", 8, 8, 64, 1) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"t_end(m)", "t_net(m)", "max fit residual", "LogP at 4KB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// The fabric injects one 8-byte flit per cycle; the fitted per-byte
	// network cost must be printed near 0.125.
	if !strings.Contains(out, "0.125") {
		t.Fatalf("t_net per-byte not ~0.125:\n%s", out)
	}
}

func TestCalibrateBMINAndButterfly(t *testing.T) {
	for _, topo := range []string{"bmin", "bfly"} {
		out, err := capture(t, func() error { return run(topo, 8, 8, 64, 1) })
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		if !strings.Contains(out, "fitted model") {
			t.Fatalf("%s: no fit in:\n%s", topo, out)
		}
	}
}

func TestCalibrateUnknownTopo(t *testing.T) {
	if _, err := capture(t, func() error { return run("ring", 8, 8, 64, 1) }); err == nil {
		t.Fatal("unknown topology accepted")
	}
}
