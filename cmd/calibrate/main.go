// Command calibrate measures the parameterized model's parameters from
// the simulated machine, mirroring the paper's user-level micro-benchmark
// methodology: unicast round trips at several message sizes, least-squares
// fit of the linear model, residual report.
//
// Usage:
//
//	calibrate -topo mesh -w 16 -h 16
//	calibrate -topo bmin -nodes 128
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bmin"
	"repro/internal/exp"
	"repro/internal/model"
	"repro/internal/wormhole"
)

func main() {
	var (
		topo  = flag.String("topo", "mesh", "fabric: mesh, bmin, bfly")
		w     = flag.Int("w", 16, "mesh width")
		h     = flag.Int("h", 16, "mesh height")
		nodes = flag.Int("nodes", 128, "bmin/bfly node count")
		seed  = flag.Uint64("seed", 1997, "seed for calibration pair selection")
	)
	flag.Parse()

	if err := run(*topo, *w, *h, *nodes, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

func run(topo string, w, h, nodes int, seed uint64) error {
	cfg := wormhole.DefaultConfig()
	var platform exp.Platform
	switch topo {
	case "mesh":
		platform = exp.MeshPlatform(w, h, cfg)
	case "bmin":
		platform = exp.BMINPlatform(nodes, bmin.AscentStraight, cfg)
	case "bfly":
		platform = exp.ButterflyPlatform(nodes, cfg)
	default:
		return fmt.Errorf("unknown topology %q", topo)
	}
	s := exp.DefaultSuite(platform)
	s.Seed = seed

	sizes := []int{0, 256, 1024, 4096, 16384, 65536}
	fmt.Printf("calibrating %s (software: send=%v, recv=%v, hold=%v)\n",
		platform.Name, s.Software.Send, s.Software.Recv, s.Software.Hold)
	fmt.Println("\nmeasured end-to-end latencies:")
	fmt.Printf("  %8s  %10s  %10s  %8s\n", "bytes", "t_end", "t_hold", "ratio")
	var pts []model.Point
	for _, m := range sizes {
		tend, err := s.MeasureTEnd(m)
		if err != nil {
			return err
		}
		thold := s.Software.Hold.At(m)
		fmt.Printf("  %8d  %10d  %10d  %8.3f\n", m, tend, thold, float64(thold)/float64(tend))
		pts = append(pts, model.Point{Bytes: m, T: tend})
	}

	endFit, err := model.Fit(pts)
	if err != nil {
		return err
	}
	params, err := s.FitParams(sizes)
	if err != nil {
		return err
	}
	fmt.Printf("\nfitted model:\n")
	fmt.Printf("  t_end(m) = %s cycles\n", endFit)
	fmt.Printf("  t_net(m) = %s cycles\n", params.Net)
	fmt.Printf("  max fit residual: %.1f cycles\n", model.Residual(endFit, pts))
	lp := params.AsLogP(4096)
	fmt.Printf("  LogP at 4KB: L=%d o=%d g=%d\n", lp.L, lp.O, lp.G)
	return nil
}
