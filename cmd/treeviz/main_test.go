package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		var out []byte
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(out)
	}()
	ferr := fn()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done, ferr
}

func TestPaperExample(t *testing.T) {
	out, err := capture(t, func() error { return run(8, 20, 55, 0, "opt", true) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "latency: 130 cycles") {
		t.Fatalf("missing optimal latency:\n%s", out)
	}
	if !strings.Contains(out, "timed schedule") || strings.Count(out, "->") < 7 {
		t.Fatalf("schedule missing sends:\n%s", out)
	}
}

func TestShapes(t *testing.T) {
	for _, shape := range []string{"opt", "binomial", "sequential"} {
		out, err := capture(t, func() error { return run(16, 100, 700, 5, shape, false) })
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		if !strings.Contains(out, shape+" tree") {
			t.Fatalf("%s: header missing:\n%s", shape, out)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := []func() error{
		func() error { return run(0, 20, 55, 0, "opt", false) },
		func() error { return run(8, 20, 55, 9, "opt", false) },
		func() error { return run(8, 20, 55, -1, "opt", false) },
		func() error { return run(8, 20, 55, 0, "nope", false) },
	}
	for i, fn := range cases {
		if _, err := capture(t, fn); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
