// Command treeviz prints multicast trees and their analytic schedules for
// given model parameters — the tool behind the paper's Figure 1 example.
//
// Usage:
//
//	treeviz -k 8 -thold 20 -tend 55          # the paper's example
//	treeviz -k 32 -thold 100 -tend 700 -root 5 -shape binomial
//	treeviz -k 16 -thold 20 -tend 55 -schedule
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/plan"
)

func main() {
	var (
		k        = flag.Int("k", 8, "multicast size (source + k-1 destinations)")
		thold    = flag.Int64("thold", 20, "t_hold in cycles")
		tend     = flag.Int64("tend", 55, "t_end in cycles")
		root     = flag.Int("root", 0, "source position in the chain")
		shape    = flag.String("shape", "opt", "tree shape: opt, binomial, sequential")
		schedule = flag.Bool("schedule", false, "print the full timed send schedule")
	)
	flag.Parse()

	if err := run(*k, *thold, *tend, *root, *shape, *schedule); err != nil {
		fmt.Fprintln(os.Stderr, "treeviz:", err)
		os.Exit(1)
	}
}

func run(k int, thold, tend int64, root int, shape string, schedule bool) error {
	if k < 1 {
		return fmt.Errorf("k must be >= 1")
	}
	if root < 0 || root >= k {
		return fmt.Errorf("root %d outside [0,%d)", root, k)
	}
	var tab core.SplitTable
	switch shape {
	case "opt":
		tab = core.NewOptTable(k, thold, tend)
	case "binomial":
		tab = core.BinomialTable{Max: k}
	case "sequential":
		tab = core.SequentialTable{Max: k}
	default:
		return fmt.Errorf("unknown shape %q", shape)
	}

	tree, err := plan.Tree(tab, chain.Segment{L: 0, R: k - 1}, root)
	if err != nil {
		return err
	}
	fmt.Printf("%s tree, k=%d, t_hold=%d, t_end=%d, source at chain position %d\n",
		shape, k, thold, tend, root)
	fmt.Printf("latency: %d cycles   depth: %d   max fanout: %d   sends: %d\n",
		tree.Eval(thold, tend), tree.Depth(), tree.MaxFanout(), tree.Sends())
	if opt, ok := tab.(*core.OptTable); ok {
		fmt.Printf("optimal t[k] from Algorithm 2.1: %d\n", opt.T(k))
	} else {
		fmt.Printf("optimal t[k] for comparison: %d\n", core.NewOptTable(k, thold, tend).T(k))
	}
	fmt.Println("\ntree (chain positions, children in send order):")
	fmt.Print(tree.String())

	if schedule {
		ids := make(chain.Chain, k)
		for i := range ids {
			ids[i] = i
		}
		s, err := plan.BuildSchedule(tab, ids, root, thold, tend)
		if err != nil {
			return err
		}
		fmt.Println("\ntimed schedule (issue  arrive  from -> to  [segment]):")
		for _, e := range s.Entries {
			fmt.Printf("  %6d %7d  %3d -> %-3d %v\n", e.Issue, e.Arrive, e.From, e.To, e.Seg)
		}
	}
	return nil
}
