// Package repro is a from-scratch reproduction of
//
//	N. Nupairoj, L. M. Ni, J.-Y. L. Park, H.-A. Choi,
//	"Architecture-Dependent Tuning of the Parameterized Communication
//	Model for Optimal Multicasting", IPPS 1997.
//
// It provides, as one coherent library:
//
//   - The parameterized communication model (t_send, t_recv, t_net,
//     t_hold, t_end) with linear-in-size parameters and least-squares
//     fitting from measurements (Model* identifiers).
//   - The OPT-tree dynamic program (Algorithm 2.1) and the analytic tree
//     machinery: optimal split tables, binomial and sequential baselines,
//     explicit multicast trees and their contention-free evaluation.
//   - The architecture-dependent planners (Algorithms 3.1/4.1): one
//     splitting engine over ordered chains instantiates OPT-mesh,
//     OPT-min, U-mesh and U-min.
//   - A deterministic flit-level wormhole network simulator with two
//     fabrics: n-dimensional meshes with XY routing and bidirectional
//     MINs (2x2 switches) with turnaround routing, plus a unidirectional
//     butterfly for the paper's future-work discussion.
//   - A multicast runtime that executes any planner on the simulated
//     fabric under the model's software costs, reporting latency and
//     contention.
//   - The experiment harness regenerating every figure of the paper's
//     evaluation.
//
// The facade below re-exports the user-facing API via type aliases; the
// implementations live in the internal packages, one per subsystem.
//
// Quick start:
//
//	soft := repro.DefaultSoftware()
//	suite := repro.NewMeshSuite(16, 16)
//	table, err := repro.Figure2(suite)
//	fmt.Print(table.Format())
//
// or, analytically:
//
//	tab := repro.NewOptTable(32, 20, 55)       // t_hold=20, t_end=55
//	fmt.Println(tab.T(32))                      // optimal latency
package repro

import (
	"repro/internal/bfly"
	"repro/internal/bmin"
	"repro/internal/chain"
	"repro/internal/collective"
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/mcastsim"
	"repro/internal/mesh"
	"repro/internal/model"
	"repro/internal/temporal"
	"repro/internal/torus"
	"repro/internal/trace"
	"repro/internal/wormhole"
)

// ---- Parameterized communication model ----

// Time is simulated time in cycles.
type Time = model.Time

// Linear is a latency growing linearly with message size.
type Linear = model.Linear

// Software holds the host-side model parameters (t_send, t_recv, t_hold).
type Software = model.Software

// Params is a full parameter set including the measured t_net.
type Params = model.Params

// Point is a (size, latency) measurement for model fitting.
type Point = model.Point

// DefaultSoftware returns the experiment defaults (see model docs).
func DefaultSoftware() Software { return model.DefaultSoftware() }

// Fit least-squares fits a Linear latency to measurements.
func Fit(pts []Point) (Linear, error) { return model.Fit(pts) }

// ---- OPT-tree and analytic machinery ----

// SplitTable describes a multicast tree family by its source-side split
// sizes.
type SplitTable = core.SplitTable

// OptTable is the OPT-tree dynamic program result.
type OptTable = core.OptTable

// BinomialTable is the U-mesh/U-min recursive-doubling family.
type BinomialTable = core.BinomialTable

// SequentialTable is the separate-addressing baseline family.
type SequentialTable = core.SequentialTable

// Tree is an explicit multicast tree with ordered children.
type Tree = core.Tree

// NewOptTable runs Algorithm 2.1 for up to k nodes.
func NewOptTable(k int, thold, tend Time) *OptTable { return core.NewOptTable(k, thold, tend) }

// Latency evaluates a split-table family analytically for i nodes.
func Latency(tab SplitTable, i int, thold, tend Time) Time {
	return core.Latency(tab, i, thold, tend)
}

// OptimalLatency is the O(k^2) oracle for the optimal multicast latency.
func OptimalLatency(k int, thold, tend Time) Time { return core.OptimalLatency(k, thold, tend) }

// ---- Chains and planning ----

// Chain is an ordered sequence of node addresses.
type Chain = chain.Chain

// Segment is a contiguous chain index range.
type Segment = chain.Segment

// NewChain sorts addresses by an architecture order.
func NewChain(addrs []int, less func(a, b int) bool) Chain { return chain.New(addrs, less) }

// UnorderedChain keeps the given order (the architecture-independent
// OPT-tree).
func UnorderedChain(addrs []int) Chain { return chain.Unordered(addrs) }

// ---- Fabrics ----

// Topology is the fabric interface consumed by the simulator.
type Topology = wormhole.Topology

// NodeID identifies a processing node.
type NodeID = wormhole.NodeID

// ChannelID identifies a unidirectional fabric channel.
type ChannelID = wormhole.ChannelID

// Network is the flit-level wormhole simulator.
type Network = wormhole.Network

// FabricConfig holds flit-level fabric parameters.
type FabricConfig = wormhole.Config

// Mesh is an n-dimensional mesh with dimension-ordered routing.
type Mesh = mesh.Mesh

// BMIN is a bidirectional MIN with turnaround routing.
type BMIN = bmin.BMIN

// AscentPolicy selects the BMIN up-path choice.
type AscentPolicy = bmin.AscentPolicy

// BMIN ascent policies.
const (
	AscentStraight     = bmin.AscentStraight
	AscentDest         = bmin.AscentDest
	AscentAdaptive     = bmin.AscentAdaptive
	AscentAdaptiveDest = bmin.AscentAdaptiveDest
)

// DefaultFabricConfig returns the experiments' fabric parameters.
func DefaultFabricConfig() FabricConfig { return wormhole.DefaultConfig() }

// Butterfly is a unidirectional butterfly MIN (non-partitionable; the
// paper's §6 future-work fabric).
type Butterfly = bfly.Butterfly

// Observer receives fabric events for tracing (see package trace for
// ready-made implementations).
type Observer = wormhole.Observer

// Kernel selects the simulator's scheduling strategy (see
// Network.SetKernel).
type Kernel = wormhole.Kernel

// Simulator kernels: the stall-aware default and the straight-line
// reference oracle it is differentially tested against.
const (
	KernelFast      = wormhole.KernelFast
	KernelReference = wormhole.KernelReference
)

// NewMesh2D builds a W×H mesh topology.
func NewMesh2D(w, h int) *Mesh { return mesh.New2D(w, h) }

// NewMesh builds an n-dimensional mesh with the given side lengths.
func NewMesh(dims ...int) *Mesh { return mesh.New(dims...) }

// NewHypercube builds a 2^dim-node binary hypercube (e-cube routing).
func NewHypercube(dim int) *Mesh { return mesh.NewHypercube(dim) }

// NewBMIN builds an N-node BMIN (N a power of two).
func NewBMIN(nodes int, policy AscentPolicy) *BMIN { return bmin.New(nodes, policy) }

// NewButterfly builds an N-node unidirectional butterfly MIN.
func NewButterfly(nodes int) *Butterfly { return bfly.New(nodes) }

// Torus is a wrap-around mesh with dateline virtual channels.
type Torus = torus.Torus

// NewTorus2D builds a W×H torus topology.
func NewTorus2D(w, h int) *Torus { return torus.New2D(w, h) }

// NewTorusSuite returns the methodology on a W×H torus.
func NewTorusSuite(w, h int) *Suite {
	return exp.DefaultSuite(exp.TorusPlatform(w, h, wormhole.DefaultConfig()))
}

// NewNetwork builds a simulator over a topology.
func NewNetwork(t Topology, cfg FabricConfig) *Network { return wormhole.New(t, cfg) }

// ---- Multicast runtime ----

// RunConfig parameterizes a multicast execution.
type RunConfig = mcastsim.Config

// RunResult reports a multicast execution.
type RunResult = mcastsim.Result

// RunMulticast executes a multicast on the simulated fabric.
func RunMulticast(net *Network, tab SplitTable, ch Chain, root, msgBytes int, cfg RunConfig) (RunResult, error) {
	return mcastsim.Run(net, tab, ch, root, msgBytes, cfg)
}

// MeasureUnicast runs one calibration unicast (measures t_end).
func MeasureUnicast(net *Network, src, dst, msgBytes int, cfg RunConfig) (int64, error) {
	return mcastsim.Unicast(net, src, dst, msgBytes, cfg)
}

// Group is one multicast of a concurrent batch.
type Group = mcastsim.Group

// GroupResult reports one group of a concurrent batch.
type GroupResult = mcastsim.GroupResult

// RunConcurrent executes several multicasts on one fabric at the same
// time (disjoint node sets, shared network) and reports the
// cross-multicast interference.
func RunConcurrent(net *Network, groups []Group, cfg RunConfig) ([]GroupResult, error) {
	return mcastsim.RunConcurrent(net, groups, cfg)
}

// ---- Collectives ----

// CollectiveResult reports a scatter/all-gather broadcast.
type CollectiveResult = collective.Result

// ScatterAllgather runs Barnett-style scatter + ring all-gather
// broadcast from the chain head, the architecture-specific baseline of
// the paper's introduction.
func ScatterAllgather(net *Network, ch Chain, msgBytes int, cfg RunConfig) (CollectiveResult, error) {
	return collective.ScatterAllgather(net, ch, msgBytes, cfg)
}

// ---- Temporal tuning (the paper's §6 future work) ----

// TuneConfig parameterizes a temporal-tuning search.
type TuneConfig = temporal.Config

// TuneResult reports a temporal-tuning search.
type TuneResult = temporal.Result

// TuneOrdering searches for a chain ordering minimizing predicted
// contention on a non-partitionable fabric, keeping the optimal tree
// shape (see package temporal).
func TuneOrdering(cfg TuneConfig, tab SplitTable, addrs []int, bytes int, thold, tend Time) (*TuneResult, error) {
	return temporal.Tune(cfg, tab, addrs, bytes, thold, tend)
}

// ---- Static verification ----

// ContentionChecker statically verifies schedules for channel conflicts,
// independently of the simulator.
type ContentionChecker = contention.Checker

// Conflict is one pair of overlapping transmissions sharing a channel.
type Conflict = contention.Conflict

// ---- Tracing ----

// ChannelUsage accumulates per-channel busy time and blocking.
type ChannelUsage = trace.ChannelUsage

// Timeline records per-message fabric spans and renders Gantt charts.
type Timeline = trace.Timeline

// NewChannelUsage builds a channel-utilization observer.
func NewChannelUsage(t Topology) *ChannelUsage { return trace.NewChannelUsage(t) }

// NewTimeline builds a message-timeline observer.
func NewTimeline() *Timeline { return trace.NewTimeline() }

// ---- Experiments ----

// Suite is an experiment campaign on one platform.
type Suite = exp.Suite

// Platform is a simulated machine.
type Platform = exp.Platform

// Algorithm couples an ordering policy with a tree family.
type Algorithm = exp.Algorithm

// ResultTable is a rendered figure: columns per algorithm, rows per x.
type ResultTable = exp.Table

// Figure1Result holds the paper's worked example.
type Figure1Result = exp.Figure1Result

// NewMeshSuite returns the paper's mesh methodology (16 trials, default
// software, default fabric) on a W×H mesh.
func NewMeshSuite(w, h int) *Suite {
	return exp.DefaultSuite(exp.MeshPlatform(w, h, wormhole.DefaultConfig()))
}

// NewBMINSuite returns the paper's BMIN methodology on an N-node BMIN.
func NewBMINSuite(nodes int, policy AscentPolicy) *Suite {
	return exp.DefaultSuite(exp.BMINPlatform(nodes, policy, wormhole.DefaultConfig()))
}

// NewHypercubeSuite returns the methodology on a 2^dim-node hypercube.
func NewHypercubeSuite(dim int) *Suite {
	return exp.DefaultSuite(exp.HypercubePlatform(dim, wormhole.DefaultConfig()))
}

// NewButterflySuite returns the methodology on an N-node butterfly.
func NewButterflySuite(nodes int) *Suite {
	return exp.DefaultSuite(exp.ButterflyPlatform(nodes, wormhole.DefaultConfig()))
}

// Figure1 computes the worked example (OPT 130 vs U-mesh 165).
func Figure1() (*Figure1Result, error) { return exp.Figure1() }

// Figure2 regenerates the 32-node message-size sweep on a mesh suite.
func Figure2(s *Suite) (*ResultTable, error) { return exp.Figure2(s) }

// Figure2b regenerates the 128-node variant.
func Figure2b(s *Suite) (*ResultTable, error) { return exp.Figure2b(s) }

// Figure3 regenerates the 4-KB node-count sweep.
func Figure3(s *Suite) (*ResultTable, error) { return exp.Figure3(s) }

// BMINSizes regenerates the BMIN message-size sweep.
func BMINSizes(s *Suite) (*ResultTable, error) { return exp.BMINSizes(s) }

// BMINNodes regenerates the BMIN node-count sweep.
func BMINNodes(s *Suite) (*ResultTable, error) { return exp.BMINNodes(s) }

// MeshAlgorithms returns the U-mesh / OPT-tree / OPT-mesh series.
func MeshAlgorithms() []Algorithm { return exp.MeshAlgorithms() }

// BMINAlgorithms returns the U-min / OPT-tree / OPT-min series.
func BMINAlgorithms() []Algorithm { return exp.BMINAlgorithms() }
