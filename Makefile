# Single source of truth for build/test/lint invocations: CI runs these
# exact targets, so a green `make ci` locally means a green workflow.

GO ?= go

.PHONY: all build test race lint lint-check lint-baseline vet fmt fmt-check bench bench-tuner bench-smoke bench-gate fault-smoke recover-smoke traffic-smoke churn-smoke tuner-smoke shard-smoke scale-smoke tuner-surface golden golden-check ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrency-bearing packages (the deterministic
# fan-out harness, the concurrent multicast simulator, the fault plans
# shared read-only across sweep workers, the recovery layer the sweeps
# fan out over, the open-system traffic engine, and the membership
# engine driving churn schedules through sweep workers).
race:
	$(GO) test -race ./internal/sim/... ./internal/mcastsim/... ./internal/fault/... ./internal/recover/... ./internal/traffic/... ./internal/member/...

vet:
	$(GO) vet ./...

# repolint enforces the determinism & concurrency invariants; see
# internal/analysis and the "Static analysis & CI" section of README.md.
# lint-check runs against the checked-in baseline, so only NEW findings
# fail the build; lint-baseline regenerates that file after findings
# are deliberately accepted (review the diff before committing it).
lint: vet lint-check

lint-check:
	$(GO) run ./cmd/repolint -baseline results/lint_baseline.json ./...

lint-baseline:
	$(GO) run ./cmd/repolint -write-baseline results/lint_baseline.json ./...

fmt:
	gofmt -l -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# One pass over every benchmark, recorded as JSON (see the README's
# benchmarking section). BENCH_kernel.json in the repo root is the
# committed record `bench-gate` compares against; it re-embeds the
# pre-kernel-rewrite numbers (results/bench_baseline.json) so the
# historical before/after pair survives regeneration.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -count=1 -benchmem ./... | $(GO) run ./cmd/benchjson -baseline results/bench_baseline.json -o BENCH_kernel.json

# Fast CI guard: the kernel microbenchmarks must run and parse, so the
# bench suite and the benchjson pipeline can never bit-rot.
bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkStepKernel -benchtime=1x -count=1 -benchmem . | $(GO) run ./cmd/benchjson -o /dev/null

# BENCH_tuner.json is the committed record for the tuner selection hot
# path (Choose/Observe/Select); the gate holds it at 0 allocs/op.
bench-tuner:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -count=1 -benchmem ./internal/tuner/ | $(GO) run ./cmd/benchjson -o BENCH_tuner.json

# Benchmark regression gate: rerun every benchmark once and compare the
# deterministic metrics (allocs/op, B/op) against the committed records
# (BENCH_kernel.json for the kernels, BENCH_tuner.json for the tuner
# hot path). ns/op is reported but not gated — single-iteration CI
# timings are noise. The raw log and the freshly generated report
# (bench-gate.log, bench-report.json) are written before any compare,
# so CI can archive them even when the gate fails. Regenerate the
# records with `make bench` / `make bench-tuner` after intentional
# changes.
bench-gate:
	@set -e; \
	$(GO) test -run='^$$' -bench=. -benchtime=1x -count=1 -benchmem ./... > bench-gate.log; \
	$(GO) run ./cmd/benchjson -o bench-report.json < bench-gate.log; \
	$(GO) run ./cmd/benchjson -compare BENCH_kernel.json -tolerance 25 < bench-gate.log > /dev/null; \
	$(GO) run ./cmd/benchjson -compare BENCH_tuner.json -tolerance 25 < bench-gate.log > /dev/null

# End-to-end fault-injection smoke: generate the F1 degradation table at
# low trial count, exercising fault plans, degraded routing and the run
# watchdog through the real CLI path.
fault-smoke:
	$(GO) run ./cmd/mcastbench -fig f1 -trials 2

# Reliable-delivery smoke: the F2 recovery tables at low trial count,
# exercising timeout/retransmit, tree repair, the binomial fallback and
# the reachability oracle through the real CLI path.
recover-smoke:
	$(GO) run ./cmd/mcastbench -fig f2 -trials 2

# Open-system smoke: the F3 traffic tables (throughput/latency curves,
# saturation notes) through the real CLI path, exercising the arrival
# processes, admission queue and the per-rate traffic cells.
traffic-smoke:
	$(GO) run ./cmd/mcastbench -fig f3

# Churn smoke: the membership engine under the race detector (churn
# chaos battery included), then the F5 churn tables split across two
# shard runs, merged from cache alone — asserting the merge recomputed
# nothing and printed the same bytes as a serial run.
churn-smoke:
	$(GO) test -race ./internal/member/
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/mcastbench ./cmd/mcastbench; \
	$$tmp/mcastbench -fig f5 -trials 2 > $$tmp/serial.txt; \
	$$tmp/mcastbench -fig f5 -trials 2 -shard 0/2 -cache $$tmp/cache > /dev/null; \
	$$tmp/mcastbench -fig f5 -trials 2 -shard 1/2 -cache $$tmp/cache > /dev/null; \
	$$tmp/mcastbench -fig f5 -trials 2 -cache $$tmp/cache -resume -summary $$tmp/summary.json > $$tmp/merged.txt; \
	cmp $$tmp/serial.txt $$tmp/merged.txt; \
	grep -q '"computed": 0' $$tmp/summary.json; \
	grep -q '"complete": true' $$tmp/summary.json; \
	echo "churn-smoke: F5 merge bit-identical to serial run, 0 cells recomputed"

# Tuner smoke: the tuner package (surface compile, policy drift, the
# seeded switch-point regression, alloc-free hot path) under the race
# detector, then the F6 crossover-surface tables split across two
# shard runs, merged from cache alone — asserting the merge recomputed
# nothing and printed the same bytes as a serial run.
tuner-smoke:
	$(GO) test -race ./internal/tuner/
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/mcastbench ./cmd/mcastbench; \
	$$tmp/mcastbench -fig f6 -trials 2 > $$tmp/serial.txt; \
	$$tmp/mcastbench -fig f6 -trials 2 -shard 0/2 -cache $$tmp/cache > /dev/null; \
	$$tmp/mcastbench -fig f6 -trials 2 -shard 1/2 -cache $$tmp/cache > /dev/null; \
	$$tmp/mcastbench -fig f6 -trials 2 -cache $$tmp/cache -resume -summary $$tmp/summary.json > $$tmp/merged.txt; \
	cmp $$tmp/serial.txt $$tmp/merged.txt; \
	grep -q '"computed": 0' $$tmp/summary.json; \
	grep -q '"complete": true' $$tmp/summary.json; \
	echo "tuner-smoke: F6 merge bit-identical to serial run, 0 cells recomputed"

# Sharded-engine smoke: split a figure across two shard runs sharing a
# cache, merge from cache alone, and assert the merge recomputed
# nothing and printed the same bytes as a serial run. This is the
# cross-machine CI path in miniature.
shard-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/mcastbench ./cmd/mcastbench; \
	$$tmp/mcastbench -fig conc -trials 2 > $$tmp/serial.txt; \
	$$tmp/mcastbench -fig conc -trials 2 -shard 0/2 -cache $$tmp/cache > /dev/null; \
	$$tmp/mcastbench -fig conc -trials 2 -shard 1/2 -cache $$tmp/cache > /dev/null; \
	$$tmp/mcastbench -fig conc -trials 2 -cache $$tmp/cache -resume -summary $$tmp/summary.json > $$tmp/merged.txt; \
	cmp $$tmp/serial.txt $$tmp/merged.txt; \
	grep -q '"computed": 0' $$tmp/summary.json; \
	grep -q '"complete": true' $$tmp/summary.json; \
	echo "shard-smoke: merge bit-identical to serial run, 0 cells recomputed"

# Scale-out smoke: the domain-parallel kernel's differential tests
# (64x64-mesh three-way differential, fault plans, random partitions)
# under the race detector, then the F4 wall-time ladder through the real
# CLI path — which asserts serial and parallel batch results are
# byte-identical on every fabric before printing a timing.
scale-smoke:
	$(GO) test -race -run 'Parallel' ./internal/wormhole/
	$(GO) run ./cmd/mcastbench -fig f4 -trials 2 -parallel 4 > /dev/null

# Standalone regeneration of the committed crossover-surface artifact
# (results/tuner_surface.json, hash-verified JSON); `make golden` also
# refreshes it as a side effect of the F6 figure.
tuner-surface:
	$(GO) run ./cmd/mcastbench -fig f6 -surface results/tuner_surface.json > /dev/null

# Golden tables: results/figures_all.txt is the committed full-trials
# output of every figure, and results/tuner_surface.json the committed
# crossover surfaces the F6 sweep compiles along the way. `golden`
# regenerates both (minutes); `golden-check` fails if either drifted
# from the code.
golden:
	$(GO) run ./cmd/mcastbench -fig all -surface results/tuner_surface.json > results/figures_all.txt

golden-check: golden
	git diff --exit-code -- results

ci: fmt-check build test lint race bench-smoke bench-gate fault-smoke recover-smoke traffic-smoke churn-smoke tuner-smoke shard-smoke scale-smoke golden-check
