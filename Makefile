# Single source of truth for build/test/lint invocations: CI runs these
# exact targets, so a green `make ci` locally means a green workflow.

GO ?= go

.PHONY: all build test race lint vet fmt fmt-check bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrency-bearing packages (the deterministic
# fan-out harness and the concurrent multicast simulator).
race:
	$(GO) test -race ./internal/sim/... ./internal/mcastsim/...

vet:
	$(GO) vet ./...

# repolint enforces the determinism & concurrency invariants; see
# internal/analysis and the "Static analysis & CI" section of README.md.
lint: vet
	$(GO) run ./cmd/repolint ./...

fmt:
	gofmt -l -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

ci: fmt-check build test lint race
