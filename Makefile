# Single source of truth for build/test/lint invocations: CI runs these
# exact targets, so a green `make ci` locally means a green workflow.

GO ?= go

.PHONY: all build test race lint vet fmt fmt-check bench bench-smoke fault-smoke recover-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrency-bearing packages (the deterministic
# fan-out harness, the concurrent multicast simulator, the fault plans
# shared read-only across sweep workers, and the recovery layer the
# sweeps fan out over).
race:
	$(GO) test -race ./internal/sim/... ./internal/mcastsim/... ./internal/fault/... ./internal/recover/...

vet:
	$(GO) vet ./...

# repolint enforces the determinism & concurrency invariants; see
# internal/analysis and the "Static analysis & CI" section of README.md.
lint: vet
	$(GO) run ./cmd/repolint ./...

fmt:
	gofmt -l -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# One pass over every benchmark, recorded as JSON (see the README's
# benchmarking section). BENCH_kernel.json in the repo root is the
# committed before/after record for the kernel rewrite.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -count=1 -benchmem ./... | $(GO) run ./cmd/benchjson -o BENCH_kernel.json

# Fast CI guard: the kernel microbenchmarks must run and parse, so the
# bench suite and the benchjson pipeline can never bit-rot.
bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkStepKernel -benchtime=1x -count=1 -benchmem . | $(GO) run ./cmd/benchjson -o /dev/null

# End-to-end fault-injection smoke: generate the F1 degradation table at
# low trial count, exercising fault plans, degraded routing and the run
# watchdog through the real CLI path.
fault-smoke:
	$(GO) run ./cmd/mcastbench -fig f1 -trials 2

# Reliable-delivery smoke: the F2 recovery tables at low trial count,
# exercising timeout/retransmit, tree repair, the binomial fallback and
# the reachability oracle through the real CLI path.
recover-smoke:
	$(GO) run ./cmd/mcastbench -fig f2 -trials 2

ci: fmt-check build test lint race bench-smoke fault-smoke recover-smoke
