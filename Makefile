# Single source of truth for build/test/lint invocations: CI runs these
# exact targets, so a green `make ci` locally means a green workflow.

GO ?= go

.PHONY: all build test race lint vet fmt fmt-check bench bench-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrency-bearing packages (the deterministic
# fan-out harness and the concurrent multicast simulator).
race:
	$(GO) test -race ./internal/sim/... ./internal/mcastsim/...

vet:
	$(GO) vet ./...

# repolint enforces the determinism & concurrency invariants; see
# internal/analysis and the "Static analysis & CI" section of README.md.
lint: vet
	$(GO) run ./cmd/repolint ./...

fmt:
	gofmt -l -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# One pass over every benchmark, recorded as JSON (see the README's
# benchmarking section). BENCH_kernel.json in the repo root is the
# committed before/after record for the kernel rewrite.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -count=1 -benchmem ./... | $(GO) run ./cmd/benchjson -o BENCH_kernel.json

# Fast CI guard: the kernel microbenchmarks must run and parse, so the
# bench suite and the benchjson pipeline can never bit-rot.
bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkStepKernel -benchtime=1x -count=1 -benchmem . | $(GO) run ./cmd/benchjson -o /dev/null

ci: fmt-check build test lint race bench-smoke
