// Benchmarks regenerating every figure of the paper plus the simulator
// micro-benchmarks. Figure benches run the real experiment pipeline
// (calibration, placement, flit-level simulation, aggregation) with a
// reduced trial count so `go test -bench=.` completes in minutes; the
// full 16-trial figures are produced by cmd/mcastbench.
package repro_test

import (
	"testing"

	"repro"
	"repro/internal/bmin"
	"repro/internal/exp"
	"repro/internal/model"
	"repro/internal/traffic"
	"repro/internal/wormhole"
)

const benchTrials = 2 // cmd/mcastbench uses the paper's 16

func benchMeshSuite() *exp.Suite {
	s := exp.DefaultSuite(exp.MeshPlatform(16, 16, wormhole.DefaultConfig()))
	s.Trials = benchTrials
	return s
}

func benchBMINSuite() *exp.Suite {
	s := exp.DefaultSuite(exp.BMINPlatform(128, bmin.AscentStraight, wormhole.DefaultConfig()))
	s.Trials = benchTrials
	return s
}

// BenchmarkOptTreeDP measures Algorithm 2.1 itself: the O(k) dynamic
// program behind every figure (and the Figure 1 example).
func BenchmarkOptTreeDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		repro.NewOptTable(65536, 20, 55)
	}
}

// BenchmarkFigure1 evaluates the paper's worked example analytically.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := repro.Figure1()
		if err != nil || f.OptLatency != 130 {
			b.Fatal("figure 1 broken")
		}
	}
}

// BenchmarkFigure2 regenerates the 32-node message-size sweep on the
// 16x16 mesh (U-mesh / OPT-tree / OPT-mesh).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure2(benchMeshSuite()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2b regenerates the 128-node variant of Figure 2.
func BenchmarkFigure2b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure2b(benchMeshSuite()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 regenerates the 4-KB node-count sweep on the mesh.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure3(benchMeshSuite()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBMINSize regenerates the BMIN message-size sweep (U-min /
// OPT-tree / OPT-min).
func BenchmarkBMINSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.BMINSizes(benchBMINSuite()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBMINNodes regenerates the BMIN node-count sweep.
func BenchmarkBMINNodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.BMINNodes(benchBMINSuite()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContentionAblation quantifies Section 5's "contention less
// severe on the BMIN" claim.
func BenchmarkContentionAblation(b *testing.B) {
	sizes := []int{4096, 32768}
	for i := 0; i < b.N; i++ {
		if _, err := exp.ContentionComparison(benchMeshSuite(), benchBMINSuite(), 32, sizes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRatioAblation sweeps the t_hold/t_end ratio analytically.
func BenchmarkRatioAblation(b *testing.B) {
	ratios := []float64{0.01, 0.05, 0.1, 0.2, 0.36, 0.5, 0.75, 1.0}
	for i := 0; i < b.N; i++ {
		exp.RatioAblation(256, 1000, ratios)
	}
}

// BenchmarkAddrPayloadAblation measures the address-list payload cost.
func BenchmarkAddrPayloadAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AddrAblation(benchMeshSuite(), 32, 4096, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyAblation compares BMIN ascent policies.
func BenchmarkPolicyAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.PolicyAblation(128, wormhole.DefaultConfig(), model.DefaultSoftware(), benchTrials, 1997, 32, 4096, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkButterflyTemporal runs experiment E1 on the unidirectional
// butterfly.
func BenchmarkButterflyTemporal(b *testing.B) {
	sizes := []int{4096, 32768}
	for i := 0; i < b.N; i++ {
		s := exp.DefaultSuite(exp.ButterflyPlatform(128, wormhole.DefaultConfig()))
		s.Trials = benchTrials
		if _, err := exp.ButterflyTemporal(s, 32, sizes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHypercube runs experiment H1 (U-cube vs OPT-cube on a
// 256-node hypercube).
func BenchmarkHypercube(b *testing.B) {
	sizes := []int{4096, 32768}
	for i := 0; i < b.N; i++ {
		s := exp.DefaultSuite(exp.HypercubePlatform(8, wormhole.DefaultConfig()))
		s.Trials = benchTrials
		if _, err := exp.HypercubeSizes(s, 32, sizes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentInterference runs experiment C1 (simultaneous
// multicasts interfering through the shared fabric).
func BenchmarkConcurrentInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.ConcurrentInterference(benchMeshSuite(), []int{1, 2, 4}, 16, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelValidation runs experiment M1 (analytic vs simulated).
func BenchmarkModelValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.ModelValidation(benchMeshSuite(), []int{8, 32, 128}, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBroadcastCrossover runs experiment B4 (tree vs
// scatter-collect full broadcast).
func BenchmarkBroadcastCrossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.DefaultSuite(exp.MeshPlatform(8, 8, wormhole.DefaultConfig()))
		if _, err := exp.BroadcastCrossover(s, []int{4096, 1 << 18}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTorus runs experiment T1 (multicast trees on a wrap-around
// torus with dateline virtual channels).
func BenchmarkTorus(b *testing.B) {
	sizes := []int{4096, 32768}
	for i := 0; i < b.N; i++ {
		s := exp.DefaultSuite(exp.TorusPlatform(16, 16, wormhole.DefaultConfig()))
		s.Trials = benchTrials
		if _, err := exp.TorusSizes(s, 32, sizes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTemporalTuning runs experiment E2 (search-based §6 tuning on
// the butterfly).
func BenchmarkTemporalTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.DefaultSuite(exp.ButterflyPlatform(64, wormhole.DefaultConfig()))
		s.Trials = benchTrials
		if _, err := exp.TemporalTuning(s, 20, 4096, 150); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStaticChecker measures the static contention verifier on a
// 64-node OPT-mesh schedule.
func BenchmarkStaticChecker(b *testing.B) {
	m := repro.NewMesh2D(16, 16)
	k := &repro.ContentionChecker{Topo: m, Software: repro.DefaultSoftware(), Slack: 100}
	addrs := make([]int, 64)
	for i := range addrs {
		addrs[i] = i * 4
	}
	ch := repro.NewChain(addrs, m.DimOrderLess)
	tab := repro.NewOptTable(64, 1014, 2500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conflicts, err := k.Check(tab, ch, 0, 4096, 1014, 2500)
		if err != nil {
			b.Fatal(err)
		}
		if len(conflicts) != 0 {
			b.Fatal("unexpected conflicts")
		}
	}
}

// BenchmarkUnicast64KB measures raw fabric throughput: one 64 KB worm
// across the mesh diagonal, reported in flit events per second.
func BenchmarkUnicast64KB(b *testing.B) {
	m := repro.NewMesh2D(16, 16)
	cfg := repro.DefaultFabricConfig()
	var events int64
	for i := 0; i < b.N; i++ {
		n := repro.NewNetwork(m, cfg)
		n.Send(0, 255, 65536, nil, nil)
		if _, err := n.RunUntilIdle(1 << 22); err != nil {
			b.Fatal(err)
		}
		events += n.Stats().FlitHops
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "flit-events/s")
}

// BenchmarkMulticastOptMesh measures one full 32-node 4 KB OPT-mesh
// multicast, the workhorse of Figures 2 and 3.
func BenchmarkMulticastOptMesh(b *testing.B) {
	m := repro.NewMesh2D(16, 16)
	cfg := repro.DefaultFabricConfig()
	soft := repro.DefaultSoftware()
	runCfg := repro.RunConfig{Software: soft}
	tend, err := repro.MeasureUnicast(repro.NewNetwork(m, cfg), 0, 90, 4096, runCfg)
	if err != nil {
		b.Fatal(err)
	}
	tab := repro.NewOptTable(32, soft.Hold.At(4096), tend)
	addrs := make([]int, 32)
	for i := range addrs {
		addrs[i] = i * 8
	}
	ch := repro.NewChain(addrs, m.DimOrderLess)
	root, _ := ch.Index(addrs[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.RunMulticast(repro.NewNetwork(m, cfg), tab, ch, root, 4096, runCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// stepKernelFunnel drives the contention-heavy kernel workload: every
// other node sends 1 KB to node 0 simultaneously, so the one-port
// ejection serializes 255 worms and almost the whole fabric sits in
// blocked/inject-wait state for tens of thousands of cycles — the regime
// the stall-aware kernel's cached scheduling targets. The network (and
// with recycling, its worm pool) is reused across iterations, so
// steady-state allocs/op measures the Send+Step path itself.
func stepKernelFunnel(b *testing.B, k repro.Kernel, recycle bool) {
	m := repro.NewMesh2D(16, 16)
	n := repro.NewNetwork(m, repro.DefaultFabricConfig())
	n.SetKernel(k)
	n.SetRecycling(recycle)
	round := func() {
		for src := 1; src < m.NumNodes(); src++ {
			n.Send(repro.NodeID(src), 0, 1024, nil, nil)
		}
		if _, err := n.RunUntilIdle(1 << 24); err != nil {
			b.Fatal(err)
		}
	}
	// Prime the worm pool twice: the first round fills the free list, the
	// second settles the pooled slices' capacities under the recycled
	// worm-to-route mapping, so allocs/op reflects steady state.
	round()
	round()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round()
	}
	hops := n.Stats().FlitHops * int64(b.N) / int64(b.N+2) // exclude the priming rounds
	b.ReportMetric(float64(hops)/b.Elapsed().Seconds(), "flit-hops/s")
}

// stepKernelStall is the cycle-skipping showcase: a slow router
// (RouterDelay 256) makes every hop a long full-network stall once the
// header's upstream buffers fill, so nearly all simulated time is spent
// in cycles where nothing can move. The stall-aware kernel jumps those
// stretches in O(1); the reference kernel walks them cycle by cycle.
func stepKernelStall(b *testing.B, k repro.Kernel) {
	m := repro.NewMesh2D(16, 16)
	cfg := repro.DefaultFabricConfig()
	cfg.RouterDelay = 256
	n := repro.NewNetwork(m, cfg)
	n.SetKernel(k)
	n.SetRecycling(true)
	round := func() {
		for i := 0; i < 16; i++ {
			n.Send(repro.NodeID(i), repro.NodeID(m.NumNodes()-1-i), 256, nil, nil)
		}
		if _, err := n.RunUntilIdle(1 << 24); err != nil {
			b.Fatal(err)
		}
	}
	round()
	round()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round()
	}
	cycles := n.Stats().Cycles * int64(b.N) / int64(b.N+2)
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkStepKernel compares the two scheduling kernels on a
// contention-heavy funnel and a stall-heavy slow-router workload; the
// fast/reference ns/op ratios are the headline numbers in
// BENCH_kernel.json.
func BenchmarkStepKernel(b *testing.B) {
	b.Run("funnel/fast", func(b *testing.B) { stepKernelFunnel(b, repro.KernelFast, true) })
	b.Run("funnel/reference", func(b *testing.B) { stepKernelFunnel(b, repro.KernelReference, false) })
	b.Run("funnel/reference-recycled", func(b *testing.B) { stepKernelFunnel(b, repro.KernelReference, true) })
	b.Run("stall/fast", func(b *testing.B) { stepKernelStall(b, repro.KernelFast) })
	b.Run("stall/reference", func(b *testing.B) { stepKernelStall(b, repro.KernelReference) })
}

// stepKernelScatter drives a domain-friendly workload on a 64x64 mesh:
// 256 sources spread over every row band exchange 1 KB with the node 32
// rows away, so all spatial domains carry flits at once. Every route
// has the same length (32 column hops plus inject/eject): the worm pool
// hands objects out in completion order, which permutes the
// worm-to-route pairing between rounds, and equal-length routes keep
// that permutation from ever needing a larger path buffer. The network
// (and pool) is reused across rounds; after two priming rounds both the
// serial and the domain-parallel kernels must run allocation-free.
func stepKernelScatter(b *testing.B, par int) {
	m := repro.NewMesh2D(64, 64)
	n := repro.NewNetwork(m, repro.DefaultFabricConfig())
	n.SetRecycling(true)
	if par > 1 {
		n.SetParallelism(par)
		defer n.Close()
	}
	round := func() {
		for r := 0; r < 32; r += 4 {
			for c := 0; c < 64; c += 4 {
				top := repro.NodeID(r*64 + c)
				bot := repro.NodeID((r+32)*64 + c)
				n.Send(top, bot, 1024, nil, nil)
				n.Send(bot, top, 1024, nil, nil)
			}
		}
		if _, err := n.RunUntilIdle(1 << 24); err != nil {
			b.Fatal(err)
		}
	}
	round()
	round()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round()
	}
	hops := n.Stats().FlitHops * int64(b.N) / int64(b.N+2)
	b.ReportMetric(float64(hops)/b.Elapsed().Seconds(), "flit-hops/s")
}

// BenchmarkStepKernelParallel compares the serial fast kernel against
// the domain-parallel kernel on the scatter workload; the bench gate
// holds both at zero steady-state allocs/op.
func BenchmarkStepKernelParallel(b *testing.B) {
	b.Run("scatter/P1", func(b *testing.B) { stepKernelScatter(b, 1) })
	b.Run("scatter/P4", func(b *testing.B) { stepKernelScatter(b, 4) })
}

// scaleMulticast measures one 64-node 4 KB OPT multicast on a large
// fabric, serial or domain-parallel. The network is built once and
// reused: fabric construction (millions of channels) would otherwise
// dominate the numbers.
func scaleMulticast(b *testing.B, n *repro.Network, less func(x, y int) bool, nodes, par int) {
	soft := repro.DefaultSoftware()
	runCfg := repro.RunConfig{Software: soft}
	n.SetRecycling(true)
	if par > 1 {
		n.SetParallelism(par)
		defer n.Close()
	}
	tend, err := repro.MeasureUnicast(n, 0, nodes-1, 4096, runCfg)
	if err != nil {
		b.Fatal(err)
	}
	const k = 64
	tab := repro.NewOptTable(k, soft.Hold.At(4096), tend)
	addrs := make([]int, k)
	for i := range addrs {
		addrs[i] = i * (nodes / k)
	}
	ch := repro.NewChain(addrs, less)
	root, _ := ch.Index(addrs[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.RunMulticast(n, tab, ch, root, 4096, runCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScale exercises the roadmap's large fabrics: a single OPT
// multicast on the 1024x1024 mesh (1M nodes) and the 65536-node BMIN,
// serial vs domain-parallel, plus an F3-style open-system traffic cell
// on a domain-parallel mesh. These are the "interactive speed" numbers
// recorded in BENCH_kernel.json.
func BenchmarkScale(b *testing.B) {
	cfg := repro.DefaultFabricConfig()
	b.Run("mesh1024x1024/serial", func(b *testing.B) {
		m := repro.NewMesh2D(1024, 1024)
		scaleMulticast(b, repro.NewNetwork(m, cfg), m.DimOrderLess, m.NumNodes(), 1)
	})
	b.Run("mesh1024x1024/P8", func(b *testing.B) {
		m := repro.NewMesh2D(1024, 1024)
		scaleMulticast(b, repro.NewNetwork(m, cfg), m.DimOrderLess, m.NumNodes(), 8)
	})
	b.Run("bmin65536/serial", func(b *testing.B) {
		t := bmin.New(1<<16, bmin.AscentStraight)
		scaleMulticast(b, repro.NewNetwork(t, cfg), t.LexLess, 1<<16, 1)
	})
	b.Run("bmin65536/P8", func(b *testing.B) {
		t := bmin.New(1<<16, bmin.AscentStraight)
		scaleMulticast(b, repro.NewNetwork(t, cfg), t.LexLess, 1<<16, 8)
	})
	b.Run("traffic64x64/P4", func(b *testing.B) {
		m := repro.NewMesh2D(64, 64)
		soft := repro.DefaultSoftware()
		runCfg := repro.RunConfig{Software: soft}
		tend, err := repro.MeasureUnicast(repro.NewNetwork(m, cfg), 0, m.NumNodes()-1, 4096, runCfg)
		if err != nil {
			b.Fatal(err)
		}
		opt := exp.Opt("OPT")
		for i := 0; i < b.N; i++ {
			n := repro.NewNetwork(m, cfg)
			n.SetRecycling(true)
			n.SetParallelism(4)
			_, err := traffic.Run(n, traffic.Config{
				Software: soft,
				Arrival:  traffic.ArrivalSpec{Kind: traffic.ArrivalPoisson, RatePerMcycle: 100},
				Load:     traffic.Workload{Ks: []int{8, 16}, Sizes: []int{4096}},
				Admit:    traffic.Admission{Policy: traffic.AdmissionFIFO, MaxInFlight: 4},
				Requests: 96, Warmup: 16,
				Less: m.DimOrderLess,
				Plan: opt.Table,
				TEnd: func(int) model.Time { return tend },
				Seed: 1997,
			})
			n.Close()
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlanSends measures the planner's per-node work.
func BenchmarkPlanSends(b *testing.B) {
	tab := repro.NewOptTable(1024, 20, 55)
	ids := make(repro.Chain, 1024)
	for i := range ids {
		ids[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := planTreeShape(tab, 1024)
		if tree.Size() != 1024 {
			b.Fatal("bad tree")
		}
	}
}

func planTreeShape(tab repro.SplitTable, k int) *repro.Tree {
	var build func(l, r, self int) *repro.Tree
	build = func(l, r, self int) *repro.Tree {
		t := &repro.Tree{Node: self}
		for l < r {
			i := r - l + 1
			j := tab.J(i)
			if self < l+j {
				rec := l + j
				t.Children = append(t.Children, build(rec, r, rec))
				r = rec - 1
			} else {
				rec := r - j
				t.Children = append(t.Children, build(l, rec, rec))
				l = rec + 1
			}
		}
		return t
	}
	return build(0, k-1, 0)
}
