// Benchmarks regenerating every figure of the paper plus the simulator
// micro-benchmarks. Figure benches run the real experiment pipeline
// (calibration, placement, flit-level simulation, aggregation) with a
// reduced trial count so `go test -bench=.` completes in minutes; the
// full 16-trial figures are produced by cmd/mcastbench.
package repro_test

import (
	"testing"

	"repro"
	"repro/internal/bmin"
	"repro/internal/exp"
	"repro/internal/model"
	"repro/internal/wormhole"
)

const benchTrials = 2 // cmd/mcastbench uses the paper's 16

func benchMeshSuite() *exp.Suite {
	s := exp.DefaultSuite(exp.MeshPlatform(16, 16, wormhole.DefaultConfig()))
	s.Trials = benchTrials
	return s
}

func benchBMINSuite() *exp.Suite {
	s := exp.DefaultSuite(exp.BMINPlatform(128, bmin.AscentStraight, wormhole.DefaultConfig()))
	s.Trials = benchTrials
	return s
}

// BenchmarkOptTreeDP measures Algorithm 2.1 itself: the O(k) dynamic
// program behind every figure (and the Figure 1 example).
func BenchmarkOptTreeDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		repro.NewOptTable(65536, 20, 55)
	}
}

// BenchmarkFigure1 evaluates the paper's worked example analytically.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := repro.Figure1()
		if err != nil || f.OptLatency != 130 {
			b.Fatal("figure 1 broken")
		}
	}
}

// BenchmarkFigure2 regenerates the 32-node message-size sweep on the
// 16x16 mesh (U-mesh / OPT-tree / OPT-mesh).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure2(benchMeshSuite()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2b regenerates the 128-node variant of Figure 2.
func BenchmarkFigure2b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure2b(benchMeshSuite()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 regenerates the 4-KB node-count sweep on the mesh.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure3(benchMeshSuite()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBMINSize regenerates the BMIN message-size sweep (U-min /
// OPT-tree / OPT-min).
func BenchmarkBMINSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.BMINSizes(benchBMINSuite()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBMINNodes regenerates the BMIN node-count sweep.
func BenchmarkBMINNodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.BMINNodes(benchBMINSuite()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContentionAblation quantifies Section 5's "contention less
// severe on the BMIN" claim.
func BenchmarkContentionAblation(b *testing.B) {
	sizes := []int{4096, 32768}
	for i := 0; i < b.N; i++ {
		if _, err := exp.ContentionComparison(benchMeshSuite(), benchBMINSuite(), 32, sizes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRatioAblation sweeps the t_hold/t_end ratio analytically.
func BenchmarkRatioAblation(b *testing.B) {
	ratios := []float64{0.01, 0.05, 0.1, 0.2, 0.36, 0.5, 0.75, 1.0}
	for i := 0; i < b.N; i++ {
		exp.RatioAblation(256, 1000, ratios)
	}
}

// BenchmarkAddrPayloadAblation measures the address-list payload cost.
func BenchmarkAddrPayloadAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AddrAblation(benchMeshSuite(), 32, 4096, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyAblation compares BMIN ascent policies.
func BenchmarkPolicyAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.PolicyAblation(128, wormhole.DefaultConfig(), model.DefaultSoftware(), benchTrials, 1997, 32, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkButterflyTemporal runs experiment E1 on the unidirectional
// butterfly.
func BenchmarkButterflyTemporal(b *testing.B) {
	sizes := []int{4096, 32768}
	for i := 0; i < b.N; i++ {
		s := exp.DefaultSuite(exp.ButterflyPlatform(128, wormhole.DefaultConfig()))
		s.Trials = benchTrials
		if _, err := exp.ButterflyTemporal(s, 32, sizes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHypercube runs experiment H1 (U-cube vs OPT-cube on a
// 256-node hypercube).
func BenchmarkHypercube(b *testing.B) {
	sizes := []int{4096, 32768}
	for i := 0; i < b.N; i++ {
		s := exp.DefaultSuite(exp.HypercubePlatform(8, wormhole.DefaultConfig()))
		s.Trials = benchTrials
		if _, err := exp.HypercubeSizes(s, 32, sizes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentInterference runs experiment C1 (simultaneous
// multicasts interfering through the shared fabric).
func BenchmarkConcurrentInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.ConcurrentInterference(benchMeshSuite(), []int{1, 2, 4}, 16, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelValidation runs experiment M1 (analytic vs simulated).
func BenchmarkModelValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.ModelValidation(benchMeshSuite(), []int{8, 32, 128}, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBroadcastCrossover runs experiment B4 (tree vs
// scatter-collect full broadcast).
func BenchmarkBroadcastCrossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.DefaultSuite(exp.MeshPlatform(8, 8, wormhole.DefaultConfig()))
		if _, err := exp.BroadcastCrossover(s, []int{4096, 1 << 18}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTorus runs experiment T1 (multicast trees on a wrap-around
// torus with dateline virtual channels).
func BenchmarkTorus(b *testing.B) {
	sizes := []int{4096, 32768}
	for i := 0; i < b.N; i++ {
		s := exp.DefaultSuite(exp.TorusPlatform(16, 16, wormhole.DefaultConfig()))
		s.Trials = benchTrials
		if _, err := exp.TorusSizes(s, 32, sizes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTemporalTuning runs experiment E2 (search-based §6 tuning on
// the butterfly).
func BenchmarkTemporalTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.DefaultSuite(exp.ButterflyPlatform(64, wormhole.DefaultConfig()))
		s.Trials = benchTrials
		if _, err := exp.TemporalTuning(s, 20, 4096, 150); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStaticChecker measures the static contention verifier on a
// 64-node OPT-mesh schedule.
func BenchmarkStaticChecker(b *testing.B) {
	m := repro.NewMesh2D(16, 16)
	k := &repro.ContentionChecker{Topo: m, Software: repro.DefaultSoftware(), Slack: 100}
	addrs := make([]int, 64)
	for i := range addrs {
		addrs[i] = i * 4
	}
	ch := repro.NewChain(addrs, m.DimOrderLess)
	tab := repro.NewOptTable(64, 1014, 2500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conflicts, err := k.Check(tab, ch, 0, 4096, 1014, 2500)
		if err != nil {
			b.Fatal(err)
		}
		if len(conflicts) != 0 {
			b.Fatal("unexpected conflicts")
		}
	}
}

// BenchmarkUnicast64KB measures raw fabric throughput: one 64 KB worm
// across the mesh diagonal, reported in flit events per second.
func BenchmarkUnicast64KB(b *testing.B) {
	m := repro.NewMesh2D(16, 16)
	cfg := repro.DefaultFabricConfig()
	var events int64
	for i := 0; i < b.N; i++ {
		n := repro.NewNetwork(m, cfg)
		n.Send(0, 255, 65536, nil, nil)
		if _, err := n.RunUntilIdle(1 << 22); err != nil {
			b.Fatal(err)
		}
		events += n.Stats().FlitHops
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "flit-events/s")
}

// BenchmarkMulticastOptMesh measures one full 32-node 4 KB OPT-mesh
// multicast, the workhorse of Figures 2 and 3.
func BenchmarkMulticastOptMesh(b *testing.B) {
	m := repro.NewMesh2D(16, 16)
	cfg := repro.DefaultFabricConfig()
	soft := repro.DefaultSoftware()
	runCfg := repro.RunConfig{Software: soft}
	tend, err := repro.MeasureUnicast(repro.NewNetwork(m, cfg), 0, 90, 4096, runCfg)
	if err != nil {
		b.Fatal(err)
	}
	tab := repro.NewOptTable(32, soft.Hold.At(4096), tend)
	addrs := make([]int, 32)
	for i := range addrs {
		addrs[i] = i * 8
	}
	ch := repro.NewChain(addrs, m.DimOrderLess)
	root, _ := ch.Index(addrs[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.RunMulticast(repro.NewNetwork(m, cfg), tab, ch, root, 4096, runCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanSends measures the planner's per-node work.
func BenchmarkPlanSends(b *testing.B) {
	tab := repro.NewOptTable(1024, 20, 55)
	ids := make(repro.Chain, 1024)
	for i := range ids {
		ids[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := planTreeShape(tab, 1024)
		if tree.Size() != 1024 {
			b.Fatal("bad tree")
		}
	}
}

func planTreeShape(tab repro.SplitTable, k int) *repro.Tree {
	var build func(l, r, self int) *repro.Tree
	build = func(l, r, self int) *repro.Tree {
		t := &repro.Tree{Node: self}
		for l < r {
			i := r - l + 1
			j := tab.J(i)
			if self < l+j {
				rec := l + j
				t.Children = append(t.Children, build(rec, r, rec))
				r = rec - 1
			} else {
				rec := r - j
				t.Children = append(t.Children, build(l, rec, rec))
				l = rec + 1
			}
		}
		return t
	}
	return build(0, k-1, 0)
}
