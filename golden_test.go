package repro_test

import (
	"testing"

	"repro/internal/exp"
	"repro/internal/wormhole"
)

// TestGoldenPipeline pins the byte-exact output of a small end-to-end
// sweep — calibration, placement sampling, flit-level simulation of all
// three algorithms, aggregation and rendering. Any semantic change in
// any layer (simulator timing, PRNG stream, planner, statistics,
// formatting) shows up here first. If you change simulator semantics
// deliberately, regenerate this constant and record why in the commit.
func TestGoldenPipeline(t *testing.T) {
	const golden = "golden\n" +
		"y: multicast latency (cycles)\n" +
		"message size (bytes)    U-mesh  OPT-tree  OPT-mesh\n" +
		"--------------------  --------  --------  --------\n" +
		"                 512   3098 ±3   2560 ±5   2553 ±2\n" +
		"                4096   7664 ±3   6141 ±5   6134 ±2\n" +
		"# measured t_hold(512B)=477 t_end(512B)=1033\n" +
		"# measured t_hold(4096B)=1014 t_end(4096B)=2555\n" +
		"# 3 random placements per point on 8x8 mesh, seed 1997\n"

	s := exp.DefaultSuite(exp.MeshPlatform(8, 8, wormhole.DefaultConfig()))
	s.Trials = 3
	tab, err := s.SweepSizes("golden", 8, []int{512, 4096}, exp.MeshAlgorithms())
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Format(); got != golden {
		t.Fatalf("pipeline output drifted.\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}
