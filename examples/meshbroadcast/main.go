// Meshbroadcast runs the paper's mesh experiment end to end for one
// workload: a 32-node multicast of a 4 KB message on a simulated 16x16
// wormhole mesh, comparing U-mesh, the architecture-independent OPT-tree,
// and the tuned OPT-mesh.
//
// It demonstrates the three-step methodology a user of this library
// follows on any machine:
//
//  1. measure (t_hold, t_end) with calibration unicasts,
//  2. build the optimal split table with NewOptTable,
//  3. plan over the architecture's dimension-ordered chain.
//
// Run with:
//
//	go run ./examples/meshbroadcast
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		k     = 32
		bytes = 4096
		seed  = 42
	)
	soft := repro.DefaultSoftware()
	cfg := repro.RunConfig{Software: soft}
	m := repro.NewMesh2D(16, 16)
	fabric := repro.DefaultFabricConfig()

	// Step 1: measure t_end at user level, as the paper prescribes —
	// the library never needs to know the fabric's internals.
	tend, err := repro.MeasureUnicast(repro.NewNetwork(m, fabric), m.Addr(0, 0), m.Addr(5, 5), bytes, cfg)
	if err != nil {
		log.Fatal(err)
	}
	thold := soft.Hold.At(bytes)
	fmt.Printf("measured: t_hold=%d t_end=%d (ratio %.2f)\n\n", thold, tend, float64(thold)/float64(tend))

	// A random 32-node placement; element 0 is the source.
	suite := repro.NewMeshSuite(16, 16)
	_ = suite // suite drives full sweeps; this example runs one workload
	addrs := samplePlacement(m.NumNodes(), k, seed)

	// Step 2+3, three ways.
	type variant struct {
		name    string
		tab     repro.SplitTable
		ordered bool
	}
	variants := []variant{
		{"U-mesh   (binomial, dim-ordered)", repro.BinomialTable{Max: k}, true},
		{"OPT-tree (optimal, random order)", repro.NewOptTable(k, thold, tend), false},
		{"OPT-mesh (optimal, dim-ordered)", repro.NewOptTable(k, thold, tend), true},
	}
	var uMeshLatency, optMeshLatency int64
	for _, v := range variants {
		var ch repro.Chain
		if v.ordered {
			ch = repro.NewChain(addrs, m.DimOrderLess)
		} else {
			ch = repro.UnorderedChain(addrs)
		}
		root, _ := ch.Index(addrs[0])
		res, err := repro.RunMulticast(repro.NewNetwork(m, fabric), v.tab, ch, root, bytes, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s latency %6d cycles, contention %5d blocked cycles\n",
			v.name, res.Latency, res.BlockedCycles)
		switch v.name[:5] {
		case "U-mes":
			uMeshLatency = res.Latency
		case "OPT-m":
			optMeshLatency = res.Latency
		}
	}
	fmt.Printf("\nOPT-mesh improves on U-mesh by %.1f%% on this workload.\n",
		100*(1-float64(optMeshLatency)/float64(uMeshLatency)))
}

// samplePlacement draws k distinct addresses deterministically; a tiny
// xorshift keeps the example dependency-free.
func samplePlacement(n, k int, seed uint64) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	s := seed
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:k]
}
