// Tuning explores how the optimal multicast tree morphs with the machine:
// as t_hold/t_end sweeps from 0 to 1, the optimal shape slides from the
// sequential (separate-addressing) tree through intermediate parameterized
// shapes to the binomial tree. This is the analytic backbone of the
// paper's argument for measuring parameters instead of hard-coding a tree.
//
// Run with:
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	const (
		k    = 32
		tend = repro.Time(1000)
	)

	fmt.Printf("optimal %d-node multicast trees as t_hold/t_end varies (t_end = %d)\n\n", k, tend)
	fmt.Printf("%7s  %9s  %9s  %9s  %6s  %7s  %s\n",
		"ratio", "OPT", "binomial", "sequent.", "depth", "fanout", "root sends")
	for _, ratio := range []float64{0, 0.05, 0.1, 0.2, 0.36, 0.5, 0.75, 1.0} {
		thold := repro.Time(ratio * float64(tend))
		tab := repro.NewOptTable(k, thold, tend)

		// Plan the tree from source position 0 to inspect its shape.
		tree, err := planTree(tab, k)
		if err != nil {
			log.Fatal(err)
		}
		opt := tab.T(k)
		bino := repro.Latency(repro.BinomialTable{Max: k}, k, thold, tend)
		seq := repro.Latency(repro.SequentialTable{Max: k}, k, thold, tend)

		marks := ""
		if opt == bino {
			marks += " =binomial"
		}
		if opt == seq {
			marks += " =sequential"
		}
		fmt.Printf("%7.2f  %9d  %9d  %9d  %6d  %7d  %10d%s\n",
			ratio, opt, bino, seq, tree.Depth(), tree.MaxFanout(), len(tree.Children), marks)
	}

	fmt.Println(`
Reading the table:
  - ratio 0 (free sends): the root fans out to everyone; the optimal tree
    degenerates toward separate addressing (depth is what t_end allows).
  - ratio 1 (sends as costly as full round trips): recursive doubling is
    optimal and OPT equals the binomial tree exactly.
  - in between — every real machine — the optimal tree is neither, which
    is why portable multicast must be parameterized.`)

	// Show two extreme shapes side by side.
	lo, err := planTree(repro.NewOptTable(12, 50, 1000), 12)
	if err != nil {
		log.Fatal(err)
	}
	hi, err := planTree(repro.NewOptTable(12, 1000, 1000), 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("12-node optimal trees at ratio 0.05 (left) and 1.0 (right):")
	sideBySide(lo.String(), hi.String())
}

func planTree(tab repro.SplitTable, k int) (*repro.Tree, error) {
	// Plan over the identity chain with the source at position 0; shapes
	// are position-independent in latency (see the plan package tests).
	ids := make(repro.Chain, k)
	for i := range ids {
		ids[i] = i
	}
	f, err := repro.Figure1() // ensure the library is consistent; cheap
	if err != nil || f.OptLatency != 130 {
		return nil, fmt.Errorf("library self-check failed")
	}
	return planViaSchedule(tab, k)
}

func planViaSchedule(tab repro.SplitTable, k int) (*repro.Tree, error) {
	// The facade exposes planning through RunMulticast for simulation;
	// for analytic shapes we reconstruct the tree from the split table
	// with the same recursion the planners use.
	var build func(l, r, self int) *repro.Tree
	build = func(l, r, self int) *repro.Tree {
		t := &repro.Tree{Node: self}
		for l < r {
			i := r - l + 1
			j := tab.J(i)
			if self < l+j {
				rec := l + j
				t.Children = append(t.Children, build(rec, r, rec))
				r = rec - 1
			} else {
				rec := r - j
				t.Children = append(t.Children, build(l, rec, rec))
				l = rec + 1
			}
		}
		return t
	}
	return build(0, k-1, 0), nil
}

func sideBySide(a, b string) {
	al := strings.Split(strings.TrimRight(a, "\n"), "\n")
	bl := strings.Split(strings.TrimRight(b, "\n"), "\n")
	n := len(al)
	if len(bl) > n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		var l, r string
		if i < len(al) {
			l = al[i]
		}
		if i < len(bl) {
			r = bl[i]
		}
		fmt.Printf("  %-20s | %s\n", l, r)
	}
}
