// Verification demonstrates the two independent ways this library proves
// a multicast schedule contention-free, and what the diagnostics look
// like when a schedule is NOT:
//
//  1. the static checker (repro.ContentionChecker) expands the analytic
//     schedule and intersects fabric paths of time-overlapping sends;
//  2. the flit-level simulator executes the schedule and counts blocked
//     header cycles, with tracing observers localizing every stall.
//
// The two implementations share no code paths, so their agreement is the
// strongest evidence this reproduction offers for the paper's Theorems 1
// and 2.
//
// Run with:
//
//	go run ./examples/verification
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		k     = 24
		bytes = 4096
	)
	m := repro.NewMesh2D(16, 16)
	soft := repro.DefaultSoftware()
	cfg := repro.RunConfig{Software: soft}
	fabric := repro.DefaultFabricConfig()

	// Measure the machine.
	tend, err := repro.MeasureUnicast(repro.NewNetwork(m, fabric), m.Addr(0, 0), m.Addr(5, 5), bytes, cfg)
	if err != nil {
		log.Fatal(err)
	}
	thold := soft.Hold.At(bytes)
	tab := repro.NewOptTable(k, thold, tend)

	// A fixed spread of destinations.
	addrs := make([]int, k)
	for i := range addrs {
		addrs[i] = (i*37 + 5) % 256
	}

	checker := &repro.ContentionChecker{Topo: m, Software: soft, Slack: 100, Limit: 3}

	for _, ordered := range []bool{true, false} {
		var ch repro.Chain
		name := "OPT-mesh (dimension-ordered)"
		if ordered {
			ch = repro.NewChain(addrs, m.DimOrderLess)
		} else {
			ch = repro.UnorderedChain(addrs)
			name = "OPT-tree (unordered)"
		}
		root, _ := ch.Index(addrs[0])

		// Proof 1: static.
		conflicts, err := checker.Check(tab, ch, root, bytes, thold, tend)
		if err != nil {
			log.Fatal(err)
		}

		// Proof 2: dynamic, with tracing.
		net := repro.NewNetwork(m, fabric)
		usage := repro.NewChannelUsage(m)
		net.SetObserver(usage)
		res, err := repro.RunMulticast(net, tab, ch, root, bytes, cfg)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s\n", name)
		fmt.Printf("  static checker:   %d conflicting send pairs\n", len(conflicts))
		for _, c := range conflicts {
			fmt.Printf("    %s\n", checker.Describe(c))
		}
		fmt.Printf("  simulator:        %d blocked header cycles, latency %d\n", res.BlockedCycles, res.Latency)
		if (len(conflicts) == 0) != (res.BlockedCycles == 0) {
			log.Fatal("the two verifiers disagree — please file a bug")
		}
		if res.BlockedCycles > 0 {
			fmt.Println("  hottest channels under contention:")
			fmt.Print(indent(usage.Report(4)))
		}
		fmt.Println()
	}
	fmt.Println("Both verifiers agree: ordering is what makes the optimal tree real.")
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += "    " + s[start:i+1]
			start = i + 1
		}
	}
	return out
}
