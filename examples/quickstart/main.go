// Quickstart: build an optimal multicast tree from two measured
// parameters and compare it with the classic binomial tree — the paper's
// core result in thirty lines.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The parameterized model reduces a machine to two easily measured
	// numbers per message size: t_hold (the gap a processor needs
	// between consecutive sends) and t_end (end-to-end unicast latency).
	// These are the paper's Figure 1 values.
	const (
		thold = repro.Time(20)
		tend  = repro.Time(55)
		k     = 8 // one source + seven destinations
	)

	// Algorithm 2.1: the optimal split table for every multicast size up
	// to k, in O(k).
	opt := repro.NewOptTable(k, thold, tend)
	fmt.Printf("optimal %d-node multicast latency: %d cycles\n", k, opt.T(k))

	// The binomial tree (the basis of U-mesh and U-min) is only optimal
	// when t_hold = t_end; here it loses by 27%%.
	bino := repro.Latency(repro.BinomialTable{Max: k}, k, thold, tend)
	fmt.Printf("binomial tree latency:            %d cycles\n", bino)

	// The sequential (separate addressing) tree for contrast.
	seq := repro.Latency(repro.SequentialTable{Max: k}, k, thold, tend)
	fmt.Printf("sequential tree latency:          %d cycles\n", seq)

	// Sanity: the O(k) table equals the exhaustive O(k^2) optimum.
	if oracle := repro.OptimalLatency(k, thold, tend); oracle != opt.T(k) {
		log.Fatalf("DP disagrees with oracle: %d vs %d", opt.T(k), oracle)
	}

	// The same table drives the architecture-dependent planners: here is
	// the worked example of the paper's Figure 1, including the tree.
	fig, err := repro.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 1 example — OPT %d vs U-mesh %d (paper: 130 vs 165)\n",
		fig.OptLatency, fig.UMeshLat)
	fmt.Println("OPT tree (chain positions, children in send order):")
	fmt.Print(fig.OptTree.String())
}
