// Bmincollective broadcasts to every node of a simulated 128-node BMIN
// (the IBM SP-style fabric of the paper's second experiment set) and
// compares U-min against the tuned OPT-min, for several message sizes.
// It also shows the effect of the ascent policy on the *untuned*
// OPT-tree — the "turnaround routing has more communication paths"
// observation of the paper's Section 5.
//
// Run with:
//
//	go run ./examples/bmincollective
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const nodes = 128
	soft := repro.DefaultSoftware()
	cfg := repro.RunConfig{Software: soft}
	fabric := repro.DefaultFabricConfig()

	// Broadcast: the chain is every node, source at node 0.
	addrs := make([]int, nodes)
	for i := range addrs {
		addrs[i] = i
	}

	fmt.Println("full 128-node broadcast on a BMIN (straight ascent):")
	fmt.Printf("%8s  %10s  %10s  %9s\n", "bytes", "U-min", "OPT-min", "speedup")
	for _, bytes := range []int{512, 4096, 32768} {
		b := repro.NewBMIN(nodes, repro.AscentStraight)
		tend, err := repro.MeasureUnicast(repro.NewNetwork(b, fabric), 0, nodes-1, bytes, cfg)
		if err != nil {
			log.Fatal(err)
		}
		thold := soft.Hold.At(bytes)
		ch := repro.NewChain(addrs, b.LexLess)

		run := func(tab repro.SplitTable) int64 {
			res, err := repro.RunMulticast(repro.NewNetwork(b, fabric), tab, ch, 0, bytes, cfg)
			if err != nil {
				log.Fatal(err)
			}
			if res.BlockedCycles != 0 {
				log.Fatalf("tuned broadcast contended: %d blocked cycles", res.BlockedCycles)
			}
			return res.Latency
		}
		umin := run(repro.BinomialTable{Max: nodes})
		optmin := run(repro.NewOptTable(nodes, thold, tend))
		fmt.Printf("%8d  %10d  %10d  %8.2fx\n", bytes, umin, optmin, float64(umin)/float64(optmin))
	}

	// The ascent policy does not matter for the tuned OPT-min (it is
	// contention-free anyway), but it matters a lot for the untuned
	// OPT-tree: adaptive ascent soaks up contention with the BMIN's
	// path multiplicity.
	fmt.Println("\nuntuned OPT-tree contention vs ascent policy (k=32, 4 KB):")
	const k, bytes = 32, 4096
	sub := addrs[:0]
	for i := 0; i < nodes; i += 4 {
		sub = append(sub, i) // a spread-out 32-node subset
	}
	for _, pol := range []repro.AscentPolicy{
		repro.AscentStraight, repro.AscentDest, repro.AscentAdaptive, repro.AscentAdaptiveDest,
	} {
		b := repro.NewBMIN(nodes, pol)
		tend, err := repro.MeasureUnicast(repro.NewNetwork(b, fabric), 0, nodes-1, bytes, cfg)
		if err != nil {
			log.Fatal(err)
		}
		tab := repro.NewOptTable(k, soft.Hold.At(bytes), tend)
		ch := repro.UnorderedChain(shuffle(sub))
		res, err := repro.RunMulticast(repro.NewNetwork(b, fabric), tab, ch, 0, bytes, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s latency %6d, blocked %5d cycles\n", pol, res.Latency, res.BlockedCycles)
	}
}

// shuffle returns a deterministic pseudo-random permutation of the slice.
func shuffle(in []int) []int {
	out := append([]int(nil), in...)
	s := uint64(0xdecafbad)
	for i := len(out) - 1; i > 0; i-- {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		j := int(s % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}
