// Package wallclock is the repo's single audited door to the host's
// wall clock.
//
// The detclock analyzer bans time.Now/time.Since from every package
// that produces or consumes experiment numbers: published results must
// be pure functions of seeds and the simulated cycle clock. But two
// spots legitimately need elapsed wall time — the experiment engine's
// progress/ETA ticker and the CLI summaries' wall_ms field — and both
// are display-only: they write to stderr or to run metadata, never
// into a table, a golden file, or a cache payload. Routing those reads
// through this package keeps the exception enumerable: a grep for
// wallclock. lists every wall-clock consumer in the repo, and any new
// time.Now elsewhere is a lint failure, not a review judgment call.
//
// Do not add functionality here (no formatting, no timers): the
// narrower the door, the easier the audit.
package wallclock

import "time"

// Now returns the current wall-clock time. Display and run-metadata
// use only — never feed it into a result.
func Now() time.Time { return time.Now() }

// Since returns the wall time elapsed since t. Display and
// run-metadata use only.
func Since(t time.Time) time.Duration { return time.Since(t) }
