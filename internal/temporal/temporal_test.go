package temporal_test

import (
	"sort"
	"testing"

	"repro/internal/bfly"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/mcastsim"
	"repro/internal/mesh"
	"repro/internal/model"
	"repro/internal/sim"
	. "repro/internal/temporal"
	"repro/internal/wormhole"
)

var soft = model.Software{
	Send: model.Linear{Fixed: 200, PerByte: 0.15},
	Recv: model.Linear{Fixed: 200, PerByte: 0.15},
	Hold: model.Linear{Fixed: 200, PerByte: 0.15},
}

// TestTunePreservesAddressSet: tuning permutes, never alters, the set.
func TestTunePreservesAddressSet(t *testing.T) {
	b := bfly.New(64)
	addrs := sim.NewRNG(1).Sample(64, 20)
	tab := core.NewOptTable(20, 814, 2200)
	res, err := Tune(Config{Topo: b, Software: soft, Seed: 1, Iterations: 100}, tab, addrs, 4096, 814, 2200)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]int(nil), res.Chain...)
	want := append([]int(nil), addrs...)
	sort.Ints(got)
	sort.Ints(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chain is not a permutation: %v vs %v", got, want)
		}
	}
	if res.Chain[res.Root] != addrs[0] {
		t.Fatal("root does not point at the source")
	}
}

// TestTuneNeverWorsens: the final cost is never above the initial.
func TestTuneNeverWorsens(t *testing.T) {
	b := bfly.New(64)
	tab := core.NewOptTable(24, 814, 2200)
	for seed := uint64(0); seed < 6; seed++ {
		addrs := sim.NewRNG(seed).Sample(64, 24)
		res, err := Tune(Config{Topo: b, Software: soft, Seed: seed, Iterations: 150}, tab, addrs, 4096, 814, 2200)
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalCost > res.InitialCost {
			t.Fatalf("seed %d: cost worsened %d -> %d", seed, res.InitialCost, res.FinalCost)
		}
		if res.Evaluations == 0 {
			t.Fatal("no evaluations recorded")
		}
	}
}

// TestTuneReducesButterflyContention end-to-end: the simulator confirms
// that tuned orderings block less than the random starting orderings,
// aggregated over several placements.
func TestTuneReducesButterflyContention(t *testing.T) {
	b := bfly.New(64)
	const bytes = 4096
	thold := soft.Hold.At(bytes)
	tend := model.Time(2200)
	tab := core.NewOptTable(24, thold, tend)
	cfg := mcastsim.Config{Software: soft}

	var before, after int64
	for seed := uint64(0); seed < 5; seed++ {
		addrs := sim.NewRNG(seed).Sample(64, 24)
		raw := chain.Unordered(addrs)
		r0, err := mcastsim.Run(wormhole.New(b, wormhole.DefaultConfig()), tab, raw, 0, bytes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		before += r0.BlockedCycles

		res, err := Tune(Config{Topo: b, Software: soft, Slack: 50, Seed: seed, Iterations: 300, Restarts: 2},
			tab, addrs, bytes, thold, tend)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := mcastsim.Run(wormhole.New(b, wormhole.DefaultConfig()), tab, res.Chain, res.Root, bytes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		after += r1.BlockedCycles
	}
	if before == 0 {
		t.Fatal("random orderings never contended; test is vacuous")
	}
	if after >= before {
		t.Fatalf("tuning did not reduce simulated contention: %d -> %d", before, after)
	}
}

// TestTuneOnMeshFindsZero: on a partitionable fabric the tuner should be
// able to reach (or match) zero predicted conflicts — the dimension
// order already achieves it, and hill climbing from it must keep it.
func TestTuneOnMeshKeepsZero(t *testing.T) {
	m := mesh.New2D(8, 8)
	addrs := sim.NewRNG(3).Sample(64, 12)
	tab := core.NewOptTable(12, 814, 2000)
	res, err := Tune(Config{Topo: m, Software: soft, Slack: 50, Seed: 3, Iterations: 300, Restarts: 2},
		tab, addrs, 4096, 814, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalCost != 0 {
		t.Fatalf("tuner could not reach zero conflicts on a partitionable mesh (cost %d)", res.FinalCost)
	}
}

// TestTuneEmptyAddrs errors.
func TestTuneEmptyAddrs(t *testing.T) {
	b := bfly.New(8)
	if _, err := Tune(Config{Topo: b, Software: soft}, core.NewOptTable(4, 1, 2), nil, 8, 1, 2); err == nil {
		t.Fatal("empty set accepted")
	}
}

// TestTuneDeterministic: same seed, same result.
func TestTuneDeterministic(t *testing.T) {
	b := bfly.New(64)
	addrs := sim.NewRNG(9).Sample(64, 16)
	tab := core.NewOptTable(16, 814, 2200)
	run := func() *Result {
		res, err := Tune(Config{Topo: b, Software: soft, Seed: 42, Iterations: 120}, tab, addrs, 2048, 814, 2200)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, c := run(), run()
	if a.FinalCost != c.FinalCost || len(a.Chain) != len(c.Chain) {
		t.Fatal("tuning not deterministic")
	}
	for i := range a.Chain {
		if a.Chain[i] != c.Chain[i] {
			t.Fatal("chains diverged")
		}
	}
}
