// Package temporal implements the paper's concluding proposal (§6) for
// networks that cannot be partitioned into contention-free clusters,
// such as the unidirectional butterfly: when some channels must be
// shared, order the nodes so the senders that share them "are unlikely
// to send at the same time" — temporal, rather than spatial,
// contention avoidance.
//
// The tuner keeps the optimal tree shape (the split table is fixed; it
// is what makes the latency optimal) and searches over the chain
// ordering. The objective is computed by the static contention checker
// (package contention): the total time-overlap of channel-sharing send
// pairs in the analytic schedule. A seeded hill climb with pairwise
// swaps is simple, deterministic, and in practice removes most of the
// residual contention the lexicographic order leaves on the butterfly —
// the experiments record exactly how much.
package temporal

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/wormhole"
)

// Config parameterizes one tuning run.
type Config struct {
	// Topo is the fabric the schedule will execute on.
	Topo wormhole.Topology
	// Software supplies t_send/t_recv for occupancy windows.
	Software model.Software
	// Slack pads occupancy windows (see contention.Checker).
	Slack int64
	// Iterations bounds the hill climb (default 400).
	Iterations int
	// Seed drives the swap proposals.
	Seed uint64
	// Restarts runs the climb from several shuffled starts and keeps
	// the best (default 1: start from the given chain only).
	Restarts int
}

// Result reports a tuning run.
type Result struct {
	// Chain is the best ordering found.
	Chain chain.Chain
	// Root is the source's index in Chain.
	Root int
	// InitialCost and FinalCost are the objective (total conflict
	// overlap, cycles) before and after tuning.
	InitialCost, FinalCost int64
	// Evaluations counts objective evaluations performed.
	Evaluations int
}

// Tune searches for a chain ordering of addrs (source first) minimizing
// predicted contention for the given tree shape and message size. The
// returned chain always contains exactly the given addresses.
func Tune(cfg Config, tab core.SplitTable, addrs []int, bytes int, thold, tend model.Time) (*Result, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("temporal: empty address set")
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 400
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 1
	}
	checker := &contention.Checker{Topo: cfg.Topo, Software: cfg.Software, Slack: cfg.Slack}
	src := addrs[0]

	res := &Result{}
	evalChain := func(ch chain.Chain) (int64, error) {
		res.Evaluations++
		root, ok := ch.Index(src)
		if !ok {
			return 0, fmt.Errorf("temporal: source lost from chain")
		}
		return cost(checker, tab, ch, root, bytes, thold, tend)
	}

	base := chain.Unordered(addrs)
	bestCost, err := evalChain(base)
	if err != nil {
		return nil, err
	}
	res.InitialCost = bestCost
	best := base

	rng := sim.NewRNG(cfg.Seed)
	for restart := 0; restart < cfg.Restarts; restart++ {
		cur := append(chain.Chain(nil), base...)
		if restart > 0 {
			shuffle(rng, cur)
		}
		curCost, err := evalChain(cur)
		if err != nil {
			return nil, err
		}
		for it := 0; it < cfg.Iterations && curCost > 0; it++ {
			i := rng.Intn(len(cur))
			j := rng.Intn(len(cur))
			if i == j {
				continue
			}
			cur[i], cur[j] = cur[j], cur[i]
			c, err := evalChain(cur)
			if err != nil {
				return nil, err
			}
			if c <= curCost {
				curCost = c // accept (plateau moves allowed)
			} else {
				cur[i], cur[j] = cur[j], cur[i] // revert
			}
		}
		if curCost < bestCost {
			bestCost = curCost
			best = append(chain.Chain(nil), cur...)
		}
	}

	root, _ := best.Index(src)
	res.Chain = best
	res.Root = root
	res.FinalCost = bestCost
	return res, nil
}

// cost is the tuning objective: the summed time-overlap (cycles) of
// every channel-sharing send pair in the analytic schedule. Zero means
// the static checker predicts a contention-free execution.
func cost(k *contention.Checker, tab core.SplitTable, ch chain.Chain, root, bytes int, thold, tend model.Time) (int64, error) {
	s, err := plan.BuildSchedule(tab, ch, root, thold, tend)
	if err != nil {
		return 0, err
	}
	conflicts, err := k.CheckSchedule(s, bytes)
	if err != nil {
		return 0, err
	}
	tSend := k.Software.Send.At(bytes)
	tRecv := k.Software.Recv.At(bytes)
	var total int64
	for _, c := range conflicts {
		aStart, aEnd := c.A.Issue+tSend, c.A.Arrive-tRecv
		bStart, bEnd := c.B.Issue+tSend, c.B.Arrive-tRecv
		lo, hi := maxi(aStart, bStart), mini(aEnd, bEnd)
		if hi > lo {
			total += hi - lo
		} else {
			total++ // overlap only via slack; count minimally
		}
	}
	return total, nil
}

func shuffle(r *sim.RNG, c chain.Chain) {
	for i := len(c) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		c[i], c[j] = c[j], c[i]
	}
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
