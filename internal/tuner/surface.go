// Package tuner turns the paper's central observation — the best
// multicast algorithm flips with (architecture, group size, message
// size, t_hold/t_end) and with fault state — into a decision layer:
//
//   - Surface is a precomputed crossover surface: a grid of measured
//     per-algorithm latencies over (k, bytes, fault %) for one
//     platform, compiled into a compact best-algorithm lookup with
//     deterministic tie-breaking. It round-trips through JSON and is
//     content-hashed, so a surface built once (from runner cells, which
//     are themselves cached) is a cacheable artifact under results/.
//   - Policy is the runtime selector: it answers admission-time
//     algorithm queries from the surface and recalibrates online from
//     observed completion latencies over a sliding window of the sim
//     event clock, switching algorithms live when drift moves a
//     crossover. It plugs directly into traffic.Config.Tuner, and its
//     table picks into recover.Config.Select.
//
// Everything here is deterministic: surfaces depend only on the
// measurements fed in, and Policy's state is a pure function of its
// call history, which the traffic engine produces in event-queue
// order. No wall clock is consulted anywhere (detclock-clean).
package tuner

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Unmeasured is the Latency sentinel for a grid point with no
// surviving measurement (every trial failed): selection treats it as
// infinitely bad. A negative sentinel keeps the JSON round trip exact
// (IEEE infinities do not survive encoding/json).
const Unmeasured = -1

// Surface is the crossover surface for one platform: mean measured
// latency of every candidate algorithm at every grid point, plus the
// compiled best-algorithm index per point. Axes must be strictly
// ascending; lookups clamp-floor each coordinate onto its axis, so a
// query between grid points uses the nearest point not above it.
type Surface struct {
	// Platform labels the fabric the surface was measured on.
	Platform string `json:"platform"`
	// Algorithms are the candidate names; their order is the selection
	// tie-break (equal latencies pick the lowest index) and the index
	// vocabulary of Best, Policy choices and traffic.RequestResult.Algo.
	Algorithms []string `json:"algorithms"`
	// Ks, Bytes and FaultPcts are the grid axes: multicast group size,
	// message size, and injected dead-link percentage.
	Ks        []int `json:"ks"`
	Bytes     []int `json:"bytes"`
	FaultPcts []int `json:"fault_pcts"`
	// Latency[cell*len(Algorithms)+ai] is algorithm ai's mean measured
	// latency at the cell (Unmeasured when no trial survived), with
	// cell = (ki*len(Bytes)+bi)*len(FaultPcts)+pi.
	Latency []float64 `json:"latency"`
	// Best is the compiled argmin per cell, filled by Compile.
	Best []int `json:"best"`
}

// New allocates an empty surface over the given axes, every latency
// Unmeasured. Fill with Set, then Compile.
func New(platform string, algos []string, ks, bytes, pcts []int) *Surface {
	s := &Surface{
		Platform:   platform,
		Algorithms: append([]string(nil), algos...),
		Ks:         append([]int(nil), ks...),
		Bytes:      append([]int(nil), bytes...),
		FaultPcts:  append([]int(nil), pcts...),
	}
	s.Latency = make([]float64, s.cells()*len(algos))
	for i := range s.Latency {
		s.Latency[i] = Unmeasured
	}
	return s
}

func (s *Surface) cells() int { return len(s.Ks) * len(s.Bytes) * len(s.FaultPcts) }

// Set records algorithm ai's mean latency at grid point (ki, bi, pi).
func (s *Surface) Set(ki, bi, pi, ai int, v float64) {
	s.Latency[((ki*len(s.Bytes)+bi)*len(s.FaultPcts)+pi)*len(s.Algorithms)+ai] = v
}

// At returns algorithm ai's latency at grid point (ki, bi, pi).
func (s *Surface) At(ki, bi, pi, ai int) float64 {
	return s.Latency[((ki*len(s.Bytes)+bi)*len(s.FaultPcts)+pi)*len(s.Algorithms)+ai]
}

// validate checks the surface's shape invariants.
func (s *Surface) validate() error {
	if len(s.Algorithms) == 0 {
		return fmt.Errorf("tuner: surface %q has no algorithms", s.Platform)
	}
	if len(s.Algorithms) > 127 {
		return fmt.Errorf("tuner: surface %q has %d algorithms (max 127)", s.Platform, len(s.Algorithms))
	}
	for name, axis := range map[string][]int{"ks": s.Ks, "bytes": s.Bytes, "fault_pcts": s.FaultPcts} {
		if len(axis) == 0 {
			return fmt.Errorf("tuner: surface %q axis %s is empty", s.Platform, name)
		}
		for i := 1; i < len(axis); i++ {
			if axis[i] <= axis[i-1] {
				return fmt.Errorf("tuner: surface %q axis %s not strictly ascending at %v", s.Platform, name, axis)
			}
		}
	}
	if want := s.cells() * len(s.Algorithms); len(s.Latency) != want {
		return fmt.Errorf("tuner: surface %q has %d latencies, want %d", s.Platform, len(s.Latency), want)
	}
	return nil
}

// Compile validates the surface and fills Best: per cell, the
// lowest-index algorithm among those with the minimal measured
// latency, skipping Unmeasured entries. A cell where every algorithm
// is Unmeasured compiles to index 0 — with nothing measured every
// choice is equally blind, and the fixed pick keeps the artifact
// deterministic.
func (s *Surface) Compile() error {
	if err := s.validate(); err != nil {
		return err
	}
	na := len(s.Algorithms)
	s.Best = make([]int, s.cells())
	for c := range s.Best {
		s.Best[c] = argmin(s.Latency[c*na:(c+1)*na], nil)
	}
	return nil
}

// argmin picks the lowest-index minimum of lat, each entry optionally
// scaled by the matching drift factor; entries < 0 (Unmeasured) are
// skipped. All-unmeasured returns 0.
func argmin(lat, drift []float64) int {
	best, bestV := 0, -1.0
	for i, v := range lat {
		if v < 0 {
			continue
		}
		if drift != nil {
			v *= drift[i]
		}
		if bestV < 0 || v < bestV {
			best, bestV = i, v
		}
	}
	return best
}

// axisFloor returns the index of the largest axis value <= v, clamped
// to 0 below the axis.
func axisFloor(axis []int, v int) int {
	i := 0
	for i+1 < len(axis) && axis[i+1] <= v {
		i++
	}
	return i
}

// CellIndex maps a workload point onto the grid: each coordinate
// clamp-floors onto its axis.
//
// Selection runs per admitted request inside the traffic engine's
// event loop; it must not allocate.
//
//lint:hotpath
func (s *Surface) CellIndex(k, bytes, pct int) int {
	return (axisFloor(s.Ks, k)*len(s.Bytes)+axisFloor(s.Bytes, bytes))*len(s.FaultPcts) + axisFloor(s.FaultPcts, pct)
}

// Select returns the compiled best algorithm index for a workload
// point. Compile must have run.
//
//lint:hotpath static selection is the admission-time fast path.
func (s *Surface) Select(k, bytes, pct int) int {
	return s.Best[s.CellIndex(k, bytes, pct)]
}

// Hash is the surface's content hash: lowercase hex SHA-256 of the
// canonical text encoding, covering platform, algorithms, axes and
// every latency (floats in Go's shortest exact 'g' form, so the hash
// is stable across encode/decode round trips).
func (s *Surface) Hash() string {
	var b strings.Builder
	b.WriteString("tuner-surface|platform=")
	b.WriteString(s.Platform)
	b.WriteString("|algos=")
	b.WriteString(strings.Join(s.Algorithms, ","))
	for _, axis := range [][]int{s.Ks, s.Bytes, s.FaultPcts} {
		b.WriteByte('|')
		for i, v := range axis {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(v))
		}
	}
	b.WriteString("|lat=")
	for i, v := range s.Latency {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	return fmt.Sprintf("%x", sha256.Sum256([]byte(b.String())))
}

// Set is the serializable artifact form: one or more platform surfaces
// plus their content hashes, as committed under results/.
type Set struct {
	// Hashes[i] is Surfaces[i].Hash(), recorded so a reader can verify
	// the artifact without recomputing the sweep.
	Hashes   []string   `json:"hashes"`
	Surfaces []*Surface `json:"surfaces"`
}

// EncodeSet serializes surfaces (with their content hashes) as
// deterministic indented JSON.
func EncodeSet(surfaces ...*Surface) ([]byte, error) {
	set := Set{Surfaces: surfaces}
	for _, s := range surfaces {
		if err := s.validate(); err != nil {
			return nil, err
		}
		set.Hashes = append(set.Hashes, s.Hash())
	}
	buf, err := json.MarshalIndent(set, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// DecodeSet parses an EncodeSet artifact, verifying each surface's
// recorded content hash and recompiling Best (a tampered or corrupt
// artifact fails loudly rather than mis-selecting silently).
func DecodeSet(buf []byte) ([]*Surface, error) {
	var set Set
	if err := json.Unmarshal(buf, &set); err != nil {
		return nil, fmt.Errorf("tuner: decode surface set: %w", err)
	}
	if len(set.Hashes) != len(set.Surfaces) {
		return nil, fmt.Errorf("tuner: surface set has %d hashes for %d surfaces", len(set.Hashes), len(set.Surfaces))
	}
	for i, s := range set.Surfaces {
		if got := s.Hash(); got != set.Hashes[i] {
			return nil, fmt.Errorf("tuner: surface %q content hash mismatch: artifact says %s, content is %s", s.Platform, set.Hashes[i], got)
		}
		stored := s.Best
		if err := s.Compile(); err != nil {
			return nil, err
		}
		if stored != nil {
			for c, b := range s.Best {
				if stored[c] != b {
					return nil, fmt.Errorf("tuner: surface %q cell %d: stored best %d, recompiled %d", s.Platform, c, stored[c], b)
				}
			}
		}
	}
	return set.Surfaces, nil
}
