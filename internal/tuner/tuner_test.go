package tuner

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// testSurface is a tiny 2x2x2 surface over two algorithms ("bin",
// "opt") with hand-placed crossovers: opt wins everywhere except the
// large-message faulted corner, where bin wins, and the (k=4, small,
// healthy) cell is an exact tie.
func testSurface(t *testing.T) *Surface {
	t.Helper()
	s := New("test 4x4 mesh", []string{"bin", "opt"}, []int{4, 16}, []int{1024, 65536}, []int{0, 2})
	fill := func(ki, bi, pi int, bin, opt float64) {
		s.Set(ki, bi, pi, 0, bin)
		s.Set(ki, bi, pi, 1, opt)
	}
	fill(0, 0, 0, 100, 100) // tie -> index 0 (bin)
	fill(0, 0, 1, 120, 110)
	fill(0, 1, 0, 900, 700)
	fill(0, 1, 1, 950, 1400) // bin wins faulted large
	fill(1, 0, 0, 300, 210)
	fill(1, 0, 1, 340, 250)
	fill(1, 1, 0, 2100, 1500)
	fill(1, 1, 1, 2400, 3600) // bin wins faulted large
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	return s
}

func testAlgos() []Algo {
	tab := func(k int, thold, tend model.Time) core.SplitTable {
		return core.BinomialTable{Max: k}
	}
	return []Algo{{Name: "bin", Table: tab}, {Name: "opt", Ordered: true, Table: tab}}
}

func TestCompileTieBreakAndUnmeasured(t *testing.T) {
	s := testSurface(t)
	if got := s.Select(4, 1024, 0); got != 0 {
		t.Fatalf("exact tie selected %d, want lowest index 0", got)
	}
	if got := s.Select(4, 65536, 2); got != 0 {
		t.Fatalf("faulted large-message cell selected %d, want bin (0)", got)
	}
	if got := s.Select(16, 1024, 0); got != 1 {
		t.Fatalf("healthy cell selected %d, want opt (1)", got)
	}
	// Unmeasured entries are skipped; an all-unmeasured cell compiles
	// to index 0.
	u := New("u", []string{"a", "b"}, []int{4}, []int{1024, 4096}, []int{0})
	u.Set(0, 0, 0, 1, 50) // only b measured at 1024
	if err := u.Compile(); err != nil {
		t.Fatal(err)
	}
	if u.Select(4, 1024, 0) != 1 {
		t.Fatal("unmeasured entry won selection")
	}
	if u.Select(4, 4096, 0) != 0 {
		t.Fatal("all-unmeasured cell did not fall back to index 0")
	}
}

// Lookups clamp-floor each coordinate: a query between grid points
// uses the nearest point not above it, and queries below the axis
// clamp to its first point.
func TestCellIndexClampFloor(t *testing.T) {
	s := testSurface(t)
	for _, tc := range []struct {
		k, bytes, pct int
		want          int
	}{
		{4, 1024, 0, s.CellIndex(4, 1024, 0)},
		{7, 2048, 1, s.CellIndex(4, 1024, 0)},     // floors everywhere
		{2, 16, 0, s.CellIndex(4, 1024, 0)},       // below axes clamps up
		{16, 65536, 2, s.CellIndex(16, 65536, 2)}, // exact top corner
		{99, 1 << 20, 9, s.CellIndex(16, 65536, 2)},
	} {
		if got := s.CellIndex(tc.k, tc.bytes, tc.pct); got != tc.want {
			t.Fatalf("CellIndex(%d,%d,%d) = %d, want %d", tc.k, tc.bytes, tc.pct, got, tc.want)
		}
	}
}

func TestSetRoundTripAndHash(t *testing.T) {
	s := testSurface(t)
	buf, err := EncodeSet(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSet(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Hash() != s.Hash() {
		t.Fatal("round trip changed the content hash")
	}
	buf2, err := EncodeSet(back[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("re-encoding a decoded set is not byte-identical")
	}
	// A tampered latency breaks the recorded hash.
	tampered := bytes.Replace(buf, []byte("1400"), []byte("1401"), 1)
	if _, err := DecodeSet(tampered); err == nil || !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("tampered artifact decoded: %v", err)
	}
}

func TestNewPolicyValidates(t *testing.T) {
	s := testSurface(t)
	algos := testAlgos()
	if _, err := NewPolicy(s, algos[:1], PolicyConfig{}); err == nil {
		t.Fatal("accepted short algorithm binding list")
	}
	wrong := []Algo{algos[1], algos[0]}
	if _, err := NewPolicy(s, wrong, PolicyConfig{}); err == nil {
		t.Fatal("accepted out-of-order algorithm bindings")
	}
	raw := New("raw", []string{"a"}, []int{2}, []int{8}, []int{0})
	if _, err := NewPolicy(raw, []Algo{{Name: "a", Table: algos[0].Table}}, PolicyConfig{}); err == nil {
		t.Fatal("accepted uncompiled surface")
	}
}

// Seeded recalibration regression: with a fixed observation schedule,
// the drift windows move the (16, 65536, pct=0) crossover from opt to
// bin at an exact, pinned observation count, Choose records exactly
// one switch at the pinned cycle, and the whole sequence replays
// identically on a fresh policy (determinism across reruns).
func TestRecalibrationSwitchPointPinned(t *testing.T) {
	run := func() ([]Switch, []int, float64) {
		s := testSurface(t)
		p, err := NewPolicy(s, testAlgos(), PolicyConfig{Window: 4})
		if err != nil {
			t.Fatal(err)
		}
		var picks []int
		// Surface says opt=1500 vs bin=2100 at (16, 65536, 0). Feed
		// observations of opt running 1.6x its prediction (2400 cycles):
		// after enough window fill, eff(opt) = 1500*drift exceeds 2100
		// and the pick flips to bin.
		for i := 0; i < 6; i++ {
			at := int64(1000 * (i + 1))
			picks = append(picks, p.Choose(at, 16, 65536).Algo)
			p.Observe(at+500, 1, 16, 65536, 2400)
		}
		sw, dropped := p.Switches()
		if dropped != 0 {
			t.Fatalf("dropped %d switches", dropped)
		}
		return sw, picks, p.Drift(1)
	}
	sw, picks, drift := run()
	// drift(opt) = 2400/1500 = 1.6 from the very first observation, so
	// the second Choose already sees eff(opt) = 2400 > 2100 and flips.
	wantPicks := []int{1, 0, 0, 0, 0, 0}
	for i, w := range wantPicks {
		if picks[i] != w {
			t.Fatalf("pick sequence %v, want %v", picks, wantPicks)
		}
	}
	if len(sw) != 1 || sw[0] != (Switch{At: 2000, From: 1, To: 0, K: 16, Bytes: 65536}) {
		t.Fatalf("switch log %+v, want exactly one opt->bin switch at cycle 2000", sw)
	}
	if drift != 1.6 {
		t.Fatalf("drift(opt) = %g, want 1.6", drift)
	}
	// Replay determinism.
	sw2, picks2, drift2 := run()
	if len(sw2) != len(sw) || sw2[0] != sw[0] || drift2 != drift {
		t.Fatalf("rerun diverged: %+v vs %+v", sw2, sw)
	}
	for i := range picks {
		if picks[i] != picks2[i] {
			t.Fatalf("rerun pick sequence diverged at %d", i)
		}
	}
}

// The drift window slides: once the inflated observations age out,
// the crossover moves back — and the return switch is recorded too.
func TestDriftWindowSlidesBack(t *testing.T) {
	s := testSurface(t)
	p, err := NewPolicy(s, testAlgos(), PolicyConfig{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	at := int64(0)
	step := func(obs int64) int {
		at += 1000
		pick := p.Choose(at, 16, 65536).Algo
		p.Observe(at+1, 1, 16, 65536, obs)
		return pick
	}
	step(2400) // inflated: drift -> 1.6
	if pick := step(2400); pick != 0 {
		t.Fatal("inflated drift did not flip the pick")
	}
	// Four healthy observations push the inflated ones out of the
	// window; drift returns to ~1.0 and the pick flips back.
	for i := 0; i < 4; i++ {
		step(1500)
	}
	if pick := p.Choose(at+1000, 16, 65536).Algo; pick != 1 {
		t.Fatal("healthy drift did not flip the pick back to opt")
	}
	sw, _ := p.Switches()
	if len(sw) != 2 || sw[0].To != 0 || sw[1].To != 1 {
		t.Fatalf("switch log %+v, want opt->bin then bin->opt", sw)
	}
}

// Recalibrated scales a base parameter by the observation-weighted
// mean drift.
func TestRecalibrated(t *testing.T) {
	s := testSurface(t)
	p, err := NewPolicy(s, testAlgos(), PolicyConfig{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Recalibrated(640); got != 640 {
		t.Fatalf("unobserved Recalibrated(640) = %d, want unchanged", got)
	}
	p.Observe(1, 1, 16, 65536, 3000) // ratio 2.0
	if got := p.Recalibrated(640); got != 1280 {
		t.Fatalf("Recalibrated(640) = %d, want 1280 at drift 2.0", got)
	}
}

// The selection hot path must be allocation-free (//lint:hotpath):
// Choose, Observe, Select and PickFor.
func TestSelectionAllocFree(t *testing.T) {
	s := testSurface(t)
	p, err := NewPolicy(s, testAlgos(), PolicyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var sink int
	if n := testing.AllocsPerRun(100, func() {
		sink += p.Choose(5, 16, 65536).Algo
		p.Observe(6, 1, 16, 65536, 1500)
		sink += s.Select(16, 1024, 0)
		sink += p.PickFor(4, 1024)
	}); n != 0 {
		t.Fatalf("selection hot path allocates %.1f allocs/op, want 0", n)
	}
	_ = sink
}

func TestTableForAndPickFor(t *testing.T) {
	s := testSurface(t)
	p, err := NewPolicy(s, testAlgos(), PolicyConfig{FaultPct: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.PickFor(16, 65536) != 0 {
		t.Fatal("faulted operating point should pick bin")
	}
	if tab := p.TableFor(16, 65536, 128, 640); tab == nil || tab.K() < 16 {
		t.Fatal("TableFor returned unusable table")
	}
	if p.Name(0) != "bin" || p.Name(1) != "opt" {
		t.Fatal("Name mapping broken")
	}
}
