package tuner

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// benchPolicy builds a realistic-size selector: 3 algorithms over a
// 3x3x3 grid, every cell measured.
func benchPolicy(b *testing.B) *Policy {
	b.Helper()
	names := []string{"bin", "opt-tree", "opt"}
	s := New("bench 16x16 mesh", names, []int{4, 12, 32}, []int{1024, 8192, 65536}, []int{0, 2, 4})
	for c := 0; c < s.cells(); c++ {
		for ai := range names {
			s.Latency[c*len(names)+ai] = float64(1000 + 37*c + 11*ai)
		}
	}
	if err := s.Compile(); err != nil {
		b.Fatal(err)
	}
	tab := func(k int, thold, tend model.Time) core.SplitTable {
		return core.BinomialTable{Max: k}
	}
	p, err := NewPolicy(s, []Algo{
		{Name: "bin", Table: tab},
		{Name: "opt-tree", Table: tab},
		{Name: "opt", Ordered: true, Table: tab},
	}, PolicyConfig{FaultPct: 2})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkPolicyChoose is the admission-time selection hot path; the
// BENCH_tuner.json gate holds it at 0 allocs/op.
func BenchmarkPolicyChoose(b *testing.B) {
	p := benchPolicy(b)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += p.Choose(int64(i), 12, 8192).Algo
	}
	_ = sink
}

// BenchmarkPolicyObserve is the completion-time recalibration hot path.
func BenchmarkPolicyObserve(b *testing.B) {
	p := benchPolicy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(int64(i), i%3, 12, 8192, int64(1200+i%64))
	}
}

// BenchmarkSurfaceSelect is the static compiled lookup.
func BenchmarkSurfaceSelect(b *testing.B) {
	p := benchPolicy(b)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += p.s.Select(32, 65536, 4)
	}
	_ = sink
}
