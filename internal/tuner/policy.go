package tuner

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/traffic"
)

// Algo binds a surface algorithm name to its executable form: the
// chain-order flag and split-table builder the traffic and recovery
// engines need — the same (Ordered, Table) pair as exp.Algorithm.
type Algo struct {
	Name    string
	Ordered bool
	Table   func(k int, thold, tend model.Time) core.SplitTable
}

// Switch records one live algorithm change: at event-clock cycle At,
// the policy's pick for workload point (K, Bytes) moved From → To
// (surface algorithm indices) because observed-latency drift crossed a
// surface boundary.
type Switch struct {
	At       int64
	From, To int
	K, Bytes int
}

// PolicyConfig shapes a Policy.
type PolicyConfig struct {
	// Window is the sliding window length: how many of each algorithm's
	// most recent completion observations feed its drift estimate.
	// 0 defaults to 8.
	Window int
	// FaultPct is the fault-axis coordinate of the operating point (the
	// injected dead-link percentage the fabric is running under).
	FaultPct int
	// MaxSwitches caps the recorded switch log (further switches still
	// happen, they are only counted). 0 defaults to 64.
	MaxSwitches int
}

// Policy is the runtime selector: Choose answers admission-time
// algorithm queries by argmin over the surface's measured latencies,
// each scaled by that algorithm's current drift estimate; Observe
// feeds completed-request latencies back into the drift windows. Both
// are driven purely by the sim event clock, so a policy's entire
// decision sequence is a deterministic replay of its input sequence.
//
// Drift is the online t_hold/t_end recalibration in ratio form: an
// algorithm's predicted latency scales essentially linearly in the
// (t_hold, t_end) pair it was planned under, so the windowed mean of
// observed/predicted latency is exactly the factor by which the
// effective parameters have moved for that algorithm's tree shape —
// faults inflate deep chains (retransmission serialization) ahead of
// wide ones, which is what moves crossovers at runtime.
//
// Policy implements traffic.Selector and composes with the recovery
// ladder via TableFor on recover.Config.Select.
type Policy struct {
	s       *Surface
	algos   []Algo
	choices []traffic.Choice
	pct     int
	window  int

	// Per-algorithm drift windows: ring buffers of observed/predicted
	// ratios, flattened at algo*window, plus fill counts, ring heads and
	// the cached windowed means.
	obs   []float64
	n     []int
	head  []int
	drift []float64

	last     []int8 // per-cell previous pick; -1 until first Choose
	switches []Switch
	nswitch  int
	dropped  int
	observed int
}

// NewPolicy builds the selector for a compiled surface. algos must
// match the surface's algorithm list name for name, in order — the
// surface defines the index vocabulary, the Algo list how to run each
// index.
func NewPolicy(s *Surface, algos []Algo, cfg PolicyConfig) (*Policy, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if s.Best == nil {
		return nil, fmt.Errorf("tuner: surface %q is not compiled", s.Platform)
	}
	if len(algos) != len(s.Algorithms) {
		return nil, fmt.Errorf("tuner: %d algorithm bindings for surface %q with %d algorithms", len(algos), s.Platform, len(s.Algorithms))
	}
	for i, a := range algos {
		if a.Name != s.Algorithms[i] {
			return nil, fmt.Errorf("tuner: algorithm binding %d is %q, surface %q expects %q", i, a.Name, s.Platform, s.Algorithms[i])
		}
		if a.Table == nil {
			return nil, fmt.Errorf("tuner: algorithm %q has no split-table builder", a.Name)
		}
	}
	if cfg.Window == 0 {
		cfg.Window = 8
	}
	if cfg.Window < 1 {
		return nil, fmt.Errorf("tuner: drift window %d must be >= 1", cfg.Window)
	}
	if cfg.MaxSwitches == 0 {
		cfg.MaxSwitches = 64
	}
	if cfg.FaultPct < 0 {
		return nil, fmt.Errorf("tuner: negative fault coordinate %d", cfg.FaultPct)
	}
	na := len(algos)
	p := &Policy{
		s:        s,
		algos:    append([]Algo(nil), algos...),
		choices:  make([]traffic.Choice, na),
		pct:      cfg.FaultPct,
		window:   cfg.Window,
		obs:      make([]float64, na*cfg.Window),
		n:        make([]int, na),
		head:     make([]int, na),
		drift:    make([]float64, na),
		last:     make([]int8, s.cells()),
		switches: make([]Switch, cfg.MaxSwitches),
	}
	for i, a := range algos {
		p.choices[i] = traffic.Choice{Algo: i, Ordered: a.Ordered, Plan: a.Table}
		p.drift[i] = 1
	}
	for i := range p.last {
		p.last[i] = -1
	}
	return p, nil
}

// Choose picks the algorithm for a request entering service at
// event-clock cycle at: the drift-scaled argmin over the surface cell
// of the current operating point. A pick that differs from the
// previous pick for the same cell is a live switch and is recorded.
//
// Choose runs per admitted request inside the traffic engine's event
// loop; selection must be allocation-free.
//
//lint:hotpath
func (p *Policy) Choose(at int64, k, bytes int) traffic.Choice {
	cell := p.s.CellIndex(k, bytes, p.pct)
	na := len(p.algos)
	best := argmin(p.s.Latency[cell*na:(cell+1)*na], p.drift)
	if prev := p.last[cell]; prev >= 0 && int(prev) != best {
		if p.nswitch < len(p.switches) {
			p.switches[p.nswitch] = Switch{At: at, From: int(prev), To: best, K: k, Bytes: bytes}
			p.nswitch++
		} else {
			p.dropped++
		}
	}
	p.last[cell] = int8(best)
	return p.choices[best]
}

// Observe feeds one completed request's measured service latency into
// algo's drift window. Observations against unmeasured surface cells
// are dropped: with no prediction there is no ratio.
//
// Observe runs per completed request inside the traffic engine's
// event loop; it must not allocate.
//
//lint:hotpath
func (p *Policy) Observe(at int64, algo, k, bytes int, latency int64) {
	if algo < 0 || algo >= len(p.algos) || latency <= 0 {
		return
	}
	pred := p.s.Latency[p.s.CellIndex(k, bytes, p.pct)*len(p.algos)+algo]
	if pred <= 0 {
		return
	}
	base := algo * p.window
	p.obs[base+p.head[algo]] = float64(latency) / pred
	p.head[algo]++
	if p.head[algo] == p.window {
		p.head[algo] = 0
	}
	if p.n[algo] < p.window {
		p.n[algo]++
	}
	sum := 0.0
	for j := 0; j < p.n[algo]; j++ {
		sum += p.obs[base+j]
	}
	p.drift[algo] = sum / float64(p.n[algo])
	p.observed++
}

// TableFor is the recovery-layer form of the selector: the split table
// of the current pick for a k-member group of the given message size,
// built under (thold, tend). It fits recover.Config.Select via a
// closure that pins bytes/thold/tend.
func (p *Policy) TableFor(k, bytes int, thold, tend model.Time) core.SplitTable {
	return p.algos[p.PickFor(k, bytes)].Table(k, thold, tend)
}

// PickFor returns the current (drift-aware) algorithm index for a
// workload point without recording switch state — a read-only probe.
func (p *Policy) PickFor(k, bytes int) int {
	cell := p.s.CellIndex(k, bytes, p.pct)
	na := len(p.algos)
	return argmin(p.s.Latency[cell*na:(cell+1)*na], p.drift)
}

// Name returns the surface name of an algorithm index.
func (p *Policy) Name(i int) string { return p.s.Algorithms[i] }

// SurfaceHash returns the content hash of the policy's surface, for
// cache keys that must distinguish runs by what the selector knew.
func (p *Policy) SurfaceHash() string { return p.s.Hash() }

// Drift returns algorithm i's current windowed observed/predicted
// ratio (1 until observed).
func (p *Policy) Drift(i int) float64 { return p.drift[i] }

// Observations returns how many completion latencies fed the windows.
func (p *Policy) Observations() int { return p.observed }

// Switches returns the recorded live switches in event-clock order,
// plus how many further switches overflowed the log.
func (p *Policy) Switches() ([]Switch, int) { return p.switches[:p.nswitch], p.dropped }

// Recalibrated scales a base model parameter (t_end or t_hold) by the
// observation-weighted mean drift across all algorithms — the policy's
// current best estimate of how far the effective software parameters
// have moved from their calibrated values. With no observations it
// returns base unchanged.
func (p *Policy) Recalibrated(base model.Time) model.Time {
	var sum float64
	var n int
	for i := range p.algos {
		sum += p.drift[i] * float64(p.n[i])
		n += p.n[i]
	}
	if n == 0 {
		return base
	}
	return model.Time(float64(base)*sum/float64(n) + 0.5)
}
