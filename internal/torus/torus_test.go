package torus_test

import (
	"testing"
	"testing/quick"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/mcastsim"
	"repro/internal/model"
	"repro/internal/sim"
	. "repro/internal/torus"
	"repro/internal/wormhole"
)

var soft = model.Software{
	Send: model.Linear{Fixed: 200, PerByte: 0.15},
	Recv: model.Linear{Fixed: 200, PerByte: 0.15},
	Hold: model.Linear{Fixed: 200, PerByte: 0.15},
}

func TestNewValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New() },
		func() { New(2) },
		func() { New(8, 2) },
		func() { New(8, 8).Addr(8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCoordsAddrRoundTrip(t *testing.T) {
	tr := New(5, 4, 3)
	for u := 0; u < tr.NumNodes(); u++ {
		if got := tr.Addr(tr.Coords(u)...); got != u {
			t.Fatalf("Addr(Coords(%d)) = %d", u, got)
		}
	}
}

// TestDistanceWrap: the torus takes the short way around.
func TestDistanceWrap(t *testing.T) {
	tr := New2D(8, 8)
	if d := tr.Distance(tr.Addr(0, 0), tr.Addr(7, 7)); d != 2 {
		t.Fatalf("corner distance = %d, want 2 (wrap both dims)", d)
	}
	if d := tr.Distance(tr.Addr(0, 0), tr.Addr(4, 4)); d != 8 {
		t.Fatalf("antipode distance = %d, want 8", d)
	}
	if d := tr.Distance(tr.Addr(1, 1), tr.Addr(1, 1)); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
}

// TestDistanceSymmetric property.
func TestDistanceSymmetric(t *testing.T) {
	tr := New2D(7, 5)
	f := func(ar, br uint8) bool {
		a, b := int(ar)%35, int(br)%35
		return tr.Distance(a, b) == tr.Distance(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPathLengthIsDistance: routes are minimal.
func TestPathLengthIsDistance(t *testing.T) {
	tr := New2D(8, 8)
	for a := 0; a < 64; a += 3 {
		for b := 0; b < 64; b += 5 {
			p := wormhole.PathChannels(tr, wormhole.NodeID(a), wormhole.NodeID(b))
			if got, want := len(p)-2, tr.Distance(a, b); got != want {
				t.Fatalf("%d->%d: %d hops, want %d", a, b, got, want)
			}
		}
	}
}

// TestDatelineVCAssignment: wrap-crossing paths switch to VC1 exactly at
// the wrap transition and stay there.
func TestDatelineVCAssignment(t *testing.T) {
	tr := New2D(8, 8)
	// (6,0) -> (1,0): +x direction with wrap at 7->0.
	p := wormhole.PathChannels(tr, wormhole.NodeID(tr.Addr(6, 0)), wormhole.NodeID(tr.Addr(1, 0)))
	links := p[1 : len(p)-1]
	// Hops: 6->7 (vc0), 7->0 (vc1, the wrap), 0->1 (vc1).
	wantVC := []int{0, 1, 1}
	if len(links) != len(wantVC) {
		t.Fatalf("path has %d hops, want %d", len(links), len(wantVC))
	}
	for i, c := range links {
		vc := int(c) % 2 // layout: vc is the lowest bit of VC channels
		if vc != wantVC[i] {
			t.Fatalf("hop %d (%s): vc=%d, want %d", i, tr.DescribeChannel(c), vc, wantVC[i])
		}
	}
	// A non-wrapping path stays on VC0.
	p = wormhole.PathChannels(tr, wormhole.NodeID(tr.Addr(1, 0)), wormhole.NodeID(tr.Addr(3, 0)))
	for _, c := range p[1 : len(p)-1] {
		if int(c)%2 != 0 {
			t.Fatalf("non-wrapping hop on VC1: %s", tr.DescribeChannel(c))
		}
	}
}

// TestLinkGrouping: the two VCs of a (node, dim, dir) share one physical
// link; inject/eject channels do not.
func TestLinkGrouping(t *testing.T) {
	tr := New2D(8, 8)
	c0 := tr.VCChannel(5, 0, 1, 0)
	c1 := tr.VCChannel(5, 0, 1, 1)
	if tr.LinkOf(c0) != tr.LinkOf(c1) {
		t.Fatal("VC pair on different links")
	}
	if tr.LinkOf(tr.VCChannel(5, 0, 0, 0)) == tr.LinkOf(c0) {
		t.Fatal("opposite directions share a link")
	}
	if tr.LinkOf(tr.InjectChannel(3)) != -1 || tr.LinkOf(tr.EjectChannel(3)) != -1 {
		t.Fatal("inject/eject should have dedicated links")
	}
	if tr.NumLinks() != 64*2*2 {
		t.Fatalf("NumLinks = %d", tr.NumLinks())
	}
}

// TestVCBandwidthShared: two worms on the two VCs of one ring segment
// each get half the physical bandwidth — together they take about twice
// as long as one alone (plus pipeline constants), and neither starves.
func TestVCBandwidthShared(t *testing.T) {
	tr := New(8)
	cfg := wormhole.DefaultConfig()
	// Alone: 6 -> 2 wrapping (VC1 after wrap).
	n1 := wormhole.New(tr, cfg)
	alone := n1.Send(wormhole.NodeID(6), wormhole.NodeID(2), 4000, nil, nil)
	if _, err := n1.RunUntilIdle(1 << 22); err != nil {
		t.Fatal(err)
	}
	// Together: a wrapping worm (VC1 on physical link 0->1) and a
	// non-wrapping worm to a different node (VC0 on the same link).
	n2 := wormhole.New(tr, cfg)
	w1 := n2.Send(wormhole.NodeID(6), wormhole.NodeID(2), 4000, nil, nil)
	w2 := n2.Send(wormhole.NodeID(0), wormhole.NodeID(1), 4000, nil, nil)
	if _, err := n2.RunUntilIdle(1 << 22); err != nil {
		t.Fatal(err)
	}
	if w1.BlockedCycles != 0 || w2.BlockedCycles != 0 {
		t.Fatalf("VC worms blocked (%d, %d) — VCs should bypass ownership blocking", w1.BlockedCycles, w2.BlockedCycles)
	}
	// w1 loses roughly half its bandwidth while w2's 501 flits share the
	// physical link 0->1.
	if w1.ArrivedAt < alone.ArrivedAt+int64(cfg.Flits(4000))/4 {
		t.Fatalf("no bandwidth sharing visible: alone=%d together=%d", alone.ArrivedAt, w1.ArrivedAt)
	}
	if w1.ArrivedAt > 2*alone.ArrivedAt+100 {
		t.Fatalf("sharing worse than half bandwidth: alone=%d together=%d", alone.ArrivedAt, w1.ArrivedAt)
	}
}

// TestTorusDeadlockFreedom: a storm of wrap-heavy traffic (every node
// sends to its ring antipode, all rings saturated) completes. Without
// dateline VCs this pattern deadlocks wormhole rings.
func TestTorusDeadlockFreedom(t *testing.T) {
	tr := New2D(6, 6)
	n := wormhole.New(tr, wormhole.DefaultConfig())
	for u := 0; u < 36; u++ {
		cs := tr.Coords(u)
		dst := tr.Addr((cs[0]+3)%6, (cs[1]+3)%6)
		n.Send(wormhole.NodeID(u), wormhole.NodeID(dst), 800, nil, nil)
	}
	if _, err := n.RunUntilIdle(1 << 22); err != nil {
		t.Fatalf("torus storm did not drain: %v", err)
	}
	if err := n.Quiesced(); err != nil {
		t.Fatal(err)
	}
}

// TestRandomStormsDrain: heavier randomized traffic also drains, for
// several seeds — the practical deadlock-freedom check.
func TestRandomStormsDrain(t *testing.T) {
	tr := New2D(8, 8)
	for seed := uint64(0); seed < 5; seed++ {
		r := sim.NewRNG(seed)
		n := wormhole.New(tr, wormhole.DefaultConfig())
		for i := 0; i < 100; i++ {
			a := r.Intn(64)
			b := r.Intn(64)
			if a == b {
				continue
			}
			n.Send(wormhole.NodeID(a), wormhole.NodeID(b), 400+r.Intn(2000), nil, nil)
		}
		if _, err := n.RunUntilIdle(1 << 23); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestMulticastOnTorus: the full runtime works on the torus; the
// dimension-ordered chain reduces contention versus random order but —
// unlike on the mesh — does not always eliminate it (wrap links break
// the direction lemma). This is the premise of experiment T1.
func TestMulticastOnTorus(t *testing.T) {
	tr := New2D(16, 16)
	cfg := mcastsim.Config{Software: soft}
	const bytes = 4096
	tab := core.NewOptTable(32, soft.Hold.At(bytes), 2300)

	var ordered, random int64
	for seed := uint64(0); seed < 8; seed++ {
		addrs := sim.NewRNG(seed).Sample(256, 32)
		chO := chain.New(addrs, tr.DimOrderLess)
		root, _ := chO.Index(addrs[0])
		r1, err := mcastsim.Run(wormhole.New(tr, wormhole.DefaultConfig()), tab, chO, root, bytes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ordered += r1.BlockedCycles

		r2, err := mcastsim.Run(wormhole.New(tr, wormhole.DefaultConfig()), tab, chain.Unordered(addrs), 0, bytes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		random += r2.BlockedCycles
	}
	if random == 0 {
		t.Fatal("random order never contended on the torus")
	}
	if ordered >= random {
		t.Fatalf("dimension order did not reduce torus contention: %d vs %d", ordered, random)
	}
}

func TestDescribeChannel(t *testing.T) {
	tr := New2D(4, 4)
	if s := tr.DescribeChannel(tr.InjectChannel(0)); s == "" || s == "none" {
		t.Errorf("inject: %q", s)
	}
	if s := tr.DescribeChannel(tr.VCChannel(0, 0, 1, 1)); s == "" || s == "none" {
		t.Errorf("vc: %q", s)
	}
	if s := tr.DescribeChannel(wormhole.ChannelID(-1)); s != "none" {
		t.Errorf("invalid: %q", s)
	}
}

// TestDimOrderTotal property.
func TestDimOrderTotal(t *testing.T) {
	tr := New2D(8, 8)
	f := func(ar, br uint8) bool {
		a, b := int(ar)%64, int(br)%64
		la, lb := tr.DimOrderLess(a, b), tr.DimOrderLess(b, a)
		if a == b {
			return !la && !lb
		}
		return la != lb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
