package torus_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/torus"
	"repro/internal/wormhole"
)

func noDead(wormhole.ChannelID) bool { return false }

func deadSet(chans ...wormhole.ChannelID) func(wormhole.ChannelID) bool {
	m := map[wormhole.ChannelID]bool{}
	for _, c := range chans {
		m[c] = true
	}
	return func(c wormhole.ChannelID) bool { return m[c] }
}

// TestRouteDegradedHealthyEqualsRoute: with no dead channels the
// fault-aware router must reproduce the dimension-ordered dateline route
// exactly, at every hop of every pair — the healthy-path invariant that
// keeps golden tables byte-identical when a fault model is merely
// installed.
func TestRouteDegradedHealthyEqualsRoute(t *testing.T) {
	tr := torus.New2D(5, 4)
	for s := 0; s < tr.NumNodes(); s++ {
		for d := 0; d < tr.NumNodes(); d++ {
			if s == d {
				continue
			}
			src, dst := wormhole.NodeID(s), wormhole.NodeID(d)
			cur := tr.InjectChannel(src)
			for hops := 0; ; hops++ {
				if hops > 2*tr.NumNodes() {
					t.Fatalf("%d->%d: walk did not terminate", s, d)
				}
				want := tr.Route(cur, src, dst, nil)
				got := tr.RouteDegraded(cur, src, dst, noDead, nil)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%d->%d at %s: RouteDegraded %v != Route %v",
						s, d, tr.DescribeChannel(cur), got, want)
				}
				if want[0] == tr.EjectChannel(dst) {
					break
				}
				cur = want[0]
			}
		}
	}
}

// physicalHop strips the virtual-channel suffix from a link description
// ("link((0 0)->(1 0),vc1)" -> "link((0 0)->(1 0)"), identifying the
// physical link a VC belongs to.
func physicalHop(t *testing.T, tr *torus.Torus, c wormhole.ChannelID) string {
	t.Helper()
	desc := tr.DescribeChannel(c)
	i := strings.LastIndex(desc, ",vc")
	if i < 0 {
		t.Fatalf("%s is not a link channel", desc)
	}
	return desc[:i]
}

// TestRouteDegradedOtherVCFallback: when the dateline-correct virtual
// channel dies, the first fallback must be the other VC of the same
// physical hop — same neighbour, still minimal — ahead of any detour
// into other dimensions.
func TestRouteDegradedOtherVCFallback(t *testing.T) {
	tr := torus.New2D(8, 8)
	src, dst := wormhole.NodeID(0), wormhole.NodeID(8*3+3)
	pref := tr.Route(tr.InjectChannel(src), src, dst, nil)
	if len(pref) != 1 {
		t.Fatalf("dateline routing returned %d candidates", len(pref))
	}
	cands := tr.RouteDegraded(tr.InjectChannel(src), src, dst, deadSet(pref[0]), nil)
	if len(cands) == 0 {
		t.Fatal("no fallback for a single dead VC")
	}
	if cands[0] == pref[0] {
		t.Fatal("dead preferred VC still offered")
	}
	if got, want := physicalHop(t, tr, cands[0]), physicalHop(t, tr, pref[0]); got != want {
		t.Fatalf("first fallback is %s, want the other VC of %s", got, want)
	}
}

// TestRouteDegradedNoWrongWay: on a pair differing in exactly one
// dimension, killing both VCs of the minimal hop leaves nothing — the
// router must refuse the non-minimal wrong-way hop (which could ping-pong
// forever) and report unreachable instead.
func TestRouteDegradedNoWrongWay(t *testing.T) {
	tr := torus.New2D(8, 8)
	src, dst := wormhole.NodeID(0), wormhole.NodeID(3) // same row
	cur := tr.InjectChannel(src)
	pref := tr.Route(cur, src, dst, nil)
	other := tr.RouteDegraded(cur, src, dst, deadSet(pref[0]), nil)
	if len(other) == 0 {
		t.Fatal("other VC not offered")
	}
	got := tr.RouteDegraded(cur, src, dst, deadSet(pref[0], other[0]), nil)
	if len(got) != 0 {
		t.Fatalf("both VCs dead but still routed: %v (wrong-way detour?)", got)
	}
}

// TestRouteDegradedDetourDelivers kills the preferred first hop of a
// two-dimension pair and walks the fallback route to delivery, checking
// every offered candidate is live and the walk stays minimal.
func TestRouteDegradedDetourDelivers(t *testing.T) {
	tr := torus.New2D(8, 8)
	src, dst := wormhole.NodeID(0), wormhole.NodeID(8*2+3) // (0,0)->(3,2), wrap-free
	prefVC := tr.Route(tr.InjectChannel(src), src, dst, nil)[0]
	otherVC := tr.RouteDegraded(tr.InjectChannel(src), src, dst, deadSet(prefVC), nil)[0]
	dead := deadSet(prefVC, otherVC) // whole physical hop dead: force a dimension detour

	cur := tr.InjectChannel(src)
	minimal := 3 + 2
	for hop := 0; ; hop++ {
		if hop > minimal {
			t.Fatalf("detoured walk exceeded the minimal %d hops", minimal)
		}
		cands := tr.RouteDegraded(cur, src, dst, dead, nil)
		if len(cands) == 0 {
			t.Fatalf("unreachable at %s with a live detour dimension", tr.DescribeChannel(cur))
		}
		for _, c := range cands {
			if dead(c) {
				t.Fatalf("RouteDegraded offered dead channel %s", tr.DescribeChannel(c))
			}
		}
		if cands[0] == tr.EjectChannel(dst) {
			if hop != minimal {
				t.Fatalf("delivered in %d hops, want minimal %d", hop, minimal)
			}
			break
		}
		cur = cands[0]
	}
}
