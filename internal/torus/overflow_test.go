package torus

import (
	"strings"
	"testing"
)

// TestTryNewOverflow pins the int32 address-space guards: a torus has
// 2N + 4·N·D channels, so the ChannelID space can overflow while the
// node count is still representable; both counts are validated in int64
// before construction.
func TestTryNewOverflow(t *testing.T) {
	// 2^32 nodes: overflows the NodeID space outright.
	if _, err := TryNew(1<<16, 1<<16); err == nil || !strings.Contains(err.Error(), "NodeID") {
		t.Fatalf("TryNew(65536, 65536) = %v, want NodeID overflow error", err)
	}
	// 1.6e9 nodes fit an int32; the 16e9 channels (2N + 8N) do not.
	if _, err := TryNew(40000, 40000); err == nil || !strings.Contains(err.Error(), "ChannelID") {
		t.Fatalf("TryNew(40000, 40000) = %v, want ChannelID overflow error", err)
	}
	// Absurd single dimension: must not wrap int64 either.
	if _, err := TryNew(1<<40, 1<<40); err == nil {
		t.Fatal("TryNew(2^40, 2^40) accepted")
	}
	if _, err := TryNew(); err == nil {
		t.Fatal("TryNew() accepted")
	}
	if _, err := TryNew(8, 2); err == nil {
		t.Fatal("TryNew(8, 2) accepted, want side >= 3 error")
	}
	tor, err := TryNew(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tor.NumNodes() != 256 {
		t.Fatalf("NumNodes() = %d, want 256", tor.NumNodes())
	}
}
