// Package torus implements n-dimensional torus (wrap-around mesh)
// topologies with dimension-ordered routing and Dally-style dateline
// virtual channels.
//
// Wormhole routing on a torus deadlocks without virtual channels: the
// wrap link closes each ring into a cyclic channel dependency. The
// standard fix (Dally & Seitz) splits every unidirectional ring into two
// virtual channels: a worm travels on VC0 until it crosses the ring's
// dateline (the wrap from the highest coordinate back to 0, or the
// reverse), and on VC1 afterwards, which breaks the cycle. The simulator
// core (package wormhole) multiplexes the two VCs onto one physical link
// at one flit per cycle via the LinkGrouper interface.
//
// The torus is an *extension* fabric: the paper evaluates meshes and
// BMINs only. The experiments use it to ask whether the OPT-mesh
// ordering discipline survives wrap-around links — it does not fully
// (wrap paths break the direction lemma), which makes the torus a
// natural subject for the §6 temporal tuner.
package torus

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/wormhole"
)

// Torus is an n-dimensional wrap-around mesh fabric.
//
// Channel layout: [0, N) injection, [N, 2N) ejection, then for node u,
// dimension d, direction s (0 = decreasing coordinate, 1 = increasing),
// virtual channel v: 2N + ((u*D+d)*2+s)*2 + v. The physical link for a
// VC pair is ((u*D+d)*2+s).
type Torus struct {
	dims   []int
	n      int
	stride []int
}

// New constructs a torus with the given side lengths (each at least 3 so
// the two directions use distinct links; use package mesh for smaller
// rings, where a torus degenerates). It panics on invalid dimensions or
// int32 NodeID/ChannelID overflow; TryNew returns the error instead.
func New(dims ...int) *Torus {
	t, err := TryNew(dims...)
	if err != nil {
		panic(err)
	}
	return t
}

// TryNew is New returning an error instead of panicking. Node and
// channel counts are computed in int64 and validated against
// math.MaxInt32 before any channel ID can silently wrap: a torus has
// 2N + 4·N·D channels (inject, eject, and two virtual channels per node
// per dimension per direction).
func TryNew(dims ...int) (*Torus, error) {
	if len(dims) == 0 {
		return nil, errors.New("torus: need at least one dimension")
	}
	n64 := int64(1)
	stride := make([]int, len(dims))
	for d, s := range dims {
		if s < 3 {
			return nil, fmt.Errorf("torus: dimension %d has side %d < 3", d, s)
		}
		stride[d] = int(n64)
		if int64(s) > math.MaxInt32 || n64 > math.MaxInt32/int64(s) {
			return nil, fmt.Errorf("torus: dimensions %v give more than %d nodes, overflowing the int32 NodeID space", dims, math.MaxInt32)
		}
		n64 *= int64(s)
	}
	chans64 := 2*n64 + 4*n64*int64(len(dims))
	if chans64 > math.MaxInt32 {
		return nil, fmt.Errorf("torus: dimensions %v give %d channels, overflowing the int32 ChannelID space (max %d)", dims, chans64, math.MaxInt32)
	}
	return &Torus{dims: append([]int(nil), dims...), n: int(n64), stride: stride}, nil
}

// New2D is shorthand for New(w, h).
func New2D(w, h int) *Torus { return New(w, h) }

// Dims returns the side lengths.
func (t *Torus) Dims() []int { return append([]int(nil), t.dims...) }

func (t *Torus) coord(u, d int) int { return (u / t.stride[d]) % t.dims[d] }

// Coords returns all coordinates of a node address.
func (t *Torus) Coords(u int) []int {
	cs := make([]int, len(t.dims))
	for d := range t.dims {
		cs[d] = t.coord(u, d)
	}
	return cs
}

// Addr returns the address of the node at the given coordinates.
func (t *Torus) Addr(coords ...int) int {
	if len(coords) != len(t.dims) {
		panic(fmt.Sprintf("torus: Addr got %d coordinates for %d dimensions", len(coords), len(t.dims)))
	}
	a := 0
	for d, c := range coords {
		if c < 0 || c >= t.dims[d] {
			panic(fmt.Sprintf("torus: coordinate %d out of range in dimension %d", c, d))
		}
		a += c * t.stride[d]
	}
	return a
}

// Distance returns the minimal wrap-aware hop count between two nodes.
func (t *Torus) Distance(a, b int) int {
	total := 0
	for d := range t.dims {
		m := t.dims[d]
		fwd := ((t.coord(b, d)-t.coord(a, d))%m + m) % m
		if bwd := m - fwd; bwd < fwd {
			fwd = bwd
		}
		total += fwd
	}
	return total
}

// DimOrderLess is the dimension order (first-routed dimension most
// significant), identical to the mesh's.
func (t *Torus) DimOrderLess(a, b int) bool {
	for d := 0; d < len(t.dims); d++ {
		ca, cb := t.coord(a, d), t.coord(b, d)
		if ca != cb {
			return ca < cb
		}
	}
	return false
}

// direction returns the routing direction (1 = increasing) and hop count
// for dimension d from coordinate cu to cv; ties go to the increasing
// direction, deterministically.
func (t *Torus) direction(d, cu, cv int) (s, hops int) {
	m := t.dims[d]
	fwd := ((cv-cu)%m + m) % m
	bwd := m - fwd
	if fwd <= bwd {
		return 1, fwd
	}
	return 0, bwd
}

const vcs = 2

// NumNodes implements wormhole.Topology.
func (t *Torus) NumNodes() int { return t.n }

// NumChannels implements wormhole.Topology.
func (t *Torus) NumChannels() int { return 2*t.n + t.n*len(t.dims)*2*vcs }

// NumLinks implements wormhole.LinkGrouper.
func (t *Torus) NumLinks() int { return t.n * len(t.dims) * 2 }

// LinkOf implements wormhole.LinkGrouper.
func (t *Torus) LinkOf(c wormhole.ChannelID) int {
	ci := int(c) - 2*t.n
	if ci < 0 {
		return -1 // injection/ejection channels have dedicated links
	}
	return ci / vcs
}

// InjectChannel implements wormhole.Topology.
func (t *Torus) InjectChannel(u wormhole.NodeID) wormhole.ChannelID {
	return wormhole.ChannelID(u)
}

// EjectChannel implements wormhole.Topology.
func (t *Torus) EjectChannel(u wormhole.NodeID) wormhole.ChannelID {
	return wormhole.ChannelID(int(u) + t.n)
}

// VCChannel returns the channel of (node, dim, direction, vc).
func (t *Torus) VCChannel(u, d, s, vc int) wormhole.ChannelID {
	return wormhole.ChannelID(2*t.n + ((u*len(t.dims)+d)*2+s)*vcs + vc)
}

// decode returns (u, d, s, vc) for a VC channel.
func (t *Torus) decode(c wormhole.ChannelID) (u, d, s, vc int) {
	ci := int(c) - 2*t.n
	vc = ci % vcs
	ci /= vcs
	s = ci % 2
	ci /= 2
	d = ci % len(t.dims)
	u = ci / len(t.dims)
	return u, d, s, vc
}

// neighbor returns the ring neighbour of u in dimension d, direction s.
func (t *Torus) neighbor(u, d, s int) int {
	m := t.dims[d]
	c := t.coord(u, d)
	var nc int
	if s == 1 {
		nc = (c + 1) % m
	} else {
		nc = (c - 1 + m) % m
	}
	return u + (nc-c)*t.stride[d]
}

// routerAt returns the router at the downstream end of channel c.
func (t *Torus) routerAt(c wormhole.ChannelID) wormhole.NodeID {
	ci := int(c)
	switch {
	case ci < t.n:
		return wormhole.NodeID(ci) // injection: at the node's own router
	case ci < 2*t.n:
		panic("torus: routing from an ejection channel")
	default:
		u, d, s, _ := t.decode(c)
		return wormhole.NodeID(t.neighbor(u, d, s))
	}
}

// Route implements dimension-ordered torus routing with dateline VCs:
// correct the lowest differing dimension, taking the shorter way around
// its ring; use VC0 until the ring's dateline (the 'wrap' transition) is
// crossed, VC1 after.
func (t *Torus) Route(cur wormhole.ChannelID, src, dst wormhole.NodeID, buf []wormhole.ChannelID) []wormhole.ChannelID {
	here := t.routerAt(cur)
	if here == dst {
		return append(buf, t.EjectChannel(dst))
	}
	u, v := int(here), int(dst)
	for d := 0; d < len(t.dims); d++ {
		cu, cv := t.coord(u, d), t.coord(v, d)
		if cu == cv {
			continue
		}
		// Direction is decided once per dimension from the coordinate at
		// dimension entry, which — by dimension-ordered routing — is the
		// source's coordinate in d. Recomputing it from the current
		// position could flip direction mid-ring on even-length ties.
		entry := t.coord(int(src), d)
		s, vc := t.hopVC(u, d, entry, cv)
		return append(buf, t.VCChannel(u, d, s, vc))
	}
	panic("torus: unreachable — here != dst but all coordinates equal")
}

// hopVC returns the direction and dateline-correct virtual channel for
// correcting dimension d from router u toward dst coordinate cv, where
// entry is the source's coordinate in d (see Route for why direction is
// decided from the entry coordinate).
func (t *Torus) hopVC(u, d, entry, cv int) (s, vc int) {
	s, _ = t.direction(d, entry, cv)
	// Dateline: moving up, the wrap is the (m-1)->0 transition, so the
	// worm has crossed iff its current ring coordinate fell below the
	// entry coordinate; moving down, symmetric. A full wrap (next ==
	// entry) cannot occur: rides are shorter than m.
	nc := t.coord(t.neighbor(u, d, s), d)
	var crossed bool
	if s == 1 {
		crossed = nc < entry
	} else {
		crossed = nc > entry
	}
	if crossed {
		vc = 1
	}
	return s, vc
}

// degradedHop appends the live virtual channels for correcting dimension
// d from router u toward dst coordinate cv: the dateline-correct VC
// first, then — only as a fault fallback — the other VC of the same
// physical hop. Both reach the same neighbour, so either keeps the route
// minimal; taking the off-dateline VC forfeits the Dally deadlock-freedom
// argument, which on a degraded fabric is the run watchdog's problem, not
// a reason to declare the destination unreachable.
func (t *Torus) degradedHop(u, d, entry, cv int, dead func(wormhole.ChannelID) bool, buf []wormhole.ChannelID) []wormhole.ChannelID {
	s, vc := t.hopVC(u, d, entry, cv)
	if c := t.VCChannel(u, d, s, vc); !dead(c) {
		return append(buf, c)
	}
	if c := t.VCChannel(u, d, s, vc^1); !dead(c) {
		return append(buf, c)
	}
	return buf
}

// RouteDegraded implements wormhole.FaultRouter. The dimension-ordered
// candidate keeps absolute preference — while its VC is live it is
// returned alone, so Route and RouteDegraded agree whenever the fault set
// misses the path. When it is dead the fallbacks are, in order: the other
// virtual channel of the same physical hop, then the remaining differing
// dimensions (each with its dateline VC first). Every fallback is a
// minimal hop, so detoured worms cannot livelock; see degradedHop for the
// deadlock caveat. An empty result means dst is unreachable.
func (t *Torus) RouteDegraded(cur wormhole.ChannelID, src, dst wormhole.NodeID, dead func(wormhole.ChannelID) bool, buf []wormhole.ChannelID) []wormhole.ChannelID {
	here := t.routerAt(cur)
	if here == dst {
		if e := t.EjectChannel(dst); !dead(e) {
			return append(buf, e)
		}
		return buf
	}
	u, v := int(here), int(dst)
	for d := 0; d < len(t.dims); d++ {
		cu, cv := t.coord(u, d), t.coord(v, d)
		if cu == cv {
			continue
		}
		entry := t.coord(int(src), d)
		s, vc := t.hopVC(u, d, entry, cv)
		if c := t.VCChannel(u, d, s, vc); !dead(c) {
			return append(buf, c) // oblivious candidate live: identical to Route
		}
		if c := t.VCChannel(u, d, s, vc^1); !dead(c) {
			buf = append(buf, c)
		}
		for d2 := d + 1; d2 < len(t.dims); d2++ {
			cu2, cv2 := t.coord(u, d2), t.coord(v, d2)
			if cu2 == cv2 {
				continue
			}
			buf = t.degradedHop(u, d2, t.coord(int(src), d2), cv2, dead, buf)
		}
		return buf
	}
	panic("torus: unreachable — here != dst but all coordinates equal")
}

// DescribeChannel implements wormhole.Topology.
func (t *Torus) DescribeChannel(c wormhole.ChannelID) string {
	ci := int(c)
	switch {
	case ci < 0 || ci >= t.NumChannels():
		return "none"
	case ci < t.n:
		return fmt.Sprintf("inject(%v)", t.Coords(ci))
	case ci < 2*t.n:
		return fmt.Sprintf("eject(%v)", t.Coords(ci-t.n))
	default:
		u, d, s, vc := t.decode(c)
		return fmt.Sprintf("link(%v->%v,vc%d)", t.Coords(u), t.Coords(t.neighbor(u, d, s)), vc)
	}
}

var (
	_ wormhole.Topology    = (*Torus)(nil)
	_ wormhole.LinkGrouper = (*Torus)(nil)
	_ wormhole.FaultRouter = (*Torus)(nil)
)
