package recover

import (
	"repro/internal/chain"
	"repro/internal/wormhole"
)

// Routable reports whether a message from src would reach dst on an
// otherwise idle fabric under the fault model: the deterministic
// first-candidate router walk — RouteDegraded where the topology detours
// around dead channels, the dead-filtered Route otherwise — reaches dst's
// ejection channel. A nil fm means a healthy fabric. This is the
// ground-truth reachability the recovery layer's give-up decisions and
// the chaos harness's delivery oracle are both defined against: on a
// quiet fabric the simulator takes exactly this walk, so a send that
// Routable rejects can never complete no matter how often it is retried.
func Routable(topo wormhole.Topology, fm wormhole.FaultModel, src, dst wormhole.NodeID) bool {
	return HopDistance(topo, fm, src, dst) >= 0
}

// HopDistance returns the channel-hop length of the deterministic
// first-candidate router walk from src to dst under the fault model
// (the exact walk Routable takes and an uncontended worm follows), or
// -1 when the walk cannot reach dst. It is the distance metric the
// recovery layer ranks adopters and graft points by: fewer hops on the
// actual route means lower delivery latency and fewer channels exposed
// to further faults.
func HopDistance(topo wormhole.Topology, fm wormhole.FaultModel, src, dst wormhole.NodeID) int {
	dead := func(wormhole.ChannelID) bool { return false }
	if fm != nil {
		dead = fm.Dead
	}
	fr, hasFR := topo.(wormhole.FaultRouter)
	cur := topo.InjectChannel(src)
	eject := topo.EjectChannel(dst)
	var buf []wormhole.ChannelID
	steps := 0
	for ; cur != eject; steps++ {
		if steps > 4*topo.NumChannels() {
			return -1 // routing cycle under the fault set
		}
		if hasFR {
			buf = fr.RouteDegraded(cur, src, dst, dead, buf[:0])
		} else {
			buf = topo.Route(cur, src, dst, buf[:0])
			live := buf[:0]
			for _, c := range buf {
				if !dead(c) {
					live = append(live, c)
				}
			}
			buf = live
		}
		if len(buf) == 0 || dead(buf[0]) {
			return -1
		}
		cur = buf[0]
	}
	return steps
}

// Reachable computes which chain positions a reliable multicast can
// possibly deliver: the closure of Routable over the group members,
// starting from the source at chain index root — a member is reachable
// if some already-reachable member can route to it, since any delivered
// member may relay. The result is the per-position oracle the chaos
// harness asserts delivery against, and the "reachable fraction" curve
// the F2 experiment plots next to the measured delivered fraction.
func Reachable(topo wormhole.Topology, fm wormhole.FaultModel, ch chain.Chain, root int) []bool {
	in := make([]bool, len(ch))
	in[root] = true
	queue := make([]int, 0, len(ch))
	queue = append(queue, root)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := range ch {
			if in[v] {
				continue
			}
			if Routable(topo, fm, wormhole.NodeID(ch[u]), wormhole.NodeID(ch[v])) {
				in[v] = true
				queue = append(queue, v)
			}
		}
	}
	return in
}
