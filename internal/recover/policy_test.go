package recover_test

import (
	"reflect"
	"testing"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/mcastsim"
	"repro/internal/mesh"
	"repro/internal/plan"
	recov "repro/internal/recover"
	"repro/internal/wormhole"
)

// TestOrphanAdoptedByNearestDeliveredMember pins the satellite fix:
// orphan re-assignment must pick the delivered member nearest the
// orphan by hop distance, not the first candidate in chain order. The
// geometry makes the two policies disagree: members {0, 2, 10, 15} on a
// 4x4 mesh with the (2,0)->(3,0) east hop silently stuck. The
// sequential tree sends 0->15 across the stuck hop, which burns its
// budget and orphans 15; delivered candidates are then node 2 (chain
// position 1, 4 fabric hops from 15, and its XY path to 15 crosses the
// very same stuck hop) and node 10 (position 2, 2 hops, clean path).
// First-candidate order would adopt via node 2 — the pathologically far
// adopter — while nearest-by-hop must pick node 10.
func TestOrphanAdoptedByNearestDeliveredMember(t *testing.T) {
	m := mesh.New2D(4, 4)
	const bytes = 256
	addrs := []int{0, 2, 10, 15}
	ch := chain.New(addrs, m.DimOrderLess)
	root, _ := ch.Index(0)
	pos2, _ := ch.Index(2)
	pos10, _ := ch.Index(10)
	pos15, _ := ch.Index(15)
	tend := calibrate(t, m, addrs, bytes)

	if d10, d2 := recov.HopDistance(m, nil, 10, 15), recov.HopDistance(m, nil, 2, 15); d10 >= d2 {
		t.Fatalf("geometry broken: HopDistance(10,15)=%d not closer than HopDistance(2,15)=%d", d10, d2)
	}

	run := func() recov.Result {
		path := wormhole.PathChannels(m, 0, 15)
		net := wormhole.New(m, wormhole.DefaultConfig())
		net.SetFaults(stuckChannel{c: path[3]}) // east hop (2,0)->(3,0)
		res, err := recov.Run(net, core.SequentialTable{Max: len(ch)}, ch, root, bytes, recov.Config{
			Sim:        mcastsim.Config{Software: testSoft},
			TEnd:       tend,
			MaxRetries: 2,
			Seed:       13,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	res := run()
	if res.Delivered != 3 || res.Abandoned != 0 {
		t.Fatalf("want all destinations delivered, got %+v", res)
	}
	if res.Status[pos15] != mcastsim.StatusAdopted {
		t.Fatalf("node 15 status = %v, want adopted", res.Status[pos15])
	}
	if got := res.AdoptedBy[pos15]; got != pos10 {
		t.Fatalf("node 15 adopted by position %d, want %d (node 10, the nearest delivered member)", got, pos10)
	}
	for _, p := range []int{root, pos2, pos10} {
		if res.AdoptedBy[p] != -1 {
			t.Fatalf("position %d has AdoptedBy %d, want -1", p, res.AdoptedBy[p])
		}
	}
	// The adopter choice is a pure function of the fault set and the
	// seeded schedule: a rerun must reproduce the result bit-exactly.
	if again := run(); !reflect.DeepEqual(res, again) {
		t.Fatalf("orphan adoption not deterministic:\n first %+v\nsecond %+v", res, again)
	}
}

// TestIncrementalRepairFewerRepairSends compares the repair policies on
// identical failures: a stuck channel under the root's first binomial
// send makes the transfer of the far-half subtree fail. Full re-planning
// re-splits the surviving subtree into multiple repair sends; the
// incremental policy grafts it whole onto the survivor nearest the
// sender with exactly one. Both must deliver everything the fabric
// allows — and on this geometry, everything.
func TestIncrementalRepairFewerRepairSends(t *testing.T) {
	m := mesh.New2D(8, 8)
	const k, bytes = 12, 512
	ch, root := meshGroup(m, 21, k)
	tend := calibrate(t, m, ch, bytes)

	// Stick a mid-path channel of the root's first planned transfer (the
	// far-half subtree carrier) without killing the whole neighborhood.
	tab := core.BinomialTable{Max: k}
	positions := make([]int, k)
	for i := range positions {
		positions[i] = i
	}
	sends, err := plan.RepairSends(tab, positions, root)
	if err != nil {
		t.Fatal(err)
	}
	first := sends[0]
	if len(first.Live) < 3 {
		t.Fatalf("first send carries %d members; need a subtree for repair to matter", len(first.Live))
	}
	path := wormhole.PathChannels(m, wormhole.NodeID(ch[root]), wormhole.NodeID(ch[first.To]))
	stuck := path[len(path)/2]

	run := func(policy recov.RepairPolicy) recov.Result {
		net := wormhole.New(m, wormhole.DefaultConfig())
		net.SetFaults(stuckChannel{c: stuck})
		res, err := recov.Run(net, tab, ch, root, bytes, recov.Config{
			Sim:        mcastsim.Config{Software: testSoft},
			TEnd:       tend,
			MaxRetries: 1,
			Repair:     policy,
			Seed:       17,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	full := run(recov.RepairFull)
	incr := run(recov.RepairIncremental)
	if full.Delivered != k-1 || incr.Delivered != k-1 {
		t.Fatalf("delivered: full %d, incremental %d, want %d each", full.Delivered, incr.Delivered, k-1)
	}
	if full.Overhead.Repairs < 1 || incr.Overhead.Repairs < 1 {
		t.Fatalf("no give-ups happened (full %+v, incr %+v); the stuck channel missed the tree", full.Overhead, incr.Overhead)
	}
	if incr.Overhead.RepairSends >= full.Overhead.RepairSends {
		t.Fatalf("incremental repair sends %d not strictly fewer than full re-plan's %d",
			incr.Overhead.RepairSends, full.Overhead.RepairSends)
	}
}

// TestRepairBinomialFromStart: the fixed binomial policy plans
// recursive doubling from the first send and records the flip at 0.
func TestRepairBinomialFromStart(t *testing.T) {
	m := mesh.New2D(8, 8)
	const k, bytes = 10, 512
	ch, root := meshGroup(m, 5, k)
	tend := calibrate(t, m, ch, bytes)
	thold := testSoft.Hold.At(bytes)

	base, err := mcastsim.Run(wormhole.New(m, wormhole.DefaultConfig()), core.BinomialTable{Max: k}, ch, root, bytes,
		mcastsim.Config{Software: testSoft})
	if err != nil {
		t.Fatal(err)
	}
	got, err := recov.Run(wormhole.New(m, wormhole.DefaultConfig()), core.NewOptTable(k, thold, tend), ch, root, bytes,
		recov.Config{Sim: mcastsim.Config{Software: testSoft}, TEnd: tend, Repair: recov.RepairBinomial})
	if err != nil {
		t.Fatal(err)
	}
	// The configured OPT table must be ignored: the healthy execution is
	// exactly mcastsim's binomial multicast.
	if got.Latency != base.Latency || !reflect.DeepEqual(got.Deliveries, base.Deliveries) {
		t.Fatalf("binomial policy did not plan binomial:\n got %+v\nbase %+v", got, base)
	}
	if got.FallbackAt != 0 {
		t.Fatalf("FallbackAt = %d, want 0 for the fixed binomial policy", got.FallbackAt)
	}
}

// TestDegreeCapHonored: with DegreeCap set, no node in the realized
// delivery tree exceeds the fan-out cap, and everything is delivered on
// a healthy fabric.
func TestDegreeCapHonored(t *testing.T) {
	m := mesh.New2D(8, 8)
	const k, bytes, cap = 14, 512, 2
	ch, root := meshGroup(m, 9, k)
	tend := calibrate(t, m, ch, bytes)

	res, err := recov.Run(wormhole.New(m, wormhole.DefaultConfig()), core.BinomialTable{Max: k}, ch, root, bytes,
		recov.Config{Sim: mcastsim.Config{Software: testSoft}, TEnd: tend, DegreeCap: cap})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != k-1 || res.Abandoned != 0 {
		t.Fatalf("degree-capped healthy run did not deliver everything: %+v", res)
	}
	// Sends == Worms on a healthy run, and a cap-2 tree over k members
	// has exactly k-1 transfers; per-node fan-out is pinned by the plan
	// fuzz tests, so here we check the run shape stayed a tree.
	if res.Overhead.Sends != int64(k-1) {
		t.Fatalf("degree-capped tree issued %d sends, want %d", res.Overhead.Sends, k-1)
	}
}
