package recover_test

// The chaos harness: random seeded fault plans on all four fabric
// families, driven through full recovery. The invariant under test is
// the tentpole's promise — every destination the faulted topology can
// still reach is delivered — plus the determinism contract: identical
// results on the fast and reference kernels and on reruns of the same
// seed, bit for bit.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bfly"
	"repro/internal/bmin"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mcastsim"
	"repro/internal/mesh"
	recov "repro/internal/recover"
	"repro/internal/sim"
	"repro/internal/torus"
	"repro/internal/wormhole"
)

type chaosPlatform struct {
	name string
	topo wormhole.Topology
	less func(a, b int) bool // nil: unordered chain
}

func chaosPlatforms() []chaosPlatform {
	m := mesh.New2D(8, 8)
	tr := torus.New2D(8, 8)
	bm := bmin.New(64, bmin.AscentStraight)
	bf := bfly.New(64)
	return []chaosPlatform{
		{"mesh", m, m.DimOrderLess}, // dim-order chain + FaultRouter detours
		{"torus", tr, tr.DimOrderLess},
		{"bmin", bm, bm.LexLess}, // lex chain + alternate-ascent FaultRouter
		{"bfly", bf, bf.LexLess}, // no FaultRouter: dead-filtered routing
	}
}

// chaosRun executes one recovery run and returns the result; fatal on
// configuration errors (the run itself must never error on a fault).
func chaosRun(t *testing.T, p chaosPlatform, fp *fault.Plan, ch chain.Chain, root, bytes int,
	tend int64, kernel wormhole.Kernel, seed uint64) recov.Result {
	t.Helper()
	net := wormhole.New(p.topo, wormhole.DefaultConfig())
	net.SetKernel(kernel)
	net.SetFaults(fp)
	thold := testSoft.Hold.At(bytes)
	tab := core.NewOptTable(len(ch), thold, tend)
	res, err := recov.Run(net, tab, ch, root, bytes, recov.Config{
		Sim:  mcastsim.Config{Software: testSoft},
		TEnd: tend,
		Seed: seed,
	})
	if err != nil {
		t.Fatalf("%s seed %d: recovery errored: %v", p.name, seed, err)
	}
	if err := net.Quiesced(); err != nil {
		t.Fatalf("%s seed %d: fabric not clean after recovery: %v", p.name, seed, err)
	}
	return res
}

// TestChaosRecoveryInvariant: for every seeded fault plan, every
// oracle-reachable destination is delivered; abandoned destinations are
// provably cut off; and the whole Result — delivery times, statuses and
// overhead counters — is bit-identical across kernels and reruns.
func TestChaosRecoveryInvariant(t *testing.T) {
	const (
		k     = 10
		bytes = 512
	)
	specs := []fault.Spec{
		{DeadFrac: 0.04},
		{DeadFrac: 0.12},
		{DeadFrac: 0.05, FlakyFrac: 0.10, DegradedFrac: 0.10},
	}
	sawAbandon, sawRecover := false, false
	for _, p := range chaosPlatforms() {
		for seed := uint64(1); seed <= 3; seed++ {
			addrs := sim.NewRNG(seed*77).Sample(p.topo.NumNodes(), k)
			ch := chain.New(addrs, p.less)
			root, _ := ch.Index(addrs[0])
			tend := calibrate(t, p.topo, addrs, bytes)
			for si, spec := range specs {
				spec.Seed = seed
				fp, err := fault.NewPlan(p.topo, spec)
				if err != nil {
					t.Fatal(err)
				}
				name := fmt.Sprintf("%s/spec%d/seed%d", p.name, si, seed)

				res := chaosRun(t, p, fp, ch, root, bytes, tend, wormhole.KernelFast, seed)
				oracle := recov.Reachable(p.topo, fp, ch, root)
				for i, reach := range oracle {
					if reach && res.Deliveries[i] < 0 {
						t.Fatalf("%s: position %d (node %d) is reachable but was abandoned\n%+v",
							name, i, ch[i], res)
					}
					if reach == (res.Status[i] == mcastsim.StatusAbandoned) {
						t.Fatalf("%s: position %d: reachable=%v but status=%v",
							name, i, reach, res.Status[i])
					}
				}
				if res.Abandoned > 0 {
					sawAbandon = true
				}
				if res.Overhead.Retransmits > 0 || res.Overhead.Repairs > 0 {
					sawRecover = true
				}

				again := chaosRun(t, p, fp, ch, root, bytes, tend, wormhole.KernelFast, seed)
				if !reflect.DeepEqual(res, again) {
					t.Fatalf("%s: rerun diverged:\n 1st %+v\n 2nd %+v", name, res, again)
				}
				ref := chaosRun(t, p, fp, ch, root, bytes, tend, wormhole.KernelReference, seed)
				if !reflect.DeepEqual(res, ref) {
					t.Fatalf("%s: kernels diverged:\n fast %+v\n ref  %+v", name, res, ref)
				}
			}
		}
	}
	// The sweep must actually exercise recovery, not vacuously pass on
	// healthy-looking plans.
	if !sawRecover {
		t.Fatal("no fault plan triggered a retransmit or repair; chaos coverage is vacuous")
	}
	if !sawAbandon {
		t.Log("note: no plan partitioned a destination (abandonment untested this sweep)")
	}
}
