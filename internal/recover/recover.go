// Package recover delivers multicasts reliably on a faulted fabric. It
// wraps the mcastsim runtime pattern — nodes re-derive their sends from
// the split table on delivery — with three composed mechanisms:
//
//  1. Per-send timeout and retransmission: every send carries a delivery
//     deadline, the model-predicted unicast latency t_end scaled by a
//     tunable slack factor. An unacknowledged send is withdrawn from the
//     fabric (wormhole.Network.Cancel, so delivery stays at-most-once)
//     and re-issued with bounded exponential backoff; the backoff jitter
//     comes from a seeded RNG, so sweeps stay reproducible.
//  2. Subtree adoption / tree repair: when a destination is declared
//     dead after the retry budget, its sender strikes it from the chain
//     and re-runs the OPT split over the surviving sub-chain
//     (plan.RepairSends) — striking members from an architecture-ordered
//     chain preserves the order, so the repaired tree keeps the paper's
//     contention-freedom on the healthy links. The struck member becomes
//     an orphan, re-assigned to any delivered member that can still
//     route to it.
//  3. Graceful degradation: when repair churns past a threshold of
//     give-ups, planning falls back from the parameterized OPT tree to
//     binomial recursive-doubling over survivors — a simpler shape that
//     trades latency for fewer deep dependency chains — and the policy
//     flip is recorded in the result.
//
// The recovery clock is the event queue, never the watchdog: deadlines
// and backoffs fire at exact cycles, and unreachable freezes pin the
// fast kernel's cycle-skipping to the freeze cycle, so both wormhole
// kernels drive recovery through identical decisions at identical times
// (the chaos harness asserts this bit-exactly).
package recover

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/mcastsim"
	"repro/internal/model"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/wormhole"
)

// RepairPolicy selects how the recovery layer re-plans after a member
// is given up.
type RepairPolicy uint8

const (
	// RepairFull re-runs the OPT split over the surviving sub-chain on
	// every give-up (the original PR-4 behavior) and degrades to
	// binomial past the churn limit.
	RepairFull RepairPolicy = iota
	// RepairIncremental excises only the lost member: the rest of its
	// subtree is grafted in one send onto the member nearest the sender
	// by hop distance, which re-derives its own sends on delivery. When
	// give-ups reach half the churn limit the policy thrashes and falls
	// back to full re-planning, then to binomial at the limit itself.
	RepairIncremental
	// RepairBinomial plans binomial recursive-doubling from the start —
	// the graceful-degradation endpoint as a fixed policy, the baseline
	// the F5 churn figure compares the other two against.
	RepairBinomial
)

func (p RepairPolicy) String() string {
	switch p {
	case RepairFull:
		return "full"
	case RepairIncremental:
		return "incremental"
	case RepairBinomial:
		return "binomial"
	default:
		return fmt.Sprintf("RepairPolicy(%d)", uint8(p))
	}
}

// Config parameterizes one reliable multicast execution.
type Config struct {
	// Sim carries the software costs (t_send, t_recv, t_hold), the
	// address-byte charge, and the MaxCycles safety net, with the same
	// semantics as mcastsim.Config. NoProgressCycles is ignored: every
	// outstanding send has a pending deadline event, so the per-send
	// timeouts subsume the no-progress watchdog.
	Sim mcastsim.Config
	// TEnd is the model-predicted healthy unicast latency for the
	// message size, as measured by mcastsim.Unicast. Required (> 0): it
	// anchors every delivery deadline.
	TEnd model.Time
	// SlackNum/SlackDen scale TEnd into the per-send delivery deadline:
	// a send undelivered TEnd*SlackNum/SlackDen cycles after issue is
	// declared lost and retransmitted. Both zero defaults to 3/1; the
	// ratio must be >= 1 or sends provably still in flight would churn.
	SlackNum, SlackDen int64
	// MaxRetries is the retransmission budget per assignment; once spent
	// the destination is given up by this sender and repair takes over.
	// 0 defaults to 3; negative means no retries (first loss gives up).
	MaxRetries int
	// BackoffBase is the base retransmission backoff in cycles; attempt
	// n waits BackoffBase<<min(n-1,6) plus seeded jitter in
	// [0, BackoffBase). 0 defaults to max(TEnd/4, 1).
	BackoffBase int64
	// ChurnLimit is the graceful-degradation threshold: when give-ups
	// reach it, later (re)planning switches from the configured split
	// table to binomial recursive-doubling over survivors. 0 defaults to
	// 2 + k/4 for a k-member group; negative disables the fallback.
	ChurnLimit int
	// Repair selects the re-planning policy after give-ups; the zero
	// value is RepairFull, the original behavior.
	Repair RepairPolicy
	// DegreeCap, when positive, caps every node's fan-out: trees are
	// planned with plan.DegreeSends instead of the one-port OPT split,
	// modelling overlay deployments with bounded per-node degree. The
	// cap overrides table selection entirely, so the binomial fallback
	// (whose recursive doubling has unbounded fan-out over time) does
	// not apply; the fallback flip is still recorded for comparability.
	DegreeCap int
	// Select, when set, is the admission-time algorithm policy: at run
	// start it replaces the caller's split table with its own pick for
	// the k-member chain (a nil return keeps the caller's table). The
	// internal/tuner crossover-surface selector fits directly. Select
	// composes *below* the degradation ladder: once give-ups reach
	// ChurnLimit the binomial fallback still overrides whatever Select
	// chose, and DegreeCap still overrides table selection entirely.
	Select func(k int) core.SplitTable
	// Seed drives the deterministic backoff jitter.
	Seed uint64
}

// Result reports one reliable multicast execution.
type Result struct {
	// Latency is when the last successful delivery completed (software
	// receive included), measured from the source at 0. Abandoned
	// destinations do not extend it.
	Latency int64
	// Deliveries holds each chain position's delivery-complete time, or
	// -1 if the position was abandoned. The source's is 0.
	Deliveries []int64
	// Status classifies each chain position's outcome. The source is
	// StatusDelivered.
	Status []mcastsim.DestStatus
	// Delivered and Abandoned count the non-source chain positions by
	// final outcome (retried and adopted positions count as delivered).
	Delivered, Abandoned int
	// Overhead itemizes the message cost of recovery.
	Overhead mcastsim.Overhead
	// AdoptedBy records, per chain position, the position of the sender
	// whose adopted (replanned, grafted, or orphan-rescue) send finally
	// delivered it, or -1 for positions delivered by their originally
	// planned sender, abandoned, or the source. On a healthy fabric it
	// is all -1.
	AdoptedBy []int
	// FallbackAt is the cycle (relative to start) the graceful-
	// degradation policy switched planning to binomial recursive
	// doubling, or -1 if the churn threshold was never reached.
	FallbackAt int64
	// Worms is the number of messages that completed in the fabric;
	// cancelled retransmits are in Overhead.Cancelled, not here.
	Worms int64
	// BlockedCycles, InjectWaitCycles and Cycles mirror mcastsim.Result,
	// counting only completed worms' contention.
	BlockedCycles    int64
	InjectWaitCycles int64
	Cycles           int64
}

// pair-state values for runner.pair.
const (
	pairUntried    uint8 = iota
	pairUnroutable       // declared dead after exhausting the retry budget
)

// xfer is one delivery assignment: from must get the message to to,
// which then becomes responsible for the ascending chain positions live
// (to included). The assignment survives retransmissions; seq
// invalidates the deadline events of superseded issues.
type xfer struct {
	from, to int
	live     []int
	attempt  int
	seq      int
	adopted  bool
	worm     *wormhole.Worm
	done     bool
}

type runner struct {
	net    *wormhole.Network
	tab    core.SplitTable
	fb     core.SplitTable
	ch     chain.Chain
	bytes  int
	cfg    Config
	events *sim.EventQueue
	rng    *sim.RNG
	t0     int64
	res    Result

	tSend, tRecv, tHold int64
	timeout             int64 // per-send deadline: TEnd*SlackNum/SlackDen
	maxRetry            int
	churnLimit          int // < 0: fallback disabled

	delivered []bool
	orphan    []bool  // given up by some sender, awaiting re-assignment
	nextFree  []int64 // per position: when its one send port frees up
	pair      []uint8 // k*k flattened (from*k+to) give-up record
	hop       []int32 // k*k HopDistance cache: 0 unknown, d+1 routable, -1 not
	unBuf     []*wormhole.Worm
	churn     int
	incrLimit int // incremental -> full threshold; < 0: never degrade
	fallback  bool
	runErr    error
}

// Run executes a reliable multicast of msgBytes over ch with the source
// at chain index root, shaping trees with tab on the (possibly faulted)
// net. Unlike mcastsim.Run it does not fail when destinations are
// unreachable: it retries, repairs and degrades until every destination
// is delivered or provably cut off, and reports per-destination
// outcomes. Errors are reserved for misconfiguration and safety-net
// exhaustion.
func Run(net *wormhole.Network, tab core.SplitTable, ch chain.Chain, root int, msgBytes int, cfg Config) (Result, error) {
	if err := ch.Validate(); err != nil {
		return Result{}, err
	}
	k := len(ch)
	if root < 0 || root >= k {
		return Result{}, fmt.Errorf("recover: root index %d outside chain of %d nodes", root, k)
	}
	if cfg.Select != nil {
		if t := cfg.Select(k); t != nil {
			tab = t
		}
	}
	if k > tab.K() {
		return Result{}, fmt.Errorf("recover: chain of %d nodes exceeds split table K=%d", k, tab.K())
	}
	if msgBytes < 0 {
		return Result{}, fmt.Errorf("recover: negative message size %d", msgBytes)
	}
	for _, a := range ch {
		if a < 0 || a >= net.Topology().NumNodes() {
			return Result{}, fmt.Errorf("recover: chain address %d outside fabric of %d nodes", a, net.Topology().NumNodes())
		}
	}
	if err := net.Quiesced(); err != nil {
		return Result{}, fmt.Errorf("recover: fabric not idle: %w", err)
	}
	if cfg.TEnd <= 0 {
		return Result{}, fmt.Errorf("recover: Config.TEnd must be the calibrated unicast latency, got %d", cfg.TEnd)
	}
	if cfg.SlackNum == 0 && cfg.SlackDen == 0 {
		cfg.SlackNum, cfg.SlackDen = 3, 1
	}
	if cfg.SlackNum <= 0 || cfg.SlackDen <= 0 || cfg.SlackNum < cfg.SlackDen {
		return Result{}, fmt.Errorf("recover: slack %d/%d invalid (need a ratio >= 1)", cfg.SlackNum, cfg.SlackDen)
	}
	if cfg.BackoffBase < 0 {
		return Result{}, fmt.Errorf("recover: negative BackoffBase %d", cfg.BackoffBase)
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = cfg.TEnd / 4
		if cfg.BackoffBase < 1 {
			cfg.BackoffBase = 1
		}
	}
	maxRetry := cfg.MaxRetries
	switch {
	case maxRetry == 0:
		maxRetry = 3
	case maxRetry < 0:
		maxRetry = 0
	}
	churnLimit := cfg.ChurnLimit
	if churnLimit == 0 {
		churnLimit = 2 + k/4
	}
	if cfg.Repair > RepairBinomial {
		return Result{}, fmt.Errorf("recover: unknown repair policy %d", cfg.Repair)
	}
	if cfg.DegreeCap < 0 {
		return Result{}, fmt.Errorf("recover: negative degree cap %d", cfg.DegreeCap)
	}
	incrLimit := -1
	if cfg.Repair == RepairIncremental && churnLimit > 0 {
		incrLimit = churnLimit / 2
		if incrLimit < 1 {
			incrLimit = 1
		}
	}

	r := &runner{
		net:        net,
		tab:        tab,
		fb:         core.BinomialTable{Max: k},
		ch:         ch,
		bytes:      msgBytes,
		cfg:        cfg,
		events:     new(sim.EventQueue),
		rng:        sim.NewRNG(cfg.Seed ^ 0x7ec0_4e11_ab1e_c0de),
		t0:         net.Now(),
		tSend:      cfg.Sim.Software.Send.At(msgBytes),
		tRecv:      cfg.Sim.Software.Recv.At(msgBytes),
		tHold:      cfg.Sim.Software.Hold.At(msgBytes),
		timeout:    cfg.TEnd * cfg.SlackNum / cfg.SlackDen,
		maxRetry:   maxRetry,
		churnLimit: churnLimit,
		incrLimit:  incrLimit,
		delivered:  make([]bool, k),
		orphan:     make([]bool, k),
		nextFree:   make([]int64, k),
		pair:       make([]uint8, k*k),
		hop:        make([]int32, k*k),
		res: Result{
			Deliveries: make([]int64, k),
			Status:     make([]mcastsim.DestStatus, k),
			AdoptedBy:  make([]int, k),
			FallbackAt: -1,
		},
	}
	for i := range r.res.Deliveries {
		r.res.Deliveries[i] = -1
		r.res.AdoptedBy[i] = -1
	}
	if cfg.Repair == RepairBinomial {
		// Binomial as a fixed policy: the degradation endpoint from the
		// first plan, recorded at cycle 0.
		r.fallback = true
		r.res.FallbackAt = 0
	}

	max := cfg.Sim.MaxCycles
	if max <= 0 {
		// The mcastsim safety net, widened for the worst recovery case:
		// every pair burning its whole retry budget with maximum backoff.
		perMsg := int64(net.Config().Flits(msgBytes+cfg.Sim.AddrBytes*k)) + int64(net.Topology().NumChannels())
		soft := r.tSend + r.tRecv + r.tHold
		base := (perMsg+soft+1024)*int64(k+1)*4 + 1<<20
		perAssign := (r.timeout + cfg.BackoffBase<<7) * int64(maxRetry+1)
		max = base + int64(k+2)*int64(k+2)*perAssign
	}
	deadline := r.t0 + max

	startStats := net.Stats()
	r.deliverAt(root, chain.Segment{L: 0, R: k - 1}.Positions(), r.t0, nil)
	for r.runErr == nil && (r.events.Len() > 0 || net.Active() > 0) {
		if net.Active() == 0 {
			if next := r.events.NextTime(); next > net.Now() {
				net.AdvanceTo(next)
			}
		}
		r.events.RunDue(net.Now())
		if r.runErr != nil || (net.Active() == 0 && r.events.Len() == 0) {
			break
		}
		if net.Active() > 0 {
			// Step the fabric, but never past the next recovery event (a
			// deadline or a pending injection must fire at its exact cycle)
			// or the safety-net check.
			limit := deadline + 1
			if limit <= net.Now() {
				limit = net.Now() + 1
			}
			if r.events.Len() > 0 && r.events.NextTime() < limit {
				limit = r.events.NextTime()
			}
			net.StepUntil(limit)
			r.reclaimFrozen()
			if err := net.Err(); err != nil {
				return Result{}, fmt.Errorf("recover: %w; %s", err, net.DeadlockReport(8))
			}
			if net.Now() > deadline {
				return Result{}, fmt.Errorf("recover: multicast not complete after %d cycles; %s", max, net.DeadlockReport(8))
			}
		}
	}
	if r.runErr != nil {
		return Result{}, r.runErr
	}
	if err := net.Quiesced(); err != nil {
		return Result{}, fmt.Errorf("recover: fabric did not quiesce: %w", err)
	}

	for i := range ch {
		if i == root {
			continue
		}
		if r.delivered[i] {
			r.res.Delivered++
		} else {
			r.res.Status[i] = mcastsim.StatusAbandoned
			r.res.Abandoned++
		}
	}
	end := net.Stats()
	r.res.Worms = end.Worms - startStats.Worms
	r.res.BlockedCycles = end.BlockedCycles - startStats.BlockedCycles
	r.res.InjectWaitCycles = end.InjectWaitCycles - startStats.InjectWaitCycles
	r.res.Cycles = end.Cycles - startStats.Cycles
	return r.res, nil
}

// deliverAt records that the position self received the message (with
// responsibility for live) at time t via assignment via (nil for the
// source), then schedules its sends and revisits queued orphans — a new
// delivered member is a new candidate relay.
func (r *runner) deliverAt(self int, live []int, t int64, via *xfer) {
	if r.delivered[self] {
		r.fault(fmt.Errorf("recover: duplicate delivery to chain position %d", self))
		return
	}
	r.delivered[self] = true
	r.orphan[self] = false
	r.res.Deliveries[self] = t - r.t0
	if lat := t - r.t0; lat > r.res.Latency {
		r.res.Latency = lat
	}
	adopted := false
	if via != nil {
		adopted = via.adopted
		switch {
		case via.adopted:
			r.res.Status[self] = mcastsim.StatusAdopted
			r.res.AdoptedBy[self] = via.from
		case via.attempt > 0:
			r.res.Status[self] = mcastsim.StatusRetried
		default:
			r.res.Status[self] = mcastsim.StatusDelivered
		}
	}
	if len(live) > 1 {
		r.spawn(self, live, t, adopted, false)
	}
	r.assignOrphans(t)
}

// spawn plans and issues self's sends for the live positions, using the
// fallback table once the degradation policy has flipped. repair marks
// the sends as replanned (they count toward Overhead.RepairSends and
// their receivers as adopted).
func (r *runner) spawn(self int, live []int, t int64, adopted, repair bool) {
	var sends []plan.RepairSend
	var err error
	if r.cfg.DegreeCap > 0 {
		sends, err = plan.DegreeSends(live, self, r.cfg.DegreeCap)
	} else {
		tab := r.tab
		if r.fallback {
			tab = r.fb
		}
		sends, err = plan.RepairSends(tab, live, self)
	}
	if err != nil {
		r.fault(err)
		return
	}
	for _, snd := range sends {
		x := &xfer{from: self, to: snd.To, live: snd.Live, adopted: adopted || repair}
		if repair {
			r.res.Overhead.RepairSends++
		}
		r.issue(x, t)
	}
}

// issue schedules one transmission of x no earlier than notBefore,
// serialized behind the sender's other sends (one-port pacing: a node's
// consecutive issues are t_hold apart, exactly mcastsim's spacing), and
// arms its delivery deadline.
func (r *runner) issue(x *xfer, notBefore int64) {
	at := notBefore
	if nf := r.nextFree[x.from]; nf > at {
		at = nf
	}
	r.nextFree[x.from] = at + r.tHold
	x.seq++
	seq := x.seq
	r.events.At(at+r.tSend, func() { r.inject(x, seq) })
	r.events.At(at+r.timeout, func() { r.expire(x, seq) })
	r.res.Overhead.Sends++
}

// inject hands x's message to the fabric (software send cost already
// elapsed). The arrival callback schedules delivery after the receive
// cost; the deadline event watches the race.
func (r *runner) inject(x *xfer, seq int) {
	if x.done || x.seq != seq {
		return
	}
	bytes := r.bytes + r.cfg.Sim.AddrBytes*(len(x.live)-1)
	src := wormhole.NodeID(r.ch[x.from])
	dst := wormhole.NodeID(r.ch[x.to])
	x.worm = r.net.Send(src, dst, bytes, x, func(_ *wormhole.Worm, now int64) {
		x.done = true
		x.worm = nil
		r.events.At(now+r.tRecv, func() { r.deliverAt(x.to, x.live, now+r.tRecv, x) })
	})
}

// expire fires at x's delivery deadline; if the current issue of x has
// not arrived by then the send is declared lost.
func (r *runner) expire(x *xfer, seq int) {
	if x.done || x.seq != seq {
		return
	}
	r.fail(x, false)
}

// reclaimFrozen cancels worms frozen by the fault layer (no live route)
// and routes their assignments into the retry/give-up path immediately —
// a frozen worm never completes, and waiting out its deadline would just
// hold channels hostage. Cancelling the last frozen worm clears the
// fabric error, so the run continues.
func (r *runner) reclaimFrozen() {
	r.unBuf = r.net.Unreachable(r.unBuf[:0])
	for _, w := range r.unBuf {
		x, ok := w.Tag.(*xfer)
		if !ok {
			r.fault(fmt.Errorf("recover: frozen worm %d carries foreign tag %T", w.ID, w.Tag))
			return
		}
		r.fail(x, true)
	}
}

// fail handles a lost send: the outstanding worm (if any) is withdrawn
// so delivery stays at-most-once, then the assignment is retried with
// bounded exponential backoff or given up. frozen marks losses where the
// fault layer proved no live route existed from the worm's position —
// if the idle-fabric oracle agrees the pair is unroutable, the retry
// budget is skipped (retrying a provably dead route cannot help);
// otherwise the freeze was a contention-driven detour into a dead end
// and retrying on a quieter fabric can still succeed.
func (r *runner) fail(x *xfer, frozen bool) {
	if x.worm != nil {
		r.net.Cancel(x.worm)
		r.res.Overhead.Cancelled++
		x.worm = nil
	}
	x.seq++
	now := r.net.Now()
	give := x.attempt >= r.maxRetry
	if frozen && !r.routable(x.from, x.to) {
		give = true
	}
	if give {
		r.giveUp(x, now)
		return
	}
	x.attempt++
	r.res.Overhead.Retransmits++
	r.issue(x, now+Backoff(r.cfg.BackoffBase, x.attempt, r.rng))
}

// Backoff returns the bounded exponential retransmission delay for the
// given 1-based attempt: base<<min(attempt-1, 6) plus one seeded jitter
// draw in [0, base). It is the single backoff schedule shared by the
// recovery layer and the open-system traffic engine's reliable mode, so
// both layers desynchronize retries identically. base must be >= 1.
func Backoff(base int64, attempt int, rng *sim.RNG) int64 {
	shift := uint(attempt - 1)
	if shift > 6 {
		shift = 6
	}
	return base<<shift + int64(rng.Uint64()%uint64(base))
}

// giveUp declares the (from, to) pair unroutable, re-plans the rest of
// to's subtree from the same sender (subtree adoption via RepairSends),
// queues to as an orphan for re-assignment to another delivered member,
// and advances the graceful-degradation policy.
func (r *runner) giveUp(x *xfer, now int64) {
	k := len(r.ch)
	r.pair[x.from*k+x.to] = pairUnroutable
	r.res.Overhead.Repairs++
	r.churn++
	if !r.fallback && r.churnLimit >= 0 && r.churn >= r.churnLimit {
		r.fallback = true
		r.res.FallbackAt = now - r.t0
	}
	r.orphan[x.to] = true
	if len(x.live) > 1 {
		if r.cfg.Repair == RepairIncremental && !r.fallback && (r.incrLimit < 0 || r.churn <= r.incrLimit) {
			// Incremental repair: excise only the lost member and graft
			// the rest of its subtree, in one send, onto a surviving
			// member — no OPT re-split at the sender.
			r.graft(x, now)
		} else {
			// Full re-plan: survivors of the subtree to would have
			// served, re-split from this sender over the surviving
			// sub-chain (sender inserted in order).
			liveSelf := make([]int, 0, len(x.live))
			placed := false
			for _, p := range x.live {
				if p == x.to {
					continue
				}
				if !placed && x.from < p {
					liveSelf = append(liveSelf, x.from)
					placed = true
				}
				liveSelf = append(liveSelf, p)
			}
			if !placed {
				liveSelf = append(liveSelf, x.from)
			}
			r.spawn(x.from, liveSelf, now, true, true)
		}
	}
	r.assignOrphans(now)
}

// graft implements the incremental repair step: the excised subtree's
// survivors (the failed assignment's live set minus the given-up
// member, order preserved) are handed whole to the survivor nearest the
// sender by hop distance on the idle-fabric walk (ties to the lowest
// chain position), costing exactly one repair send; the graft point
// re-derives its own sends on delivery, exactly as any tree node does.
// If no survivor is routable from the sender, the members are queued as
// orphans for per-member adoption instead.
func (r *runner) graft(x *xfer, now int64) {
	k := len(r.ch)
	rest := make([]int, 0, len(x.live)-1)
	for _, p := range x.live {
		if p != x.to {
			rest = append(rest, p)
		}
	}
	h, bestD := -1, 0
	for _, p := range rest {
		if r.pair[x.from*k+p] == pairUnroutable {
			continue
		}
		d := r.hopDist(x.from, p)
		if d < 0 {
			continue
		}
		if h < 0 || d < bestD {
			h, bestD = p, d
		}
	}
	if h < 0 {
		for _, p := range rest {
			r.orphan[p] = true
		}
		return
	}
	nx := &xfer{from: x.from, to: h, live: rest, adopted: true}
	r.res.Overhead.RepairSends++
	r.issue(nx, now)
}

// assignOrphans retries delivery for every queued orphan that some
// delivered member can still reach: the delivered member nearest the
// orphan by hop distance on the idle-fabric walk (ties to the lowest
// chain position) whose pair is not already given up. Assignment order
// is position-ascending and the metric is a pure function of the fault
// set, so the schedule is deterministic; unassignable orphans stay
// queued until a new member is delivered, and are abandoned if the run
// drains first.
func (r *runner) assignOrphans(now int64) {
	k := len(r.ch)
	for c := 0; c < k; c++ {
		if !r.orphan[c] || r.delivered[c] {
			continue
		}
		best, bestD := -1, 0
		for s := 0; s < k; s++ {
			if s == c || !r.delivered[s] || r.pair[s*k+c] == pairUnroutable {
				continue
			}
			d := r.hopDist(s, c)
			if d < 0 {
				continue
			}
			if best < 0 || d < bestD {
				best, bestD = s, d
			}
		}
		if best < 0 {
			continue
		}
		r.orphan[c] = false
		x := &xfer{from: best, to: c, live: []int{c}, adopted: true}
		r.res.Overhead.OrphanSends++
		r.issue(x, now)
	}
}

// hopDist caches the idle-fabric HopDistance oracle per position pair —
// dead channels never heal, so the verdict is stable for the whole run.
// Returns -1 for unroutable pairs.
func (r *runner) hopDist(a, b int) int {
	i := a*len(r.ch) + b
	if v := r.hop[i]; v != 0 {
		if v < 0 {
			return -1
		}
		return int(v - 1)
	}
	d := HopDistance(r.net.Topology(), r.net.Faults(), wormhole.NodeID(r.ch[a]), wormhole.NodeID(r.ch[b]))
	if d < 0 {
		r.hop[i] = -1
	} else {
		r.hop[i] = int32(d + 1)
	}
	return d
}

// routable reports whether the pair has any idle-fabric route.
func (r *runner) routable(a, b int) bool { return r.hopDist(a, b) >= 0 }

// fault records the first internal error; the run loop aborts on it.
func (r *runner) fault(err error) {
	if r.runErr == nil {
		r.runErr = err
	}
}
