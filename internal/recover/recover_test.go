package recover_test

import (
	"reflect"
	"testing"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/mcastsim"
	"repro/internal/mesh"
	"repro/internal/model"
	recov "repro/internal/recover"
	"repro/internal/sim"
	"repro/internal/wormhole"
)

var testSoft = model.Software{
	Send: model.Linear{Fixed: 200, PerByte: 0.15},
	Recv: model.Linear{Fixed: 200, PerByte: 0.15},
	Hold: model.Linear{Fixed: 200, PerByte: 0.15},
}

// calibrate measures t_end between the chain's extremes on a healthy
// fabric, as every experiment driver does before installing faults.
func calibrate(t *testing.T, topo wormhole.Topology, addrs []int, bytes int) int64 {
	t.Helper()
	net := wormhole.New(topo, wormhole.DefaultConfig())
	tend, err := mcastsim.Unicast(net, addrs[0], addrs[len(addrs)-1], bytes, mcastsim.Config{Software: testSoft})
	if err != nil {
		t.Fatal(err)
	}
	return tend
}

// meshGroup places k members on the mesh and returns the dim-ordered
// chain with the root index.
func meshGroup(m *mesh.Mesh, seed uint64, k int) (chain.Chain, int) {
	addrs := sim.NewRNG(seed).Sample(m.NumNodes(), k)
	ch := chain.New(addrs, m.DimOrderLess)
	root, ok := ch.Index(addrs[0])
	if !ok {
		panic("source lost")
	}
	return ch, root
}

// TestHealthyMatchesMcastsim: on a fault-free fabric the recovery layer
// must execute the exact multicast mcastsim executes — same deliveries,
// same latency, same worm count, zero recovery actions. The per-send
// deadlines and orphan machinery must be pure bookkeeping until
// something actually fails.
func TestHealthyMatchesMcastsim(t *testing.T) {
	m := mesh.New2D(8, 8)
	const k, bytes = 12, 1024
	addrs := sim.NewRNG(7).Sample(m.NumNodes(), k)
	ch := chain.New(addrs, m.DimOrderLess)
	root, _ := ch.Index(addrs[0])
	tend := calibrate(t, m, addrs, bytes)
	thold := testSoft.Hold.At(bytes)

	for _, tab := range []core.SplitTable{
		core.BinomialTable{Max: k},
		core.NewOptTable(k, thold, tend),
	} {
		base, err := mcastsim.Run(wormhole.New(m, wormhole.DefaultConfig()), tab, ch, root, bytes, mcastsim.Config{Software: testSoft})
		if err != nil {
			t.Fatal(err)
		}
		got, err := recov.Run(wormhole.New(m, wormhole.DefaultConfig()), tab, ch, root, bytes, recov.Config{
			Sim:  mcastsim.Config{Software: testSoft},
			TEnd: tend,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.Latency != base.Latency || got.Worms != base.Worms ||
			got.BlockedCycles != base.BlockedCycles || got.InjectWaitCycles != base.InjectWaitCycles {
			t.Fatalf("healthy run diverges from mcastsim:\n got %+v\nbase %+v", got, base)
		}
		if !reflect.DeepEqual(got.Deliveries, base.Deliveries) {
			t.Fatalf("healthy deliveries diverge:\n got %v\nbase %v", got.Deliveries, base.Deliveries)
		}
		oh := got.Overhead
		if oh.Retransmits != 0 || oh.Cancelled != 0 || oh.RepairSends != 0 || oh.OrphanSends != 0 || oh.Repairs != 0 {
			t.Fatalf("healthy run performed recovery actions: %+v", oh)
		}
		if oh.Sends != got.Worms {
			t.Fatalf("Sends=%d but Worms=%d on a healthy run", oh.Sends, got.Worms)
		}
		if got.Delivered != k-1 || got.Abandoned != 0 || got.FallbackAt != -1 {
			t.Fatalf("healthy outcome wrong: %+v", got)
		}
		for i, s := range got.Status {
			if s != mcastsim.StatusDelivered {
				t.Fatalf("healthy status[%d] = %v", i, s)
			}
		}
	}
}

// stuckChannel refuses flits on one channel without reporting it dead —
// the failure mode that exercises the timeout path (the fault layer
// cannot prove unreachability, so only the deadline notices).
type stuckChannel struct{ c wormhole.ChannelID }

func (s stuckChannel) Dead(wormhole.ChannelID) bool          { return false }
func (s stuckChannel) Up(c wormhole.ChannelID, _ int64) bool { return c != s.c }

// TestTimeoutRepairAndOrphanReassignment walks the full recovery ladder
// deterministically: root 0 must reach node 3 across a silently-stuck
// row-0 channel; retransmits burn the budget, the pair is given up, and
// the orphan is re-assigned to group member 5, whose XY path avoids the
// stuck link. Everything still gets delivered — node 3 as adopted.
func TestTimeoutRepairAndOrphanReassignment(t *testing.T) {
	m := mesh.New2D(4, 4)
	const bytes = 256
	addrs := []int{0, 3, 5}
	ch := chain.New(addrs, m.DimOrderLess)
	root, _ := ch.Index(0)
	pos3, _ := ch.Index(3)
	pos5, _ := ch.Index(5)
	tend := calibrate(t, m, addrs, bytes)

	// Stick the second east hop of row 0: on 0->3's XY path, but on
	// neither 0->5 (east one hop, then north) nor 5->3 (row 1 east, then
	// south).
	path := wormhole.PathChannels(m, 0, 3)
	net := wormhole.New(m, wormhole.DefaultConfig())
	net.SetFaults(stuckChannel{c: path[2]})

	res, err := recov.Run(net, core.BinomialTable{Max: len(ch)}, ch, root, bytes, recov.Config{
		Sim:        mcastsim.Config{Software: testSoft},
		TEnd:       tend,
		MaxRetries: 2,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 2 || res.Abandoned != 0 {
		t.Fatalf("want both destinations delivered, got %+v", res)
	}
	if res.Status[pos3] != mcastsim.StatusAdopted {
		t.Fatalf("node 3 status = %v, want adopted (orphan re-assignment)", res.Status[pos3])
	}
	if res.Status[pos5] == mcastsim.StatusAbandoned {
		t.Fatalf("node 5 abandoned: %+v", res)
	}
	oh := res.Overhead
	if oh.Retransmits < 2 {
		t.Fatalf("want the retry budget burnt on the stuck path, got %+v", oh)
	}
	if oh.Repairs < 1 || oh.OrphanSends < 1 {
		t.Fatalf("want a give-up and an orphan re-assignment, got %+v", oh)
	}
	if oh.Cancelled < 1 {
		t.Fatalf("retransmits must withdraw the stale worm first: %+v", oh)
	}
	if res.Deliveries[pos3] < 0 || res.Deliveries[pos3] <= res.Deliveries[pos5] {
		t.Fatalf("adopted delivery should land after its relay: %v", res.Deliveries)
	}
}

// TestBinomialFallbackRecorded: with ChurnLimit 1 the first give-up must
// flip planning to binomial recursive-doubling and record the cycle.
func TestBinomialFallbackRecorded(t *testing.T) {
	m := mesh.New2D(4, 4)
	const bytes = 256
	addrs := []int{0, 3, 5, 13, 15}
	ch := chain.New(addrs, m.DimOrderLess)
	root, _ := ch.Index(0)
	tend := calibrate(t, m, addrs, bytes)
	thold := testSoft.Hold.At(bytes)

	path := wormhole.PathChannels(m, 0, 3)
	net := wormhole.New(m, wormhole.DefaultConfig())
	net.SetFaults(stuckChannel{c: path[2]})

	res, err := recov.Run(net, core.NewOptTable(len(ch), thold, tend), ch, root, bytes, recov.Config{
		Sim:        mcastsim.Config{Software: testSoft},
		TEnd:       tend,
		MaxRetries: 1,
		ChurnLimit: 1,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FallbackAt < 0 {
		t.Fatalf("ChurnLimit 1 with a stuck pair never fell back: %+v", res)
	}
	if res.Abandoned != 0 {
		t.Fatalf("fallback run abandoned destinations: %+v", res)
	}
}

// TestConfigValidation: misconfigurations must be rejected up front.
func TestConfigValidation(t *testing.T) {
	m := mesh.New2D(4, 4)
	ch := chain.New([]int{0, 3}, m.DimOrderLess)
	tab := core.BinomialTable{Max: 2}
	cases := []struct {
		name string
		cfg  recov.Config
	}{
		{"missing TEnd", recov.Config{Sim: mcastsim.Config{Software: testSoft}}},
		{"slack below one", recov.Config{Sim: mcastsim.Config{Software: testSoft}, TEnd: 100, SlackNum: 1, SlackDen: 2}},
		{"negative slack", recov.Config{Sim: mcastsim.Config{Software: testSoft}, TEnd: 100, SlackNum: -3, SlackDen: 1}},
		{"negative backoff", recov.Config{Sim: mcastsim.Config{Software: testSoft}, TEnd: 100, BackoffBase: -1}},
	}
	for _, c := range cases {
		net := wormhole.New(m, wormhole.DefaultConfig())
		if _, err := recov.Run(net, tab, ch, 0, 64, c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestReachableHealthyIsEverything: with no faults the oracle must mark
// the whole group reachable, on fabrics with and without a FaultRouter.
func TestReachableHealthyIsEverything(t *testing.T) {
	m := mesh.New2D(8, 8)
	ch, root := meshGroup(m, 3, 10)
	for i, ok := range recov.Reachable(m, nil, ch, root) {
		if !ok {
			t.Fatalf("healthy fabric: position %d unreachable", i)
		}
	}
}
