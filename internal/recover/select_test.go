package recover_test

// Config.Select battery: the admission-time algorithm hook must
// actually replace the caller's split table, a nil return must keep
// it, and the churn-threshold binomial fallback must still override
// whatever Select picked — the hook sits below the ladder.

import (
	"reflect"
	"testing"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/mcastsim"
	"repro/internal/mesh"
	recov "repro/internal/recover"
	"repro/internal/wormhole"
)

func TestSelectOverridesTable(t *testing.T) {
	m := mesh.New2D(8, 8)
	const k, bytes = 12, 1024
	ch, root := meshGroup(m, 7, k)
	tend := calibrate(t, m, ch, bytes)
	thold := testSoft.Hold.At(bytes)
	base := recov.Config{Sim: mcastsim.Config{Software: testSoft}, TEnd: tend}

	run := func(tab core.SplitTable, sel func(k int) core.SplitTable) recov.Result {
		cfg := base
		cfg.Select = sel
		res, err := recov.Run(wormhole.New(m, wormhole.DefaultConfig()), tab, ch, root, bytes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	bin := core.BinomialTable{Max: k}
	opt := core.NewOptTable(k, thold, tend)
	direct := run(opt, nil)
	// Caller hands in binomial, Select overrides to OPT: the run must be
	// indistinguishable from handing in OPT directly.
	selected := run(bin, func(int) core.SplitTable { return opt })
	if !reflect.DeepEqual(selected, direct) {
		t.Fatalf("Select override diverges from direct OPT run:\n sel %+v\ndirect %+v", selected, direct)
	}
	// A nil return keeps the caller's table.
	kept := run(bin, func(int) core.SplitTable { return nil })
	if !reflect.DeepEqual(kept, run(bin, nil)) {
		t.Fatal("nil Select return changed the run")
	}
	if reflect.DeepEqual(kept, direct) {
		t.Fatal("binomial and OPT runs are indistinguishable; override test proves nothing")
	}
}

// TestSelectBelowFallbackLadder: Select picks OPT, but once churn
// crosses ChurnLimit the binomial fallback still takes over.
func TestSelectBelowFallbackLadder(t *testing.T) {
	m := mesh.New2D(4, 4)
	const bytes = 256
	addrs := []int{0, 3, 5, 13, 15}
	ch := chain.New(addrs, m.DimOrderLess)
	root, _ := ch.Index(0)
	tend := calibrate(t, m, addrs, bytes)
	thold := testSoft.Hold.At(bytes)

	path := wormhole.PathChannels(m, 0, 3)
	net := wormhole.New(m, wormhole.DefaultConfig())
	net.SetFaults(stuckChannel{c: path[2]})

	res, err := recov.Run(net, core.BinomialTable{Max: len(ch)}, ch, root, bytes, recov.Config{
		Sim:        mcastsim.Config{Software: testSoft},
		TEnd:       tend,
		MaxRetries: 1,
		ChurnLimit: 1,
		Seed:       5,
		Select: func(k int) core.SplitTable {
			return core.NewOptTable(k, thold, tend)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FallbackAt < 0 {
		t.Fatalf("fallback never fired over the Select hook: %+v", res)
	}
	if res.Abandoned != 0 {
		t.Fatalf("fallback run abandoned destinations: %+v", res)
	}
}

// TestSelectDeterministic: a Select-steered run replays identically.
func TestSelectDeterministic(t *testing.T) {
	m := mesh.New2D(8, 8)
	const k, bytes = 8, 512
	ch, root := meshGroup(m, 11, k)
	tend := calibrate(t, m, ch, bytes)
	thold := testSoft.Hold.At(bytes)
	run := func() recov.Result {
		res, err := recov.Run(wormhole.New(m, wormhole.DefaultConfig()),
			core.BinomialTable{Max: k}, ch, root, bytes, recov.Config{
				Sim:  mcastsim.Config{Software: testSoft},
				TEnd: tend,
				Select: func(k int) core.SplitTable {
					return core.NewOptTable(k, thold, tend)
				},
			})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("Select-steered rerun diverged")
	}
}
