package collective_test

import (
	"testing"

	"repro/internal/chain"
	. "repro/internal/collective"
	"repro/internal/core"
	"repro/internal/mcastsim"
	"repro/internal/mesh"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/wormhole"
)

var soft = model.Software{
	Send: model.Linear{Fixed: 200, PerByte: 0.15},
	Recv: model.Linear{Fixed: 200, PerByte: 0.15},
	Hold: model.Linear{Fixed: 200, PerByte: 0.15},
}

func meshChainOf(m *mesh.Mesh, seed uint64, k int) chain.Chain {
	addrs := sim.NewRNG(seed).Sample(m.NumNodes(), k)
	return chain.New(addrs, m.DimOrderLess)
}

// TestBroadcastCompletes: every node completes; message count is p^2-1
// (p-1 scatter sends + p(p-1) ring sends).
func TestBroadcastCompletes(t *testing.T) {
	m := mesh.New2D(8, 8)
	for _, p := range []int{2, 3, 8, 16} {
		ch := meshChainOf(m, uint64(p), p)
		res, err := ScatterAllgather(wormhole.New(m, wormhole.DefaultConfig()), ch, 8192, mcastsim.Config{Software: soft})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if want := int64(p*p - 1); res.Worms != want {
			t.Fatalf("p=%d: %d worms, want %d", p, res.Worms, want)
		}
		if res.Completions[0] != 0 {
			t.Fatalf("p=%d: root completion %d", p, res.Completions[0])
		}
		for i := 1; i < p; i++ {
			if res.Completions[i] <= 0 {
				t.Fatalf("p=%d: node %d completion %d", p, i, res.Completions[i])
			}
		}
	}
}

// TestSingleNode: a one-node broadcast is free.
func TestSingleNode(t *testing.T) {
	m := mesh.New2D(4, 4)
	res, err := ScatterAllgather(wormhole.New(m, wormhole.DefaultConfig()), chain.Chain{5}, 4096, mcastsim.Config{Software: soft})
	if err != nil || res.Latency != 0 || res.Worms != 0 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

// TestLargeMessageBeatsTreeBroadcast: the paper's introduction in
// numbers — for a full-machine broadcast of a large message, the
// architecture-specific scatter/all-gather beats even the optimal
// multicast tree (bandwidth beats latency), while for a small message
// the tree wins by a wide margin.
func TestCrossover(t *testing.T) {
	m := mesh.New2D(8, 8)
	const p = 64
	addrs := make([]int, p)
	for i := range addrs {
		addrs[i] = i
	}
	ch := chain.New(addrs, m.DimOrderLess)
	cfg := mcastsim.Config{Software: soft}

	run := func(bytes int) (tree, sc int64) {
		tend, err := mcastsim.Unicast(wormhole.New(m, wormhole.DefaultConfig()), 0, 63, bytes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tab := core.NewOptTable(p, soft.Hold.At(bytes), tend)
		root, _ := ch.Index(addrs[0])
		tr, err := mcastsim.Run(wormhole.New(m, wormhole.DefaultConfig()), tab, ch, root, bytes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		scr, err := ScatterAllgather(wormhole.New(m, wormhole.DefaultConfig()), ch, bytes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tr.Latency, scr.Latency
	}

	treeSmall, scSmall := run(256)
	if scSmall <= treeSmall {
		t.Fatalf("small message: scatter-collect (%d) should lose to the OPT tree (%d)", scSmall, treeSmall)
	}
	treeBig, scBig := run(512 * 1024)
	if scBig >= treeBig {
		t.Fatalf("large message: scatter-collect (%d) should beat the OPT tree (%d)", scBig, treeBig)
	}
}

// TestChunkAccounting: chunk sizes sum to the message and differ by at
// most one byte.
func TestChunkAccounting(t *testing.T) {
	m := mesh.New2D(4, 4)
	ch := meshChainOf(m, 9, 7)
	// Exercise a size not divisible by p and smaller than p.
	for _, bytes := range []int{3, 7, 100, 4097} {
		res, err := ScatterAllgather(wormhole.New(m, wormhole.DefaultConfig()), ch, bytes, mcastsim.Config{Software: soft})
		if err != nil {
			t.Fatalf("bytes=%d: %v", bytes, err)
		}
		if res.Latency <= 0 {
			t.Fatalf("bytes=%d: latency %d", bytes, res.Latency)
		}
	}
}

// TestValidation: bad inputs are rejected.
func TestValidation(t *testing.T) {
	m := mesh.New2D(4, 4)
	net := wormhole.New(m, wormhole.DefaultConfig())
	cfg := mcastsim.Config{Software: soft}
	if _, err := ScatterAllgather(net, chain.Chain{1, 1}, 8, cfg); err == nil {
		t.Error("duplicate chain accepted")
	}
	if _, err := ScatterAllgather(net, chain.Chain{1, 99}, 8, cfg); err == nil {
		t.Error("out-of-fabric address accepted")
	}
	if _, err := ScatterAllgather(net, chain.Chain{1, 2}, -1, cfg); err == nil {
		t.Error("negative size accepted")
	}
	busy := wormhole.New(m, wormhole.DefaultConfig())
	busy.Send(0, 1, 64, nil, nil)
	if _, err := ScatterAllgather(busy, chain.Chain{1, 2}, 8, cfg); err == nil {
		t.Error("busy fabric accepted")
	}
}

// TestDeterministic: identical runs.
func TestDeterministic(t *testing.T) {
	m := mesh.New2D(8, 8)
	ch := meshChainOf(m, 21, 16)
	run := func() Result {
		res, err := ScatterAllgather(wormhole.New(m, wormhole.DefaultConfig()), ch, 16384, mcastsim.Config{Software: soft})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Latency != b.Latency || a.BlockedCycles != b.BlockedCycles {
		t.Fatal("scatter-allgather not deterministic")
	}
}
