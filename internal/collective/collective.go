// Package collective implements the scatter/all-gather broadcast of
// Barnett, Payne, van de Geijn and Watts ("Broadcasting on Meshes with
// Worm-hole Routing"), the architecture-specific algorithm the paper's
// introduction cites as "reported to perform nearly optimal" — the
// performance end of the performance/portability trade-off the paper
// studies.
//
// The algorithm broadcasts an m-byte message to p nodes in two phases:
//
//  1. Scatter: recursive halving over the chain splits the message so
//     node i ends up holding chunk i (about m/p bytes). Each link
//     carries O(m) total, not O(m log p).
//  2. Ring all-gather: every node forwards each chunk it acquires to its
//     ring successor until the chunk has visited everyone; each link
//     carries m*(p-1)/p bytes, fully pipelined.
//
// For large messages this moves ~2m per node instead of the tree
// broadcast's m per tree level, so it wins whenever bandwidth dominates;
// for small messages its ~2(p-1) software latencies lose badly.
// Experiment B4 measures the crossover against OPT-mesh and U-mesh on
// the flit-level simulator.
//
// The ring's wrap-around send (last chain node back to the first)
// violates the dimension-order direction lemma, so unlike OPT-mesh this
// algorithm is NOT contention-free on a mesh; the measured blocked
// cycles quantify what that costs.
package collective

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/mcastsim"
	"repro/internal/sim"
	"repro/internal/wormhole"
)

// Result reports one collective execution.
type Result struct {
	// Latency is when the last node holds the complete message,
	// measured from the root starting at time 0.
	Latency int64
	// Completions holds each chain position's completion time.
	Completions []int64
	// Worms is the number of point-to-point messages sent.
	Worms int64
	// BlockedCycles is total header-blocked time (network contention).
	BlockedCycles int64
	// InjectWaitCycles is one-port serialization time.
	InjectWaitCycles int64
}

// chunkSize returns the size of chunk i when bytes are split across p
// chunks: the first bytes%p chunks carry one extra byte. Chunks may be
// zero bytes for tiny messages; a zero-byte chunk still costs a header
// worm and the software latencies, which is exactly why scatter-collect
// loses at small sizes.
func chunkSize(bytes, p, i int) int {
	c := bytes / p
	if i < bytes%p {
		c++
	}
	return c
}

// ScatterAllgather broadcasts msgBytes from the chain head (index 0) to
// every chain node. The chain should be in architecture order (e.g.
// dimension order on meshes) so the scatter follows the contention-free
// recursive-halving pattern and ring neighbours are physically close.
func ScatterAllgather(net *wormhole.Network, ch chain.Chain, msgBytes int, cfg mcastsim.Config) (Result, error) {
	if err := ch.Validate(); err != nil {
		return Result{}, err
	}
	if msgBytes < 0 {
		return Result{}, fmt.Errorf("collective: negative message size")
	}
	for _, a := range ch {
		if a < 0 || a >= net.Topology().NumNodes() {
			return Result{}, fmt.Errorf("collective: address %d outside fabric", a)
		}
	}
	if err := net.Quiesced(); err != nil {
		return Result{}, fmt.Errorf("collective: fabric not idle: %w", err)
	}

	p := len(ch)
	d := &driver{
		net:     net,
		ch:      ch,
		bytes:   msgBytes,
		cfg:     cfg,
		cpuFree: make([]int64, p),
		held:    make([]int, p),
		res:     Result{Completions: make([]int64, p)},
		t0:      net.Now(),
	}
	for i := range d.res.Completions {
		d.res.Completions[i] = -1
	}
	// The root holds the complete message from the start; it still
	// relays ring chunks (the standard symmetric pipeline) but its own
	// completion is immediate.
	d.res.Completions[0] = 0
	if p == 1 {
		return d.res, nil
	}

	start := net.Stats()
	d.scatter(0, p-1, d.t0)
	if err := d.drain(); err != nil {
		return Result{}, err
	}
	end := net.Stats()
	d.res.Worms = end.Worms - start.Worms
	d.res.BlockedCycles = end.BlockedCycles - start.BlockedCycles
	d.res.InjectWaitCycles = end.InjectWaitCycles - start.InjectWaitCycles
	for i, c := range d.res.Completions {
		if c < 0 {
			return Result{}, fmt.Errorf("collective: node %d never completed", ch[i])
		}
	}
	return d.res, nil
}

type driver struct {
	net    *wormhole.Network
	ch     chain.Chain
	bytes  int
	cfg    mcastsim.Config
	events sim.EventQueue
	t0     int64

	cpuFree []int64 // t_hold pacing per chain index
	held    []int   // chunks held so far per chain index
	res     Result
}

func (d *driver) spanBytes(from, to int) int {
	total := 0
	for i := from; i <= to; i++ {
		total += chunkSize(d.bytes, len(d.ch), i)
	}
	return total
}

// send issues a payload transfer from chain index a to b no earlier than
// at, respecting a's t_hold pacing; done fires when the receiver's
// software receive completes.
func (d *driver) send(a, b, payload int, at int64, done func(now int64)) {
	issue := at
	if d.cpuFree[a] > issue {
		issue = d.cpuFree[a]
	}
	d.cpuFree[a] = issue + d.cfg.Software.Hold.At(payload)
	inject := issue + d.cfg.Software.Send.At(payload)
	src, dst := wormhole.NodeID(d.ch[a]), wormhole.NodeID(d.ch[b])
	d.events.At(inject, func() {
		d.net.Send(src, dst, payload, nil, func(_ *wormhole.Worm, now int64) {
			recv := d.cfg.Software.Recv.At(payload)
			d.events.At(now+recv, func() { done(now + recv) })
		})
	})
}

// scatter distributes chunks [l, r], all currently held by chain index
// l, by recursive halving: the upper half is shipped to its first node,
// both halves recurse. When a node is down to its own chunk it enters
// the all-gather.
func (d *driver) scatter(l, r int, at int64) {
	holder := l
	for l < r {
		mid := (l + r) / 2
		payload := d.spanBytes(mid+1, r)
		lo, hi := mid+1, r
		d.send(holder, lo, payload, at, func(now int64) {
			d.scatter(lo, hi, now)
		})
		r = mid
	}
	d.acquire(holder, holder, at)
}

// acquire records that node i holds chunk c as of time t, forwards the
// chunk along the ring if the successor still needs it, and completes
// the node once it holds everything.
func (d *driver) acquire(i, c int, t int64) {
	p := len(d.ch)
	d.held[i]++
	if d.held[i] == p && d.res.Completions[i] < 0 {
		d.res.Completions[i] = t - d.t0
		if lat := t - d.t0; lat > d.res.Latency {
			d.res.Latency = lat
		}
	}
	next := (i + 1) % p
	if next == c {
		return // the chunk has visited every node except its origin
	}
	d.send(i, next, chunkSize(d.bytes, p, c), t, func(now int64) {
		d.acquire(next, c, now)
	})
}

// drain runs the event/fabric loop to completion.
func (d *driver) drain() error {
	// Generous bound: every chunk crosses every link serially.
	perMsg := int64(d.net.Config().Flits(d.bytes)) + int64(d.net.Topology().NumChannels())
	soft := d.cfg.Software.Send.At(d.bytes) + d.cfg.Software.Recv.At(d.bytes) + d.cfg.Software.Hold.At(d.bytes)
	deadline := d.t0 + (perMsg+soft+1024)*int64(len(d.ch)+1)*8 + 1<<22

	for d.events.Len() > 0 || d.net.Active() > 0 {
		if d.net.Active() == 0 {
			d.net.AdvanceTo(d.events.NextTime())
		}
		d.events.RunDue(d.net.Now())
		if d.net.Active() == 0 && d.events.Len() == 0 {
			break
		}
		if d.net.Active() > 0 {
			// Fast-forward stalls, but never past the next software event
			// or the deadline check (kept in the future — AdvanceTo may
			// have leapt past a tiny deadline already).
			limit := deadline + 1
			if limit <= d.net.Now() {
				limit = d.net.Now() + 1
			}
			if d.events.Len() > 0 && d.events.NextTime() < limit {
				limit = d.events.NextTime()
			}
			d.net.StepUntil(limit)
			if d.net.Now() > deadline {
				return fmt.Errorf("collective: broadcast not complete after %d cycles", deadline-d.t0)
			}
		}
	}
	if err := d.net.Quiesced(); err != nil {
		return fmt.Errorf("collective: fabric did not quiesce: %w", err)
	}
	return nil
}
