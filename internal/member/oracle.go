package member

import (
	"repro/internal/chain"
	recov "repro/internal/recover"
	"repro/internal/wormhole"
)

// ReachableAmong computes the membership-and-fault-reachable oracle:
// the closure of idle-fabric routability (recover.Routable) restricted
// to the chain positions with in[pos] set — the members subscribed and
// alive at quiesce — starting from the source at chain index root. A
// position outside the membership is never reachable and never relays:
// delivered non-members hold the payload but owe nobody anything, so
// the closure must not route through them. This is the set the churn
// engine's delivered positions are asserted against: delivered is
// always a subset, and equal under pure node churn once the fabric
// settles.
func ReachableAmong(topo wormhole.Topology, fm wormhole.FaultModel, ch chain.Chain, root int, in []bool) []bool {
	out := make([]bool, len(ch))
	if root < 0 || root >= len(ch) || !in[root] {
		return out
	}
	out[root] = true
	queue := make([]int, 0, len(ch))
	queue = append(queue, root)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := range ch {
			if out[v] || !in[v] {
				continue
			}
			if recov.Routable(topo, fm, wormhole.NodeID(ch[u]), wormhole.NodeID(ch[v])) {
				out[v] = true
				queue = append(queue, v)
			}
		}
	}
	return out
}
