package member_test

// Fuzz targets for the churn machinery: GenSchedule must always draw a
// structurally valid schedule whose outages compile into a fault plan,
// and the engine's incremental graft/excise planner must preserve the
// delivery-vs-oracle invariant for arbitrary schedule shapes.

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mcastsim"
	"repro/internal/member"
	"repro/internal/mesh"
	recov "repro/internal/recover"
	"repro/internal/wormhole"
)

func FuzzGenSchedule(f *testing.F) {
	f.Add(uint64(1), uint16(100), uint16(5000), uint8(128), uint16(500))
	f.Add(uint64(42), uint16(800), uint16(60000), uint8(0), uint16(4096))
	f.Add(uint64(7), uint16(0), uint16(1), uint8(255), uint16(0))
	m := mesh.New2D(8, 8)
	members := []int{0, 9, 18, 27, 36, 45}
	pool := []int{54, 63}
	f.Fuzz(func(t *testing.T, seed uint64, rate, horizon uint16, rejoin uint8, down uint16) {
		spec := member.ChurnSpec{
			RatePerMcycle: float64(rate),
			Horizon:       int64(horizon) + 1,
			RejoinFrac:    float64(rejoin) / 255,
			DownCycles:    int64(down),
			Seed:          seed,
		}
		sched, err := member.GenSchedule(spec, members, pool)
		if err != nil {
			t.Fatalf("valid spec rejected: %v", err)
		}
		if err := sched.Validate(); err != nil {
			t.Fatalf("generated schedule invalid: %v\n%+v", err, sched)
		}
		if end := sched.End(); end != 0 {
			for _, e := range sched.Events {
				if e.At > end {
					t.Fatalf("event at %d past End()=%d", e.At, end)
				}
			}
		}
		// The outage windows must compile into a fault plan as-is: one
		// window per node at a time, inside the fabric.
		if _, err := fault.NewPlan(m, fault.Spec{NodeOutages: sched.Outages}); err != nil {
			t.Fatalf("outages do not compile into a fault plan: %v\n%+v", err, sched.Outages)
		}
	})
}

// FuzzChurnRun drives the full engine — excision, grafting, orphan
// adoption, settle — with fuzzed schedule shapes on a small mesh and
// asserts the quiesce contract: the run never errors, and the delivered
// set equals the membership oracle (pure node churn, healthy channels).
func FuzzChurnRun(f *testing.F) {
	f.Add(uint64(1), uint16(300), uint8(128))
	f.Add(uint64(9), uint16(900), uint8(0))
	f.Add(uint64(23), uint16(1500), uint8(255))
	m := mesh.New2D(4, 4)
	members := []int{0, 3, 5, 10, 12}
	pool := []int{6, 15}
	addrs := append(append([]int(nil), members...), pool...)
	ch := chain.New(addrs, m.DimOrderLess)
	const bytes = 128
	net0 := wormhole.New(m, wormhole.DefaultConfig())
	tend, err := mcastsim.Unicast(net0, addrs[0], addrs[len(addrs)-1], bytes, mcastsim.Config{Software: testSoft})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, seed uint64, rate uint16, rejoin uint8) {
		sched, err := member.GenSchedule(member.ChurnSpec{
			RatePerMcycle: float64(rate % 2000),
			Horizon:       20_000,
			RejoinFrac:    float64(rejoin) / 255,
			DownCycles:    2_000,
			Seed:          seed,
		}, members, pool)
		if err != nil {
			t.Fatal(err)
		}
		fp, err := fault.NewPlan(m, fault.Spec{NodeOutages: sched.Outages})
		if err != nil {
			t.Fatal(err)
		}
		net := wormhole.New(m, wormhole.DefaultConfig())
		net.SetFaults(fp)
		res, err := member.Run(net, core.BinomialTable{Max: len(ch)}, ch, sched, bytes, member.Config{
			Sim:    mcastsim.Config{Software: testSoft},
			TEnd:   tend,
			Repair: recov.RepairIncremental,
			Seed:   seed,
		})
		if err != nil {
			t.Fatalf("churn run errored: %v\nschedule %+v", err, sched)
		}
		for i := range ch {
			delivered := res.Deliveries[i] >= 0
			inContract := res.Member[i] && res.Alive[i]
			if inContract && delivered != res.Oracle[i] {
				t.Fatalf("position %d delivered=%v oracle=%v under pure churn\nschedule %+v\nresult %+v",
					i, delivered, res.Oracle[i], sched, res)
			}
		}
	})
}
