package member_test

import (
	"reflect"
	"testing"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mcastsim"
	"repro/internal/member"
	"repro/internal/mesh"
	"repro/internal/model"
	"repro/internal/plan"
	recov "repro/internal/recover"
	"repro/internal/sim"
	"repro/internal/wormhole"
)

var testSoft = model.Software{
	Send: model.Linear{Fixed: 200, PerByte: 0.15},
	Recv: model.Linear{Fixed: 200, PerByte: 0.15},
	Hold: model.Linear{Fixed: 200, PerByte: 0.15},
}

// calibrate measures t_end between the chain's extremes on a healthy
// fabric, as every experiment driver does before installing faults.
func calibrate(t *testing.T, topo wormhole.Topology, addrs []int, bytes int) int64 {
	t.Helper()
	net := wormhole.New(topo, wormhole.DefaultConfig())
	tend, err := mcastsim.Unicast(net, addrs[0], addrs[len(addrs)-1], bytes, mcastsim.Config{Software: testSoft})
	if err != nil {
		t.Fatal(err)
	}
	return tend
}

// meshGroup places k members on the mesh and returns the dim-ordered
// chain with the root index.
func meshGroup(m *mesh.Mesh, seed uint64, k int) (chain.Chain, int) {
	addrs := sim.NewRNG(seed).Sample(m.NumNodes(), k)
	ch := chain.New(addrs, m.DimOrderLess)
	root, ok := ch.Index(addrs[0])
	if !ok {
		panic("source lost")
	}
	return ch, root
}

// churnNet builds a network with the schedule's outage windows compiled
// into the fault plan, as every churn driver must.
func churnNet(t *testing.T, topo wormhole.Topology, sched member.Schedule, spec fault.Spec) *wormhole.Network {
	t.Helper()
	spec.NodeOutages = append(append([]fault.NodeOutage(nil), spec.NodeOutages...), sched.Outages...)
	fp, err := fault.NewPlan(topo, spec)
	if err != nil {
		t.Fatal(err)
	}
	net := wormhole.New(topo, wormhole.DefaultConfig())
	net.SetFaults(fp)
	return net
}

func TestGenScheduleDeterministic(t *testing.T) {
	members := []int{0, 5, 10, 15, 20, 25, 30, 35}
	pool := []int{40, 45, 50}
	spec := member.ChurnSpec{RatePerMcycle: 400, Horizon: 100_000, RejoinFrac: 0.5, DownCycles: 2048, Seed: 42}

	s1, err := member.GenSchedule(spec, members, pool)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := member.GenSchedule(spec, members, pool)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("same spec drew different schedules:\n1st %+v\n2nd %+v", s1, s2)
	}
	if err := s1.Validate(); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	// rate 400/Mcycle over 100k cycles budgets 40 events; rejoins can
	// only add to that.
	if len(s1.Events) < 40 {
		t.Fatalf("schedule has %d events, want >= 40", len(s1.Events))
	}
	for i := 1; i < len(s1.Events); i++ {
		if s1.Events[i].At < s1.Events[i-1].At {
			t.Fatalf("events out of order at %d: %+v", i, s1.Events)
		}
	}

	spec.Seed = 43
	s3, err := member.GenSchedule(spec, members, pool)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(s1.Events, s3.Events) {
		t.Fatal("different seeds drew identical schedules")
	}
}

func TestGenScheduleZeroRate(t *testing.T) {
	s, err := member.GenSchedule(member.ChurnSpec{Horizon: 10_000}, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 0 || len(s.Outages) != 0 {
		t.Fatalf("zero rate produced events: %+v", s)
	}
	if s.End() != 0 {
		t.Fatalf("empty schedule End() = %d, want 0", s.End())
	}
}

func TestGenScheduleValidation(t *testing.T) {
	ok := member.ChurnSpec{RatePerMcycle: 100, Horizon: 10_000}
	cases := []struct {
		name    string
		spec    member.ChurnSpec
		members []int
		pool    []int
	}{
		{"one member", ok, []int{0}, nil},
		{"zero horizon", member.ChurnSpec{RatePerMcycle: 100}, []int{0, 1}, nil},
		{"negative rate", member.ChurnSpec{RatePerMcycle: -1, Horizon: 100}, []int{0, 1}, nil},
		{"rejoin frac", member.ChurnSpec{RatePerMcycle: 1, Horizon: 100, RejoinFrac: 1.5}, []int{0, 1}, nil},
		{"negative down", member.ChurnSpec{RatePerMcycle: 1, Horizon: 100, DownCycles: -1}, []int{0, 1}, nil},
		{"dup member", ok, []int{0, 1, 1}, nil},
		{"pool overlaps", ok, []int{0, 1}, []int{1}},
	}
	for _, c := range cases {
		if _, err := member.GenSchedule(c.spec, c.members, c.pool); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	base := []int{0, 1, 2}
	cases := []struct {
		name  string
		sched member.Schedule
	}{
		{"churns source", member.Schedule{Members: base, Events: []member.Event{
			{At: 5, Kind: member.KindLeave, Node: 0}}}},
		{"out of order", member.Schedule{Members: base, Events: []member.Event{
			{At: 9, Kind: member.KindLeave, Node: 1}, {At: 5, Kind: member.KindLeave, Node: 2}}}},
		{"double crash", member.Schedule{Members: base, Events: []member.Event{
			{At: 5, Kind: member.KindCrash, Node: 1, Until: fault.Forever},
			{At: 9, Kind: member.KindCrash, Node: 1, Until: fault.Forever}},
			Outages: []fault.NodeOutage{{Node: 1, From: 5, To: fault.Forever}, {Node: 1, From: 9, To: fault.Forever}}}},
		{"rejoin while up", member.Schedule{Members: base, Events: []member.Event{
			{At: 5, Kind: member.KindRejoin, Node: 1}}}},
		{"empty crash window", member.Schedule{Members: base, Events: []member.Event{
			{At: 5, Kind: member.KindCrash, Node: 1, Until: 5}},
			Outages: []fault.NodeOutage{{Node: 1, From: 5, To: 5}}}},
		{"outage count", member.Schedule{Members: base, Events: []member.Event{
			{At: 5, Kind: member.KindCrash, Node: 1, Until: fault.Forever}}}},
	}
	for _, c := range cases {
		if err := c.sched.Validate(); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

// TestNoChurnMatchesRecover: with an empty schedule the churn engine
// must execute exactly the recovery layer's run — same deliveries, same
// latency, same overhead — on both a healthy and a faulted fabric.
func TestNoChurnMatchesRecover(t *testing.T) {
	m := mesh.New2D(8, 8)
	const k, bytes = 12, 512
	ch, root := meshGroup(m, 7, k)
	tend := calibrate(t, m, ch, bytes)
	sched := member.Schedule{Members: append([]int{ch[root]}, without(ch, ch[root])...)}

	for _, spec := range []fault.Spec{{}, {DeadFrac: 0.06, Seed: 3}} {
		fp, err := fault.NewPlan(m, spec)
		if err != nil {
			t.Fatal(err)
		}
		tab := core.BinomialTable{Max: k}
		netR := wormhole.New(m, wormhole.DefaultConfig())
		netR.SetFaults(fp)
		base, err := recov.Run(netR, tab, ch, root, bytes, recov.Config{
			Sim: mcastsim.Config{Software: testSoft}, TEnd: tend, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		netM := wormhole.New(m, wormhole.DefaultConfig())
		netM.SetFaults(fp)
		got, err := member.Run(netM, tab, ch, sched, bytes, member.Config{
			Sim: mcastsim.Config{Software: testSoft}, TEnd: tend, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if got.Latency != base.Latency || !reflect.DeepEqual(got.Deliveries, base.Deliveries) {
			t.Fatalf("no-churn run diverges from recover:\n got %+v\nbase %+v", got, base)
		}
		if !reflect.DeepEqual(got.Overhead, base.Overhead) {
			t.Fatalf("no-churn overhead diverges:\n got %+v\nbase %+v", got.Overhead, base.Overhead)
		}
		if got.Delivered != base.Delivered || got.Undelivered != base.Abandoned {
			t.Fatalf("no-churn outcome counts diverge: got %+v base %+v", got, base)
		}
		for i := range ch {
			if got.Oracle[i] != (base.Deliveries[i] >= 0) {
				t.Fatalf("spec %+v: oracle[%d]=%v but recover delivery=%d", spec, i, got.Oracle[i], base.Deliveries[i])
			}
		}
	}
}

// without returns addrs minus x, preserving order.
func without(addrs []int, x int) []int {
	out := make([]int, 0, len(addrs))
	for _, a := range addrs {
		if a != x {
			out = append(out, a)
		}
	}
	return out
}

// run executes one churn run with the given policy on a fresh fabric.
func run(t *testing.T, topo wormhole.Topology, tab core.SplitTable, ch chain.Chain, sched member.Schedule,
	bytes int, tend int64, policy recov.RepairPolicy) member.Result {
	t.Helper()
	net := churnNet(t, topo, sched, fault.Spec{})
	res, err := member.Run(net, tab, ch, sched, bytes, member.Config{
		Sim:    mcastsim.Config{Software: testSoft},
		TEnd:   tend,
		Repair: policy,
		Seed:   23,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCrashRepairPolicyComparison pins the acceptance relation on one
// deterministic casualty: the relay carrying the root's largest subtree
// crashes permanently before the first flit moves. Incremental repair
// must deliver no less than full re-planning while issuing strictly
// fewer repair sends (one graft versus a full re-split).
func TestCrashRepairPolicyComparison(t *testing.T) {
	m := mesh.New2D(8, 8)
	const k, bytes = 16, 512
	ch, root := meshGroup(m, 21, k)
	tend := calibrate(t, m, ch, bytes)
	tab := core.BinomialTable{Max: k}

	positions := make([]int, k)
	for i := range positions {
		positions[i] = i
	}
	sends, err := plan.RepairSends(tab, positions, root)
	if err != nil {
		t.Fatal(err)
	}
	first := sends[0]
	if len(first.Live) < 3 {
		t.Fatalf("first send carries %d members; need a subtree for repair to matter", len(first.Live))
	}
	victim := ch[first.To]
	sched := member.Schedule{
		Members: append([]int{ch[root]}, without(ch, ch[root])...),
		Events:  []member.Event{{At: 1, Kind: member.KindCrash, Node: victim, Until: fault.Forever}},
		Outages: []fault.NodeOutage{{Node: victim, From: 1, To: fault.Forever}},
		Horizon: 4096,
	}

	full := run(t, m, tab, ch, sched, bytes, tend, recov.RepairFull)
	incr := run(t, m, tab, ch, sched, bytes, tend, recov.RepairIncremental)

	for name, res := range map[string]member.Result{"full": full, "incremental": incr} {
		if res.Dead != 1 || res.Left != 0 {
			t.Fatalf("%s: casualty accounting wrong: %+v", name, res)
		}
		if res.Delivered != k-2 || res.Undelivered != 0 {
			t.Fatalf("%s: delivered %d undelivered %d, want %d and 0", name, res.Delivered, res.Undelivered, k-2)
		}
		for i := range ch {
			if (res.Deliveries[i] >= 0) != res.Oracle[i] && i != root {
				t.Fatalf("%s: position %d delivery=%d oracle=%v", name, i, res.Deliveries[i], res.Oracle[i])
			}
		}
		if res.Overhead.RepairSends < 1 {
			t.Fatalf("%s: crash excision issued no repair sends: %+v", name, res.Overhead)
		}
	}
	if incr.Overhead.RepairSends >= full.Overhead.RepairSends {
		t.Fatalf("incremental repair sends %d not strictly fewer than full re-plan's %d",
			incr.Overhead.RepairSends, full.Overhead.RepairSends)
	}
	if again := run(t, m, tab, ch, sched, bytes, tend, recov.RepairIncremental); !reflect.DeepEqual(incr, again) {
		t.Fatalf("churn run not deterministic:\n1st %+v\n2nd %+v", incr, again)
	}
}

// TestJoinGraftedOntoDeliveredMember: a node joining mid-run is grafted
// from the nearest delivered member and counted as a graft, not an
// orphan rescue.
func TestJoinGraftedOntoDeliveredMember(t *testing.T) {
	m := mesh.New2D(8, 8)
	const bytes = 512
	addrs := sim.NewRNG(31).Sample(m.NumNodes(), 9)
	joiner := addrs[8]
	members := addrs[:8]
	ch := chain.New(addrs, m.DimOrderLess)
	tend := calibrate(t, m, addrs, bytes)
	posJ, _ := ch.Index(joiner)

	sched := member.Schedule{
		Members: members,
		Events:  []member.Event{{At: 1, Kind: member.KindJoin, Node: joiner}},
		Horizon: 4096,
	}
	res := run(t, m, core.BinomialTable{Max: len(ch)}, ch, sched, bytes, tend, recov.RepairFull)
	if !res.Member[posJ] || res.Deliveries[posJ] < 0 {
		t.Fatalf("joiner not delivered: %+v", res)
	}
	if res.Grafts < 1 {
		t.Fatalf("join delivered without a graft: %+v", res)
	}
	if res.Delivered != len(ch)-1 || res.Undelivered != 0 {
		t.Fatalf("outcome wrong: %+v", res)
	}
}

// TestLeaveExcisesSubtree: the relay carrying the root's largest
// subtree unsubscribes before the first flit moves. It is owed nothing
// (Left, not Undelivered, and outside the oracle), but its stranded
// subtree members must all still be delivered through repair.
func TestLeaveExcisesSubtree(t *testing.T) {
	m := mesh.New2D(8, 8)
	const k, bytes = 14, 512
	ch, root := meshGroup(m, 9, k)
	tend := calibrate(t, m, ch, bytes)
	tab := core.BinomialTable{Max: k}

	positions := make([]int, k)
	for i := range positions {
		positions[i] = i
	}
	sends, err := plan.RepairSends(tab, positions, root)
	if err != nil {
		t.Fatal(err)
	}
	leaver := ch[sends[0].To]
	posL := sends[0].To
	sched := member.Schedule{
		Members: append([]int{ch[root]}, without(ch, ch[root])...),
		Events:  []member.Event{{At: 1, Kind: member.KindLeave, Node: leaver}},
		Horizon: 4096,
	}
	res := run(t, m, tab, ch, sched, bytes, tend, recov.RepairIncremental)
	if res.Member[posL] || !res.Alive[posL] || res.Oracle[posL] {
		t.Fatalf("leaver still in contract: %+v", res)
	}
	if res.Left != 1 || res.Dead != 0 {
		t.Fatalf("leave accounting wrong: %+v", res)
	}
	if res.Delivered != k-2 || res.Undelivered != 0 {
		t.Fatalf("stranded subtree not repaired: %+v", res)
	}
}

// TestCrashRejoinRedelivered: a member crashes mid-run (losing whatever
// it held) and rejoins after its outage; it must be re-delivered and
// the final membership made whole.
func TestCrashRejoinRedelivered(t *testing.T) {
	m := mesh.New2D(8, 8)
	const k, bytes = 10, 512
	ch, root := meshGroup(m, 13, k)
	tend := calibrate(t, m, ch, bytes)
	victimPos := (root + 1) % k
	victim := ch[victimPos]
	const crashAt, downFor = 1, 6000

	sched := member.Schedule{
		Members: append([]int{ch[root]}, without(ch, ch[root])...),
		Events: []member.Event{
			{At: crashAt, Kind: member.KindCrash, Node: victim, Until: crashAt + downFor},
			{At: crashAt + downFor, Kind: member.KindRejoin, Node: victim},
		},
		Outages: []fault.NodeOutage{{Node: victim, From: crashAt, To: crashAt + downFor}},
		Horizon: 8192,
	}
	res := run(t, m, core.BinomialTable{Max: k}, ch, sched, bytes, tend, recov.RepairIncremental)
	if !res.Member[victimPos] || !res.Alive[victimPos] {
		t.Fatalf("rejoined member not restored: %+v", res)
	}
	if res.Deliveries[victimPos] < crashAt+downFor {
		t.Fatalf("victim delivery %d predates its rejoin at %d", res.Deliveries[victimPos], crashAt+downFor)
	}
	if res.Delivered != k-1 || res.Undelivered != 0 || res.Dead != 0 {
		t.Fatalf("membership not made whole: %+v", res)
	}
}
