package member

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/mcastsim"
	"repro/internal/model"
	"repro/internal/plan"
	recov "repro/internal/recover"
	"repro/internal/sim"
	"repro/internal/wormhole"
)

// Config parameterizes one churned multicast execution. The reliability
// knobs mirror recover.Config exactly — the engine is the recovery
// layer's drive loop extended with membership events.
type Config struct {
	// Sim carries the software costs and the MaxCycles safety net.
	Sim mcastsim.Config
	// TEnd is the calibrated healthy unicast latency anchoring every
	// delivery deadline. Required.
	TEnd model.Time
	// SlackNum/SlackDen scale TEnd into the per-send deadline (default
	// 3/1).
	SlackNum, SlackDen int64
	// MaxRetries is the per-assignment retransmission budget (default
	// 3; negative: none).
	MaxRetries int
	// BackoffBase is the retransmission backoff base (default
	// max(TEnd/4, 1)).
	BackoffBase int64
	// ChurnLimit is the binomial-degradation threshold (default 2+k/4;
	// negative disables).
	ChurnLimit int
	// Repair selects the re-planning policy, recover's ladder: full,
	// incremental (graft, then full past half the churn limit), or
	// binomial from the start.
	Repair recov.RepairPolicy
	// DegreeCap, when positive, plans every tree with the
	// degree-bounded planner instead of the one-port split table.
	DegreeCap int
	// Seed drives the deterministic backoff jitter.
	Seed uint64
}

// Result reports one churned multicast execution. All per-position
// slices are indexed by chain position.
type Result struct {
	// Latency is the latest delivery completion among the members still
	// subscribed and alive at quiesce, from start at 0.
	Latency int64
	// Deliveries is each position's delivery-complete time, -1 if
	// undelivered at quiesce (crash amnesia erases earlier deliveries).
	Deliveries []int64
	// Member marks the positions subscribed at quiesce; Alive the
	// positions not permanently crashed. The delivery contract is owed
	// to Member && Alive positions only.
	Member, Alive []bool
	// Oracle is the membership-and-fault-reachable oracle: the closure
	// of idle-fabric routability over Member && Alive positions from
	// the source. At quiesce Delivered positions must be a subset of
	// it, and under pure node churn exactly equal.
	Oracle []bool
	// Delivered and Undelivered count the non-source Member && Alive
	// positions by outcome; Left counts members that unsubscribed, Dead
	// the permanently crashed.
	Delivered, Undelivered, Left, Dead int
	// Overhead itemizes the recovery cost (sends, retransmits, repairs,
	// orphan re-assignments), as in recover.Result.
	Overhead mcastsim.Overhead
	// Grafts counts the join/rejoin graft sends, disjoint from
	// Overhead.OrphanSends.
	Grafts int64
	// Events is the number of churn events applied.
	Events int
	// FallbackAt is the cycle the policy degraded to binomial, -1 if
	// never.
	FallbackAt int64
	// Worms counts fabric messages that completed.
	Worms int64
}

const (
	pairUntried uint8 = iota
	pairUnroutable
)

// xfer is one delivery assignment, as in the recovery layer.
type xfer struct {
	from, to int
	live     []int
	attempt  int
	seq      int
	adopted  bool
	worm     *wormhole.Worm
	done     bool
}

type runner struct {
	net    *wormhole.Network
	tab    core.SplitTable
	fb     core.SplitTable
	ch     chain.Chain
	root   int
	bytes  int
	cfg    Config
	events *sim.EventQueue
	rng    *sim.RNG
	t0     int64
	res    Result

	tSend, tRecv, tHold int64
	timeout             int64
	maxRetry            int
	churnLimit          int
	incrLimit           int

	delivered  []bool
	wanted     []bool
	ever       []bool
	down       []int64 // 0: up; else outage end (fault.Forever: permanent)
	orphan     []bool
	joinOrphan []bool // orphaned by a join/rejoin: its send counts as a graft
	inflight   []int  // outstanding xfers targeting the position
	nextFree   []int64
	pair       []uint8
	hop        []int32
	xfers      []*xfer
	unBuf      []*wormhole.Worm
	churn      int
	fallback   bool
	runErr     error
}

// Run executes a reliable multicast of msgBytes while the churn
// schedule fires. ch must contain every address the schedule mentions —
// the initial members and every joiner — in architecture order; the
// schedule's outage windows must already be compiled into net's fault
// plan (fault.Spec.NodeOutages), since the plan is immutable once worms
// are in flight. The run is a pure function of its arguments: reruns,
// kernels and parallelism levels produce bit-identical Results.
func Run(net *wormhole.Network, tab core.SplitTable, ch chain.Chain, sched Schedule, msgBytes int, cfg Config) (Result, error) {
	if err := ch.Validate(); err != nil {
		return Result{}, err
	}
	if err := sched.Validate(); err != nil {
		return Result{}, err
	}
	k := len(ch)
	if k > tab.K() {
		return Result{}, fmt.Errorf("member: chain of %d nodes exceeds split table K=%d", k, tab.K())
	}
	if msgBytes < 0 {
		return Result{}, fmt.Errorf("member: negative message size %d", msgBytes)
	}
	pos := make(map[int]int, k)
	for i, a := range ch {
		if a < 0 || a >= net.Topology().NumNodes() {
			return Result{}, fmt.Errorf("member: chain address %d outside fabric of %d nodes", a, net.Topology().NumNodes())
		}
		pos[a] = i
	}
	for _, a := range sched.Members {
		if _, ok := pos[a]; !ok {
			return Result{}, fmt.Errorf("member: initial member %d not in chain", a)
		}
	}
	for i, e := range sched.Events {
		if _, ok := pos[e.Node]; !ok {
			return Result{}, fmt.Errorf("member: event %d node %d not in chain", i, e.Node)
		}
	}
	if err := net.Quiesced(); err != nil {
		return Result{}, fmt.Errorf("member: fabric not idle: %w", err)
	}
	if cfg.TEnd <= 0 {
		return Result{}, fmt.Errorf("member: Config.TEnd must be the calibrated unicast latency, got %d", cfg.TEnd)
	}
	if cfg.SlackNum == 0 && cfg.SlackDen == 0 {
		cfg.SlackNum, cfg.SlackDen = 3, 1
	}
	if cfg.SlackNum <= 0 || cfg.SlackDen <= 0 || cfg.SlackNum < cfg.SlackDen {
		return Result{}, fmt.Errorf("member: slack %d/%d invalid (need a ratio >= 1)", cfg.SlackNum, cfg.SlackDen)
	}
	if cfg.BackoffBase < 0 {
		return Result{}, fmt.Errorf("member: negative BackoffBase %d", cfg.BackoffBase)
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = cfg.TEnd / 4
		if cfg.BackoffBase < 1 {
			cfg.BackoffBase = 1
		}
	}
	maxRetry := cfg.MaxRetries
	switch {
	case maxRetry == 0:
		maxRetry = 3
	case maxRetry < 0:
		maxRetry = 0
	}
	churnLimit := cfg.ChurnLimit
	if churnLimit == 0 {
		churnLimit = 2 + k/4
	}
	if cfg.Repair > recov.RepairBinomial {
		return Result{}, fmt.Errorf("member: unknown repair policy %d", cfg.Repair)
	}
	if cfg.DegreeCap < 0 {
		return Result{}, fmt.Errorf("member: negative degree cap %d", cfg.DegreeCap)
	}
	incrLimit := -1
	if cfg.Repair == recov.RepairIncremental && churnLimit > 0 {
		incrLimit = churnLimit / 2
		if incrLimit < 1 {
			incrLimit = 1
		}
	}

	r := &runner{
		net:        net,
		tab:        tab,
		fb:         core.BinomialTable{Max: k},
		ch:         ch,
		bytes:      msgBytes,
		cfg:        cfg,
		events:     new(sim.EventQueue),
		rng:        sim.NewRNG(cfg.Seed ^ 0x7ec0_4e11_ab1e_c0de),
		t0:         net.Now(),
		tSend:      cfg.Sim.Software.Send.At(msgBytes),
		tRecv:      cfg.Sim.Software.Recv.At(msgBytes),
		tHold:      cfg.Sim.Software.Hold.At(msgBytes),
		timeout:    cfg.TEnd * cfg.SlackNum / cfg.SlackDen,
		maxRetry:   maxRetry,
		churnLimit: churnLimit,
		incrLimit:  incrLimit,
		delivered:  make([]bool, k),
		wanted:     make([]bool, k),
		ever:       make([]bool, k),
		down:       make([]int64, k),
		orphan:     make([]bool, k),
		joinOrphan: make([]bool, k),
		inflight:   make([]int, k),
		nextFree:   make([]int64, k),
		pair:       make([]uint8, k*k),
		hop:        make([]int32, k*k),
		res: Result{
			Deliveries: make([]int64, k),
			Member:     make([]bool, k),
			Alive:      make([]bool, k),
			FallbackAt: -1,
		},
	}
	for i := range r.res.Deliveries {
		r.res.Deliveries[i] = -1
	}
	if cfg.Repair == recov.RepairBinomial {
		r.fallback = true
		r.res.FallbackAt = 0
	}
	r.root = pos[sched.Members[0]]
	live := make([]int, 0, len(sched.Members))
	for _, a := range sched.Members {
		p := pos[a]
		r.wanted[p] = true
		r.ever[p] = true
	}
	for p := 0; p < k; p++ {
		if r.wanted[p] {
			live = append(live, p)
		}
	}

	// Membership events enter the same queue that drives deadlines and
	// backoffs: every membership decision lands at its exact cycle, on
	// every kernel (invariant 11).
	for i := range sched.Events {
		e := sched.Events[i]
		r.events.At(r.t0+e.At, func() { r.apply(e) })
	}
	if len(sched.Events) > 0 {
		// Settle round: once every event has fired and every finite
		// outage has ended, clear the give-up marks (they may encode
		// mid-outage verdicts) and re-drive the stragglers, so quiesce
		// delivery matches the post-churn oracle.
		r.events.At(r.t0+sched.End()+1, r.settle)
	}

	max := cfg.Sim.MaxCycles
	if max <= 0 {
		perMsg := int64(net.Config().Flits(msgBytes+cfg.Sim.AddrBytes*k)) + int64(net.Topology().NumChannels())
		soft := r.tSend + r.tRecv + r.tHold
		base := (perMsg+soft+1024)*int64(k+1)*4 + 1<<20
		perAssign := (r.timeout + cfg.BackoffBase<<7) * int64(maxRetry+1)
		max = base + int64(k+2)*int64(k+2)*perAssign + sched.End()
	}
	deadline := r.t0 + max

	startStats := net.Stats()
	r.deliverAt(r.root, live, r.t0, nil)
	for r.runErr == nil && (r.events.Len() > 0 || net.Active() > 0) {
		if net.Active() == 0 {
			if next := r.events.NextTime(); next > net.Now() {
				net.AdvanceTo(next)
			}
		}
		r.events.RunDue(net.Now())
		if r.runErr != nil || (net.Active() == 0 && r.events.Len() == 0) {
			break
		}
		if net.Active() > 0 {
			limit := deadline + 1
			if limit <= net.Now() {
				limit = net.Now() + 1
			}
			if r.events.Len() > 0 && r.events.NextTime() < limit {
				limit = r.events.NextTime()
			}
			net.StepUntil(limit)
			r.reclaimFrozen()
			if err := net.Err(); err != nil {
				return Result{}, fmt.Errorf("member: %w; %s", err, net.DeadlockReport(8))
			}
			if net.Now() > deadline {
				return Result{}, fmt.Errorf("member: run not complete after %d cycles; %s", max, net.DeadlockReport(8))
			}
		}
	}
	if r.runErr != nil {
		return Result{}, r.runErr
	}
	if err := net.Quiesced(); err != nil {
		return Result{}, fmt.Errorf("member: fabric did not quiesce: %w", err)
	}

	for p := 0; p < k; p++ {
		alive := r.down[p] == 0
		r.res.Member[p] = r.wanted[p]
		r.res.Alive[p] = alive
		if p == r.root {
			continue
		}
		switch {
		case r.wanted[p] && alive:
			if r.delivered[p] {
				r.res.Delivered++
				if d := r.res.Deliveries[p]; d > r.res.Latency {
					r.res.Latency = d
				}
			} else {
				r.res.Undelivered++
			}
		case r.wanted[p]:
			r.res.Dead++
		case r.ever[p]:
			r.res.Left++
		}
	}
	in := make([]bool, k)
	for p := 0; p < k; p++ {
		in[p] = r.res.Member[p] && r.res.Alive[p]
	}
	r.res.Oracle = ReachableAmong(net.Topology(), net.Faults(), ch, r.root, in)
	end := net.Stats()
	r.res.Worms = end.Worms - startStats.Worms
	return r.res, nil
}

// apply executes one membership event at its exact cycle.
func (r *runner) apply(e Event) {
	now := r.net.Now()
	p := r.posOf(e.Node)
	r.res.Events++
	switch e.Kind {
	case KindJoin:
		r.wanted[p] = true
		r.ever[p] = true
		if !r.delivered[p] && r.inflight[p] == 0 {
			r.orphan[p] = true
			r.joinOrphan[p] = true
		}
	case KindLeave:
		r.wanted[p] = false
		r.orphan[p] = false
		r.joinOrphan[p] = false
		if !r.delivered[p] {
			r.excise(p, now)
		}
	case KindCrash:
		r.down[p] = e.Until
		if r.delivered[p] {
			// Amnesia: whatever the node held is gone with it.
			r.delivered[p] = false
			r.res.Deliveries[p] = -1
		}
		r.orphan[p] = false
		r.joinOrphan[p] = false
		r.excise(p, now)
	case KindRejoin:
		r.down[p] = 0
		r.wanted[p] = true
		if !r.delivered[p] && r.inflight[p] == 0 {
			r.orphan[p] = true
			r.joinOrphan[p] = true
		}
	}
	r.assignOrphans(now)
}

// posOf maps a fabric address to its chain position (validated at Run
// entry, so a miss is an internal fault).
func (r *runner) posOf(addr int) int {
	for i, a := range r.ch {
		if a == addr {
			return i
		}
	}
	r.fault(fmt.Errorf("member: address %d lost from chain", addr))
	return 0
}

// excise withdraws every outstanding assignment touching position p —
// inbound (p can no longer receive) and outbound (p can no longer
// relay). A killed inbound assignment whose sender still stands is a
// tree repair: the stranded subtree is re-planned per the configured
// policy from that sender (this is where incremental grafting saves its
// sends over full re-splitting). When the sender itself is the casualty
// the survivors fall to the orphan queue for per-member adoption.
func (r *runner) excise(p int, now int64) {
	for _, x := range r.xfers {
		if x.done || (x.to != p && x.from != p) {
			continue
		}
		r.kill(x)
		rest := r.strandable(x.live, p)
		if len(rest) == 0 {
			continue
		}
		if x.to == p && r.senderStands(x.from) {
			r.noteChurn(now)
			r.repairRest(x.from, rest, now)
		} else {
			for _, q := range rest {
				r.orphan[q] = true
			}
		}
	}
}

// strandable filters live down to the positions still owed delivery and
// not assigned elsewhere, skipping position skip, preserving order.
func (r *runner) strandable(live []int, skip int) []int {
	rest := make([]int, 0, len(live))
	for _, q := range live {
		if q == skip || !r.wanted[q] || r.delivered[q] || r.down[q] != 0 || r.inflight[q] > 0 {
			continue
		}
		rest = append(rest, q)
	}
	return rest
}

// senderStands reports whether a position can still act as a repair
// sender: delivered, subscribed and up.
func (r *runner) senderStands(p int) bool {
	return r.delivered[p] && r.wanted[p] && r.down[p] == 0
}

// noteChurn advances the graceful-degradation counter for one repair
// event and records the binomial flip when the limit is hit.
func (r *runner) noteChurn(now int64) {
	r.churn++
	if !r.fallback && r.churnLimit >= 0 && r.churn >= r.churnLimit {
		r.fallback = true
		r.res.FallbackAt = now - r.t0
	}
}

// repairRest re-plans the stranded subtree rest from the standing
// sender per the configured policy: one graft send while the
// incremental budget lasts, a full re-split otherwise.
func (r *runner) repairRest(from int, rest []int, now int64) {
	if r.cfg.Repair == recov.RepairIncremental && !r.fallback && (r.incrLimit < 0 || r.churn <= r.incrLimit) {
		r.graft(from, rest, now)
		return
	}
	liveSelf := make([]int, 0, len(rest)+1)
	placed := false
	for _, p := range rest {
		if !placed && from < p {
			liveSelf = append(liveSelf, from)
			placed = true
		}
		liveSelf = append(liveSelf, p)
	}
	if !placed {
		liveSelf = append(liveSelf, from)
	}
	r.spawn(from, liveSelf, now, true, true)
}

// kill terminates an assignment: the in-flight worm (if any) is
// withdrawn and the xfer's pending events are invalidated. Assignments
// whose fabric delivery already completed (done, receive pending) are
// resolved by deliverAt instead.
func (r *runner) kill(x *xfer) {
	if x.done {
		return
	}
	if x.worm != nil {
		r.net.Cancel(x.worm)
		r.res.Overhead.Cancelled++
		x.worm = nil
	}
	x.done = true
	x.seq++
	r.inflight[x.to]--
}

// newXfer creates and registers an assignment targeting to.
func (r *runner) newXfer(from, to int, live []int, adopted bool) *xfer {
	x := &xfer{from: from, to: to, live: live, adopted: adopted}
	r.xfers = append(r.xfers, x)
	r.inflight[to]++
	r.orphan[to] = false
	return x
}

// deliverAt records a delivery at position self with responsibility for
// live. A crash between fabric arrival and software-receive completion
// loses the message (amnesia), so a delivery into a down node is
// dropped.
func (r *runner) deliverAt(self int, live []int, t int64, via *xfer) {
	if via != nil {
		r.inflight[self]--
	}
	if r.down[self] != 0 {
		// The receiver crashed mid-receive; its subtree members fall to
		// the orphan queue.
		for _, q := range r.strandable(live, self) {
			r.orphan[q] = true
		}
		r.assignOrphans(t)
		return
	}
	if r.delivered[self] {
		r.fault(fmt.Errorf("member: duplicate delivery to chain position %d", self))
		return
	}
	r.delivered[self] = true
	r.orphan[self] = false
	r.res.Deliveries[self] = t - r.t0
	if self != r.root && !r.wanted[self] {
		// The receiver unsubscribed mid-flight: it keeps the payload (so
		// a later re-join needs no re-delivery) but relays nothing.
		for _, q := range r.strandable(live, self) {
			r.orphan[q] = true
		}
		r.assignOrphans(t)
		return
	}
	rest := r.filterLive(live, self)
	if len(rest) > 1 {
		r.spawn(self, rest, t, via != nil && via.adopted, false)
	}
	r.assignOrphans(t)
}

// filterLive keeps self plus the positions still owed delivery and not
// already assigned elsewhere, preserving ascending order.
func (r *runner) filterLive(live []int, self int) []int {
	out := make([]int, 0, len(live))
	for _, p := range live {
		if p == self || (r.wanted[p] && !r.delivered[p] && r.down[p] == 0 && r.inflight[p] == 0) {
			out = append(out, p)
		}
	}
	return out
}

// spawn plans and issues self's sends for the live positions.
func (r *runner) spawn(self int, live []int, t int64, adopted, repair bool) {
	var sends []plan.RepairSend
	var err error
	if r.cfg.DegreeCap > 0 {
		sends, err = plan.DegreeSends(live, self, r.cfg.DegreeCap)
	} else {
		tab := r.tab
		if r.fallback {
			tab = r.fb
		}
		sends, err = plan.RepairSends(tab, live, self)
	}
	if err != nil {
		r.fault(err)
		return
	}
	for _, snd := range sends {
		x := r.newXfer(self, snd.To, snd.Live, adopted || repair)
		if repair {
			r.res.Overhead.RepairSends++
		}
		r.issue(x, t)
	}
}

// issue schedules one transmission of x (one-port pacing, delivery
// deadline armed), exactly as the recovery layer does.
func (r *runner) issue(x *xfer, notBefore int64) {
	at := notBefore
	if nf := r.nextFree[x.from]; nf > at {
		at = nf
	}
	r.nextFree[x.from] = at + r.tHold
	x.seq++
	seq := x.seq
	r.events.At(at+r.tSend, func() { r.inject(x, seq) })
	r.events.At(at+r.timeout, func() { r.expire(x, seq) })
	r.res.Overhead.Sends++
}

func (r *runner) inject(x *xfer, seq int) {
	if x.done || x.seq != seq {
		return
	}
	bytes := r.bytes + r.cfg.Sim.AddrBytes*(len(x.live)-1)
	src := wormhole.NodeID(r.ch[x.from])
	dst := wormhole.NodeID(r.ch[x.to])
	x.worm = r.net.Send(src, dst, bytes, x, func(_ *wormhole.Worm, now int64) {
		// The assignment stays in flight (inflight held) through the
		// software receive: a churn event landing in that window must not
		// re-target the position.
		x.done = true
		x.worm = nil
		r.events.At(now+r.tRecv, func() { r.deliverAt(x.to, x.live, now+r.tRecv, x) })
	})
}

func (r *runner) expire(x *xfer, seq int) {
	if x.done || x.seq != seq {
		return
	}
	r.fail(x, false)
}

// reclaimFrozen cancels worms the fault layer froze (no live route) and
// routes their assignments into the retry/give-up path immediately.
func (r *runner) reclaimFrozen() {
	r.unBuf = r.net.Unreachable(r.unBuf[:0])
	for _, w := range r.unBuf {
		x, ok := w.Tag.(*xfer)
		if !ok {
			r.fault(fmt.Errorf("member: frozen worm %d carries foreign tag %T", w.ID, w.Tag))
			return
		}
		r.fail(x, true)
	}
}

// fail handles a lost send: retry with backoff, or give up when the
// budget is spent, the route is provably dead, or the target is known
// down or unsubscribed (retrying those cannot help; the rejoin or the
// orphan queue will re-drive delivery when it becomes possible).
func (r *runner) fail(x *xfer, frozen bool) {
	if x.done {
		return
	}
	if x.worm != nil {
		r.net.Cancel(x.worm)
		r.res.Overhead.Cancelled++
		x.worm = nil
	}
	x.seq++
	now := r.net.Now()
	if !r.wanted[x.to] && r.down[x.to] == 0 {
		// The target unsubscribed mid-flight; drop the assignment but
		// keep its subtree members in play.
		r.kill(x)
		if rest := r.strandable(x.live, x.to); len(rest) > 0 {
			if r.senderStands(x.from) {
				r.repairRest(x.from, rest, now)
			} else {
				for _, q := range rest {
					r.orphan[q] = true
				}
			}
		}
		r.assignOrphans(now)
		return
	}
	give := x.attempt >= r.maxRetry
	if r.down[x.to] != 0 {
		give = true
	}
	if frozen && !r.routable(x.from, x.to) {
		give = true
	}
	if give {
		r.giveUp(x, now)
		return
	}
	x.attempt++
	r.res.Overhead.Retransmits++
	r.issue(x, now+recov.Backoff(r.cfg.BackoffBase, x.attempt, r.rng))
}

// giveUp declares the pair lost, repairs the stranded subtree per the
// configured policy, and queues the target for later re-delivery if it
// is still owed one.
func (r *runner) giveUp(x *xfer, now int64) {
	k := len(r.ch)
	r.pair[x.from*k+x.to] = pairUnroutable
	r.res.Overhead.Repairs++
	r.noteChurn(now)
	x.done = true
	r.inflight[x.to]--
	if r.wanted[x.to] && r.down[x.to] == 0 {
		r.orphan[x.to] = true
	}
	if rest := r.strandable(x.live, x.to); len(rest) > 0 {
		r.repairRest(x.from, rest, now)
	}
	r.assignOrphans(now)
}

// graft hands the stranded members whole to the one nearest the sender
// by hop distance (ties to the lowest position) in a single repair
// send; unroutable strands become orphans.
func (r *runner) graft(from int, rest []int, now int64) {
	k := len(r.ch)
	h, bestD := -1, 0
	for _, p := range rest {
		if r.pair[from*k+p] == pairUnroutable {
			continue
		}
		d := r.hopDist(from, p)
		if d < 0 {
			continue
		}
		if h < 0 || d < bestD {
			h, bestD = p, d
		}
	}
	if h < 0 {
		for _, p := range rest {
			r.orphan[p] = true
		}
		return
	}
	x := r.newXfer(from, h, rest, true)
	r.res.Overhead.RepairSends++
	r.issue(x, now)
}

// assignOrphans re-drives every queued orphan from the delivered,
// subscribed, alive member nearest it by hop distance (ties to the
// lowest position). Join/rejoin orphans count as grafts.
func (r *runner) assignOrphans(now int64) {
	k := len(r.ch)
	for c := 0; c < k; c++ {
		if !r.orphan[c] || r.delivered[c] || r.down[c] != 0 || r.inflight[c] > 0 {
			continue
		}
		best, bestD := -1, 0
		for s := 0; s < k; s++ {
			if s == c || !r.delivered[s] || !r.wanted[s] || r.down[s] != 0 || r.pair[s*k+c] == pairUnroutable {
				continue
			}
			d := r.hopDist(s, c)
			if d < 0 {
				continue
			}
			if best < 0 || d < bestD {
				best, bestD = s, d
			}
		}
		if best < 0 {
			continue
		}
		if r.joinOrphan[c] {
			r.joinOrphan[c] = false
			r.res.Grafts++
		} else {
			r.res.Overhead.OrphanSends++
		}
		x := r.newXfer(best, c, []int{c}, true)
		r.issue(x, now)
	}
}

// settle fires after the last event and the last finite outage: give-up
// verdicts reached mid-outage no longer hold, so the pair marks are
// cleared and every straggler is re-driven against the settled fabric.
func (r *runner) settle() {
	for i := range r.pair {
		r.pair[i] = pairUntried
	}
	k := len(r.ch)
	for p := 0; p < k; p++ {
		if r.wanted[p] && r.down[p] == 0 && !r.delivered[p] && r.inflight[p] == 0 {
			r.orphan[p] = true
		}
	}
	r.assignOrphans(r.net.Now())
}

// hopDist caches the idle-fabric hop-distance oracle per position pair.
func (r *runner) hopDist(a, b int) int {
	i := a*len(r.ch) + b
	if v := r.hop[i]; v != 0 {
		if v < 0 {
			return -1
		}
		return int(v - 1)
	}
	d := recov.HopDistance(r.net.Topology(), r.net.Faults(), wormhole.NodeID(r.ch[a]), wormhole.NodeID(r.ch[b]))
	if d < 0 {
		r.hop[i] = -1
	} else {
		r.hop[i] = int32(d + 1)
	}
	return d
}

func (r *runner) routable(a, b int) bool { return r.hopDist(a, b) >= 0 }

func (r *runner) fault(err error) {
	if r.runErr == nil {
		r.runErr = err
	}
}
