// Package member models dynamic multicast membership under churn:
// nodes join, leave, crash and rejoin while a multicast is in flight.
// It has two halves:
//
//   - GenSchedule draws a seeded churn schedule — join/leave/crash/
//     rejoin events plus the node-outage windows the crashes imply —
//     from dedicated RNG streams, entirely before any fabric stepping.
//     The schedule (and therefore the whole run) is a pure function of
//     its spec, so churn experiments stay deterministic across reruns,
//     kernels and shard merges, and the outage windows can be compiled
//     into the immutable fault.Plan before the network carries a
//     single flit (wormhole.Network.SetFaults refuses changes with
//     active worms, deliberately).
//
//   - Run executes one reliable multicast while the schedule fires:
//     membership events are entries in the same event queue that
//     drives timeouts and backoffs, so every membership decision
//     happens at an exact cycle (DESIGN.md invariant 11). Crashes
//     excise the victim's subtree and re-parent the survivors onto the
//     nearest delivered members; joins and rejoins are grafted onto
//     the nearest delivered member in one send; repair follows the
//     configured recover.RepairPolicy ladder.
//
// The correctness contract at quiesce: the delivered set over the
// final alive membership equals the membership-and-fault-reachable
// oracle — what a closure of idle-fabric routability over the
// surviving members can possibly reach — bit-identically across the
// fast, reference and domain-parallel kernels.
package member

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/sim"
)

// Kind classifies one churn event.
type Kind uint8

const (
	// KindJoin adds a node from the candidate pool to the group.
	KindJoin Kind = iota
	// KindLeave removes a member gracefully: the node stays up but
	// unsubscribes, so it is no longer owed delivery nor asked to relay
	// new work.
	KindLeave
	// KindCrash takes the member's node down: both its fabric channels
	// refuse flits for the outage window, and anything it had received
	// is lost (rejoin starts from amnesia).
	KindCrash
	// KindRejoin marks the end of a crash outage: the node is back up
	// and re-subscribes, needing delivery again.
	KindRejoin
)

func (k Kind) String() string {
	switch k {
	case KindJoin:
		return "join"
	case KindLeave:
		return "leave"
	case KindCrash:
		return "crash"
	case KindRejoin:
		return "rejoin"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one membership change at an exact cycle.
type Event struct {
	// At is the cycle the event takes effect, relative to run start.
	At int64
	// Kind is the event class.
	Kind Kind
	// Node is the fabric node address affected. Never the source.
	Node int
	// Until is the crash outage end (start + DownCycles, or
	// fault.Forever for a permanent crash); zero for other kinds.
	Until int64
}

// Schedule is a complete churn scenario: the initial membership, the
// time-ordered events, and the node-outage windows the crashes imply,
// ready to merge into a fault.Spec before the run starts.
type Schedule struct {
	// Members is the initial group membership; Members[0] is the
	// multicast source and is never churned.
	Members []int
	// Events is the event list, ascending by At (rejoins ordered before
	// same-cycle draws).
	Events []Event
	// Outages are the crash windows, one per KindCrash event, valid for
	// fault.Spec.NodeOutages.
	Outages []fault.NodeOutage
	// Horizon is the scheduling horizon the events were drawn over.
	Horizon int64
}

// ChurnSpec parameterizes a seeded churn schedule.
type ChurnSpec struct {
	// RatePerMcycle is the expected number of churn events per million
	// cycles; the event count is RatePerMcycle * Horizon / 1e6 rounded.
	RatePerMcycle float64
	// Horizon is the window (in cycles, from run start) events are
	// drawn over. Required.
	Horizon int64
	// RejoinFrac is the probability a crash schedules a rejoin after
	// DownCycles instead of being permanent.
	RejoinFrac float64
	// DownCycles is the outage length for rejoining crashes (default
	// 4096).
	DownCycles int64
	// Seed selects the schedule; times, kinds and node picks come from
	// three dedicated streams so varying one axis cannot shift another.
	Seed uint64
}

// Seed-stream separators for the three draw streams.
const (
	seedTimes = 0x9e37_79b9_7f4a_7c15
	seedKinds = 0xc2b2_ae3d_27d4_eb4f
	seedPicks = 0x1656_67b1_9e37_79f9
)

// GenSchedule draws a churn schedule over the initial members and the
// joiner pool. members[0] is the source and is never churned; pool
// holds the node addresses joins draw from, disjoint from members. The
// same (spec, members, pool) always yields the same schedule.
func GenSchedule(spec ChurnSpec, members, pool []int) (Schedule, error) {
	if len(members) < 2 {
		return Schedule{}, fmt.Errorf("member: need a source and at least one destination, got %d members", len(members))
	}
	if spec.Horizon < 1 {
		return Schedule{}, fmt.Errorf("member: Horizon %d < 1", spec.Horizon)
	}
	if spec.RatePerMcycle < 0 {
		return Schedule{}, fmt.Errorf("member: negative churn rate %g", spec.RatePerMcycle)
	}
	if spec.RejoinFrac < 0 || spec.RejoinFrac > 1 {
		return Schedule{}, fmt.Errorf("member: RejoinFrac %g outside [0,1]", spec.RejoinFrac)
	}
	if spec.DownCycles < 0 {
		return Schedule{}, fmt.Errorf("member: negative DownCycles %d", spec.DownCycles)
	}
	if spec.DownCycles == 0 {
		spec.DownCycles = 4096
	}
	seen := make(map[int]bool, len(members)+len(pool))
	for _, n := range members {
		if seen[n] {
			return Schedule{}, fmt.Errorf("member: duplicate member address %d", n)
		}
		seen[n] = true
	}
	for _, n := range pool {
		if seen[n] {
			return Schedule{}, fmt.Errorf("member: pool address %d duplicates a member or pool entry", n)
		}
		seen[n] = true
	}

	n := int(spec.RatePerMcycle*float64(spec.Horizon)/1e6 + 0.5)
	sched := Schedule{
		Members: append([]int(nil), members...),
		Horizon: spec.Horizon,
	}
	if n == 0 {
		return sched, nil
	}

	rngT := sim.NewRNG(spec.Seed ^ seedTimes)
	rngK := sim.NewRNG(spec.Seed ^ seedKinds)
	rngN := sim.NewRNG(spec.Seed ^ seedPicks)

	// Draw all event times first (the dedicated stream), strictly
	// ascending so same-cycle draw order can never matter.
	times := make([]int64, n)
	for i := range times {
		times[i] = 1 + int64(rngT.Uint64()%uint64(spec.Horizon))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for i := 1; i < n; i++ {
		if times[i] <= times[i-1] {
			times[i] = times[i-1] + 1
		}
	}

	// Walk the times, maintaining the membership model: active members
	// eligible for leave/crash (source excluded), the joiner pool, and
	// crashed members pending rejoin.
	active := append([]int(nil), members[1:]...)
	avail := append([]int(nil), pool...)
	type pending struct {
		at   int64
		node int
	}
	var rejoins []pending
	flush := func(upTo int64) {
		for len(rejoins) > 0 && rejoins[0].at <= upTo {
			p := rejoins[0]
			rejoins = rejoins[1:]
			sched.Events = append(sched.Events, Event{At: p.at, Kind: KindRejoin, Node: p.node})
			active = append(active, p.node)
		}
	}
	for _, t := range times {
		flush(t)
		kind := Kind(rngK.Uint64() % 3)
		// Fall back across kinds when the drawn one has no eligible
		// node, so the schedule keeps its event budget when it can.
		if kind == KindJoin && len(avail) == 0 {
			kind = KindCrash
		}
		if (kind == KindLeave || kind == KindCrash) && len(active) == 0 {
			kind = KindJoin
		}
		switch kind {
		case KindJoin:
			if len(avail) == 0 {
				continue
			}
			i := int(rngN.Uint64() % uint64(len(avail)))
			node := avail[i]
			avail = append(avail[:i], avail[i+1:]...)
			active = append(active, node)
			sched.Events = append(sched.Events, Event{At: t, Kind: KindJoin, Node: node})
		case KindLeave:
			i := int(rngN.Uint64() % uint64(len(active)))
			node := active[i]
			active = append(active[:i], active[i+1:]...)
			// A graceful leaver may subscribe again: it goes back to the
			// joiner pool (it even kept the payload, the engine knows).
			avail = append(avail, node)
			sched.Events = append(sched.Events, Event{At: t, Kind: KindLeave, Node: node})
		case KindCrash:
			i := int(rngN.Uint64() % uint64(len(active)))
			node := active[i]
			active = append(active[:i], active[i+1:]...)
			until := fault.Forever
			if spec.RejoinFrac > 0 && float64(rngK.Uint64()%1_000_000) < spec.RejoinFrac*1_000_000 {
				until = t + spec.DownCycles
				rejoins = append(rejoins, pending{at: until, node: node})
				sort.Slice(rejoins, func(a, b int) bool { return rejoins[a].at < rejoins[b].at })
			}
			sched.Events = append(sched.Events, Event{At: t, Kind: KindCrash, Node: node, Until: until})
			sched.Outages = append(sched.Outages, fault.NodeOutage{Node: node, From: t, To: until})
		}
	}
	flush(fault.Forever - 1)
	return sched, nil
}

// End returns the cycle by which every event has fired and every
// finite outage has ended — the earliest cycle the engine may schedule
// its settle round at.
func (s Schedule) End() int64 {
	end := int64(0)
	for _, e := range s.Events {
		if e.At > end {
			end = e.At
		}
	}
	for _, o := range s.Outages {
		if o.To != fault.Forever && o.To > end {
			end = o.To
		}
	}
	return end
}

// Validate checks the schedule's structural invariants: events
// time-ordered, crash/rejoin pairing consistent, no event touching the
// source.
func (s Schedule) Validate() error {
	if len(s.Members) < 2 {
		return fmt.Errorf("member: schedule has %d members", len(s.Members))
	}
	src := s.Members[0]
	down := map[int]bool{}
	var prev int64
	crashes := 0
	for i, e := range s.Events {
		if e.At < prev {
			return fmt.Errorf("member: event %d at %d before its predecessor at %d", i, e.At, prev)
		}
		prev = e.At
		if e.Node == src {
			return fmt.Errorf("member: event %d churns the source node %d", i, src)
		}
		switch e.Kind {
		case KindCrash:
			if down[e.Node] {
				return fmt.Errorf("member: event %d crashes node %d while already down", i, e.Node)
			}
			if e.Until <= e.At {
				return fmt.Errorf("member: event %d crash window [%d,%d) empty", i, e.At, e.Until)
			}
			down[e.Node] = true
			crashes++
		case KindRejoin:
			if !down[e.Node] {
				return fmt.Errorf("member: event %d rejoins node %d that is not down", i, e.Node)
			}
			delete(down, e.Node)
		case KindJoin, KindLeave:
		default:
			return fmt.Errorf("member: event %d has unknown kind %d", i, e.Kind)
		}
	}
	if crashes != len(s.Outages) {
		return fmt.Errorf("member: %d crash events but %d outages", crashes, len(s.Outages))
	}
	return nil
}
