package member_test

// The churn chaos battery: seeded random churn schedules on all four
// fabric families, with and without channel faults underneath, driven
// through the full membership engine. The invariants under test are the
// tentpole's promises — at quiesce the delivered set is a subset of the
// membership-and-fault-reachable oracle, and exactly equal to it under
// pure node churn — plus the determinism contract: bit-identical
// results on reruns, on the fast and reference kernels, and under
// domain-parallel stepping at P in {2, 4}.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bfly"
	"repro/internal/bmin"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mcastsim"
	"repro/internal/member"
	"repro/internal/mesh"
	recov "repro/internal/recover"
	"repro/internal/sim"
	"repro/internal/torus"
	"repro/internal/wormhole"
)

type chaosPlatform struct {
	name string
	topo wormhole.Topology
	less func(a, b int) bool
}

func chaosPlatforms() []chaosPlatform {
	m := mesh.New2D(8, 8)
	tr := torus.New2D(8, 8)
	bm := bmin.New(64, bmin.AscentStraight)
	bf := bfly.New(64)
	return []chaosPlatform{
		{"mesh", m, m.DimOrderLess},
		{"torus", tr, tr.DimOrderLess},
		{"bmin", bm, bm.LexLess},
		{"bfly", bf, bf.LexLess},
	}
}

// churnScenario draws the group, the joiner pool and the churn schedule
// for one (platform, seed) cell.
func churnScenario(t *testing.T, p chaosPlatform, seed uint64) (chain.Chain, member.Schedule) {
	t.Helper()
	const nMembers, nPool = 10, 4
	addrs := sim.NewRNG(seed*77).Sample(p.topo.NumNodes(), nMembers+nPool)
	members, pool := addrs[:nMembers], addrs[nMembers:]
	ch := chain.New(addrs, p.less)
	sched, err := member.GenSchedule(member.ChurnSpec{
		RatePerMcycle: 300,
		Horizon:       40_000,
		RejoinFrac:    0.5,
		DownCycles:    3_000,
		Seed:          seed,
	}, members, pool)
	if err != nil {
		t.Fatal(err)
	}
	return ch, sched
}

// churnChaosRun executes one churn run; fatal on configuration errors
// (the run itself must never error on churn or faults).
func churnChaosRun(t *testing.T, p chaosPlatform, ch chain.Chain, sched member.Schedule, spec fault.Spec,
	bytes int, tend int64, kernel wormhole.Kernel, par int, seed uint64) member.Result {
	t.Helper()
	net := wormhole.New(p.topo, wormhole.DefaultConfig())
	net.SetKernel(kernel)
	if par > 1 {
		net.SetParallelism(par)
		defer net.Close()
	}
	spec.NodeOutages = append(append([]fault.NodeOutage(nil), spec.NodeOutages...), sched.Outages...)
	fp, err := fault.NewPlan(p.topo, spec)
	if err != nil {
		t.Fatal(err)
	}
	net.SetFaults(fp)
	thold := testSoft.Hold.At(bytes)
	tab := core.NewOptTable(len(ch), thold, tend)
	res, err := member.Run(net, tab, ch, sched, bytes, member.Config{
		Sim:    mcastsim.Config{Software: testSoft},
		TEnd:   tend,
		Repair: recov.RepairIncremental,
		Seed:   seed,
	})
	if err != nil {
		t.Fatalf("%s seed %d: churn run errored: %v", p.name, seed, err)
	}
	if err := net.Quiesced(); err != nil {
		t.Fatalf("%s seed %d: fabric not clean after churn run: %v", p.name, seed, err)
	}
	return res
}

// TestChaosChurnInvariant: for every seeded churn schedule, at quiesce
// the delivered positions are a subset of the membership-and-fault-
// reachable oracle — exactly equal under pure node churn — and the
// whole Result is bit-identical across reruns, kernels and parallel
// domain counts.
func TestChaosChurnInvariant(t *testing.T) {
	const bytes = 512
	specs := []struct {
		name string
		spec fault.Spec
	}{
		{"pure-churn", fault.Spec{}},
		{"churn+dead", fault.Spec{DeadFrac: 0.05}},
	}
	sawEvents, sawCrash, sawRepair := false, false, false
	for _, p := range chaosPlatforms() {
		for seed := uint64(1); seed <= 3; seed++ {
			ch, sched := churnScenario(t, p, seed)
			tend := calibrate(t, p.topo, ch, bytes)
			if len(sched.Events) > 0 {
				sawEvents = true
			}
			if len(sched.Outages) > 0 {
				sawCrash = true
			}
			for _, sc := range specs {
				sc.spec.Seed = seed
				name := fmt.Sprintf("%s/%s/seed%d", p.name, sc.name, seed)

				res := churnChaosRun(t, p, ch, sched, sc.spec, bytes, tend, wormhole.KernelFast, 1, seed)
				pure := sc.spec.DeadFrac == 0 && sc.spec.FlakyFrac == 0 && sc.spec.DegradedFrac == 0
				for i := range ch {
					delivered := res.Deliveries[i] >= 0
					inContract := res.Member[i] && res.Alive[i]
					if delivered && inContract && !res.Oracle[i] {
						t.Fatalf("%s: position %d delivered but outside the reachable oracle\n%+v", name, i, res)
					}
					if pure && inContract && res.Oracle[i] && !delivered {
						t.Fatalf("%s: position %d reachable under pure churn but undelivered\n%+v", name, i, res)
					}
					if res.Oracle[i] && !inContract {
						t.Fatalf("%s: oracle includes position %d outside the membership contract", name, i)
					}
				}
				if res.Overhead.Repairs > 0 || res.Overhead.RepairSends > 0 || res.Grafts > 0 {
					sawRepair = true
				}
				if res.Events != len(sched.Events) {
					t.Fatalf("%s: applied %d of %d events", name, res.Events, len(sched.Events))
				}

				again := churnChaosRun(t, p, ch, sched, sc.spec, bytes, tend, wormhole.KernelFast, 1, seed)
				if !reflect.DeepEqual(res, again) {
					t.Fatalf("%s: rerun diverged:\n 1st %+v\n 2nd %+v", name, res, again)
				}
				ref := churnChaosRun(t, p, ch, sched, sc.spec, bytes, tend, wormhole.KernelReference, 1, seed)
				if !reflect.DeepEqual(res, ref) {
					t.Fatalf("%s: kernels diverged:\n fast %+v\n ref  %+v", name, res, ref)
				}
				for _, par := range []int{2, 4} {
					pres := churnChaosRun(t, p, ch, sched, sc.spec, bytes, tend, wormhole.KernelFast, par, seed)
					if !reflect.DeepEqual(res, pres) {
						t.Fatalf("%s: parallel P=%d diverged:\n serial   %+v\n parallel %+v", name, par, res, pres)
					}
				}
			}
		}
	}
	// The battery must actually churn, not vacuously pass on empty
	// schedules.
	if !sawEvents {
		t.Fatal("no schedule drew any events; churn coverage is vacuous")
	}
	if !sawCrash {
		t.Fatal("no schedule drew a crash; excision coverage is vacuous")
	}
	if !sawRepair {
		t.Fatal("no run performed a repair or graft; repair coverage is vacuous")
	}
}
