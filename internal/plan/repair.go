package plan

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/core"
)

// RepairSend is one transmission of a repaired multicast schedule: the
// responsible node transmits to the survivor at chain position To, which
// becomes responsible for the survivor positions Live (ascending; To is
// always an end of Live, mirroring Send.Seg).
type RepairSend struct {
	To   int
	Live []int
}

// RepairSends generalizes Sends to a non-contiguous survivor set: live
// holds the chain positions still needing delivery (strictly ascending,
// including the responsible node's own position self), as left after dead
// members were struck from the original segment. The survivors are
// compacted into a dense sub-chain — striking members from an
// architecture-ordered chain preserves the order, so the paper's
// contention-freedom argument applies to the sub-chain as-is — the split
// algorithm runs over that, and the results are mapped back to original
// chain positions.
//
// For a contiguous live set RepairSends degenerates to exactly Sends:
// healthy runs plan identical trees through either entry point.
func RepairSends(tab core.SplitTable, live []int, self int) ([]RepairSend, error) {
	if len(live) == 0 {
		return nil, fmt.Errorf("plan: repair with no survivors")
	}
	if len(live) > tab.K() {
		return nil, fmt.Errorf("plan: %d survivors exceed split table K=%d", len(live), tab.K())
	}
	selfIdx := -1
	for i, p := range live {
		if i > 0 && live[i-1] >= p {
			return nil, fmt.Errorf("plan: survivor positions not strictly ascending at index %d (%d after %d)", i, p, live[i-1])
		}
		if p == self {
			selfIdx = i
		}
	}
	if selfIdx < 0 {
		return nil, fmt.Errorf("plan: responsible position %d not among survivors %v", self, live)
	}
	sends, err := Sends(tab, chain.Segment{L: 0, R: len(live) - 1}, selfIdx)
	if err != nil {
		return nil, err
	}
	out := make([]RepairSend, len(sends))
	for i, s := range sends {
		part := make([]int, s.Seg.Len())
		copy(part, live[s.Seg.L:s.Seg.R+1])
		out[i] = RepairSend{To: live[s.To], Live: part}
	}
	return out, nil
}
