package plan

import (
	"reflect"
	"testing"
)

// expandDegree recursively applies DegreeSends the way the runtime
// does — each child re-plans over its own run — and returns the
// per-position parent map plus each node's realized fan-out.
func expandDegree(t *testing.T, live []int, self, cap int) (parent map[int]int, fanout map[int]int) {
	t.Helper()
	parent = map[int]int{self: -1}
	fanout = map[int]int{}
	var rec func(live []int, self int)
	rec = func(live []int, self int) {
		sends, err := DegreeSends(live, self, cap)
		if err != nil {
			t.Fatalf("DegreeSends(%v, %d, %d): %v", live, self, cap, err)
		}
		fanout[self] = len(sends)
		for _, s := range sends {
			if _, dup := parent[s.To]; dup {
				t.Fatalf("position %d received twice", s.To)
			}
			parent[s.To] = self
			rec(s.Live, s.To)
		}
	}
	rec(live, self)
	return parent, fanout
}

func TestDegreeSendsCoversExactlyOnce(t *testing.T) {
	live := []int{0, 1, 2, 3, 5, 8, 9, 12, 13, 14, 17, 20}
	for _, cap := range []int{1, 2, 3, 4, 11, 100} {
		for _, self := range []int{0, 8, 20} {
			parent, fanout := expandDegree(t, live, self, cap)
			if len(parent) != len(live) {
				t.Fatalf("cap %d self %d: %d positions delivered, want %d", cap, self, len(parent), len(live))
			}
			for _, p := range live {
				if _, ok := parent[p]; !ok {
					t.Fatalf("cap %d self %d: position %d never delivered", cap, self, p)
				}
			}
			for n, f := range fanout {
				if f > cap {
					t.Fatalf("cap %d self %d: node %d fan-out %d exceeds cap", cap, self, n, f)
				}
			}
		}
	}
}

func TestDegreeSendsShape(t *testing.T) {
	// 9 others, cap 4 -> 4 runs of sizes 3,2,2,2, largest first.
	live := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	sends, err := DegreeSends(live, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int
	total := 0
	for _, s := range sends {
		sizes = append(sizes, len(s.Live))
		total += len(s.Live)
		// To is the run member nearest self=0, i.e. the run's lowest
		// position since all others exceed self.
		if s.To != s.Live[0] {
			t.Errorf("run %v: To %d, want nearest-to-0 member %d", s.Live, s.To, s.Live[0])
		}
	}
	if !reflect.DeepEqual(sizes, []int{3, 2, 2, 2}) {
		t.Errorf("run sizes %v, want [3 2 2 2] (largest first)", sizes)
	}
	if total != 9 {
		t.Errorf("runs cover %d positions, want 9", total)
	}

	// Mid-chain self: the run straddling nothing (others are split
	// around the excised self), nearest-by-distance with ties low.
	sends, err = DegreeSends([]int{0, 1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// others = [0 1 3 4] -> runs [0 1], [3 4]; nearest to 2: 1 (dist 1) and 3 (dist 1).
	want := []RepairSend{{To: 1, Live: []int{0, 1}}, {To: 3, Live: []int{3, 4}}}
	if !reflect.DeepEqual(sends, want) {
		t.Errorf("sends %v, want %v", sends, want)
	}
}

func TestDegreeSendsCapOne(t *testing.T) {
	// cap 1 degenerates to a chain: every node forwards to one child.
	live := []int{2, 4, 6, 8, 10}
	_, fanout := expandDegree(t, live, 6, 1)
	for n, f := range fanout {
		if f > 1 {
			t.Fatalf("cap 1: node %d fan-out %d", n, f)
		}
	}
}

func TestDegreeSendsDeterministic(t *testing.T) {
	live := []int{1, 4, 6, 7, 9, 11, 15, 18}
	a, err := DegreeSends(live, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DegreeSends(live, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical inputs produced different plans")
	}
}

func TestDegreeSendsErrors(t *testing.T) {
	for name, tc := range map[string]struct {
		live      []int
		self, cap int
	}{
		"cap zero":      {[]int{0, 1}, 0, 0},
		"empty":         {nil, 0, 2},
		"not ascending": {[]int{0, 2, 1}, 0, 2},
		"duplicate":     {[]int{0, 1, 1}, 0, 2},
		"self missing":  {[]int{0, 1, 2}, 5, 2},
	} {
		if _, err := DegreeSends(tc.live, tc.self, tc.cap); err == nil {
			t.Errorf("%s: invalid input accepted", name)
		}
	}
	// A singleton member set is a valid no-op plan.
	sends, err := DegreeSends([]int{3}, 3, 2)
	if err != nil || len(sends) != 0 {
		t.Errorf("singleton: sends %v err %v, want empty plan", sends, err)
	}
}

// FuzzDegreeSends drives random member sets, selves, and caps through
// the full recursive expansion, asserting the structural invariants:
// exact partition, To inside its own run, fan-out within cap, every
// member delivered exactly once.
func FuzzDegreeSends(f *testing.F) {
	f.Add(uint64(1), 8, 2)
	f.Add(uint64(7), 33, 1)
	f.Add(uint64(1997), 64, 5)
	f.Fuzz(func(t *testing.T, seed uint64, n, cap int) {
		if n < 1 || n > 256 || cap < 1 || cap > 64 {
			t.Skip()
		}
		// Deterministic pseudo-random strictly ascending positions.
		s := seed
		next := func() uint64 {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return s
		}
		live := make([]int, n)
		pos := 0
		for i := range live {
			pos += 1 + int(next()%3)
			live[i] = pos
		}
		self := live[int(next()%uint64(n))]
		parent := map[int]int{self: -1}
		fanout := map[int]int{}
		var rec func(live []int, self int)
		rec = func(live []int, self int) {
			sends, err := DegreeSends(live, self, cap)
			if err != nil {
				t.Fatalf("valid input rejected: DegreeSends(%v, %d, %d): %v", live, self, cap, err)
			}
			if len(sends) > cap {
				t.Fatalf("%d sends exceed cap %d", len(sends), cap)
			}
			fanout[self] = len(sends)
			covered := 0
			for _, snd := range sends {
				covered += len(snd.Live)
				inRun := false
				for _, p := range snd.Live {
					if p == snd.To {
						inRun = true
					}
					if _, dup := parent[p]; dup && p == snd.To {
						t.Fatalf("position %d planned twice", p)
					}
				}
				if !inRun {
					t.Fatalf("To %d outside its run %v", snd.To, snd.Live)
				}
				parent[snd.To] = self
				rec(snd.Live, snd.To)
			}
			if covered != len(live)-1 {
				t.Fatalf("runs cover %d of %d non-self positions", covered, len(live)-1)
			}
		}
		rec(live, self)
		if len(parent) != n {
			t.Fatalf("%d of %d members delivered", len(parent), n)
		}
		for node, fo := range fanout {
			if fo > cap {
				t.Fatalf("node %d fan-out %d exceeds cap %d", node, fo, cap)
			}
		}
	})
}
