package plan

import (
	"testing"
	"testing/quick"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/sim"
)

// expandRepair recursively expands the full repair tree rooted at self
// over the live positions, bumping covered[p] for every position a
// subtree claims responsibility for. It also enforces the local
// invariants on every level: Live ascending, To an end of Live.
func expandRepair(t *testing.T, tab core.SplitTable, live []int, self int, covered map[int]int) {
	t.Helper()
	covered[self]++
	sends, err := RepairSends(tab, live, self)
	if err != nil {
		t.Fatalf("RepairSends(%v, self=%d): %v", live, self, err)
	}
	for _, s := range sends {
		if len(s.Live) == 0 || (s.To != s.Live[0] && s.To != s.Live[len(s.Live)-1]) {
			t.Fatalf("receiver %d is not an end of its part %v", s.To, s.Live)
		}
		for i := 1; i < len(s.Live); i++ {
			if s.Live[i-1] >= s.Live[i] {
				t.Fatalf("part %v not strictly ascending", s.Live)
			}
		}
		expandRepair(t, tab, s.Live, s.To, covered)
	}
}

// checkRepairCoverage: the repair tree over an arbitrary survivor subset
// must deliver exactly the survivors, each exactly once.
func checkRepairCoverage(t *testing.T, tab core.SplitTable, live []int, self int) {
	t.Helper()
	covered := make(map[int]int, len(live))
	expandRepair(t, tab, live, self, covered)
	if len(covered) != len(live) {
		t.Fatalf("repair tree covered %d positions, want the %d survivors", len(covered), len(live))
	}
	for _, p := range live {
		if covered[p] != 1 {
			t.Fatalf("survivor %d covered %d times (live=%v self=%d)", p, covered[p], live, self)
		}
	}
}

// survivorsFromMask strikes the positions whose mask bit is set from
// [0,k), always keeping keep alive. It returns the ascending survivor
// list.
func survivorsFromMask(k int, mask uint64, keep int) []int {
	var live []int
	for p := 0; p < k; p++ {
		if p == keep || mask&(1<<(uint(p)%64)) == 0 {
			live = append(live, p)
		}
	}
	return live
}

// FuzzRepairPlanner: for arbitrary valid split tables, random chains and
// random dead subsets, the repaired schedule always covers exactly the
// survivors, each once, with every handoff going to a part end. This is
// the planner half of the chaos invariant — whatever the fault plan
// kills, replanning over the survivors never drops or duplicates one.
func FuzzRepairPlanner(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(0), uint64(0))
	f.Add(uint64(2), uint8(32), uint8(7), uint64(0xdeadbeef))
	f.Add(uint64(1997), uint8(60), uint8(59), uint64(0xaaaaaaaaaaaaaaaa))
	f.Add(uint64(3), uint8(2), uint8(1), ^uint64(0))
	f.Fuzz(func(t *testing.T, seed uint64, kr, sr uint8, mask uint64) {
		k := int(kr%60) + 1
		self := int(sr) % k
		live := survivorsFromMask(k, mask, self)
		tab := newRandomTable(sim.NewRNG(seed), k)
		checkRepairCoverage(t, tab, live, self)
	})
}

// TestRepairPlannerQuick runs the fuzz property through testing/quick so
// every ordinary `go test` run explores the space, not just the fuzz
// seed corpus.
func TestRepairPlannerQuick(t *testing.T) {
	f := func(seed uint64, kr, sr uint8, mask uint64) bool {
		k := int(kr%60) + 1
		self := int(sr) % k
		tab := newRandomTable(sim.NewRNG(seed), k)
		checkRepairCoverage(t, tab, survivorsFromMask(k, mask, self), self)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRepairSendsContiguousMatchesSends: with no dead members the repair
// planner must produce exactly the schedule of Sends — healthy runs are
// bit-identical whichever entry point planned them.
func TestRepairSendsContiguousMatchesSends(t *testing.T) {
	f := func(seed uint64, kr, sr uint8) bool {
		k := int(kr%60) + 1
		self := int(sr) % k
		tab := newRandomTable(sim.NewRNG(seed), k)
		live := chain.Segment{L: 0, R: k - 1}.Positions()

		repaired, err := RepairSends(tab, live, self)
		if err != nil {
			return false
		}
		direct, err := Sends(tab, chain.Segment{L: 0, R: k - 1}, self)
		if err != nil {
			return false
		}
		if len(repaired) != len(direct) {
			return false
		}
		for i, s := range direct {
			r := repaired[i]
			if r.To != s.To || len(r.Live) != s.Seg.Len() || r.Live[0] != s.Seg.L || r.Live[len(r.Live)-1] != s.Seg.R {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRepairSendsOffsetPositions: survivor positions need not start at
// zero or be dense — the planner maps through arbitrary gaps.
func TestRepairSendsOffsetPositions(t *testing.T) {
	live := []int{3, 7, 8, 20, 21, 22, 40}
	tab := core.BinomialTable{Max: 16}
	checkRepairCoverage(t, tab, live, 20)
}

// TestRepairSendsValidation: malformed survivor sets are planner-caller
// bugs and must be rejected, not mis-planned.
func TestRepairSendsValidation(t *testing.T) {
	tab := core.BinomialTable{Max: 4}
	cases := []struct {
		name string
		live []int
		self int
	}{
		{"empty", nil, 0},
		{"self missing", []int{1, 2}, 0},
		{"not ascending", []int{2, 1, 3}, 1},
		{"duplicate", []int{1, 1, 2}, 1},
		{"exceeds K", []int{0, 1, 2, 3, 4}, 0},
	}
	for _, c := range cases {
		if _, err := RepairSends(tab, c.live, c.self); err == nil {
			t.Errorf("%s: RepairSends(%v, %d) accepted", c.name, c.live, c.self)
		}
	}
}
