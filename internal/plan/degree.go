package plan

import "fmt"

// Degree-bounded multicast trees.
//
// The paper's OPT split assumes the strict one-port model: a node's
// fan-out is bounded only by how many rounds it keeps transmitting, so
// the split ratio J(i) is free to hand one sender an arbitrarily long
// run of children. Overlay deployments cap per-node fan-out instead —
// Andreica et al.'s bounded-degree distribution trees — and that cap is
// not expressible as a SplitTable: J(i) >= ceil(i/2) is required for
// the mid-segment responsible node to stay inside its own left part,
// while a degree bound needs splits far from the midpoint on large
// segments. DegreeSends is therefore its own planner, sharing the
// RepairSend shape so the recovery layer and scenario drivers consume
// both tree variants through one code path.

// DegreeSends plans the transmissions of a degree-bounded multicast
// tree: the responsible node at chain position self sends to at most
// cap children, partitioning the other live positions (strictly
// ascending, self included) into at most cap contiguous runs of
// near-equal size. Each RepairSend's To is the member of its run
// nearest self by chain-position distance (ties to the lower
// position), and that child recursively applies DegreeSends to its
// run, so the cap holds at every node of the tree. Sends are ordered
// largest run first (ties leftmost), mirroring the OPT planner's
// far-half-first discipline so deep subtrees start earliest.
//
// Striking members from an architecture-ordered chain preserves the
// order, so runs of live positions inherit the contention-freedom
// ordering argument that RepairSends relies on.
func DegreeSends(live []int, self, cap int) ([]RepairSend, error) {
	if cap < 1 {
		return nil, fmt.Errorf("plan: degree cap %d < 1", cap)
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("plan: degree-bounded plan with no members")
	}
	selfIdx := -1
	for i, p := range live {
		if i > 0 && live[i-1] >= p {
			return nil, fmt.Errorf("plan: member positions not strictly ascending at index %d (%d after %d)", i, p, live[i-1])
		}
		if p == self {
			selfIdx = i
		}
	}
	if selfIdx < 0 {
		return nil, fmt.Errorf("plan: responsible position %d not among members %v", self, live)
	}
	// others: live positions minus self, order preserved.
	others := make([]int, 0, len(live)-1)
	others = append(others, live[:selfIdx]...)
	others = append(others, live[selfIdx+1:]...)
	n := len(others)
	if n == 0 {
		return []RepairSend{}, nil
	}
	c := cap
	if n < c {
		c = n
	}
	// c contiguous runs; the first n%c runs take the extra member, so
	// run sizes differ by at most one and the partition is exact.
	big, rem := n/c, n%c
	type run struct{ l, r int } // inclusive index range into others
	runs := make([]run, c)
	at := 0
	for i := 0; i < c; i++ {
		size := big
		if i < rem {
			size++
		}
		runs[i] = run{l: at, r: at + size - 1}
		at += size
	}
	// Largest run first, ties leftmost. rem big runs precede the small
	// ones already, so a stable ordering is just: big runs in index
	// order, then small runs in index order — which is the slice order
	// when rem == 0 or the natural order otherwise. Sizes only take two
	// values, so a single stable partition suffices.
	ordered := make([]run, 0, c)
	for _, rn := range runs {
		if rn.r-rn.l+1 == big+1 {
			ordered = append(ordered, rn)
		}
	}
	for _, rn := range runs {
		if rn.r-rn.l+1 == big {
			ordered = append(ordered, rn)
		}
	}
	out := make([]RepairSend, 0, c)
	for _, rn := range ordered {
		if rn.r < rn.l {
			continue // big == 0 run (n < c cannot happen, but guard)
		}
		// Child = member of the run nearest self by chain-position
		// distance, ties to the lower position. Positions in a run are
		// ascending, so the nearest is at one of the ends or the
		// crossing point; scan — runs are short.
		to := others[rn.l]
		best := absDist(to, self)
		for i := rn.l + 1; i <= rn.r; i++ {
			if d := absDist(others[i], self); d < best {
				to, best = others[i], d
			}
		}
		part := make([]int, rn.r-rn.l+1)
		copy(part, others[rn.l:rn.r+1])
		out = append(out, RepairSend{To: to, Live: part})
	}
	return out, nil
}

func absDist(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}
