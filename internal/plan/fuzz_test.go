package plan

import (
	"testing"
	"testing/quick"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/sim"
)

// randomTable is an arbitrary valid split table with J(i) >= ceil(i/2),
// the invariant every planner-compatible family satisfies. Fuzzing over
// it checks the planner against the whole family space, not just the
// three named shapes.
type randomTable struct {
	j []int // index i, for i in [2, K]
}

func newRandomTable(r *sim.RNG, k int) randomTable {
	j := make([]int, k+1)
	for i := 2; i <= k; i++ {
		lo := (i + 1) / 2
		j[i] = lo + r.Intn(i-lo) // in [ceil(i/2), i-1]
	}
	return randomTable{j: j}
}

func (t randomTable) K() int      { return len(t.j) - 1 }
func (t randomTable) J(i int) int { return t.j[i] }

var _ core.SplitTable = randomTable{}

// TestFuzzPlannerInvariants: for arbitrary valid split tables and source
// positions, the planner's output always partitions the segment, always
// hands off end-nodes, and the expanded tree covers every chain position
// exactly once.
func TestFuzzPlannerInvariants(t *testing.T) {
	f := func(seed uint64, kr, sr uint8) bool {
		k := int(kr%60) + 1
		self := int(sr) % k
		tab := newRandomTable(sim.NewRNG(seed), k)
		seg := chain.Segment{L: 0, R: k - 1}

		sends, err := Sends(tab, seg, self)
		if err != nil {
			return false
		}
		covered := make([]int, k)
		covered[self]++
		for _, s := range sends {
			if s.To != s.Seg.L && s.To != s.Seg.R {
				return false
			}
			for i := s.Seg.L; i <= s.Seg.R; i++ {
				covered[i]++
			}
		}
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}

		tree, err := Tree(tab, seg, self)
		if err != nil {
			return false
		}
		if tree.Size() != k || tree.Validate() != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzScheduleInvariants: for arbitrary tables, the static schedule
// delivers every non-root position exactly once, never before its
// sender's own arrival, and sender issue times respect t_hold pacing.
func TestFuzzScheduleInvariants(t *testing.T) {
	f := func(seed uint64, kr, rr uint8, h16, e16 uint16) bool {
		k := int(kr%40) + 2
		root := int(rr) % k
		h := int64(h16 % 300)
		e := h + int64(e16%300) + 1
		tab := newRandomTable(sim.NewRNG(seed), k)
		ids := make(chain.Chain, k)
		for i := range ids {
			ids[i] = i
		}
		s, err := BuildSchedule(tab, ids, root, h, e)
		if err != nil {
			return false
		}
		arrival := make([]int64, k)
		for i := range arrival {
			arrival[i] = -1
		}
		arrival[root] = 0
		recvCount := make([]int, k)
		for _, entry := range s.Entries {
			recvCount[entry.To]++
			if arrival[entry.From] < 0 || entry.Issue < arrival[entry.From] {
				return false // sent before the sender had the message
			}
			arrival[entry.To] = entry.Arrive
		}
		for i, c := range recvCount {
			if i == root && c != 0 {
				return false
			}
			if i != root && c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
