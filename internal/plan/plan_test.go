package plan

import (
	"testing"
	"testing/quick"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/model"
)

func fullSeg(k int) chain.Segment { return chain.Segment{L: 0, R: k - 1} }

func idChain(k int) chain.Chain {
	c := make(chain.Chain, k)
	for i := range c {
		c[i] = i
	}
	return c
}

// TestSendsCoverSegmentOnce: every chain position except self is handed to
// exactly one receiver, receivers are segment ends, and handed segments
// partition the rest of the segment.
func TestSendsCoverSegmentOnce(t *testing.T) {
	tabs := map[string]core.SplitTable{
		"opt(20,55)": core.NewOptTable(64, 20, 55),
		"binomial":   core.BinomialTable{Max: 64},
		"sequential": core.SequentialTable{Max: 64},
	}
	for name, tab := range tabs {
		for k := 1; k <= 33; k++ {
			for self := 0; self < k; self++ {
				sends, err := Sends(tab, fullSeg(k), self)
				if err != nil {
					t.Fatalf("%s k=%d self=%d: %v", name, k, self, err)
				}
				covered := make([]int, k)
				covered[self]++
				for _, s := range sends {
					if s.To != s.Seg.L && s.To != s.Seg.R {
						t.Fatalf("%s k=%d self=%d: receiver %d is not an end of %v", name, k, self, s.To, s.Seg)
					}
					for i := s.Seg.L; i <= s.Seg.R; i++ {
						covered[i]++
					}
				}
				for i, c := range covered {
					if c != 1 {
						t.Fatalf("%s k=%d self=%d: position %d covered %d times", name, k, self, i, c)
					}
				}
			}
		}
	}
}

// TestSendsSegmentsDisjointFromKeeper: no handed segment ever contains the
// sender, and consecutive handed segments are disjoint.
func TestSendsSegmentsDisjoint(t *testing.T) {
	tab := core.NewOptTable(64, 20, 55)
	for k := 2; k <= 40; k++ {
		for self := 0; self < k; self += 3 {
			sends, err := Sends(tab, fullSeg(k), self)
			if err != nil {
				t.Fatal(err)
			}
			for i, a := range sends {
				if a.Seg.Contains(self) {
					t.Fatalf("k=%d self=%d: handed segment %v contains the sender", k, self, a.Seg)
				}
				for _, b := range sends[i+1:] {
					if a.Seg.Overlaps(b.Seg) {
						t.Fatalf("k=%d self=%d: handed segments %v and %v overlap", k, self, a.Seg, b.Seg)
					}
				}
			}
		}
	}
}

// TestTreePaperExample: the OPT tree over 8 nodes with (20, 55) evaluates
// to the paper's 130, from every source position.
func TestTreePaperExample(t *testing.T) {
	tab := core.NewOptTable(8, 20, 55)
	for self := 0; self < 8; self++ {
		tr, err := Tree(tab, fullSeg(8), self)
		if err != nil {
			t.Fatalf("self=%d: %v", self, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("self=%d: %v", self, err)
		}
		if got := tr.Eval(20, 55); got != 130 {
			t.Fatalf("self=%d: OPT-mesh tree latency %d, paper says 130\n%s", self, got, tr)
		}
	}
}

// TestTreeLatencyMatchesTable: for arbitrary (h <= e) parameters and any
// source position, the planned tree achieves exactly the DP's optimal
// latency — the planner loses nothing to source placement.
func TestTreeLatencyMatchesTable(t *testing.T) {
	f := func(hr, er uint16, kr, sr uint8) bool {
		h := model.Time(hr % 200)
		e := h + model.Time(er%200) + 1
		k := int(kr%50) + 1
		self := int(sr) % k
		tab := core.NewOptTable(k, h, e)
		tr, err := Tree(tab, fullSeg(k), self)
		if err != nil {
			return false
		}
		return tr.Eval(h, e) == tab.T(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBinomialTreeMatchesRecurrence: planner + binomial table equals the
// recurrence latency for any source position.
func TestBinomialTreeMatchesRecurrence(t *testing.T) {
	tab := core.BinomialTable{Max: 64}
	for k := 1; k <= 64; k += 7 {
		want := core.Latency(tab, k, 20, 55)
		for self := 0; self < k; self++ {
			tr, err := Tree(tab, fullSeg(k), self)
			if err != nil {
				t.Fatal(err)
			}
			if got := tr.Eval(20, 55); got != want {
				t.Fatalf("k=%d self=%d: binomial tree latency %d, want %d", k, self, got, want)
			}
		}
	}
}

// TestChainTableRequiresLeadingSource: ChainTable has J(i) = 1 < ceil(i/2)
// for i > 2, so a mid-segment source must be rejected with
// IncompatibleError, while a leading source plans fine.
func TestChainTableRequiresLeadingSource(t *testing.T) {
	tab := core.ChainTable{Max: 8}
	if _, err := Sends(tab, fullSeg(8), 0); err == nil {
		// Source at position 0: first split keeps [0,0]... J=1 keeps the
		// low end, which contains position 0. This must succeed.
	} else {
		t.Fatalf("leading source rejected: %v", err)
	}
	_, err := Sends(tab, fullSeg(8), 4)
	if err == nil {
		t.Fatal("mid-segment source accepted by chain table")
	}
	if _, ok := err.(*IncompatibleError); !ok {
		t.Fatalf("error type = %T, want *IncompatibleError", err)
	}
}

// TestSendsArgumentErrors covers self outside the segment and oversized
// segments.
func TestSendsArgumentErrors(t *testing.T) {
	tab := core.NewOptTable(4, 20, 55)
	if _, err := Sends(tab, chain.Segment{L: 1, R: 3}, 0); err == nil {
		t.Error("self outside segment accepted")
	}
	if _, err := Sends(tab, fullSeg(5), 0); err == nil {
		t.Error("segment larger than table accepted")
	}
}

// TestSendsSingleton: a one-node segment yields no sends.
func TestSendsSingleton(t *testing.T) {
	tab := core.NewOptTable(4, 20, 55)
	sends, err := Sends(tab, chain.Segment{L: 2, R: 2}, 2)
	if err != nil || len(sends) != 0 {
		t.Fatalf("singleton: sends=%v err=%v", sends, err)
	}
}

// TestBuildSchedulePaperExample: the full static schedule of the Figure 1
// example has 7 entries (one per destination) and latency 130.
func TestBuildSchedulePaperExample(t *testing.T) {
	tab := core.NewOptTable(8, 20, 55)
	s, err := BuildSchedule(tab, idChain(8), 0, 20, 55)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Entries) != 7 {
		t.Fatalf("schedule has %d entries, want 7", len(s.Entries))
	}
	if s.Latency() != 130 {
		t.Fatalf("schedule latency = %d, want 130", s.Latency())
	}
	for i := 1; i < len(s.Entries); i++ {
		if s.Entries[i].Issue < s.Entries[i-1].Issue {
			t.Fatal("entries not sorted by issue time")
		}
	}
	for _, e := range s.Entries {
		if e.Arrive != e.Issue+55 {
			t.Fatalf("entry %+v: arrive != issue + t_end", e)
		}
	}
}

// TestBuildScheduleReceiversUnique: every non-root chain position receives
// exactly once; the root never receives.
func TestBuildScheduleReceiversUnique(t *testing.T) {
	tab := core.NewOptTable(32, 20, 55)
	for _, root := range []int{0, 13, 31} {
		s, err := BuildSchedule(tab, idChain(32), root, 20, 55)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]int)
		for _, e := range s.Entries {
			seen[e.To]++
		}
		if seen[root] != 0 {
			t.Fatalf("root %d received %d times", root, seen[root])
		}
		for i := 0; i < 32; i++ {
			if i != root && seen[i] != 1 {
				t.Fatalf("position %d received %d times", i, seen[i])
			}
		}
	}
}

// TestBuildScheduleValidatesChain: duplicate addresses are rejected.
func TestBuildScheduleValidatesChain(t *testing.T) {
	tab := core.NewOptTable(4, 20, 55)
	if _, err := BuildSchedule(tab, chain.Chain{1, 1, 2}, 0, 20, 55); err == nil {
		t.Fatal("duplicate chain accepted")
	}
}

// TestSenderHoldSpacing: a sender's consecutive entries are spaced exactly
// t_hold apart in the analytic schedule.
func TestSenderHoldSpacing(t *testing.T) {
	tab := core.NewOptTable(32, 20, 55)
	s, err := BuildSchedule(tab, idChain(32), 0, 20, 55)
	if err != nil {
		t.Fatal(err)
	}
	lastIssue := make(map[int]int64)
	first := make(map[int]bool)
	for _, e := range s.Entries {
		if first[e.From] {
			if e.Issue-lastIssue[e.From] != 20 {
				t.Fatalf("sender %d: gap %d, want t_hold=20", e.From, e.Issue-lastIssue[e.From])
			}
		}
		lastIssue[e.From] = e.Issue
		first[e.From] = true
	}
}
