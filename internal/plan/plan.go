// Package plan turns split tables (package core) into concrete multicast
// send schedules over ordered chains (package chain). It is the
// generalized form of Algorithms 3.1 (OPT-mesh) and 4.1 (OPT-min): the two
// algorithms are textually identical and differ only in the chain ordering
// supplied by the topology, so a single implementation serves meshes,
// BMINs, and the unordered architecture-independent OPT-tree.
//
// Given a segment [l, r] of the chain for which the node at chain index
// self is responsible, the node repeatedly splits the segment into a part
// of size J(i) containing itself and a part of size i-J(i) that it hands
// off with a single send to that part's nearest end node, until only the
// node itself remains.
package plan

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/core"
)

// Send is one transmission of a multicast schedule: the node responsible
// for a segment transmits to the node at chain index To, which becomes
// responsible for segment Seg (To is always an end of Seg).
type Send struct {
	To  int
	Seg chain.Segment
}

// IncompatibleError is returned when a split table asks for a part that
// cannot contain the responsible node. This happens only for split tables
// with J(i) < ceil(i/2) (e.g. ChainTable, or an OptTable computed with
// t_hold > t_end) combined with a mid-segment source; the paper's
// algorithms always satisfy J(i) >= ceil(i/2) because t_hold <= t_end.
type IncompatibleError struct {
	Seg  chain.Segment
	Self int
	J    int
}

func (e *IncompatibleError) Error() string {
	return fmt.Sprintf("plan: split J=%d of segment %v cannot keep node at index %d (need J >= ceil(len/2))",
		e.J, e.Seg, e.Self)
}

// Sends computes the ordered transmissions the node at chain index self
// performs for segment seg, following Algorithm 3.1/4.1:
//
//	while l < r:
//	  i := r-l+1; j := J(i)
//	  if self < l+j:  send to x[l+j]  covering [l+j, r];  r = l+j-1
//	  else:           send to x[r-j]  covering [l, r-j];  l = r-j+1
//
// The first case keeps the source in the lower part; the send goes to the
// lowest node of the upper part. The second keeps the source in the upper
// part; the send goes to the highest node of the lower part.
func Sends(tab core.SplitTable, seg chain.Segment, self int) ([]Send, error) {
	if !seg.Contains(self) {
		return nil, fmt.Errorf("plan: self index %d outside segment %v", self, seg)
	}
	if seg.Len() > tab.K() {
		return nil, fmt.Errorf("plan: segment %v larger than split table K=%d", seg, tab.K())
	}
	var out []Send
	l, r := seg.L, seg.R
	for l < r {
		i := r - l + 1
		j := tab.J(i)
		if j < 1 || j > i-1 {
			return nil, fmt.Errorf("plan: split table returned J(%d)=%d outside [1,%d]", i, j, i-1)
		}
		if self < l+j {
			rec := l + j
			out = append(out, Send{To: rec, Seg: chain.Segment{L: rec, R: r}})
			r = rec - 1
		} else {
			rec := r - j
			if self <= rec {
				return nil, &IncompatibleError{Seg: chain.Segment{L: l, R: r}, Self: self, J: j}
			}
			out = append(out, Send{To: rec, Seg: chain.Segment{L: l, R: rec}})
			l = rec + 1
		}
	}
	return out, nil
}

// Tree expands the full multicast tree rooted at chain index self for
// segment seg. Node identifiers in the returned tree are chain indices;
// use core.Tree.Relabel to map them to addresses. Children appear in send
// order.
func Tree(tab core.SplitTable, seg chain.Segment, self int) (*core.Tree, error) {
	sends, err := Sends(tab, seg, self)
	if err != nil {
		return nil, err
	}
	t := &core.Tree{Node: self}
	for _, s := range sends {
		sub, err := Tree(tab, s.Seg, s.To)
		if err != nil {
			return nil, err
		}
		t.Children = append(t.Children, sub)
	}
	return t, nil
}

// Schedule is the complete static send list of a multicast: every
// transmission in the tree, annotated with the analytic issue and arrival
// times under (t_hold, t_end). It is what a trace viewer or a static
// verifier consumes; the dynamic runtime (package mcastsim) re-derives the
// same sends on the fly from the address lists carried in messages.
type Schedule struct {
	// Chain is the planning chain (addresses in order).
	Chain chain.Chain
	// Root is the chain index of the source.
	Root int
	// Entries are all transmissions in global issue-time order.
	Entries []Entry
}

// Entry is one transmission of a Schedule.
type Entry struct {
	From, To int           // chain indices
	Seg      chain.Segment // responsibility transferred to To
	Issue    int64         // analytic issue time (cycles)
	Arrive   int64         // analytic delivery time: Issue + t_end
}

// BuildSchedule computes the full static schedule for a multicast over the
// whole chain with the source at index root.
func BuildSchedule(tab core.SplitTable, c chain.Chain, root int, thold, tend int64) (*Schedule, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	s := &Schedule{Chain: c, Root: root}
	seg := chain.Segment{L: 0, R: len(c) - 1}
	if err := s.expand(tab, seg, root, 0, thold, tend); err != nil {
		return nil, err
	}
	sortEntries(s.Entries)
	return s, nil
}

func (s *Schedule) expand(tab core.SplitTable, seg chain.Segment, self int, ready int64, thold, tend int64) error {
	sends, err := Sends(tab, seg, self)
	if err != nil {
		return err
	}
	for i, snd := range sends {
		issue := ready + int64(i)*thold
		arrive := issue + tend
		s.Entries = append(s.Entries, Entry{From: self, To: snd.To, Seg: snd.Seg, Issue: issue, Arrive: arrive})
		if err := s.expand(tab, snd.Seg, snd.To, arrive, thold, tend); err != nil {
			return err
		}
	}
	return nil
}

// Latency returns the analytic multicast latency of the schedule: the
// latest arrival, or 0 for a single-node multicast.
func (s *Schedule) Latency() int64 {
	var last int64
	for _, e := range s.Entries {
		if e.Arrive > last {
			last = e.Arrive
		}
	}
	return last
}

func sortEntries(es []Entry) {
	// Insertion sort by (Issue, From, To): schedules are small and mostly
	// ordered already.
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && less(es[j], es[j-1]); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func less(a, b Entry) bool {
	if a.Issue != b.Issue {
		return a.Issue < b.Issue
	}
	if a.From != b.From {
		return a.From < b.From
	}
	return a.To < b.To
}
