// Package contention statically verifies multicast schedules for channel
// conflicts, independently of the flit-level simulator: it expands the
// analytic schedule (package plan), computes each transmission's fabric
// path from the topology's routing function, and reports every pair of
// time-overlapping transmissions that share a channel.
//
// This is a second, structurally different implementation of the thing
// the simulator measures, so the two cross-validate: Theorems 1 and 2 of
// the paper assert the checker finds nothing for OPT-mesh/OPT-min
// schedules, and the simulator's blocked-cycle counter must agree.
// When a schedule does contend, the checker names the exact pair of
// sends and the shared channel — far more actionable than a blocked
// counter.
//
// Timing model: a transmission issued at t occupies the fabric during
// [t + t_send, t + t_end - t_recv], padded by Slack on both sides to
// absorb the per-hop spread the analytic model ignores. Transmissions by
// the same sender are never conflicts: the one-port interface serializes
// them and a trailing worm can never catch a leading one (proven in the
// wormhole tests).
package contention

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/plan"
	"repro/internal/wormhole"
)

// Conflict is one pair of time-overlapping transmissions sharing a
// channel.
type Conflict struct {
	A, B    plan.Entry
	Channel wormhole.ChannelID
}

// String renders the conflict with the topology unavailable; use
// Checker.Describe for channel names.
func (c Conflict) String() string {
	return fmt.Sprintf("sends %d->%d and %d->%d share channel %d",
		c.A.From, c.A.To, c.B.From, c.B.To, c.Channel)
}

// Checker verifies schedules against one topology and timing model.
type Checker struct {
	// Topo supplies routing; adaptive topologies are checked against
	// their preferred (first-candidate) path.
	Topo wormhole.Topology
	// Software supplies t_send and t_recv for the occupancy window.
	Software model.Software
	// Slack pads each occupancy window on both sides, in cycles,
	// absorbing distance-dependent deviations from the nominal t_end.
	// Larger slack makes the checker stricter (more pairs count as
	// overlapping).
	Slack int64
	// Limit caps the number of conflicts returned (0 = all).
	Limit int
}

// Check plans the multicast over ch (source at chain index root, message
// size bytes, parameters thold/tend) and returns every conflict.
func (k *Checker) Check(tab core.SplitTable, ch chain.Chain, root, bytes int, thold, tend model.Time) ([]Conflict, error) {
	s, err := plan.BuildSchedule(tab, ch, root, thold, tend)
	if err != nil {
		return nil, err
	}
	return k.CheckSchedule(s, bytes)
}

// CheckSchedule verifies an already-built schedule.
func (k *Checker) CheckSchedule(s *plan.Schedule, bytes int) ([]Conflict, error) {
	type item struct {
		e          plan.Entry
		start, end int64
		channels   map[wormhole.ChannelID]struct{}
		// path keeps the interior channels in route order so the conflict
		// reported for a pair is always the first shared hop, independent
		// of map iteration order.
		path []wormhole.ChannelID
	}
	tSend := k.Software.Send.At(bytes)
	tRecv := k.Software.Recv.At(bytes)

	items := make([]item, 0, len(s.Entries))
	for _, e := range s.Entries {
		src := s.Chain[e.From]
		dst := s.Chain[e.To]
		if src < 0 || src >= k.Topo.NumNodes() || dst < 0 || dst >= k.Topo.NumNodes() {
			return nil, fmt.Errorf("contention: chain address outside fabric (%d or %d)", src, dst)
		}
		path := wormhole.PathChannels(k.Topo, wormhole.NodeID(src), wormhole.NodeID(dst))
		set := make(map[wormhole.ChannelID]struct{}, len(path))
		// Injection and ejection channels are private to their nodes
		// (each node appears once per multicast as a receiver, and
		// same-sender transmissions are excluded below), so only the
		// interior fabric channels can conflict.
		for _, c := range path[1 : len(path)-1] {
			set[c] = struct{}{}
		}
		items = append(items, item{
			e:        e,
			start:    e.Issue + tSend - k.Slack,
			end:      e.Arrive - tRecv + k.Slack,
			channels: set,
			path:     path[1 : len(path)-1],
		})
	}

	var out []Conflict
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			a, b := items[i], items[j]
			if a.e.From == b.e.From {
				continue // one-port serialization; never a real conflict
			}
			if a.end <= b.start || b.end <= a.start {
				continue // disjoint in time
			}
			for _, c := range b.path {
				if _, shared := a.channels[c]; shared {
					out = append(out, Conflict{A: a.e, B: b.e, Channel: c})
					if k.Limit > 0 && len(out) >= k.Limit {
						return out, nil
					}
					break
				}
			}
		}
	}
	return out, nil
}

// Describe renders a conflict with channel names from the topology.
func (k *Checker) Describe(c Conflict) string {
	return fmt.Sprintf("sends %d->%d (issue %d) and %d->%d (issue %d) share %s",
		c.A.From, c.A.To, c.A.Issue, c.B.From, c.B.To, c.B.Issue,
		k.Topo.DescribeChannel(c.Channel))
}
