package contention_test

import (
	"testing"

	"repro/internal/bfly"
	"repro/internal/bmin"
	"repro/internal/chain"
	. "repro/internal/contention"
	"repro/internal/core"
	"repro/internal/mcastsim"
	"repro/internal/mesh"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/wormhole"
)

var soft = model.Software{
	Send: model.Linear{Fixed: 200, PerByte: 0.15},
	Recv: model.Linear{Fixed: 200, PerByte: 0.15},
	Hold: model.Linear{Fixed: 200, PerByte: 0.15},
}

func placement(seed uint64, nodes, k int) []int {
	return sim.NewRNG(seed).Sample(nodes, k)
}

// TestOptMeshSchedulesConflictFree is a static re-proof of Theorem 1,
// with generous slack: OPT trees over dimension-ordered chains never
// share a channel between time-overlapping sends.
func TestOptMeshSchedulesConflictFree(t *testing.T) {
	m := mesh.New2D(16, 16)
	k := &Checker{Topo: m, Software: soft, Slack: 200}
	const bytes = 4096
	thold := soft.Hold.At(bytes)
	tend := model.Time(2500)
	for seed := uint64(0); seed < 25; seed++ {
		for _, n := range []int{8, 16, 32, 64} {
			addrs := placement(seed, 256, n)
			ch := chain.New(addrs, m.DimOrderLess)
			root, _ := ch.Index(addrs[0])
			for _, tab := range []core.SplitTable{
				core.NewOptTable(n, thold, tend),
				core.BinomialTable{Max: n},
			} {
				conflicts, err := k.Check(tab, ch, root, bytes, thold, tend)
				if err != nil {
					t.Fatal(err)
				}
				if len(conflicts) != 0 {
					t.Fatalf("seed %d n=%d: %s", seed, n, k.Describe(conflicts[0]))
				}
			}
		}
	}
}

// TestOptMinSchedulesConflictFree is the static re-proof of Theorem 2 on
// the straight-ascent BMIN.
func TestOptMinSchedulesConflictFree(t *testing.T) {
	b := bmin.New(128, bmin.AscentStraight)
	k := &Checker{Topo: b, Software: soft, Slack: 200}
	const bytes = 4096
	thold := soft.Hold.At(bytes)
	tend := model.Time(2500)
	for seed := uint64(50); seed < 70; seed++ {
		addrs := placement(seed, 128, 32)
		ch := chain.New(addrs, b.LexLess)
		root, _ := ch.Index(addrs[0])
		for _, tab := range []core.SplitTable{
			core.NewOptTable(32, thold, tend),
			core.BinomialTable{Max: 32},
		} {
			conflicts, err := k.Check(tab, ch, root, bytes, thold, tend)
			if err != nil {
				t.Fatal(err)
			}
			if len(conflicts) != 0 {
				t.Fatalf("seed %d: %s", seed, k.Describe(conflicts[0]))
			}
		}
	}
}

// TestRandomOrderSchedulesConflict: the checker catches the contention
// the unordered OPT-tree suffers.
func TestRandomOrderSchedulesConflict(t *testing.T) {
	m := mesh.New2D(16, 16)
	k := &Checker{Topo: m, Software: soft, Slack: 0}
	const bytes = 4096
	thold := soft.Hold.At(bytes)
	tend := model.Time(2500)
	total := 0
	for seed := uint64(0); seed < 8; seed++ {
		addrs := placement(seed, 256, 32)
		ch := chain.Unordered(addrs)
		conflicts, err := k.Check(core.NewOptTable(32, thold, tend), ch, 0, bytes, thold, tend)
		if err != nil {
			t.Fatal(err)
		}
		total += len(conflicts)
	}
	if total == 0 {
		t.Fatal("checker found no conflicts in 8 random-order multicasts")
	}
}

// TestCheckerAgreesWithSimulator: for many random configurations, a
// checker verdict of "conflict-free" (with slack) implies the simulator
// records zero blocked cycles, and simulator blocking implies the
// checker finds a conflict.
func TestCheckerAgreesWithSimulator(t *testing.T) {
	m := mesh.New2D(16, 16)
	const bytes = 4096
	cfg := mcastsim.Config{Software: soft}
	fabric := wormhole.DefaultConfig()

	// Measure the real t_end so static windows track simulated ones.
	tend, err := mcastsim.Unicast(wormhole.New(m, fabric), m.Addr(0, 0), m.Addr(5, 5), bytes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	thold := soft.Hold.At(bytes)
	k := &Checker{Topo: m, Software: soft, Slack: 100}

	for seed := uint64(0); seed < 20; seed++ {
		addrs := placement(seed, 256, 24)
		var ch chain.Chain
		if seed%2 == 0 {
			ch = chain.New(addrs, m.DimOrderLess)
		} else {
			ch = chain.Unordered(addrs)
		}
		root, _ := ch.Index(addrs[0])
		tab := core.NewOptTable(24, thold, tend)

		conflicts, err := k.Check(tab, ch, root, bytes, thold, tend)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mcastsim.Run(wormhole.New(m, fabric), tab, ch, root, bytes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(conflicts) == 0 && res.BlockedCycles != 0 {
			t.Fatalf("seed %d: checker clean but simulator blocked %d cycles", seed, res.BlockedCycles)
		}
		if res.BlockedCycles != 0 && len(conflicts) == 0 {
			t.Fatalf("seed %d: simulator blocked but checker silent", seed)
		}
	}
}

// TestButterflyAlwaysConflicts: on the butterfly even the lex-ordered
// OPT schedule conflicts for enough placements — the §6 premise.
func TestButterflyAlwaysConflicts(t *testing.T) {
	b := bfly.New(64)
	k := &Checker{Topo: b, Software: soft, Slack: 0}
	const bytes = 4096
	thold := soft.Hold.At(bytes)
	tend := model.Time(2200)
	total := 0
	for seed := uint64(0); seed < 10; seed++ {
		addrs := placement(seed, 64, 24)
		ch := chain.New(addrs, b.LexLess)
		root, _ := ch.Index(addrs[0])
		conflicts, err := k.Check(core.NewOptTable(24, thold, tend), ch, root, bytes, thold, tend)
		if err != nil {
			t.Fatal(err)
		}
		total += len(conflicts)
	}
	if total == 0 {
		t.Fatal("lex-ordered butterfly schedules never conflicted; §6 premise would be false")
	}
}

// TestLimitCapsOutput and same-sender exclusion.
func TestLimitCapsOutput(t *testing.T) {
	m := mesh.New2D(16, 16)
	k := &Checker{Topo: m, Software: soft, Slack: 0, Limit: 1}
	addrs := placement(3, 256, 32)
	ch := chain.Unordered(addrs)
	const bytes = 4096
	thold := soft.Hold.At(bytes)
	conflicts, err := k.Check(core.NewOptTable(32, thold, 2500), ch, 0, bytes, thold, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) > 1 {
		t.Fatalf("limit ignored: %d conflicts", len(conflicts))
	}
	for _, c := range conflicts {
		if c.A.From == c.B.From {
			t.Fatal("same-sender pair reported")
		}
		if c.String() == "" {
			t.Fatal("empty conflict rendering")
		}
	}
}

// TestSequentialTreeConflictFreeOnMesh: the sequential tree has a single
// sender; one-port serialization means it can never conflict with
// itself.
func TestSequentialTreeConflictFree(t *testing.T) {
	m := mesh.New2D(8, 8)
	k := &Checker{Topo: m, Software: soft, Slack: 1000}
	addrs := placement(9, 64, 12)
	ch := chain.New(addrs, m.DimOrderLess)
	root, _ := ch.Index(addrs[0])
	conflicts, err := k.Check(core.SequentialTable{Max: 12}, ch, root, 1024, soft.Hold.At(1024), 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 0 {
		t.Fatalf("sequential tree conflicts: %s", k.Describe(conflicts[0]))
	}
}

// TestCheckRejectsBadChain: addresses outside the fabric error cleanly.
func TestCheckRejectsBadChain(t *testing.T) {
	m := mesh.New2D(4, 4)
	k := &Checker{Topo: m, Software: soft}
	ch := chain.Chain{0, 99}
	if _, err := k.Check(core.NewOptTable(2, 1, 2), ch, 0, 64, 1, 2); err == nil {
		t.Fatal("bad chain accepted")
	}
}
