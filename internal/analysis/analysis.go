// Package analysis bundles the repo's static checks: the determinism
// and concurrency invariants that keep the paper reproduction's golden
// tables byte-for-byte stable. cmd/repolint runs every analyzer
// registered here; see the individual packages for what each enforces
// and why.
package analysis

import (
	"repro/internal/analysis/detclock"
	"repro/internal/analysis/errcheck"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/lint"
	"repro/internal/analysis/locksafe"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/nodeterm"
	"repro/internal/analysis/panicstyle"
	"repro/internal/analysis/sharedcapture"
	"repro/internal/analysis/waitleak"
)

// All returns every registered analyzer, in a fixed order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		detclock.Analyzer,
		errcheck.Analyzer,
		hotalloc.Analyzer,
		locksafe.Analyzer,
		maporder.Analyzer,
		nodeterm.Analyzer,
		panicstyle.Analyzer,
		sharedcapture.Analyzer,
		waitleak.Analyzer,
	}
}
