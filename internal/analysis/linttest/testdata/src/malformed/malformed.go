// Package malformed exercises the framework's directive validation:
// every //lint: comment below is broken in a different way, and each
// must surface as a "directive" diagnostic — a typo in a suppression
// fails the run instead of silently suppressing nothing.
package malformed

//lint:ignore
func noAnalyzer() {}

//lint:ignore locksafe
func noReason() {}

//lint:frobnicate reason text
func unknownVerb() {}
