package linttest_test

import (
	"testing"

	"repro/internal/analysis/detclock"
	"repro/internal/analysis/linttest"
)

// TestMalformedDirectives is the framework's negative test: a
// //lint:ignore with no analyzer name, one with no reason, and an
// unknown verb must each be a diagnostic in their own right,
// regardless of which analyzer the fixture runs under (detclock here
// finds nothing, so the golden file is pure directive diagnostics).
func TestMalformedDirectives(t *testing.T) {
	linttest.RunGolden(t, "testdata/src/malformed", detclock.Analyzer, "testdata/src/malformed/golden.txt")
}
