// Package linttest is a fixture harness for internal/analysis/lint
// analyzers, modeled on golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory of Go files (conventionally
// testdata/src/<name>/ next to the analyzer). Lines that should
// trigger a diagnostic carry a trailing comment of the form
//
//	// want "regexp"
//
// where the quoted Go string is a regular expression that must match
// the diagnostic message reported on that line. The harness fails the
// test for every unmatched expectation and every unexpected
// diagnostic, so fixtures pin both positives and negatives.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/lint"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads the fixture directory as a single package, applies the
// analyzer, and checks its diagnostics against the fixture's want
// comments. The fixture may import module packages (e.g.
// repro/internal/sim); they are resolved against the enclosing module.
//
// The real driver pipeline's directive handling applies: a
// //lint:ignore in the fixture suppresses matching diagnostics, and
// malformed //lint: directives surface as "directive" diagnostics —
// so fixtures can pin suppression behavior with the same want
// comments they pin findings with.
func Run(t *testing.T, fixtureDir string, a *lint.Analyzer) {
	t.Helper()

	diags, expects := analyze(t, fixtureDir, a)

	for i := range diags {
		d := &diags[i]
		matched := false
		for _, e := range expects {
			if e.hit || e.file != filepath.Base(d.Pos.Filename) || e.line != d.Pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: no diagnostic matching %s", e.file, e.line, e.raw)
		}
	}
}

// RunGolden applies the analyzer to the fixture (with the same
// directive handling as Run) and compares the rendered diagnostics —
// "file:line:col: [analyzer] message", one per line, in the runner's
// sorted order — against the golden file, byte for byte. Where Run's
// want comments pin that a diagnostic exists on a line, the golden
// file pins exact positions and full message text, which is what the
// baseline and suppression machinery key on.
func RunGolden(t *testing.T, fixtureDir string, a *lint.Analyzer, goldenFile string) {
	t.Helper()

	diags, _ := analyze(t, fixtureDir, a)
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s:%d:%d: [%s] %s\n", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	want, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("linttest: reading golden file: %v", err)
	}
	if got := b.String(); got != string(want) {
		t.Errorf("diagnostics differ from golden file %s:\n--- got ---\n%s--- want ---\n%s", goldenFile, got, want)
	}
}

// analyze runs the shared fixture pipeline: parse, type-check, run the
// analyzer, apply //lint:ignore directives, and append malformed-
// directive diagnostics, exactly as lint.Run does for real packages.
// Diagnostics come back in lint.Run's sort order.
func analyze(t *testing.T, fixtureDir string, a *lint.Analyzer) ([]lint.Diagnostic, []*expectation) {
	t.Helper()

	wd, err := os.Getwd()
	if err != nil {
		t.Fatalf("linttest: getwd: %v", err)
	}
	modRoot, err := lint.FindModuleRoot(wd)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	ents, err := os.ReadDir(fixtureDir)
	if err != nil {
		t.Fatalf("linttest: reading fixture dir: %v", err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("linttest: no Go files in %s", fixtureDir)
	}

	var files []*ast.File
	var expects []*expectation
	for _, n := range names {
		full := filepath.Join(fixtureDir, n)
		f, err := parser.ParseFile(loader.Fset, full, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: parsing %s: %v", full, err)
		}
		files = append(files, f)
		expects = append(expects, parseWants(t, loader, f, n)...)
	}

	pkg, err := loader.LoadFiles("fixture/"+filepath.Base(fixtureDir), files)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	var diags []lint.Diagnostic
	pass := lint.NewPass(a, loader.Fset, pkg, &diags)
	if err := a.Run(pass); err != nil {
		t.Fatalf("linttest: running %s: %v", a.Name, err)
	}
	directives, malformed := lint.ParseDirectives(loader.Fset, files)
	diags = lint.Suppress(diags, directives)
	diags = append(diags, malformed...)
	sortDiags(diags)
	return diags, expects
}

// sortDiags orders diagnostics the way lint.Run does: by position,
// then analyzer name.
func sortDiags(diags []lint.Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

func parseWants(t *testing.T, loader *lint.Loader, f *ast.File, name string) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			lit := strings.TrimSpace(m[1])
			pattern, err := strconv.Unquote(lit)
			if err != nil {
				t.Fatalf("%s:%d: malformed want comment %q: %v", name, loader.Fset.Position(c.Pos()).Line, lit, err)
			}
			re, err := regexp.Compile(pattern)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", name, loader.Fset.Position(c.Pos()).Line, pattern, err)
			}
			out = append(out, &expectation{
				file: name,
				line: loader.Fset.Position(c.Pos()).Line,
				re:   re,
				raw:  lit,
			})
		}
	}
	return out
}
