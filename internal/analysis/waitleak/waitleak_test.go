package waitleak_test

import (
	"testing"

	"repro/internal/analysis/linttest"
	"repro/internal/analysis/waitleak"
)

func TestWaitleak(t *testing.T) {
	linttest.Run(t, "testdata/src/a", waitleak.Analyzer)
}

// TestGolden pins exact positions and full message text, including
// that the suppressed fire-and-forget goroutine produces nothing.
func TestGolden(t *testing.T) {
	linttest.RunGolden(t, "testdata/src/a", waitleak.Analyzer, "testdata/golden.txt")
}
