// Package a is the waitleak fixture: goroutines with no visible join
// and wg.Add calls inside the goroutine they count are flagged; the
// repo's standard join shapes are not.
package a

import "sync"

func leaky() {
	go func() { // want `goroutine has no visible join`
		println("work")
	}()
}

func addInside(wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // want `wg\.Add inside the spawned goroutine races with Wait`
		defer wg.Done()
		println("work")
	}()
	wg.Wait()
}

func joined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		println("work")
	}()
	wg.Wait()
}

func channelJoin() string {
	done := make(chan string)
	go func() {
		done <- "work"
	}()
	return <-done
}

func closeJoin() {
	out := make(chan int)
	go func() {
		close(out)
	}()
	<-out
}

func selectJoin(stop chan struct{}, out chan int) {
	go func() {
		select {
		case out <- 1:
		case <-stop:
		}
	}()
}

func named() {
	go helper() // ok: named functions own their join discipline
}

func helper() {}

func suppressed() {
	//lint:ignore waitleak fixture: process-lifetime logger, joined by exit
	go func() {
		println("log")
	}()
}
