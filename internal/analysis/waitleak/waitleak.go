// Package waitleak flags goroutines that nothing ever joins.
//
// The repo's concurrency contract (DESIGN.md, sim.ForEach) is that
// every spawned goroutine has an owner that observes its completion —
// a WaitGroup the spawner Waits on, or a channel the goroutine sends
// on or closes. A goroutine with no visible join can outlive the
// function that spawned it: in a sweep that means work bleeding into
// the next figure's timing; in a test it means the race detector and
// goroutine-leak checks firing on an unrelated case; in the CLIs it
// means output written after the summary. The analyzer also catches
// the classic WaitGroup race of calling wg.Add inside the spawned
// goroutine — if the scheduler delays the goroutine past the spawner's
// Wait, the Add is never counted and Wait returns early.
//
// Only `go` statements launching function literals are examined: a
// named function's joining discipline is its own body's business, and
// flagging every `go m.run()` would punish the encapsulation the
// analyzer wants to encourage.
package waitleak

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/lint"
)

// Analyzer is the waitleak check. It applies repo-wide, tests
// included: leaked goroutines in test helpers are exactly how cross-
// test interference starts.
var Analyzer = &lint.Analyzer{
	Name: "waitleak",
	Doc: "flag go statements whose function literal has no visible join " +
		"(WaitGroup.Done, channel send, or close) and wg.Add calls made " +
		"inside the goroutine they count",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoroutine(pass, g, lit)
			return true
		})
	}
	return nil
}

func checkGoroutine(pass *lint.Pass, g *ast.GoStmt, lit *ast.FuncLit) {
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SendStmt:
			joined = true
		case *ast.CallExpr:
			if isBuiltin(pass, v, "close") {
				joined = true
				return true
			}
			method, isWG := waitGroupMethod(pass, v)
			if !isWG {
				return true
			}
			switch method {
			case "Done":
				joined = true
			case "Add":
				pass.Reportf(v.Pos(), "wg.Add inside the spawned goroutine races with Wait: call Add before the go statement")
			}
		}
		return true
	})
	if !joined {
		pass.Reportf(g.Pos(), "goroutine has no visible join (WaitGroup.Done, channel send, or close): it can outlive its spawner and leak")
	}
}

// waitGroupMethod resolves recv.M() calls where recv is a
// sync.WaitGroup (directly or through a pointer/embedded field).
func waitGroupMethod(pass *lint.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	rt := recv.Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "WaitGroup" {
		return "", false
	}
	return fn.Name(), true
}

func isBuiltin(pass *lint.Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == name
}
