package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// DirectiveAnalyzer is the pseudo-analyzer name carried by diagnostics
// about the directives themselves (malformed or unknown //lint:
// comments). It participates in baselines and suppression like any
// real analyzer, so a stray directive can never silently do nothing.
const DirectiveAnalyzer = "directive"

// A Directive is one parsed //lint: comment.
//
// Two verbs exist:
//
//	//lint:ignore <analyzer> <reason>
//	//lint:hotpath [note]
//
// ignore suppresses diagnostics of the named analyzer reported on the
// directive's own line or on the line immediately below it (so both the
// trailing-comment and the standalone-line placements work). The reason
// is mandatory: a suppression without a recorded justification is
// itself a diagnostic. hotpath marks the function (doc comment) or the
// statement below it as an allocation-free hot region for the hotalloc
// analyzer.
type Directive struct {
	Pos      token.Position
	Verb     string // "ignore" or "hotpath"
	Analyzer string // for ignore: the suppressed analyzer
	Reason   string // for ignore: the justification; for hotpath: optional note
}

// HotpathVerb and IgnoreVerb name the recognized directive verbs.
const (
	IgnoreVerb  = "ignore"
	HotpathVerb = "hotpath"
)

const directivePrefix = "//lint:"

// ParseDirectives scans the comments of files for //lint: directives.
// Well-formed directives are returned for the caller to act on;
// malformed ones (unknown verb, //lint:ignore without an analyzer name
// or without a reason) come back as diagnostics under the "directive"
// pseudo-analyzer, so a typo in a suppression fails the lint run
// instead of silently suppressing nothing.
func ParseDirectives(fset *token.FileSet, files []*ast.File) ([]Directive, []Diagnostic) {
	var dirs []Directive
	var bad []Diagnostic
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Diagnostic{
			Analyzer: DirectiveAnalyzer,
			Pos:      fset.Position(pos),
			Message:  msg,
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "malformed //lint: directive: missing verb (want ignore or hotpath)")
					continue
				}
				switch fields[0] {
				case IgnoreVerb:
					if len(fields) < 2 {
						report(c.Pos(), "malformed //lint:ignore directive: want //lint:ignore <analyzer> <reason>")
						continue
					}
					if len(fields) < 3 {
						report(c.Pos(), "//lint:ignore "+fields[1]+" has no reason: every suppression must record why the finding is acceptable")
						continue
					}
					dirs = append(dirs, Directive{
						Pos:      fset.Position(c.Pos()),
						Verb:     IgnoreVerb,
						Analyzer: fields[1],
						Reason:   strings.Join(fields[2:], " "),
					})
				case HotpathVerb:
					dirs = append(dirs, Directive{
						Pos:    fset.Position(c.Pos()),
						Verb:   HotpathVerb,
						Reason: strings.Join(fields[1:], " "),
					})
				default:
					report(c.Pos(), fmt.Sprintf("unknown //lint: directive verb %q (want ignore or hotpath)", fields[0]))
				}
			}
		}
	}
	return dirs, bad
}

// Suppress filters diags through the ignore directives: a diagnostic
// is dropped when an ignore directive naming its analyzer sits in the
// same file on the same line or on the line immediately above. The
// directive pseudo-analyzer itself cannot be suppressed — a malformed
// directive must always surface.
func Suppress(diags []Diagnostic, dirs []Directive) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	covered := make(map[key]bool)
	for _, d := range dirs {
		if d.Verb != IgnoreVerb {
			continue
		}
		covered[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] = true
		covered[key{d.Pos.Filename, d.Pos.Line + 1, d.Analyzer}] = true
	}
	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != DirectiveAnalyzer && covered[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
