// Package lint is a small, dependency-free analysis framework modeled
// on golang.org/x/tools/go/analysis. The container this repo builds in
// has no module proxy access, so x/tools cannot be vendored; this
// package provides the minimal subset the repo's analyzers need — a
// loader that parses and type-checks module packages offline (stdlib
// types come from the GOROOT source importer), an Analyzer/Pass pair,
// and a deterministic runner.
//
// The API mirrors go/analysis closely enough that the analyzers in
// internal/analysis/* could be ported to real analysis.Analyzer values
// with mechanical changes only, should x/tools become available.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI output.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces
	// and why.
	Doc string

	// AppliesTo, when non-nil, restricts which package import paths the
	// runner applies this analyzer to. The linttest harness ignores it
	// so fixtures exercise the check regardless of their synthetic path.
	AppliesTo func(pkgPath string) bool

	// Run performs the check over one package and reports findings
	// through the pass.
	Run func(*Pass) error
}

// A Pass carries one (analyzer, package) unit of work, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// NewPass constructs a Pass over one loaded package, appending
// findings to *diags. It is exported for the linttest harness; normal
// use goes through Run.
func NewPass(a *Analyzer, fset *token.FileSet, pkg *Package, diags *[]Diagnostic) *Pass {
	return &Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		diags:    diags,
	}
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// ObjectOf returns the object denoted by id (use or def), or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Info.ObjectOf(id)
}

// Run applies every analyzer to every package loaded from dirs and
// returns the findings sorted by position then analyzer name, so output
// is byte-for-byte stable across runs — the same determinism contract
// the analyzers themselves enforce. //lint:ignore directives in the
// analyzed sources suppress the findings they cover; malformed
// directives surface as "directive" diagnostics.
func Run(l *Loader, analyzers []*Analyzer, dirs []string) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, dir := range dirs {
		pkgs, err := l.LoadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", dir, err)
		}
		for _, pkg := range pkgs {
			var pkgDiags []Diagnostic
			for _, a := range analyzers {
				if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
					continue
				}
				pass := &Pass{
					Analyzer: a,
					Fset:     l.Fset,
					Files:    pkg.Files,
					Pkg:      pkg.Types,
					Info:     pkg.Info,
					diags:    &pkgDiags,
				}
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
				}
			}
			directives, malformed := ParseDirectives(l.Fset, pkg.Files)
			diags = append(diags, Suppress(pkgDiags, directives)...)
			diags = append(diags, malformed...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ScopePackages returns an AppliesTo predicate accepting exactly the
// given import paths plus their external test packages (path suffix
// ".test" as produced by the loader).
func ScopePackages(paths ...string) func(string) bool {
	set := make(map[string]bool, len(paths))
	for _, p := range paths {
		set[p] = true
	}
	return func(pkgPath string) bool {
		if set[pkgPath] {
			return true
		}
		const ext = ".test"
		if len(pkgPath) > len(ext) && pkgPath[len(pkgPath)-len(ext):] == ext {
			return set[pkgPath[:len(pkgPath)-len(ext)]]
		}
		return false
	}
}

// ScopePrefix returns an AppliesTo predicate accepting import paths
// equal to or nested under prefix.
func ScopePrefix(prefix string) func(string) bool {
	return func(pkgPath string) bool {
		if pkgPath == prefix {
			return true
		}
		return len(pkgPath) > len(prefix) && pkgPath[:len(prefix)+1] == prefix+"/"
	}
}
