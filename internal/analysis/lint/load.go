package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked unit ready for analysis. Unlike the
// cached import graph, analysis packages include in-package _test.go
// files; external test files (package foo_test) are surfaced as a
// second Package with path "<base>.test".
type Package struct {
	Path  string
	Name  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages of one module without any
// network or export-data dependency: module-local imports are resolved
// against the module tree, everything else through the GOROOT source
// importer.
type Loader struct {
	Fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	imports map[string]*types.Package
}

// NewLoader builds a loader for the module rooted at modRoot (the
// directory containing go.mod).
func NewLoader(modRoot string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modRoot: abs,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		imports: make(map[string]*types.Package),
	}, nil
}

// ModulePath returns the module's import path.
func (l *Loader) ModulePath() string { return l.modPath }

// ModuleRoot returns the absolute module root directory.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// Import implements types.Importer. Module-local packages are loaded
// from source without test files; all other paths fall through to the
// stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		if pkg, ok := l.imports[path]; ok {
			return pkg, nil
		}
		dir := l.dirFor(path)
		files, _, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		pkg, _, err := l.check(path, files)
		if err != nil {
			return nil, err
		}
		l.imports[path] = pkg
		return pkg, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the package in dir for analysis,
// including in-package test files. If dir also holds an external test
// package (package <name>_test), it is returned as a second Package.
func (l *Loader) LoadDir(dir string) ([]*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := l.pathFor(abs)
	files, extFiles, err := l.parseDirWithTests(abs)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 && len(extFiles) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var out []*Package
	if len(files) > 0 {
		tpkg, info, err := l.check(path, files)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{Path: path, Name: tpkg.Name(), Files: files, Types: tpkg, Info: info})
	}
	if len(extFiles) > 0 {
		extPath := path + ".test"
		// The external test package must see the base package as the test
		// binary compiles it — WITH in-package test files — or helpers
		// exported via an export_test.go would not resolve. The main
		// import cache holds the test-free variant, and mixing the two
		// identities in one graph would break type checking, so the
		// check runs in a sub-loader whose cache substitutes the
		// test-inclusive package and drops every cached dependent of it
		// (those re-resolve lazily against the substitute); everything
		// else — including the base package's own dependencies — is
		// inherited so type identities stay aligned.
		sub := &Loader{
			Fset:    l.Fset,
			modRoot: l.modRoot,
			modPath: l.modPath,
			std:     l.std,
			imports: make(map[string]*types.Package),
		}
		for p, pkg := range l.imports {
			if p != path && !dependsOn(pkg, path) {
				sub.imports[p] = pkg
			}
		}
		if len(out) > 0 {
			sub.imports[path] = out[0].Types
		}
		tpkg, info, err := sub.check(extPath, extFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{Path: extPath, Name: tpkg.Name(), Files: extFiles, Types: tpkg, Info: info})
	}
	return out, nil
}

// LoadFiles type-checks an ad-hoc set of already-parsed files as one
// package under the given import path. Used by the linttest harness for
// fixture packages that live outside the module's build graph.
func (l *Loader) LoadFiles(path string, files []*ast.File) (*Package, error) {
	tpkg, info, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Name: tpkg.Name(), Files: files, Types: tpkg, Info: info}, nil
}

// Expand resolves package patterns relative to the current directory
// into package directories, in sorted order. Supported forms: a plain
// directory ("./internal/sim", "../../cmd/netsim") or a recursive
// pattern ("./...", "./internal/..."). Directories named testdata, dot
// directories, and directories without Go files are skipped.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := pat, false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root, recursive = rest, true
			if root == "" {
				root = "."
			}
		}
		abs, err := filepath.Abs(root)
		if err != nil {
			return nil, err
		}
		if st, err := os.Stat(abs); err != nil || !st.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q: not a directory", pat)
		}
		if !recursive {
			add(abs)
			continue
		}
		err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != abs && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if l.hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func (l *Loader) hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	return filepath.Join(l.modRoot, filepath.FromSlash(rel))
}

func (l *Loader) pathFor(absDir string) string {
	rel, err := filepath.Rel(l.modRoot, absDir)
	if err != nil || strings.HasPrefix(rel, "..") {
		// Outside the module: synthesize a stable path from the base name.
		return "external/" + filepath.Base(absDir)
	}
	if rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// parseDir parses the non-test Go files of dir, sorted by filename.
func (l *Loader) parseDir(dir string) (files, extFiles []*ast.File, err error) {
	return l.parse(dir, false)
}

// parseDirWithTests parses all Go files of dir, splitting external
// test-package files (package <name>_test) into extFiles.
func (l *Loader) parseDirWithTests(dir string) (files, extFiles []*ast.File, err error) {
	return l.parse(dir, true)
}

func (l *Loader) parse(dir string, includeTests bool) (files, extFiles []*ast.File, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if !includeTests && strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			extFiles = append(extFiles, f)
		} else {
			files = append(files, f)
		}
	}
	return files, extFiles, nil
}

// check type-checks files as one package. Uses, Defs, Types, and
// Selections are recorded; the first hard error aborts the load so
// analyzers never run on partially-typed syntax.
func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}

// dependsOn reports whether pkg transitively imports the package with
// the given import path.
func dependsOn(pkg *types.Package, path string) bool {
	seen := make(map[*types.Package]bool)
	var walk func(p *types.Package) bool
	walk = func(p *types.Package) bool {
		if seen[p] {
			return false
		}
		seen[p] = true
		for _, imp := range p.Imports() {
			if imp.Path() == path || walk(imp) {
				return true
			}
		}
		return false
	}
	return walk(pkg)
}

// FindModuleRoot walks up from dir looking for go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}
