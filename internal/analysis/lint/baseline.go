package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// baselineVersion is bumped when the entry schema changes, so a stale
// checked-in baseline fails loudly instead of silently accepting or
// rejecting the wrong findings.
const baselineVersion = 1

// A BaselineEntry accepts up to Count occurrences of one (analyzer,
// file, message) finding. Line numbers are deliberately absent:
// unrelated edits move findings around a file, and a baseline keyed on
// lines would churn on every refactor while a genuinely new finding of
// the same shape elsewhere in the file is exactly what gradual adoption
// tolerates.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-root-relative, slash-separated
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// A Baseline is the checked-in set of accepted findings
// (results/lint_baseline.json): new analyzers adopt gradually by
// baselining their findings at introduction, while any finding not in
// the baseline fails the run.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// NewBaseline aggregates diags into a baseline, with file paths
// recorded relative to modRoot. Entries are sorted so regeneration is
// byte-for-byte stable.
func NewBaseline(diags []Diagnostic, modRoot string) *Baseline {
	counts := make(map[BaselineEntry]int)
	for _, d := range diags {
		e := BaselineEntry{
			Analyzer: d.Analyzer,
			File:     baselineRel(modRoot, d.Pos.Filename),
			Message:  d.Message,
		}
		counts[e]++
	}
	// Findings starts non-nil so an all-clean repo serializes as an
	// explicit empty array rather than null.
	b := &Baseline{Version: baselineVersion, Findings: []BaselineEntry{}}
	for e, n := range counts {
		e.Count = n
		b.Findings = append(b.Findings, e)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// LoadBaseline reads a baseline file written by WriteFile.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("lint: baseline %s has version %d, want %d — regenerate with repolint -write-baseline", path, b.Version, baselineVersion)
	}
	return &b, nil
}

// WriteFile writes the baseline as stable, indented JSON.
func (b *Baseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Apply splits diags into the findings the baseline does not accept
// (returned, in input order) and the count it does. Each entry accepts
// at most Count occurrences of its (analyzer, file, message) key, so a
// regression that duplicates a baselined finding still fails.
func (b *Baseline) Apply(diags []Diagnostic, modRoot string) (fresh []Diagnostic, accepted int) {
	budget := make(map[BaselineEntry]int, len(b.Findings))
	for _, e := range b.Findings {
		n := e.Count
		e.Count = 0
		budget[e] += n
	}
	for _, d := range diags {
		key := BaselineEntry{
			Analyzer: d.Analyzer,
			File:     baselineRel(modRoot, d.Pos.Filename),
			Message:  d.Message,
		}
		if budget[key] > 0 {
			budget[key]--
			accepted++
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh, accepted
}

// baselineRel renders filename relative to modRoot with forward
// slashes, so baselines are portable across checkouts and platforms.
func baselineRel(modRoot, filename string) string {
	if rel, err := filepath.Rel(modRoot, filename); err == nil && !filepath.IsAbs(rel) {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}
