package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}
}

func TestParseDirectives(t *testing.T) {
	src := `package p

//lint:ignore detclock progress display only
var a = 1

//lint:hotpath inner loop of the kernel
var b = 2

//lint:hotpath
var c = 3
`
	fset, files := parseOne(t, src)
	dirs, bad := ParseDirectives(fset, files)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed diagnostics: %v", bad)
	}
	if len(dirs) != 3 {
		t.Fatalf("got %d directives, want 3: %+v", len(dirs), dirs)
	}
	if dirs[0].Verb != IgnoreVerb || dirs[0].Analyzer != "detclock" || dirs[0].Reason != "progress display only" {
		t.Errorf("ignore directive parsed as %+v", dirs[0])
	}
	if dirs[1].Verb != HotpathVerb || dirs[1].Reason != "inner loop of the kernel" {
		t.Errorf("hotpath directive parsed as %+v", dirs[1])
	}
	if dirs[2].Verb != HotpathVerb || dirs[2].Reason != "" {
		t.Errorf("bare hotpath directive parsed as %+v", dirs[2])
	}
}

func TestMalformedDirectives(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"package p\n\n//lint:ignore\nvar a = 1\n", "malformed //lint:ignore directive"},
		{"package p\n\n//lint:ignore detclock\nvar a = 1\n", "has no reason"},
		{"package p\n\n//lint:nonsense x\nvar a = 1\n", `unknown //lint: directive verb "nonsense"`},
		{"package p\n\n//lint:\nvar a = 1\n", "missing verb"},
	}
	for _, c := range cases {
		fset, files := parseOne(t, c.src)
		dirs, bad := ParseDirectives(fset, files)
		if len(dirs) != 0 {
			t.Errorf("%q: malformed directive still parsed: %+v", c.src, dirs)
		}
		if len(bad) != 1 {
			t.Fatalf("%q: got %d diagnostics, want 1", c.src, len(bad))
		}
		if bad[0].Analyzer != DirectiveAnalyzer {
			t.Errorf("%q: diagnostic attributed to %q, want %q", c.src, bad[0].Analyzer, DirectiveAnalyzer)
		}
		if !strings.Contains(bad[0].Message, c.want) {
			t.Errorf("%q: message %q does not mention %q", c.src, bad[0].Message, c.want)
		}
	}
}

// A plain comment that merely talks about directives is not one.
func TestProseMentionIsNotADirective(t *testing.T) {
	src := "package p\n\n// Use //lint:ignore sparingly.\n// lint:ignore x y (leading space: not a directive)\nvar a = 1\n"
	fset, files := parseOne(t, src)
	dirs, bad := ParseDirectives(fset, files)
	if len(dirs) != 0 || len(bad) != 0 {
		t.Errorf("prose parsed as directives: dirs=%+v bad=%+v", dirs, bad)
	}
}

func TestSuppress(t *testing.T) {
	mk := func(file string, line int, analyzer string) Diagnostic {
		return Diagnostic{Analyzer: analyzer, Pos: token.Position{Filename: file, Line: line}}
	}
	dirs := []Directive{
		{Pos: token.Position{Filename: "d.go", Line: 10}, Verb: IgnoreVerb, Analyzer: "detclock", Reason: "r"},
		{Pos: token.Position{Filename: "d.go", Line: 20}, Verb: HotpathVerb},
	}
	diags := []Diagnostic{
		mk("d.go", 10, "detclock"),  // same line: suppressed
		mk("d.go", 11, "detclock"),  // next line: suppressed
		mk("d.go", 12, "detclock"),  // two lines below: kept
		mk("d.go", 10, "locksafe"),  // other analyzer: kept
		mk("e.go", 10, "detclock"),  // other file: kept
		mk("d.go", 21, "detclock"),  // hotpath is not a suppression: kept
		mk("d.go", 10, "directive"), // the directive pseudo-analyzer cannot be silenced
	}
	kept := Suppress(diags, dirs)
	if len(kept) != 5 {
		t.Fatalf("got %d kept diagnostics, want 5: %+v", len(kept), kept)
	}
	for _, d := range kept {
		if d.Pos.Filename == "d.go" && d.Pos.Line == 11 && d.Analyzer == "detclock" {
			t.Errorf("next-line suppression failed: %+v", d)
		}
	}
}
