package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func bdiag(analyzer, file string, line int, msg string) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Message:  msg,
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	diags := []Diagnostic{
		bdiag("detclock", filepath.Join(root, "internal", "sim", "net.go"), 12, "time.Now reads the wall clock"),
		bdiag("hotalloc", filepath.Join(root, "internal", "wormhole", "network.go"), 40, "append in hot path"),
		bdiag("hotalloc", filepath.Join(root, "internal", "wormhole", "network.go"), 55, "append in hot path"),
	}
	b := NewBaseline(diags, root)
	if len(b.Findings) != 2 {
		t.Fatalf("got %d entries, want 2 (duplicates aggregate by count): %+v", len(b.Findings), b.Findings)
	}
	// Entries are modRoot-relative, slash-separated, and sorted by file.
	if b.Findings[0].File != "internal/sim/net.go" || b.Findings[1].File != "internal/wormhole/network.go" {
		t.Errorf("files not relative/sorted: %+v", b.Findings)
	}
	if b.Findings[1].Count != 2 {
		t.Errorf("duplicate finding count = %d, want 2", b.Findings[1].Count)
	}

	path := filepath.Join(root, "baseline.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != baselineVersion || len(got.Findings) != 2 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}

	// All three original findings are accepted; nothing is fresh.
	fresh, accepted := got.Apply(diags, root)
	if len(fresh) != 0 || accepted != 3 {
		t.Errorf("Apply(original) = %d fresh, %d accepted; want 0, 3", len(fresh), accepted)
	}
}

func TestBaselineApplyBudgets(t *testing.T) {
	root := t.TempDir()
	one := bdiag("hotalloc", filepath.Join(root, "a.go"), 10, "append in hot path")
	b := NewBaseline([]Diagnostic{one}, root)

	// A third occurrence of a baselined-twice finding is fresh: the
	// count is a budget, not a blanket waiver for the message.
	dup := one
	dup.Pos.Line = 99
	fresh, accepted := b.Apply([]Diagnostic{one, dup}, root)
	if accepted != 1 || len(fresh) != 1 {
		t.Fatalf("Apply over budget = %d fresh, %d accepted; want 1, 1", len(fresh), accepted)
	}
	if fresh[0].Pos.Line != 99 {
		t.Errorf("fresh finding is %+v; the later occurrence should spill", fresh[0])
	}

	// A different message in the same file is never accepted.
	other := bdiag("hotalloc", filepath.Join(root, "a.go"), 10, "make allocates in hot path")
	fresh, accepted = b.Apply([]Diagnostic{other}, root)
	if accepted != 0 || len(fresh) != 1 {
		t.Errorf("Apply(other message) = %d fresh, %d accepted; want 1, 0", len(fresh), accepted)
	}
}

func TestBaselineVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(`{"version": 99, "findings": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadBaseline(path)
	if err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Errorf("LoadBaseline(version 99) err = %v, want version mismatch", err)
	}
}

func TestEmptyBaselineWritesFindingsArray(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "baseline.json")
	if err := NewBaseline(nil, root).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"findings": []`) {
		t.Errorf("empty baseline serialized as %s; want an explicit empty findings array", data)
	}
	if _, err := LoadBaseline(path); err != nil {
		t.Errorf("empty baseline does not load: %v", err)
	}
}
