package a

import (
	"errors"
	"fmt"
)

func checks(k int) {
	if k < 0 {
		panic("a: k must be non-negative") // conforming literal
	}
	if k == 1 {
		panic(fmt.Sprintf("a: unsupported k=%d", k)) // conforming Sprintf
	}
	if k == 2 {
		panic("negative table size") // want `panic message "negative table size" does not start with "a: "`
	}
	if k == 3 {
		panic(fmt.Sprintf("bad k %d", k)) // want `panic message "bad k %d" does not start with "a: "`
	}
	if k == 4 {
		panic(fmt.Errorf("wrong: %d", k)) // want `panic message "wrong: %d" does not start with "a: "`
	}
	if k == 5 {
		panic(errors.New("a: dynamic errors are not style-checked"))
	}
	if k == 6 {
		err := errors.New("boom")
		panic(err) // rethrown values are exempt
	}
}
