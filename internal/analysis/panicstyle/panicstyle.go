// Package panicstyle enforces the repo's panic-message convention:
// every string panic in an internal package reads "pkg: message", as
// established by internal/mesh and internal/torus ("mesh: routing from
// an ejection channel"). The prefix makes a panic trace attributable
// without symbolizing the stack, which matters when a long experiment
// sweep dies hours in.
//
// Only constant-string panics (literals and fmt.Sprintf-style calls
// with a literal format) are checked; panics that rethrow an error
// value or other dynamic argument are left alone.
package panicstyle

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis/lint"
)

// Analyzer is the panicstyle check.
var Analyzer = &lint.Analyzer{
	Name:      "panicstyle",
	Doc:       `enforce the "pkg: message" panic-message convention in internal packages`,
	AppliesTo: lint.ScopePrefix("repro/internal"),
	Run:       run,
}

// formatters are fmt functions whose first literal argument carries the
// eventual panic message.
var formatters = map[string]bool{"Sprintf": true, "Sprint": true, "Errorf": true}

func run(pass *lint.Pass) error {
	pkgName := strings.TrimSuffix(pass.Pkg.Name(), "_test")
	want := pkgName + ": "
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); !isBuiltin {
				return true
			}
			msg, ok := literalMessage(pass, call.Args[0])
			if ok && !strings.HasPrefix(msg, want) {
				pass.Reportf(call.Args[0].Pos(), "panic message %q does not start with %q (repo convention: \"pkg: message\")", msg, want)
			}
			return true
		})
	}
	return nil
}

// literalMessage extracts the constant message of a panic argument: a
// string literal, or the literal format string of an fmt call.
func literalMessage(pass *lint.Pass, arg ast.Expr) (string, bool) {
	switch v := ast.Unparen(arg).(type) {
	case *ast.BasicLit:
		if v.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(v.Value)
		return s, err == nil
	case *ast.CallExpr:
		sel, ok := v.Fun.(*ast.SelectorExpr)
		if !ok || !formatters[sel.Sel.Name] || len(v.Args) == 0 {
			return "", false
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return "", false
		}
		if pn, ok := pass.ObjectOf(pkgID).(*types.PkgName); !ok || pn.Imported().Path() != "fmt" {
			return "", false
		}
		return literalMessage(pass, v.Args[0])
	}
	return "", false
}
