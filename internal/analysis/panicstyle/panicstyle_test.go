package panicstyle_test

import (
	"testing"

	"repro/internal/analysis/linttest"
	"repro/internal/analysis/panicstyle"
)

func TestPanicstyle(t *testing.T) {
	linttest.Run(t, "testdata/src/a", panicstyle.Analyzer)
}

func TestScope(t *testing.T) {
	applies := panicstyle.Analyzer.AppliesTo
	if !applies("repro/internal/mesh") || !applies("repro/internal/analysis/lint") {
		t.Error("panicstyle should cover internal packages")
	}
	if applies("repro/cmd/netsim") || applies("repro/internalx") {
		t.Error("panicstyle should not cover non-internal packages")
	}
}
