// Package maporder flags range statements over maps whose bodies have
// order-dependent effects: appending to slices, emitting output, or
// accumulating floating-point values.
//
// Go randomizes map iteration order per run, so any of those effects
// makes output differ between identical invocations — exactly the
// drift the golden experiment tables must never show. Floating-point
// accumulation is included because float addition is not associative:
// summing in map order changes low bits even when the key set is
// identical.
//
// The one sanctioned pattern is collect-then-sort: a body that only
// appends the range key to a slice is accepted when the enclosing
// function later passes that slice to sort or slices, because the
// subsequent sort erases the iteration order.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/lint"
)

// Analyzer is the maporder check.
var Analyzer = &lint.Analyzer{
	Name: "maporder",
	Doc: "flag map iteration with order-dependent effects (appends, output, " +
		"float accumulation) unless keys are collected and sorted",
	AppliesTo: lint.ScopePackages(
		"repro/internal/sim",
		"repro/internal/mcastsim",
		"repro/internal/core",
		"repro/internal/plan",
		"repro/internal/exp",
		"repro/internal/contention",
	),
	Run: run,
}

// writerNames are method/function names whose call inside a map range
// emits output in iteration order.
var writerNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

type finding struct {
	pos  token.Pos
	what string
	// keyCollect marks the sanctioned `s = append(s, k)` shape; slice is
	// the destination object, checked for a later sort.
	keyCollect bool
	slice      types.Object
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rs, enclosingFuncBody(stack))
			return true
		})
	}
	return nil
}

// enclosingFuncBody returns the body of the innermost function on the
// node stack, excluding the range statement itself.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func checkMapRange(pass *lint.Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	keyObj := rangeVarObject(pass, rs.Key)
	var findings []finding

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if fd, ok := classifyAppend(pass, st, keyObj); ok {
				findings = append(findings, fd)
				return true
			}
			if isFloatAccumulation(pass, st) {
				findings = append(findings, finding{pos: st.Pos(), what: "accumulates floating-point values (addition order changes low bits)"})
			}
		case *ast.CallExpr:
			if sel, ok := st.Fun.(*ast.SelectorExpr); ok && writerNames[sel.Sel.Name] {
				findings = append(findings, finding{pos: st.Pos(), what: "writes output in iteration order"})
			}
		}
		return true
	})

	for _, fd := range findings {
		if fd.keyCollect && fd.slice != nil && sortedLater(pass, funcBody, rs.End(), fd.slice) {
			continue
		}
		pass.Reportf(fd.pos, "map iteration %s: go randomizes map order per run; collect keys and sort them first", fd.what)
	}
}

// rangeVarObject resolves the object bound by a range clause variable.
func rangeVarObject(pass *lint.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.ObjectOf(id)
}

// classifyAppend reports whether st is `dst = append(dst, ...)`, and
// whether it is the sanctioned key-collect shape `dst = append(dst, k)`
// with k the range key.
func classifyAppend(pass *lint.Pass, st *ast.AssignStmt, keyObj types.Object) (finding, bool) {
	if (st.Tok != token.ASSIGN && st.Tok != token.DEFINE) || len(st.Rhs) != 1 {
		return finding{}, false
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return finding{}, false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return finding{}, false
	}
	if _, isBuiltin := pass.ObjectOf(fn).(*types.Builtin); !isBuiltin {
		return finding{}, false
	}
	fd := finding{pos: st.Pos(), what: "appends to a slice"}
	if len(st.Lhs) == 1 && len(call.Args) == 2 && keyObj != nil {
		dst, dok := st.Lhs[0].(*ast.Ident)
		arg, aok := call.Args[1].(*ast.Ident)
		if dok && aok && pass.ObjectOf(arg) == keyObj {
			fd.keyCollect = true
			fd.slice = pass.ObjectOf(dst)
		}
	}
	return fd, true
}

// isFloatAccumulation reports whether st compounds a float variable
// (+=, -=, *=, /=).
func isFloatAccumulation(pass *lint.Pass, st *ast.AssignStmt) bool {
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return false
	}
	if len(st.Lhs) != 1 {
		return false
	}
	t := pass.TypeOf(st.Lhs[0])
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sortedLater reports whether funcBody contains, after pos, a call into
// package sort or slices that mentions the given slice object.
func sortedLater(pass *lint.Pass, funcBody *ast.BlockStmt, pos token.Pos, slice types.Object) bool {
	if funcBody == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.ObjectOf(pkgID).(*types.PkgName)
		if !ok {
			return true
		}
		if p := pkgName.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.ObjectOf(id) == slice {
					mentioned = true
					return false
				}
				return true
			})
			if mentioned {
				found = true
				break
			}
		}
		return !found
	})
	return found
}
