package a

import (
	"fmt"
	"sort"
	"strings"
)

func badAppend(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want `appends to a slice`
	}
	return out
}

func badOutput(m map[string]int, sb *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(sb, "%s=%d\n", k, v) // want `writes output in iteration order`
	}
}

func badFloat(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `accumulates floating-point values`
	}
	return sum
}

func badCollectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appends to a slice`
	}
	return keys
}

func goodCollectSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodCollectSliceSort(m map[int]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func goodSliceRange(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}

func goodInvert(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k // map writes commute when keys are distinct
	}
	return inv
}

func goodIntCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
