package maporder_test

import (
	"testing"

	"repro/internal/analysis/linttest"
	"repro/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	linttest.Run(t, "testdata/src/a", maporder.Analyzer)
}
