package locksafe_test

import (
	"testing"

	"repro/internal/analysis/linttest"
	"repro/internal/analysis/locksafe"
)

func TestLocksafe(t *testing.T) {
	linttest.Run(t, "testdata/src/a", locksafe.Analyzer)
}

// TestGolden pins exact positions and full message text, including
// that the suppressed snapshot copy produces nothing.
func TestGolden(t *testing.T) {
	linttest.RunGolden(t, "testdata/src/a", locksafe.Analyzer, "testdata/golden.txt")
}
