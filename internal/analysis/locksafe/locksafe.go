// Package locksafe guards the race-prone packages (fault plans shared
// across sweep workers, the recovery layer, the experiment engine's
// cache store) against the three lock-handling mistakes that produce
// nondeterministic corruption rather than clean failures:
//
//   - lock-by-value: copying a struct that contains a sync.Mutex or
//     sync.RWMutex (by assignment, by-value call argument, or value
//     receiver) forks the lock state, so two goroutines each "hold"
//     their own copy and the critical section silently stops excluding;
//   - defer-less unlock on multi-return paths: a Lock whose Unlock is
//     a plain statement in a function with several returns after the
//     Lock leaves a path that exits with the lock held;
//   - double-lock: re-locking a mutex already held in the same block
//     self-deadlocks (sync mutexes are not reentrant).
//
// go vet's copylocks catches some of this; locksafe runs in the same
// repolint pass as the repo's determinism analyzers so the invariant
// set travels together, and adds the defer/double-lock checks vet
// does not have.
package locksafe

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"repro/internal/analysis/lint"
)

// Analyzer is the locksafe check. It applies repo-wide: lock misuse is
// wrong in CLIs and test helpers just as in the simulation core.
var Analyzer = &lint.Analyzer{
	Name: "locksafe",
	Doc: "flag lock-by-value copies of structs containing sync.Mutex/RWMutex, " +
		"defer-less Unlock in functions with multiple return paths, and " +
		"double-lock of a mutex already held in the same block",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkValueReceiver(pass, fd)
			if fd.Body == nil {
				continue
			}
			checkFuncBody(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkFuncBody(pass, lit.Body)
				}
				return true
			})
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				checkAssignCopy(pass, v)
			case *ast.CallExpr:
				checkArgCopy(pass, v)
			case *ast.BlockStmt:
				checkDoubleLock(pass, v)
			}
			return true
		})
	}
	return nil
}

// checkValueReceiver flags methods whose value receiver copies a
// lock-containing struct on every call.
func checkValueReceiver(pass *lint.Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return
	}
	rt := pass.TypeOf(fd.Recv.List[0].Type)
	if rt == nil {
		return
	}
	if _, isPtr := rt.Underlying().(*types.Pointer); isPtr {
		return
	}
	if containsLock(rt) {
		pass.Reportf(fd.Recv.List[0].Pos(), "value receiver copies %s, which contains a lock: use a pointer receiver", typeName(pass, rt))
	}
}

// checkAssignCopy flags assignments whose right-hand side copies an
// existing lock-containing value. Composite literals and address-of
// expressions are allowed: initializing a fresh zero-valued lock is
// fine, only copying one after first use forks its state.
func checkAssignCopy(pass *lint.Pass, st *ast.AssignStmt) {
	for _, rhs := range st.Rhs {
		if !isCopySource(rhs) {
			continue
		}
		if t := pass.TypeOf(rhs); t != nil && containsLock(t) {
			pass.Reportf(rhs.Pos(), "assignment copies %s, which contains a lock: locks must not be copied after first use", typeName(pass, t))
		}
	}
}

// checkArgCopy flags call arguments that pass a lock-containing value
// by value.
func checkArgCopy(pass *lint.Pass, call *ast.CallExpr) {
	for _, arg := range call.Args {
		if !isCopySource(arg) {
			continue
		}
		if t := pass.TypeOf(arg); t != nil && containsLock(t) {
			pass.Reportf(arg.Pos(), "call passes %s by value, which contains a lock: pass a pointer", typeName(pass, t))
		}
	}
}

// isCopySource reports whether e denotes an existing value whose
// assignment or by-value passing performs a copy (as opposed to a
// fresh composite literal, an address, or a conversion of one).
func isCopySource(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// checkFuncBody applies the defer-less-unlock check to one function
// body (declaration or literal), without descending into nested
// function literals — each gets its own call.
func checkFuncBody(pass *lint.Pass, body *ast.BlockStmt) {
	type lockSite struct {
		pos  token.Pos
		recv string
		kind string // "Lock" or "RLock"
	}
	var locks []lockSite
	deferred := make(map[string]bool) // recv+unlock kind seen in a defer
	plain := make(map[string]bool)    // recv+unlock kind as plain statement
	var returns []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			returns = append(returns, v.Pos())
		case *ast.DeferStmt:
			if recv, method, ok := syncLockCall(pass, v.Call); ok && (method == "Unlock" || method == "RUnlock") {
				deferred[recv+"."+method] = true
			}
		case *ast.CallExpr:
			if recv, method, ok := syncLockCall(pass, v); ok {
				switch method {
				case "Lock", "RLock":
					locks = append(locks, lockSite{v.Pos(), recv, method})
				case "Unlock", "RUnlock":
					plain[recv+"."+method] = true
				}
			}
		}
		return true
	})
	for _, l := range locks {
		unlock := "Unlock"
		if l.kind == "RLock" {
			unlock = "RUnlock"
		}
		if deferred[l.recv+"."+unlock] || !plain[l.recv+"."+unlock] {
			continue
		}
		after := 0
		for _, r := range returns {
			if r > l.pos {
				after++
			}
		}
		if after >= 2 {
			pass.Reportf(l.pos, "%s.%s with a non-deferred %s and %d return paths after it: a path can exit with the lock held; defer %s.%s()",
				l.recv, l.kind, unlock, after, l.recv, unlock)
		}
	}
}

// checkDoubleLock scans the direct statements of one block in order,
// tracking which receivers hold a lock, and flags a re-lock of a
// receiver already held. Branch-local locking lives in nested blocks,
// which get their own scan, so if/else arms do not false-positive.
func checkDoubleLock(pass *lint.Pass, block *ast.BlockStmt) {
	held := make(map[string]string) // recv -> "Lock" | "RLock"
	for _, st := range block.List {
		es, ok := st.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		recv, method, ok := syncLockCall(pass, call)
		if !ok {
			continue
		}
		switch method {
		case "Lock":
			if prev, locked := held[recv]; locked {
				pass.Reportf(call.Pos(), "%s.Lock() while already holding %s.%s in this block: sync locks are not reentrant, this self-deadlocks", recv, recv, prev)
			}
			held[recv] = "Lock"
		case "RLock":
			if prev, locked := held[recv]; locked && prev == "Lock" {
				pass.Reportf(call.Pos(), "%s.RLock() while already holding %s.Lock in this block: sync locks are not reentrant, this self-deadlocks", recv, recv)
			}
			held[recv] = "RLock"
		case "Unlock", "RUnlock":
			delete(held, recv)
		}
	}
}

// syncLockCall resolves a call of the form recv.Lock()/Unlock()/
// RLock()/RUnlock() where the method belongs to package sync (directly
// or promoted through an embedded mutex). recv is the receiver
// expression rendered as source text, the identity double-lock and
// defer matching key on.
func syncLockCall(pass *lint.Pass, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := pass.ObjectOf(sel.Sel).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), sel.X); err != nil {
		return "", "", false
	}
	return buf.String(), sel.Sel.Name, true
}

// containsLock reports whether a value of type t embeds lock state:
// it is, or transitively contains (through struct fields and arrays),
// a sync.Mutex or sync.RWMutex.
func containsLock(t types.Type) bool {
	return containsLockSeen(t, make(map[types.Type]bool))
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockSeen(u.Elem(), seen)
	}
	return false
}

// typeName renders t relative to the analyzed package.
func typeName(pass *lint.Pass, t types.Type) string {
	return types.TypeString(t, types.RelativeTo(pass.Pkg))
}
