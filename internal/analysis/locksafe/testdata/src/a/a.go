// Package a is the locksafe fixture: lock-by-value copies, defer-less
// unlocks on multi-return paths, and double-locks are flagged; the
// standard defer discipline is not.
package a

import "sync"

type Guarded struct {
	mu sync.Mutex
	n  int
}

type RW struct {
	mu sync.RWMutex
	m  map[int]int
}

func copies(g Guarded) int {
	g2 := g // want `assignment copies Guarded, which contains a lock`
	return g2.n
}

func (g Guarded) ValueRecv() int { // want `value receiver copies Guarded, which contains a lock`
	return g.n
}

func (g *Guarded) PtrRecv() int { return g.n } // ok

func byValue(g Guarded) int { return g.n }

func callsByValue(g *Guarded) int {
	return byValue(*g) // want `call passes Guarded by value, which contains a lock`
}

func fresh() *Guarded {
	return &Guarded{n: 1} // ok: composite literal initializes a zero-valued lock
}

func deferless(g *Guarded, a, b int) int {
	g.mu.Lock() // want `g\.mu\.Lock with a non-deferred Unlock and 2 return paths`
	if a > b {
		g.mu.Unlock()
		return a
	}
	g.mu.Unlock()
	return b
}

func deferred(g *Guarded, a, b int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if a > b {
		return a
	}
	return b
}

func straightline(g *Guarded) {
	g.mu.Lock() // ok: no early returns, unlock on the single path
	g.n++
	g.mu.Unlock()
}

func double(g *Guarded) {
	g.mu.Lock()
	g.mu.Lock() // want `g\.mu\.Lock\(\) while already holding g\.mu\.Lock`
	g.mu.Unlock()
	g.mu.Unlock()
}

func relock(g *Guarded) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	g.mu.Lock() // ok: previous hold was released
	g.n++
	g.mu.Unlock()
}

func branchLocks(g *Guarded, cond bool) {
	if cond {
		g.mu.Lock()
		g.n++
		g.mu.Unlock()
	} else {
		g.mu.Lock() // ok: sibling branch, never held together
		g.n--
		g.mu.Unlock()
	}
}

func readThenWrite(r *RW, k int) {
	r.mu.Lock()
	r.mu.RLock() // want `r\.mu\.RLock\(\) while already holding r\.mu\.Lock`
	_ = r.m[k]
	r.mu.RUnlock()
	r.mu.Unlock()
}

func (r *RW) get(k int) int {
	r.mu.RLock() // ok: one return after the lock, straight-line pair
	v := r.m[k]
	r.mu.RUnlock()
	return v
}

func suppressed(g *Guarded) Guarded {
	//lint:ignore locksafe fixture snapshots the guarded value for a test assertion
	snapshot := *g
	return snapshot
}
