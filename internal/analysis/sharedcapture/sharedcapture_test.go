package sharedcapture_test

import (
	"testing"

	"repro/internal/analysis/linttest"
	"repro/internal/analysis/sharedcapture"
)

func TestSharedcapture(t *testing.T) {
	linttest.Run(t, "testdata/src/a", sharedcapture.Analyzer)
}
