package a

import "repro/internal/sim"

type cell struct{ lat, blocked float64 }

func bad(n int) float64 {
	sum := 0.0
	first := make([]float64, n)
	byTrial := make(map[int]float64)
	var count int
	sim.ForEach(n, 4, func(i int) {
		sum += float64(i)       // want `writes captured variable sum`
		first[0] = float64(i)   // want `writes captured variable first`
		byTrial[i] = float64(i) // want `writes captured map byTrial`
		count++                 // want `writes captured variable count`
	})
	return sum + first[0] + float64(count)
}

func good(n int) []cell {
	out := make([]cell, n)
	jobs := make([]int, n)
	sim.ForEach(n, 0, func(i int) {
		r := sim.NewRNG(uint64(i))
		j := jobs[i]
		out[i].lat = r.Float64()
		out[j] = cell{lat: r.Float64(), blocked: r.Float64()}
		local := 0
		local++
		_ = local
	})
	return out
}

// Reads of captured state and index-local writes through derived
// indices are the documented contract; serial helpers are unaffected.
func serial(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
