// Package sharedcapture enforces the index-local-state contract of the
// repo's concurrent entry points.
//
// sim.ForEach documents that the closure it receives "must write only
// to index-local state": every worker goroutine may write results[i]
// for its own i, but never a shared accumulator, because scheduling
// order would then leak into the output (and the race detector would
// fire). This analyzer checks closures passed to those entry points:
// a write to a captured variable is only allowed when the left-hand
// side is indexed by something declared inside the closure (the loop
// parameter or a value derived from it). Writes to captured maps are
// always flagged — concurrent map writes race even on distinct keys.
package sharedcapture

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/lint"
)

// concurrentEntryPoints names the functions whose closure arguments run
// on multiple goroutines. Extend this set when mcastsim or sim grow new
// parallel entry points.
var concurrentEntryPoints = map[string]bool{
	"repro/internal/sim.ForEach": true,
}

// Analyzer is the sharedcapture check.
var Analyzer = &lint.Analyzer{
	Name: "sharedcapture",
	Doc: "flag closures passed to sim.ForEach (and other concurrent entry " +
		"points) that write captured variables not indexed by the loop parameter",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || !concurrentEntryPoints[fn.FullName()] {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					checkClosure(pass, lit)
				}
			}
			return true
		})
	}
	return nil
}

// calleeFunc resolves the called function, whether spelled pkg.F, F, or
// through parentheses.
func calleeFunc(pass *lint.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

func checkClosure(pass *lint.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				checkWrite(pass, lit, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, lit, st.X)
		}
		return true
	})
}

// checkWrite inspects one assignment target inside the closure. The
// write is reported when its root variable is captured from outside the
// closure and no index along the access path is derived from
// closure-local state.
func checkWrite(pass *lint.Pass, lit *ast.FuncLit, lhs ast.Expr) {
	indexedLocally := false
	capturedMap := false
	e := lhs
walk:
	for {
		switch v := e.(type) {
		case *ast.Ident:
			obj := pass.ObjectOf(v)
			vr, ok := obj.(*types.Var)
			if !ok || !capturedBy(lit, vr) {
				return
			}
			if capturedMap {
				pass.Reportf(lhs.Pos(), "closure passed to a concurrent entry point writes captured map %s: concurrent map writes race even on distinct keys", v.Name)
				return
			}
			if !indexedLocally {
				pass.Reportf(lhs.Pos(), "closure passed to a concurrent entry point writes captured variable %s without indexing by the loop parameter; results depend on goroutine scheduling", v.Name)
			}
			return
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			if t := pass.TypeOf(v.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					capturedMap = true
				}
			}
			if mentionsLocal(pass, lit, v.Index) {
				indexedLocally = true
			}
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			break walk
		}
	}
}

// capturedBy reports whether the variable is declared outside the
// closure's source range, i.e. captured by reference.
func capturedBy(lit *ast.FuncLit, v *types.Var) bool {
	return v.Pos() < lit.Pos() || v.Pos() > lit.End()
}

// mentionsLocal reports whether expr references any object declared
// inside the closure (its parameters or locals).
func mentionsLocal(pass *lint.Pass, lit *ast.FuncLit, expr ast.Expr) bool {
	local := false
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.ObjectOf(id)
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			local = true
			return false
		}
		return true
	})
	return local
}
