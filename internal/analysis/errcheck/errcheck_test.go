package errcheck_test

import (
	"testing"

	"repro/internal/analysis/errcheck"
	"repro/internal/analysis/linttest"
)

func TestErrcheck(t *testing.T) {
	linttest.Run(t, "testdata/src/a", errcheck.Analyzer)
}
