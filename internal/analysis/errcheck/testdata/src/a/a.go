package a

import (
	"fmt"
	"os"
	"strings"
)

func mightFail() error { return nil }

func parse(s string) (int, error) { return len(s), nil }

func cleanup() error { return nil }

func run() {
	mightFail()         // want `unchecked error returned by mightFail`
	parse("x")          // want `unchecked error returned by parse`
	defer cleanup()     // want `unchecked error returned by cleanup`
	go mightFail()      // want `unchecked error returned by mightFail`
	os.Remove("/tmp/x") // want `unchecked error returned by os.Remove`

	fmt.Fprintln(os.Stderr, "best-effort diagnostics are exempt")
	fmt.Println("as is stdout")
	var sb strings.Builder
	sb.WriteString("in-memory writes never fail")

	if err := mightFail(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	_ = mightFail() // explicit discard is a visible decision
	n, _ := parse("y")
	_ = n
}
