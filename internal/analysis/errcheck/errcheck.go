// Package errcheck is a lightweight unchecked-error analyzer for the
// repo's command mains. A simulation CLI that drops an error keeps
// emitting tables that look valid but come from a half-finished run —
// worse than crashing. Statement-position calls (including defer and
// go) whose result tuple ends in an error must consume it; writing
// through fmt to a terminal stream or an in-memory buffer is exempt,
// matching the repo's existing "best-effort stderr diagnostics" idiom.
package errcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/lint"
)

// Analyzer is the errcheck-lite check.
var Analyzer = &lint.Analyzer{
	Name:      "errcheck",
	Doc:       "flag statement calls in cmd/ mains whose returned error is silently dropped",
	AppliesTo: lint.ScopePrefix("repro/cmd"),
	Run:       run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = st.Call
			case *ast.GoStmt:
				call = st.Call
			}
			if call == nil || !returnsError(pass, call) || exempt(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "unchecked error returned by %s", types.ExprString(call.Fun))
			return true
		})
	}
	return nil
}

// returnsError reports whether the call's last result is an error.
func returnsError(pass *lint.Pass, call *ast.CallExpr) bool {
	errType := types.Universe.Lookup("error").Type()
	t := pass.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		return t.Len() > 0 && types.Identical(t.At(t.Len()-1).Type(), errType)
	default:
		return types.Identical(t, errType)
	}
}

// exempt reports whether the dropped error is conventionally ignorable:
// fmt printing (stdout/stderr writes where the only recourse would be
// printing another error) and writes to in-memory buffers that are
// documented never to fail.
func exempt(pass *lint.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pkgID, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.ObjectOf(pkgID).(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
			name := sel.Sel.Name
			return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")
		}
	}
	if recv := pass.TypeOf(sel.X); recv != nil {
		switch types.TypeString(recv, nil) {
		case "*strings.Builder", "strings.Builder", "*bytes.Buffer", "bytes.Buffer":
			return true
		}
	}
	return false
}
