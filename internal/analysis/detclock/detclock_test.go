package detclock_test

import (
	"testing"

	"repro/internal/analysis/detclock"
	"repro/internal/analysis/linttest"
)

func TestDetclock(t *testing.T) {
	linttest.Run(t, "testdata/src/a", detclock.Analyzer)
}

// TestGolden pins exact positions and full message text, including
// that the //lint:ignore case produces nothing at all.
func TestGolden(t *testing.T) {
	linttest.RunGolden(t, "testdata/src/a", detclock.Analyzer, "testdata/golden.txt")
}

// TestTrafficFixture pins the open-system engine's arrival invariant at
// the lint layer: wall-clock jitter and global-generator draws in
// traffic-shaped code are flagged, seeded streams pass.
func TestTrafficFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/traffic", detclock.Analyzer)
}

func TestTrafficFixtureGolden(t *testing.T) {
	linttest.RunGolden(t, "testdata/src/traffic", detclock.Analyzer, "testdata/golden_traffic.txt")
}

func TestScope(t *testing.T) {
	applies := detclock.Analyzer.AppliesTo
	for _, p := range []string{
		"repro/internal/sim",
		"repro/internal/wormhole",
		"repro/internal/fault",
		"repro/internal/recover",
		"repro/internal/runner",
		"repro/internal/exp",
		"repro/internal/mcastsim",
		"repro/internal/traffic",
		"repro/cmd/mcastbench",
		"repro/cmd/netsim",
	} {
		if !applies(p) {
			t.Errorf("detclock should apply to %s", p)
		}
	}
	for _, p := range []string{
		"repro/internal/wallclock", // the audited door
		"repro/internal/analysis/lint",
		"repro/internal/mesh",
		"repro/internal/simx",
	} {
		if applies(p) {
			t.Errorf("detclock should not apply to %s", p)
		}
	}
}
