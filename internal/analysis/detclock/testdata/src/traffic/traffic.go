// Package traffic is the open-system-engine fixture: internal/traffic's
// arrival invariant says every arrival cycle is a function of seeded
// streams alone, so the tempting shortcuts — wall-clock jitter on a
// gap, a global-generator draw for a burst phase — must be flagged,
// while seed derivation and explicit-generator use pass.
package traffic

import (
	"math/rand"
	"time"
)

// deriveSeed mimics the engine's xor stream derivation — pure, allowed.
func deriveSeed(seed uint64) uint64 { return seed ^ 0xa441_9c3a }

// badJitter perturbs an arrival gap with the wall clock: the stream is
// no longer a function of the seed.
func badJitter(gap int64) int64 {
	return gap + time.Now().UnixNano()%3 // want `time\.Now reads the wall clock`
}

// badPhase draws a burst phase from the process-global generator.
func badPhase(period int64) int64 {
	return rand.Int63n(period) // want `rand\.Int63n draws from the process-global generator`
}

// goodGap draws from an explicitly seeded generator — allowed, though
// repo code prefers sim.NewRNG.
func goodGap(seed int64, period int64) int64 {
	r := rand.New(rand.NewSource(seed))
	return r.Int63n(period)
}
