package a

import "time"

// Test files are exempt: wall-clock here bounds fuzz/soak budgets,
// never results, so nothing in this file may be flagged.
func testOnlyTiming() time.Time {
	return time.Now()
}
