// Package a is the detclock fixture: wall-clock reads and global-
// generator randomness must be flagged, seeded construction and
// explicit-generator draws must not.
package a

import (
	"fmt"
	"math/rand"
	"time"
)

func violations(seed int64) {
	t := time.Now()                    // want `time\.Now reads the wall clock`
	fmt.Println(time.Since(t))         // want `time\.Since reads the wall clock`
	_ = rand.Intn(8)                   // want `rand\.Intn draws from the process-global generator`
	rand.Shuffle(4, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global generator`
}

func allowed(seed int64) {
	r := rand.New(rand.NewSource(seed)) // ok: explicitly seeded constructor
	_ = r.Intn(8)                       // ok: draw from an explicit generator
	_ = time.Unix(0, 0)                 // ok: pure conversion, no ambient read
	_ = time.Duration(seed)             // ok: durations are just numbers
}

func suppressed() {
	//lint:ignore detclock fixture demonstrates display-only wall-clock suppression
	_ = time.Now()
}
