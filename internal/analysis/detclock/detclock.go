// Package detclock forbids wall-clock reads and global-generator
// randomness in the simulation, experiment, and CLI packages.
//
// Every number the reproduction publishes — golden tables, fault
// sweeps, recovery figures — must be a pure function of explicit seeds
// and the event-queue clock (wormhole.Network.Now advancing cycle by
// cycle), or runs stop being bit-identical across kernels, shards,
// cache states, and machines. time.Now and time.Since read ambient
// state by construction; the package-level math/rand draw functions
// pull from a process-global generator whose stream depends on
// whatever ran before. Both are banned from the packages that produce
// or consume experiment numbers. Seeded construction (rand.New,
// rand.NewSource) is allowed — determinism requires an explicit seed,
// not the absence of randomness — though repo code should prefer
// sim.NewRNG, whose stream is stable across Go releases.
//
// The one sanctioned wall-clock door is internal/wallclock, which
// exists solely for progress/ETA display on stderr and must never feed
// a result. Code that legitimately needs elapsed wall time (the
// experiment engine's progress ticker, the CLIs' summary timing) calls
// wallclock.Now/Since; everything else derives timing from simulated
// cycles. Test files are exempt: wall-clock there bounds fuzz and
// soak budgets, not results.
package detclock

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/lint"
)

// Analyzer is the detclock check.
var Analyzer = &lint.Analyzer{
	Name: "detclock",
	Doc: "forbid time.Now/time.Since and global math/rand draws in simulation " +
		"and CLI packages; sim time comes from the event queue, randomness from " +
		"seeded sources, and wall-clock display goes through internal/wallclock",
	AppliesTo: appliesTo,
	Run:       run,
}

// scopes lists the package subtrees whose published numbers must be
// deterministic. internal/wallclock is deliberately absent: it is the
// audited door.
var scopes = []string{
	"repro/internal/sim",
	"repro/internal/wormhole",
	"repro/internal/fault",
	"repro/internal/recover",
	"repro/internal/runner",
	"repro/internal/exp",
	"repro/internal/mcastsim",
	"repro/internal/traffic",
	"repro/cmd",
}

func appliesTo(pkgPath string) bool {
	for _, s := range scopes {
		if pkgPath == s || strings.HasPrefix(pkgPath, s+"/") {
			return true
		}
	}
	return false
}

// seededConstructors are the math/rand package-level functions that
// build an explicitly-seeded generator instead of drawing from the
// global one.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue // wall-clock in tests bounds budgets, not results
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.ObjectOf(id).(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "time":
				switch sel.Sel.Name {
				case "Now":
					pass.Reportf(call.Pos(), "time.Now reads the wall clock: derive timing from simulated cycles, or use internal/wallclock for progress display only")
				case "Since":
					pass.Reportf(call.Pos(), "time.Since reads the wall clock: derive timing from simulated cycles, or use internal/wallclock for progress display only")
				}
			case "math/rand", "math/rand/v2":
				if !seededConstructors[sel.Sel.Name] {
					pass.Reportf(call.Pos(), "rand.%s draws from the process-global generator: use sim.NewRNG (or rand.New) with an explicit seed", sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
