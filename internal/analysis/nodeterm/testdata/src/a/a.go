package a

import (
	"math/rand" // want `import of math/rand is forbidden in simulation packages`
	"time"

	"repro/internal/sim"
)

func bad() int64 {
	rand.Seed(42)   // want `rand.Seed mutates the shared global generator`
	t := time.Now() // want `time.Now is nondeterministic`
	return t.UnixNano() + int64(rand.Intn(3))
}

func good(seed uint64) float64 {
	r := sim.NewRNG(seed)
	d := 250 * time.Millisecond // durations are constants, not clock reads: fine
	return r.Float64() * d.Seconds()
}
