// Package nodeterm forbids ambient nondeterminism — math/rand,
// time.Now, and global rand seeding — in the simulation hot paths.
//
// The reproduction's golden tables are validated byte-for-byte, which
// only holds if every random draw flows from an explicit seed through
// sim.RNG (SplitMix64, stable across Go releases) and no timestamp
// leaks into results. math/rand's stream may change between Go
// versions, and time.Now is nondeterministic by construction, so both
// are banned from the packages that produce or consume experiment
// numbers.
package nodeterm

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/analysis/lint"
)

// Analyzer is the nodeterm check.
var Analyzer = &lint.Analyzer{
	Name: "nodeterm",
	Doc: "forbid math/rand, time.Now, and rand.Seed in simulation packages; " +
		"sim.RNG is the only sanctioned randomness source",
	AppliesTo: lint.ScopePackages(
		"repro/internal/sim",
		"repro/internal/mcastsim",
		"repro/internal/core",
		"repro/internal/plan",
		"repro/internal/exp",
		"repro/internal/contention",
	),
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s is forbidden in simulation packages: use sim.RNG with an explicit seed", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.ObjectOf(id).(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "time":
				if sel.Sel.Name == "Now" {
					pass.Reportf(call.Pos(), "time.Now is nondeterministic: derive timing from simulated cycles, not wall clock")
				}
			case "math/rand", "math/rand/v2":
				if sel.Sel.Name == "Seed" {
					pass.Reportf(call.Pos(), "rand.Seed mutates the shared global generator: use sim.NewRNG(seed) instead")
				}
			}
			return true
		})
	}
	return nil
}
