package nodeterm_test

import (
	"testing"

	"repro/internal/analysis/linttest"
	"repro/internal/analysis/nodeterm"
)

func TestNodeterm(t *testing.T) {
	linttest.Run(t, "testdata/src/a", nodeterm.Analyzer)
}

func TestScope(t *testing.T) {
	applies := nodeterm.Analyzer.AppliesTo
	for _, p := range []string{
		"repro/internal/sim", "repro/internal/exp", "repro/internal/exp.test",
	} {
		if !applies(p) {
			t.Errorf("nodeterm should apply to %s", p)
		}
	}
	for _, p := range []string{
		"repro/internal/mesh", "repro/cmd/netsim", "repro/internal/simx",
	} {
		if applies(p) {
			t.Errorf("nodeterm should not apply to %s", p)
		}
	}
}
