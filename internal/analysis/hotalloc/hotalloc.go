// Package hotalloc enforces allocation-freedom in regions marked
// //lint:hotpath.
//
// The stall-aware wormhole kernel's headline claim — 0 allocs/op in
// steady state (BENCH_kernel.json) — is load-bearing: the experiment
// engine runs millions of Step/StepUntil cycles per figure, and a
// single allocation on the per-flit path turns into GC pressure that
// distorts the latency tables the paper reproduction publishes. The
// claim is protected dynamically by the benchmark gate; this analyzer
// protects it statically, at review time, for every function or
// statement annotated //lint:hotpath.
//
// Inside a hot region the analyzer flags the growth-class allocations:
// append (may grow its backing array), make, map and slice composite
// literals, function literals (closure headers allocate), implicit
// interface boxing at call arguments and assignments, and any call
// into fmt (which both allocates and boxes). Struct literals such as a
// pool's &Worm{} miss-path are deliberately not flagged: pools must
// allocate on a miss, and the checks here target per-cycle growth, not
// one-time construction.
//
// Placement: a //lint:hotpath line inside a function's doc comment
// marks the whole body; a standalone //lint:hotpath comment line marks
// the statement immediately below it. A directive attached to nothing
// is itself a diagnostic.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/lint"
)

// Analyzer is the hotalloc check. It applies everywhere: hot regions
// exist only where a //lint:hotpath annotation was deliberately
// placed, so there is no package scope to restrict.
var Analyzer = &lint.Analyzer{
	Name: "hotalloc",
	Doc: "in //lint:hotpath functions and statements, flag append, make, " +
		"map/slice literals, closures, interface boxing, and fmt calls — the " +
		"allocations that would break the kernel's 0 allocs/op steady state",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, region := range hotRegions(pass, f) {
			checkRegion(pass, region)
		}
	}
	return nil
}

// hotRegions resolves every //lint:hotpath directive in f to the AST
// node it marks: the body of the function whose doc comment holds it,
// or the first statement starting after a standalone directive line.
// Dangling directives are reported.
func hotRegions(pass *lint.Pass, f *ast.File) []ast.Node {
	var marks []*ast.Comment
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if isHotpath(c) {
				marks = append(marks, c)
			}
		}
	}
	if len(marks) == 0 {
		return nil
	}
	used := make(map[*ast.Comment]bool)
	var regions []ast.Node
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil || fd.Body == nil {
			continue
		}
		for _, m := range marks {
			if m.Pos() >= fd.Doc.Pos() && m.End() <= fd.Doc.End() {
				used[m] = true
				regions = append(regions, fd.Body)
			}
		}
	}
	for _, m := range marks {
		if used[m] {
			continue
		}
		if stmt := stmtAfter(f, m.End()); stmt != nil {
			regions = append(regions, stmt)
		} else {
			pass.Reportf(m.Pos(), "//lint:hotpath is not attached to a function or statement")
		}
	}
	return regions
}

// isHotpath reports whether c is a hotpath directive. Malformed
// //lint: comments are the lint framework's to report, not ours.
func isHotpath(c *ast.Comment) bool {
	const prefix = "//lint:hotpath"
	if len(c.Text) < len(prefix) || c.Text[:len(prefix)] != prefix {
		return false
	}
	rest := c.Text[len(prefix):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// stmtAfter returns the statement with the smallest starting position
// after pos, i.e. the statement a standalone directive line annotates.
func stmtAfter(f *ast.File, pos token.Pos) ast.Stmt {
	var best ast.Stmt
	ast.Inspect(f, func(n ast.Node) bool {
		s, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		if s.Pos() > pos && (best == nil || s.Pos() < best.Pos()) {
			best = s
		}
		return true
	})
	return best
}

// checkRegion flags the growth-class allocations inside one hot region.
func checkRegion(pass *lint.Pass, region ast.Node) {
	ast.Inspect(region, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, v)
		case *ast.CompositeLit:
			if t := pass.TypeOf(v); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					pass.Reportf(v.Pos(), "map literal allocates in hot path: hoist it out of the hot region")
				case *types.Slice:
					pass.Reportf(v.Pos(), "slice literal allocates in hot path: hoist it out of the hot region")
				}
			}
		case *ast.FuncLit:
			if name := capturedVar(pass, v); name != "" {
				pass.Reportf(v.Pos(), "function literal in hot path captures %s and allocates a closure: hoist or outline it", name)
			} else {
				pass.Reportf(v.Pos(), "function literal allocates in hot path: hoist or outline it")
			}
		case *ast.AssignStmt:
			checkAssignBoxing(pass, v)
		}
		return true
	})
}

// checkCall flags allocating builtins, fmt calls, and interface boxing
// at argument positions.
func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pass.ObjectOf(fun).(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				pass.Reportf(call.Pos(), "append in hot path can grow its backing array: reserve capacity outside the hot region and write by index")
			case "make":
				pass.Reportf(call.Pos(), "make allocates in hot path: hoist the allocation out of the hot region")
			case "new":
				pass.Reportf(call.Pos(), "new allocates in hot path: hoist the allocation out of the hot region")
			}
			return
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pkgName, ok := pass.ObjectOf(id).(*types.PkgName); ok && pkgName.Imported().Path() == "fmt" {
				pass.Reportf(call.Pos(), "fmt.%s in hot path allocates and boxes its arguments: format on a cold path instead", fun.Sel.Name)
				return // per-argument boxing reports would be noise on top
			}
		}
	}
	// T(x) conversions to an interface type box x.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && boxes(tv.Type, pass.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "converting %s to interface %s boxes the value in hot path",
				typeName(pass, pass.TypeOf(call.Args[0])), typeName(pass, tv.Type))
		}
		return
	}
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if at := pass.TypeOf(arg); boxes(pt, at) {
			pass.Reportf(arg.Pos(), "passing %s as interface %s boxes the value in hot path",
				typeName(pass, at), typeName(pass, pt))
		}
	}
}

// checkAssignBoxing flags assignments that box a concrete value into
// an existing interface-typed destination.
func checkAssignBoxing(pass *lint.Pass, st *ast.AssignStmt) {
	if st.Tok != token.ASSIGN || len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, lhs := range st.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		lt, rt := pass.TypeOf(lhs), pass.TypeOf(st.Rhs[i])
		if boxes(lt, rt) {
			pass.Reportf(st.Rhs[i].Pos(), "assigning %s to interface %s boxes the value in hot path",
				typeName(pass, rt), typeName(pass, lt))
		}
	}
}

// boxes reports whether storing a value of type from into a location
// of type to allocates an interface box: to is an interface, from is a
// concrete non-nil type.
func boxes(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return false
	}
	if _, ok := from.Underlying().(*types.Interface); ok {
		return false
	}
	if b, ok := from.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

// typeName renders t relative to the analyzed package, keeping
// messages short and stable.
func typeName(pass *lint.Pass, t types.Type) string {
	if t == nil {
		return "<unknown>"
	}
	return types.TypeString(t, types.RelativeTo(pass.Pkg))
}

// capturedVar returns the name of one variable the function literal
// captures from its enclosing scope, or "" when it captures nothing.
func capturedVar(pass *lint.Pass, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.ObjectOf(id).(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == pass.Pkg.Scope() {
			return true // package-level vars are referenced, not captured
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			name = v.Name()
			return false
		}
		return true
	})
	return name
}
