package hotalloc_test

import (
	"testing"

	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/linttest"
)

func TestHotalloc(t *testing.T) {
	linttest.Run(t, "testdata/src/a", hotalloc.Analyzer)
}

// TestGolden pins exact positions and full message text, including
// that the suppressed hot append produces nothing and the dangling
// directive is reported.
func TestGolden(t *testing.T) {
	linttest.RunGolden(t, "testdata/src/a", hotalloc.Analyzer, "testdata/golden.txt")
}
