// Package a is the hotalloc fixture: growth-class allocations inside
// //lint:hotpath regions are flagged; identical code outside them is
// not.
package a

import "fmt"

type S struct {
	vals      []int
	completed []int
}

func sink(v any) {}

// hot is marked hot through its doc comment, so the whole body is a
// hot region.
//
//lint:hotpath
func (s *S) hot(n int) {
	s.vals = append(s.vals, n) // want `append in hot path can grow its backing array`
	m := make([]int, 8)        // want `make allocates in hot path`
	_ = m
	p := new(int) // want `new allocates in hot path`
	_ = p
	fmt.Println(n)               // want `fmt\.Println in hot path allocates and boxes`
	_ = map[int]int{1: 2}        // want `map literal allocates in hot path`
	_ = []int{n}                 // want `slice literal allocates in hot path`
	f := func() int { return n } // want `function literal in hot path captures n`
	_ = f()
	var box any
	box = n // want `boxes the value in hot path`
	_ = box
	sink(n) // want `passing int as interface .* boxes the value in hot path`
}

func cold(s *S, n int) {
	s.vals = append(s.vals, n) // ok: not in a hot region
	//lint:hotpath
	for i := 0; i < n; i++ {
		s.vals = append(s.vals, i) // want `append in hot path can grow its backing array`
	}
	s.vals = append(s.vals, n) // ok: after the annotated statement
}

// fixed shows the sanctioned shapes: indexed writes into capacity
// reserved outside the region, and struct-literal pool misses.
//
//lint:hotpath
func (s *S) fixed(n int) {
	k := len(s.completed)
	s.completed = s.completed[:k+1] // ok: reslice within reserved capacity
	s.completed[k] = n              // ok: indexed write
	_ = &S{}                        // ok: struct literals are construction, not growth
}

func suppressed(s *S, n int) {
	//lint:hotpath
	{
		//lint:ignore hotalloc fixture demonstrates a justified suppression
		s.vals = append(s.vals, n)
	}
}

//lint:hotpath // want `//lint:hotpath is not attached to a function or statement`
