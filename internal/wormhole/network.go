package wormhole

import (
	"fmt"
)

// Config holds the fabric parameters. The zero value is not valid; use
// DefaultConfig and adjust.
type Config struct {
	// FlitBytes is the payload carried per flit.
	FlitBytes int
	// HeaderFlits is the per-message header overhead in flits (routing
	// information, destination address list framing).
	HeaderFlits int
	// BufFlits is the flit buffer capacity of every channel. Wormhole
	// routers traditionally have very small buffers; 2 is typical.
	BufFlits int
	// RouterDelay is the number of cycles a router needs to make a
	// routing decision for a header flit at each hop.
	RouterDelay int64
}

// DefaultConfig returns the fabric parameters used by the experiments:
// 8-byte flits, 1 header flit, 2-flit channel buffers, 1-cycle routing
// decisions.
func DefaultConfig() Config {
	return Config{FlitBytes: 8, HeaderFlits: 1, BufFlits: 2, RouterDelay: 1}
}

// Validate reports an error for non-positive parameters.
func (c Config) Validate() error {
	if c.FlitBytes <= 0 {
		return fmt.Errorf("wormhole: FlitBytes %d <= 0", c.FlitBytes)
	}
	if c.HeaderFlits <= 0 {
		return fmt.Errorf("wormhole: HeaderFlits %d <= 0 (the header flit carries the route)", c.HeaderFlits)
	}
	if c.BufFlits <= 0 {
		return fmt.Errorf("wormhole: BufFlits %d <= 0", c.BufFlits)
	}
	if c.RouterDelay < 0 {
		return fmt.Errorf("wormhole: RouterDelay %d < 0", c.RouterDelay)
	}
	return nil
}

// Flits returns the number of flits a message of the given payload size
// occupies under this configuration.
func (c Config) Flits(bytes int) int {
	return c.HeaderFlits + (bytes+c.FlitBytes-1)/c.FlitBytes
}

// ArrivalFunc is invoked (after the cycle's phases complete) when a worm's
// tail flit has been consumed by the destination interface.
type ArrivalFunc func(w *Worm, now int64)

// Observer receives fabric events for tracing and analysis. All methods
// are called synchronously from Step; implementations must not mutate the
// network. A nil observer costs one predictable branch per event.
type Observer interface {
	// Acquire fires when a worm takes ownership of a channel.
	Acquire(now int64, w *Worm, c ChannelID)
	// Release fires when the worm's last flit leaves the channel.
	Release(now int64, w *Worm, c ChannelID)
	// Blocked fires each cycle a header wants a channel owned by
	// another worm; holder is the current owner.
	Blocked(now int64, w *Worm, c ChannelID, holder *Worm)
	// Complete fires when the worm's tail is consumed at its
	// destination.
	Complete(now int64, w *Worm)
}

// Worm is one in-flight message.
type Worm struct {
	// ID is the creation sequence number; arbitration is oldest-first.
	ID int64
	// Src and Dst are the endpoints.
	Src, Dst NodeID
	// Bytes is the payload size.
	Bytes int
	// Tag carries caller context (e.g. the multicast segment) untouched.
	Tag any

	// BlockedCycles counts cycles the header spent wanting a channel
	// owned by another worm: the network-contention metric of the paper.
	BlockedCycles int64
	// InjectWaitCycles counts cycles spent waiting for the node's single
	// injection channel (one-port serialization, not network contention).
	InjectWaitCycles int64
	// InjectedAt is the cycle the first flit entered the fabric.
	InjectedAt int64
	// ArrivedAt is the cycle the tail flit was consumed at Dst.
	ArrivedAt int64

	flits         int
	path          []ChannelID
	passed        []int // flits that have exited path[i]
	injected      int
	headerReadyAt int64
	routed        bool // path ends at Dst's ejection channel
	done          bool
	onArrive      ArrivalFunc
	createdAt     int64
}

// Flits returns the worm's total flit count.
func (w *Worm) Flits() int { return w.flits }

// Path returns the channels acquired so far (shared slice; do not modify).
func (w *Worm) Path() []ChannelID { return w.path }

// Done reports whether the worm has been fully consumed at its
// destination.
func (w *Worm) Done() bool { return w.done }

func (w *Worm) entered(i int) int {
	if i == 0 {
		return w.injected
	}
	return w.passed[i-1]
}

func (w *Worm) occ(i int) int { return w.entered(i) - w.passed[i] }

// Stats aggregates fabric-level counters across completed worms.
type Stats struct {
	// Cycles is the number of simulated cycles stepped.
	Cycles int64
	// Worms is the number of completed messages.
	Worms int64
	// FlitHops counts every flit-channel event: injection into the first
	// channel, each inter-channel move, and consumption out of the last —
	// flits*(pathLen+1) per worm.
	FlitHops int64
	// BlockedCycles sums header-blocked cycles over all worms
	// (contention).
	BlockedCycles int64
	// InjectWaitCycles sums one-port injection waiting over all worms.
	InjectWaitCycles int64
}

// Network is the simulator state for one fabric instance.
type Network struct {
	topo Topology
	cfg  Config
	now  int64

	owner  []*Worm // per channel; nil = free
	inject []ChannelID
	eject  []ChannelID

	worms     []*Worm // active, in creation order
	completed []*Worm // filled during a Step, drained at its end
	nextID    int64
	routeBuf  []ChannelID
	stats     Stats
	obs       Observer

	// Virtual-channel support (nil lg = every channel has its own link).
	lg        LinkGrouper
	linkStamp []int64 // cycle a link last carried a flit
	rotation  int     // phase-A fairness rotation among worms
}

// New creates a network over the given topology. It panics on an invalid
// config, which is a programming error, not an operational condition.
func New(topo Topology, cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := &Network{
		topo:   topo,
		cfg:    cfg,
		owner:  make([]*Worm, topo.NumChannels()),
		inject: make([]ChannelID, topo.NumNodes()),
		eject:  make([]ChannelID, topo.NumNodes()),
	}
	for i := 0; i < topo.NumNodes(); i++ {
		n.inject[i] = topo.InjectChannel(NodeID(i))
		n.eject[i] = topo.EjectChannel(NodeID(i))
	}
	if lg, ok := topo.(LinkGrouper); ok {
		n.lg = lg
		n.linkStamp = make([]int64, lg.NumLinks())
		for i := range n.linkStamp {
			n.linkStamp[i] = -1
		}
	}
	return n
}

// linkFree reports whether a flit may enter channel c this cycle, and
// claims the underlying physical link if so. Channels with dedicated
// links (or on fabrics without virtual channels) are always free.
func (n *Network) linkFree(c ChannelID) bool {
	if n.lg == nil {
		return true
	}
	l := n.lg.LinkOf(c)
	if l < 0 {
		return true
	}
	if n.linkStamp[l] == n.now {
		return false
	}
	n.linkStamp[l] = n.now
	return true
}

// Topology returns the fabric's topology.
func (n *Network) Topology() Topology { return n.topo }

// Config returns the fabric parameters.
func (n *Network) Config() Config { return n.cfg }

// Now returns the current simulation time in cycles.
func (n *Network) Now() int64 { return n.now }

// Active returns the number of in-flight worms.
func (n *Network) Active() int { return len(n.worms) }

// Stats returns a snapshot of the aggregate counters.
func (n *Network) Stats() Stats { return n.stats }

// SetObserver installs (or, with nil, removes) a fabric event observer.
func (n *Network) SetObserver(o Observer) { n.obs = o }

// AdvanceTo fast-forwards the clock when the fabric is idle, so software
// latencies far larger than network activity do not cost simulation work.
// It panics if worms are in flight or t is in the past.
func (n *Network) AdvanceTo(t int64) {
	if len(n.worms) != 0 {
		panic("wormhole: AdvanceTo with active worms")
	}
	if t < n.now {
		panic(fmt.Sprintf("wormhole: AdvanceTo(%d) before now=%d", t, n.now))
	}
	n.now = t
}

// Send creates a worm from src to dst carrying bytes of payload. The worm
// begins competing for src's injection channel on the next Step. onArrive
// (optional) fires when the tail flit is consumed at dst. Sending to
// oneself is allowed (the worm traverses the local inject/eject pair).
func (n *Network) Send(src, dst NodeID, bytes int, tag any, onArrive ArrivalFunc) *Worm {
	if bytes < 0 {
		panic(fmt.Sprintf("wormhole: Send with negative size %d", bytes))
	}
	if int(src) < 0 || int(src) >= n.topo.NumNodes() || int(dst) < 0 || int(dst) >= n.topo.NumNodes() {
		panic(fmt.Sprintf("wormhole: Send endpoints %d->%d out of range [0,%d)", src, dst, n.topo.NumNodes()))
	}
	w := &Worm{
		ID:        n.nextID,
		Src:       src,
		Dst:       dst,
		Bytes:     bytes,
		Tag:       tag,
		flits:     n.cfg.Flits(bytes),
		onArrive:  onArrive,
		createdAt: n.now,
	}
	n.nextID++
	n.worms = append(n.worms, w)
	return w
}

// Step advances the simulation by one cycle: flits move downstream-first,
// then headers attempt channel acquisition oldest-worm-first, then arrival
// callbacks fire for worms completed this cycle.
func (n *Network) Step() {
	n.now++
	n.stats.Cycles++
	// Phase A rotates its starting worm for fairness on shared physical
	// links; without link sharing, worm order in this phase is
	// immaterial (channels are owned exclusively and acquisition happens
	// in phase B).
	if k := len(n.worms); k > 0 {
		start := n.rotation % k
		n.rotation++
		for i := 0; i < k; i++ {
			n.moveFlits(n.worms[(start+i)%k])
		}
	}
	for _, w := range n.worms {
		n.routeHeader(w)
	}
	if len(n.completed) > 0 {
		n.reap()
	}
}

// moveFlits advances the worm's flits one channel downstream-first, so a
// flit vacating a buffer makes room for its upstream neighbour within the
// same cycle (full pipelining at one flit per channel per cycle).
func (n *Network) moveFlits(w *Worm) {
	if w.done || len(w.path) == 0 {
		return
	}
	last := len(w.path) - 1
	// Consumption at the destination interface (exits the fabric; no
	// physical link consumed).
	if w.routed && w.occ(last) > 0 {
		w.passed[last]++
		n.stats.FlitHops++
		if w.passed[last] == w.flits {
			n.release(w, last)
			w.done = true
			w.ArrivedAt = n.now
			n.completed = append(n.completed, w)
		}
	}
	// Interior hops.
	for i := last - 1; i >= 0; i-- {
		if w.occ(i) > 0 && w.occ(i+1) < n.cfg.BufFlits && n.linkFree(w.path[i+1]) {
			w.passed[i]++
			n.stats.FlitHops++
			if w.entered(i+1) == 1 && i+1 == last && !w.routed {
				// The header flit just reached the frontier router.
				w.headerReadyAt = n.now + n.cfg.RouterDelay
			}
			if w.passed[i] == w.flits {
				n.release(w, i)
			}
		}
	}
	// Injection from the source interface.
	if w.injected < w.flits && w.occ(0) < n.cfg.BufFlits && n.linkFree(w.path[0]) {
		w.injected++
		n.stats.FlitHops++
		if w.injected == 1 {
			w.InjectedAt = n.now
			if last == 0 && !w.routed {
				w.headerReadyAt = n.now + n.cfg.RouterDelay
			}
		}
	}
}

// routeHeader attempts one channel acquisition for the worm's header.
func (n *Network) routeHeader(w *Worm) {
	if w.done || w.routed {
		return
	}
	if len(w.path) == 0 {
		// Compete for the node's single injection channel.
		c := n.inject[w.Src]
		if n.owner[c] == nil {
			n.acquire(w, c)
		} else {
			w.InjectWaitCycles++
		}
		return
	}
	last := len(w.path) - 1
	if w.entered(last) == 0 || n.now < w.headerReadyAt {
		return // header flit not yet at the frontier, or still routing
	}
	cands := n.topo.Route(w.path[last], w.Src, w.Dst, n.routeBuf[:0])
	n.routeBuf = cands[:0]
	for _, c := range cands {
		if n.owner[c] == nil {
			n.acquire(w, c)
			return
		}
	}
	if len(cands) == 0 {
		panic(fmt.Sprintf("wormhole: topology returned no route from %s for %d->%d",
			n.topo.DescribeChannel(w.path[last]), w.Src, w.Dst))
	}
	w.BlockedCycles++
	if n.obs != nil {
		n.obs.Blocked(n.now, w, cands[0], n.owner[cands[0]])
	}
}

func (n *Network) acquire(w *Worm, c ChannelID) {
	n.owner[c] = w
	w.path = append(w.path, c)
	w.passed = append(w.passed, 0)
	if c == n.eject[w.Dst] {
		w.routed = true
	}
	if n.obs != nil {
		n.obs.Acquire(n.now, w, c)
	}
}

func (n *Network) release(w *Worm, i int) {
	c := w.path[i]
	if n.owner[c] != w {
		panic(fmt.Sprintf("wormhole: releasing channel %s not owned by worm %d", n.topo.DescribeChannel(c), w.ID))
	}
	n.owner[c] = nil
	if n.obs != nil {
		n.obs.Release(n.now, w, c)
	}
}

// reap removes completed worms, preserving creation order of the rest,
// then fires arrival callbacks in completion order.
func (n *Network) reap() {
	live := n.worms[:0]
	for _, w := range n.worms {
		if !w.done {
			live = append(live, w)
		}
	}
	n.worms = live
	done := n.completed
	n.completed = n.completed[:0]
	for _, w := range done {
		n.stats.Worms++
		n.stats.BlockedCycles += w.BlockedCycles
		n.stats.InjectWaitCycles += w.InjectWaitCycles
		if n.obs != nil {
			n.obs.Complete(n.now, w)
		}
		if w.onArrive != nil {
			w.onArrive(w, n.now)
		}
	}
}

// RunUntilIdle steps until no worms are in flight, up to maxCycles. It
// returns the number of cycles stepped and an error on timeout (which in
// a correct deadlock-free topology indicates a routing bug).
func (n *Network) RunUntilIdle(maxCycles int64) (int64, error) {
	start := n.now
	for len(n.worms) > 0 {
		if n.now-start >= maxCycles {
			return n.now - start, fmt.Errorf("wormhole: network not idle after %d cycles (%d worms in flight)", maxCycles, len(n.worms))
		}
		n.Step()
	}
	return n.now - start, nil
}

// Quiesced verifies the post-run invariants: no active worms and every
// channel released. Tests call this to prove conservation (flits injected
// were all consumed and nothing leaked).
func (n *Network) Quiesced() error {
	if len(n.worms) != 0 {
		return fmt.Errorf("wormhole: %d worms still active", len(n.worms))
	}
	for c, w := range n.owner {
		if w != nil {
			return fmt.Errorf("wormhole: channel %s still owned by worm %d", n.topo.DescribeChannel(ChannelID(c)), w.ID)
		}
	}
	return nil
}
