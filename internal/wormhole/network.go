package wormhole

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Config holds the fabric parameters. The zero value is not valid; use
// DefaultConfig and adjust.
type Config struct {
	// FlitBytes is the payload carried per flit.
	FlitBytes int
	// HeaderFlits is the per-message header overhead in flits (routing
	// information, destination address list framing).
	HeaderFlits int
	// BufFlits is the flit buffer capacity of every channel. Wormhole
	// routers traditionally have very small buffers; 2 is typical.
	BufFlits int
	// RouterDelay is the number of cycles a router needs to make a
	// routing decision for a header flit at each hop.
	RouterDelay int64
}

// DefaultConfig returns the fabric parameters used by the experiments:
// 8-byte flits, 1 header flit, 2-flit channel buffers, 1-cycle routing
// decisions.
func DefaultConfig() Config {
	return Config{FlitBytes: 8, HeaderFlits: 1, BufFlits: 2, RouterDelay: 1}
}

// Validate reports an error for non-positive parameters.
func (c Config) Validate() error {
	if c.FlitBytes <= 0 {
		return fmt.Errorf("wormhole: FlitBytes %d <= 0", c.FlitBytes)
	}
	if c.HeaderFlits <= 0 {
		return fmt.Errorf("wormhole: HeaderFlits %d <= 0 (the header flit carries the route)", c.HeaderFlits)
	}
	if c.BufFlits <= 0 {
		return fmt.Errorf("wormhole: BufFlits %d <= 0", c.BufFlits)
	}
	if c.RouterDelay < 0 {
		return fmt.Errorf("wormhole: RouterDelay %d < 0", c.RouterDelay)
	}
	return nil
}

// Flits returns the number of flits a message of the given payload size
// occupies under this configuration.
func (c Config) Flits(bytes int) int {
	return c.HeaderFlits + (bytes+c.FlitBytes-1)/c.FlitBytes
}

// ArrivalFunc is invoked (after the cycle's phases complete) when a worm's
// tail flit has been consumed by the destination interface.
type ArrivalFunc func(w *Worm, now int64)

// Observer receives fabric events for tracing and analysis. All methods
// are called synchronously from Step; implementations must not mutate the
// network. A nil observer costs one predictable branch per event.
type Observer interface {
	// Acquire fires when a worm takes ownership of a channel.
	Acquire(now int64, w *Worm, c ChannelID)
	// Release fires when the worm's last flit leaves the channel.
	Release(now int64, w *Worm, c ChannelID)
	// Blocked fires each cycle a header wants a channel owned by another
	// worm. When the topology offered several routing candidates (all
	// owned, or the header would have advanced), the reported channel is
	// the candidate held by the oldest worm — under oldest-first
	// arbitration the oldest holder heads the blocking chain, so the
	// report names the actual culprit rather than an arbitrary
	// preference; ties on holder resolve to the earliest candidate in
	// preference order. holder is that channel's current owner.
	Blocked(now int64, w *Worm, c ChannelID, holder *Worm)
	// Complete fires when the worm's tail is consumed at its
	// destination.
	Complete(now int64, w *Worm)
}

// Kernel selects the scheduling strategy of the simulator core.
type Kernel int

const (
	// KernelFast is the default stall-aware kernel: worms that provably
	// cannot move skip their per-cycle scan, blocked headers replay a
	// cached routing decision instead of re-routing, and StepUntil jumps
	// the clock over cycles in which nothing can happen. It is
	// observably equivalent to KernelReference (identical Stats,
	// per-worm timings and observer event streams), which the
	// differential and fuzz suites in kernel_diff_test.go enforce.
	KernelFast Kernel = iota
	// KernelReference is the original straight-line kernel: one full
	// pass over every worm per simulated cycle. It is kept as the
	// oracle for differential testing and as the simplest statement of
	// the simulator's semantics.
	KernelReference
)

// Worm is one in-flight message.
type Worm struct {
	// ID is the creation sequence number; arbitration is oldest-first.
	ID int64
	// Src and Dst are the endpoints.
	Src, Dst NodeID
	// Bytes is the payload size.
	Bytes int
	// Tag carries caller context (e.g. the multicast segment) untouched.
	Tag any

	// BlockedCycles counts cycles the header spent wanting a channel
	// owned by another worm: the network-contention metric of the paper.
	BlockedCycles int64
	// InjectWaitCycles counts cycles spent waiting for the node's single
	// injection channel (one-port serialization, not network contention).
	InjectWaitCycles int64
	// InjectedAt is the cycle the first flit entered the fabric.
	InjectedAt int64
	// ArrivedAt is the cycle the tail flit was consumed at Dst.
	ArrivedAt int64

	flits         int
	path          []ChannelID
	passed        []int // flits that have exited path[i]
	injected      int
	headerReadyAt int64
	routed        bool // path ends at Dst's ejection channel
	done          bool
	onArrive      ArrivalFunc
	createdAt     int64

	// Fast-kernel scheduling state. The asleep flag itself lives in
	// Network.asleep, a flat slice indexed by slot, so the per-cycle scan
	// touches one byte per worm instead of a whole Worm struct (and the
	// domain-parallel kernel can write it from worker goroutines: distinct
	// slots are distinct memory locations). slot is the worm's index in
	// the network's slot table for as long as it is in flight; idx is its
	// current position in the active list (creation order), which the
	// parallel kernel uses to reconstruct the serial completion order.
	// waitState caches the header's outcome (blocked on an owned
	// channel, or waiting for the injection port) and is valid while
	// waitEpoch matches the network's ownership epoch — i.e. until any
	// acquire or release anywhere could have changed the answer.
	slot      int32
	idx       int32
	waitState uint8
	waitEpoch int64
	blockCand ChannelID
	blockHold *Worm
}

const (
	waitNone uint8 = iota
	waitBlocked
	waitInject
	// waitUnreachable is terminal: every routing candidate is dead. It is
	// not epoch-guarded — dead channels never heal, so the verdict can
	// never change.
	waitUnreachable
)

// Flits returns the worm's total flit count.
func (w *Worm) Flits() int { return w.flits }

// Path returns the channels acquired so far (shared slice; do not modify).
func (w *Worm) Path() []ChannelID { return w.path }

// Done reports whether the worm has been fully consumed at its
// destination.
func (w *Worm) Done() bool { return w.done }

func (w *Worm) entered(i int) int {
	if i == 0 {
		return w.injected
	}
	return w.passed[i-1]
}

func (w *Worm) occ(i int) int { return w.entered(i) - w.passed[i] }

// Stats aggregates fabric-level counters across completed worms.
type Stats struct {
	// Cycles is the number of simulated cycles stepped.
	Cycles int64
	// Worms is the number of completed messages.
	Worms int64
	// FlitHops counts every flit-channel event: injection into the first
	// channel, each inter-channel move, and consumption out of the last —
	// flits*(pathLen+1) per worm.
	FlitHops int64
	// BlockedCycles sums header-blocked cycles over all worms
	// (contention).
	BlockedCycles int64
	// InjectWaitCycles sums one-port injection waiting over all worms.
	InjectWaitCycles int64
	// Cancelled is the number of worms withdrawn via Cancel before
	// arrival (recovery-layer retransmits and give-ups). Cancelled worms
	// are not counted in Worms and their per-worm blocked/inject-wait
	// counters are discarded with them.
	Cancelled int64
}

// Network is the simulator state for one fabric instance.
type Network struct {
	topo Topology
	cfg  Config
	now  int64

	// Channel occupancy as a flat slice indexed by ChannelID: the slot
	// index of the owning worm, or -1 when free. Slots — not pointers —
	// keep the hot arrays pointer-free and give the parallel kernel
	// stable worm identities across the per-cycle compaction of worms.
	owner  []int32
	inject []ChannelID
	eject  []ChannelID

	// Slot table: slots[w.slot] == w for every in-flight worm; freeSlots
	// holds recycled indices (cap always >= len(slots), so reap can push
	// by index). asleep[s] != 0 means slot s's worm provably cannot move
	// a flit this epoch; one byte per slot rather than a bitset so
	// concurrent domains never write the same word.
	slots     []*Worm
	freeSlots []int32
	asleep    []uint8

	worms     []*Worm // active, in creation order
	completed []*Worm // filled during a Step, drained at its end
	nextID    int64
	routeBuf  []ChannelID
	stats     Stats
	obs       Observer

	// Deterministic domain-parallel stepping (see parallel.go); par <= 1
	// means serial.
	par     int
	domOf   []int32   // node -> domain index
	domList [][]int32 // per-domain active worm slots, in creation order
	domAcc  []domainAcc
	pool    *sim.Pool

	// dlWaiters is DeadlockReport's per-channel waiting-header histogram,
	// cached across invocations (at 1M+ channels a fresh make per
	// watchdog fire is a multi-MB allocation) and cleared lazily.
	dlWaiters []int32

	// Virtual-channel support (nil lg = every channel has its own link).
	lg        LinkGrouper
	linkStamp []int64 // cycle a link last carried a flit
	rotation  int64   // phase-A fairness rotation among worms

	// Kernel scheduling state (see DESIGN.md §4, "kernel scheduling").
	kernel   Kernel
	epoch    int64 // bumped on every acquire/release; keys waitState caches
	progress bool  // the last stepped cycle moved a flit or changed ownership

	// Fault layer (see SetFaults). deadFn and frouter are cached from
	// faults/topo so routing does not rebind method values per call.
	faults     FaultModel
	deadFn     func(ChannelID) bool
	frouter    FaultRouter
	faultStall bool // a flit was refused by Up() in the last stepped cycle
	err        error

	// Worm pooling (see SetRecycling).
	recycle bool
	free    []*Worm
}

// New creates a network over the given topology. It panics on an invalid
// config, which is a programming error, not an operational condition.
func New(topo Topology, cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := &Network{
		topo:   topo,
		cfg:    cfg,
		owner:  make([]int32, topo.NumChannels()),
		inject: make([]ChannelID, topo.NumNodes()),
		eject:  make([]ChannelID, topo.NumNodes()),
		par:    1,
	}
	for i := range n.owner {
		n.owner[i] = -1
	}
	for i := 0; i < topo.NumNodes(); i++ {
		n.inject[i] = topo.InjectChannel(NodeID(i))
		n.eject[i] = topo.EjectChannel(NodeID(i))
	}
	if lg, ok := topo.(LinkGrouper); ok {
		n.lg = lg
		n.linkStamp = make([]int64, lg.NumLinks())
		for i := range n.linkStamp {
			n.linkStamp[i] = -1
		}
	}
	return n
}

// linkFree reports whether a flit may enter channel c this cycle, and
// claims the underlying physical link if so. Channels with dedicated
// links (or on fabrics without virtual channels) are always free.
func (n *Network) linkFree(c ChannelID) bool {
	if n.lg == nil {
		return true
	}
	l := n.lg.LinkOf(c)
	if l < 0 {
		return true
	}
	if n.linkStamp[l] == n.now {
		return false
	}
	n.linkStamp[l] = n.now
	return true
}

// chanUp reports whether channel c can accept a flit this cycle under
// the installed fault model (always true on a healthy fabric).
func (n *Network) chanUp(c ChannelID) bool {
	return n.faults == nil || n.faults.Up(c, n.now)
}

// routeCands returns the live candidate channels for w's header, in
// preference order, reusing n.routeBuf as scratch. On a faulted fabric it
// delegates to the topology's FaultRouter when implemented, else filters
// dead channels out of the oblivious route. The (possibly regrown)
// backing array is saved back to n.routeBuf here, so every caller —
// including diagnostics like DeadlockReport — retains the grown capacity
// instead of re-allocating on its next route; the returned slice is only
// valid until the next routeCands call.
func (n *Network) routeCands(w *Worm) []ChannelID {
	last := w.path[len(w.path)-1]
	var cands []ChannelID
	if n.frouter != nil {
		cands = n.frouter.RouteDegraded(last, w.Src, w.Dst, n.deadFn, n.routeBuf[:0])
	} else {
		cands = n.topo.Route(last, w.Src, w.Dst, n.routeBuf[:0])
		if n.faults != nil {
			live := cands[:0]
			for _, c := range cands {
				if !n.faults.Dead(c) {
					live = append(live, c)
				}
			}
			cands = live
		}
	}
	n.routeBuf = cands
	return cands
}

// markUnreachable freezes a worm whose destination cannot be reached
// under the installed fault set and records the first such error. Setting
// faultStall pins the clock to this cycle in StepUntil, so both kernels
// observe the error at the same Now().
func (n *Network) markUnreachable(w *Worm, where ChannelID) {
	w.waitState = waitUnreachable
	n.faultStall = true
	if n.err == nil {
		n.err = fmt.Errorf("wormhole: worm %d (%d->%d) unreachable: no live routing candidate at %s (faulted fabric)",
			w.ID, w.Src, w.Dst, n.topo.DescribeChannel(where))
	}
}

// Topology returns the fabric's topology.
func (n *Network) Topology() Topology { return n.topo }

// Config returns the fabric parameters.
func (n *Network) Config() Config { return n.cfg }

// Now returns the current simulation time in cycles.
func (n *Network) Now() int64 { return n.now }

// Active returns the number of in-flight worms.
func (n *Network) Active() int { return len(n.worms) }

// Stats returns a snapshot of the aggregate counters.
func (n *Network) Stats() Stats { return n.stats }

// SetObserver installs (or, with nil, removes) a fabric event observer.
// While an observer is attached, worm recycling (SetRecycling) is
// suspended: completed worms are left to the garbage collector so the
// *Worm an observer receives in Complete stays valid if retained.
func (n *Network) SetObserver(o Observer) { n.obs = o }

// SetFaults installs (or, with nil, removes) a fault model, degrading the
// fabric: dead channels are never routed into (a header with no live
// candidate freezes and records an unreachable error, see Err), and live
// channels accept flits only on cycles the model reports Up. The model
// must be deterministic; both kernels then remain observably equivalent
// under any fault set. Faults may only change while the fabric is idle.
func (n *Network) SetFaults(f FaultModel) {
	if len(n.worms) != 0 {
		panic("wormhole: SetFaults with active worms")
	}
	n.faults = f
	n.deadFn = nil
	n.frouter = nil
	if f != nil {
		n.deadFn = f.Dead
		if fr, ok := n.topo.(FaultRouter); ok {
			n.frouter = fr
		}
	}
}

// Faults returns the installed fault model, or nil on a healthy fabric.
func (n *Network) Faults() FaultModel { return n.faults }

// Err returns the first unrecoverable routing error — a worm whose every
// candidate channel is dead (unreachable destination under the installed
// fault set) — or nil. The stuck worm freezes in place, holding its
// channels; drivers are expected to check Err and abort.
func (n *Network) Err() error { return n.err }

// Kernel returns the kernel the network is running.
func (n *Network) Kernel() Kernel { return n.kernel }

// SetKernel selects the scheduling kernel. Both kernels are observably
// equivalent; KernelReference exists as the differential-testing oracle.
// The kernel may only be changed while the fabric is idle.
func (n *Network) SetKernel(k Kernel) {
	if len(n.worms) != 0 {
		panic("wormhole: SetKernel with active worms")
	}
	n.kernel = k
}

// SetRecycling enables (or disables) pooling of Worm structs and their
// path/passed slices: completed worms are pushed onto a free list after
// their arrival callback and Complete event fire, and Send reuses them,
// making steady-state Send+Step allocation-free. With recycling on,
// neither the caller nor any observer may retain a *Worm (or its Path
// slice) after Complete/ArrivalFunc return — the object will be reset
// and reissued. Recycling never changes simulated behaviour: IDs,
// timings and statistics are identical either way.
func (n *Network) SetRecycling(on bool) {
	n.recycle = on
	if on {
		n.reserve()
	}
}

// AdvanceTo fast-forwards the clock when the fabric is idle, so software
// latencies far larger than network activity do not cost simulation work.
// It panics if worms are in flight or t is in the past.
func (n *Network) AdvanceTo(t int64) {
	if len(n.worms) != 0 {
		panic("wormhole: AdvanceTo with active worms")
	}
	if t < n.now {
		panic(fmt.Sprintf("wormhole: AdvanceTo(%d) before now=%d", t, n.now))
	}
	n.now = t
}

// alloc returns a zeroed worm, reusing a pooled one when available. The
// &Worm{} miss path is the pool's one sanctioned allocation: steady
// state hits the free list and reuses the path/passed backing arrays.
//
//lint:hotpath
func (n *Network) alloc() *Worm {
	k := len(n.free) - 1
	if k < 0 {
		return &Worm{}
	}
	w := n.free[k]
	n.free[k] = nil
	n.free = n.free[:k]
	path, passed := w.path[:0], w.passed[:0]
	*w = Worm{path: path, passed: passed}
	return w
}

// Send creates a worm from src to dst carrying bytes of payload. The worm
// begins competing for src's injection channel on the next Step. onArrive
// (optional) fires when the tail flit is consumed at dst. Sending to
// oneself is allowed (the worm traverses the local inject/eject pair).
func (n *Network) Send(src, dst NodeID, bytes int, tag any, onArrive ArrivalFunc) *Worm {
	if bytes < 0 {
		panic(fmt.Sprintf("wormhole: Send with negative size %d", bytes))
	}
	if int(src) < 0 || int(src) >= n.topo.NumNodes() || int(dst) < 0 || int(dst) >= n.topo.NumNodes() {
		panic(fmt.Sprintf("wormhole: Send endpoints %d->%d out of range [0,%d)", src, dst, n.topo.NumNodes()))
	}
	w := n.alloc()
	w.ID = n.nextID
	w.Src, w.Dst = src, dst
	w.Bytes = bytes
	w.Tag = tag
	w.flits = n.cfg.Flits(bytes)
	w.onArrive = onArrive
	w.createdAt = n.now
	n.nextID++
	w.slot = n.takeSlot(w)
	w.idx = int32(len(n.worms))
	n.worms = append(n.worms, w)
	if n.par > 1 {
		d := n.domOf[w.Src]
		n.domList[d] = append(n.domList[d], w.slot)
	}
	n.reserve()
	return w
}

// takeSlot assigns w a slot in the flat worm-state arrays, growing them
// (and freeSlots' reserve capacity, so reap can push freed slots by
// index) on a cold miss. Steady state pops the free list and allocates
// nothing.
func (n *Network) takeSlot(w *Worm) int32 {
	if k := len(n.freeSlots) - 1; k >= 0 {
		s := n.freeSlots[k]
		n.freeSlots = n.freeSlots[:k]
		n.slots[s] = w
		n.asleep[s] = 0
		return s
	}
	s := int32(len(n.slots))
	n.slots = append(n.slots, w)
	n.asleep = append(n.asleep, 0)
	if cap(n.freeSlots) < len(n.slots) {
		grown := make([]int32, len(n.freeSlots), 2*len(n.slots))
		copy(grown, n.freeSlots)
		n.freeSlots = grown
	}
	return s
}

// freeSlot returns a drained worm's slot to the free list. Indexed push:
// takeSlot keeps cap(freeSlots) >= len(slots), and a slot is freed at
// most once per assignment.
//
//lint:hotpath
func (n *Network) freeSlot(s int32) {
	n.slots[s] = nil
	k := len(n.freeSlots)
	n.freeSlots = n.freeSlots[:k+1]
	n.freeSlots[k] = s
}

// reserve grows the completed and free lists, outside the hot regions,
// to the capacity the per-cycle paths may need, so moveFlitsFast and
// reap can push by index without append. Invariants: every in-flight
// worm may complete within one Step, so cap(completed) covers
// len(worms); with recycling, reap pushes each drained worm onto the
// free list while arrival callbacks may Send (shrinking free, growing
// worms) mid-drain, so cap(free) covers the free list plus every worm
// that is in flight or awaiting drain.
func (n *Network) reserve() {
	if cap(n.completed) < len(n.worms) {
		grown := make([]*Worm, len(n.completed), 2*len(n.worms))
		copy(grown, n.completed)
		n.completed = grown
	}
	// Per-domain completion buffers: every worm of a domain may complete
	// within one parallel phase A, and len(worms) bounds any domain's
	// population. The buffers are drained every step, so growth never
	// needs to copy elements.
	for d := range n.domAcc {
		if cap(n.domAcc[d].completed) < len(n.worms) {
			grown := make([]int32, 0, 2*len(n.worms))
			n.domAcc[d].completed = append(grown, n.domAcc[d].completed...)
		}
	}
	if !n.recycle {
		return
	}
	if need := len(n.free) + len(n.worms) + len(n.completed); cap(n.free) < need {
		grown := make([]*Worm, len(n.free), 2*need)
		copy(grown, n.free)
		n.free = grown
	}
}

// Cancel withdraws an in-flight worm from the fabric at the current
// cycle: every channel it still holds is released (with Release observer
// events), its remaining flits are discarded, and its arrival callback
// never fires. It is the primitive a recovery driver needs for
// timeout/retransmit — cancel the overdue worm, then Send a fresh copy —
// and guarantees at-most-once delivery because the payload is withdrawn
// before the replacement enters the fabric. Cancel is a driver-level
// operation: call it between Step/StepUntil calls, never from an
// observer or arrival callback. Cancelling a completed, unknown or nil
// worm panics. A cancelled worm's per-worm counters are discarded (see
// Stats.Cancelled). If the cancelled worm was frozen unreachable and no
// frozen worm remains, the recorded fabric error (Err) is cleared so the
// run can continue.
func (n *Network) Cancel(w *Worm) {
	if w == nil || w.done {
		panic("wormhole: Cancel of nil or completed worm")
	}
	at := -1
	for i, a := range n.worms {
		if a == w {
			at = i
			break
		}
	}
	if at < 0 {
		panic(fmt.Sprintf("wormhole: Cancel of worm %d not in flight", w.ID))
	}
	for i := range w.path {
		if n.owner[w.path[i]] == w.slot {
			n.release(w, i)
		}
	}
	wasFrozen := w.waitState == waitUnreachable
	n.worms = append(n.worms[:at], n.worms[at+1:]...)
	for j := at; j < len(n.worms); j++ {
		n.worms[j].idx = int32(j)
	}
	if n.par > 1 {
		d := n.domOf[w.Src]
		list := n.domList[d]
		for i, s := range list {
			if s == w.slot {
				n.domList[d] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
	n.freeSlot(w.slot)
	// Ownership and the active set changed; cached verdicts are stale.
	n.epoch++
	n.progress = true
	n.stats.Cancelled++
	if wasFrozen && n.err != nil {
		frozen := false
		for _, a := range n.worms {
			if a.waitState == waitUnreachable {
				frozen = true
				break
			}
		}
		if !frozen {
			n.err = nil
		}
	}
	if n.recycle && n.obs == nil {
		n.free = append(n.free, w)
	}
}

// Unreachable appends to buf the active worms frozen because no live
// route toward their destination exists (see SetFaults), in creation
// order, and returns the extended slice. Recovery drivers poll it after
// each StepUntil: a frozen worm never completes on its own, so the
// driver must Cancel it and re-plan the delivery (retry elsewhere, or
// give the destination up).
func (n *Network) Unreachable(buf []*Worm) []*Worm {
	for _, w := range n.worms {
		if w.waitState == waitUnreachable {
			buf = append(buf, w)
		}
	}
	return buf
}

// Step advances the simulation by exactly one cycle: flits move
// downstream-first, then headers attempt channel acquisition
// oldest-worm-first, then arrival callbacks fire for worms completed this
// cycle.
//
//lint:hotpath
func (n *Network) Step() {
	if n.kernel == KernelReference {
		n.stepReference()
		return
	}
	// The domain-parallel kernel is bit-identical to stepFast but cannot
	// replay the serial per-event order an observer expects, and shared
	// physical links (virtual channels) couple worms across domains; both
	// cases fall back to the serial fast kernel, which is equivalent by
	// the differential suite.
	if n.par > 1 && n.obs == nil && n.lg == nil {
		n.stepParallel()
		return
	}
	n.stepFast()
}

// StepUntil advances the simulation by at least one cycle and at most to
// limit (which must be in the future). It is observably equivalent to
// calling Step repeatedly while Now() < limit, but may return early — the
// caller is expected to loop — and, under KernelFast, when the stepped
// cycle made no progress (no flit moved, no channel changed hands) it
// jumps the clock directly to the cycle before the earliest pending
// router decision, bulk-crediting Cycles, BlockedCycles and
// InjectWaitCycles for the skipped stretch. Long software gaps and
// blocked stretches therefore cost O(1) instead of O(cycles × worms).
//
//lint:hotpath
func (n *Network) StepUntil(limit int64) {
	if limit <= n.now {
		n.badStepUntil(limit)
	}
	n.Step()
	if n.kernel == KernelReference || n.progress || n.faultStall {
		// faultStall: some flit was refused by a fault-gated channel this
		// cycle; the channel's Up() verdict can change at any future cycle,
		// so "every skipped cycle is an identical stall" does not hold and
		// the clock must advance one cycle at a time.
		return
	}
	// The cycle just stepped moved nothing and changed no ownership:
	// every worm is frozen (blocked, inject-waiting, or pending a router
	// decision) and the fabric state cannot change before the earliest
	// headerReadyAt. Every cycle strictly before it is an identical
	// stall, so the clock can jump there in one move.
	target := limit
	if e, ok := n.nextHeaderEvent(); ok && e-1 < limit {
		target = e - 1
	}
	if target > n.now {
		n.skipTo(target)
	}
}

// badStepUntil reports a StepUntil limit that is not in the future.
// Outlined from StepUntil so the hot entry point carries no fmt call.
func (n *Network) badStepUntil(limit int64) {
	panic(fmt.Sprintf("wormhole: StepUntil(%d) not after now=%d", limit, n.now))
}

// nextHeaderEvent returns the earliest future cycle at which a pending
// router decision completes (a header sitting at a frontier router whose
// RouterDelay has not yet elapsed), if any.
//
//lint:hotpath
func (n *Network) nextHeaderEvent() (int64, bool) {
	var min int64
	found := false
	for _, w := range n.worms {
		if w.routed || len(w.path) == 0 {
			continue
		}
		if w.entered(len(w.path)-1) == 0 || w.headerReadyAt <= n.now {
			continue
		}
		if !found || w.headerReadyAt < min {
			min, found = w.headerReadyAt, true
		}
	}
	return min, found
}

// skipTo jumps the clock from a fully-stalled cycle to target, crediting
// every skipped cycle exactly as the per-cycle kernel would have:
// stats.Cycles and the fairness rotation advance, each blocked header
// accrues BlockedCycles (and its per-cycle Blocked observer event), and
// each inject-waiting worm accrues InjectWaitCycles. Callable only when
// the preceding cycle made no progress, which guarantees every skipped
// cycle is an identical stall.
//
//lint:hotpath
func (n *Network) skipTo(target int64) {
	delta := target - n.now
	n.stats.Cycles += delta
	n.rotation += delta
	if n.obs != nil {
		// Replay the per-cycle Blocked events the reference kernel
		// would have emitted, in its order: cycles ascending, worms in
		// creation order within a cycle.
		for c := n.now + 1; c <= target; c++ {
			for _, w := range n.worms {
				if w.waitState == waitBlocked && w.waitEpoch == n.epoch {
					n.obs.Blocked(c, w, w.blockCand, w.blockHold)
				}
			}
		}
	}
	for _, w := range n.worms {
		if w.waitEpoch != n.epoch {
			continue
		}
		switch w.waitState {
		case waitBlocked:
			w.BlockedCycles += delta
		case waitInject:
			w.InjectWaitCycles += delta
		}
	}
	n.now = target
}

// stepFast is the stall-aware kernel: identical phase structure to
// stepReference, but worms whose flits provably cannot move skip their
// scan, and headers in a cached blocked/inject-wait state skip
// re-routing. It also records whether the cycle made progress, which
// StepUntil uses to decide whether the clock may jump.
//
//lint:hotpath
func (n *Network) stepFast() {
	n.now++
	n.stats.Cycles++
	n.progress = false
	n.faultStall = false
	// Phase A rotates its starting worm for fairness on shared physical
	// links; without link sharing, worm order in this phase is
	// immaterial (channels are owned exclusively and acquisition happens
	// in phase B).
	if k := len(n.worms); k > 0 {
		start := int(n.rotation % int64(k))
		n.rotation++
		for i := 0; i < k; i++ {
			w := n.worms[(start+i)%k]
			if n.asleep[w.slot] != 0 {
				continue
			}
			n.moveFlitsFast(w)
		}
	}
	for _, w := range n.worms {
		n.routeHeaderFast(w)
	}
	if len(n.completed) > 0 {
		n.reap()
	}
}

// moveFlitsFast is moveFlits plus scheduling bookkeeping: it marks the
// worm asleep when no flit could move for buffer-occupancy reasons
// (occupancy is worm-local, so the verdict holds until the worm acquires
// a channel), and records fabric-wide progress. A move refused only by
// physical-link sharing does not put the worm to sleep — the link may be
// free next cycle.
//
//lint:hotpath
func (n *Network) moveFlitsFast(w *Worm) {
	if w.done || len(w.path) == 0 {
		return
	}
	moved, linkBusy := false, false
	last := len(w.path) - 1
	// Consumption at the destination interface (exits the fabric; no
	// physical link consumed).
	if w.routed && w.occ(last) > 0 {
		moved = true
		w.passed[last]++
		n.stats.FlitHops++
		if w.passed[last] == w.flits {
			n.release(w, last)
			w.done = true
			w.ArrivedAt = n.now
			// Indexed push: Send reserved cap(completed) >= len(worms),
			// and at most every in-flight worm completes per cycle.
			k := len(n.completed)
			n.completed = n.completed[:k+1]
			n.completed[k] = w
		}
	}
	// Interior hops.
	for i := last - 1; i >= 0; i-- {
		if w.occ(i) > 0 && w.occ(i+1) < n.cfg.BufFlits {
			// A fault-refused move is transient (the channel may come back
			// up next cycle): treat it like a busy link, not a sleepable
			// stall, and veto StepUntil's cycle-skipping this cycle.
			if !n.chanUp(w.path[i+1]) {
				n.faultStall = true
				linkBusy = true
				continue
			}
			if !n.linkFree(w.path[i+1]) {
				linkBusy = true
				continue
			}
			moved = true
			w.passed[i]++
			n.stats.FlitHops++
			if w.entered(i+1) == 1 && i+1 == last && !w.routed {
				// The header flit just reached the frontier router.
				w.headerReadyAt = n.now + n.cfg.RouterDelay
			}
			if w.passed[i] == w.flits {
				n.release(w, i)
			}
		}
	}
	// Injection from the source interface.
	if w.injected < w.flits && w.occ(0) < n.cfg.BufFlits {
		if !n.chanUp(w.path[0]) {
			n.faultStall = true
			linkBusy = true
		} else if n.linkFree(w.path[0]) {
			moved = true
			w.injected++
			n.stats.FlitHops++
			if w.injected == 1 {
				w.InjectedAt = n.now
				if last == 0 && !w.routed {
					w.headerReadyAt = n.now + n.cfg.RouterDelay
				}
			}
		} else {
			linkBusy = true
		}
	}
	if moved {
		n.progress = true
	} else if !linkBusy {
		// The worm is only scanned while awake, so the flag can never be
		// set on entry; a busy link leaves it awake for a retry next cycle.
		n.asleep[w.slot] = 1
	}
}

// routeHeaderFast is routeHeader with a cache: once a header is blocked
// (or inject-waiting), the routing decision cannot change until some
// channel changes hands, so the cached verdict — keyed on the network's
// ownership epoch — is replayed at O(1) instead of re-running the
// topology's routing function every cycle.
//
//lint:hotpath
func (n *Network) routeHeaderFast(w *Worm) {
	if w.done || w.routed {
		return
	}
	if w.waitState == waitUnreachable {
		return // terminal: dead channels never heal
	}
	if len(w.path) == 0 {
		if w.waitState == waitInject && w.waitEpoch == n.epoch {
			w.InjectWaitCycles++
			return
		}
		// Compete for the node's single injection channel.
		c := n.inject[w.Src]
		if n.faults != nil && n.faults.Dead(c) {
			n.markUnreachable(w, c)
			return
		}
		if n.owner[c] < 0 {
			n.acquire(w, c)
		} else {
			w.InjectWaitCycles++
			w.waitState = waitInject
			w.waitEpoch = n.epoch
		}
		return
	}
	last := len(w.path) - 1
	if w.entered(last) == 0 || n.now < w.headerReadyAt {
		return // header flit not yet at the frontier, or still routing
	}
	if w.waitState == waitBlocked && w.waitEpoch == n.epoch {
		w.BlockedCycles++
		if n.obs != nil {
			n.obs.Blocked(n.now, w, w.blockCand, w.blockHold)
		}
		return
	}
	cands := n.routeCands(w)
	for _, c := range cands {
		if n.owner[c] < 0 {
			n.acquire(w, c)
			return
		}
	}
	if len(cands) == 0 {
		if n.faults != nil {
			n.markUnreachable(w, w.path[last])
			return
		}
		n.noRouteBug(w, last)
	}
	w.BlockedCycles++
	w.blockCand, w.blockHold = n.blame(cands)
	w.waitState = waitBlocked
	w.waitEpoch = n.epoch
	if n.obs != nil {
		n.obs.Blocked(n.now, w, w.blockCand, w.blockHold)
	}
}

// stepReference advances the simulation by one cycle with the original
// straight-line kernel: one full pass over all worms per cycle, no
// caching, no cycle-skipping. Kept as the oracle the differential and
// fuzz suites compare KernelFast against.
func (n *Network) stepReference() {
	n.now++
	n.stats.Cycles++
	n.progress = true
	if k := len(n.worms); k > 0 {
		start := int(n.rotation % int64(k))
		n.rotation++
		for i := 0; i < k; i++ {
			n.moveFlits(n.worms[(start+i)%k])
		}
	}
	for _, w := range n.worms {
		n.routeHeader(w)
	}
	if len(n.completed) > 0 {
		n.reap()
	}
}

// moveFlits advances the worm's flits one channel downstream-first, so a
// flit vacating a buffer makes room for its upstream neighbour within the
// same cycle (full pipelining at one flit per channel per cycle).
func (n *Network) moveFlits(w *Worm) {
	if w.done || len(w.path) == 0 {
		return
	}
	last := len(w.path) - 1
	// Consumption at the destination interface (exits the fabric; no
	// physical link consumed).
	if w.routed && w.occ(last) > 0 {
		w.passed[last]++
		n.stats.FlitHops++
		if w.passed[last] == w.flits {
			n.release(w, last)
			w.done = true
			w.ArrivedAt = n.now
			n.completed = append(n.completed, w)
		}
	}
	// Interior hops. chanUp is checked before linkFree so a fault-refused
	// flit does not claim the physical link (identical order to the fast
	// kernel).
	for i := last - 1; i >= 0; i-- {
		if w.occ(i) > 0 && w.occ(i+1) < n.cfg.BufFlits && n.chanUp(w.path[i+1]) && n.linkFree(w.path[i+1]) {
			w.passed[i]++
			n.stats.FlitHops++
			if w.entered(i+1) == 1 && i+1 == last && !w.routed {
				// The header flit just reached the frontier router.
				w.headerReadyAt = n.now + n.cfg.RouterDelay
			}
			if w.passed[i] == w.flits {
				n.release(w, i)
			}
		}
	}
	// Injection from the source interface.
	if w.injected < w.flits && w.occ(0) < n.cfg.BufFlits && n.chanUp(w.path[0]) && n.linkFree(w.path[0]) {
		w.injected++
		n.stats.FlitHops++
		if w.injected == 1 {
			w.InjectedAt = n.now
			if last == 0 && !w.routed {
				w.headerReadyAt = n.now + n.cfg.RouterDelay
			}
		}
	}
}

// routeHeader attempts one channel acquisition for the worm's header.
func (n *Network) routeHeader(w *Worm) {
	if w.done || w.routed {
		return
	}
	if w.waitState == waitUnreachable {
		return // terminal: dead channels never heal
	}
	if len(w.path) == 0 {
		// Compete for the node's single injection channel.
		c := n.inject[w.Src]
		if n.faults != nil && n.faults.Dead(c) {
			n.markUnreachable(w, c)
			return
		}
		if n.owner[c] < 0 {
			n.acquire(w, c)
		} else {
			w.InjectWaitCycles++
		}
		return
	}
	last := len(w.path) - 1
	if w.entered(last) == 0 || n.now < w.headerReadyAt {
		return // header flit not yet at the frontier, or still routing
	}
	cands := n.routeCands(w)
	for _, c := range cands {
		if n.owner[c] < 0 {
			n.acquire(w, c)
			return
		}
	}
	if len(cands) == 0 {
		if n.faults != nil {
			n.markUnreachable(w, w.path[last])
			return
		}
		n.noRouteBug(w, last)
	}
	w.BlockedCycles++
	if n.obs != nil {
		c, h := n.blame(cands)
		n.obs.Blocked(n.now, w, c, h)
	}
}

// blame picks the channel named in a Blocked report. All candidates are
// owned; the report names the one held by the oldest worm, because under
// oldest-first arbitration the oldest holder heads the blocking chain and
// is the actual culprit — naming the first preference regardless of
// holder (the previous rule) misattributed stalls on adaptive topologies
// whose preferred candidate merely queued behind a younger worm. Ties on
// holder resolve to the earliest candidate in preference order, keeping
// the report deterministic.
func (n *Network) blame(cands []ChannelID) (ChannelID, *Worm) {
	c, h := cands[0], n.slots[n.owner[cands[0]]]
	for _, cc := range cands[1:] {
		if o := n.slots[n.owner[cc]]; o.ID < h.ID {
			c, h = cc, o
		}
	}
	return c, h
}

// noRouteBug reports a topology that returned no routing candidates on
// a healthy fabric — a programming error. Outlined so the hot routing
// loop carries no fmt call.
func (n *Network) noRouteBug(w *Worm, last int) {
	panic(fmt.Sprintf("wormhole: topology returned no route from %s for %d->%d",
		n.topo.DescribeChannel(w.path[last]), w.Src, w.Dst))
}

func (n *Network) acquire(w *Worm, c ChannelID) {
	n.owner[c] = w.slot
	w.path = append(w.path, c)
	w.passed = append(w.passed, 0)
	if c == n.eject[w.Dst] {
		w.routed = true
	}
	// Ownership changed: every cached routing verdict is stale, and this
	// worm has a new channel its header can move into.
	n.epoch++
	n.progress = true
	n.asleep[w.slot] = 0
	w.waitState = waitNone
	if n.obs != nil {
		n.obs.Acquire(n.now, w, c)
	}
}

func (n *Network) release(w *Worm, i int) {
	c := w.path[i]
	if n.owner[c] != w.slot {
		n.badRelease(w, c)
	}
	n.owner[c] = -1
	n.epoch++
	if n.obs != nil {
		n.obs.Release(n.now, w, c)
	}
}

// badRelease reports a release of a channel the worm does not own — a
// kernel bug. Outlined so the hot release paths carry no fmt call.
func (n *Network) badRelease(w *Worm, c ChannelID) {
	panic(fmt.Sprintf("wormhole: releasing channel %s not owned by worm %d", n.topo.DescribeChannel(c), w.ID))
}

// reap removes completed worms, preserving creation order of the rest,
// then fires arrival callbacks in completion order. With recycling
// enabled, each worm is pooled for reuse once its callback and Complete
// event have fired — unless an observer is attached: observers may
// legitimately retain the *Worm passed to Complete (trace.Timeline and
// trace.BlockLog do), and reusing it would scribble over their records.
// With an observer, completed worms are simply left to the garbage
// collector, so SetRecycling(true)+SetObserver is safe, just not pooled.
//
//lint:hotpath
func (n *Network) reap() {
	k := 0
	for _, w := range n.worms {
		if !w.done {
			n.worms[k] = w
			w.idx = int32(k)
			k++
		}
	}
	clear(n.worms[k:])
	n.worms = n.worms[:k]
	// Drop completed worms from the per-domain scan lists before their
	// slots are freed below (a freed slot may be reissued by a Send from
	// an arrival callback mid-drain).
	for d := range n.domList {
		list := n.domList[d]
		j := 0
		for _, s := range list {
			if !n.slots[s].done {
				list[j] = s
				j++
			}
		}
		n.domList[d] = list[:j]
	}
	// n.completed stays populated while callbacks run: an arrival
	// callback may Send, and Send's free-list reservation counts the
	// drained-but-unpooled worms still listed here.
	for di := 0; di < len(n.completed); di++ {
		w := n.completed[di]
		n.freeSlot(w.slot)
		n.stats.Worms++
		n.stats.BlockedCycles += w.BlockedCycles
		n.stats.InjectWaitCycles += w.InjectWaitCycles
		if n.obs != nil {
			n.obs.Complete(n.now, w)
		}
		if w.onArrive != nil {
			w.onArrive(w, n.now)
		}
		if n.recycle && n.obs == nil {
			n.completed[di] = nil
			// Indexed push: Send and SetRecycling reserve cap(free) for
			// every in-flight and drained worm.
			f := len(n.free)
			n.free = n.free[:f+1]
			n.free[f] = w
		}
	}
	clear(n.completed)
	n.completed = n.completed[:0]
}

// RunUntilIdle steps until no worms are in flight, up to maxCycles. It
// returns the number of cycles stepped and an error on timeout (which in
// a correct deadlock-free topology indicates a routing bug) or as soon as
// a fault-induced unreachable destination is recorded (see Err) — a
// frozen worm never completes, so waiting out the deadline would be
// pointless.
func (n *Network) RunUntilIdle(maxCycles int64) (int64, error) {
	start := n.now
	for len(n.worms) > 0 {
		if n.err != nil {
			return n.now - start, n.err
		}
		if n.now-start >= maxCycles {
			return n.now - start, fmt.Errorf("wormhole: network not idle after %d cycles (%d worms in flight)", maxCycles, len(n.worms))
		}
		n.StepUntil(start + maxCycles)
	}
	if n.err != nil {
		return n.now - start, n.err
	}
	return n.now - start, nil
}

// DeadlockReport renders a deterministic diagnosis of a stuck fabric:
// the hottest blocked channel (the one the most frozen headers want,
// ties to the lowest channel ID), followed by up to max lines in worm
// creation order describing what the active worms are waiting for. Worms
// stuck for the same reason on the same channel (a convoy blocked on one
// held link, or a queue waiting to inject at one node) are collapsed
// into a single line carrying the count, so the report stays readable
// when hundreds of worms pile up behind one failure. It is read-only and
// safe to call at any cycle; drivers call it when a watchdog fires so
// the error names the culprits instead of just "timed out".
func (n *Network) DeadlockReport(max int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d worms in flight at cycle %d", len(n.worms), n.now)
	// The per-channel waiting-header histogram is cached on the Network
	// and cleared lazily: at 1M+ channels a fresh allocation per watchdog
	// fire would turn a diagnostic into a multi-MB allocation.
	if len(n.dlWaiters) < n.topo.NumChannels() {
		n.dlWaiters = make([]int32, n.topo.NumChannels())
	} else {
		clear(n.dlWaiters)
	}
	waiters := n.dlWaiters
	type entry struct {
		text string
		more int // additional worms collapsed into this line
	}
	var entries []entry
	// Dedup is keyed by (reason kind, channel); the map is only ever
	// indexed, never ranged, so report order stays creation order.
	index := make(map[int64]int)
	line := func(kind int64, c ChannelID, format string, args ...any) {
		if kind >= 0 {
			key := kind<<32 | int64(c)
			if i, ok := index[key]; ok {
				entries[i].more++
				return
			}
			index[key] = len(entries)
		}
		entries = append(entries, entry{text: fmt.Sprintf(format, args...)})
	}
	const (
		unique      int64 = -1 // never collapsed
		kindInject  int64 = 0
		kindBlocked int64 = 1
	)
	for _, w := range n.worms {
		switch {
		case w.waitState == waitUnreachable:
			line(unique, 0, "worm %d (%d->%d): unreachable, frozen holding %d channels", w.ID, w.Src, w.Dst, len(w.path))
		case len(w.path) == 0:
			c := n.inject[w.Src]
			if h := n.owner[c]; h >= 0 {
				waiters[c]++
				line(kindInject, c, "worm %d (%d->%d): waiting to inject; %s held by worm %d", w.ID, w.Src, w.Dst, n.topo.DescribeChannel(c), n.slots[h].ID)
			} else {
				line(unique, 0, "worm %d (%d->%d): not yet injected", w.ID, w.Src, w.Dst)
			}
		case w.routed:
			line(unique, 0, "worm %d (%d->%d): routed, draining %d channels", w.ID, w.Src, w.Dst, len(w.path))
		case w.entered(len(w.path)-1) == 0 || n.now < w.headerReadyAt:
			// The worm owns its frontier channel but flits have not entered
			// it (router delay, or a fault gate refusing them); it is what
			// the worm is waiting on, so it counts toward the hot channel.
			c := w.path[len(w.path)-1]
			waiters[c]++
			line(unique, 0, "worm %d (%d->%d): header in flight toward %s", w.ID, w.Src, w.Dst, n.topo.DescribeChannel(c))
		default:
			cands := n.routeCands(w)
			if len(cands) == 0 {
				line(unique, 0, "worm %d (%d->%d): no live routing candidate at %s", w.ID, w.Src, w.Dst, n.topo.DescribeChannel(w.path[len(w.path)-1]))
				break
			}
			free := ChannelID(-1)
			for _, c := range cands {
				if n.owner[c] >= 0 {
					waiters[c]++
				} else if free < 0 {
					free = c
				}
			}
			if free >= 0 {
				line(unique, 0, "worm %d (%d->%d): header ready, can advance into %s", w.ID, w.Src, w.Dst, n.topo.DescribeChannel(free))
				break
			}
			cand, hold := n.blame(cands)
			line(kindBlocked, cand, "worm %d (%d->%d): blocked; wants %s held by worm %d", w.ID, w.Src, w.Dst, n.topo.DescribeChannel(cand), hold.ID)
		}
	}
	lines := 0
	for _, e := range entries {
		if lines < max {
			b.WriteString("\n  ")
			b.WriteString(e.text)
			if e.more > 0 {
				fmt.Fprintf(&b, " (+%d more worms on this channel)", e.more)
			}
		}
		lines++
	}
	if lines > max {
		fmt.Fprintf(&b, "\n  ... and %d more", lines-max)
	}
	hot, hotCount := ChannelID(-1), int32(0)
	for c, k := range waiters {
		if k > hotCount {
			hot, hotCount = ChannelID(c), k
		}
	}
	if hot >= 0 {
		fmt.Fprintf(&b, "\n  hottest blocked channel: %s (%d waiting headers)", n.topo.DescribeChannel(hot), hotCount)
	}
	return b.String()
}

// Quiesced verifies the post-run invariants: no active worms and every
// channel released. Tests call this to prove conservation (flits injected
// were all consumed and nothing leaked).
func (n *Network) Quiesced() error {
	if len(n.worms) != 0 {
		return fmt.Errorf("wormhole: %d worms still active", len(n.worms))
	}
	for c, s := range n.owner {
		if s >= 0 {
			return fmt.Errorf("wormhole: channel %s still owned by worm %d", n.topo.DescribeChannel(ChannelID(c)), n.slots[s].ID)
		}
	}
	return nil
}
