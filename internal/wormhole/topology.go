// Package wormhole implements a deterministic flit-level simulator of
// wormhole-switched networks, the substrate the paper's evaluation runs
// on. It is topology-agnostic: a Topology supplies the channel graph and
// the routing function, and packages mesh and bmin provide the two
// fabrics the paper studies (2-D mesh with XY routing, bidirectional MIN
// with turnaround routing).
//
// Wormhole switching semantics, at flit granularity:
//
//   - A message (a "worm") is a pipeline of flits led by a header flit.
//   - Each unidirectional channel is owned by at most one worm at a time
//     and has a small flit buffer; one flit crosses a channel per cycle.
//   - The header acquires channels hop by hop (after a per-hop routing
//     delay); body flits follow in pipeline.
//   - If the header's requested channel is owned by another worm, the
//     entire worm stalls in place, holding every channel it has acquired
//     — this is what makes contention so expensive in wormhole networks
//     and why the paper's node-ordering matters.
//   - A channel is released only after the worm's last flit has left it.
//
// Every node has exactly one injection and one ejection channel (the
// one-port architecture of the paper's experiments), so a processor can
// feed at most one outgoing worm and absorb at most one incoming worm at
// a time.
//
// The simulator is single-threaded and fully deterministic: worms are
// serviced in creation order and channel arbitration is oldest-first, so
// a given (topology, config, workload) always produces identical results.
package wormhole

// NodeID identifies a processing node (a processor + network interface).
type NodeID int32

// ChannelID identifies a unidirectional channel (link) in the fabric,
// including each node's injection and ejection channels.
type ChannelID int32

// NoChannel is the sentinel for "no channel".
const NoChannel ChannelID = -1

// Topology describes a network fabric: its channel graph and routing
// function. Implementations must be deterministic and side-effect free.
type Topology interface {
	// NumNodes returns the number of processing nodes.
	NumNodes() int
	// NumChannels returns the total channel count; ChannelIDs are dense
	// in [0, NumChannels).
	NumChannels() int
	// InjectChannel returns the channel from node n's interface into the
	// fabric.
	InjectChannel(n NodeID) ChannelID
	// EjectChannel returns the channel from the fabric into node n's
	// interface.
	EjectChannel(n NodeID) ChannelID
	// Route appends to buf the candidate next channels, in preference
	// order, for a worm from src to dst whose header currently sits at
	// the downstream end of channel cur (cur may be an injection
	// channel). Route is never called once the worm holds dst's ejection
	// channel. Deterministic adaptive topologies may return several
	// candidates; the simulator takes the first free one.
	Route(cur ChannelID, src, dst NodeID, buf []ChannelID) []ChannelID
	// DescribeChannel renders a channel for traces and error messages.
	DescribeChannel(c ChannelID) string
}

// LinkGrouper is optionally implemented by topologies whose channels are
// virtual channels multiplexed over shared physical links (e.g. tori with
// dateline VCs). The simulator then enforces one flit per physical link
// per cycle across all of the link's virtual channels, with deterministic
// rotating fairness among worms.
type LinkGrouper interface {
	// NumLinks returns the number of physical links.
	NumLinks() int
	// LinkOf returns the physical link a channel is multiplexed onto, or
	// -1 for channels with a dedicated link (injection/ejection).
	LinkOf(c ChannelID) int
}

// FaultModel describes a degraded fabric. Implementations must be pure
// functions of their arguments (no clocks, no mutation), so that both
// scheduling kernels — and repeated runs — observe identical behaviour.
// Package fault provides the seeded, deterministic implementation.
type FaultModel interface {
	// Dead reports a permanently failed channel. The routing layer never
	// acquires a dead channel; a header whose every candidate is dead is
	// an unreachable destination (see Network.Err).
	Dead(c ChannelID) bool
	// Up reports whether channel c can accept a flit at cycle now. It is
	// consulted only for live (non-dead) channels and models degraded
	// bandwidth and transient outages. It must be deterministic in
	// (c, now).
	Up(c ChannelID, now int64) bool
}

// FaultRouter is optionally implemented by topologies that can route
// around dead channels. RouteDegraded plays the role of Route on a
// faulted fabric: it returns candidate next channels in preference order,
// none of them dead, with the healthy preferred candidate first — when no
// candidate channel is dead it must return exactly what Route returns,
// so a fabric with faults installed but none on the path behaves
// identically to a healthy one. An empty result means the destination is
// unreachable from this router under the fault set.
//
// Topologies that do not implement FaultRouter still work on a faulted
// fabric: the simulator filters dead channels out of Route's candidates,
// losing only the topology-specific detours.
type FaultRouter interface {
	RouteDegraded(cur ChannelID, src, dst NodeID, dead func(ChannelID) bool, buf []ChannelID) []ChannelID
}

// PathChannels is a convenience for tests and analysis: it returns the
// deterministic route a worm would take from src to dst on an otherwise
// idle network (always taking the first routing candidate), starting with
// the injection channel and ending with the ejection channel.
func PathChannels(t Topology, src, dst NodeID) []ChannelID {
	path := []ChannelID{t.InjectChannel(src)}
	eject := t.EjectChannel(dst)
	var buf []ChannelID
	for path[len(path)-1] != eject {
		buf = t.Route(path[len(path)-1], src, dst, buf[:0])
		if len(buf) == 0 {
			panic("wormhole: Route returned no candidates on idle network")
		}
		path = append(path, buf[0])
		if len(path) > 4*t.NumChannels() {
			panic("wormhole: routing loop detected")
		}
	}
	return path
}
