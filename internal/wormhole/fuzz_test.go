package wormhole_test

// Native Go fuzzing of the simulator kernels: the fuzzer mutates a raw
// byte string that decodes into a timed send sequence, and every input
// must satisfy the conservation invariants on both kernels plus
// fast == reference equivalence. `go test -fuzz=FuzzWormholeKernel
// ./internal/wormhole` explores further; the seed corpus below runs on
// every plain `go test`.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mesh"
	. "repro/internal/wormhole"
)

// decodeSends turns fuzz bytes into a workload: consecutive 4-byte
// tuples (src, dst, size, gap) on an n-node fabric. The decoding is
// total — every input maps to a valid workload — so the fuzzer never
// wastes executions on rejected inputs.
func decodeSends(data []byte, nodes int) []timedSend {
	var sends []timedSend
	at := int64(0)
	for i := 0; i+4 <= len(data) && len(sends) < 64; i += 4 {
		src := NodeID(int(data[i]) % nodes)
		dst := NodeID(int(data[i+1]) % nodes)
		if dst == src {
			dst = (dst + 1) % NodeID(nodes)
		}
		// Gap byte: low values cluster sends into contention, high bits
		// open software-style gaps that exercise cycle-skipping.
		gap := int64(data[i+3])
		if gap >= 200 {
			gap = (gap - 199) * 97
		}
		at += gap
		sends = append(sends, timedSend{at: at, src: src, dst: dst, bytes: int(data[i+2])})
	}
	return sends
}

// FuzzWormholeKernel checks, for every fuzz-derived workload on a 4×4
// mesh: RunUntilIdle terminates, the fabric quiesces with every channel
// released, flit conservation holds (injected == consumed == the closed
// form flits×(hops+1) summed over worms), the fast kernel's full
// observable outcome equals the reference kernel's, and the
// domain-parallel kernel at P ∈ {1,2,4,8} — including a fuzz-derived
// random node partition — matches byte for byte.
func FuzzWormholeKernel(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 5, 8, 0, 1, 5, 8, 0, 2, 5, 8, 0, 3, 5, 8, 0})
	f.Add([]byte{0, 15, 255, 0, 15, 0, 255, 0, 5, 10, 0, 255, 10, 5, 1, 201})
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 4; i++ {
		b := make([]byte, 4*(4+r.Intn(24)))
		r.Read(b)
		f.Add(b)
	}

	topo := mesh.New2D(4, 4)
	cfg := DefaultConfig()
	cfg.RouterDelay = 2

	f.Fuzz(func(t *testing.T, data []byte) {
		sends := decodeSends(data, topo.NumNodes())

		run := func(k Kernel) runSnapshot {
			n := New(topo, cfg)
			n.SetKernel(k)
			return runWorkload(t, n, sends) // fails the test if RunUntilIdle or Quiesced fail
		}
		got, want := run(KernelFast), run(KernelReference)

		if len(got.Worms) != len(sends) {
			t.Fatalf("%d of %d worms completed", len(got.Worms), len(sends))
		}
		var wantHops int64
		for _, w := range got.Worms {
			if w.Flits != cfg.Flits(w.Bytes) {
				t.Fatalf("worm %d carried %d flits, want %d for %d bytes", w.ID, w.Flits, cfg.Flits(w.Bytes), w.Bytes)
			}
			// Injection + every inter-channel move + consumption: each of
			// the worm's flits crosses each of its pathLen channels once
			// and is consumed once. Equality with the kernel's FlitHops
			// counter says every injected flit was consumed exactly once.
			wantHops += int64(w.Flits) * int64(w.PathLen+1)
		}
		if got.Stats.FlitHops != wantHops {
			t.Fatalf("flit conservation violated: %d flit-hops counted, %d implied by completed worms",
				got.Stats.FlitHops, wantHops)
		}
		if !reflect.DeepEqual(got, want) {
			diffSnapshots(t, got, want)
		}

		// Parallel legs: every P must reproduce the serial outcome
		// (events excluded — parallel runs are observer-free). P=1 pins
		// that a trivial pool degenerates to the serial kernel; higher P
		// additionally installs a partition derived from the fuzz input
		// so the merge order is tested against arbitrary domain maps.
		wantQuiet := want
		wantQuiet.Events = nil
		for _, P := range []int{1, 2, 4, 8} {
			par := New(topo, cfg)
			par.SetParallelism(P)
			if P > 1 && len(data) > 0 {
				dom := make([]int32, topo.NumNodes())
				for u := range dom {
					dom[u] = int32(int(data[u%len(data)]) % P)
				}
				par.SetDomainsForTest(dom)
			}
			gotPar := runWorkloadQuiet(t, par, sends)
			par.Close()
			if !reflect.DeepEqual(gotPar, wantQuiet) {
				t.Errorf("parallel P=%d diverges from serial:", P)
				diffSnapshots(t, gotPar, wantQuiet)
			}
		}
	})
}
