package wormhole_test

import (
	"testing"

	"repro/internal/mesh"
	. "repro/internal/wormhole"
)

func newMeshNet(w, h int, cfg Config) *Network {
	return New(mesh.New2D(w, h), cfg)
}

// runOne sends a single worm and returns its arrival time.
func runOne(t *testing.T, n *Network, src, dst NodeID, bytes int) *Worm {
	t.Helper()
	w := n.Send(src, dst, bytes, nil, nil)
	if _, err := n.RunUntilIdle(1 << 20); err != nil {
		t.Fatal(err)
	}
	if !w.Done() {
		t.Fatal("worm not done after idle")
	}
	return w
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{FlitBytes: 0, HeaderFlits: 1, BufFlits: 1},
		{FlitBytes: 8, HeaderFlits: 0, BufFlits: 1},
		{FlitBytes: 8, HeaderFlits: 1, BufFlits: 0},
		{FlitBytes: 8, HeaderFlits: 1, BufFlits: 1, RouterDelay: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestConfigFlits(t *testing.T) {
	c := Config{FlitBytes: 8, HeaderFlits: 1, BufFlits: 2}
	cases := []struct{ bytes, flits int }{{0, 1}, {1, 2}, {8, 2}, {9, 3}, {64, 9}}
	for _, cs := range cases {
		if got := c.Flits(cs.bytes); got != cs.flits {
			t.Errorf("Flits(%d) = %d, want %d", cs.bytes, got, cs.flits)
		}
	}
}

// TestUnicastDistanceSensitivity: on an idle fabric, arrival time grows by
// exactly (1 + RouterDelay) per extra hop — the per-hop pipeline setup
// cost of wormhole switching.
func TestUnicastDistanceSensitivity(t *testing.T) {
	cfg := DefaultConfig()
	m := mesh.New2D(16, 1)
	var prev int64
	for d := 1; d <= 15; d++ {
		n := New(m, cfg)
		w := runOne(t, n, 0, NodeID(d), 256)
		if d > 1 {
			if diff := w.ArrivedAt - prev; diff != 1+cfg.RouterDelay {
				t.Fatalf("hop %d: arrival delta %d, want %d", d, diff, 1+cfg.RouterDelay)
			}
		}
		prev = w.ArrivedAt
	}
}

// TestUnicastBandwidth: doubling the flit count adds exactly that many
// cycles — the fabric pipelines one flit per cycle.
func TestUnicastBandwidth(t *testing.T) {
	cfg := DefaultConfig()
	a := runOne(t, newMeshNet(8, 8, cfg), 0, 63, 800)
	b := runOne(t, newMeshNet(8, 8, cfg), 0, 63, 1600)
	extra := int64(cfg.Flits(1600) - cfg.Flits(800))
	if b.ArrivedAt-a.ArrivedAt != extra {
		t.Fatalf("1600B at %d, 800B at %d: delta %d, want %d flit cycles",
			b.ArrivedAt, a.ArrivedAt, b.ArrivedAt-a.ArrivedAt, extra)
	}
}

// TestUnicastLatencyFormula pins the exact uncontended end-to-end fabric
// latency: path setup at (1+RouterDelay) per acquired channel beyond the
// first, plus one cycle per flit, plus fixed injection offsets. A change
// here is a change to the simulator's timing semantics and must be
// deliberate.
func TestUnicastLatencyFormula(t *testing.T) {
	cfg := DefaultConfig()
	m := mesh.New2D(16, 16)
	for _, tc := range []struct {
		src, dst int
		bytes    int
	}{
		{0, 1, 0}, {0, 255, 4096}, {17, 94, 64}, {5, 5, 128},
	} {
		n := New(m, cfg)
		w := runOne(t, n, NodeID(tc.src), NodeID(tc.dst), tc.bytes)
		hops := int64(len(PathChannels(m, NodeID(tc.src), NodeID(tc.dst)))) // channels incl inject/eject
		flits := int64(cfg.Flits(tc.bytes))
		// Timing walkthrough: worm created at cycle 0; acquires injection
		// channel in cycle 1; header enters it in cycle 2 and becomes
		// routable after RouterDelay; each subsequent channel costs
		// 1 cycle to acquire + RouterDelay before the next decision; the
		// tail flit is consumed one cycle per flit after the header
		// reaches the ejection channel.
		want := 2 + (hops-1)*(1+cfg.RouterDelay) + flits
		if w.ArrivedAt != want {
			t.Fatalf("%d->%d %dB: arrived %d, want %d", tc.src, tc.dst, tc.bytes, w.ArrivedAt, want)
		}
		if w.BlockedCycles != 0 || w.InjectWaitCycles != 0 {
			t.Fatalf("uncontended worm reports blocked=%d wait=%d", w.BlockedCycles, w.InjectWaitCycles)
		}
	}
}

// TestQuiescedAfterRun: all channels released, conservation of flits.
func TestQuiescedAfterRun(t *testing.T) {
	cfg := DefaultConfig()
	n := newMeshNet(8, 8, cfg)
	for i := 0; i < 10; i++ {
		n.Send(NodeID(i), NodeID(63-i), 512, nil, nil)
	}
	if _, err := n.RunUntilIdle(1 << 20); err != nil {
		t.Fatal(err)
	}
	if err := n.Quiesced(); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Worms != 10 {
		t.Fatalf("completed %d worms", st.Worms)
	}
}

// TestFlitConservation: FlitHops equals flits * (pathLen + 1) for a single
// worm — every flit is injected once, crosses each inter-channel boundary
// once, and is consumed once.
func TestFlitConservation(t *testing.T) {
	cfg := DefaultConfig()
	m := mesh.New2D(8, 8)
	n := New(m, cfg)
	w := runOne(t, n, 3, 42, 1000)
	pathLen := int64(len(w.Path()))
	want := int64(cfg.Flits(1000)) * (pathLen + 1)
	if got := n.Stats().FlitHops; got != want {
		t.Fatalf("FlitHops = %d, want %d (flits=%d x (path+1)=%d)", got, want, cfg.Flits(1000), pathLen+1)
	}
}

// TestContentionOnSharedLink: two worms crossing the same links contend;
// exactly one of them blocks (here the closer one, w2, wins the shared
// links by proximity and the older w1 queues behind it) and the stats
// aggregate per-worm blocking.
func TestContentionOnSharedLink(t *testing.T) {
	cfg := DefaultConfig()
	m := mesh.New2D(16, 1)
	n := New(m, cfg)
	// Both traverse links 2->...->12 eastward.
	w1 := n.Send(0, 12, 800, nil, nil)
	w2 := n.Send(2, 13, 800, nil, nil)
	if _, err := n.RunUntilIdle(1 << 20); err != nil {
		t.Fatal(err)
	}
	if w1.BlockedCycles+w2.BlockedCycles == 0 {
		t.Fatal("overlapping worms never blocked")
	}
	if w2.BlockedCycles != 0 {
		t.Fatalf("w2 starts closer to the shared links and should win them, yet blocked %d cycles", w2.BlockedCycles)
	}
	if n.Stats().BlockedCycles != w1.BlockedCycles+w2.BlockedCycles {
		t.Fatal("stats do not aggregate per-worm blocking")
	}
}

// TestNoContentionDisjointPaths: worms on disjoint rows never block.
func TestNoContentionDisjointPaths(t *testing.T) {
	cfg := DefaultConfig()
	m := mesh.New2D(8, 8)
	n := New(m, cfg)
	for row := 0; row < 8; row++ {
		n.Send(NodeID(row*8), NodeID(row*8+7), 512, nil, nil)
	}
	if _, err := n.RunUntilIdle(1 << 20); err != nil {
		t.Fatal(err)
	}
	if b := n.Stats().BlockedCycles; b != 0 {
		t.Fatalf("disjoint rows blocked %d cycles", b)
	}
}

// TestBlockingInPlace: a blocked worm holds its acquired channels, which
// transitively blocks a third worm that needs them (the wormhole chained
// -blocking pathology the paper's ordering avoids).
func TestBlockingInPlace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufFlits = 1
	m := mesh.New2D(16, 16)
	n := New(m, cfg)
	// w1 climbs column 0 from its foot and owns it for a long time.
	w1 := n.Send(NodeID(m.Addr(0, 0)), NodeID(m.Addr(0, 15)), 4000, nil, nil)
	// w2 approaches along row 0 (5 hops), then needs column 0 upward:
	// by then w1 owns it, so w2 stalls holding its row-0 west channels.
	w2 := n.Send(NodeID(m.Addr(5, 0)), NodeID(m.Addr(0, 10)), 4000, nil, nil)
	// w3 crosses row 0 westward through channels w2 holds while stalled:
	// blocked transitively, two links behind the real culprit.
	w3 := n.Send(NodeID(m.Addr(7, 0)), NodeID(m.Addr(2, 0)), 4000, nil, nil)
	if _, err := n.RunUntilIdle(1 << 22); err != nil {
		t.Fatal(err)
	}
	if w2.BlockedCycles == 0 {
		t.Fatal("w2 should block on w1's column channels")
	}
	if w3.BlockedCycles == 0 {
		t.Fatal("w3 should block behind the chain (blocking in place)")
	}
	if !(w1.ArrivedAt < w2.ArrivedAt) {
		t.Fatalf("arrivals not serialized: w1=%d w2=%d w3=%d", w1.ArrivedAt, w2.ArrivedAt, w3.ArrivedAt)
	}
}

// TestOnePortInjectionSerialization: two messages from the same node share
// one injection channel; the second records inject-wait, not network
// contention.
func TestOnePortInjectionSerialization(t *testing.T) {
	cfg := DefaultConfig()
	m := mesh.New2D(8, 8)
	n := New(m, cfg)
	w1 := n.Send(0, 7, 1600, nil, nil)
	w2 := n.Send(0, 56, 1600, nil, nil) // disjoint path after injection
	if _, err := n.RunUntilIdle(1 << 20); err != nil {
		t.Fatal(err)
	}
	if w1.InjectWaitCycles != 0 {
		t.Fatal("first worm waited to inject")
	}
	if w2.InjectWaitCycles == 0 {
		t.Fatal("second worm did not wait for the one-port interface")
	}
	if w2.BlockedCycles != 0 {
		t.Fatalf("one-port wait misclassified as network contention (%d blocked cycles)", w2.BlockedCycles)
	}
	// The second worm cannot finish injecting before the first has fully
	// left the injection channel.
	if w2.InjectedAt <= w1.InjectedAt {
		t.Fatal("injections not serialized")
	}
}

// TestSuccessiveSendsNeverStall: a node's later message trails its earlier
// one and never records network blocking even on a fully shared path —
// the property that makes per-sender serialization free of contention.
func TestSuccessiveSendsNeverStall(t *testing.T) {
	cfg := DefaultConfig()
	m := mesh.New2D(16, 1)
	n := New(m, cfg)
	w1 := n.Send(0, 15, 2048, nil, nil)
	w2 := n.Send(0, 15, 2048, nil, nil)
	w3 := n.Send(0, 14, 2048, nil, nil)
	if _, err := n.RunUntilIdle(1 << 22); err != nil {
		t.Fatal(err)
	}
	for i, w := range []*Worm{w1, w2, w3} {
		if w.BlockedCycles != 0 {
			t.Fatalf("worm %d blocked %d cycles in the network", i+1, w.BlockedCycles)
		}
	}
}

// TestSendToSelf: a worm can traverse its own inject/eject pair.
func TestSendToSelf(t *testing.T) {
	n := newMeshNet(4, 4, DefaultConfig())
	w := runOne(t, n, 5, 5, 64)
	if len(w.Path()) != 2 {
		t.Fatalf("self-send path length %d, want 2", len(w.Path()))
	}
}

// TestArrivalCallback fires exactly once with the completed worm.
func TestArrivalCallback(t *testing.T) {
	n := newMeshNet(4, 4, DefaultConfig())
	calls := 0
	var at int64
	w := n.Send(0, 15, 128, "payload", func(w *Worm, now int64) {
		calls++
		at = now
		if w.Tag != "payload" {
			t.Errorf("tag = %v", w.Tag)
		}
	})
	if _, err := n.RunUntilIdle(1 << 20); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("callback fired %d times", calls)
	}
	if at != w.ArrivedAt {
		t.Fatalf("callback at %d, worm arrived %d", at, w.ArrivedAt)
	}
}

// TestDeterminism: identical workloads give identical cycle-exact results.
func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		n := newMeshNet(8, 8, DefaultConfig())
		var worms []*Worm
		for i := 0; i < 20; i++ {
			worms = append(worms, n.Send(NodeID(i), NodeID(63-i*2%64), 700, nil, nil))
		}
		if _, err := n.RunUntilIdle(1 << 20); err != nil {
			t.Fatal(err)
		}
		out := []int64{n.Stats().BlockedCycles, n.Stats().FlitHops}
		for _, w := range worms {
			out = append(out, w.ArrivedAt)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestOldestFirstArbitration: when two headers want the same channel in
// the same cycle, the older worm wins.
func TestOldestFirstArbitration(t *testing.T) {
	cfg := DefaultConfig()
	m := mesh.New2D(3, 3)
	n := New(m, cfg)
	// Perfectly symmetric contenders for node (1,1)'s single ejection
	// channel: both headers arrive at router (1,1) in the same cycle and
	// request ejection in the same phase; the older worm must win.
	w1 := n.Send(NodeID(m.Addr(0, 1)), NodeID(m.Addr(1, 1)), 4000, nil, nil)
	w2 := n.Send(NodeID(m.Addr(2, 1)), NodeID(m.Addr(1, 1)), 4000, nil, nil)
	if _, err := n.RunUntilIdle(1 << 22); err != nil {
		t.Fatal(err)
	}
	if w1.BlockedCycles != 0 || w2.BlockedCycles == 0 {
		t.Fatalf("arbitration: w1 blocked %d, w2 blocked %d; older should win", w1.BlockedCycles, w2.BlockedCycles)
	}
	if w1.ArrivedAt >= w2.ArrivedAt {
		t.Fatalf("older worm finished at %d, younger at %d", w1.ArrivedAt, w2.ArrivedAt)
	}
}

// TestAdvanceTo fast-forwards only an idle fabric.
func TestAdvanceTo(t *testing.T) {
	n := newMeshNet(4, 4, DefaultConfig())
	n.AdvanceTo(1000)
	if n.Now() != 1000 {
		t.Fatalf("now = %d", n.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo into the past did not panic")
		}
	}()
	n.AdvanceTo(500)
}

func TestAdvanceToActivePanics(t *testing.T) {
	n := newMeshNet(4, 4, DefaultConfig())
	n.Send(0, 1, 64, nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo with active worms did not panic")
		}
	}()
	n.AdvanceTo(10)
}

// TestRunUntilIdleTimeout returns an error instead of hanging.
func TestRunUntilIdleTimeout(t *testing.T) {
	n := newMeshNet(8, 8, DefaultConfig())
	n.Send(0, 63, 1<<20, nil, nil) // enormous message
	if _, err := n.RunUntilIdle(10); err == nil {
		t.Fatal("expected timeout error")
	}
}

// TestSendValidation: bad endpoints and sizes panic (programming errors).
func TestSendValidation(t *testing.T) {
	n := newMeshNet(4, 4, DefaultConfig())
	for _, fn := range []func(){
		func() { n.Send(-1, 0, 1, nil, nil) },
		func() { n.Send(0, 16, 1, nil, nil) },
		func() { n.Send(0, 1, -1, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestZeroByteMessage still carries its header flit end to end.
func TestZeroByteMessage(t *testing.T) {
	n := newMeshNet(4, 4, DefaultConfig())
	w := runOne(t, n, 0, 15, 0)
	if w.Flits() != DefaultConfig().HeaderFlits {
		t.Fatalf("zero-byte message has %d flits", w.Flits())
	}
}

// TestBufferCapacityRespected: with BufFlits=1 a long worm still flows at
// one flit per cycle once the pipeline fills (no throughput loss).
func TestBufferCapacityRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufFlits = 1
	a := runOne(t, newMeshNet(16, 1, cfg), 0, 15, 4000)
	cfg.BufFlits = 8
	b := runOne(t, newMeshNet(16, 1, cfg), 0, 15, 4000)
	if a.ArrivedAt != b.ArrivedAt {
		t.Fatalf("buffer depth changed uncontended latency: %d vs %d", a.ArrivedAt, b.ArrivedAt)
	}
}

// TestPathChannelsMatchesWormPath: the static route predictor agrees with
// what a worm actually acquires on an idle network.
func TestPathChannelsMatchesWormPath(t *testing.T) {
	cfg := DefaultConfig()
	m := mesh.New2D(8, 8)
	n := New(m, cfg)
	w := runOne(t, n, 9, 54, 100)
	want := PathChannels(m, 9, 54)
	got := w.Path()
	if len(got) != len(want) {
		t.Fatalf("path lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("path diverges at %d", i)
		}
	}
}
