package wormhole

// ForceOwner fabricates (or, with nil, clears) channel ownership so tests
// can exercise the Quiesced leaked-channel error path, which is
// unreachable through the public API of a correct kernel.
func (n *Network) ForceOwner(c ChannelID, w *Worm) { n.owner[c] = w }
