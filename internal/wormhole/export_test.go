package wormhole

// ForceOwner fabricates (or, with nil, clears) channel ownership so tests
// can exercise the Quiesced leaked-channel error path, which is
// unreachable through the public API of a correct kernel. The ghost worm
// is given a slot of its own so the slot-indexed owner table stays
// coherent.
func (n *Network) ForceOwner(c ChannelID, w *Worm) {
	if w == nil {
		if s := n.owner[c]; s >= 0 {
			n.freeSlot(s)
		}
		n.owner[c] = -1
		return
	}
	w.slot = n.takeSlot(w)
	n.owner[c] = w.slot
}

// SetDomainsForTest overrides the contiguous node partition installed by
// SetParallelism(p) with an arbitrary node-to-domain map, so property
// tests can check that results are independent of the partition, not
// just of the domain count. dom must have one entry per node, each in
// [0, p); the fabric must be idle.
func (n *Network) SetDomainsForTest(dom []int32) {
	if len(n.worms) != 0 {
		panic("wormhole: SetDomainsForTest with active worms")
	}
	if n.par <= 1 {
		panic("wormhole: SetDomainsForTest without SetParallelism")
	}
	if len(dom) != n.topo.NumNodes() {
		panic("wormhole: SetDomainsForTest with wrong map length")
	}
	for _, d := range dom {
		if d < 0 || int(d) >= n.par {
			panic("wormhole: SetDomainsForTest domain out of range")
		}
	}
	copy(n.domOf, dom)
}

// DeadlockWaitersBuf exposes the cached DeadlockReport histogram so the
// reuse regression test can assert two successive reports share one
// backing array.
func (n *Network) DeadlockWaitersBuf() []int32 { return n.dlWaiters }
