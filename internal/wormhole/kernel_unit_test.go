package wormhole_test

// Unit coverage for the kernel-scheduling machinery: the Blocked blame
// rule, the Quiesced error paths, the kernel/recycling guard rails, and
// the steady-state allocation contract of the pooled free list.

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	. "repro/internal/wormhole"
)

// blameTopo is a hand-built 4-node fabric that pins the Blocked blame
// rule. Channels 0–3 are injection, 4–7 ejection; channels 8 ("X") and 9
// ("Y") both lead to node 3's router. Node 1 routes via X only, node 2
// via Y only, and node 0 adaptively via [Y, X] — preferring Y — so a worm
// from node 0 can find its preferred candidate held by a *younger* worm
// while the alternative is held by an older one.
type blameTopo struct{}

func (blameTopo) NumNodes() int                    { return 4 }
func (blameTopo) NumChannels() int                 { return 10 }
func (blameTopo) InjectChannel(n NodeID) ChannelID { return ChannelID(n) }
func (blameTopo) EjectChannel(n NodeID) ChannelID  { return ChannelID(4 + n) }
func (blameTopo) DescribeChannel(c ChannelID) string {
	return fmt.Sprintf("c%d", c)
}

func (blameTopo) Route(cur ChannelID, src, dst NodeID, buf []ChannelID) []ChannelID {
	switch cur {
	case 0:
		return append(buf, 9, 8)
	case 1:
		return append(buf, 8)
	case 2:
		return append(buf, 9)
	case 8, 9:
		return append(buf, ChannelID(4+dst))
	}
	panic(fmt.Sprintf("blameTopo: unexpected Route from c%d", cur))
}

// TestBlockedBlameRule sends three worms to node 3: w0 (node 1) takes X,
// w1 (node 2) takes Y, then w2 (node 0) finds both candidates owned —
// its preference Y by the younger w1, the alternative X by the older w0.
// Under oldest-first arbitration the oldest holder heads the blocking
// chain, so every Blocked report for w2 must name X and w0 (the previous
// rule reported the first preference's holder, i.e. Y and w1). Both
// kernels must apply the same rule.
func TestBlockedBlameRule(t *testing.T) {
	for _, k := range []Kernel{KernelFast, KernelReference} {
		t.Run(fmt.Sprintf("kernel%d", k), func(t *testing.T) {
			n := New(blameTopo{}, DefaultConfig())
			n.SetKernel(k)
			log := &eventLog{}
			n.SetObserver(log)
			n.Send(1, 3, 400, nil, nil) // w0: acquires X, then the eject channel
			n.Send(2, 3, 400, nil, nil) // w1: acquires Y, blocks on the eject channel
			w2 := n.Send(0, 3, 40, nil, nil)
			if _, err := n.RunUntilIdle(1 << 16); err != nil {
				t.Fatal(err)
			}
			if w2.BlockedCycles == 0 {
				t.Fatal("w2 never blocked; the scenario did not exercise multi-candidate blame")
			}
			// w2 blocks in two phases: first at its router with both
			// candidates owned (the multi-candidate reports under test,
			// naming X or Y), later on node 3's single-candidate eject
			// channel while the pipeline drains (c=7, not at issue).
			routerBlames := 0
			for _, e := range log.events {
				if !strings.Contains(e, "blk w=2") || strings.Contains(e, "c=7") {
					continue
				}
				routerBlames++
				if !strings.HasSuffix(e, "c=8 hold=0") {
					t.Fatalf("w2 blame %q: want channel X (c=8) held by the oldest worm (w0)", e)
				}
			}
			if routerBlames == 0 {
				t.Fatal("no multi-candidate Blocked reports recorded for w2")
			}
		})
	}
}

func TestQuiescedActiveWorm(t *testing.T) {
	n := newMeshNet(4, 4, DefaultConfig())
	n.Send(0, 5, 64, nil, nil)
	err := n.Quiesced()
	if err == nil || !strings.Contains(err.Error(), "worms still active") {
		t.Fatalf("Quiesced with an in-flight worm: %v", err)
	}
	if _, err := n.RunUntilIdle(1 << 16); err != nil {
		t.Fatal(err)
	}
	if err := n.Quiesced(); err != nil {
		t.Fatalf("Quiesced after drain: %v", err)
	}
}

func TestQuiescedLeakedChannel(t *testing.T) {
	n := newMeshNet(4, 4, DefaultConfig())
	ghost := &Worm{ID: 42}
	n.ForceOwner(5, ghost)
	err := n.Quiesced()
	if err == nil || !strings.Contains(err.Error(), "owned by worm 42") {
		t.Fatalf("Quiesced with a leaked channel: %v", err)
	}
	n.ForceOwner(5, nil)
	if err := n.Quiesced(); err != nil {
		t.Fatal(err)
	}
}

func TestSetKernelActivePanics(t *testing.T) {
	n := newMeshNet(4, 4, DefaultConfig())
	n.Send(0, 5, 64, nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("SetKernel with active worms did not panic")
		}
	}()
	n.SetKernel(KernelReference)
}

func TestStepUntilPastLimitPanics(t *testing.T) {
	n := newMeshNet(4, 4, DefaultConfig())
	n.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("StepUntil at/before now did not panic")
		}
	}()
	n.StepUntil(n.Now())
}

// TestRunUntilIdleTimeoutMatchesReference pins that the fast kernel's
// cycle-skipping reports a deadlock timeout at exactly the same cycle
// count as stepping through the stall would: a worm parked behind a
// never-released channel exhausts precisely maxCycles.
func TestRunUntilIdleTimeoutMatchesReference(t *testing.T) {
	run := func(k Kernel) (int64, int64, error) {
		n := New(blameTopo{}, DefaultConfig())
		n.SetKernel(k)
		n.ForceOwner(9, &Worm{ID: 99}) // node 2's only route, held forever
		w := n.Send(2, 3, 16, nil, nil)
		stepped, err := n.RunUntilIdle(500)
		return stepped, w.BlockedCycles, err
	}
	fs, fb, ferr := run(KernelFast)
	rs, rb, rerr := run(KernelReference)
	if ferr == nil || rerr == nil {
		t.Fatalf("deadlocked run did not time out: fast=%v ref=%v", ferr, rerr)
	}
	if fs != rs || fb != rb {
		t.Fatalf("timeout accounting diverges: fast stepped %d (blocked %d), reference %d (blocked %d)", fs, fb, rs, rb)
	}
}

// TestRecyclingSteadyStateAllocs is the pooling contract: once the free
// list is primed, a Send + drain round trip performs zero heap
// allocations, and recycling does not perturb IDs or timings.
func TestRecyclingSteadyStateAllocs(t *testing.T) {
	n := newMeshNet(8, 8, DefaultConfig())
	n.SetRecycling(true)
	drain := func() {
		if _, err := n.RunUntilIdle(1 << 16); err != nil {
			t.Fatal(err)
		}
	}
	// Prime the pool (first round allocates the worm and its slices).
	n.Send(0, 63, 128, nil, nil)
	drain()
	allocs := testing.AllocsPerRun(50, func() {
		n.Send(0, 63, 128, nil, nil)
		drain()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Send+drain allocated %.1f objects/op, want 0", allocs)
	}

	// Same workload without recycling: identical IDs and timings. Worm
	// fields are captured in the arrival callback, the last point the
	// recycling contract allows reading them.
	a, b := newMeshNet(8, 8, DefaultConfig()), newMeshNet(8, 8, DefaultConfig())
	a.SetRecycling(true)
	for round := 0; round < 3; round++ {
		var got [2][]wormRecord
		for i, net := range []*Network{a, b} {
			rec := &got[i]
			record := func(w *Worm, now int64) {
				*rec = append(*rec, wormRecord{ID: w.ID, InjectedAt: w.InjectedAt, ArrivedAt: w.ArrivedAt})
			}
			net.Send(0, 63, 256, nil, record)
			net.Send(7, 56, 256, nil, record)
			if _, err := net.RunUntilIdle(1 << 16); err != nil {
				t.Fatal(err)
			}
		}
		if len(got[0]) != 2 || !reflect.DeepEqual(got[0], got[1]) {
			t.Fatalf("round %d: recycling changed IDs or timings:\n with %+v\n sans %+v", round, got[0], got[1])
		}
	}
}
