package wormhole_test

// Differential harness extension for faulted fabrics: the kernel
// equivalence proof of kernel_diff_test.go must keep holding when a
// fault model gates flit motion and the routing layer detours around
// dead channels — including runs that end in an unreachable-destination
// error, where both kernels must observe the error at the same cycle
// with identical statistics.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/mesh"
	. "repro/internal/wormhole"
)

// runWorkloadFaulty is runWorkload for fabrics that may legitimately
// fail to drain: instead of t.Fatal on a RunUntilIdle error it captures
// the error text as part of the observable outcome, and only demands
// Quiesced on clean runs (an unreachable worm freezes holding its
// channels by design).
func runWorkloadFaulty(t *testing.T, n *Network, sends []timedSend) (runSnapshot, string) {
	t.Helper()
	log := &eventLog{}
	n.SetObserver(log)
	var snap runSnapshot
	record := func(w *Worm, now int64) {
		snap.Worms = append(snap.Worms, wormRecord{
			ID: w.ID, Src: w.Src, Dst: w.Dst,
			Bytes: w.Bytes, Flits: w.Flits(), PathLen: len(w.Path()),
			InjectedAt: w.InjectedAt, ArrivedAt: w.ArrivedAt,
			Blocked: w.BlockedCycles, InjectWait: w.InjectWaitCycles,
		})
	}
	for _, s := range sends {
		for n.Now() < s.at {
			if n.Active() == 0 {
				n.AdvanceTo(s.at)
				break
			}
			n.StepUntil(s.at)
		}
		n.Send(s.src, s.dst, s.bytes, nil, record)
	}
	var errText string
	if _, err := n.RunUntilIdle(1 << 20); err != nil {
		errText = err.Error()
	} else if err := n.Quiesced(); err != nil {
		t.Fatal(err)
	}
	snap.Stats = n.Stats()
	snap.Now = n.Now()
	snap.Events = log.events
	return snap, errText
}

// TestKernelDifferentialFaults runs seeded random workloads on all four
// fabric families under shared seeded fault plans (dead + degraded +
// flaky channels) through both kernels, requiring bit-identical
// statistics, worm records, event streams and error text. Odd seeds use
// the stall-heavy config so fault-gated refusals interleave with deep
// cycle-skipping; that is exactly the interaction faultStall exists to
// keep sound.
func TestKernelDifferentialFaults(t *testing.T) {
	for _, p := range diffPlatforms() {
		for seed := int64(0); seed < 6; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", p.name, seed), func(t *testing.T) {
				cfg := DefaultConfig()
				if seed%2 == 1 {
					cfg.RouterDelay = 7
					cfg.BufFlits = 1
				}
				plan := fault.MustPlan(p.topo, fault.Spec{
					DeadFrac:     0.02,
					DegradedFrac: 0.05,
					FlakyFrac:    0.05,
					Seed:         uint64(seed)*0x9e3779b9 + 11,
				})
				r := rand.New(rand.NewSource(271 + seed*104729))
				sends := randWorkload(r, p.topo.NumNodes(), 40)

				ref := New(p.topo, cfg)
				ref.SetKernel(KernelReference)
				ref.SetFaults(plan)
				want, wantErr := runWorkloadFaulty(t, ref, sends)

				fast := New(p.topo, cfg)
				fast.SetFaults(plan)
				got, gotErr := runWorkloadFaulty(t, fast, sends)

				if gotErr != wantErr {
					t.Fatalf("error text diverges:\n got %q\nwant %q", gotErr, wantErr)
				}
				diffSnapshots(t, got, want)
			})
		}
	}
}

// TestFaultsWithoutDeadLinksAlwaysDrain pins the liveness half of the
// fault model: degraded and flaky channels stall flits but never strand
// them, so every workload must still drain to an idle, fully released
// fabric with all worms delivered.
func TestFaultsWithoutDeadLinksAlwaysDrain(t *testing.T) {
	for _, p := range diffPlatforms() {
		t.Run(p.name, func(t *testing.T) {
			plan := fault.MustPlan(p.topo, fault.Spec{
				DegradedFrac: 0.15,
				FlakyFrac:    0.15,
				Seed:         7,
			})
			n := New(p.topo, DefaultConfig())
			n.SetFaults(plan)
			r := rand.New(rand.NewSource(99))
			sends := randWorkload(r, p.topo.NumNodes(), 40)
			snap, errText := runWorkloadFaulty(t, n, sends)
			if errText != "" {
				t.Fatalf("degraded/flaky-only fabric failed to drain: %s", errText)
			}
			if len(snap.Worms) != len(sends) {
				t.Fatalf("delivered %d of %d worms", len(snap.Worms), len(sends))
			}
		})
	}
}

// retainObserver keeps every completed *Worm alongside a copy of the
// fields it saw at Complete time — the usage pattern of trace.Timeline
// and trace.BlockLog, which index per-worm data by pointer after the
// worm has left the fabric.
type retainObserver struct {
	worms []*Worm
	seen  []wormRecord
}

func (o *retainObserver) Acquire(now int64, w *Worm, c ChannelID)               {}
func (o *retainObserver) Release(now int64, w *Worm, c ChannelID)               {}
func (o *retainObserver) Blocked(now int64, w *Worm, c ChannelID, holder *Worm) {}
func (o *retainObserver) Complete(now int64, w *Worm) {
	o.worms = append(o.worms, w)
	o.seen = append(o.seen, wormRecord{
		ID: w.ID, Src: w.Src, Dst: w.Dst,
		Bytes: w.Bytes, Flits: w.Flits(), PathLen: len(w.Path()),
		InjectedAt: w.InjectedAt, ArrivedAt: w.ArrivedAt,
		Blocked: w.BlockedCycles, InjectWait: w.InjectWaitCycles,
	})
}

// TestRecyclingNeverPoolsUnderObserver is the regression test for the
// pooled-worm aliasing hazard: with SetRecycling(true) and an observer
// installed, completed worms used to be pushed onto the free list even
// though the observer may retain them past Complete — later Sends would
// then rewrite the retained structs in place. Pooling must be suppressed
// while an observer is attached, so every retained pointer keeps the
// exact field values it had at Complete time.
func TestRecyclingNeverPoolsUnderObserver(t *testing.T) {
	n := New(mesh.New2D(8, 8), DefaultConfig())
	n.SetRecycling(true)
	obs := &retainObserver{}
	n.SetObserver(obs)

	r := rand.New(rand.NewSource(5))
	sends := randWorkload(r, 64, 96)
	for _, s := range sends {
		for n.Now() < s.at {
			if n.Active() == 0 {
				n.AdvanceTo(s.at)
				break
			}
			n.StepUntil(s.at)
		}
		n.Send(s.src, s.dst, s.bytes, nil, nil)
	}
	if _, err := n.RunUntilIdle(1 << 22); err != nil {
		t.Fatal(err)
	}
	if len(obs.worms) != len(sends) {
		t.Fatalf("observed %d completions, want %d", len(obs.worms), len(sends))
	}
	for i, w := range obs.worms {
		now := wormRecord{
			ID: w.ID, Src: w.Src, Dst: w.Dst,
			Bytes: w.Bytes, Flits: w.Flits(), PathLen: len(w.Path()),
			InjectedAt: w.InjectedAt, ArrivedAt: w.ArrivedAt,
			Blocked: w.BlockedCycles, InjectWait: w.InjectWaitCycles,
		}
		if now != obs.seen[i] {
			t.Fatalf("retained worm %d was rewritten after Complete (pooled and reissued):\n at Complete %+v\n now         %+v",
				i, obs.seen[i], now)
		}
	}
	// The same pointer must never complete twice: reissue would mean the
	// free list handed an observed worm back to Send.
	byPtr := make(map[*Worm]int)
	for i, w := range obs.worms {
		if j, dup := byPtr[w]; dup {
			t.Fatalf("worm pointer reissued: completions %d and %d share a struct", j, i)
		}
		byPtr[w] = i
	}
}

// TestSetFaultsPanicsMidFlight pins the installation contract: swapping
// the fault model under in-flight worms would silently invalidate their
// already-routed paths.
func TestSetFaultsPanicsMidFlight(t *testing.T) {
	n := New(mesh.New2D(4, 4), DefaultConfig())
	n.Send(0, 15, 64, nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("SetFaults with active worms did not panic")
		}
	}()
	n.SetFaults(fault.MustPlan(n.Topology(), fault.Spec{DeadFrac: 0.1, Seed: 1}))
}

// TestUnreachableErrorNamesTheWorm checks the shape of the diagnostic on
// a partitioned fabric: a plan whose dead set cuts off some destination
// must produce an error naming the worm's endpoints, and DeadlockReport
// must name a stuck worm rather than hang.
func TestUnreachableErrorNamesTheWorm(t *testing.T) {
	topo := mesh.New2D(8, 8)
	// Find a seed whose 6% dead plan strands at least one of the 64
	// single-destination sends; scanning is deterministic, so the first
	// hit is always the same.
	for seed := uint64(1); seed < 64; seed++ {
		plan := fault.MustPlan(topo, fault.Spec{DeadFrac: 0.06, Seed: seed})
		n := New(topo, DefaultConfig())
		n.SetFaults(plan)
		r := rand.New(rand.NewSource(int64(seed)))
		sends := randWorkload(r, topo.NumNodes(), 64)
		_, errText := runWorkloadFaulty(t, n, sends)
		if errText == "" {
			continue
		}
		if !strings.Contains(errText, "unreachable") || !strings.Contains(errText, "->") {
			t.Fatalf("unreachable diagnostic missing endpoints: %q", errText)
		}
		report := n.DeadlockReport(8)
		if !strings.Contains(report, "worms in flight") {
			t.Fatalf("DeadlockReport lacks header: %q", report)
		}
		if !strings.Contains(report, "unreachable") {
			t.Fatalf("DeadlockReport does not name the stranded worm: %q", report)
		}
		return
	}
	t.Fatal("no seed in [1,64) produced an unreachable worm; fault plans may be vacuous")
}
