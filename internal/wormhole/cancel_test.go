package wormhole_test

// Cancel is the recovery layer's withdrawal primitive: a timed-out worm
// is pulled from the fabric so a retransmit can never double-deliver.
// These tests pin its contract — channels released, waiters unblocked,
// frozen-fabric errors cleared — and prove both kernels observe a
// cancelled fabric identically.

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/mesh"
	. "repro/internal/wormhole"
)

// stepTo advances the network to exactly cycle t, using AdvanceTo when
// idle so the walk works on quiet fabrics too.
func stepTo(t *testing.T, n *Network, at int64) {
	t.Helper()
	for n.Now() < at {
		if n.Active() == 0 {
			n.AdvanceTo(at)
			return
		}
		n.StepUntil(at)
	}
}

// TestCancelReleasesEverything: cancelling a worm mid-flight must free
// every channel it holds, empty the active set, and count in
// Stats.Cancelled — leaving the fabric as if the send never happened.
func TestCancelReleasesEverything(t *testing.T) {
	n := newMeshNet(8, 1, DefaultConfig())
	w := n.Send(0, 7, 4096, nil, nil)
	stepTo(t, n, 40)
	if len(w.Path()) < 3 {
		t.Fatalf("worm holds only %d channels at cycle 40; scenario too weak", len(w.Path()))
	}
	n.Cancel(w)
	if n.Active() != 0 {
		t.Fatalf("Active() = %d after cancelling the only worm", n.Active())
	}
	if err := n.Quiesced(); err != nil {
		t.Fatalf("fabric not clean after Cancel: %v", err)
	}
	s := n.Stats()
	if s.Cancelled != 1 || s.Worms != 0 {
		t.Fatalf("stats after cancel: Cancelled=%d Worms=%d, want 1/0", s.Cancelled, s.Worms)
	}
}

// TestCancelUnblocksWaiter: a worm blocked behind the cancelled worm's
// channels must acquire them and complete once the holder is withdrawn.
func TestCancelUnblocksWaiter(t *testing.T) {
	n := newMeshNet(8, 1, DefaultConfig())
	hog := n.Send(0, 7, 1<<16, nil, nil) // long-lived: holds the row for many cycles
	stepTo(t, n, 100)                    // let the hog claim the whole row first
	var arrived bool
	blocked := n.Send(1, 7, 64, nil, func(*Worm, int64) { arrived = true })
	stepTo(t, n, 200)
	if blocked.BlockedCycles == 0 {
		t.Fatal("second worm never blocked behind the hog; scenario too weak")
	}
	n.Cancel(hog)
	if _, err := n.RunUntilIdle(1 << 20); err != nil {
		t.Fatal(err)
	}
	if !arrived || !blocked.Done() {
		t.Fatal("blocked worm did not complete after the holder was cancelled")
	}
	if err := n.Quiesced(); err != nil {
		t.Fatal(err)
	}
}

// TestCancelKernelEquivalence: a scripted send/cancel/drain scenario must
// leave bit-identical observables on the fast and reference kernels —
// cancellation happens between steps, so cycle-skipping must neither miss
// it nor shift the survivors' timing.
func TestCancelKernelEquivalence(t *testing.T) {
	type outcome struct {
		arrivals []int64
		stats    Stats
		now      int64
	}
	run := func(k Kernel) outcome {
		n := newMeshNet(8, 8, DefaultConfig())
		n.SetKernel(k)
		var o outcome
		record := func(w *Worm, now int64) { o.arrivals = append(o.arrivals, w.ID, now) }
		hog := n.Send(0, 63, 1<<14, nil, record)
		n.Send(8, 63, 512, nil, record)
		n.Send(16, 63, 512, nil, record)
		stepTo(t, n, 150)
		n.Cancel(hog)
		if _, err := n.RunUntilIdle(1 << 20); err != nil {
			t.Fatal(err)
		}
		o.stats = n.Stats()
		o.now = n.Now()
		return o
	}
	fast, ref := run(KernelFast), run(KernelReference)
	if fast.now != ref.now || fast.stats != ref.stats {
		t.Fatalf("kernel divergence after cancel:\n fast %+v now=%d\n ref  %+v now=%d",
			fast.stats, fast.now, ref.stats, ref.now)
	}
	if len(fast.arrivals) != len(ref.arrivals) {
		t.Fatalf("arrival counts differ: %v vs %v", fast.arrivals, ref.arrivals)
	}
	for i := range fast.arrivals {
		if fast.arrivals[i] != ref.arrivals[i] {
			t.Fatalf("arrival records differ at %d: %v vs %v", i, fast.arrivals, ref.arrivals)
		}
	}
}

// TestCancelUnreachableClearsErr: a worm frozen with no live route is
// surfaced by Unreachable; cancelling the last frozen worm clears the
// fabric error so a recovery driver can keep running on the same net.
func TestCancelUnreachableClearsErr(t *testing.T) {
	m := mesh.New2D(8, 1)
	n := New(m, DefaultConfig())
	n.SetFaults(fault.MustPlan(m, fault.Spec{DeadFrac: 1, Seed: 3}))
	w := n.Send(0, 7, 256, nil, nil)
	for i := 0; i < 64 && n.Err() == nil; i++ {
		n.StepUntil(n.Now() + 16)
	}
	if n.Err() == nil {
		t.Fatal("fully-dead fabric produced no unreachable error")
	}
	frozen := n.Unreachable(nil)
	if len(frozen) != 1 || frozen[0] != w {
		t.Fatalf("Unreachable() = %v, want the single frozen worm", frozen)
	}
	n.Cancel(w)
	if n.Err() != nil {
		t.Fatalf("Err() still set after cancelling the only frozen worm: %v", n.Err())
	}
	if n.Active() != 0 {
		t.Fatalf("Active() = %d after cancel", n.Active())
	}
	if err := n.Quiesced(); err != nil {
		t.Fatal(err)
	}
}

// TestCancelPanics: withdrawing a worm twice (or one the net never saw)
// is a driver bug and must panic loudly, not corrupt the active set.
func TestCancelPanics(t *testing.T) {
	n := newMeshNet(4, 1, DefaultConfig())
	w := n.Send(0, 3, 64, nil, nil)
	n.Cancel(w)
	mustPanic := func(name, want string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s did not panic", name)
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
				t.Fatalf("%s panic = %v, want substring %q", name, r, want)
			}
		}()
		f()
	}
	mustPanic("double cancel", "not in flight", func() { n.Cancel(w) })
	mustPanic("nil cancel", "nil or completed", func() { n.Cancel(nil) })
}
