package wormhole_test

// Differential harness for the scheduling kernels: random seeded
// workloads on all four fabric families run through KernelFast,
// KernelReference and the domain-parallel kernel, asserting bit-identical
// statistics, per-worm timings and observer event streams. This is the
// proof obligation that lets the stall-aware kernel skip cycles and the
// parallel kernel step domains concurrently at all.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bfly"
	"repro/internal/bmin"
	"repro/internal/mesh"
	"repro/internal/torus"
	. "repro/internal/wormhole"
)

// timedSend is one workload element: inject a worm at cycle at.
type timedSend struct {
	at       int64
	src, dst NodeID
	bytes    int
}

// eventLog records the complete fabric event stream as formatted strings,
// so two runs can be compared event-for-event. IDs are captured at event
// time, which also makes the log safe under worm recycling.
type eventLog struct{ events []string }

func (l *eventLog) Acquire(now int64, w *Worm, c ChannelID) {
	l.events = append(l.events, fmt.Sprintf("t=%d acq w=%d c=%d", now, w.ID, c))
}

func (l *eventLog) Release(now int64, w *Worm, c ChannelID) {
	l.events = append(l.events, fmt.Sprintf("t=%d rel w=%d c=%d", now, w.ID, c))
}

func (l *eventLog) Blocked(now int64, w *Worm, c ChannelID, holder *Worm) {
	l.events = append(l.events, fmt.Sprintf("t=%d blk w=%d c=%d hold=%d", now, w.ID, c, holder.ID))
}

func (l *eventLog) Complete(now int64, w *Worm) {
	l.events = append(l.events, fmt.Sprintf("t=%d cpl w=%d", now, w.ID))
}

// wormRecord snapshots everything observable about one completed worm.
type wormRecord struct {
	ID                    int64
	Src, Dst              NodeID
	Bytes, Flits, PathLen int
	InjectedAt, ArrivedAt int64
	Blocked, InjectWait   int64
}

// runSnapshot is the full observable outcome of a workload execution.
type runSnapshot struct {
	Stats  Stats
	Now    int64
	Worms  []wormRecord
	Events []string
}

// randWorkload draws a seeded send sequence mixing same-cycle bursts,
// tight pacing, and long software-style gaps (which exercise both
// AdvanceTo and StepUntil's cycle-skipping).
func randWorkload(r *rand.Rand, nodes, count int) []timedSend {
	sends := make([]timedSend, 0, count)
	at := int64(0)
	for i := 0; i < count; i++ {
		switch r.Intn(4) {
		case 0: // burst: same cycle as the previous send
		case 1:
			at += int64(r.Intn(5))
		case 2:
			at += int64(r.Intn(60))
		case 3:
			at += int64(r.Intn(3000))
		}
		src := NodeID(r.Intn(nodes))
		dst := NodeID(r.Intn(nodes))
		for dst == src {
			dst = NodeID(r.Intn(nodes))
		}
		sends = append(sends, timedSend{at: at, src: src, dst: dst, bytes: r.Intn(200)})
	}
	return sends
}

// runWorkload drives a network through the timed sends exactly as the
// mcastsim drivers do — AdvanceTo across idle gaps, StepUntil bounded by
// the next injection time — and returns the complete observable outcome.
func runWorkload(t *testing.T, n *Network, sends []timedSend) runSnapshot {
	t.Helper()
	log := &eventLog{}
	n.SetObserver(log)
	var snap runSnapshot
	record := func(w *Worm, now int64) {
		snap.Worms = append(snap.Worms, wormRecord{
			ID: w.ID, Src: w.Src, Dst: w.Dst,
			Bytes: w.Bytes, Flits: w.Flits(), PathLen: len(w.Path()),
			InjectedAt: w.InjectedAt, ArrivedAt: w.ArrivedAt,
			Blocked: w.BlockedCycles, InjectWait: w.InjectWaitCycles,
		})
	}
	for _, s := range sends {
		for n.Now() < s.at {
			if n.Active() == 0 {
				n.AdvanceTo(s.at)
				break
			}
			n.StepUntil(s.at)
		}
		n.Send(s.src, s.dst, s.bytes, nil, record)
	}
	if _, err := n.RunUntilIdle(1 << 22); err != nil {
		t.Fatal(err)
	}
	if err := n.Quiesced(); err != nil {
		t.Fatal(err)
	}
	snap.Stats = n.Stats()
	snap.Now = n.Now()
	snap.Events = log.events
	return snap
}

// runWorkloadQuiet is runWorkload without the event-log observer, for
// networks stepping the domain-parallel kernel: an attached Observer
// forces the (observably equivalent) serial fallback, so parallel legs
// of the differential must run observer-free and compare eventless
// snapshots.
func runWorkloadQuiet(t *testing.T, n *Network, sends []timedSend) runSnapshot {
	t.Helper()
	var snap runSnapshot
	record := func(w *Worm, now int64) {
		snap.Worms = append(snap.Worms, wormRecord{
			ID: w.ID, Src: w.Src, Dst: w.Dst,
			Bytes: w.Bytes, Flits: w.Flits(), PathLen: len(w.Path()),
			InjectedAt: w.InjectedAt, ArrivedAt: w.ArrivedAt,
			Blocked: w.BlockedCycles, InjectWait: w.InjectWaitCycles,
		})
	}
	for _, s := range sends {
		for n.Now() < s.at {
			if n.Active() == 0 {
				n.AdvanceTo(s.at)
				break
			}
			n.StepUntil(s.at)
		}
		n.Send(s.src, s.dst, s.bytes, nil, record)
	}
	if _, err := n.RunUntilIdle(1 << 22); err != nil {
		t.Fatal(err)
	}
	if err := n.Quiesced(); err != nil {
		t.Fatal(err)
	}
	snap.Stats = n.Stats()
	snap.Now = n.Now()
	return snap
}

// diffSnapshots fails the test with a focused report of the first
// divergence instead of dumping two multi-thousand-line structs.
func diffSnapshots(t *testing.T, got, want runSnapshot) {
	t.Helper()
	if reflect.DeepEqual(got, want) {
		return
	}
	if got.Stats != want.Stats {
		t.Errorf("stats diverge:\n got %+v\nwant %+v", got.Stats, want.Stats)
	}
	if got.Now != want.Now {
		t.Errorf("final clock diverges: got %d want %d", got.Now, want.Now)
	}
	for i := 0; i < len(got.Worms) && i < len(want.Worms); i++ {
		if got.Worms[i] != want.Worms[i] {
			t.Fatalf("worm record %d diverges:\n got %+v\nwant %+v", i, got.Worms[i], want.Worms[i])
		}
	}
	if len(got.Worms) != len(want.Worms) {
		t.Fatalf("completed worm count diverges: got %d want %d", len(got.Worms), len(want.Worms))
	}
	for i := 0; i < len(got.Events) && i < len(want.Events); i++ {
		if got.Events[i] != want.Events[i] {
			t.Fatalf("event %d diverges:\n got %s\nwant %s", i, got.Events[i], want.Events[i])
		}
	}
	if len(got.Events) != len(want.Events) {
		t.Fatalf("event count diverges: got %d want %d", len(got.Events), len(want.Events))
	}
	t.Fatal("snapshots diverge") // unreachable unless a new field is missed above
}

// diffPlatforms are the four fabric families of the differential suite:
// the paper's mesh and BMIN (with adaptive ascent, so routing returns
// multiple candidates), a torus whose virtual channels share physical
// links, and the non-partitionable butterfly.
func diffPlatforms() []struct {
	name string
	topo Topology
} {
	return []struct {
		name string
		topo Topology
	}{
		{"mesh16x16", mesh.New2D(16, 16)},
		{"bmin128", bmin.New(128, bmin.AscentAdaptive)},
		{"torus8x8", torus.New2D(8, 8)},
		{"bfly64", bfly.New(64)},
	}
}

// TestKernelDifferential runs 8 seeded random workloads per fabric family
// (32 in total) through all three kernels — reference, fast, and
// domain-parallel at P ∈ {2,4,8} — and requires bit-identical outcomes.
// Odd seeds use a deliberately stall-heavy config (long RouterDelay,
// single-flit buffers) to force deep cycle-skipping; even seeds also turn
// worm recycling on for the fast kernel, proving pooling is behaviour-
// neutral against a non-recycling reference. The parallel legs run
// observer-free (an Observer forces the serial fallback) and compare
// eventless snapshots against the reference outcome; on the torus the
// shared-link LinkGrouper makes them exercise the documented fallback
// rather than concurrent stepping, which must be equivalent too.
func TestKernelDifferential(t *testing.T) {
	for _, p := range diffPlatforms() {
		for seed := int64(0); seed < 8; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", p.name, seed), func(t *testing.T) {
				cfg := DefaultConfig()
				if seed%2 == 1 {
					cfg.RouterDelay = 7
					cfg.BufFlits = 1
				}
				r := rand.New(rand.NewSource(1997 + seed*7919))
				sends := randWorkload(r, p.topo.NumNodes(), 48)

				ref := New(p.topo, cfg)
				ref.SetKernel(KernelReference)
				want := runWorkload(t, ref, sends)

				fast := New(p.topo, cfg)
				fast.SetRecycling(seed%2 == 0)
				got := runWorkload(t, fast, sends)

				diffSnapshots(t, got, want)

				wantQuiet := want
				wantQuiet.Events = nil
				for _, P := range []int{2, 4, 8} {
					par := New(p.topo, cfg)
					par.SetRecycling(seed%2 == 0)
					par.SetParallelism(P)
					gotPar := runWorkloadQuiet(t, par, sends)
					par.Close()
					if !reflect.DeepEqual(gotPar, wantQuiet) {
						t.Errorf("parallel P=%d diverges from reference:", P)
						diffSnapshots(t, gotPar, wantQuiet)
					}
				}
			})
		}
	}
}

// TestKernelDifferentialStepwise drives both kernels strictly one Step at
// a time (no StepUntil, no AdvanceTo), pinning that Step itself — not
// just the skipping entry point — is equivalent cycle for cycle.
func TestKernelDifferentialStepwise(t *testing.T) {
	topo := mesh.New2D(8, 8)
	cfg := DefaultConfig()
	cfg.RouterDelay = 3
	r := rand.New(rand.NewSource(42))
	sends := randWorkload(r, topo.NumNodes(), 32)

	run := func(k Kernel) runSnapshot {
		n := New(topo, cfg)
		n.SetKernel(k)
		log := &eventLog{}
		n.SetObserver(log)
		var snap runSnapshot
		record := func(w *Worm, now int64) {
			snap.Worms = append(snap.Worms, wormRecord{ID: w.ID, InjectedAt: w.InjectedAt,
				ArrivedAt: w.ArrivedAt, Blocked: w.BlockedCycles, InjectWait: w.InjectWaitCycles})
		}
		for _, s := range sends {
			for n.Now() < s.at {
				n.Step()
			}
			n.Send(s.src, s.dst, s.bytes, nil, record)
		}
		for n.Active() > 0 {
			n.Step()
		}
		snap.Stats = n.Stats()
		snap.Now = n.Now()
		snap.Events = log.events
		return snap
	}

	diffSnapshots(t, run(KernelFast), run(KernelReference))
}

// TestAdvanceToEquivalentToIdleStepping is the fast-forward soundness
// property: on a quiesced network, AdvanceTo(t) followed by a workload is
// observably equivalent to stepping the idle cycles one at a time — same
// per-worm timings, same events, same flit and contention counters. The
// one documented difference is Stats.Cycles: AdvanceTo deliberately does
// not count fast-forwarded idle cycles (mcastsim.Result relies on that),
// while explicit Steps do.
func TestAdvanceToEquivalentToIdleStepping(t *testing.T) {
	topo := mesh.New2D(8, 8)
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(7 + seed))
			gap := 1 + r.Int63n(5000)
			base := randWorkload(r, topo.NumNodes(), 24)
			shifted := make([]timedSend, len(base))
			for i, s := range base {
				s.at += gap
				shifted[i] = s
			}

			fwd := New(topo, DefaultConfig())
			fwd.AdvanceTo(gap)
			a := runWorkload(t, fwd, shifted)

			stepped := New(topo, DefaultConfig())
			for i := int64(0); i < gap; i++ {
				stepped.Step()
			}
			b := runWorkload(t, stepped, shifted)

			if b.Stats.Cycles != a.Stats.Cycles+gap {
				t.Errorf("idle stepping counted %d cycles, want AdvanceTo's %d + gap %d",
					b.Stats.Cycles, a.Stats.Cycles, gap)
			}
			b.Stats.Cycles = a.Stats.Cycles
			diffSnapshots(t, b, a)
		})
	}
}
