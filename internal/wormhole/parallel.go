package wormhole

// Deterministic domain-parallel stepping.
//
// The fabric's nodes are partitioned into P spatial domains (contiguous
// NodeID ranges by default), every worm belongs to the domain of its
// source node, and phase A of each cycle — flit movement — runs the
// domains concurrently on a persistent worker pool. Phase A is the only
// phase worth parallelizing (it is O(active flits) while phase B's
// header routing is O(worms) with cached verdicts), and it is the only
// phase that *can* be parallelized without speculation: with exclusive
// channel ownership and no shared physical links (n.lg == nil), a
// worm's flit transitions are a pure function of its own state plus the
// read-only fault model, so per-worm post-states are independent of
// visiting order. The cross-worm effects are all commutative or
// reorderable:
//
//   - FlitHops and the ownership epoch are sums: each domain accumulates
//     privately and the merge adds them in fixed domain-index order.
//   - progress/faultStall are ORs.
//   - Channel releases write distinct owner[] entries (a channel has one
//     owner), and no phase-A code reads owner[].
//   - The asleep flags are one byte per slot, so concurrent domains
//     never touch the same memory location.
//
// The one order-sensitive output is the completion list: reap fires
// arrival callbacks in the order phase A discovered completions, which
// for the serial kernel is the rotation order (start+i)%k over the
// active list. Each domain therefore records its completions privately,
// and the merge re-inserts them into n.completed sorted by that serial
// rotation position ((idx-start) mod k, with idx the worm's position in
// the active list) — a fixed (domain-index, serial-position) merge
// order, making the result bit-identical to the serial kernels for any
// P and any partition. The three-way differential and fuzz suites in
// kernel_diff_test.go, parallel_test.go and fuzz_test.go enforce this.
//
// Synchronization is one barrier per cycle: the pool fans phase A out
// to the workers and joins them before the serial merge, phase B and
// reap run on the caller's goroutine. Worms cross domain boundaries
// freely — acquisition happens in serial phase B, so a "boundary event"
// is simply a channel whose owner lives in another domain, and phase A
// never inspects other worms' channels.

import "repro/internal/sim"

// domainAcc is one domain's private phase-A accumulator, padded so two
// domains' hot counters never share a cache line.
type domainAcc struct {
	flitHops   int64
	releases   int64 // ownership-epoch delta (one per released channel)
	progress   bool
	faultStall bool
	completed  []int32 // slots completed this cycle, domain-local order
	_          [16]byte
}

// SetParallelism partitions the fabric into p contiguous node domains
// and steps them concurrently on p-1 persistent worker goroutines (the
// caller's goroutine runs domain 0). p == 1 restores serial stepping
// and stops the workers. Results are bit-identical to the serial
// kernels for every p; parallelism is purely a wall-clock optimization.
// Fabrics with shared physical links (virtual channels) and networks
// with an attached Observer silently run the serial fast kernel, which
// is observably equivalent. Call Close when done with a parallel
// network so the workers exit. SetParallelism may only be called while
// the fabric is idle; p < 1 panics, p above the node count is clamped.
func (n *Network) SetParallelism(p int) {
	if len(n.worms) != 0 {
		panic("wormhole: SetParallelism with active worms")
	}
	if p < 1 {
		panic("wormhole: SetParallelism with p < 1")
	}
	if nn := n.topo.NumNodes(); p > nn {
		p = nn
	}
	if p == n.par {
		return
	}
	n.stopPool()
	n.par = p
	if p == 1 {
		n.domOf, n.domList, n.domAcc = nil, nil, nil
		return
	}
	nodes := n.topo.NumNodes()
	n.domOf = make([]int32, nodes)
	for u := range n.domOf {
		n.domOf[u] = int32(u * p / nodes)
	}
	n.domList = make([][]int32, p)
	n.domAcc = make([]domainAcc, p)
	n.pool = sim.NewPool(p, n.runDomain)
	n.reserve()
}

// Parallelism returns the configured domain count (1 = serial).
func (n *Network) Parallelism() int {
	if n.par < 1 {
		return 1
	}
	return n.par
}

// Close stops the worker goroutines of a parallel network and reverts
// it to serial stepping. The network remains usable. Close is
// idempotent and a no-op on serial networks.
func (n *Network) Close() {
	if len(n.worms) != 0 {
		panic("wormhole: Close with active worms")
	}
	n.stopPool()
	n.par = 1
	n.domOf, n.domList, n.domAcc = nil, nil, nil
}

func (n *Network) stopPool() {
	if n.pool != nil {
		n.pool.Close()
		n.pool = nil
	}
}

// stepParallel is stepFast with phase A fanned out across the domains.
// Phase structure, phase B and reap are identical to the serial kernel;
// see the package comment above for the determinism argument.
//
//lint:hotpath
func (n *Network) stepParallel() {
	n.now++
	n.stats.Cycles++
	n.progress = false
	n.faultStall = false
	if k := len(n.worms); k > 0 {
		start := int(n.rotation % int64(k))
		n.rotation++
		n.pool.Run()
		// Merge the domain accumulators in fixed domain-index order.
		for d := range n.domAcc {
			acc := &n.domAcc[d]
			n.stats.FlitHops += acc.flitHops
			n.epoch += acc.releases
			if acc.progress {
				n.progress = true
			}
			if acc.faultStall {
				n.faultStall = true
			}
			acc.flitHops, acc.releases = 0, 0
			acc.progress, acc.faultStall = false, false
		}
		// Re-establish the serial completion order: domains in index
		// order, each completion inserted at its rotation position.
		for d := range n.domAcc {
			acc := &n.domAcc[d]
			for _, s := range acc.completed {
				n.insertCompleted(n.slots[s], start, k)
			}
			acc.completed = acc.completed[:0]
		}
	}
	for _, w := range n.worms {
		n.routeHeaderFast(w)
	}
	if len(n.completed) > 0 {
		n.reap()
	}
}

// insertCompleted inserts w into n.completed keeping the list sorted by
// serial rotation position (idx-start) mod k — the order the serial
// phase A would have discovered the completions. Completion counts per
// cycle are small, so insertion sort beats anything with allocation or
// indirection; cap(completed) is reserved by Send.
//
//lint:hotpath
func (n *Network) insertCompleted(w *Worm, start, k int) {
	pos := int(w.idx) - start
	if pos < 0 {
		pos += k
	}
	j := len(n.completed)
	n.completed = n.completed[:j+1]
	for j > 0 {
		p := int(n.completed[j-1].idx) - start
		if p < 0 {
			p += k
		}
		if p <= pos {
			break
		}
		n.completed[j] = n.completed[j-1]
		j--
	}
	n.completed[j] = w
}

// runDomain is one domain's phase A: scan its worms in creation order,
// skipping sleepers, accumulating into the domain's private counters.
// Invoked concurrently for distinct d by the worker pool.
//
//lint:hotpath
func (n *Network) runDomain(d int) {
	acc := &n.domAcc[d]
	for _, s := range n.domList[d] {
		if n.asleep[s] != 0 {
			continue
		}
		n.moveFlitsPar(n.slots[s], acc)
	}
}

// moveFlitsPar is moveFlitsFast writing to a domain accumulator instead
// of network-global state. Shared physical links are impossible here
// (the parallel kernel requires n.lg == nil), so the linkFree gate of
// the serial kernel is vacuous and omitted; the fault model's Up/Dead
// are read-only and safe to consult concurrently.
//
//lint:hotpath
func (n *Network) moveFlitsPar(w *Worm, acc *domainAcc) {
	if w.done || len(w.path) == 0 {
		return
	}
	moved, stalled := false, false
	last := len(w.path) - 1
	// Consumption at the destination interface.
	if w.routed && w.occ(last) > 0 {
		moved = true
		w.passed[last]++
		acc.flitHops++
		if w.passed[last] == w.flits {
			n.releasePar(w, last, acc)
			w.done = true
			w.ArrivedAt = n.now
			// Indexed push: reserve grows every domain's completion
			// buffer to cover the whole active list.
			j := len(acc.completed)
			acc.completed = acc.completed[:j+1]
			acc.completed[j] = w.slot
		}
	}
	// Interior hops.
	for i := last - 1; i >= 0; i-- {
		if w.occ(i) > 0 && w.occ(i+1) < n.cfg.BufFlits {
			if !n.chanUp(w.path[i+1]) {
				acc.faultStall = true
				stalled = true
				continue
			}
			moved = true
			w.passed[i]++
			acc.flitHops++
			if w.entered(i+1) == 1 && i+1 == last && !w.routed {
				// The header flit just reached the frontier router.
				w.headerReadyAt = n.now + n.cfg.RouterDelay
			}
			if w.passed[i] == w.flits {
				n.releasePar(w, i, acc)
			}
		}
	}
	// Injection from the source interface.
	if w.injected < w.flits && w.occ(0) < n.cfg.BufFlits {
		if !n.chanUp(w.path[0]) {
			acc.faultStall = true
			stalled = true
		} else {
			moved = true
			w.injected++
			acc.flitHops++
			if w.injected == 1 {
				w.InjectedAt = n.now
				if last == 0 && !w.routed {
					w.headerReadyAt = n.now + n.cfg.RouterDelay
				}
			}
		}
	}
	if moved {
		acc.progress = true
	} else if !stalled {
		n.asleep[w.slot] = 1
	}
}

// releasePar is release for phase-A workers: the epoch bump is deferred
// to the merge (counted in acc.releases) and no observer can be
// attached on the parallel path.
//
//lint:hotpath
func (n *Network) releasePar(w *Worm, i int, acc *domainAcc) {
	c := w.path[i]
	if n.owner[c] != w.slot {
		n.badRelease(w, c)
	}
	n.owner[c] = -1
	acc.releases++
}
