package wormhole_test

// Battery for the deterministic domain-parallel kernel: large-mesh
// differentials (the scale-smoke CI target runs these under the race
// detector), faulted-fabric equivalence, partition-independence property
// tests with adversarial random domain maps, and the SetParallelism /
// Close lifecycle contract. All equivalence checks compare against the
// serial kernels byte for byte — parallelism must be a pure wall-clock
// optimization.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bmin"
	"repro/internal/fault"
	"repro/internal/mesh"
	. "repro/internal/wormhole"
)

// TestParallelDifferentialLargeMesh is the scale-smoke differential: a
// 64×64 mesh under a dense random workload, stepped with small P against
// the serial fast kernel. Run with -race this also audits the worker
// pool and the domain accumulators for data races.
func TestParallelDifferentialLargeMesh(t *testing.T) {
	topo := mesh.New2D(64, 64)
	cfg := DefaultConfig()
	r := rand.New(rand.NewSource(4096))
	sends := randWorkload(r, topo.NumNodes(), 160)

	serial := New(topo, cfg)
	want := runWorkloadQuiet(t, serial, sends)

	for _, P := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("P%d", P), func(t *testing.T) {
			par := New(topo, cfg)
			par.SetParallelism(P)
			got := runWorkloadQuiet(t, par, sends)
			par.Close()
			diffSnapshots(t, got, want)
		})
	}
}

// TestParallelDifferentialFaults pins equivalence when the fault model
// gates flit motion: dead channels detour routing, degraded and flaky
// channels stall flits mid-worm (exercising the faultStall accumulator),
// and unreachable destinations must surface the same error text at the
// same cycle for every P.
func TestParallelDifferentialFaults(t *testing.T) {
	platforms := []struct {
		name string
		topo Topology
	}{
		{"mesh16x16", mesh.New2D(16, 16)},
		{"bmin128", bmin.New(128, bmin.AscentAdaptive)},
	}
	for _, p := range platforms {
		for seed := int64(0); seed < 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", p.name, seed), func(t *testing.T) {
				plan := fault.MustPlan(p.topo, fault.Spec{
					DeadFrac:     0.02,
					DegradedFrac: 0.05,
					FlakyFrac:    0.05,
					Seed:         uint64(seed)*0x9e3779b9 + 11,
				})
				r := rand.New(rand.NewSource(271 + seed*104729))
				sends := randWorkload(r, p.topo.NumNodes(), 40)

				serial := New(p.topo, DefaultConfig())
				serial.SetFaults(plan)
				want, wantErr := runWorkloadFaultyQuiet(t, serial, sends)

				for _, P := range []int{2, 4, 8} {
					par := New(p.topo, DefaultConfig())
					par.SetFaults(plan)
					par.SetParallelism(P)
					got, gotErr := runWorkloadFaultyQuiet(t, par, sends)
					if gotErr != wantErr {
						t.Fatalf("P=%d error text diverges:\n got %q\nwant %q", P, gotErr, wantErr)
					}
					diffSnapshots(t, got, want)
				}
			})
		}
	}
}

// runWorkloadFaultyQuiet is runWorkloadFaulty without the observer, for
// parallel networks; see runWorkloadQuiet. It does not demand the run
// drains (dead channels may strand worms) and captures the error text as
// part of the outcome instead.
func runWorkloadFaultyQuiet(t *testing.T, n *Network, sends []timedSend) (runSnapshot, string) {
	t.Helper()
	var snap runSnapshot
	record := func(w *Worm, now int64) {
		snap.Worms = append(snap.Worms, wormRecord{
			ID: w.ID, Src: w.Src, Dst: w.Dst,
			Bytes: w.Bytes, Flits: w.Flits(), PathLen: len(w.Path()),
			InjectedAt: w.InjectedAt, ArrivedAt: w.ArrivedAt,
			Blocked: w.BlockedCycles, InjectWait: w.InjectWaitCycles,
		})
	}
	for _, s := range sends {
		for n.Now() < s.at {
			if n.Active() == 0 {
				n.AdvanceTo(s.at)
				break
			}
			n.StepUntil(s.at)
		}
		n.Send(s.src, s.dst, s.bytes, nil, record)
	}
	var errText string
	if _, err := n.RunUntilIdle(1 << 20); err != nil {
		errText = err.Error()
	} else if err := n.Quiesced(); err != nil {
		t.Fatal(err)
	}
	snap.Stats = n.Stats()
	snap.Now = n.Now()
	return snap, errText
}

// TestParallelRandomPartitions is the partition-independence property:
// results must be byte-identical to serial not just for the contiguous
// default partition but for *any* node→domain map — including adversarial
// ones where a worm's neighbours live all over the domain space. Random
// maps are installed through the SetDomainsForTest hook.
func TestParallelRandomPartitions(t *testing.T) {
	topo := mesh.New2D(16, 16)
	cfg := DefaultConfig()
	cfg.RouterDelay = 3
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(808 + seed*31337))
			sends := randWorkload(r, topo.NumNodes(), 48)

			serial := New(topo, cfg)
			want := runWorkloadQuiet(t, serial, sends)

			for _, P := range []int{2, 4, 8} {
				dom := make([]int32, topo.NumNodes())
				for u := range dom {
					dom[u] = int32(r.Intn(P))
				}
				par := New(topo, cfg)
				par.SetParallelism(P)
				par.SetDomainsForTest(dom)
				got := runWorkloadQuiet(t, par, sends)
				par.Close()
				if !reflect.DeepEqual(got, want) {
					t.Errorf("random partition P=%d diverges:", P)
					diffSnapshots(t, got, want)
				}
			}
		})
	}
}

// TestParallelObserverFallback pins the documented fallback: a parallel
// network with an attached Observer silently steps the serial fast
// kernel, so its outcome — events included — must match a plain serial
// run exactly.
func TestParallelObserverFallback(t *testing.T) {
	topo := mesh.New2D(8, 8)
	r := rand.New(rand.NewSource(55))
	sends := randWorkload(r, topo.NumNodes(), 24)

	serial := New(topo, DefaultConfig())
	want := runWorkload(t, serial, sends)

	par := New(topo, DefaultConfig())
	par.SetParallelism(4)
	got := runWorkload(t, par, sends) // attaches an observer
	par.Close()
	diffSnapshots(t, got, want)
}

// TestSetParallelismContract covers the lifecycle rules: idle-only
// reconfiguration, p < 1 rejection, clamping to the node count, and
// Close being idempotent and reverting to serial while leaving the
// network usable.
func TestSetParallelismContract(t *testing.T) {
	topo := mesh.New2D(4, 4)
	n := New(topo, DefaultConfig())

	if got := n.Parallelism(); got != 1 {
		t.Fatalf("fresh network Parallelism() = %d, want 1", got)
	}
	n.SetParallelism(4)
	if got := n.Parallelism(); got != 4 {
		t.Fatalf("Parallelism() = %d after SetParallelism(4)", got)
	}
	n.SetParallelism(1 << 20) // clamped to the node count
	if got := n.Parallelism(); got != topo.NumNodes() {
		t.Fatalf("Parallelism() = %d, want clamp to %d nodes", got, topo.NumNodes())
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetParallelism(0) did not panic")
			}
		}()
		n.SetParallelism(0)
	}()

	n.SetParallelism(2)
	n.Send(0, 15, 64, nil, nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetParallelism with active worms did not panic")
			}
		}()
		n.SetParallelism(4)
	}()
	if _, err := n.RunUntilIdle(1 << 16); err != nil {
		t.Fatal(err)
	}

	n.Close()
	if got := n.Parallelism(); got != 1 {
		t.Fatalf("Parallelism() = %d after Close, want 1", got)
	}
	n.Close() // idempotent

	// The closed network keeps working serially.
	n.Send(0, 15, 64, nil, nil)
	if _, err := n.RunUntilIdle(1 << 16); err != nil {
		t.Fatal(err)
	}
	if err := n.Quiesced(); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlockReportReusesWaiterBuffer is the regression test for the
// watchdog allocation fix: two successive DeadlockReports must share one
// cached waiter-histogram backing array instead of allocating
// NumChannels() int32s per invocation.
func TestDeadlockReportReusesWaiterBuffer(t *testing.T) {
	topo := mesh.New2D(8, 8)
	n := New(topo, DefaultConfig())
	n.Send(0, 63, 512, nil, nil)
	for i := 0; i < 4; i++ {
		n.Step()
	}
	n.DeadlockReport(4)
	buf1 := n.DeadlockWaitersBuf()
	if buf1 == nil {
		t.Fatal("first DeadlockReport left no cached waiter buffer")
	}
	n.DeadlockReport(4)
	buf2 := n.DeadlockWaitersBuf()
	if &buf1[0] != &buf2[0] {
		t.Fatal("successive DeadlockReports did not reuse the waiter buffer")
	}
}
