package chain

import (
	"testing"
	"testing/quick"
)

func TestNewSortsByLess(t *testing.T) {
	addrs := []int{5, 3, 9, 1, 7}
	c := New(addrs, func(a, b int) bool { return a < b })
	want := []int{1, 3, 5, 7, 9}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("chain = %v, want %v", c, want)
		}
	}
	if addrs[0] != 5 {
		t.Fatal("New mutated the input slice")
	}
	if !c.Sorted(func(a, b int) bool { return a < b }) {
		t.Fatal("Sorted reports unsorted for a sorted chain")
	}
}

func TestNewDescendingOrder(t *testing.T) {
	c := New([]int{1, 2, 3}, func(a, b int) bool { return a > b })
	if c[0] != 3 || c[2] != 1 {
		t.Fatalf("descending chain = %v", c)
	}
}

func TestUnorderedPreservesOrder(t *testing.T) {
	addrs := []int{9, 2, 7}
	c := Unordered(addrs)
	for i := range addrs {
		if c[i] != addrs[i] {
			t.Fatalf("Unordered reordered: %v", c)
		}
	}
	addrs[0] = 100
	if c[0] == 100 {
		t.Fatal("Unordered aliases the input slice")
	}
}

func TestValidate(t *testing.T) {
	if err := (Chain{}).Validate(); err == nil {
		t.Error("empty chain accepted")
	}
	if err := (Chain{1, 2, 1}).Validate(); err == nil {
		t.Error("duplicate accepted")
	}
	if err := (Chain{3, 1, 2}).Validate(); err != nil {
		t.Errorf("valid chain rejected: %v", err)
	}
}

func TestIndex(t *testing.T) {
	c := Chain{10, 20, 30}
	if i, ok := c.Index(20); !ok || i != 1 {
		t.Fatalf("Index(20) = %d,%v", i, ok)
	}
	if _, ok := c.Index(99); ok {
		t.Fatal("Index found absent address")
	}
}

func TestSegmentBasics(t *testing.T) {
	s := Segment{L: 2, R: 5}
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
	if !s.Contains(2) || !s.Contains(5) || s.Contains(1) || s.Contains(6) {
		t.Error("Contains wrong at boundaries")
	}
	if !s.Valid(6) || s.Valid(5) {
		t.Error("Valid wrong: needs chain length > R")
	}
	if (Segment{L: 3, R: 2}).Valid(10) {
		t.Error("inverted segment accepted")
	}
	if s.String() != "[2,5]" {
		t.Errorf("String = %q", s.String())
	}
}

func TestSegmentOverlaps(t *testing.T) {
	cases := []struct {
		a, b Segment
		want bool
	}{
		{Segment{0, 3}, Segment{4, 7}, false},
		{Segment{0, 3}, Segment{3, 7}, true},
		{Segment{2, 5}, Segment{0, 9}, true},
		{Segment{5, 5}, Segment{5, 5}, true},
		{Segment{6, 9}, Segment{0, 5}, false},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v overlaps %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("overlap not symmetric for %v, %v", c.a, c.b)
		}
	}
}

// TestSegmentOverlapQuick: Overlaps agrees with a pointwise check.
func TestSegmentOverlapQuick(t *testing.T) {
	f := func(al, alen, bl, blen uint8) bool {
		a := Segment{L: int(al % 32), R: int(al%32) + int(alen%8)}
		b := Segment{L: int(bl % 32), R: int(bl%32) + int(blen%8)}
		brute := false
		for i := a.L; i <= a.R; i++ {
			if b.Contains(i) {
				brute = true
			}
		}
		return a.Overlaps(b) == brute
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSelect: Select picks sub-chains by position, preserves the given
// order, keeps sortedness for ascending positions, and panics on bad
// positions.
func TestSelect(t *testing.T) {
	less := func(a, b int) bool { return a < b }
	c := New([]int{50, 10, 40, 20, 30}, less) // 10 20 30 40 50
	sub := c.Select([]int{0, 2, 4})
	want := []int{10, 30, 50}
	for i := range want {
		if sub[i] != want[i] {
			t.Fatalf("Select = %v, want %v", sub, want)
		}
	}
	if !sub.Sorted(less) {
		t.Fatal("ascending Select lost sortedness")
	}
	rev := c.Select([]int{4, 0})
	if rev[0] != 50 || rev[1] != 10 {
		t.Fatalf("Select did not preserve given order: %v", rev)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Select with out-of-range position did not panic")
		}
	}()
	c.Select([]int{5})
}

// TestSegmentPositions: Positions expands inclusive bounds correctly,
// including the single-element segment.
func TestSegmentPositions(t *testing.T) {
	got := Segment{L: 3, R: 6}.Positions()
	want := []int{3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("Positions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Positions = %v, want %v", got, want)
		}
	}
	if one := (Segment{L: 2, R: 2}).Positions(); len(one) != 1 || one[0] != 2 {
		t.Fatalf("single-element Positions = %v", one)
	}
}
