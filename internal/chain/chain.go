// Package chain provides the ordered-chain abstraction shared by every
// multicast planner in this repository.
//
// The architecture-dependent algorithms of the paper (OPT-mesh, OPT-min,
// U-mesh, U-min) all operate on a chain: the source and destination
// addresses sorted by an architecture-specific total order (the
// dimension order <_d for meshes, the lexicographic order for BMINs).
// Contention-freedom then follows from the fact that concurrent messages
// always travel within disjoint contiguous chain segments.
package chain

import (
	"fmt"
	"sort"
)

// Chain is a sequence of distinct node addresses in planning order.
// Element 0 is the chain head (the lowest node under the ordering).
type Chain []int

// New returns the given addresses sorted by less. The input slice is not
// modified. less must be a strict weak ordering on addresses.
func New(addrs []int, less func(a, b int) bool) Chain {
	c := make(Chain, len(addrs))
	copy(c, addrs)
	sort.Slice(c, func(i, j int) bool { return less(c[i], c[j]) })
	return c
}

// Unordered returns the addresses as a chain in their given order, for the
// architecture-independent OPT-tree which knows nothing about addresses.
func Unordered(addrs []int) Chain {
	c := make(Chain, len(addrs))
	copy(c, addrs)
	return c
}

// Validate reports an error if the chain is empty or contains duplicates.
func (c Chain) Validate() error {
	if len(c) == 0 {
		return fmt.Errorf("chain: empty chain")
	}
	seen := make(map[int]int, len(c))
	for i, a := range c {
		if prev, dup := seen[a]; dup {
			return fmt.Errorf("chain: address %d appears at positions %d and %d", a, prev, i)
		}
		seen[a] = i
	}
	return nil
}

// Index returns the position of addr in the chain, or false if absent.
func (c Chain) Index(addr int) (int, bool) {
	for i, a := range c {
		if a == addr {
			return i, true
		}
	}
	return 0, false
}

// Sorted reports whether the chain is sorted under less.
func (c Chain) Sorted(less func(a, b int) bool) bool {
	return sort.SliceIsSorted(c, func(i, j int) bool { return less(c[i], c[j]) })
}

// Select returns the sub-chain of the addresses at the given positions,
// in the order given. Passing positions in ascending chain order yields a
// chain sorted under the same architecture order as the original — the
// property the repair planner relies on when it re-plans over survivors
// (see plan.RepairSends). Select panics on an out-of-range position: the
// caller computed the positions, so a bad one is a planner bug.
func (c Chain) Select(pos []int) Chain {
	sub := make(Chain, len(pos))
	for i, p := range pos {
		if p < 0 || p >= len(c) {
			panic(fmt.Sprintf("chain: Select position %d outside chain of %d", p, len(c)))
		}
		sub[i] = c[p]
	}
	return sub
}

// Segment is a contiguous, inclusive index range [L, R] of a chain, the
// unit of responsibility the planners subdivide.
type Segment struct{ L, R int }

// Len returns the number of chain positions covered by the segment.
func (s Segment) Len() int { return s.R - s.L + 1 }

// Contains reports whether chain index i lies inside the segment.
func (s Segment) Contains(i int) bool { return s.L <= i && i <= s.R }

// Overlaps reports whether the two segments share any chain position.
func (s Segment) Overlaps(o Segment) bool { return s.L <= o.R && o.L <= s.R }

// Valid reports whether the segment is non-empty and within a chain of n
// elements.
func (s Segment) Valid(n int) bool { return 0 <= s.L && s.L <= s.R && s.R < n }

func (s Segment) String() string { return fmt.Sprintf("[%d,%d]", s.L, s.R) }

// Positions expands the segment to its list of chain positions in
// ascending order — the contiguous special case of the position sets the
// repair planner works over once members start dying.
func (s Segment) Positions() []int {
	pos := make([]int, s.Len())
	for i := range pos {
		pos[i] = s.L + i
	}
	return pos
}
