package bmin_test

import (
	"testing"
	"testing/quick"

	. "repro/internal/bmin"
	"repro/internal/wormhole"
)

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("nodes=%d accepted", n)
				}
			}()
			New(n, AscentStraight)
		}()
	}
	b := New(128, AscentStraight)
	if b.Stages() != 7 || b.NumNodes() != 128 {
		t.Fatalf("stages=%d nodes=%d", b.Stages(), b.NumNodes())
	}
	if b.NumChannels() != 2*7*128 {
		t.Fatalf("NumChannels = %d", b.NumChannels())
	}
}

func TestTurnStage(t *testing.T) {
	b := New(16, AscentStraight)
	cases := []struct{ s, d, want int }{
		{0, 1, 0}, {0, 2, 1}, {5, 4, 0}, {0, 15, 3}, {7, 8, 3}, {3, 3, -1}, {12, 13, 0},
	}
	for _, c := range cases {
		if got := b.TurnStage(c.s, c.d); got != c.want {
			t.Errorf("TurnStage(%d,%d) = %d, want %d", c.s, c.d, got, c.want)
		}
	}
}

func TestTurnStageSymmetric(t *testing.T) {
	b := New(64, AscentStraight)
	f := func(s, d uint8) bool {
		x, y := int(s)%64, int(d)%64
		return b.TurnStage(x, y) == b.TurnStage(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPathShape: a route ascends to the turnaround stage and descends,
// using exactly 2*(TurnStage+1) channels.
func TestPathShape(t *testing.T) {
	for _, policy := range []AscentPolicy{AscentStraight, AscentDest, AscentAdaptive, AscentAdaptiveDest} {
		b := New(32, policy)
		for s := 0; s < 32; s++ {
			for d := 0; d < 32; d++ {
				p := wormhole.PathChannels(b, wormhole.NodeID(s), wormhole.NodeID(d))
				ts := b.TurnStage(s, d)
				want := 2 * (ts + 1)
				if s == d {
					want = 2 // inject + eject through the stage-0 switch
				}
				if len(p) != want {
					t.Fatalf("policy=%v %d->%d: path length %d, want %d", policy, s, d, len(p), want)
				}
				if p[0] != b.InjectChannel(wormhole.NodeID(s)) {
					t.Fatalf("path does not start at inject")
				}
				if p[len(p)-1] != b.EjectChannel(wormhole.NodeID(d)) {
					t.Fatalf("path does not end at eject(%d)", d)
				}
			}
		}
	}
}

// TestAscentStraightPrivatePaths: under the straight policy every source
// ascends its own private column — up channels are never shared between
// distinct sources.
func TestAscentStraightPrivatePaths(t *testing.T) {
	b := New(64, AscentStraight)
	ownedBy := make(map[wormhole.ChannelID]int)
	for s := 0; s < 64; s++ {
		for d := 0; d < 64; d++ {
			if s == d {
				continue
			}
			p := wormhole.PathChannels(b, wormhole.NodeID(s), wormhole.NodeID(d))
			// Ascent = first half of the path.
			for _, c := range p[:len(p)/2] {
				if owner, ok := ownedBy[c]; ok && owner != s {
					t.Fatalf("up channel %s used by sources %d and %d", b.DescribeChannel(c), owner, s)
				}
				ownedBy[c] = s
			}
		}
	}
}

// TestAscentDestPrivateDescent: under the dest policy the descent happens
// entirely in the destination's own column — down channels are never
// shared between distinct destinations.
func TestAscentDestPrivateDescent(t *testing.T) {
	b := New(64, AscentDest)
	ownedBy := make(map[wormhole.ChannelID]int)
	for s := 0; s < 64; s++ {
		for d := 0; d < 64; d++ {
			if s == d {
				continue
			}
			p := wormhole.PathChannels(b, wormhole.NodeID(s), wormhole.NodeID(d))
			for _, c := range p[len(p)/2:] {
				if owner, ok := ownedBy[c]; ok && owner != d {
					t.Fatalf("down channel %s used for destinations %d and %d", b.DescribeChannel(c), owner, d)
				}
				ownedBy[c] = d
			}
		}
	}
}

// TestAdaptiveOffersTwoUpPorts: while ascending below the turn stage the
// adaptive policies return two candidates; descending always returns one.
func TestAdaptiveOffersTwoUpPorts(t *testing.T) {
	for _, policy := range []AscentPolicy{AscentAdaptive, AscentAdaptiveDest} {
		b := New(32, policy)
		var buf []wormhole.ChannelID
		src, dst := wormhole.NodeID(0), wormhole.NodeID(31) // turn at stage 4
		buf = b.Route(b.InjectChannel(src), src, dst, buf[:0])
		if len(buf) != 2 {
			t.Fatalf("policy=%v: ascent candidates = %d, want 2", policy, len(buf))
		}
		// Follow the first candidate up to the turn, then descend: the
		// descent steps must be single-candidate.
		p := wormhole.PathChannels(b, src, dst)
		buf = b.Route(p[len(p)-2], src, dst, buf[:0])
		if len(buf) != 1 {
			t.Fatalf("policy=%v: descent candidates = %d, want 1", policy, len(buf))
		}
	}
}

// TestRouteDescentSetsBits: the final channel is always the destination's
// ejection channel and each descent step fixes one address bit, verified
// against the decoded channel positions via DescribeChannel round trip.
func TestRouteSelf(t *testing.T) {
	b := New(16, AscentStraight)
	var buf []wormhole.ChannelID
	for u := 0; u < 16; u++ {
		n := wormhole.NodeID(u)
		buf = b.Route(b.InjectChannel(n), n, n, buf[:0])
		if len(buf) != 1 || buf[0] != b.EjectChannel(n) {
			t.Fatalf("self-route of %d = %v", u, buf)
		}
	}
}

// TestChannelIDsDistinct: inject/eject channels are distinct across nodes
// and from each other.
func TestChannelIDsDistinct(t *testing.T) {
	b := New(128, AscentStraight)
	seen := make(map[wormhole.ChannelID]bool)
	for u := 0; u < 128; u++ {
		for _, c := range []wormhole.ChannelID{b.InjectChannel(wormhole.NodeID(u)), b.EjectChannel(wormhole.NodeID(u))} {
			if c < 0 || int(c) >= b.NumChannels() || seen[c] {
				t.Fatalf("bad or duplicate channel %d", c)
			}
			seen[c] = true
		}
	}
}

// TestLexLess is the trivial lexicographic order.
func TestLexLess(t *testing.T) {
	b := New(8, AscentStraight)
	if !b.LexLess(2, 5) || b.LexLess(5, 2) || b.LexLess(3, 3) {
		t.Fatal("LexLess is not numeric order")
	}
}

// TestUnicastOnBMINFabric: end-to-end flit-level unicast on a BMIN
// completes, is distance-(stage-)sensitive only through the turn stage,
// and leaves the fabric quiesced.
func TestUnicastOnBMINFabric(t *testing.T) {
	for _, policy := range []AscentPolicy{AscentStraight, AscentDest, AscentAdaptive, AscentAdaptiveDest} {
		b := New(128, policy)
		n := wormhole.New(b, wormhole.DefaultConfig())
		w := n.Send(0, 127, 1024, nil, nil)
		if _, err := n.RunUntilIdle(1 << 20); err != nil {
			t.Fatalf("policy=%v: %v", policy, err)
		}
		if !w.Done() || w.BlockedCycles != 0 {
			t.Fatalf("policy=%v: done=%v blocked=%d", policy, w.Done(), w.BlockedCycles)
		}
		if err := n.Quiesced(); err != nil {
			t.Fatalf("policy=%v: %v", policy, err)
		}
	}
}

// TestSameTurnStageSameLatency: wormhole latency on the BMIN depends only
// on the turn stage, not on which nodes are involved.
func TestSameTurnStageSameLatency(t *testing.T) {
	b := New(64, AscentStraight)
	arrival := func(s, d int) int64 {
		n := wormhole.New(b, wormhole.DefaultConfig())
		w := n.Send(wormhole.NodeID(s), wormhole.NodeID(d), 512, nil, nil)
		if _, err := n.RunUntilIdle(1 << 20); err != nil {
			t.Fatal(err)
		}
		return w.ArrivedAt
	}
	// All pairs with turn stage 5.
	a := arrival(0, 32)
	for _, pair := range [][2]int{{1, 33}, {7, 60}, {31, 0 + 32}, {20, 52}} {
		if got := arrival(pair[0], pair[1]); got != a {
			t.Fatalf("pair %v: arrival %d != %d", pair, got, a)
		}
	}
}

func TestDescribeChannel(t *testing.T) {
	b := New(8, AscentStraight)
	if s := b.DescribeChannel(b.InjectChannel(3)); s == "" || s == "none" {
		t.Errorf("inject described as %q", s)
	}
	if s := b.DescribeChannel(wormhole.ChannelID(-1)); s != "none" {
		t.Errorf("invalid channel described as %q", s)
	}
	if s := b.DescribeChannel(wormhole.ChannelID(9999)); s != "none" {
		t.Errorf("out-of-range channel described as %q", s)
	}
}

func TestPolicyString(t *testing.T) {
	for _, p := range []AscentPolicy{AscentStraight, AscentDest, AscentAdaptive, AscentAdaptiveDest, AscentPolicy(99)} {
		if p.String() == "" {
			t.Errorf("empty string for %d", int(p))
		}
	}
}
