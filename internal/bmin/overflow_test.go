package bmin

import (
	"strings"
	"testing"
)

// TestTryNewOverflow pins the int32 ChannelID guard: a BMIN has
// 2·log2(N)·N channels, so the channel space overflows at 2^26 nodes —
// far below the 2^31 NodeID ceiling. 2^25 nodes is the largest legal
// power of two.
func TestTryNewOverflow(t *testing.T) {
	if _, err := TryNew(1<<26, AscentStraight); err == nil || !strings.Contains(err.Error(), "ChannelID") {
		t.Fatalf("TryNew(2^26) = %v, want ChannelID overflow error", err)
	}
	if _, err := TryNew(1<<40, AscentStraight); err == nil {
		t.Fatal("TryNew(2^40) accepted")
	}
	if _, err := TryNew(96, AscentStraight); err == nil {
		t.Fatal("TryNew(96) accepted, want power-of-two error")
	}
	// The boundary fabric just below the limit constructs (the BMIN
	// topology is implicit — no per-channel allocation happens here).
	b, err := TryNew(1<<25, AscentStraight)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.NumChannels(); got != 2*25*(1<<25) {
		t.Fatalf("NumChannels() = %d, want %d", got, 2*25*(1<<25))
	}
}
