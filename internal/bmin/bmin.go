// Package bmin implements a bidirectional multistage interconnection
// network (BMIN) of 2×2 switches with turnaround routing — the fabric of
// the IBM SP series that the paper's second experiment set targets — plus
// the lexicographic chain order the U-min and OPT-min algorithms sort
// nodes by.
//
// Structure. For N = 2^n nodes the network has n switch stages of N/2
// bidirectional 2×2 switches, wired as a butterfly: the switch at stage s
// connects "level s" link positions p and p xor 2^s (below) to "level
// s+1" positions with the same two values (above). Every link position
// carries one up channel (toward higher stages) and one down channel
// (toward the processors).
//
// Turnaround routing. A message from src to dst ascends through stages
// 0..d, where d is the highest bit position in which src and dst differ
// (the turnaround stage), reverses direction inside the stage-d switch,
// and then descends fixing address bit s to dst's value at each stage s.
// While descending the path is unique; while ascending a switch may exit
// on either of its two up ports, which is where the BMIN's path
// multiplicity — and its lower contention, per the paper's §5 — comes
// from. The ascent policy is configurable:
//
//	AscentStraight  keep the source's own column (deterministic); each
//	                node's ascent path is private to it, so ascents never
//	                conflict with each other.
//	AscentDest      set bit s to dst's bit while ascending
//	                (deterministic); the descent column is then owned by
//	                the destination.
//	AscentAdaptive  offer the straight port first, the crossed port as an
//	                alternative; the simulator takes the first free one.
//
// Channel layout (IDs dense from 0): Up(l,p) = l*N + p for stage levels
// l in [0,n); Down(l,p) = n*N + l*N + p. A node p's injection channel is
// Up(0,p) and its ejection channel is Down(0,p), so the fabric is
// naturally one-port.
package bmin

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/wormhole"
)

// AscentPolicy selects how a header chooses among the two up ports of a
// switch while ascending toward its turnaround stage.
type AscentPolicy int

const (
	// AscentStraight always keeps the source's own column.
	AscentStraight AscentPolicy = iota
	// AscentDest sets each ascended bit to the destination's bit.
	AscentDest
	// AscentAdaptive offers straight first, then the crossed port.
	AscentAdaptive
	// AscentAdaptiveDest offers the destination-bit port first, then the
	// other.
	AscentAdaptiveDest
)

func (p AscentPolicy) String() string {
	switch p {
	case AscentStraight:
		return "straight"
	case AscentDest:
		return "dest"
	case AscentAdaptive:
		return "adaptive"
	case AscentAdaptiveDest:
		return "adaptive-dest"
	default:
		return fmt.Sprintf("AscentPolicy(%d)", int(p))
	}
}

// BMIN is a bidirectional MIN fabric.
type BMIN struct {
	n      int // nodes (power of two)
	stages int // log2(n)
	policy AscentPolicy
}

// New constructs a BMIN with the given number of nodes (a power of two,
// at least 2) and ascent policy. It panics on an invalid node count or
// int32 ChannelID overflow; TryNew returns the error instead.
func New(nodes int, policy AscentPolicy) *BMIN {
	b, err := TryNew(nodes, policy)
	if err != nil {
		panic(err)
	}
	return b
}

// TryNew is New returning an error instead of panicking. A BMIN has
// 2·log2(N)·N channels (an up and a down channel per link level per
// position), so the ChannelID space overflows well before the NodeID
// space does — at 2^26 nodes, not 2^31; the count is computed in int64
// and checked against math.MaxInt32 before construction.
func TryNew(nodes int, policy AscentPolicy) (*BMIN, error) {
	if nodes < 2 || nodes&(nodes-1) != 0 {
		return nil, fmt.Errorf("bmin: nodes %d must be a power of two >= 2", nodes)
	}
	stages := bits.TrailingZeros(uint(nodes))
	if chans64 := 2 * int64(stages) * int64(nodes); chans64 > math.MaxInt32 {
		return nil, fmt.Errorf("bmin: %d nodes give %d channels, overflowing the int32 ChannelID space (max %d)", nodes, chans64, math.MaxInt32)
	}
	return &BMIN{n: nodes, stages: stages, policy: policy}, nil
}

// Stages returns the number of switch stages (log2 of the node count).
func (b *BMIN) Stages() int { return b.stages }

// Policy returns the ascent policy.
func (b *BMIN) Policy() AscentPolicy { return b.policy }

// TurnStage returns the turnaround stage for a (src, dst) pair: the
// highest differing address bit, or -1 when src == dst (the message turns
// inside the stage-0 switch without changing column).
func (b *BMIN) TurnStage(src, dst int) int {
	x := src ^ dst
	if x == 0 {
		return -1
	}
	return bits.Len(uint(x)) - 1
}

// LexLess is the lexicographic order on node addresses used by U-min and
// OPT-min: plain numeric comparison of the binary addresses.
func (b *BMIN) LexLess(a, c int) bool { return a < c }

// up and down compute channel IDs for level l, position p.
func (b *BMIN) up(l, p int) wormhole.ChannelID {
	return wormhole.ChannelID(l*b.n + p)
}

func (b *BMIN) down(l, p int) wormhole.ChannelID {
	return wormhole.ChannelID(b.stages*b.n + l*b.n + p)
}

// decode returns (isUp, level, position) for a channel.
func (b *BMIN) decode(c wormhole.ChannelID) (up bool, l, p int) {
	ci := int(c)
	if ci < b.stages*b.n {
		return true, ci / b.n, ci % b.n
	}
	ci -= b.stages * b.n
	return false, ci / b.n, ci % b.n
}

// NumNodes implements wormhole.Topology.
func (b *BMIN) NumNodes() int { return b.n }

// NumChannels implements wormhole.Topology.
func (b *BMIN) NumChannels() int { return 2 * b.stages * b.n }

// InjectChannel implements wormhole.Topology: node p injects on Up(0,p).
func (b *BMIN) InjectChannel(p wormhole.NodeID) wormhole.ChannelID {
	return b.up(0, int(p))
}

// EjectChannel implements wormhole.Topology: node p receives on Down(0,p).
func (b *BMIN) EjectChannel(p wormhole.NodeID) wormhole.ChannelID {
	return b.down(0, int(p))
}

func setBit(v, bit, to int) int {
	if to != 0 {
		return v | (1 << bit)
	}
	return v &^ (1 << bit)
}

// Route implements wormhole.Topology turnaround routing.
func (b *BMIN) Route(cur wormhole.ChannelID, src, dst wormhole.NodeID, buf []wormhole.ChannelID) []wormhole.ChannelID {
	d := b.TurnStage(int(src), int(dst))
	up, l, p := b.decode(cur)
	if up {
		// Header is at the stage-l switch, having ascended.
		if l >= d {
			// Turn around: exit downward with bit l fixed to dst's.
			q := setBit(p, l, (int(dst)>>l)&1)
			return append(buf, b.down(l, q))
		}
		// Ascend one more stage; the switch's two up ports lead to
		// columns p and p^2^l.
		straight := b.up(l+1, p)
		crossed := b.up(l+1, p^(1<<l))
		destFirst := b.up(l+1, setBit(p, l, (int(dst)>>l)&1))
		destSecond := b.up(l+1, setBit(p, l, 1-(int(dst)>>l)&1))
		switch b.policy {
		case AscentStraight:
			return append(buf, straight)
		case AscentDest:
			return append(buf, destFirst)
		case AscentAdaptive:
			return append(buf, straight, crossed)
		case AscentAdaptiveDest:
			return append(buf, destFirst, destSecond)
		default:
			panic(fmt.Sprintf("bmin: unknown ascent policy %d", b.policy))
		}
	}
	// Descending: header is at the stage l-1 switch (l >= 1; l == 0 is the
	// ejection channel and is never routed from). Fix bit l-1 to dst's.
	if l == 0 {
		panic("bmin: routing from an ejection channel")
	}
	q := setBit(p, l-1, (int(dst)>>(l-1))&1)
	return append(buf, b.down(l-1, q))
}

// RouteDegraded implements wormhole.FaultRouter via alternate ascent.
// Turnaround routing is flexible exactly while ascending: a message may
// turn at ANY stage at or above its turnaround stage (address bits above
// the turn already agree, and the descent fixes everything below), and
// each ascent step may take either up port. So:
//
//   - ascending below the turn stage: the policy's candidates filtered of
//     dead channels; only when every policy port is dead is the switch's
//     other up port offered (an ascent column the policy would not pick,
//     but equally valid).
//   - at or above the turn stage: the turning down port, or unreachable.
//     Ascending further cannot help: the descent re-fixes every address
//     bit at or above the dead channel's stage to dst's value, and the
//     bits below it were committed by the ascent, so every higher turn
//     descends through exactly the same dead channel.
//   - descending: the path is unique (each stage fixes one address bit),
//     so a dead down channel means dst is unreachable — turnaround
//     routing cannot reverse a second time.
//
// When no candidate is dead the result equals Route's exactly, so a
// faulted fabric whose failures miss the path behaves identically to a
// healthy one.
func (b *BMIN) RouteDegraded(cur wormhole.ChannelID, src, dst wormhole.NodeID, dead func(wormhole.ChannelID) bool, buf []wormhole.ChannelID) []wormhole.ChannelID {
	d := b.TurnStage(int(src), int(dst))
	up, l, p := b.decode(cur)
	if up {
		if l >= d {
			q := setBit(p, l, (int(dst)>>l)&1)
			if c := b.down(l, q); !dead(c) {
				return append(buf, c)
			}
			return buf
		}
		straight := b.up(l+1, p)
		crossed := b.up(l+1, p^(1<<l))
		destFirst := b.up(l+1, setBit(p, l, (int(dst)>>l)&1))
		destSecond := b.up(l+1, setBit(p, l, 1-(int(dst)>>l)&1))
		var policy []wormhole.ChannelID
		switch b.policy {
		case AscentStraight:
			policy = []wormhole.ChannelID{straight}
		case AscentDest:
			policy = []wormhole.ChannelID{destFirst}
		case AscentAdaptive:
			policy = []wormhole.ChannelID{straight, crossed}
		case AscentAdaptiveDest:
			policy = []wormhole.ChannelID{destFirst, destSecond}
		default:
			panic(fmt.Sprintf("bmin: unknown ascent policy %d", b.policy))
		}
		n0 := len(buf)
		for _, c := range policy {
			if !dead(c) {
				buf = append(buf, c)
			}
		}
		if len(buf) == n0 {
			// Every policy port is dead; the switch's other up port (the
			// complement of {straight, crossed}) is the last resort.
			for _, c := range [2]wormhole.ChannelID{straight, crossed} {
				if !dead(c) && (len(policy) == 1 && c != policy[0]) {
					buf = append(buf, c)
				}
			}
		}
		return buf
	}
	if l == 0 {
		panic("bmin: routing from an ejection channel")
	}
	q := setBit(p, l-1, (int(dst)>>(l-1))&1)
	if c := b.down(l-1, q); !dead(c) {
		return append(buf, c)
	}
	return buf
}

// DescribeChannel implements wormhole.Topology.
func (b *BMIN) DescribeChannel(c wormhole.ChannelID) string {
	if c < 0 || int(c) >= b.NumChannels() {
		return "none"
	}
	up, l, p := b.decode(c)
	dir := "down"
	if up {
		dir = "up"
	}
	return fmt.Sprintf("%s(l=%d,p=%d)", dir, l, p)
}

var (
	_ wormhole.Topology    = (*BMIN)(nil)
	_ wormhole.FaultRouter = (*BMIN)(nil)
)
