package bmin_test

import (
	"reflect"
	"strings"
	"testing"

	. "repro/internal/bmin"
	"repro/internal/wormhole"
)

func noDead(wormhole.ChannelID) bool { return false }

func deadSet(chans ...wormhole.ChannelID) func(wormhole.ChannelID) bool {
	m := map[wormhole.ChannelID]bool{}
	for _, c := range chans {
		m[c] = true
	}
	return func(c wormhole.ChannelID) bool { return m[c] }
}

// walkDegraded follows RouteDegraded's first candidate from src's inject
// channel until delivery, returning the hop count. It fails the test on
// an unreachable verdict, a dead candidate, or a walk exceeding bound.
func walkDegraded(t *testing.T, b *BMIN, src, dst wormhole.NodeID, dead func(wormhole.ChannelID) bool, bound int) int {
	t.Helper()
	cur := b.InjectChannel(src)
	for hop := 0; ; hop++ {
		if hop > bound {
			t.Fatalf("%d->%d: walk exceeded %d hops", src, dst, bound)
		}
		cands := b.RouteDegraded(cur, src, dst, dead, nil)
		if len(cands) == 0 {
			t.Fatalf("%d->%d: unreachable at %s", src, dst, b.DescribeChannel(cur))
		}
		for _, c := range cands {
			if dead(c) {
				t.Fatalf("RouteDegraded offered dead channel %s", b.DescribeChannel(c))
			}
		}
		if cands[0] == b.EjectChannel(dst) {
			return hop
		}
		cur = cands[0]
	}
}

// TestRouteDegradedHealthyEqualsRoute: with nothing dead, the fault-aware
// router must reproduce the policy's Route candidates exactly — at every
// hop, for every pair, under all four ascent policies.
func TestRouteDegradedHealthyEqualsRoute(t *testing.T) {
	for _, pol := range []AscentPolicy{AscentStraight, AscentDest, AscentAdaptive, AscentAdaptiveDest} {
		b := New(32, pol)
		for s := 0; s < b.NumNodes(); s++ {
			for d := 0; d < b.NumNodes(); d++ {
				if s == d {
					continue
				}
				src, dst := wormhole.NodeID(s), wormhole.NodeID(d)
				cur := b.InjectChannel(src)
				for hops := 0; ; hops++ {
					if hops > 4*b.Stages() {
						t.Fatalf("%v %d->%d: walk did not terminate", pol, s, d)
					}
					want := b.Route(cur, src, dst, nil)
					got := b.RouteDegraded(cur, src, dst, noDead, nil)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%v %d->%d at %s: RouteDegraded %v != Route %v",
							pol, s, d, b.DescribeChannel(cur), got, want)
					}
					if want[0] == b.EjectChannel(dst) {
						break
					}
					cur = want[0]
				}
			}
		}
	}
}

// TestRouteDegradedAlternateAscent: under the deterministic straight
// policy, killing the policy's up port must surface the switch's other
// (crossed) up port — an ascent column the policy would never pick but an
// equally valid turnaround path — and the walk must still deliver in the
// minimal 2*(turn+1) hops.
func TestRouteDegradedAlternateAscent(t *testing.T) {
	b := New(64, AscentStraight)
	src, dst := wormhole.NodeID(0), wormhole.NodeID(63)
	straight := b.Route(b.InjectChannel(src), src, dst, nil)
	if len(straight) != 1 {
		t.Fatalf("straight ascent returned %d candidates", len(straight))
	}
	dead := deadSet(straight[0])
	alt := b.RouteDegraded(b.InjectChannel(src), src, dst, dead, nil)
	if len(alt) != 1 || alt[0] == straight[0] {
		t.Fatalf("want exactly the crossed port, got %v", alt)
	}
	healthy := walkDegraded(t, b, src, dst, noDead, 4*b.Stages())
	if hops := walkDegraded(t, b, src, dst, dead, 4*b.Stages()); hops != healthy {
		t.Fatalf("alternate ascent delivered in %d hops, want the healthy path's %d", hops, healthy)
	}
}

// TestRouteDegradedTurnDeadUnreachable: a dead turning down port is
// terminal. Ascending further cannot help — the descent re-fixes every
// bit at or above the dead channel's stage to dst's value and the bits
// below were committed by the ascent, so every higher turn descends
// through the same dead channel. The router must say so immediately
// rather than send the worm on a detour that provably dead-ends.
func TestRouteDegradedTurnDeadUnreachable(t *testing.T) {
	b := New(64, AscentStraight)
	src, dst := wormhole.NodeID(0), wormhole.NodeID(2) // turn stage 1
	// Ascend once (healthy) to the turn switch.
	cur := b.Route(b.InjectChannel(src), src, dst, nil)[0]
	turnDown := b.Route(cur, src, dst, nil)
	if len(turnDown) != 1 || !strings.HasPrefix(b.DescribeChannel(turnDown[0]), "down(") {
		t.Fatalf("expected the unique turning down port, got %v", turnDown)
	}
	if got := b.RouteDegraded(cur, src, dst, deadSet(turnDown[0]), nil); len(got) != 0 {
		t.Fatalf("dead turn port still routed: %v", got)
	}
}

// TestRouteDegradedDescentDeadUnreachable: the descent is unique (each
// stage fixes one address bit), so a dead down channel mid-descent is an
// immediate unreachable verdict — turnaround routing cannot reverse a
// second time.
func TestRouteDegradedDescentDeadUnreachable(t *testing.T) {
	b := New(64, AscentStraight)
	src, dst := wormhole.NodeID(0), wormhole.NodeID(37) // turn stage 5: long descent
	cur := b.InjectChannel(src)
	for {
		cands := b.Route(cur, src, dst, nil)
		next := cands[0]
		if strings.HasPrefix(b.DescribeChannel(cur), "down(") {
			if got := b.RouteDegraded(cur, src, dst, deadSet(next), nil); len(got) != 0 {
				t.Fatalf("dead descent channel at %s still routed: %v", b.DescribeChannel(cur), got)
			}
			return
		}
		if next == b.EjectChannel(dst) {
			t.Fatal("walk delivered before reaching a mid-descent channel")
		}
		cur = next
	}
}
