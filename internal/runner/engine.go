package runner

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
	"repro/internal/wallclock"
)

// Cell is one independent unit of a sweep: a key describing the
// computation and a closure performing it. Run must be a pure function
// of the key (plus the simulator code itself): the engine may satisfy
// the cell from cache instead of calling Run, on this machine or
// another shard's.
type Cell struct {
	Key Key
	Run func() (Result, error)
}

// Exec configures how cell manifests execute. The zero value runs every
// cell in-process with no cache — exactly the pre-engine behavior. One
// Exec is typically shared across all figures of a CLI invocation so
// the summary accumulates whole-run totals.
type Exec struct {
	// Workers bounds the sim.ForEach fan-out; 0 = GOMAXPROCS.
	Workers int
	// Shard/NShards select an i-of-n slice of each manifest for
	// cross-machine splitting. Ownership is cell-index mod NShards over
	// the full manifest, so it is identical on every machine regardless
	// of local cache state. NShards <= 1 means all cells.
	Shard, NShards int
	// Cache persists per-cell results; nil disables persistence.
	Cache *Cache
	// Resume reads existing cache entries before computing. With
	// Resume false (and Cache set) every owned cell recomputes and
	// overwrites its entry — a forced refresh.
	Resume bool
	// Progress receives human-readable progress/ETA lines (stderr in
	// the CLIs); nil is silent. Progress output never carries results.
	Progress io.Writer
	// Summary, when non-nil, accumulates per-batch counts.
	Summary *Summary
}

// Run executes a cell manifest and returns the results in manifest
// order plus a parallel availability mask. have[i] is false only when
// cell i belongs to another shard and was not found in the cache; the
// caller then skips its merge step (Table.Incomplete) until the other
// shards have landed their cells in the shared cache. label names the
// batch in progress lines and the summary.
func (e *Exec) Run(label string, cells []Cell) ([]Result, []bool, error) {
	results := make([]Result, len(cells))
	have := make([]bool, len(cells))
	batch := Batch{Label: label, Cells: len(cells)}

	var todo []int
	for i := range cells {
		if e.Cache != nil && e.Resume {
			res, ok, err := e.Cache.Load(cells[i].Key)
			if err != nil {
				return nil, nil, fmt.Errorf("runner: %s: %w", label, err)
			}
			if ok {
				results[i], have[i] = res, true
				batch.Cached++
				continue
			}
		}
		if e.NShards > 1 && i%e.NShards != e.Shard {
			batch.Skipped++
			continue
		}
		todo = append(todo, i)
	}
	batch.Computed = len(todo)

	if e.Progress != nil {
		fmt.Fprintf(e.Progress, "%s: %d cells (%d cached, %d other-shard), computing %d\n",
			label, batch.Cells, batch.Cached, batch.Skipped, len(todo))
	}

	errs := make([]error, len(todo))
	var storeMu sync.Mutex
	var storeErr error
	start := wallclock.Now()
	var lastTick atomic.Int64
	sim.ForEachProgress(len(todo), e.Workers, func(j int) {
		i := todo[j]
		res, err := cells[i].Run()
		if err != nil {
			errs[j] = err
			return
		}
		results[i], have[i] = res, true
		if e.Cache != nil {
			// Store at completion time, not at batch end: a killed run
			// keeps everything it finished, which is what makes sweeps
			// resumable.
			if err := e.Cache.Store(cells[i].Key, res); err != nil {
				storeMu.Lock()
				if storeErr == nil {
					storeErr = err
				}
				storeMu.Unlock()
			}
		}
	}, e.ticker(label, len(todo), start, &lastTick))
	for j, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("runner: %s cell %s: %w", label, cells[todo[j]].Key.String(), err)
		}
	}
	if storeErr != nil {
		return nil, nil, storeErr
	}
	if e.Progress != nil && len(todo) > 0 {
		fmt.Fprintf(e.Progress, "%s: computed %d cells in %s\n", label, len(todo), wallclock.Since(start).Round(time.Millisecond))
	}
	if e.Summary != nil {
		e.Summary.add(batch)
	}
	return results, have, nil
}

// ticker returns the ForEachProgress completion hook: a throttled
// progress/ETA line, at most one per 2 seconds. Nil when progress is
// off, so the silent path pays nothing.
func (e *Exec) ticker(label string, total int, start time.Time, lastTick *atomic.Int64) func(int) {
	if e.Progress == nil || total == 0 {
		return nil
	}
	return func(done int) {
		now := wallclock.Now().UnixMilli()
		last := lastTick.Load()
		if now-last < 2000 || done == total || !lastTick.CompareAndSwap(last, now) {
			return
		}
		elapsed := wallclock.Since(start)
		eta := time.Duration(float64(elapsed) / float64(done) * float64(total-done)).Round(time.Second)
		fmt.Fprintf(e.Progress, "%s: %d/%d cells, ETA %s\n", label, done, total, eta)
	}
}

// Missing counts the unavailable cells of an availability mask.
func Missing(have []bool) int {
	n := 0
	for _, h := range have {
		if !h {
			n++
		}
	}
	return n
}
