package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Result is the serializable outcome of one cell. Figures define their
// own metric vocabulary (the merge reads back what the cell closure
// stored); the cache only guarantees exact round-tripping. Every value
// stored here originates as an int64 cycle count or a ratio of such
// counts, and Go's JSON encoder round-trips float64 exactly, so a
// cache hit reproduces the computed result bit for bit.
type Result struct {
	// Failed marks a run excluded from aggregation (F1: unreachable
	// destination or watchdog abort). Failed results carry no metrics.
	Failed bool `json:"failed,omitempty"`
	// Metrics are named scalar outcomes ("latency", "blocked", ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Series are named per-destination arrays (delivery cycles,
	// recovery statuses) for consumers that need more than aggregates.
	Series map[string][]int64 `json:"series,omitempty"`
}

// Metric returns a named scalar, 0 when absent.
func (r Result) Metric(name string) float64 { return r.Metrics[name] }

// entry is the on-disk cache record: the canonical key string guards
// against hash collisions and keeps entries self-describing.
type entry struct {
	Key    string `json:"key"`
	Result Result `json:"result"`
}

// Cache is a content-addressed result store: one JSON file per cell at
// <dir>/<hh>/<hash>.json where hh is the first two hex digits of the
// cell hash (fan-out keeps directories small). Entries are written via
// temp-file + rename, so a killed run leaves only whole entries behind
// and a concurrent writer of the same cell is harmless (same content,
// atomic replace). Load and Store may be called from concurrent engine
// workers.
type Cache struct {
	dir string
}

// OpenCache creates (if needed) and returns the cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, hash[:2], hash+".json")
}

// Load returns the cached result for key, reporting whether it was
// present. A missing or corrupt (unparseable) entry is a plain miss:
// the cell recomputes and Store overwrites it — the cache is an
// accelerator, not a source of truth. A *colliding* entry — a valid
// record whose canonical key string differs from the requested key at
// the same hash path — is different: it means either a SHA-256
// collision or an externally mangled cache, and silently recomputing
// would let the two cells keep overwriting each other. Load reports it
// as an error naming both canonical keys so the operator can see
// exactly which pair of cells is fighting over the path.
func (c *Cache) Load(key Key) (Result, bool, error) {
	buf, err := os.ReadFile(c.path(key.Hash()))
	if err != nil {
		return Result{}, false, nil
	}
	var e entry
	if err := json.Unmarshal(buf, &e); err != nil {
		return Result{}, false, nil
	}
	if e.Key != key.String() {
		return Result{}, false, fmt.Errorf(
			"runner: cache collision at %s:\n  requested key %s\n  stored key    %s",
			c.path(key.Hash()), key.String(), e.Key)
	}
	return e.Result, true, nil
}

// Store persists the result for key.
func (c *Cache) Store(key Key, res Result) error {
	hash := key.Hash()
	path := c.path(hash)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("runner: store cell: %w", err)
	}
	buf, err := json.Marshal(entry{Key: key.String(), Result: res})
	if err != nil {
		return fmt.Errorf("runner: store cell: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), hash+".tmp*")
	if err != nil {
		return fmt.Errorf("runner: store cell: %w", err)
	}
	_, werr := tmp.Write(append(buf, '\n'))
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		if rmErr := os.Remove(tmp.Name()); rmErr != nil {
			werr = fmt.Errorf("%w (cleanup: %v)", werr, rmErr)
		}
		return fmt.Errorf("runner: store cell: %w", werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("runner: store cell: %w", err)
	}
	return nil
}
