package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleKey(trial int) Key {
	return Key{
		Mode: "mcast", Platform: "16x16 mesh", Algo: "opt", Soft: "send=95+0.008/B",
		K: 32, Bytes: 4096, Trial: trial, Seed: 1997, THold: 128, TEnd: 640,
	}
}

// The canonical key string is the cache's compatibility contract: a
// change to the encoding must bump Schema, and this test is the tripwire.
func TestKeyStringStable(t *testing.T) {
	got := sampleKey(3).String()
	want := "schema=2|mode=mcast|platform=16x16 mesh|algo=opt|soft=send=95+0.008/B|k=32|bytes=4096|x=0|trial=3|seed=1997|addrbytes=0|thold=128|tend=640|faultseed=0|deadpct=0|recseed=0|extra="
	if got != want {
		t.Fatalf("key encoding changed without a Schema bump:\n got %s\nwant %s", got, want)
	}
}

func TestKeyHashDistinguishesFields(t *testing.T) {
	base := sampleKey(0)
	seen := map[string]string{base.Hash(): "base"}
	for name, k := range map[string]Key{
		"trial": sampleKey(1),
		"mode":  {Mode: "fault", Platform: base.Platform, Algo: base.Algo, Soft: base.Soft, K: 32, Bytes: 4096, Seed: 1997, THold: 128, TEnd: 640},
		"bytes": {Mode: "mcast", Platform: base.Platform, Algo: base.Algo, Soft: base.Soft, K: 32, Bytes: 8192, Seed: 1997, THold: 128, TEnd: 640},
		"extra": {Mode: "mcast", Platform: base.Platform, Algo: base.Algo, Soft: base.Soft, K: 32, Bytes: 4096, Seed: 1997, THold: 128, TEnd: 640, Extra: "g=2"},
	} {
		h := k.Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("key variants %q and %q collide", name, prev)
		}
		seen[h] = name
		if len(h) != 64 || strings.ToLower(h) != h {
			t.Fatalf("hash %q is not lowercase hex sha-256", h)
		}
	}
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := sampleKey(0)
	if _, ok, err := c.Load(key); ok || err != nil {
		t.Fatalf("empty cache reported hit=%v err=%v", ok, err)
	}
	res := Result{
		Metrics: map[string]float64{"latency": 12345, "blocked": 0},
		Series:  map[string][]int64{"deliveries": {0, 7, 12345}},
	}
	if err := c.Store(key, res); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("stored entry did not load")
	}
	if got.Metric("latency") != 12345 || got.Series["deliveries"][2] != 12345 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, ok, err := c.Load(sampleKey(1)); ok || err != nil {
		t.Fatalf("different key: hit=%v err=%v", ok, err)
	}
}

// A corrupt (unparseable) entry reads as a plain miss — the cell
// recomputes and overwrites it. A *colliding* entry (valid JSON whose
// canonical key string differs from the requested key) is an error,
// and the error must name both canonical keys so the colliding pair is
// diagnosable from the message alone.
func TestCacheCorruptMissesAndCollisionNamesKeyPair(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := sampleKey(0)
	if err := c.Store(key, Result{Metrics: map[string]float64{"latency": 1}}); err != nil {
		t.Fatal(err)
	}
	path := c.path(key.Hash())
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Load(key); ok || err != nil {
		t.Fatalf("corrupt entry: hit=%v err=%v, want plain miss", ok, err)
	}
	collide, err := json.Marshal(entry{Key: sampleKey(9).String(), Result: Result{Metrics: map[string]float64{"latency": 999}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, collide, 0o644); err != nil {
		t.Fatal(err)
	}
	_, ok, err := c.Load(key)
	if ok {
		t.Fatal("colliding entry (different canonical key) reported a hit")
	}
	if err == nil {
		t.Fatal("colliding entry read as a silent miss, want an error naming the key pair")
	}
	for _, want := range []string{key.String(), sampleKey(9).String()} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("collision error %q does not name key %q", err, want)
		}
	}
	// The engine must surface the collision instead of recomputing over it.
	e := &Exec{Cache: c, Resume: true}
	if _, _, err := e.Run("collide", makeCells(1, nil)); err == nil || !strings.Contains(err.Error(), "collision") {
		t.Fatalf("engine resume over collision: err = %v, want collision error", err)
	}
}

func makeCells(n int, ran []int32) []Cell {
	cells := make([]Cell, n)
	for i := range cells {
		i := i
		cells[i] = Cell{
			Key: sampleKey(i),
			Run: func() (Result, error) {
				if ran != nil {
					ran[i]++
				}
				return Result{Metrics: map[string]float64{"latency": float64(100 + i)}}, nil
			},
		}
	}
	return cells
}

// Shard ownership must partition the manifest: over all n shards every
// cell is computed exactly once, and the shared cache then merges to the
// full result set.
func TestShardsPartitionManifest(t *testing.T) {
	const n, shards = 10, 3
	dir := t.TempDir()
	ran := make([]int32, n)
	for sh := 0; sh < shards; sh++ {
		c, err := OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		e := &Exec{Workers: 2, Shard: sh, NShards: shards, Cache: c, Resume: true}
		results, have, err := e.Run("part", makeCells(n, ran))
		if err != nil {
			t.Fatal(err)
		}
		// Earlier shards' cells are already in the shared cache, so this
		// shard sees its own cells plus every cell with i%shards < sh.
		for i := range results {
			if have[i] != (i%shards <= sh) {
				t.Fatalf("shard %d/%d: have[%d] = %v", sh, shards, i, have[i])
			}
		}
	}
	for i, r := range ran {
		if r != 1 {
			t.Fatalf("cell %d ran %d times, want exactly once across shards", i, r)
		}
	}
	// Merge run: everything from cache, nothing recomputed.
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	sum := &Summary{}
	e := &Exec{Cache: c, Resume: true, Summary: sum}
	results, have, err := e.Run("merge", makeCells(n, ran))
	if err != nil {
		t.Fatal(err)
	}
	if Missing(have) != 0 {
		t.Fatalf("merge missing %d cells", Missing(have))
	}
	for i, r := range results {
		if r.Metric("latency") != float64(100+i) {
			t.Fatalf("cell %d merged wrong: %+v", i, r)
		}
	}
	if sum.Computed != 0 || sum.Cached != n {
		t.Fatalf("merge summary computed=%d cached=%d, want 0/%d", sum.Computed, sum.Cached, n)
	}
}

// Without Resume the engine recomputes owned cells even when cached — a
// forced refresh — but still stores the new results.
func TestNoResumeRecomputes(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	ran := make([]int32, 4)
	e := &Exec{Cache: c}
	if _, _, err := e.Run("a", makeCells(4, ran)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run("b", makeCells(4, ran)); err != nil {
		t.Fatal(err)
	}
	for i, r := range ran {
		if r != 2 {
			t.Fatalf("cell %d ran %d times, want 2 (no -resume)", i, r)
		}
	}
}

func TestRunErrorNamesCell(t *testing.T) {
	cells := makeCells(3, nil)
	cells[1].Run = func() (Result, error) { return Result{}, fmt.Errorf("boom") }
	e := &Exec{}
	_, _, err := e.Run("errs", cells)
	if err == nil || !strings.Contains(err.Error(), "trial=1") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want cell key + cause", err)
	}
}

func TestSummaryFinishAndWrite(t *testing.T) {
	s := &Summary{}
	s.add(Batch{Label: "a", Cells: 4, Computed: 2, Cached: 1, Skipped: 1})
	s.add(Batch{Label: "b", Cells: 2, Computed: 2})
	s.Finish("2", "0/2", 4, "results/cache", 1500)
	if s.Cells != 6 || s.Computed != 4 || s.Cached != 1 || s.Skipped != 1 {
		t.Fatalf("totals: cells=%d computed=%d cached=%d skipped=%d", s.Cells, s.Computed, s.Cached, s.Skipped)
	}
	if s.Complete {
		t.Fatal("summary with skipped cells reported complete")
	}
	path := filepath.Join(t.TempDir(), "sum.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Fig != "2" || back.Shard != "0/2" || len(back.Batches) != 2 || back.WallMS != 1500 {
		t.Fatalf("round trip: fig=%q shard=%q batches=%d wallms=%d", back.Fig, back.Shard, len(back.Batches), back.WallMS)
	}
}

func TestMissing(t *testing.T) {
	if Missing([]bool{true, false, true, false}) != 2 || Missing(nil) != 0 {
		t.Fatal("Missing miscounts")
	}
}
