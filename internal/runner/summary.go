package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Batch is one engine batch (one figure sweep manifest) in the summary.
type Batch struct {
	Label    string `json:"label"`
	Cells    int    `json:"cells"`
	Computed int    `json:"computed"`
	Cached   int    `json:"cached"`
	Skipped  int    `json:"skipped"`
}

// Summary is the per-run JSON record the CLIs emit and CI consumes: how
// much work a run actually did (computed) versus reused (cached) versus
// left to other shards (skipped), plus wall time and worker count. CI
// asserts on these fields — e.g. a warm-cache merge run must report
// computed == 0 — so the engine fills the counts and the CLI stamps the
// run-level context.
type Summary struct {
	Fig      string  `json:"fig,omitempty"`
	Shard    string  `json:"shard,omitempty"`
	Workers  int     `json:"workers"`
	CacheDir string  `json:"cache_dir,omitempty"`
	Cells    int     `json:"cells"`
	Computed int     `json:"computed"`
	Cached   int     `json:"cached"`
	Skipped  int     `json:"skipped"`
	Complete bool    `json:"complete"`
	WallMS   int64   `json:"wall_ms"`
	Batches  []Batch `json:"batches,omitempty"`

	mu sync.Mutex
}

// add accumulates one batch into the totals.
func (s *Summary) add(b Batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Batches = append(s.Batches, b)
	s.Cells += b.Cells
	s.Computed += b.Computed
	s.Cached += b.Cached
	s.Skipped += b.Skipped
}

// Finish stamps run-level context; Complete means every cell of every
// batch was available (computed here or cached), i.e. all tables were
// merged rather than deferred.
func (s *Summary) Finish(fig, shard string, workers int, cacheDir string, wallMS int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Fig, s.Shard, s.Workers, s.CacheDir, s.WallMS = fig, shard, workers, cacheDir, wallMS
	s.Complete = s.Skipped == 0
}

// WriteFile writes the summary as indented JSON; "-" writes to stderr.
func (s *Summary) WriteFile(path string) error {
	buf, err := s.marshal()
	if err != nil {
		return fmt.Errorf("runner: summary: %w", err)
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stderr.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// marshal snapshots the summary as JSON under the lock; the deferred
// unlock keeps every marshal-error path from exiting with the lock held.
func (s *Summary) marshal() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return json.MarshalIndent(s, "", "  ")
}
