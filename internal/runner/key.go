// Package runner is the sharded, cache-resumable experiment engine.
//
// Every figure sweep in internal/exp decomposes into independent cells:
// one simulated multicast (or recovery run, concurrent batch, ...) with
// fully pinned inputs. A cell is identified by a Key — a canonical
// encoding of everything that determines its outcome — and the engine
// (engine.go) runs the cells of a manifest through the sim.ForEach
// worker pool, optionally restricted to one shard of a cross-machine
// split and optionally backed by a content-addressed on-disk cache
// (cache.go). Because aggregation always consumes results in manifest
// order, a sweep assembled from any mix of computed and cached cells,
// across any shard split and worker count, is bit-identical to a serial
// cold run.
package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Schema versions the key encoding and the semantics behind it (cell
// payload layout, simulator defaults not spelled out in the key). Bump
// it whenever a change makes old cached results wrong for new code:
// every old cache entry then simply misses.
//
// Schema history:
//
//	1: initial layout.
//	2: recover-mode orphan re-assignment picks the nearest delivered
//	   adopter by hop distance (was: lowest chain position), changing
//	   recover and netsim-recover payloads; adds churn modes.
const Schema = 2

// Key identifies one cell by its computation inputs, not by the figure
// that wants it — two figures that request the same simulation share
// the same cache entry. The zero value of unused fields is canonical
// (e.g. FaultSeed stays 0 on healthy runs), so keys are comparable
// across call sites.
type Key struct {
	// Mode is the kind of computation: "mcast" (one multicast on a
	// healthy fabric), "fault" (multicast on a degraded fabric),
	// "recover" (reliable-delivery run plus reachability oracle),
	// "conc" (concurrent batch), "temporal" (tuner trial), "bcast" /
	// "scatter" (full-machine broadcast variants), "traffic" (one
	// open-system run at an offered rate, carried in X), "churn"
	// (reliable multicast under a membership churn schedule, rate in
	// X), "netsim" / "netsim-recover" / "netsim-traffic" /
	// "netsim-churn" (CLI single runs).
	Mode string
	// Platform is the fabric label, which pins topology, size and
	// routing policy ("16x16 mesh", "128-node BMIN (straight ascent)").
	Platform string
	// Algo is the tree algorithm label ("U-mesh", "OPT-min", ...).
	Algo string
	// Soft is the canonical rendering of the software cost model.
	Soft string
	// K is the multicast size, Bytes the message size.
	K, Bytes int
	// X is the figure's x-value when it is not already K or Bytes
	// (group count, dead-link percent); 0 otherwise.
	X int
	// Trial is the placement index, Seed the placement seed.
	Trial int
	Seed  uint64
	// AddrBytes is the per-address payload charge.
	AddrBytes int
	// THold and TEnd are the measured model parameters the split table
	// was built from.
	THold, TEnd int64
	// FaultSeed is the fully derived fault-plan seed (0 = healthy) and
	// DeadPct the dead-link percentage of the plan.
	FaultSeed uint64
	DeadPct   int
	// RecSeed seeds the recovery layer's backoff draws (recover mode).
	RecSeed uint64
	// Extra carries mode-specific parameters that have no field of
	// their own (tuner iterations, netsim deadline).
	Extra string
}

// String renders the key canonically: fixed field order, one line,
// schema-prefixed. This string is what the content hash covers and what
// cache entries store for collision checks and debugging.
func (k Key) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schema=%d|mode=%s|platform=%s|algo=%s|soft=%s", Schema, k.Mode, k.Platform, k.Algo, k.Soft)
	fmt.Fprintf(&b, "|k=%d|bytes=%d|x=%d|trial=%d|seed=%d|addrbytes=%d", k.K, k.Bytes, k.X, k.Trial, k.Seed, k.AddrBytes)
	fmt.Fprintf(&b, "|thold=%d|tend=%d|faultseed=%d|deadpct=%d|recseed=%d|extra=%s",
		k.THold, k.TEnd, k.FaultSeed, k.DeadPct, k.RecSeed, k.Extra)
	return b.String()
}

// Hash is the cell's content address: hex SHA-256 of the canonical
// string.
func (k Key) Hash() string {
	sum := sha256.Sum256([]byte(k.String()))
	return hex.EncodeToString(sum[:])
}
