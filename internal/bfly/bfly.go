// Package bfly implements a unidirectional butterfly multistage network,
// the fabric the paper's concluding remarks single out as one where the
// contention-free partitioning behind OPT-mesh and OPT-min is impossible
// (citing Ni, Gui and Moore): every message traverses all log2(N) stages
// front to back, the route is uniquely determined by destination-tag
// routing, and distinct multicast sub-trees cannot be confined to
// disjoint channel sets.
//
// The paper's proposed fallback is temporal tuning: senders that must
// share channels are ordered so they are unlikely to transmit at the same
// time. The experiment harness uses this topology to show that
// lexicographic chain ordering reduces — but, unlike on the mesh and the
// BMIN, cannot eliminate — contention here (experiment E1 in DESIGN.md).
//
// Channel layout: Link(l, p) = l*N + p for levels l in [0, stages]:
// level 0 is node p's injection channel into stage 0; level l in
// [1, stages-1] connects stage l-1 to stage l; level stages delivers from
// the last stage to node p (the ejection channel). Stage l fixes address
// bit l, so a worm from src occupies, at level l+1, the column whose low
// bits (0..l) are the destination's and whose high bits are the source's.
package bfly

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/wormhole"
)

// Butterfly is a unidirectional butterfly MIN of 2×2 switches.
type Butterfly struct {
	n      int
	stages int
}

// New constructs a butterfly with the given number of nodes (a power of
// two, at least 2). It panics on an invalid node count or int32
// ChannelID overflow; TryNew returns the error instead.
func New(nodes int) *Butterfly {
	b, err := TryNew(nodes)
	if err != nil {
		panic(err)
	}
	return b
}

// TryNew is New returning an error instead of panicking. A butterfly
// has (log2(N)+1)·N channels, which overflows the int32 ChannelID space
// at 2^27 nodes — long before the NodeID space does; the count is
// computed in int64 and checked against math.MaxInt32 before
// construction.
func TryNew(nodes int) (*Butterfly, error) {
	if nodes < 2 || nodes&(nodes-1) != 0 {
		return nil, fmt.Errorf("bfly: nodes %d must be a power of two >= 2", nodes)
	}
	stages := bits.TrailingZeros(uint(nodes))
	if chans64 := int64(stages+1) * int64(nodes); chans64 > math.MaxInt32 {
		return nil, fmt.Errorf("bfly: %d nodes give %d channels, overflowing the int32 ChannelID space (max %d)", nodes, chans64, math.MaxInt32)
	}
	return &Butterfly{n: nodes, stages: stages}, nil
}

// Stages returns the number of switch stages.
func (b *Butterfly) Stages() int { return b.stages }

// LexLess is the lexicographic (numeric) chain order used for temporal
// tuning.
func (b *Butterfly) LexLess(a, c int) bool { return a < c }

func (b *Butterfly) link(l, p int) wormhole.ChannelID {
	return wormhole.ChannelID(l*b.n + p)
}

// NumNodes implements wormhole.Topology.
func (b *Butterfly) NumNodes() int { return b.n }

// NumChannels implements wormhole.Topology.
func (b *Butterfly) NumChannels() int { return (b.stages + 1) * b.n }

// InjectChannel implements wormhole.Topology.
func (b *Butterfly) InjectChannel(p wormhole.NodeID) wormhole.ChannelID {
	return b.link(0, int(p))
}

// EjectChannel implements wormhole.Topology.
func (b *Butterfly) EjectChannel(p wormhole.NodeID) wormhole.ChannelID {
	return b.link(b.stages, int(p))
}

// Route implements destination-tag routing: the switch at stage l sets
// address bit l. The route is unique — the butterfly has exactly one path
// per (src, dst) pair, which is why no node ordering can make multicast
// sub-trees channel-disjoint.
func (b *Butterfly) Route(cur wormhole.ChannelID, src, dst wormhole.NodeID, buf []wormhole.ChannelID) []wormhole.ChannelID {
	l := int(cur) / b.n
	p := int(cur) % b.n
	if l >= b.stages {
		panic("bfly: routing from an ejection channel")
	}
	q := p &^ (1 << l)
	if int(dst)>>l&1 != 0 {
		q |= 1 << l
	}
	return append(buf, b.link(l+1, q))
}

// DescribeChannel implements wormhole.Topology.
func (b *Butterfly) DescribeChannel(c wormhole.ChannelID) string {
	if c < 0 || int(c) >= b.NumChannels() {
		return "none"
	}
	l := int(c) / b.n
	p := int(c) % b.n
	switch l {
	case 0:
		return fmt.Sprintf("inject(%d)", p)
	case b.stages:
		return fmt.Sprintf("eject(%d)", p)
	default:
		return fmt.Sprintf("level(%d,p=%d)", l, p)
	}
}

var _ wormhole.Topology = (*Butterfly)(nil)
