package bfly

import (
	"strings"
	"testing"
)

// TestTryNewOverflow pins the int32 ChannelID guard: a butterfly has
// (log2(N)+1)·N channels, overflowing the channel space at 2^27 nodes;
// 2^26 is the largest legal power of two.
func TestTryNewOverflow(t *testing.T) {
	if _, err := TryNew(1 << 27); err == nil || !strings.Contains(err.Error(), "ChannelID") {
		t.Fatalf("TryNew(2^27) = %v, want ChannelID overflow error", err)
	}
	if _, err := TryNew(1 << 40); err == nil {
		t.Fatal("TryNew(2^40) accepted")
	}
	if _, err := TryNew(100); err == nil {
		t.Fatal("TryNew(100) accepted, want power-of-two error")
	}
	b, err := TryNew(1 << 26)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.NumChannels(); got != 27*(1<<26) {
		t.Fatalf("NumChannels() = %d, want %d", got, 27*(1<<26))
	}
}
