package bfly_test

import (
	"testing"

	. "repro/internal/bfly"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/mcastsim"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/wormhole"
)

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("nodes=%d accepted", n)
				}
			}()
			New(n)
		}()
	}
	b := New(64)
	if b.Stages() != 6 || b.NumChannels() != 7*64 {
		t.Fatalf("stages=%d channels=%d", b.Stages(), b.NumChannels())
	}
}

// TestPathsTraverseAllStages: every route has exactly stages+1 channels.
func TestPathsTraverseAllStages(t *testing.T) {
	b := New(32)
	for s := 0; s < 32; s++ {
		for d := 0; d < 32; d++ {
			p := wormhole.PathChannels(b, wormhole.NodeID(s), wormhole.NodeID(d))
			if len(p) != b.Stages()+1 {
				t.Fatalf("%d->%d: path length %d, want %d", s, d, len(p), b.Stages()+1)
			}
			if p[0] != b.InjectChannel(wormhole.NodeID(s)) || p[len(p)-1] != b.EjectChannel(wormhole.NodeID(d)) {
				t.Fatalf("%d->%d: endpoints wrong", s, d)
			}
		}
	}
}

// TestDestinationTagColumns: the column at level l has the destination's
// low l bits and the source's high bits.
func TestDestinationTagColumns(t *testing.T) {
	b := New(64)
	src, dst := 0b101101, 0b010010
	p := wormhole.PathChannels(b, wormhole.NodeID(src), wormhole.NodeID(dst))
	for l, c := range p {
		col := int(c) % 64
		mask := (1 << l) - 1
		want := dst&mask | src&^mask
		if col != want {
			t.Fatalf("level %d: column %06b, want %06b", l, col, want)
		}
	}
}

// TestNoContentionFreePartitioning verifies the paper's premise for this
// topology: even restricting to the "safe" direction combinations that
// are channel-disjoint on the mesh, disjoint lexicographic intervals
// collide on the butterfly.
func TestNoContentionFreePartitioning(t *testing.T) {
	b := New(16)
	share := func(a1, d1, a2, d2 int) bool {
		p1 := wormhole.PathChannels(b, wormhole.NodeID(a1), wormhole.NodeID(d1))
		set := map[wormhole.ChannelID]bool{}
		for _, c := range p1[1 : len(p1)-1] {
			set[c] = true
		}
		p2 := wormhole.PathChannels(b, wormhole.NodeID(a2), wormhole.NodeID(d2))
		for _, c := range p2[1 : len(p2)-1] {
			if set[c] {
				return true
			}
		}
		return false
	}
	// Splits aligned to the top address bit stay channel-disjoint (the
	// sub-butterflies are independent)...
	for a1 := 0; a1 < 8; a1++ {
		for d1 := a1 + 1; d1 < 8; d1++ {
			for a2 := 8; a2 < 16; a2++ {
				for d2 := a2 + 1; d2 < 16; d2++ {
					if share(a1, d1, a2, d2) {
						t.Fatalf("aligned halves share channels: %d->%d vs %d->%d", a1, d1, a2, d2)
					}
				}
			}
		}
	}
	// ...but the recursion splits at arbitrary points, and for unaligned
	// splits even both-ascending message pairs (always safe on the mesh)
	// collide.
	found := false
	for split := 1; split < 15 && !found; split++ {
		for a1 := 0; a1 < split && !found; a1++ {
			for d1 := a1 + 1; d1 < split && !found; d1++ {
				for a2 := split; a2 < 16 && !found; a2++ {
					for d2 := a2 + 1; d2 < 16 && !found; d2++ {
						if share(a1, d1, a2, d2) {
							found = true
						}
					}
				}
			}
		}
	}
	if !found {
		t.Fatal("no colliding pair found at any split; the butterfly would be partitionable after all")
	}
}

// TestTemporalOrderingReducesContention is experiment E1's essence: on
// the butterfly, sorting the chain lexicographically reduces (but need
// not eliminate) OPT-tree contention versus a random order.
func TestTemporalOrderingReducesContention(t *testing.T) {
	b := New(64)
	soft := model.Software{
		Send: model.Linear{Fixed: 200, PerByte: 0.15},
		Recv: model.Linear{Fixed: 200, PerByte: 0.15},
		Hold: model.Linear{Fixed: 200, PerByte: 0.15},
	}
	cfg := mcastsim.Config{Software: soft}
	tab := core.NewOptTable(24, soft.Hold.At(4096), 2*soft.Send.At(4096)+600)

	var randBlocked, lexBlocked int64
	for seed := uint64(0); seed < 10; seed++ {
		addrs := sim.NewRNG(seed).Sample(64, 24)
		chRand := chain.Unordered(addrs)
		res, err := mcastsim.Run(wormhole.New(b, wormhole.DefaultConfig()), tab, chRand, 0, 4096, cfg)
		if err != nil {
			t.Fatal(err)
		}
		randBlocked += res.BlockedCycles

		chLex := chain.New(addrs, b.LexLess)
		root, _ := chLex.Index(addrs[0])
		res, err = mcastsim.Run(wormhole.New(b, wormhole.DefaultConfig()), tab, chLex, root, 4096, cfg)
		if err != nil {
			t.Fatal(err)
		}
		lexBlocked += res.BlockedCycles
	}
	if randBlocked == 0 {
		t.Fatal("random-order OPT-tree never contended on the butterfly")
	}
	if lexBlocked >= randBlocked {
		t.Fatalf("lexicographic ordering did not reduce contention: %d vs %d", lexBlocked, randBlocked)
	}
}

func TestDescribeChannel(t *testing.T) {
	b := New(8)
	if s := b.DescribeChannel(b.InjectChannel(2)); s != "inject(2)" {
		t.Errorf("inject described as %q", s)
	}
	if s := b.DescribeChannel(b.EjectChannel(2)); s != "eject(2)" {
		t.Errorf("eject described as %q", s)
	}
	if s := b.DescribeChannel(wormhole.ChannelID(-2)); s != "none" {
		t.Errorf("invalid described as %q", s)
	}
}

func TestLexLess(t *testing.T) {
	b := New(8)
	if !b.LexLess(1, 2) || b.LexLess(2, 1) {
		t.Fatal("LexLess broken")
	}
}
