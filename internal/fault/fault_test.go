package fault

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/bfly"
	"repro/internal/bmin"
	"repro/internal/mesh"
	"repro/internal/torus"
	"repro/internal/wormhole"
)

func topologies() []struct {
	name string
	topo wormhole.Topology
} {
	return []struct {
		name string
		topo wormhole.Topology
	}{
		{"mesh8x8", mesh.New2D(8, 8)},
		{"torus8x8", torus.New2D(8, 8)},
		{"bmin64", bmin.New(64, bmin.AscentStraight)},
		{"bfly64", bfly.New(64)},
	}
}

func TestPlanDeterministic(t *testing.T) {
	spec := Spec{DeadFrac: 0.05, DegradedFrac: 0.1, FlakyFrac: 0.1, Seed: 42}
	for _, tc := range topologies() {
		a := MustPlan(tc.topo, spec)
		b := MustPlan(tc.topo, spec)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same (topology, spec) produced different plans", tc.name)
		}
		c := MustPlan(tc.topo, Spec{DeadFrac: 0.05, DegradedFrac: 0.1, FlakyFrac: 0.1, Seed: 43})
		if reflect.DeepEqual(a.class, c.class) {
			t.Errorf("%s: different seeds produced identical channel assignments", tc.name)
		}
	}
}

func TestInjectEjectNeverFaulted(t *testing.T) {
	// Even a 100% fault load must leave every node's way in and out of
	// the fabric healthy.
	spec := Spec{DeadFrac: 0.4, DegradedFrac: 0.3, FlakyFrac: 0.3, Seed: 9}
	for _, tc := range topologies() {
		p := MustPlan(tc.topo, spec)
		for i := 0; i < tc.topo.NumNodes(); i++ {
			node := wormhole.NodeID(i)
			for _, c := range []wormhole.ChannelID{tc.topo.InjectChannel(node), tc.topo.EjectChannel(node)} {
				if p.ClassOf(c) != Healthy {
					t.Fatalf("%s: protected channel %s got class %d",
						tc.name, tc.topo.DescribeChannel(c), p.ClassOf(c))
				}
			}
		}
		if p.Eligible() != tc.topo.NumChannels()-2*tc.topo.NumNodes() {
			t.Errorf("%s: eligible %d, want fabric-internal count %d",
				tc.name, p.Eligible(), tc.topo.NumChannels()-2*tc.topo.NumNodes())
		}
	}
}

func TestFractionRounding(t *testing.T) {
	topo := mesh.New2D(8, 8)
	p := MustPlan(topo, Spec{DeadFrac: 0.1, DegradedFrac: 0.2, FlakyFrac: 0.05, Seed: 1})
	n := p.Eligible()
	want := func(frac float64) int { return int(frac*float64(n) + 0.5) }
	if got := p.DeadCount(); got != want(0.1) {
		t.Errorf("dead count %d, want %d of %d", got, want(0.1), n)
	}
	if got := p.FaultedCount(); got != want(0.1)+want(0.2)+want(0.05) {
		t.Errorf("faulted count %d, want %d", got, want(0.1)+want(0.2)+want(0.05))
	}
	// Rounding overshoot: three fractions that each round up must still
	// fit within the fabric.
	full := MustPlan(topo, Spec{DeadFrac: 0.333, DegradedFrac: 0.333, FlakyFrac: 0.333, Seed: 2})
	if full.FaultedCount() > full.Eligible() {
		t.Errorf("faulted %d exceeds eligible %d", full.FaultedCount(), full.Eligible())
	}
}

func TestUpDutyCycles(t *testing.T) {
	topo := mesh.New2D(8, 8)
	p := MustPlan(topo, Spec{
		DeadFrac: 0.05, DegradedFrac: 0.1, Period: 4,
		FlakyFrac: 0.1, FlakyPeriod: 32, FlakyDown: 8,
		Seed: 3,
	})
	counted := [4]int{}
	for c := 0; c < topo.NumChannels(); c++ {
		cid := wormhole.ChannelID(c)
		up := 0
		for now := int64(0); now < 128; now++ {
			if p.Up(cid, now) {
				up++
			}
		}
		switch cl := p.ClassOf(cid); cl {
		case Healthy:
			if up != 128 {
				t.Fatalf("healthy channel %d up %d/128", c, up)
			}
		case Dead:
			if up != 0 {
				t.Fatalf("dead channel %d up %d/128", c, up)
			}
			if !p.Dead(cid) {
				t.Fatalf("dead channel %d not reported by Dead()", c)
			}
		case Degraded:
			if up != 128/4 {
				t.Fatalf("degraded channel %d up %d/128, want %d", c, up, 128/4)
			}
		case Flaky:
			if want := 128 * (32 - 8) / 32; up != want {
				t.Fatalf("flaky channel %d up %d/128, want %d", c, up, want)
			}
		default:
			t.Fatalf("unknown class %d", cl)
		}
		counted[p.ClassOf(cid)]++
	}
	if counted[Dead] == 0 || counted[Degraded] == 0 || counted[Flaky] == 0 {
		t.Fatalf("plan missing a class: %v", counted)
	}
	// Dead() must be false for every non-dead class.
	for c := 0; c < topo.NumChannels(); c++ {
		cid := wormhole.ChannelID(c)
		if p.ClassOf(cid) != Dead && p.Dead(cid) {
			t.Fatalf("non-dead channel %d reported dead", c)
		}
	}
}

func TestPhasesDesynchronized(t *testing.T) {
	// With enough degraded channels, at least two must pulse on different
	// cycles — lockstep duty cycles would synchronize contention
	// artificially.
	topo := mesh.New2D(8, 8)
	p := MustPlan(topo, Spec{DegradedFrac: 0.3, Period: 8, Seed: 4})
	phases := map[int64]bool{}
	for c := 0; c < topo.NumChannels(); c++ {
		if p.ClassOf(wormhole.ChannelID(c)) == Degraded {
			phases[p.phase[c]] = true
		}
	}
	if len(phases) < 2 {
		t.Fatalf("all %d degraded channels share a phase", p.counts[Degraded])
	}
}

func TestSpecValidation(t *testing.T) {
	topo := mesh.New2D(4, 4)
	for name, spec := range map[string]Spec{
		"negative dead":    {DeadFrac: -0.1},
		"dead over one":    {DeadFrac: 1.5},
		"sum over one":     {DeadFrac: 0.5, DegradedFrac: 0.4, FlakyFrac: 0.2},
		"bad period":       {DegradedFrac: 0.1, Period: -1},
		"down over period": {FlakyFrac: 0.1, FlakyPeriod: 16, FlakyDown: 32},
	} {
		if _, err := NewPlan(topo, spec); err == nil {
			t.Errorf("%s: invalid spec accepted", name)
		}
	}
	if _, err := NewPlan(topo, Spec{DeadFrac: 0.1, Seed: 1}); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustPlan did not panic on an invalid spec")
		}
	}()
	MustPlan(topo, Spec{DeadFrac: 2})
}

// TestFlakyWindowBoundaries pins the half-open window semantics from
// the package comment at the exact edges: with local time tl =
// (now+phase) mod FlakyPeriod, the first down cycle is tl == 0, the
// last is tl == FlakyDown-1, and tl == FlakyDown is already up — so a
// period holds exactly FlakyDown down cycles, contiguous modulo the
// period, with exactly two up-transitions of the Up predicate.
func TestFlakyWindowBoundaries(t *testing.T) {
	const period, down = 32, 8
	topo := mesh.New2D(8, 8)
	p := MustPlan(topo, Spec{FlakyFrac: 0.2, FlakyPeriod: period, FlakyDown: down, Seed: 6})
	checked := 0
	for c := 0; c < topo.NumChannels(); c++ {
		cid := wormhole.ChannelID(c)
		if p.ClassOf(cid) != Flaky {
			continue
		}
		checked++
		phase := p.phase[cid]
		// Edge cycles, expressed in absolute time so the test exercises
		// Up() exactly as the simulator does. 2*period keeps now+phase
		// non-negative for any phase in [0, period).
		at := func(tl int64) int64 { return 2*period + tl - phase }
		for _, e := range []struct {
			tl   int64
			want bool
		}{
			{0, false},            // first cycle of the window: down
			{down - 1, false},     // last down cycle
			{down, true},          // window edge: half-open, already up
			{period - 1, true},    // last cycle of the period: up
			{period, false},       // wraps: next period's first down cycle
			{period + down, true}, // and its first up cycle
		} {
			if got := p.Up(cid, at(e.tl)); got != e.want {
				t.Fatalf("channel %d (phase %d): Up at local time %d = %v, want %v",
					c, phase, e.tl, got, e.want)
			}
		}
		// Window shape over one full period: exactly `down` down cycles,
		// contiguous modulo the period, and exactly two Up-flips.
		downCount, flips := 0, 0
		prev := p.Up(cid, at(period-1))
		for tl := int64(0); tl < period; tl++ {
			up := p.Up(cid, at(tl))
			if !up {
				downCount++
			}
			if up != prev {
				flips++
			}
			prev = up
		}
		if downCount != down {
			t.Fatalf("channel %d: %d down cycles per period, want %d", c, downCount, down)
		}
		if flips != 2 {
			t.Fatalf("channel %d: %d Up-transitions per period, want 2 (one contiguous outage)", c, flips)
		}
	}
	if checked == 0 {
		t.Fatal("no flaky channels drawn; boundary test is vacuous")
	}
}

// TestFlakyWindowExtremes: FlakyDown == 0 never fails, FlakyDown ==
// FlakyPeriod never serves — both are valid specs, not errors.
func TestFlakyWindowExtremes(t *testing.T) {
	topo := mesh.New2D(4, 4)
	for _, tc := range []struct {
		name   string
		down   int64
		wantUp bool
	}{
		{"never down (empty window)", 0, true},
		{"always down (full window)", 16, false},
	} {
		p := MustPlan(topo, Spec{FlakyFrac: 0.3, FlakyPeriod: 16, FlakyDown: tc.down, Seed: 8})
		found := false
		for c := 0; c < topo.NumChannels(); c++ {
			cid := wormhole.ChannelID(c)
			if p.ClassOf(cid) != Flaky {
				continue
			}
			found = true
			for now := int64(0); now < 64; now++ {
				if up := p.Up(cid, now); up != tc.wantUp {
					t.Fatalf("%s: flaky channel %d Up(%d) = %v, want %v", tc.name, c, now, up, tc.wantUp)
				}
			}
			if p.Dead(cid) {
				t.Fatalf("%s: flaky channel %d reported Dead — the fault layer must not promote it", tc.name, c)
			}
		}
		if !found {
			t.Fatalf("%s: no flaky channels drawn", tc.name)
		}
	}
}

// TestConcurrentReads exercises the immutability contract under the race
// detector: one Plan shared by many goroutines reading Dead/Up/ClassOf
// concurrently, as parallel sweep workers do.
func TestConcurrentReads(t *testing.T) {
	topo := mesh.New2D(8, 8)
	p := MustPlan(topo, Spec{DeadFrac: 0.05, DegradedFrac: 0.1, FlakyFrac: 0.1, Seed: 5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for c := 0; c < topo.NumChannels(); c++ {
				cid := wormhole.ChannelID(c)
				_ = p.Dead(cid)
				_ = p.ClassOf(cid)
				for now := int64(g); now < int64(g)+64; now++ {
					_ = p.Up(cid, now)
				}
			}
		}(g)
	}
	wg.Wait()
}
