// Package fault builds seeded, deterministic fault plans for wormhole
// fabrics: a Plan assigns each fabric channel a failure class (healthy,
// dead, degraded bandwidth, or transiently flaky) and implements
// wormhole.FaultModel, so installing it with Network.SetFaults degrades
// the fabric reproducibly. The same (topology, Spec) always yields the
// same plan on every platform — fault sweeps are as replayable as the
// healthy-path experiment tables.
//
// Injection and ejection channels are never faulted: a node whose only
// way in or out of the fabric is dead cannot participate in any
// experiment, and the paper's one-port model treats the network
// interface as part of the node, not the fabric. Faults therefore land
// only on fabric-internal channels, which is also where the routing
// fallbacks (mesh/torus adaptive detours, BMIN alternate ascent) can do
// something about them.
//
// # Window semantics
//
// Time-varying faults are phase-shifted modular windows over the cycle
// counter, evaluated at flit-acceptance time (wormhole.FaultModel.Up):
//
//   - A flaky channel's outage is the half-open prefix of its period:
//     with local time tl = (now + phase) mod FlakyPeriod, the channel is
//     down on tl in [0, FlakyDown) and up on tl in [FlakyDown,
//     FlakyPeriod). Each period thus contains exactly FlakyDown down
//     cycles, contiguous modulo the period; the boundary cycle tl ==
//     FlakyDown is the first up cycle, not the last down one. FlakyDown
//     == 0 never fails and FlakyDown == FlakyPeriod never serves —
//     both extremes are valid specs.
//   - A degraded channel serves the single cycle tl == 0 of its Period
//     and refuses the other Period-1, a 1/Period duty cycle.
//
// Phases are drawn per channel at plan construction, so faulted
// channels do not pulse in lockstep; phase only shifts where a window
// falls, never its width.
package fault

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/wormhole"
)

// Class is a channel's failure class within a Plan.
type Class uint8

const (
	// Healthy channels behave normally.
	Healthy Class = iota
	// Dead channels never carry a flit; the routing layer detours around
	// them or reports the destination unreachable.
	Dead
	// Degraded channels accept one flit every Period cycles (a 1/Period
	// duty cycle), modelling a link retrained to a fraction of its
	// bandwidth.
	Degraded
	// Flaky channels alternate outage and service windows: down for
	// FlakyDown cycles out of every FlakyPeriod, modelling transient
	// faults (thermal throttling, lossy retransmission storms).
	Flaky
)

// Spec parameterizes a fault plan. Fractions are of the fabric-internal
// channels (injection/ejection channels are never eligible); they are
// rounded to the nearest channel count and must sum to at most 1.
type Spec struct {
	// DeadFrac is the fraction of fabric channels that fail permanently.
	DeadFrac float64
	// DegradedFrac is the fraction running at a 1/Period duty cycle.
	DegradedFrac float64
	// Period is the degraded duty-cycle period in cycles (default 4, i.e.
	// 25% bandwidth).
	Period int64
	// FlakyFrac is the fraction with periodic transient outages.
	FlakyFrac float64
	// FlakyPeriod and FlakyDown shape the outage window: down for
	// FlakyDown cycles out of every FlakyPeriod (defaults 64 and 16; see
	// the package comment for the exact window semantics). With an
	// explicit FlakyPeriod, FlakyDown keeps its literal value, so 0 is an
	// empty outage window (never down) and FlakyDown == FlakyPeriod a
	// full one (never up) — both valid extremes.
	FlakyPeriod int64
	FlakyDown   int64
	// Seed selects which channels fail and each channel's phase offset.
	Seed uint64
	// NodeOutages schedules node-level faults: each entry takes that
	// node's injection and ejection channels down atomically for the
	// half-open cycle window [From, To) (To == Forever for a permanent
	// crash). Outages are scheduled, not drawn, so they are independent
	// of Seed; see window.go for semantics and validation rules.
	NodeOutages []NodeOutage
	// Windows schedules explicit outage windows on individual channels,
	// in addition to (and validated against) any outage-derived windows.
	Windows []ChannelWindow
}

func (s Spec) withDefaults() Spec {
	if s.Period == 0 {
		s.Period = 4
	}
	if s.FlakyPeriod == 0 {
		s.FlakyPeriod = 64
		if s.FlakyDown == 0 {
			// Both unset: the 16/64 default window. An explicit FlakyPeriod
			// keeps FlakyDown literal, so 0 means never down.
			s.FlakyDown = 16
		}
	}
	return s
}

func (s Spec) validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"DeadFrac", s.DeadFrac}, {"DegradedFrac", s.DegradedFrac}, {"FlakyFrac", s.FlakyFrac}} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("fault: %s %g outside [0,1]", f.name, f.v)
		}
	}
	if sum := s.DeadFrac + s.DegradedFrac + s.FlakyFrac; sum > 1 {
		return fmt.Errorf("fault: fractions sum to %g > 1", sum)
	}
	if s.Period < 1 {
		return fmt.Errorf("fault: Period %d < 1", s.Period)
	}
	if s.FlakyPeriod < 1 || s.FlakyDown < 0 || s.FlakyDown > s.FlakyPeriod {
		return fmt.Errorf("fault: flaky window %d/%d invalid", s.FlakyDown, s.FlakyPeriod)
	}
	return nil
}

// Plan is an immutable channel-fault assignment for one topology. It
// implements wormhole.FaultModel. All state is fixed at construction, so
// a Plan may be shared by concurrently running networks.
type Plan struct {
	spec     Spec
	class    []Class
	phase    []int64 // per-channel offset desynchronizing duty cycles
	eligible int     // fabric-internal channel count
	counts   [4]int  // channels per class

	// Scheduled outage windows (node outages + explicit channel
	// windows), compiled by buildWindows. winStart is a per-channel
	// cumulative index into wins (NumChannels+1 entries); nil when the
	// spec schedules none, keeping the hot Up path a single nil check.
	winStart []int32
	wins     []window
	outages  []NodeOutage
}

// NewPlan draws a fault plan over the topology's fabric-internal
// channels. The same (topology, spec) always produces the same plan. It
// returns an error for an invalid spec.
func NewPlan(topo wormhole.Topology, spec Spec) (*Plan, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	p := &Plan{
		spec:  spec,
		class: make([]Class, topo.NumChannels()),
		phase: make([]int64, topo.NumChannels()),
	}
	protected := make([]bool, topo.NumChannels())
	for i := 0; i < topo.NumNodes(); i++ {
		protected[topo.InjectChannel(wormhole.NodeID(i))] = true
		protected[topo.EjectChannel(wormhole.NodeID(i))] = true
	}
	fabric := make([]wormhole.ChannelID, 0, topo.NumChannels())
	for c := 0; c < topo.NumChannels(); c++ {
		if !protected[c] {
			fabric = append(fabric, wormhole.ChannelID(c))
		}
	}
	p.eligible = len(fabric)

	round := func(frac float64) int { return int(frac*float64(len(fabric)) + 0.5) }
	nDead, nDeg, nFlaky := round(spec.DeadFrac), round(spec.DegradedFrac), round(spec.FlakyFrac)
	if total := nDead + nDeg + nFlaky; total > len(fabric) {
		nFlaky -= total - len(fabric) // rounding overshoot; fractions sum <= 1
	}

	rng := sim.NewRNG(spec.Seed ^ 0x5fd4_43b1_27f0_9c3d)
	picks := rng.Sample(len(fabric), nDead+nDeg+nFlaky)
	for i, pi := range picks {
		c := fabric[pi]
		switch {
		case i < nDead:
			p.class[c] = Dead
		case i < nDead+nDeg:
			p.class[c] = Degraded
			p.phase[c] = int64(rng.Uint64() % uint64(spec.Period))
		default:
			p.class[c] = Flaky
			p.phase[c] = int64(rng.Uint64() % uint64(spec.FlakyPeriod))
		}
	}
	for _, cl := range p.class {
		p.counts[cl]++
	}
	if err := p.buildWindows(topo); err != nil {
		return nil, err
	}
	return p, nil
}

// MustPlan is NewPlan for specs known valid at compile time; it panics on
// error.
func MustPlan(topo wormhole.Topology, spec Spec) *Plan {
	p, err := NewPlan(topo, spec)
	if err != nil {
		panic(err)
	}
	return p
}

// Dead implements wormhole.FaultModel.
func (p *Plan) Dead(c wormhole.ChannelID) bool { return p.class[c] == Dead }

// Up implements wormhole.FaultModel: whether channel c accepts a flit at
// cycle now. Healthy channels always do; degraded channels on one cycle
// in Period; flaky channels outside their outage window. Phases are
// per-channel so faulted channels do not pulse in lockstep.
func (p *Plan) Up(c wormhole.ChannelID, now int64) bool {
	if p.winStart != nil && p.windowedDown(c, now) {
		return false
	}
	switch p.class[c] {
	case Degraded:
		return (now+p.phase[c])%p.spec.Period == 0
	case Flaky:
		return (now+p.phase[c])%p.spec.FlakyPeriod >= p.spec.FlakyDown
	case Dead:
		return false
	default:
		return true
	}
}

// ClassOf returns channel c's failure class.
func (p *Plan) ClassOf(c wormhole.ChannelID) Class { return p.class[c] }

// DeadCount returns the number of dead channels.
func (p *Plan) DeadCount() int { return p.counts[Dead] }

// FaultedCount returns the number of non-healthy channels.
func (p *Plan) FaultedCount() int { return p.counts[Dead] + p.counts[Degraded] + p.counts[Flaky] }

// Eligible returns the number of fabric-internal channels the fractions
// were drawn over.
func (p *Plan) Eligible() int { return p.eligible }

// String summarizes the plan for logs and table notes.
func (p *Plan) String() string {
	s := fmt.Sprintf("fault plan seed=%d: %d dead, %d degraded(1/%d), %d flaky(%d/%d) of %d fabric channels",
		p.spec.Seed, p.counts[Dead], p.counts[Degraded], p.spec.Period,
		p.counts[Flaky], p.spec.FlakyDown, p.spec.FlakyPeriod, p.eligible)
	if len(p.outages) > 0 || len(p.spec.Windows) > 0 {
		s += fmt.Sprintf(", %d node outages, %d channel windows", len(p.outages), len(p.spec.Windows))
	}
	return s
}
