package fault

// Node-level faults and explicit per-channel outage windows.
//
// A NodeOutage models a crashed processing node: for the half-open
// cycle window [From, To) the node's injection and ejection channels
// refuse every flit, atomically — the node can neither source nor sink
// a message while down, and both channels come back in the same cycle
// when the outage ends. Under the paper's one-port model the network
// interface is part of the node, not the fabric (see the package
// comment), so a node's incident channels are exactly its
// injection/ejection pair; fabric-internal channels belong to routers
// and switches, which survive a processor crash and keep forwarding
// through-traffic.
//
// Outages and explicit windows act only through the time-varying
// FaultModel.Up verdict, never through Dead: a crashed node is a
// scheduled refusal, not a routing fact, so the routing layer plans
// through it and in-flight worms stall against it (pinning the fast
// kernel's cycle-skipping via the fault-stall flag) until the recovery
// layer's deadlines withdraw them. Dead stays reserved for permanent
// link faults whose verdict never changes mid-run — the invariant the
// reachability oracle and the kernels' unreachable-freeze machinery
// are built on. Because Up is a pure read of immutable plan state, all
// three kernels (fast, reference, domain-parallel) observe outages
// bit-identically.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/wormhole"
)

// Forever marks an outage window that never ends (a crash with no
// scheduled recovery).
const Forever int64 = math.MaxInt64

// NodeOutage schedules one node-level fault: node Node is down for the
// half-open cycle window [From, To). Use Forever for To to model a
// permanent crash. Windows of distinct outages for the same node must
// not overlap.
type NodeOutage struct {
	Node     int
	From, To int64
}

// ChannelWindow schedules one explicit outage window on a single
// channel: the channel refuses flits on cycles in [From, To). Unlike
// the fraction-drawn failure classes, explicit windows may target any
// channel, including injection/ejection channels. Windows for the same
// channel must not overlap.
type ChannelWindow struct {
	Channel  wormhole.ChannelID
	From, To int64
}

// window is one compiled half-open outage [from, to) on a channel.
type window struct{ from, to int64 }

// winEntry is a window under construction, tagged with its origin for
// error messages.
type winEntry struct {
	c      wormhole.ChannelID
	w      window
	origin string
}

// buildWindows validates the spec's node outages and explicit windows
// against the topology and compiles them into the plan's per-channel
// window index. It is called by NewPlan after the failure classes are
// drawn, so adding outages to a spec never perturbs the seeded draws.
func (p *Plan) buildWindows(topo wormhole.Topology) error {
	if len(p.spec.NodeOutages) == 0 && len(p.spec.Windows) == 0 {
		return nil
	}
	var entries []winEntry
	perNode := make(map[int][]NodeOutage)
	for i, o := range p.spec.NodeOutages {
		if o.Node < 0 || o.Node >= topo.NumNodes() {
			return fmt.Errorf("fault: NodeOutages[%d] names node %d outside fabric of %d nodes", i, o.Node, topo.NumNodes())
		}
		if err := checkWindow(o.From, o.To); err != nil {
			return fmt.Errorf("fault: NodeOutages[%d] (node %d): %w", i, o.Node, err)
		}
		perNode[o.Node] = append(perNode[o.Node], o)
		origin := fmt.Sprintf("node %d outage", o.Node)
		w := window{from: o.From, to: o.To}
		entries = append(entries,
			winEntry{c: topo.InjectChannel(wormhole.NodeID(o.Node)), w: w, origin: origin},
			winEntry{c: topo.EjectChannel(wormhole.NodeID(o.Node)), w: w, origin: origin})
	}
	for n, os := range perNode {
		sort.Slice(os, func(i, j int) bool { return os[i].From < os[j].From })
		for i := 1; i < len(os); i++ {
			if os[i].From < os[i-1].To {
				return fmt.Errorf("fault: overlapping outages for node %d: [%d,%s) and [%d,%s)",
					n, os[i-1].From, cycleStr(os[i-1].To), os[i].From, cycleStr(os[i].To))
			}
		}
	}
	for i, cw := range p.spec.Windows {
		if cw.Channel < 0 || int(cw.Channel) >= topo.NumChannels() {
			return fmt.Errorf("fault: Windows[%d] names channel %d outside fabric of %d channels", i, cw.Channel, topo.NumChannels())
		}
		if err := checkWindow(cw.From, cw.To); err != nil {
			return fmt.Errorf("fault: Windows[%d] (channel %d): %w", i, cw.Channel, err)
		}
		entries = append(entries, winEntry{
			c: cw.Channel, w: window{from: cw.From, to: cw.To},
			origin: fmt.Sprintf("explicit window %d", i),
		})
	}

	// Sort by (channel, from) and reject any overlap on a channel — the
	// last-writer-wins ambiguity a flat check at inject time would hide.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].c != entries[j].c {
			return entries[i].c < entries[j].c
		}
		return entries[i].w.from < entries[j].w.from
	})
	for i := 1; i < len(entries); i++ {
		prev, cur := entries[i-1], entries[i]
		if cur.c == prev.c && cur.w.from < prev.w.to {
			return fmt.Errorf("fault: overlapping windows on channel %d (%s): [%d,%s) from %s and [%d,%s) from %s",
				cur.c, topo.DescribeChannel(cur.c),
				prev.w.from, cycleStr(prev.w.to), prev.origin,
				cur.w.from, cycleStr(cur.w.to), cur.origin)
		}
	}

	p.winStart = make([]int32, topo.NumChannels()+1)
	p.wins = make([]window, len(entries))
	for i, e := range entries {
		p.wins[i] = e.w
	}
	// Cumulative per-channel index: winStart[c]..winStart[c+1] are c's
	// windows in p.wins.
	idx := 0
	for c := 0; c <= topo.NumChannels(); c++ {
		for idx < len(entries) && int(entries[idx].c) < c {
			idx++
		}
		p.winStart[c] = int32(idx)
	}
	p.outages = append([]NodeOutage(nil), p.spec.NodeOutages...)
	return nil
}

// checkWindow validates one half-open [from, to) window.
func checkWindow(from, to int64) error {
	if from < 0 {
		return fmt.Errorf("window start %d < 0", from)
	}
	if to <= from {
		return fmt.Errorf("window [%d,%d) empty or inverted (use fault.Forever for a permanent outage)", from, to)
	}
	return nil
}

// cycleStr renders a window end, folding Forever.
func cycleStr(t int64) string {
	if t == Forever {
		return "forever"
	}
	return fmt.Sprint(t)
}

// windowedDown reports whether channel c is inside one of its scheduled
// outage windows at cycle now. Pure read of immutable state, safe for
// the domain-parallel kernel's concurrent phase-A workers.
func (p *Plan) windowedDown(c wormhole.ChannelID, now int64) bool {
	for i := p.winStart[c]; i < p.winStart[c+1]; i++ {
		w := p.wins[i]
		if now >= w.from && now < w.to {
			return true
		}
	}
	return false
}

// NodeDownAt reports whether node n is inside one of its scheduled
// outages at cycle now.
func (p *Plan) NodeDownAt(n int, now int64) bool {
	for _, o := range p.outages {
		if o.Node == n && now >= o.From && now < o.To {
			return true
		}
	}
	return false
}

// Outages returns the plan's validated node outages.
func (p *Plan) Outages() []NodeOutage {
	return append([]NodeOutage(nil), p.outages...)
}
