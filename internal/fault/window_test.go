package fault

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/mesh"
	"repro/internal/wormhole"
)

// TestNodeOutageWindowBoundaries pins the half-open [From, To) contract
// at the exact edges on both incident channels: the first down cycle is
// From, the last is To-1, and To is already up — both channels
// atomically.
func TestNodeOutageWindowBoundaries(t *testing.T) {
	topo := mesh.New2D(4, 4)
	const node, from, to = 5, 100, 200
	p := MustPlan(topo, Spec{NodeOutages: []NodeOutage{{Node: node, From: from, To: to}}})
	inj := topo.InjectChannel(wormhole.NodeID(node))
	ej := topo.EjectChannel(wormhole.NodeID(node))
	for _, e := range []struct {
		now  int64
		want bool
	}{
		{from - 1, true}, // last cycle before the outage
		{from, false},    // first down cycle
		{to - 1, false},  // last down cycle
		{to, true},       // half-open: recovery cycle is already up
	} {
		for _, c := range []wormhole.ChannelID{inj, ej} {
			if got := p.Up(c, e.now); got != e.want {
				t.Fatalf("channel %s: Up(%d) = %v, want %v", topo.DescribeChannel(c), e.now, got, e.want)
			}
		}
	}
	for _, e := range []struct {
		now  int64
		want bool
	}{{from - 1, false}, {from, true}, {to - 1, true}, {to, false}} {
		if got := p.NodeDownAt(node, e.now); got != e.want {
			t.Fatalf("NodeDownAt(%d, %d) = %v, want %v", node, e.now, got, e.want)
		}
	}
	// Other nodes' channels are untouched.
	other := wormhole.NodeID(7)
	if !p.Up(topo.InjectChannel(other), from) || !p.Up(topo.EjectChannel(other), from) {
		t.Fatal("outage leaked onto another node's channels")
	}
	if p.NodeDownAt(7, from) {
		t.Fatal("NodeDownAt true for a node with no outage")
	}
	// Outages never promote a channel to Dead: the routing layer still
	// plans through a down node, and only the Up verdict refuses flits.
	if p.Dead(inj) || p.Dead(ej) || p.ClassOf(inj) != Healthy {
		t.Fatal("node outage changed Dead/ClassOf — outages must act only through Up")
	}
}

// TestNodeOutageForever: To == Forever is a crash with no recovery.
func TestNodeOutageForever(t *testing.T) {
	topo := mesh.New2D(4, 4)
	p := MustPlan(topo, Spec{NodeOutages: []NodeOutage{{Node: 3, From: 50, To: Forever}}})
	inj := topo.InjectChannel(3)
	for _, now := range []int64{50, 1 << 40, Forever - 1} {
		if p.Up(inj, now) {
			t.Fatalf("Up(%d) = true inside a Forever outage", now)
		}
		if !p.NodeDownAt(3, now) {
			t.Fatalf("NodeDownAt(3, %d) = false inside a Forever outage", now)
		}
	}
	if !p.Up(inj, 49) {
		t.Fatal("Forever outage leaked before its start")
	}
}

// TestChannelWindowBoundaries: explicit windows may target any channel
// (including normally protected inject/eject) and obey the same
// half-open edges.
func TestChannelWindowBoundaries(t *testing.T) {
	topo := mesh.New2D(4, 4)
	c := topo.InjectChannel(0) // protected from drawn faults, but windowable
	p := MustPlan(topo, Spec{Windows: []ChannelWindow{{Channel: c, From: 10, To: 20}, {Channel: c, From: 20, To: 25}}})
	for _, e := range []struct {
		now  int64
		want bool
	}{
		{9, true},
		{10, false},
		{19, false}, // first window's last down cycle
		{20, false}, // second window abuts exactly — no gap, no overlap
		{24, false},
		{25, true},
	} {
		if got := p.Up(c, e.now); got != e.want {
			t.Fatalf("Up(%d) = %v, want %v", e.now, got, e.want)
		}
	}
}

// TestWindowValidation: every malformed schedule is rejected at plan
// build time with a descriptive error, not last-writer-wins at inject.
func TestWindowValidation(t *testing.T) {
	topo := mesh.New2D(4, 4)
	inj0 := topo.InjectChannel(0)
	for _, tc := range []struct {
		name string
		spec Spec
		want string // substring of the error
	}{
		{"node out of range high", Spec{NodeOutages: []NodeOutage{{Node: 16, From: 0, To: 10}}}, "outside fabric"},
		{"node out of range negative", Spec{NodeOutages: []NodeOutage{{Node: -1, From: 0, To: 10}}}, "outside fabric"},
		{"channel out of range high", Spec{Windows: []ChannelWindow{{Channel: wormhole.ChannelID(topo.NumChannels()), From: 0, To: 10}}}, "outside fabric"},
		{"channel out of range negative", Spec{Windows: []ChannelWindow{{Channel: -1, From: 0, To: 10}}}, "outside fabric"},
		{"negative start", Spec{NodeOutages: []NodeOutage{{Node: 1, From: -5, To: 10}}}, "< 0"},
		{"empty window", Spec{NodeOutages: []NodeOutage{{Node: 1, From: 10, To: 10}}}, "empty or inverted"},
		{"inverted window", Spec{Windows: []ChannelWindow{{Channel: inj0, From: 20, To: 10}}}, "empty or inverted"},
		{"overlapping outages same node", Spec{NodeOutages: []NodeOutage{
			{Node: 2, From: 0, To: 100}, {Node: 2, From: 99, To: 200}}}, "overlapping outages for node 2"},
		{"overlapping windows same channel", Spec{Windows: []ChannelWindow{
			{Channel: inj0, From: 0, To: 50}, {Channel: inj0, From: 49, To: 80}}}, "overlapping windows on channel"},
		{"explicit window collides with outage", Spec{
			NodeOutages: []NodeOutage{{Node: 0, From: 0, To: 50}},
			Windows:     []ChannelWindow{{Channel: inj0, From: 25, To: 60}},
		}, "overlapping windows on channel"},
	} {
		_, err := NewPlan(topo, tc.spec)
		if err == nil {
			t.Errorf("%s: invalid schedule accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Legal edge cases must be accepted: abutting windows ([a,b)+[b,c)),
	// same-node outages that touch exactly, and windows on distinct
	// channels at the same cycles.
	for name, spec := range map[string]Spec{
		"abutting outages":  {NodeOutages: []NodeOutage{{Node: 2, From: 0, To: 100}, {Node: 2, From: 100, To: 200}}},
		"distinct nodes":    {NodeOutages: []NodeOutage{{Node: 2, From: 0, To: 100}, {Node: 3, From: 0, To: 100}}},
		"distinct channels": {Windows: []ChannelWindow{{Channel: inj0, From: 0, To: 50}, {Channel: topo.InjectChannel(1), From: 0, To: 50}}},
	} {
		if _, err := NewPlan(topo, spec); err != nil {
			t.Errorf("%s: valid schedule rejected: %v", name, err)
		}
	}
}

// TestOutagesDoNotPerturbDraws: adding scheduled outages to a spec must
// not shift the seeded channel-class draws — outages are scheduled
// after the RNG consumption, so old specs extended with churn keep
// byte-identical fault assignments.
func TestOutagesDoNotPerturbDraws(t *testing.T) {
	topo := mesh.New2D(8, 8)
	base := Spec{DeadFrac: 0.05, DegradedFrac: 0.1, FlakyFrac: 0.1, Seed: 42}
	withOut := base
	withOut.NodeOutages = []NodeOutage{{Node: 4, From: 10, To: 90}}
	a, b := MustPlan(topo, base), MustPlan(topo, withOut)
	if !reflect.DeepEqual(a.class, b.class) || !reflect.DeepEqual(a.phase, b.phase) {
		t.Fatal("adding node outages perturbed the seeded class/phase draws")
	}
	if got := b.Outages(); !reflect.DeepEqual(got, withOut.NodeOutages) {
		t.Fatalf("Outages() = %v, want %v", got, withOut.NodeOutages)
	}
	if len(a.Outages()) != 0 {
		t.Fatal("plan without outages reports some")
	}
}

// TestWindowOnFaultedChannel: a window composes with a drawn class — the
// channel is down inside the window regardless of its duty cycle, and
// behaves per its class outside.
func TestWindowOnFaultedChannel(t *testing.T) {
	topo := mesh.New2D(8, 8)
	base := MustPlan(topo, Spec{DegradedFrac: 0.2, Period: 4, Seed: 7})
	var target wormhole.ChannelID = -1
	for c := 0; c < topo.NumChannels(); c++ {
		if base.ClassOf(wormhole.ChannelID(c)) == Degraded {
			target = wormhole.ChannelID(c)
			break
		}
	}
	if target < 0 {
		t.Fatal("no degraded channel drawn; test is vacuous")
	}
	p := MustPlan(topo, Spec{DegradedFrac: 0.2, Period: 4, Seed: 7,
		Windows: []ChannelWindow{{Channel: target, From: 0, To: 64}}})
	for now := int64(0); now < 64; now++ {
		if p.Up(target, now) {
			t.Fatalf("degraded channel served inside its window at cycle %d", now)
		}
	}
	for now := int64(64); now < 128; now++ {
		if p.Up(target, now) != base.Up(target, now) {
			t.Fatalf("outside the window, Up(%d) diverged from the pure class verdict", now)
		}
	}
}
