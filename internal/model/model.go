// Package model implements the parameterized communication model of
// Nupairoj, Ni, Park and Choi (IPPS 1997), an extension of the LogP model.
//
// The model characterizes a system by five parameters, each a function of
// the message size m:
//
//	t_send(m)  software latency at the sender (packetization, checksums,
//	           copies) before the first byte enters the network
//	t_recv(m)  software latency at the receiver after the last byte leaves
//	           the network
//	t_net(m)   time to move the message across the network fabric
//	t_hold(m)  minimum interval between two consecutive send or receive
//	           operations on one processor
//	t_end(m)   end-to-end latency: t_send(m) + t_net(m) + t_recv(m)
//
// Most communication performance can be predicted from just t_hold and
// t_end, which are easily measurable at the user level. All parameters are
// modelled as linear functions of message size, which matches the measured
// behaviour of real messaging layers (a fixed per-operation overhead plus a
// per-byte cost).
//
// Times are expressed in integer simulator cycles (Time) so that the
// dynamic program of package core is exact and simulation results are
// reproducible bit-for-bit.
package model

import (
	"errors"
	"fmt"
	"math"
)

// Time is a point in (or duration of) simulated time, in cycles.
type Time = int64

// Linear is a latency that grows linearly with message size:
// value(m) = Fixed + PerByte*m, rounded to the nearest cycle.
type Linear struct {
	// Fixed is the size-independent cost in cycles.
	Fixed float64
	// PerByte is the additional cost per message byte, in cycles/byte.
	PerByte float64
}

// At returns the latency for a message of the given size in bytes, rounded
// to the nearest whole cycle and never negative.
func (l Linear) At(bytes int) Time {
	v := l.Fixed + l.PerByte*float64(bytes)
	if v <= 0 {
		return 0
	}
	return Time(math.Round(v))
}

// Add returns the pointwise sum of two linear latencies.
func (l Linear) Add(o Linear) Linear {
	return Linear{Fixed: l.Fixed + o.Fixed, PerByte: l.PerByte + o.PerByte}
}

// Scale returns the latency multiplied by a constant factor.
func (l Linear) Scale(f float64) Linear {
	return Linear{Fixed: l.Fixed * f, PerByte: l.PerByte * f}
}

// IsZero reports whether the latency is identically zero.
func (l Linear) IsZero() bool { return l.Fixed == 0 && l.PerByte == 0 }

func (l Linear) String() string {
	return fmt.Sprintf("%.3g + %.3g/byte", l.Fixed, l.PerByte)
}

// Software holds the host-side components of the model: the latencies the
// node processors charge for communication operations. The network
// component t_net is produced by the fabric simulator (package wormhole)
// rather than being an input.
type Software struct {
	// Send is t_send: CPU time consumed before injection starts.
	Send Linear
	// Recv is t_recv: CPU time consumed after the tail flit is consumed,
	// before the message is delivered to the application.
	Recv Linear
	// Hold is t_hold: the minimum spacing between consecutive send or
	// receive operations issued by one processor.
	Hold Linear
}

// Validate reports an error if any component can go negative for the
// supported message sizes or if Hold is missing while Send is present.
func (s Software) Validate() error {
	for _, c := range []struct {
		name string
		l    Linear
	}{{"send", s.Send}, {"recv", s.Recv}, {"hold", s.Hold}} {
		if c.l.Fixed < 0 || c.l.PerByte < 0 {
			return fmt.Errorf("model: negative %s latency %v", c.name, c.l)
		}
	}
	return nil
}

// Params is a complete parameter set for one system: software costs plus a
// (possibly measured) network latency component.
type Params struct {
	Software
	// Net is t_net: the fabric traversal latency for an uncontended
	// unicast between representative nodes. On wormhole networks this is
	// nearly distance-insensitive, which is what justifies treating
	// t_end as location-independent.
	Net Linear
}

// End returns t_end = t_send + t_net + t_recv as a linear function.
func (p Params) End() Linear {
	return p.Send.Add(p.Net).Add(p.Recv)
}

// THold returns t_hold(m) in cycles for an m-byte message.
func (p Params) THold(m int) Time { return p.Hold.At(m) }

// TEnd returns t_end(m) in cycles for an m-byte message.
func (p Params) TEnd(m int) Time { return p.End().At(m) }

// Point is one (size, latency) measurement used for model fitting.
type Point struct {
	Bytes int
	T     Time
}

// ErrUnderdetermined is returned by Fit when the sample set cannot
// determine both coefficients of the linear model.
var ErrUnderdetermined = errors.New("model: need measurements at >= 2 distinct sizes to fit a linear model")

// Fit performs an ordinary least-squares fit of a Linear latency to the
// given measurements, mirroring how the paper derives t_hold and t_end
// from user-level micro-benchmarks. It requires points at two or more
// distinct message sizes.
func Fit(pts []Point) (Linear, error) {
	if len(pts) < 2 {
		return Linear{}, ErrUnderdetermined
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(pts))
	for _, p := range pts {
		x, y := float64(p.Bytes), float64(p.T)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Linear{}, ErrUnderdetermined
	}
	per := (n*sxy - sx*sy) / den
	fixed := (sy - per*sx) / n
	return Linear{Fixed: fixed, PerByte: per}, nil
}

// Residual returns the maximum absolute error (in cycles) of the fitted
// model over the given measurements. Useful for judging whether a linear
// model is adequate for a fabric.
func Residual(l Linear, pts []Point) float64 {
	var worst float64
	for _, p := range pts {
		d := math.Abs(float64(l.At(p.Bytes)) - float64(p.T))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// LogP maps the parameterized model onto the classic LogP parameters for a
// given message size, following the correspondence discussed in the paper
// (the parameterized model extends LogP with explicit software latencies).
type LogP struct {
	// L is the network latency (t_net).
	L Time
	// O is the per-message processor overhead (average of send and
	// receive software costs).
	O Time
	// G is the gap: minimum interval between consecutive message
	// operations (t_hold).
	G Time
}

// AsLogP projects the parameter set onto LogP at message size m.
func (p Params) AsLogP(m int) LogP {
	return LogP{
		L: p.Net.At(m),
		O: (p.Send.At(m) + p.Recv.At(m)) / 2,
		G: p.Hold.At(m),
	}
}

// DefaultSoftware returns the software cost defaults used throughout the
// experiments in this repository. They are chosen so that t_hold < t_end
// for every message size — the regime where the parameterized trees differ
// from binomial trees — with a fixed/per-byte balance similar to the
// mid-1990s messaging layers the paper targets (hundreds of cycles of
// fixed overhead, a fraction of a cycle per byte).
//
// The per-byte cost (0.15 cycles/byte) deliberately exceeds the fabric's
// injection rate (1/8 cycles/byte at the default 8-byte flits): a
// measured t_hold on a one-port architecture always covers the sender's
// full occupancy, software plus wire feeding. If t_hold were set below
// the injection rate, back-to-back sends would silently queue at the
// interface and the analytic model would under-predict — a consistency
// requirement the mcastsim tests pin down.
func DefaultSoftware() Software {
	send := Linear{Fixed: 400, PerByte: 0.15}
	return Software{
		Send: send,
		Recv: send,
		Hold: send, // sender occupancy equals its software overhead
	}
}
