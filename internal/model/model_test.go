package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearAt(t *testing.T) {
	l := Linear{Fixed: 100, PerByte: 0.5}
	cases := []struct {
		bytes int
		want  Time
	}{
		{0, 100}, {1, 101} /* 100.5 rounds to even? math.Round: 100.5 -> 101 */, {2, 101}, {1000, 600},
	}
	for _, c := range cases {
		if got := l.At(c.bytes); got != c.want {
			t.Errorf("At(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestLinearAtNeverNegative(t *testing.T) {
	l := Linear{Fixed: -50, PerByte: 0.1}
	if got := l.At(0); got != 0 {
		t.Fatalf("negative latency not clamped: %d", got)
	}
	if got := l.At(1000); got != 50 {
		t.Fatalf("At(1000) = %d, want 50", got)
	}
}

func TestLinearAddScale(t *testing.T) {
	a := Linear{Fixed: 10, PerByte: 0.1}
	b := Linear{Fixed: 20, PerByte: 0.2}
	s := a.Add(b)
	if s.Fixed != 30 || math.Abs(s.PerByte-0.3) > 1e-12 {
		t.Fatalf("Add = %+v", s)
	}
	d := a.Scale(3)
	if d.Fixed != 30 || math.Abs(d.PerByte-0.3) > 1e-12 {
		t.Fatalf("Scale = %+v", d)
	}
	if !(Linear{}).IsZero() || a.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestParamsEnd(t *testing.T) {
	p := Params{
		Software: Software{
			Send: Linear{Fixed: 100, PerByte: 0.01},
			Recv: Linear{Fixed: 50, PerByte: 0.02},
			Hold: Linear{Fixed: 100, PerByte: 0.01},
		},
		Net: Linear{Fixed: 30, PerByte: 0.125},
	}
	if got := p.TEnd(1000); got != 100+50+30+10+20+125 {
		t.Fatalf("TEnd(1000) = %d", got)
	}
	if got := p.THold(1000); got != 110 {
		t.Fatalf("THold(1000) = %d", got)
	}
	// t_end = t_send + t_net + t_recv must hold as linear functions too.
	end := p.End()
	for _, m := range []int{0, 64, 4096, 65536} {
		if end.At(m) != p.Send.Add(p.Net).Add(p.Recv).At(m) {
			t.Fatalf("End() inconsistent at %d bytes", m)
		}
	}
}

func TestSoftwareValidate(t *testing.T) {
	ok := DefaultSoftware()
	if err := ok.Validate(); err != nil {
		t.Fatalf("default software invalid: %v", err)
	}
	bad := ok
	bad.Recv = Linear{Fixed: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative recv accepted")
	}
}

func TestDefaultSoftwareRegime(t *testing.T) {
	// The experiments need t_hold <= t_end at every size (with any
	// non-negative t_net), i.e. Hold <= Send + Recv pointwise.
	s := DefaultSoftware()
	for _, m := range []int{0, 1, 1024, 65536} {
		if s.Hold.At(m) > s.Send.At(m)+s.Recv.At(m) {
			t.Fatalf("t_hold > t_send+t_recv at %d bytes", m)
		}
	}
}

func TestFitRecoversExactLine(t *testing.T) {
	truth := Linear{Fixed: 123, PerByte: 0.25}
	var pts []Point
	for _, m := range []int{0, 128, 1024, 9000, 65536} {
		pts = append(pts, Point{Bytes: m, T: truth.At(m)})
	}
	got, err := Fit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Fixed-truth.Fixed) > 0.5 || math.Abs(got.PerByte-truth.PerByte) > 1e-4 {
		t.Fatalf("fit = %+v, want %+v", got, truth)
	}
	if r := Residual(got, pts); r > 1 {
		t.Fatalf("residual %v too large", r)
	}
}

func TestFitQuickRecovery(t *testing.T) {
	f := func(fr uint16, pr uint8) bool {
		truth := Linear{Fixed: float64(fr % 5000), PerByte: float64(pr) / 256}
		pts := []Point{}
		for _, m := range []int{0, 64, 512, 4096, 32768} {
			pts = append(pts, Point{Bytes: m, T: truth.At(m)})
		}
		got, err := Fit(pts)
		if err != nil {
			return false
		}
		// Rounding at sample generation bounds the recoverable error.
		return math.Abs(got.Fixed-truth.Fixed) < 2 && math.Abs(got.PerByte-truth.PerByte) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFitUnderdetermined(t *testing.T) {
	if _, err := Fit(nil); err != ErrUnderdetermined {
		t.Fatalf("nil points: err = %v", err)
	}
	if _, err := Fit([]Point{{Bytes: 8, T: 10}}); err != ErrUnderdetermined {
		t.Fatalf("one point: err = %v", err)
	}
	if _, err := Fit([]Point{{Bytes: 8, T: 10}, {Bytes: 8, T: 12}}); err != ErrUnderdetermined {
		t.Fatalf("same-size points: err = %v", err)
	}
}

func TestAsLogP(t *testing.T) {
	p := Params{
		Software: Software{
			Send: Linear{Fixed: 100},
			Recv: Linear{Fixed: 60},
			Hold: Linear{Fixed: 90},
		},
		Net: Linear{Fixed: 500},
	}
	lp := p.AsLogP(0)
	if lp.L != 500 || lp.O != 80 || lp.G != 90 {
		t.Fatalf("AsLogP = %+v", lp)
	}
}

func TestLinearString(t *testing.T) {
	s := Linear{Fixed: 400, PerByte: 0.01}.String()
	if s == "" {
		t.Fatal("empty String")
	}
}
