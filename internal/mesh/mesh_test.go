package mesh

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/wormhole"
)

func TestCoordsAddrRoundTrip(t *testing.T) {
	m := New(4, 5, 3)
	for u := 0; u < m.NumNodes(); u++ {
		cs := m.Coords(u)
		if got := m.Addr(cs...); got != u {
			t.Fatalf("Addr(Coords(%d)) = %d", u, got)
		}
	}
	if m.NumNodes() != 60 {
		t.Fatalf("NumNodes = %d", m.NumNodes())
	}
}

func TestAddr2D(t *testing.T) {
	m := New2D(6, 6)
	if m.Addr(3, 2) != 15 {
		t.Fatalf("Addr(3,2) = %d, want 15", m.Addr(3, 2))
	}
	cs := m.Coords(15)
	if cs[0] != 3 || cs[1] != 2 {
		t.Fatalf("Coords(15) = %v", cs)
	}
}

func TestNewRejectsBadDims(t *testing.T) {
	for _, fn := range []func(){
		func() { New() },
		func() { New(0) },
		func() { New(4, -1) },
		func() { New(4, 4).Addr(4, 0) },
		func() { New(4, 4).Addr(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDistanceManhattan(t *testing.T) {
	m := New2D(16, 16)
	if d := m.Distance(m.Addr(0, 0), m.Addr(15, 15)); d != 30 {
		t.Fatalf("corner distance = %d", d)
	}
	if d := m.Distance(m.Addr(3, 4), m.Addr(3, 4)); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
	if d := m.Distance(m.Addr(2, 9), m.Addr(7, 3)); d != 11 {
		t.Fatalf("distance = %d, want 11", d)
	}
}

// TestDimOrderMatchesChainKey: the <_d relation equals numeric order of
// ChainKey (dimension 0 most significant), and for a 2-D mesh it sorts by
// (x, y).
func TestDimOrderMatchesChainKey(t *testing.T) {
	for _, m := range []*Mesh{New2D(6, 6), New(4, 3, 2), New(7, 1, 4)} {
		n := m.NumNodes()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if got, want := m.DimOrderLess(a, b), m.ChainKey(a) < m.ChainKey(b); got != want {
					t.Fatalf("dims=%v: DimOrderLess(%d,%d) = %v, ChainKey order %v", m.Dims(), a, b, got, want)
				}
			}
		}
	}
	m := New2D(6, 6)
	a, b := m.Addr(2, 5), m.Addr(3, 0)
	if !m.DimOrderLess(a, b) {
		t.Fatal("(2,5) should precede (3,0): x is most significant")
	}
	if !m.DimOrderLess(m.Addr(2, 1), m.Addr(2, 4)) {
		t.Fatal("(2,1) should precede (2,4)")
	}
}

// TestDimOrderIsStrictTotalOrder property-checks irreflexivity,
// asymmetry and totality.
func TestDimOrderIsStrictTotalOrder(t *testing.T) {
	m := New2D(16, 16)
	f := func(ar, br uint8) bool {
		a, b := int(ar), int(br)
		la, lb := m.DimOrderLess(a, b), m.DimOrderLess(b, a)
		if a == b {
			return !la && !lb
		}
		return la != lb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// xyPath returns the link channels (excluding inject/eject) of the XY
// route between a and b.
func xyPath(m *Mesh, a, b int) []wormhole.ChannelID {
	p := wormhole.PathChannels(m, wormhole.NodeID(a), wormhole.NodeID(b))
	return p[1 : len(p)-1]
}

// TestRoutePathShape: the XY path has exactly Distance link hops, begins
// with the injection channel and ends with the ejection channel.
func TestRoutePathShape(t *testing.T) {
	m := New2D(8, 8)
	for a := 0; a < 64; a += 5 {
		for b := 0; b < 64; b += 7 {
			p := wormhole.PathChannels(m, wormhole.NodeID(a), wormhole.NodeID(b))
			if p[0] != m.InjectChannel(wormhole.NodeID(a)) {
				t.Fatalf("%d->%d: path does not start at injection", a, b)
			}
			if p[len(p)-1] != m.EjectChannel(wormhole.NodeID(b)) {
				t.Fatalf("%d->%d: path does not end at ejection", a, b)
			}
			if got, want := len(p)-2, m.Distance(a, b); got != want {
				t.Fatalf("%d->%d: %d link hops, want %d", a, b, got, want)
			}
		}
	}
}

// TestRouteXFirst: XY routing corrects dimension 0 completely before
// dimension 1 — the path visits (bx, ay) as an intermediate router.
func TestRouteXFirst(t *testing.T) {
	m := New2D(8, 8)
	a, b := m.Addr(1, 2), m.Addr(5, 6)
	p := xyPath(m, a, b)
	// The first |bx-ax| hops must all be X-dimension links from row ay.
	for i := 0; i < 4; i++ {
		u := m.Addr(1+i, 2)
		want := m.LinkChannel(u, 0, 1)
		if p[i] != want {
			t.Fatalf("hop %d = %s, want %s", i, m.DescribeChannel(p[i]), m.DescribeChannel(want))
		}
	}
	// Remaining hops climb column bx.
	for i := 0; i < 4; i++ {
		u := m.Addr(5, 2+i)
		want := m.LinkChannel(u, 1, 1)
		if p[4+i] != want {
			t.Fatalf("hop %d = %s, want %s", 4+i, m.DescribeChannel(p[4+i]), m.DescribeChannel(want))
		}
	}
}

// TestRouteDeterministicSinglePath: Route always returns exactly one
// candidate (oblivious routing).
func TestRouteDeterministicSinglePath(t *testing.T) {
	m := New2D(6, 6)
	var buf []wormhole.ChannelID
	for a := 0; a < 36; a++ {
		for b := 0; b < 36; b++ {
			buf = m.Route(m.InjectChannel(wormhole.NodeID(a)), wormhole.NodeID(a), wormhole.NodeID(b), buf[:0])
			if len(buf) != 1 {
				t.Fatalf("Route returned %d candidates", len(buf))
			}
		}
	}
}

// TestRouteToSelf: routing from a node's injection channel to itself
// yields the ejection channel immediately.
func TestRouteToSelf(t *testing.T) {
	m := New2D(4, 4)
	var buf []wormhole.ChannelID
	for u := 0; u < 16; u++ {
		n := wormhole.NodeID(u)
		buf = m.Route(m.InjectChannel(n), n, n, buf[:0])
		if len(buf) != 1 || buf[0] != m.EjectChannel(n) {
			t.Fatalf("self-route of %d = %v", u, buf)
		}
	}
}

// TestChannelIDsDense: all channels are distinct and in [0, NumChannels).
func TestChannelIDsDense(t *testing.T) {
	m := New2D(5, 4)
	seen := make(map[wormhole.ChannelID]bool)
	record := func(c wormhole.ChannelID) {
		if c == wormhole.NoChannel {
			return
		}
		if c < 0 || int(c) >= m.NumChannels() {
			t.Fatalf("channel %d outside [0,%d)", c, m.NumChannels())
		}
		if seen[c] {
			t.Fatalf("channel %d assigned twice", c)
		}
		seen[c] = true
	}
	for u := 0; u < m.NumNodes(); u++ {
		record(m.InjectChannel(wormhole.NodeID(u)))
		record(m.EjectChannel(wormhole.NodeID(u)))
		for d := 0; d < 2; d++ {
			for s := 0; s < 2; s++ {
				record(m.LinkChannel(u, d, s))
			}
		}
	}
	if len(seen) != m.NumChannels() {
		t.Fatalf("enumerated %d channels, NumChannels=%d", len(seen), m.NumChannels())
	}
}

// TestEdgeNodesLackOutwardLinks: border nodes have NoChannel toward the
// outside.
func TestEdgeNodesLackOutwardLinks(t *testing.T) {
	m := New2D(4, 4)
	if m.LinkChannel(m.Addr(0, 2), 0, 0) != wormhole.NoChannel {
		t.Error("west link exists at west edge")
	}
	if m.LinkChannel(m.Addr(3, 2), 0, 1) != wormhole.NoChannel {
		t.Error("east link exists at east edge")
	}
	if m.LinkChannel(m.Addr(2, 0), 1, 0) != wormhole.NoChannel {
		t.Error("south link exists at south edge")
	}
	if m.LinkChannel(m.Addr(2, 3), 1, 1) != wormhole.NoChannel {
		t.Error("north link exists at north edge")
	}
	if m.LinkChannel(m.Addr(1, 1), 0, 0) == wormhole.NoChannel {
		t.Error("interior node missing a link")
	}
}

// TestDirectionLemma is the contention lemma OPT-mesh and U-mesh rest on,
// checked exhaustively on a 5x5 mesh: take any two disjoint intervals of
// the dimension-ordered chain, a message within the lower interval and one
// within the upper. The paths are channel-disjoint in every direction
// combination EXCEPT (lower ascending, upper descending) — and that
// combination is the one the send-to-nearest-end recursion provably never
// produces concurrently.
func TestDirectionLemma(t *testing.T) {
	m := New2D(5, 5)
	n := m.NumNodes()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return m.DimOrderLess(order[i], order[j]) })

	share := func(a1, b1, a2, b2 int) bool {
		p1 := xyPath(m, a1, b1)
		used := make(map[wormhole.ChannelID]bool, len(p1))
		for _, c := range p1 {
			used[c] = true
		}
		for _, c := range xyPath(m, a2, b2) {
			if used[c] {
				return true
			}
		}
		return false
	}

	sawBadCombo := false
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			for k := j + 1; k < n; k += 2 {
				for l := k + 1; l < n; l += 2 {
					lo1, hi1 := order[i], order[j]
					lo2, hi2 := order[k], order[l]
					if share(lo1, hi1, lo2, hi2) {
						t.Fatalf("asc/asc: %d->%d vs %d->%d share a channel", lo1, hi1, lo2, hi2)
					}
					if share(hi1, lo1, lo2, hi2) {
						t.Fatalf("desc/asc: %d->%d vs %d->%d share a channel", hi1, lo1, lo2, hi2)
					}
					if share(hi1, lo1, hi2, lo2) {
						t.Fatalf("desc/desc: %d->%d vs %d->%d share a channel", hi1, lo1, hi2, lo2)
					}
					if share(lo1, hi1, hi2, lo2) {
						sawBadCombo = true
					}
				}
			}
		}
	}
	if !sawBadCombo {
		t.Fatal("expected at least one collision in the (lower asc, upper desc) combination; the lemma test is vacuous")
	}
}

func TestDescribeChannel(t *testing.T) {
	m := New2D(3, 3)
	if s := m.DescribeChannel(m.InjectChannel(0)); s == "" {
		t.Error("empty inject description")
	}
	if s := m.DescribeChannel(m.EjectChannel(8)); s == "" {
		t.Error("empty eject description")
	}
	if s := m.DescribeChannel(m.LinkChannel(0, 0, 1)); s == "" {
		t.Error("empty link description")
	}
	if s := m.DescribeChannel(wormhole.NoChannel); s != "none" {
		t.Errorf("NoChannel described as %q", s)
	}
}

// TestOneDimensionalMesh: a 1-D mesh (a linear array) routes along the
// single dimension.
func TestOneDimensionalMesh(t *testing.T) {
	m := New(8)
	p := wormhole.PathChannels(m, 0, 7)
	if len(p) != 9 { // inject + 7 hops + eject
		t.Fatalf("path length %d, want 9", len(p))
	}
}
