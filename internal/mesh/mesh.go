// Package mesh implements n-dimensional mesh topologies with
// dimension-ordered (e-cube / XY) wormhole routing, and the
// dimension-ordered chain relation <_d that the U-mesh and OPT-mesh
// algorithms sort nodes by.
//
// Addressing is mixed-radix with dimension 0 varying fastest: in a 2-D
// W×H mesh, node (x, y) has address x + W*y. Routing resolves dimension 0
// first (the "X" of XY routing).
//
// The dimension order <_d compares coordinates with the FIRST-ROUTED
// dimension most significant (here dimension 0, so 2-D nodes sort by
// (x, y)). This pairing between routing order and chain order is what the
// contention-freedom of U-mesh and OPT-mesh rests on: with it, the only
// channel-sharing combination of concurrent chain-directed messages —
// a lower-segment message ascending the chain while an upper-segment
// message descends toward it — is exactly the combination the
// send-to-nearest-end recursion can never produce (ascending senders are
// always at or above the multicast source, descending senders at or below
// it). The paper writes <_d with δ_(n-1) most significant and resolves
// δ_(n-1) first in its e-cube routing; our implementation re-indexes the
// dimensions but preserves the pairing. The tests verify both the
// direction lemma and end-to-end zero-contention runs.
package mesh

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/wormhole"
)

// Mesh is an n-dimensional mesh fabric.
//
// Channel layout (IDs dense from 0):
//
//	[0, N)         injection channels, one per node
//	[N, 2N)        ejection channels, one per node
//	[2N, ...)      directed inter-router links: for node u, dimension d,
//	               direction s (0 = toward lower coordinate, 1 = higher),
//	               the link from u to its neighbour, where it exists.
type Mesh struct {
	dims   []int
	n      int
	stride []int // stride[d] = product of dims[0..d-1]

	link []wormhole.ChannelID // [u*2D + d*2 + s] -> channel or NoChannel
	// chanSrc/chanDst give the routers at the ends of link channel
	// c-2N (upstream, downstream).
	chanSrc  []wormhole.NodeID
	chanDst  []wormhole.NodeID
	numChans int
}

// New constructs a mesh with the given side lengths (at least one
// dimension, each side >= 1). It panics on invalid dimensions or when
// the fabric would overflow the int32 NodeID/ChannelID address space;
// TryNew returns the error instead.
func New(dims ...int) *Mesh {
	m, err := TryNew(dims...)
	if err != nil {
		panic(err)
	}
	return m
}

// TryNew is New returning an error instead of panicking. Node and
// channel counts are computed in int64 and validated against
// math.MaxInt32 *before* any allocation is sized from them, so a fabric
// request that would silently wrap the int32 NodeID/ChannelID space (or
// attempt a wrapped-size allocation) fails fast with a descriptive
// error.
func TryNew(dims ...int) (*Mesh, error) {
	if len(dims) == 0 {
		return nil, errors.New("mesh: need at least one dimension")
	}
	n64 := int64(1)
	stride := make([]int, len(dims))
	for d, s := range dims {
		if s < 1 {
			return nil, fmt.Errorf("mesh: dimension %d has side %d < 1", d, s)
		}
		stride[d] = int(n64)
		if int64(s) > math.MaxInt32 || n64 > math.MaxInt32/int64(s) {
			return nil, fmt.Errorf("mesh: dimensions %v give more than %d nodes, overflowing the int32 NodeID space", dims, math.MaxInt32)
		}
		n64 *= int64(s)
	}
	// Channels: one inject + one eject per node, plus the directed
	// inter-router links — dimension d contributes 2·(n/s)·(s-1) of them.
	chans64 := 2 * n64
	for _, s := range dims {
		chans64 += 2 * (n64 / int64(s)) * int64(s-1)
	}
	if chans64 > math.MaxInt32 {
		return nil, fmt.Errorf("mesh: dimensions %v give %d channels, overflowing the int32 ChannelID space (max %d)", dims, chans64, math.MaxInt32)
	}
	n := int(n64)
	m := &Mesh{
		dims:   append([]int(nil), dims...),
		n:      n,
		stride: stride,
		link:   make([]wormhole.ChannelID, n*2*len(dims)),
	}
	for i := range m.link {
		m.link[i] = wormhole.NoChannel
	}
	next := wormhole.ChannelID(2 * n) // after inject + eject blocks
	for u := 0; u < n; u++ {
		for d := range dims {
			for s := 0; s < 2; s++ {
				v, ok := m.neighbor(u, d, s)
				if !ok {
					continue
				}
				m.link[m.linkIdx(u, d, s)] = next
				m.chanSrc = append(m.chanSrc, wormhole.NodeID(u))
				m.chanDst = append(m.chanDst, wormhole.NodeID(v))
				next++
			}
		}
	}
	m.numChans = int(next)
	return m, nil
}

// New2D is shorthand for New(w, h), the paper's mesh configuration.
func New2D(w, h int) *Mesh { return New(w, h) }

// NewHypercube builds a dim-dimensional binary hypercube as a mesh with
// side length 2 in every dimension. Dimension-ordered routing on it is
// the classic deadlock-free e-cube routing, and the dimension-ordered
// chain makes the same recursion contention-free — the setting of
// McKinley et al.'s original U-cube algorithm, and a third fabric on
// which the paper's "any network partitionable into contention-free
// clusters" claim is exercised.
//
// Note the chain order: with dimension 0 most significant, <_d sorts
// hypercube nodes by the bit-reversal of their address. The tests verify
// contention-freedom does not care, as long as the pairing between chain
// significance and routing resolution order is preserved.
func NewHypercube(dim int) *Mesh {
	if dim < 1 {
		panic(fmt.Sprintf("mesh: NewHypercube dim=%d < 1", dim))
	}
	dims := make([]int, dim)
	for i := range dims {
		dims[i] = 2
	}
	return New(dims...)
}

func (m *Mesh) linkIdx(u, d, s int) int { return u*2*len(m.dims) + d*2 + s }

func (m *Mesh) neighbor(u, d, s int) (int, bool) {
	c := m.coord(u, d)
	if s == 0 {
		if c == 0 {
			return 0, false
		}
		return u - m.stride[d], true
	}
	if c == m.dims[d]-1 {
		return 0, false
	}
	return u + m.stride[d], true
}

// coord returns coordinate d of node u.
func (m *Mesh) coord(u, d int) int { return (u / m.stride[d]) % m.dims[d] }

// Dims returns the side lengths.
func (m *Mesh) Dims() []int { return append([]int(nil), m.dims...) }

// Coords returns all coordinates of a node address.
func (m *Mesh) Coords(u int) []int {
	cs := make([]int, len(m.dims))
	for d := range m.dims {
		cs[d] = m.coord(u, d)
	}
	return cs
}

// Addr returns the address of the node at the given coordinates.
func (m *Mesh) Addr(coords ...int) int {
	if len(coords) != len(m.dims) {
		panic(fmt.Sprintf("mesh: Addr got %d coordinates for %d dimensions", len(coords), len(m.dims)))
	}
	a := 0
	for d, c := range coords {
		if c < 0 || c >= m.dims[d] {
			panic(fmt.Sprintf("mesh: coordinate %d out of range [0,%d) in dimension %d", c, m.dims[d], d))
		}
		a += c * m.stride[d]
	}
	return a
}

// Distance returns the Manhattan hop count between two nodes.
func (m *Mesh) Distance(a, b int) int {
	d := 0
	for dim := range m.dims {
		ca, cb := m.coord(a, dim), m.coord(b, dim)
		if ca > cb {
			d += ca - cb
		} else {
			d += cb - ca
		}
	}
	return d
}

// DimOrderLess is the strict part of the dimension order <_d used to sort
// multicast chains: coordinates compared lexicographically with the
// first-routed dimension (dimension 0) most significant. For a 2-D mesh
// nodes sort by (x, y). See the package comment for why the chain's most
// significant dimension must be the routing's first dimension.
func (m *Mesh) DimOrderLess(a, b int) bool {
	for d := 0; d < len(m.dims); d++ {
		ca, cb := m.coord(a, d), m.coord(b, d)
		if ca != cb {
			return ca < cb
		}
	}
	return false
}

// ChainKey returns an integer whose natural order equals <_d, convenient
// for sorting and for tests: the mixed-radix value with dimension 0 most
// significant.
func (m *Mesh) ChainKey(u int) int {
	k := 0
	for d := 0; d < len(m.dims); d++ {
		k = k*m.dims[d] + m.coord(u, d)
	}
	return k
}

// NumNodes implements wormhole.Topology.
func (m *Mesh) NumNodes() int { return m.n }

// NumChannels implements wormhole.Topology.
func (m *Mesh) NumChannels() int { return m.numChans }

// InjectChannel implements wormhole.Topology.
func (m *Mesh) InjectChannel(u wormhole.NodeID) wormhole.ChannelID {
	return wormhole.ChannelID(u)
}

// EjectChannel implements wormhole.Topology.
func (m *Mesh) EjectChannel(u wormhole.NodeID) wormhole.ChannelID {
	return wormhole.ChannelID(int(u) + m.n)
}

// LinkChannel returns the directed link from u toward its neighbour in
// dimension d, direction s (0 down, 1 up), or NoChannel at the mesh edge.
func (m *Mesh) LinkChannel(u, d, s int) wormhole.ChannelID {
	return m.link[m.linkIdx(u, d, s)]
}

// routerAt returns the router where a header sitting at the downstream
// end of channel c is located.
func (m *Mesh) routerAt(c wormhole.ChannelID) wormhole.NodeID {
	ci := int(c)
	switch {
	case ci < m.n: // injection channel of node ci
		return wormhole.NodeID(ci)
	case ci < 2*m.n:
		panic("mesh: routing from an ejection channel")
	default:
		return m.chanDst[ci-2*m.n]
	}
}

// Route implements wormhole.Topology with deterministic dimension-ordered
// (e-cube) routing: correct the lowest differing dimension first. For a
// 2-D mesh this is exactly XY routing. A single candidate is returned —
// the routing is oblivious, one path per (src, dst) pair.
func (m *Mesh) Route(cur wormhole.ChannelID, src, dst wormhole.NodeID, buf []wormhole.ChannelID) []wormhole.ChannelID {
	here := m.routerAt(cur)
	if here == dst {
		return append(buf, m.EjectChannel(dst))
	}
	u, v := int(here), int(dst)
	for d := 0; d < len(m.dims); d++ {
		cu, cv := m.coord(u, d), m.coord(v, d)
		if cu == cv {
			continue
		}
		s := 0
		if cv > cu {
			s = 1
		}
		return append(buf, m.link[m.linkIdx(u, d, s)])
	}
	panic("mesh: unreachable — here != dst but all coordinates equal")
}

// RouteDegraded implements wormhole.FaultRouter with minimal-adaptive
// detours: the e-cube candidate keeps absolute preference — while it is
// live it is returned alone, so a fabric whose faults miss this path
// routes exactly as Route does — and only when it is dead are the other
// differing dimensions' minimal-direction links offered (in dimension
// order). Every fallback still moves strictly closer to dst, so detoured
// worms cannot livelock; the price of abandoning strict dimension order
// is that adaptive minimal routing can in principle deadlock under
// extreme contention, which the run watchdog (mcastsim) turns into a
// diagnosable error rather than a hang. An empty result means every
// minimal direction out of this router is dead: dst is unreachable.
func (m *Mesh) RouteDegraded(cur wormhole.ChannelID, src, dst wormhole.NodeID, dead func(wormhole.ChannelID) bool, buf []wormhole.ChannelID) []wormhole.ChannelID {
	here := m.routerAt(cur)
	if here == dst {
		if e := m.EjectChannel(dst); !dead(e) {
			return append(buf, e)
		}
		return buf
	}
	u, v := int(here), int(dst)
	for d := 0; d < len(m.dims); d++ {
		cu, cv := m.coord(u, d), m.coord(v, d)
		if cu == cv {
			continue
		}
		s := 0
		if cv > cu {
			s = 1
		}
		if c := m.link[m.linkIdx(u, d, s)]; !dead(c) {
			return append(buf, c)
		}
		// The e-cube candidate is dead: fall back to the remaining
		// differing dimensions' minimal links.
		for d2 := d + 1; d2 < len(m.dims); d2++ {
			cu2, cv2 := m.coord(u, d2), m.coord(v, d2)
			if cu2 == cv2 {
				continue
			}
			s2 := 0
			if cv2 > cu2 {
				s2 = 1
			}
			if c := m.link[m.linkIdx(u, d2, s2)]; !dead(c) {
				buf = append(buf, c)
			}
		}
		return buf
	}
	panic("mesh: unreachable — here != dst but all coordinates equal")
}

// DescribeChannel implements wormhole.Topology.
func (m *Mesh) DescribeChannel(c wormhole.ChannelID) string {
	ci := int(c)
	switch {
	case ci < 0:
		return "none"
	case ci < m.n:
		return fmt.Sprintf("inject(%v)", m.Coords(ci))
	case ci < 2*m.n:
		return fmt.Sprintf("eject(%v)", m.Coords(ci-m.n))
	default:
		i := ci - 2*m.n
		return fmt.Sprintf("link(%v->%v)", m.Coords(int(m.chanSrc[i])), m.Coords(int(m.chanDst[i])))
	}
}

var (
	_ wormhole.Topology    = (*Mesh)(nil)
	_ wormhole.FaultRouter = (*Mesh)(nil)
)
