package mesh

import (
	"reflect"
	"testing"

	"repro/internal/wormhole"
)

func noDead(wormhole.ChannelID) bool { return false }

func deadSet(chans ...wormhole.ChannelID) func(wormhole.ChannelID) bool {
	m := map[wormhole.ChannelID]bool{}
	for _, c := range chans {
		m[c] = true
	}
	return func(c wormhole.ChannelID) bool { return m[c] }
}

// TestRouteDegradedHealthyEqualsRoute is the healthy-path invariant: with
// no dead channels, RouteDegraded must return exactly Route's candidate
// set at every hop of every (src, dst) walk, so installing a fault model
// that happens to miss a path cannot perturb it.
func TestRouteDegradedHealthyEqualsRoute(t *testing.T) {
	m := New2D(6, 5)
	for s := 0; s < m.NumNodes(); s++ {
		for d := 0; d < m.NumNodes(); d++ {
			if s == d {
				continue
			}
			src, dst := wormhole.NodeID(s), wormhole.NodeID(d)
			cur := m.InjectChannel(src)
			for hops := 0; ; hops++ {
				if hops > 2*m.NumNodes() {
					t.Fatalf("%d->%d: walk did not terminate", s, d)
				}
				want := m.Route(cur, src, dst, nil)
				got := m.RouteDegraded(cur, src, dst, noDead, nil)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%d->%d at %s: RouteDegraded %v != Route %v",
						s, d, m.DescribeChannel(cur), got, want)
				}
				if want[0] == m.EjectChannel(dst) {
					break
				}
				cur = want[0]
			}
		}
	}
}

// TestRouteDegradedDetourDelivers kills the e-cube first hop and checks
// the fallback still delivers minimally: the detour offers the other
// differing dimension, every step moves strictly closer, and the walk
// ends at dst's eject channel in exactly the minimal hop count.
func TestRouteDegradedDetourDelivers(t *testing.T) {
	m := New2D(8, 8)
	src, dst := wormhole.NodeID(0), wormhole.NodeID(8*3+5) // (0,0) -> (5,3)
	pref := m.Route(m.InjectChannel(src), src, dst, nil)
	if len(pref) != 1 {
		t.Fatalf("e-cube routing returned %d candidates", len(pref))
	}
	dead := deadSet(pref[0])

	cur := m.InjectChannel(src)
	manhattan := 5 + 3
	for hop := 0; ; hop++ {
		if hop > manhattan {
			t.Fatalf("detoured walk exceeded the minimal %d hops", manhattan)
		}
		cands := m.RouteDegraded(cur, src, dst, dead, nil)
		if len(cands) == 0 {
			t.Fatalf("unreachable after killing one of two minimal directions at %s", m.DescribeChannel(cur))
		}
		for _, c := range cands {
			if dead(c) {
				t.Fatalf("RouteDegraded offered dead channel %s", m.DescribeChannel(c))
			}
		}
		if cands[0] == m.EjectChannel(dst) {
			if hop != manhattan {
				t.Fatalf("delivered in %d hops, want minimal %d", hop, manhattan)
			}
			break
		}
		cur = cands[0]
	}
}

// TestRouteDegradedUnreachable exhausts the candidate sets at the source
// router: killing everything RouteDegraded offers, round after round,
// must reach the empty set (the unreachable verdict) after the two
// minimal directions, never offering a dead channel along the way.
func TestRouteDegradedUnreachable(t *testing.T) {
	m := New2D(8, 8)
	src, dst := wormhole.NodeID(0), wormhole.NodeID(8*7+7)
	killed := map[wormhole.ChannelID]bool{}
	dead := func(c wormhole.ChannelID) bool { return killed[c] }
	cur := m.InjectChannel(src)
	for round := 0; ; round++ {
		if round > 4 {
			t.Fatal("candidate sets did not exhaust")
		}
		cands := m.RouteDegraded(cur, src, dst, dead, nil)
		if len(cands) == 0 {
			if round < 2 {
				t.Fatalf("unreachable after only %d rounds; both minimal directions should be offered", round)
			}
			return
		}
		for _, c := range cands {
			if killed[c] {
				t.Fatalf("round %d offered already-dead %s", round, m.DescribeChannel(c))
			}
			killed[c] = true
		}
	}
}

// TestRouteDegradedDeadEject: a dead ejection channel at the destination
// router yields the empty set, not a panic — the worm is unreachable one
// hop from home.
func TestRouteDegradedDeadEject(t *testing.T) {
	m := New2D(4, 4)
	dst := wormhole.NodeID(5)
	got := m.RouteDegraded(m.InjectChannel(dst), dst, dst, deadSet(m.EjectChannel(dst)), nil)
	if len(got) != 0 {
		t.Fatalf("dead eject channel still routed: %v", got)
	}
}
