package mesh

import (
	"strings"
	"testing"
)

// TestTryNewOverflow pins the int32 address-space guards: node and
// channel counts are validated in int64 before any allocation is sized
// from them, so a fabric request that used to wrap silently (or attempt
// a multi-GB allocation) now fails fast with a descriptive error.
func TestTryNewOverflow(t *testing.T) {
	// 2^32 nodes: overflows the NodeID space outright.
	if _, err := TryNew(1<<16, 1<<16); err == nil || !strings.Contains(err.Error(), "NodeID") {
		t.Fatalf("TryNew(65536, 65536) = %v, want NodeID overflow error", err)
	}
	// 1.6e9 nodes fit an int32, but the ~11.2e9 channels do not.
	if _, err := TryNew(40000, 40000); err == nil || !strings.Contains(err.Error(), "ChannelID") {
		t.Fatalf("TryNew(40000, 40000) = %v, want ChannelID overflow error", err)
	}
	// Absurd single dimension: must not wrap int64 either.
	if _, err := TryNew(1<<40, 1<<40); err == nil {
		t.Fatal("TryNew(2^40, 2^40) accepted")
	}
	// Bad dimensions still produce the classic errors.
	if _, err := TryNew(); err == nil {
		t.Fatal("TryNew() accepted")
	}
	if _, err := TryNew(4, 0); err == nil {
		t.Fatal("TryNew(4, 0) accepted")
	}
	// A comfortably valid fabric constructs.
	m, err := TryNew(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 4096 {
		t.Fatalf("NumNodes() = %d, want 4096", m.NumNodes())
	}
}

// TestNewPanicsOnOverflow pins that the panicking constructor reports
// the same descriptive error.
func TestNewPanicsOnOverflow(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New(65536, 65536) did not panic")
		}
		if err, ok := r.(error); !ok || !strings.Contains(err.Error(), "NodeID") {
			t.Fatalf("panic value %v, want NodeID overflow error", r)
		}
	}()
	New(1<<16, 1<<16)
}
