package exp

// Experiment F5: dynamic membership under churn. F2 showed recovery
// completing on statically degraded fabrics; F5 runs the reliable
// multicast while the membership itself moves — seeded join/leave/
// crash/rejoin schedules (internal/member) whose crash windows are
// compiled into the fault plan — and compares the three repair
// policies: full re-planning, incremental graft/excise repair, and the
// binomial-over-survivors fallback. The headline relation is the
// tentpole's acceptance bar: incremental repair delivers no smaller a
// fraction of the surviving membership than full re-planning at every
// churn rate while issuing strictly fewer repair sends.

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/fault"
	"repro/internal/member"
	"repro/internal/model"
	recov "repro/internal/recover"
	"repro/internal/runner"
	"repro/internal/sim"
)

// F5 scenario shape, shared by every cell so schedules stay comparable
// across policies: the joiner pool next to k initial members, the
// schedule horizon, the crash-window length and the rejoin probability.
const (
	churnPoolFrac   = 4     // pool size = max(2, k/churnPoolFrac)
	churnHorizon    = 65536 // cycles of scheduled churn
	churnDownCycles = 4096  // crash outage window
	churnRejoinFrac = 0.5   // fraction of crashes that rejoin
)

// F5Tables bundles the three views of experiment F5 over one sweep.
type F5Tables struct {
	// Latency is completion latency (last delivery among the members
	// still subscribed and alive at quiesce) vs churn rate.
	Latency *Table
	// Delivered is the delivered fraction of the surviving membership
	// (percent) next to the membership-and-fault-reachability oracle
	// ceiling per fabric; under pure node churn the engine's contract
	// is exact equality with the oracle.
	Delivered *Table
	// Repair is the repair traffic per run: the sends issued by subtree
	// re-planning after excision (grafts and orphan re-assignments are
	// reported in the notes, not here — they are common to all
	// policies; repair sends are where the policies differ).
	Repair *Table
}

// churnPool returns the joiner-pool size for k initial members.
func churnPool(k int) int {
	if p := k / churnPoolFrac; p > 2 {
		return p
	}
	return 2
}

// policyID is the canonical cache label of a repair policy.
func policyID(p recov.RepairPolicy) string {
	switch p {
	case recov.RepairIncremental:
		return "incr"
	case recov.RepairBinomial:
		return "binom"
	default:
		return "full"
	}
}

// churnCell builds the engine cell for one churned reliable multicast:
// k initial members plus a joiner pool placed by the trial, a churn
// schedule drawn at rate events/Mcycle from schedSeed, crashes compiled
// into the fault plan, and the membership engine run under the given
// repair policy. The schedule seed is shared across policies of the
// same (rate, trial), so the policies face identical churn.
func (s *Suite) churnCell(a Algorithm, policy recov.RepairPolicy, k, bytes, trial, rate int,
	schedSeed, recSeed uint64, thold, tend model.Time) runner.Cell {
	pool := churnPool(k)
	return runner.Cell{
		Key: runner.Key{
			Mode: "churn", Platform: s.Platform.Name, Algo: a.keyID(), Soft: s.softKey(),
			K: k, Bytes: bytes, X: rate, Trial: trial, Seed: s.Seed, AddrBytes: s.AddrBytes,
			THold: thold, TEnd: tend, FaultSeed: schedSeed, RecSeed: recSeed,
			Extra: fmt.Sprintf("policy=%s|pool=%d|horizon=%d|rejoin=%g|down=%d",
				policyID(policy), pool, churnHorizon, churnRejoinFrac, churnDownCycles),
		},
		Run: func() (runner.Result, error) {
			addrs := s.placement(trial, k+pool)
			members, joiners := addrs[:k], addrs[k:]
			sched, err := member.GenSchedule(member.ChurnSpec{
				RatePerMcycle: float64(rate),
				Horizon:       churnHorizon,
				RejoinFrac:    churnRejoinFrac,
				DownCycles:    churnDownCycles,
				Seed:          schedSeed,
			}, members, joiners)
			if err != nil {
				return runner.Result{}, err
			}
			net := s.Platform.NewNet()
			fp, err := fault.NewPlan(net.Topology(), fault.Spec{NodeOutages: sched.Outages})
			if err != nil {
				return runner.Result{}, err
			}
			net.SetFaults(fp)
			ch := chain.New(addrs, s.Platform.Less)
			tab := a.Table(len(ch), thold, tend)
			res, err := member.Run(net, tab, ch, sched, bytes, member.Config{
				Sim:    s.runConfig(),
				TEnd:   tend,
				Repair: policy,
				Seed:   recSeed,
			})
			if err != nil {
				return runner.Result{}, err
			}
			fallback := 0.0
			if res.FallbackAt >= 0 {
				fallback = 1
			}
			// Delivered fraction and the oracle ceiling over the same
			// denominator: the non-source members still subscribed and
			// alive at quiesce. A fully churned-away group (contract 0)
			// is vacuously complete.
			contract := res.Delivered + res.Undelivered
			frac, reach := 100.0, 100.0
			if contract > 0 {
				frac = 100 * float64(res.Delivered) / float64(contract)
				n := 0 // oracle positions, source included
				for _, ok := range res.Oracle {
					if ok {
						n++
					}
				}
				reach = 100 * float64(n-1) / float64(contract)
			}
			oh := res.Overhead
			return runner.Result{Metrics: map[string]float64{
				"latency":     float64(res.Latency),
				"delivered":   frac,
				"reach":       reach,
				"repairsends": float64(oh.RepairSends),
				"grafts":      float64(res.Grafts),
				"orphans":     float64(oh.OrphanSends),
				"retransmits": float64(oh.Retransmits),
				"events":      float64(res.Events),
				"fallback":    fallback,
			}}, nil
		},
	}
}

// ChurnSweep runs experiment F5: reliable multicast under membership
// churn at each rate in rates (events per million cycles), with the
// three repair policies on both reference machines. Churn schedules use
// the same per-(row, trial) seed formula as the fault sweeps, and the
// same schedule seed is shared by all policy columns of a suite, so the
// policies are compared on identical event sequences.
func ChurnSweep(meshSuite, bminSuite *Suite, k, bytes int, rates []int, churnSeed uint64) (*F5Tables, error) {
	for _, r := range rates {
		if r < 0 {
			return nil, fmt.Errorf("exp: churn rate %d must be >= 0 events/Mcycle", r)
		}
	}
	type column struct {
		suite  *Suite
		algo   Algorithm
		policy recov.RepairPolicy
		name   string
	}
	cols := []column{
		{meshSuite, Opt("OPT-mesh"), recov.RepairFull, "full (mesh)"},
		{meshSuite, Opt("OPT-mesh"), recov.RepairIncremental, "incremental (mesh)"},
		{meshSuite, Opt("OPT-mesh"), recov.RepairBinomial, "binomial (mesh)"},
		{bminSuite, Opt("OPT-min"), recov.RepairFull, "full (BMIN)"},
		{bminSuite, Opt("OPT-min"), recov.RepairIncremental, "incremental (BMIN)"},
		{bminSuite, Opt("OPT-min"), recov.RepairBinomial, "binomial (BMIN)"},
	}
	trials := meshSuite.Trials
	if trials <= 0 {
		trials = 16
	}

	newTable := func(title, ylabel string, algos []string) *Table {
		return &Table{
			Title:      title,
			XLabel:     "churn rate (events/Mcycle)",
			YLabel:     ylabel,
			Algorithms: algos,
		}
	}
	algoNames := make([]string, len(cols))
	for i, c := range cols {
		algoNames[i] = c.name
	}
	f5 := &F5Tables{
		Latency: newTable(
			fmt.Sprintf("F5a: completion latency under churn vs churn rate (k=%d, %d-byte messages)", k, bytes),
			"completion latency (cycles, mean over all runs)", algoNames),
		Delivered: newTable(
			fmt.Sprintf("F5b: delivered fraction under churn vs churn rate (k=%d, %d-byte messages)", k, bytes),
			"surviving members delivered (%, vs membership-reachability oracle)",
			append(append([]string{}, algoNames...), "reachable (mesh)", "reachable (BMIN)")),
		Repair: newTable(
			fmt.Sprintf("F5c: repair sends under churn vs churn rate (k=%d, %d-byte messages)", k, bytes),
			"repair sends per run (mean; excision re-plans only)", algoNames),
	}

	// Healthy-fabric calibration, once per suite: trees are planned for
	// the machine as specified, then churned underneath.
	tends := make([]model.Time, len(cols))
	for i, c := range cols {
		if i > 0 && cols[i-1].suite == c.suite {
			tends[i] = tends[i-1]
			continue
		}
		te, err := c.suite.MeasureTEnd(bytes)
		if err != nil {
			return nil, err
		}
		tends[i] = te
		note := fmt.Sprintf("healthy calibration on %s: t_hold(%dB)=%d t_end(%dB)=%d",
			c.suite.Platform.Name, bytes, c.suite.Software.Hold.At(bytes), bytes, te)
		f5.Latency.Notes = append(f5.Latency.Notes, note)
	}
	f5.Latency.Notes = append(f5.Latency.Notes,
		fmt.Sprintf("%d random placements per point, placement seed %d, churn seed %d; pool=%d horizon=%d rejoin=%g down=%d",
			trials, meshSuite.Seed, churnSeed, churnPool(k), churnHorizon, churnRejoinFrac, churnDownCycles))
	f5.Delivered.Notes = append(f5.Delivered.Notes,
		"reachable columns are the membership-and-fault oracle (member.ReachableAmong) on the same schedules;",
		"delivered == reachable under pure node churn is the engine's quiesce contract")

	type job struct{ ri, ci, trial int }
	var jobs []job
	var cells []runner.Cell
	for ri, rate := range rates {
		for ci, c := range cols {
			for tr := 0; tr < trials; tr++ {
				jobs = append(jobs, job{ri, ci, tr})
				schedSeed := faultPlanSeed(churnSeed, ri, tr)
				cells = append(cells, c.suite.churnCell(c.algo, c.policy, k, bytes, tr, rate,
					schedSeed, schedSeed+uint64(ci)*0x9e3779b1,
					c.suite.Software.Hold.At(bytes), tends[ci]))
			}
		}
	}
	results, have, err := meshSuite.exec().Run(f5.Latency.Title, cells)
	if err != nil {
		return nil, err
	}
	if runner.Missing(have) > 0 {
		f5.Latency.Incomplete = true
		f5.Delivered.Incomplete = true
		f5.Repair.Incomplete = true
		return f5, nil
	}

	type agg struct {
		lat, frac, rep  sim.Stats
		grafts, orphans sim.Stats
		fallbacks       int
	}
	aggs := make([]agg, len(rates)*len(cols))
	oracle := make([]sim.Stats, len(rates)*2) // (row, suite) reachable fraction
	for i, j := range jobs {
		a := &aggs[j.ri*len(cols)+j.ci]
		res := &results[i]
		a.lat.Add(res.Metric("latency"))
		a.frac.Add(res.Metric("delivered"))
		a.rep.Add(res.Metric("repairsends"))
		a.grafts.Add(res.Metric("grafts"))
		a.orphans.Add(res.Metric("orphans"))
		if res.Metric("fallback") != 0 {
			a.fallbacks++
		}
		if j.ci == 0 || cols[j.ci-1].suite != cols[j.ci].suite {
			si := 0
			if cols[j.ci].suite != meshSuite {
				si = 1
			}
			oracle[j.ri*2+si].Add(res.Metric("reach"))
		}
	}
	f5.Latency.Rows = make([]Row, len(rates))
	f5.Delivered.Rows = make([]Row, len(rates))
	f5.Repair.Rows = make([]Row, len(rates))
	for ri, rate := range rates {
		latRow := Row{X: float64(rate), Cells: make([]Cell, len(cols))}
		delRow := Row{X: float64(rate), Cells: make([]Cell, len(cols)+2)}
		repRow := Row{X: float64(rate), Cells: make([]Cell, len(cols))}
		for ci := range cols {
			a := &aggs[ri*len(cols)+ci]
			latRow.Cells[ci] = Cell{Mean: a.lat.Mean(), CI95: a.lat.CI95(), N: a.lat.N()}
			delRow.Cells[ci] = Cell{Mean: a.frac.Mean(), CI95: a.frac.CI95(), N: a.frac.N()}
			repRow.Cells[ci] = Cell{Mean: a.rep.Mean(), CI95: a.rep.CI95(), N: a.rep.N()}
			if a.fallbacks > 0 {
				f5.Repair.Notes = append(f5.Repair.Notes, fmt.Sprintf("%s at %d events/Mcycle: %d/%d runs degraded to binomial over survivors",
					cols[ci].name, rate, a.fallbacks, trials))
			}
		}
		// Graft/orphan traffic is policy-independent by construction;
		// record it once per row from the first mesh column.
		a0 := &aggs[ri*len(cols)]
		f5.Repair.Notes = append(f5.Repair.Notes, fmt.Sprintf("at %d events/Mcycle (mesh, full): %.1f grafts, %.1f orphan sends per run",
			rate, a0.grafts.Mean(), a0.orphans.Mean()))
		for si := 0; si < 2; si++ {
			o := &oracle[ri*2+si]
			delRow.Cells[len(cols)+si] = Cell{Mean: o.Mean(), CI95: o.CI95(), N: o.N()}
		}
		f5.Latency.Rows[ri] = latRow
		f5.Delivered.Rows[ri] = delRow
		f5.Repair.Rows[ri] = repRow
	}
	return f5, nil
}
