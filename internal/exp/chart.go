package exp

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders the table's mean columns as an ASCII scatter/line chart
// resembling the paper's figures: x spans the row values, y the latency
// range, one letter per algorithm ('*' where series overlap). Useful for
// eyeballing crossovers directly in a terminal.
func (t *Table) Chart(width, height int) string {
	if len(t.Rows) == 0 || len(t.Algorithms) == 0 {
		return "(empty table)\n"
	}
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}

	minX, maxX := t.Rows[0].X, t.Rows[0].X
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, r := range t.Rows {
		if r.X < minX {
			minX = r.X
		}
		if r.X > maxX {
			maxX = r.X
		}
		for _, c := range r.Cells {
			if c.Mean < minY {
				minY = c.Mean
			}
			if c.Mean > maxY {
				maxY = c.Mean
			}
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, mark byte) {
		cx := int((x - minX) / (maxX - minX) * float64(width-1))
		cy := int((y - minY) / (maxY - minY) * float64(height-1))
		row := height - 1 - cy // y grows upward
		if grid[row][cx] != ' ' && grid[row][cx] != mark {
			grid[row][cx] = '*'
		} else {
			grid[row][cx] = mark
		}
	}
	for ai := range t.Algorithms {
		mark := byte('a' + ai%26)
		for _, r := range t.Rows {
			plot(r.X, r.Cells[ai].Mean, mark)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", t.Title, t.YLabel)
	yTop := fmt.Sprintf("%.0f", maxY)
	yBot := fmt.Sprintf("%.0f", minY)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", pad)
		if i == 0 {
			label = fmt.Sprintf("%*s", pad, yTop)
		}
		if i == height-1 {
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*s%*s\n", strings.Repeat(" ", pad), width/2, trimFloat(minX), width-width/2, trimFloat(maxX))
	fmt.Fprintf(&b, "%s  x: %s\n", strings.Repeat(" ", pad), t.XLabel)
	for ai, name := range t.Algorithms {
		fmt.Fprintf(&b, "%s  %c = %s\n", strings.Repeat(" ", pad), byte('a'+ai%26), name)
	}
	return b.String()
}
