package exp

// Determinism properties of the cell engine: however a sweep is
// executed — serial, sharded across n runs, cold or from a warm cache,
// interrupted and resumed, on either wormhole kernel — the merged table
// must be byte-identical to a serial cold run. These are the invariants
// CI's sharded figure smokes rely on.

import (
	"testing"

	"repro/internal/runner"
	"repro/internal/wormhole"
)

// engineSuite is an 8x8 mesh suite on the given kernel wired to ex.
func engineSuite(k wormhole.Kernel, ex *runner.Exec) *Suite {
	p := MeshPlatform(8, 8, wormhole.DefaultConfig())
	base := p.NewNet
	p.NewNet = func() *wormhole.Network {
		n := base()
		n.SetKernel(k)
		return n
	}
	s := DefaultSuite(p)
	s.Trials = 3
	s.Workers = 2
	s.Exec = ex
	return s
}

// sweep renders the reference sweep under the given kernel and exec.
func sweep(t *testing.T, k wormhole.Kernel, ex *runner.Exec) *Table {
	t.Helper()
	tab, err := engineSuite(k, ex).SweepSizes("d", 12, []int{256, 4096}, MeshAlgorithms())
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func openCache(t *testing.T, dir string) *runner.Cache {
	t.Helper()
	c, err := runner.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestShardedSweepBitIdentical: splitting a sweep across k shard runs
// with a shared cache, then merging, reproduces the serial cold table
// byte for byte, and the merge recomputes nothing.
func TestShardedSweepBitIdentical(t *testing.T) {
	for _, kernel := range []wormhole.Kernel{wormhole.KernelFast, wormhole.KernelReference} {
		serial := sweep(t, kernel, nil).Format()
		dir := t.TempDir()
		const shards = 3
		for sh := 0; sh < shards; sh++ {
			ex := &runner.Exec{Shard: sh, NShards: shards, Cache: openCache(t, dir), Resume: true}
			part := sweep(t, kernel, ex)
			if sh < shards-1 && !part.Incomplete {
				t.Fatalf("kernel %v shard %d/%d: table not marked incomplete", kernel, sh, shards)
			}
		}
		sum := &runner.Summary{}
		ex := &runner.Exec{Cache: openCache(t, dir), Resume: true, Summary: sum}
		merged := sweep(t, kernel, ex)
		if merged.Incomplete {
			t.Fatalf("kernel %v: merge run incomplete", kernel)
		}
		if got := merged.Format(); got != serial {
			t.Fatalf("kernel %v: sharded merge differs from serial cold run:\nserial:\n%s\nmerged:\n%s", kernel, serial, got)
		}
		if sum.Computed != 0 || sum.Cached == 0 {
			t.Fatalf("kernel %v: merge computed %d cells (want 0), cached %d", kernel, sum.Computed, sum.Cached)
		}
	}
}

// TestWarmCacheBitIdentical: a warm rerun serves everything from cache
// and still renders the identical table.
func TestWarmCacheBitIdentical(t *testing.T) {
	dir := t.TempDir()
	cold := sweep(t, wormhole.KernelFast, &runner.Exec{Cache: openCache(t, dir), Resume: true})
	sum := &runner.Summary{}
	warm := sweep(t, wormhole.KernelFast, &runner.Exec{Cache: openCache(t, dir), Resume: true, Summary: sum})
	if got, want := warm.Format(), cold.Format(); got != want {
		t.Fatalf("warm cache changed the table:\ncold:\n%s\nwarm:\n%s", want, got)
	}
	if sum.Computed != 0 {
		t.Fatalf("warm run recomputed %d cells", sum.Computed)
	}
}

// TestInterruptedThenResumed: a run that dies partway (simulated by a
// shard run that only computed its slice) leaves whole cache entries
// behind; resuming completes the rest and matches the serial table.
func TestInterruptedThenResumed(t *testing.T) {
	serial := sweep(t, wormhole.KernelFast, nil).Format()
	dir := t.TempDir()
	// "Interrupted": only a third of the cells landed in the cache.
	partSum := &runner.Summary{}
	sweep(t, wormhole.KernelFast, &runner.Exec{Shard: 0, NShards: 3, Cache: openCache(t, dir), Resume: true, Summary: partSum})
	if partSum.Computed == 0 || partSum.Skipped == 0 {
		t.Fatalf("partial run computed=%d skipped=%d, want both nonzero", partSum.Computed, partSum.Skipped)
	}
	sum := &runner.Summary{}
	resumed := sweep(t, wormhole.KernelFast, &runner.Exec{Cache: openCache(t, dir), Resume: true, Summary: sum})
	if resumed.Incomplete {
		t.Fatal("resumed run incomplete")
	}
	if got := resumed.Format(); got != serial {
		t.Fatalf("resumed run differs from serial cold run:\nserial:\n%s\nresumed:\n%s", serial, got)
	}
	if sum.Cached != partSum.Computed {
		t.Fatalf("resume reused %d cells, the interrupted run computed %d", sum.Cached, partSum.Computed)
	}
}

// TestFaultSweepShardedBitIdentical: the property holds through the
// fault/recovery composition too, whose 0% row shares cache entries
// with healthy mcast cells.
func TestFaultSweepShardedBitIdentical(t *testing.T) {
	run := func(ex *runner.Exec) *Table {
		mesh := smallMeshSuite()
		bmin := smallBMINSuite()
		mesh.Trials, bmin.Trials = 2, 2
		mesh.Exec, bmin.Exec = ex, ex
		tab, err := FaultSweep(mesh, bmin, 8, 1024, []int{0, 2}, 7)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	serial := run(nil).Format()
	dir := t.TempDir()
	for sh := 0; sh < 2; sh++ {
		run(&runner.Exec{Shard: sh, NShards: 2, Cache: openCache(t, dir), Resume: true})
	}
	sum := &runner.Summary{}
	merged := run(&runner.Exec{Cache: openCache(t, dir), Resume: true, Summary: sum})
	if got := merged.Format(); got != serial {
		t.Fatalf("sharded fault sweep differs from serial:\nserial:\n%s\nmerged:\n%s", serial, got)
	}
	if sum.Computed != 0 {
		t.Fatalf("merge recomputed %d cells", sum.Computed)
	}
}
