package exp

// Experiment F1: graceful degradation. The paper's contention-freedom
// theorems assume a healthy fabric; F1 measures what the tuned trees
// actually deliver as links fail — mean multicast latency (over the
// surviving runs) versus the percentage of dead fabric links, for the
// four named algorithms on their home fabrics. Fault plans are seeded,
// so the whole table is byte-for-byte reproducible.

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/runner"
	"repro/internal/sim"
)

// faultPlanSeed derives the per-(row, trial) fault-plan seed. The plan
// depends on the row and trial but not the column, so the two mesh
// algorithms face identical dead-link sets (and likewise the two BMIN
// algorithms) — common random numbers across the series, as in the
// healthy sweeps. F2 uses the same formula, so its plans match F1's row
// for row.
func faultPlanSeed(faultSeed uint64, pi, trial int) uint64 {
	return faultSeed + uint64(pi)*0x9e3779b9 + uint64(trial)*0x85ebca6b
}

// faultCell builds the engine cell for one multicast on a degraded
// fabric: pct percent dead links under the derived plan seed. A failed
// run (unreachable destination, watchdog abort) is data, not an error —
// it caches as Failed and the merge excludes it. pct 0 falls back to
// the plain healthy cell so F1's baseline row shares cache entries with
// the healthy sweeps at the same parameters.
func (s *Suite) faultCell(a Algorithm, k, bytes, trial, pct int, planSeed uint64, thold, tend model.Time) runner.Cell {
	if pct == 0 {
		return s.mcastCell(a, k, bytes, trial, thold, tend)
	}
	return runner.Cell{
		Key: runner.Key{
			Mode: "fault", Platform: s.Platform.Name, Algo: a.keyID(), Soft: s.softKey(),
			K: k, Bytes: bytes, Trial: trial, Seed: s.Seed, AddrBytes: s.AddrBytes,
			THold: thold, TEnd: tend, FaultSeed: planSeed, DeadPct: pct,
		},
		Run: func() (runner.Result, error) {
			net := s.Platform.NewNet()
			net.SetFaults(fault.MustPlan(net.Topology(), fault.Spec{
				DeadFrac: float64(pct) / 100,
				Seed:     planSeed,
			}))
			addrs := s.placement(trial, k)
			res, err := s.runOnceOn(net, a, addrs, bytes, thold, tend)
			if err != nil {
				return runner.Result{Failed: true}, nil
			}
			return mcastResult(res), nil
		},
	}
}

// FaultSweep runs experiment F1: latency vs % failed links for U-mesh
// and OPT-mesh on the mesh suite and U-min and OPT-min on the BMIN
// suite. k is the multicast size and bytes the message size; pcts are
// the x values (percent of fabric-internal links made dead, each in
// [0,100]); faultSeed seeds the per-(row, trial) fault plans.
//
// Calibration (t_hold, t_end) is measured on the healthy fabric — the
// tuned tree is planned for the machine as specified, then executed on
// the degraded one, which is exactly the robustness question. Runs that
// fail (unreachable destination, watchdog abort) are excluded from the
// cell aggregate; Cell.N counts the survivors and the table notes name
// every cell that lost runs.
func FaultSweep(meshSuite, bminSuite *Suite, k, bytes int, pcts []int, faultSeed uint64) (*Table, error) {
	for _, p := range pcts {
		if p < 0 || p > 100 {
			return nil, fmt.Errorf("exp: fault percentage %d outside [0,100]", p)
		}
	}
	type column struct {
		suite *Suite
		algo  Algorithm
	}
	cols := []column{
		{meshSuite, Binomial("U-mesh")},
		{meshSuite, Opt("OPT-mesh")},
		{bminSuite, Binomial("U-min")},
		{bminSuite, Opt("OPT-min")},
	}
	t := &Table{
		Title:  fmt.Sprintf("F1: multicast latency vs %% failed links (k=%d, %d-byte messages)", k, bytes),
		XLabel: "failed links (%)",
		YLabel: "multicast latency (cycles, mean over surviving runs)",
	}
	for _, c := range cols {
		t.Algorithms = append(t.Algorithms, c.algo.Name)
	}
	trials := meshSuite.Trials
	if trials <= 0 {
		trials = 16
	}

	// Healthy-fabric calibration, once per suite.
	tends := make([]model.Time, len(cols))
	for i, c := range cols {
		if i > 0 && cols[i-1].suite == c.suite {
			tends[i] = tends[i-1]
			continue
		}
		te, err := c.suite.MeasureTEnd(bytes)
		if err != nil {
			return nil, err
		}
		tends[i] = te
		t.Notes = append(t.Notes, fmt.Sprintf("healthy calibration on %s: t_hold(%dB)=%d t_end(%dB)=%d",
			c.suite.Platform.Name, bytes, c.suite.Software.Hold.At(bytes), bytes, te))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d random placements per point, placement seed %d, fault seed %d",
		trials, meshSuite.Seed, faultSeed))

	type job struct{ pi, ci, trial int }
	var jobs []job
	var cells []runner.Cell
	for pi, pct := range pcts {
		for ci, c := range cols {
			for tr := 0; tr < trials; tr++ {
				jobs = append(jobs, job{pi, ci, tr})
				cells = append(cells, c.suite.faultCell(c.algo, k, bytes, tr, pct,
					faultPlanSeed(faultSeed, pi, tr), c.suite.Software.Hold.At(bytes), tends[ci]))
			}
		}
	}
	results, have, err := meshSuite.exec().Run(t.Title, cells)
	if err != nil {
		return nil, err
	}
	if runner.Missing(have) > 0 {
		t.Incomplete = true
		return t, nil
	}

	type agg struct {
		lat, blocked, wait sim.Stats
	}
	aggs := make([]agg, len(pcts)*len(cols))
	for i, j := range jobs {
		if results[i].Failed {
			continue
		}
		a := &aggs[j.pi*len(cols)+j.ci]
		a.lat.Add(results[i].Metric("latency"))
		a.blocked.Add(results[i].Metric("blocked"))
		a.wait.Add(results[i].Metric("wait"))
	}
	t.Rows = make([]Row, len(pcts))
	for pi, p := range pcts {
		row := Row{X: float64(p), Cells: make([]Cell, len(cols))}
		for ci := range cols {
			a := &aggs[pi*len(cols)+ci]
			row.Cells[ci] = Cell{
				Mean:       a.lat.Mean(),
				CI95:       a.lat.CI95(),
				Blocked:    a.blocked.Mean(),
				InjectWait: a.wait.Mean(),
				N:          a.lat.N(),
			}
			if n := a.lat.N(); n < trials {
				t.Notes = append(t.Notes, fmt.Sprintf("%s at %d%%: %d/%d runs delivered (rest unreachable or watchdog-aborted)",
					cols[ci].algo.Name, p, n, trials))
			}
		}
		t.Rows[pi] = row
	}
	return t, nil
}
