// Package exp is the experiment harness: it regenerates every figure of
// the paper's evaluation (Section 5) plus the ablations called out in
// DESIGN.md, on the flit-level simulator.
//
// Methodology, mirroring the paper:
//
//   - Each data point is the mean multicast latency over Trials (default
//     16) independent experiments with identical parameters but different
//     randomly drawn processor locations.
//   - (t_hold, t_end) for the OPT-tree dynamic program are measured from
//     the simulated machine itself via calibration unicasts, exactly as
//     the paper measures them at user level on real machines.
//   - All randomness is seeded; tables are byte-for-byte reproducible.
package exp

import (
	"fmt"

	"repro/internal/bfly"
	"repro/internal/bmin"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/mcastsim"
	"repro/internal/mesh"
	"repro/internal/model"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/torus"
	"repro/internal/wormhole"
)

// Platform is one simulated machine: a fabric plus the architecture's
// chain ordering.
type Platform struct {
	// Name labels the platform in tables ("16x16 mesh", "128-node BMIN").
	Name string
	// Nodes is the machine size.
	Nodes int
	// NewNet builds a fresh idle fabric.
	NewNet func() *wormhole.Network
	// Less is the architecture's chain order (<_d for meshes,
	// lexicographic for BMINs).
	Less func(a, b int) bool
}

// newNet builds a sweep fabric with worm recycling enabled: the harness
// attaches no observers and reads results only through mcastsim.Result,
// so no *Worm outlives its arrival callback and pooling is safe.
func newNet(topo wormhole.Topology, cfg wormhole.Config) *wormhole.Network {
	n := wormhole.New(topo, cfg)
	n.SetRecycling(true)
	return n
}

// MeshPlatform builds a W×H wormhole mesh with XY routing, the paper's
// first evaluation fabric (16×16 in Section 5).
func MeshPlatform(w, h int, cfg wormhole.Config) Platform {
	m := mesh.New2D(w, h)
	return Platform{
		Name:   fmt.Sprintf("%dx%d mesh", w, h),
		Nodes:  m.NumNodes(),
		NewNet: func() *wormhole.Network { return newNet(m, cfg) },
		Less:   m.DimOrderLess,
	}
}

// BMINPlatform builds an N-node bidirectional MIN of 2×2 switches with
// turnaround routing, the paper's second fabric (128 nodes in Section 5).
func BMINPlatform(nodes int, policy bmin.AscentPolicy, cfg wormhole.Config) Platform {
	b := bmin.New(nodes, policy)
	return Platform{
		Name:   fmt.Sprintf("%d-node BMIN (%s ascent)", nodes, policy),
		Nodes:  nodes,
		NewNet: func() *wormhole.Network { return newNet(b, cfg) },
		Less:   b.LexLess,
	}
}

// TorusPlatform builds a W×H wrap-around torus with dateline virtual
// channels — an extension fabric probing whether the mesh ordering
// discipline survives wrap links (experiment T1).
func TorusPlatform(w, h int, cfg wormhole.Config) Platform {
	tr := torus.New2D(w, h)
	return Platform{
		Name:   fmt.Sprintf("%dx%d torus", w, h),
		Nodes:  tr.NumNodes(),
		NewNet: func() *wormhole.Network { return newNet(tr, cfg) },
		Less:   tr.DimOrderLess,
	}
}

// HypercubePlatform builds a 2^dim-node binary hypercube with e-cube
// routing — the U-cube setting, exercising the paper's claim that the
// tuning concept applies to any partitionable network (experiment H1).
func HypercubePlatform(dim int, cfg wormhole.Config) Platform {
	h := mesh.NewHypercube(dim)
	return Platform{
		Name:   fmt.Sprintf("%d-node hypercube", h.NumNodes()),
		Nodes:  h.NumNodes(),
		NewNet: func() *wormhole.Network { return newNet(h, cfg) },
		Less:   h.DimOrderLess,
	}
}

// ButterflyPlatform builds an N-node unidirectional butterfly MIN, the
// non-partitionable fabric of the paper's concluding remarks (experiment
// E1).
func ButterflyPlatform(nodes int, cfg wormhole.Config) Platform {
	b := bfly.New(nodes)
	return Platform{
		Name:   fmt.Sprintf("%d-node butterfly", nodes),
		Nodes:  nodes,
		NewNet: func() *wormhole.Network { return newNet(b, cfg) },
		Less:   b.LexLess,
	}
}

// Algorithm couples a node-ordering policy with a tree-shape family. The
// same two constructors instantiate all five algorithms of the paper:
// U-mesh/U-min are Binomial over the architecture chain, OPT-mesh/OPT-min
// are Opt over the architecture chain, and OPT-tree is Opt over the
// unordered (as-sampled) chain.
type Algorithm struct {
	// Name labels the series.
	Name string
	// ID is the tree-shape family ("binomial", "opt", "seq") — the
	// cache identity of the algorithm. Display names vary per figure
	// ("U-mesh", "U-torus", "OPT (free addresses)"), so cell keys use
	// ID+Ordered instead and identical computations share cache entries
	// across figures.
	ID string
	// Ordered selects the architecture chain; false keeps the random
	// sample order (the architecture-independent OPT-tree).
	Ordered bool
	// Table builds the split table for k nodes under the measured
	// parameters.
	Table func(k int, thold, tend model.Time) core.SplitTable
}

// keyID is the algorithm's cache identity for cell keys.
func (a Algorithm) keyID() string {
	if a.Ordered {
		return a.ID
	}
	return a.ID + "/unordered"
}

// Binomial returns the recursive-doubling algorithm under the given name
// (U-mesh on meshes, U-min on BMINs).
func Binomial(name string) Algorithm {
	return Algorithm{
		Name:    name,
		ID:      "binomial",
		Ordered: true,
		Table:   func(k int, _, _ model.Time) core.SplitTable { return core.BinomialTable{Max: k} },
	}
}

// Opt returns the parameterized-tree algorithm over the architecture
// chain (OPT-mesh on meshes, OPT-min on BMINs).
func Opt(name string) Algorithm {
	return Algorithm{
		Name:    name,
		ID:      "opt",
		Ordered: true,
		Table:   func(k int, thold, tend model.Time) core.SplitTable { return core.NewOptTable(k, thold, tend) },
	}
}

// OptUnordered returns the architecture-independent OPT-tree: the same
// optimal shape planned over the unsorted placement order, exposed to
// contention.
func OptUnordered(name string) Algorithm {
	a := Opt(name)
	a.Ordered = false
	return a
}

// Sequential returns the separate-addressing baseline tree.
func Sequential(name string) Algorithm {
	return Algorithm{
		Name:    name,
		ID:      "seq",
		Ordered: true,
		Table:   func(k int, _, _ model.Time) core.SplitTable { return core.SequentialTable{Max: k} },
	}
}

// Suite holds everything common to one experiment campaign.
type Suite struct {
	Platform  Platform
	Software  model.Software
	AddrBytes int
	// Trials is the number of random placements per data point (the
	// paper uses 16).
	Trials int
	// Seed makes the campaign reproducible.
	Seed uint64
	// Workers bounds parallelism; 0 = GOMAXPROCS.
	Workers int
	// Exec, when set, runs the suite's cell manifests through a shared
	// experiment engine (sharding, on-disk cache, progress, summary).
	// Nil runs everything in-process with Workers parallelism — the
	// plain serial-cold behavior.
	Exec *runner.Exec
}

// exec returns the engine to run cell manifests on.
func (s *Suite) exec() *runner.Exec {
	if s.Exec != nil {
		return s.Exec
	}
	return &runner.Exec{Workers: s.Workers}
}

// softKey canonically encodes the software cost model for cell keys.
func (s *Suite) softKey() string {
	enc := func(l model.Linear) string { return fmt.Sprintf("%g+%g/B", l.Fixed, l.PerByte) }
	return fmt.Sprintf("send=%s,recv=%s,hold=%s", enc(s.Software.Send), enc(s.Software.Recv), enc(s.Software.Hold))
}

// mcastCell builds the engine cell for one healthy-fabric multicast:
// algorithm a over the trial placement of k nodes, bytes-byte messages,
// under measured (thold, tend). The key pins every input, so any figure
// requesting the same computation shares the same cache entry.
func (s *Suite) mcastCell(a Algorithm, k, bytes, trial int, thold, tend model.Time) runner.Cell {
	return runner.Cell{
		Key: runner.Key{
			Mode: "mcast", Platform: s.Platform.Name, Algo: a.keyID(), Soft: s.softKey(),
			K: k, Bytes: bytes, Trial: trial, Seed: s.Seed, AddrBytes: s.AddrBytes,
			THold: thold, TEnd: tend,
		},
		Run: func() (runner.Result, error) {
			addrs := s.placement(trial, k)
			res, err := s.runOnce(a, addrs, bytes, thold, tend)
			if err != nil {
				return runner.Result{}, err
			}
			return mcastResult(res), nil
		},
	}
}

// mcastResult flattens a simulator result into the engine's cell
// payload. Every metric is an exact integer cycle count widened to
// float64, so cache round-trips reproduce it bit for bit.
func mcastResult(res mcastsim.Result) runner.Result {
	return runner.Result{Metrics: map[string]float64{
		"latency": float64(res.Latency),
		"blocked": float64(res.BlockedCycles),
		"wait":    float64(res.InjectWaitCycles),
	}}
}

// DefaultSuite returns the paper's methodology on the given platform:
// 16 trials, default software costs, seeded.
func DefaultSuite(p Platform) *Suite {
	return &Suite{
		Platform: p,
		Software: model.DefaultSoftware(),
		Trials:   16,
		Seed:     1997, // the paper's year; any fixed value works
	}
}

// MeasureTEnd measures t_end(bytes) on the platform: the mean of
// calibration unicasts over a fixed set of seeded random pairs, rounded
// to a cycle. This is the paper's user-level parameter measurement.
func (s *Suite) MeasureTEnd(bytes int) (model.Time, error) {
	const pairs = 8
	r := sim.NewRNG(s.Seed ^ 0xca11b8a7e)
	var sum int64
	for i := 0; i < pairs; i++ {
		a := r.Intn(s.Platform.Nodes)
		b := r.Intn(s.Platform.Nodes)
		for b == a {
			b = r.Intn(s.Platform.Nodes)
		}
		lat, err := mcastsim.Unicast(s.Platform.NewNet(), a, b, bytes, s.runConfig())
		if err != nil {
			return 0, fmt.Errorf("exp: calibration unicast: %w", err)
		}
		sum += lat
	}
	return (sum + pairs/2) / pairs, nil
}

// FitParams fits the full parameter set (including the linear t_net
// component) from calibration unicasts at several sizes; used by
// cmd/calibrate and the tuning example.
func (s *Suite) FitParams(sizes []int) (model.Params, error) {
	var pts []model.Point
	for _, m := range sizes {
		tend, err := s.MeasureTEnd(m)
		if err != nil {
			return model.Params{}, err
		}
		net := tend - s.Software.Send.At(m) - s.Software.Recv.At(m)
		pts = append(pts, model.Point{Bytes: m, T: net})
	}
	netFit, err := model.Fit(pts)
	if err != nil {
		return model.Params{}, err
	}
	return model.Params{Software: s.Software, Net: netFit}, nil
}

func (s *Suite) runConfig() mcastsim.Config {
	return mcastsim.Config{Software: s.Software, AddrBytes: s.AddrBytes}
}

// placement returns the k node addresses of one trial; element 0 is the
// multicast source. Placements depend only on (Seed, trial, k), so every
// algorithm and message size sees the same locations — the paper's
// "same input parameters, different processor locations" protocol with
// common random numbers across series.
func (s *Suite) placement(trial, k int) []int {
	r := sim.NewRNG(s.Seed + uint64(trial)*0x9e37 + uint64(k)*0x79b9)
	return r.Sample(s.Platform.Nodes, k)
}

// runOnce executes one multicast on a fresh healthy fabric.
func (s *Suite) runOnce(a Algorithm, addrs []int, bytes int, thold, tend model.Time) (mcastsim.Result, error) {
	return s.runOnceOn(s.Platform.NewNet(), a, addrs, bytes, thold, tend)
}

// runOnceOn executes one multicast on a caller-built fabric — the fault
// sweeps build the net themselves so they can install a fault plan first.
func (s *Suite) runOnceOn(net *wormhole.Network, a Algorithm, addrs []int, bytes int, thold, tend model.Time) (mcastsim.Result, error) {
	var ch chain.Chain
	if a.Ordered {
		ch = chain.New(addrs, s.Platform.Less)
	} else {
		ch = chain.Unordered(addrs)
	}
	root, ok := ch.Index(addrs[0])
	if !ok {
		return mcastsim.Result{}, fmt.Errorf("exp: source %d not in chain", addrs[0])
	}
	tab := a.Table(len(ch), thold, tend)
	return mcastsim.Run(net, tab, ch, root, bytes, s.runConfig())
}

// Cell is one (x, algorithm) aggregate of a sweep.
type Cell struct {
	// Mean and CI95 summarize multicast latency in cycles.
	Mean, CI95 float64
	// Blocked is the mean header-blocked cycles per run (contention).
	Blocked float64
	// InjectWait is the mean one-port wait per run.
	InjectWait float64
	// N is the number of trials aggregated.
	N int
}

// Row is one x-value of a sweep.
type Row struct {
	X     float64
	Cells []Cell
}

// Table is a complete figure: one column per algorithm, one row per
// x-value.
type Table struct {
	Title      string
	XLabel     string
	YLabel     string
	Algorithms []string
	Rows       []Row
	// Notes records methodology details (measured parameters, trials).
	Notes []string
	// Incomplete marks a sharded partial run: some cells were neither
	// computed by this shard nor present in the cache, so Rows is empty
	// and the table must not be rendered or compared. Once every shard
	// has landed its cells in the shared cache, re-running the figure
	// merges them into the full table.
	Incomplete bool
}

// sweep runs the cross product of xs and algorithms; kOf/bytesOf map an x
// value to the multicast size and message size of that row.
func (s *Suite) sweep(title, xlabel string, xs []int, algos []Algorithm, kOf, bytesOf func(x int) int) (*Table, error) {
	t := &Table{
		Title:      title,
		XLabel:     xlabel,
		YLabel:     "multicast latency (cycles)",
		Algorithms: make([]string, len(algos)),
	}
	for i, a := range algos {
		t.Algorithms[i] = a.Name
	}
	trials := s.Trials
	if trials <= 0 {
		trials = 16
	}

	// Pre-measure (t_hold, t_end) per distinct message size.
	tend := make(map[int]model.Time)
	for _, x := range xs {
		b := bytesOf(x)
		if _, ok := tend[b]; !ok {
			te, err := s.MeasureTEnd(b)
			if err != nil {
				return nil, err
			}
			tend[b] = te
			t.Notes = append(t.Notes, fmt.Sprintf("measured t_hold(%dB)=%d t_end(%dB)=%d",
				b, s.Software.Hold.At(b), b, te))
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d random placements per point on %s, seed %d",
		trials, s.Platform.Name, s.Seed))

	type job struct{ xi, ai, trial int }
	var jobs []job
	var cells []runner.Cell
	for xi, x := range xs {
		k, b := kOf(x), bytesOf(x)
		for ai := range algos {
			for tr := 0; tr < trials; tr++ {
				jobs = append(jobs, job{xi, ai, tr})
				cells = append(cells, s.mcastCell(algos[ai], k, b, tr, s.Software.Hold.At(b), tend[b]))
			}
		}
	}
	results, have, err := s.exec().Run(sweepLabel(title), cells)
	if err != nil {
		return nil, err
	}
	if runner.Missing(have) > 0 {
		t.Incomplete = true
		return t, nil
	}

	// One pass over the results, indexed by (xi, ai). Jobs were enumerated
	// xi-major then ai then trial, so each cell still accumulates its
	// trials in the same order as the former per-cell rescan — the online
	// Stats sums are bit-identical, just O(jobs) instead of
	// O(rows·algos·jobs), and cached cells replay the exact values a
	// cold run would compute.
	type agg struct{ lat, blocked, wait sim.Stats }
	aggs := make([]agg, len(xs)*len(algos))
	for i, j := range jobs {
		a := &aggs[j.xi*len(algos)+j.ai]
		a.lat.Add(results[i].Metric("latency"))
		a.blocked.Add(results[i].Metric("blocked"))
		a.wait.Add(results[i].Metric("wait"))
	}
	t.Rows = make([]Row, len(xs))
	for xi, x := range xs {
		row := Row{X: float64(x), Cells: make([]Cell, len(algos))}
		for ai := range algos {
			a := &aggs[xi*len(algos)+ai]
			row.Cells[ai] = Cell{
				Mean:       a.lat.Mean(),
				CI95:       a.lat.CI95(),
				Blocked:    a.blocked.Mean(),
				InjectWait: a.wait.Mean(),
				N:          a.lat.N(),
			}
		}
		t.Rows[xi] = row
	}
	return t, nil
}

// sweepLabel names an engine batch after its table title; composed
// sweeps pass empty titles, which would make progress lines and
// summaries unreadable.
func sweepLabel(title string) string {
	if title == "" {
		return "sweep"
	}
	return title
}

// SweepSizes is the Figure 2 family: fixed multicast size k, message size
// on the x axis.
func (s *Suite) SweepSizes(title string, k int, sizes []int, algos []Algorithm) (*Table, error) {
	return s.sweep(title, "message size (bytes)", sizes, algos,
		func(int) int { return k }, func(x int) int { return x })
}

// SweepNodes is the Figure 3 family: fixed message size, multicast size
// on the x axis.
func (s *Suite) SweepNodes(title string, bytes int, ks []int, algos []Algorithm) (*Table, error) {
	return s.sweep(title, "number of nodes", ks, algos,
		func(x int) int { return x }, func(int) int { return bytes })
}
