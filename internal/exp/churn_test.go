package exp

import (
	"testing"

	"repro/internal/runner"
	"repro/internal/wormhole"
)

// churnTestRates are hot enough that churn overlaps the delivery wave
// (the repair policies only diverge while subtrees are in flight).
func churnTestRates() []int { return []int{1600, 3200, 6400} }

// churnSweepT renders the F5 reference sweep, optionally through a
// shared engine.
func churnSweepT(t *testing.T, ex *runner.Exec) *F5Tables {
	t.Helper()
	ms, bs := smallMeshSuite(), smallBMINSuite()
	ms.Trials, bs.Trials = 3, 3
	ms.Exec, bs.Exec = ex, ex
	f5, err := ChurnSweep(ms, bs, 12, 512, churnTestRates(), 11)
	if err != nil {
		t.Fatal(err)
	}
	return f5
}

func f5Format(f5 *F5Tables) string {
	return f5.Latency.Format() + f5.Delivered.Format() + f5.Repair.Format()
}

// TestChurnSweepDeterministic: seeded schedules and seeded backoff — two
// runs must render all three tables byte-identically regardless of
// worker count.
func TestChurnSweepDeterministic(t *testing.T) {
	run := func(workers int) string {
		ms, bs := smallMeshSuite(), smallBMINSuite()
		ms.Trials, bs.Trials = 3, 3
		ms.Workers, bs.Workers = workers, workers
		f5, err := ChurnSweep(ms, bs, 12, 512, churnTestRates(), 11)
		if err != nil {
			t.Fatal(err)
		}
		return f5Format(f5)
	}
	if a, b := run(0), run(1); a != b {
		t.Fatalf("churn sweep not reproducible:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestChurnSweepDeliveredMatchesOracle: the quiesce contract in table
// form — under pure node churn every policy's delivered fraction equals
// the membership-reachability oracle ceiling on every row — plus the
// tentpole acceptance relation: incremental repair never delivers less
// than full re-planning and issues strictly fewer repair sends.
func TestChurnSweepDeliveredMatchesOracle(t *testing.T) {
	f5 := churnSweepT(t, nil)
	tb := f5.Delivered
	if len(tb.Algorithms) != 8 {
		t.Fatalf("delivered table algorithms %v, want 6 + 2 oracle columns", tb.Algorithms)
	}
	for _, row := range tb.Rows {
		for ci := 0; ci < 6; ci++ {
			oi := 6 // mesh oracle column
			if ci >= 3 {
				oi = 7 // BMIN oracle column
			}
			got, want := row.Cells[ci].Mean, row.Cells[oi].Mean
			if got != want {
				t.Errorf("at %g events/Mcycle: %s delivered %.2f%% != reachable %.2f%%",
					row.X, tb.Algorithms[ci], got, want)
			}
		}
	}
	// Columns: full/incr/binom (mesh), full/incr/binom (BMIN). The
	// acceptance bar: per suite, delivered(incr) >= delivered(full) on
	// every row, and strictly fewer repair sends in total.
	for _, pair := range [][2]int{{0, 1}, {3, 4}} {
		full, incr := pair[0], pair[1]
		var fullSends, incrSends float64
		for ri, row := range f5.Repair.Rows {
			fullSends += row.Cells[full].Mean
			incrSends += row.Cells[incr].Mean
			d := f5.Delivered.Rows[ri]
			if d.Cells[incr].Mean < d.Cells[full].Mean {
				t.Errorf("at %g events/Mcycle: %s delivered %.2f%% < %s %.2f%%",
					row.X, tb.Algorithms[incr], d.Cells[incr].Mean, tb.Algorithms[full], d.Cells[full].Mean)
			}
		}
		if fullSends == 0 {
			t.Errorf("%s issued no repair sends across the sweep; the policy comparison is vacuous", tb.Algorithms[full])
		}
		if incrSends >= fullSends {
			t.Errorf("%s issued %.2f repair sends, %s %.2f; want incremental strictly fewer",
				tb.Algorithms[incr], incrSends, tb.Algorithms[full], fullSends)
		}
	}
}

// TestChurnSweepShardedBitIdentical: the engine determinism contract
// holds for churn cells — splitting F5 across shard runs with a shared
// cache, then merging, reproduces the serial cold tables byte for byte,
// and the merge recomputes nothing.
func TestChurnSweepShardedBitIdentical(t *testing.T) {
	serial := f5Format(churnSweepT(t, nil))
	dir := t.TempDir()
	const shards = 2
	for sh := 0; sh < shards; sh++ {
		ex := &runner.Exec{Shard: sh, NShards: shards, Cache: openCache(t, dir), Resume: true}
		part := churnSweepT(t, ex)
		if sh < shards-1 && !part.Latency.Incomplete {
			t.Fatalf("shard %d/%d: tables not marked incomplete", sh, shards)
		}
	}
	sum := &runner.Summary{}
	merged := churnSweepT(t, &runner.Exec{Cache: openCache(t, dir), Resume: true, Summary: sum})
	if merged.Latency.Incomplete {
		t.Fatal("merge run incomplete")
	}
	if got := f5Format(merged); got != serial {
		t.Fatalf("sharded merge differs from serial cold run:\nserial:\n%s\nmerged:\n%s", serial, got)
	}
	if sum.Computed != 0 || sum.Cached == 0 {
		t.Fatalf("merge computed %d cells (want 0), cached %d", sum.Computed, sum.Cached)
	}
}

// TestChurnSweepKernelsAgree: every churn cell is bit-identical across
// the fast and reference wormhole kernels.
func TestChurnSweepKernelsAgree(t *testing.T) {
	run := func(k wormhole.Kernel) string {
		ms := smallMeshSuite()
		bs := smallBMINSuite()
		for _, s := range []*Suite{ms, bs} {
			s.Trials = 2
			base := s.Platform.NewNet
			kk := k
			s.Platform.NewNet = func() *wormhole.Network {
				n := base()
				n.SetKernel(kk)
				return n
			}
		}
		f5, err := ChurnSweep(ms, bs, 12, 512, []int{3200}, 11)
		if err != nil {
			t.Fatal(err)
		}
		return f5Format(f5)
	}
	if fast, ref := run(wormhole.KernelFast), run(wormhole.KernelReference); fast != ref {
		t.Fatalf("kernels render different F5 tables:\nfast:\n%s\nreference:\n%s", fast, ref)
	}
}

// TestChurnSweepValidation rejects negative churn rates.
func TestChurnSweepValidation(t *testing.T) {
	if _, err := ChurnSweep(smallMeshSuite(), smallBMINSuite(), 8, 512, []int{-1}, 1); err == nil {
		t.Error("negative churn rate accepted")
	}
}
