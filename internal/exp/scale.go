package exp

// Experiment F4: simulator scalability. The paper's figures live on
// 16×16 mesh / 128-node BMIN fabrics; the roadmap's north star is
// sweeping the same algorithms on fabrics three orders of magnitude
// larger. F4 has two halves with different reproducibility contracts:
//
//   - ScaleLatency is a normal deterministic figure — multicast latency
//     of the binomial and OPT trees vs fabric size, byte-reproducible
//     and part of the golden tables. It records how tuned-tree latency
//     grows as the same 32-node multicast spreads over an ever larger
//     machine (longer unicast paths raise t_end, and the OPT shape
//     re-tunes around it).
//
//   - ScaleWall measures wall-clock time of the domain-parallel kernel
//     against the serial kernel on a ladder of large fabrics. Wall time
//     is inherently non-reproducible, so these rows are display-only
//     run metadata: they are printed only when the caller explicitly
//     asks for parallelism (mcastbench -fig f4 -parallel P) and are
//     excluded from golden output. The simulated results of the serial
//     and parallel runs must still agree exactly — ScaleWall asserts
//     byte-identical batch results and errors out on any divergence,
//     making every -parallel run a scale-sized determinism check.

import (
	"fmt"
	"reflect"

	"repro/internal/bmin"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/mcastsim"
	"repro/internal/model"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/wormhole"
)

// DefaultScaleMeshSides is the mesh half of the F4 latency ladder.
func DefaultScaleMeshSides() []int { return []int{16, 32, 64, 128} }

// DefaultScaleBMINNodes is the BMIN half of the F4 latency ladder.
func DefaultScaleBMINNodes() []int { return []int{128, 1024, 8192} }

// ScaleLatency runs the deterministic half of experiment F4: the same
// 32-destination 4-KB multicast (binomial vs OPT over the architecture
// chain) on each fabric of the ladder. Rows are fabric sizes in nodes
// (meshes first, then BMINs — the notes name each row's platform);
// every row re-measures (t_hold, t_end) on its own fabric, exactly as
// the per-platform figures do.
func ScaleLatency(cfg wormhole.Config, soft model.Software, trials int, seed uint64, exec *runner.Exec) (*Table, error) {
	const k, bytes = 32, 4096
	out := &Table{
		Title:      fmt.Sprintf("F4: %d-node %d-byte multicast vs fabric size", k, bytes),
		XLabel:     "fabric size (nodes)",
		YLabel:     "multicast latency (cycles)",
		Algorithms: []string{"binomial", "OPT"},
	}
	var platforms []Platform
	for _, side := range DefaultScaleMeshSides() {
		platforms = append(platforms, MeshPlatform(side, side, cfg))
	}
	for _, nodes := range DefaultScaleBMINNodes() {
		platforms = append(platforms, BMINPlatform(nodes, bmin.AscentStraight, cfg))
	}
	for _, p := range platforms {
		s := &Suite{Platform: p, Software: soft, Trials: trials, Seed: seed, Exec: exec}
		t, err := s.SweepSizes("", k, []int{bytes}, []Algorithm{Binomial("binomial"), Opt("OPT")})
		if err != nil {
			return nil, err
		}
		out.Notes = append(out.Notes, fmt.Sprintf("%d nodes = %s", p.Nodes, p.Name))
		out.Notes = append(out.Notes, t.Notes...)
		if t.Incomplete {
			// Keep iterating so every fabric's cells are enumerated under
			// sharding; only the merge is deferred.
			out.Incomplete = true
			continue
		}
		if out.Incomplete {
			continue
		}
		out.Rows = append(out.Rows, Row{X: float64(p.Nodes), Cells: t.Rows[0].Cells})
	}
	if out.Incomplete {
		out.Rows = nil
	}
	return out, nil
}

// ScaleWallRow is one fabric of the wall-time ladder: the same seeded
// batch of concurrent OPT multicasts run serially and with the
// domain-parallel kernel, with the simulated outcome asserted equal.
type ScaleWallRow struct {
	// Fabric names the platform; Nodes is its size.
	Fabric string
	Nodes  int
	// Groups concurrent multicasts of K destinations each.
	Groups, K int
	// Cycles is the simulated batch makespan — identical for the serial
	// and parallel runs by the determinism contract.
	Cycles int64
	// SerialMS and ParallelMS are wall milliseconds for the batch;
	// Speedup is their ratio. Display-only: never reproducible.
	SerialMS, ParallelMS, Speedup float64
}

// scaleWallFabric is one rung of the wall-time ladder.
type scaleWallFabric struct {
	platform  Platform
	groups, k int
}

// scaleWallLadder builds the wall-time fabrics: big extends the ladder
// to the roadmap targets (1024×1024 mesh, 64k-node BMIN).
func scaleWallLadder(cfg wormhole.Config, big bool) []scaleWallFabric {
	ladder := []scaleWallFabric{
		{MeshPlatform(64, 64, cfg), 8, 32},
		{MeshPlatform(256, 256, cfg), 8, 32},
		{BMINPlatform(4096, bmin.AscentStraight, cfg), 8, 32},
	}
	if big {
		ladder = append(ladder,
			scaleWallFabric{MeshPlatform(1024, 1024, cfg), 8, 64},
			scaleWallFabric{BMINPlatform(1<<16, bmin.AscentStraight, cfg), 8, 64},
		)
	}
	return ladder
}

// ScaleWall runs the wall-time half of experiment F4. parallel is the
// domain count for the parallel leg (must be > 1); big extends the
// ladder to the 1024×1024 mesh and the 64k-node BMIN. nowMS supplies
// wall-clock milliseconds — the caller injects it (mcastbench passes a
// wallclock-backed closure) so this package stays free of wall-clock
// reads and the timings stay display-only by construction.
//
// Each rung plans a seeded batch of disjoint concurrent OPT multicasts,
// runs it on a serial fabric and on a parallel fabric, and errors out
// unless the two simulated outcomes are byte-identical.
func ScaleWall(parallel int, big bool, cfg wormhole.Config, soft model.Software, seed uint64, nowMS func() float64) ([]ScaleWallRow, error) {
	if parallel < 2 {
		return nil, fmt.Errorf("exp: ScaleWall needs parallel >= 2, got %d", parallel)
	}
	const bytes = 4096
	rcfg := mcastsim.Config{Software: soft}
	var rows []ScaleWallRow
	for _, f := range scaleWallLadder(cfg, big) {
		p := f.platform
		s := &Suite{Platform: p, Software: soft, Seed: seed}
		tend, err := s.MeasureTEnd(bytes)
		if err != nil {
			return nil, err
		}
		thold := soft.Hold.At(bytes)
		tab := core.NewOptTable(f.k, thold, tend)

		// One seeded placement of groups×k disjoint nodes, shared by both
		// legs so they simulate the identical workload.
		r := sim.NewRNG(seed + uint64(p.Nodes)*0x9e37)
		all := r.Sample(p.Nodes, f.groups*f.k)
		groups := make([]mcastsim.Group, f.groups)
		for gi := range groups {
			addrs := all[gi*f.k : (gi+1)*f.k]
			ch := chain.New(addrs, p.Less)
			root, _ := ch.Index(addrs[0])
			groups[gi] = mcastsim.Group{Tab: tab, Chain: ch, Root: root, Bytes: bytes}
		}

		run := func(par int) ([]mcastsim.GroupResult, float64, error) {
			net := p.NewNet()
			if par > 1 {
				net.SetParallelism(par)
				defer net.Close()
			}
			t0 := nowMS()
			batch, err := mcastsim.RunConcurrent(net, groups, rcfg)
			if err != nil {
				return nil, 0, fmt.Errorf("exp: F4 batch on %s (P=%d): %w", p.Name, par, err)
			}
			return batch, nowMS() - t0, nil
		}
		serial, serialMS, err := run(1)
		if err != nil {
			return nil, err
		}
		par, parMS, err := run(parallel)
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(serial, par) {
			return nil, fmt.Errorf("exp: F4 determinism violation on %s: parallel (P=%d) batch results diverge from serial", p.Name, parallel)
		}
		speedup := 0.0
		if parMS > 0 {
			speedup = serialMS / parMS
		}
		rows = append(rows, ScaleWallRow{
			Fabric: p.Name, Nodes: p.Nodes,
			Groups: f.groups, K: f.k,
			Cycles:   serial[0].Cycles,
			SerialMS: serialMS, ParallelMS: parMS, Speedup: speedup,
		})
	}
	return rows, nil
}
