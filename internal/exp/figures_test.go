package exp

import (
	"testing"

	"repro/internal/wormhole"
)

// TestHypercubeSizesContentionFree: experiment H1's structural claims —
// both ordered algorithms contention-free, OPT-cube never worse than
// U-cube.
func TestHypercubeSizesContentionFree(t *testing.T) {
	s := DefaultSuite(HypercubePlatform(6, wormhole.DefaultConfig())) // 64 nodes
	s.Trials = 4
	tab, err := HypercubeSizes(s, 16, []int{2048, 8192})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		ucube, _, optcube := r.Cells[0], r.Cells[1], r.Cells[2]
		if ucube.Blocked != 0 || optcube.Blocked != 0 {
			t.Fatalf("x=%v: ordered hypercube algorithms contended (%v, %v)", r.X, ucube.Blocked, optcube.Blocked)
		}
		if optcube.Mean > ucube.Mean {
			t.Fatalf("x=%v: OPT-cube %v worse than U-cube %v", r.X, optcube.Mean, ucube.Mean)
		}
	}
}

// TestButterflyTemporalStructure: ordered OPT never loses to the random
// OPT-tree on average, and binomial is worst (shape dominates ordering).
func TestButterflyTemporalStructure(t *testing.T) {
	s := DefaultSuite(ButterflyPlatform(64, wormhole.DefaultConfig()))
	s.Trials = 6
	tab, err := ButterflyTemporal(s, 20, []int{8192})
	if err != nil {
		t.Fatal(err)
	}
	r := tab.Rows[0]
	random, lex, bino := r.Cells[0], r.Cells[1], r.Cells[2]
	if lex.Mean > random.Mean {
		t.Fatalf("lex-ordered OPT (%v) worse than random OPT (%v)", lex.Mean, random.Mean)
	}
	if bino.Mean <= lex.Mean {
		t.Fatalf("binomial (%v) should lose to OPT shapes (%v)", bino.Mean, lex.Mean)
	}
}

// TestConcurrentInterferenceMonotone: more simultaneous groups cannot
// reduce latency; the single-group row matches solo exactly.
func TestConcurrentInterferenceMonotone(t *testing.T) {
	s := DefaultSuite(MeshPlatform(16, 16, wormhole.DefaultConfig()))
	s.Trials = 4
	tab, err := ConcurrentInterference(s, []int{1, 2, 4}, 12, 2048)
	if err != nil {
		t.Fatal(err)
	}
	first := tab.Rows[0]
	if first.Cells[0].Mean != first.Cells[1].Mean {
		t.Fatalf("1-group concurrent (%v) != solo (%v)", first.Cells[1].Mean, first.Cells[0].Mean)
	}
	if first.Cells[2].Mean != 0 {
		t.Fatalf("single OPT-mesh group blocked %v cycles", first.Cells[2].Mean)
	}
	for _, r := range tab.Rows {
		if r.Cells[1].Mean < r.Cells[0].Mean {
			t.Fatalf("g=%v: concurrent (%v) faster than solo (%v)", r.X, r.Cells[1].Mean, r.Cells[0].Mean)
		}
	}
}

// TestModelValidationTight: the analytic t[k] predicts contention-free
// simulated latency within 2% at every tested size.
func TestModelValidationTight(t *testing.T) {
	s := DefaultSuite(MeshPlatform(8, 8, wormhole.DefaultConfig()))
	s.Trials = 4
	tab, err := ModelValidation(s, []int{4, 16, 48}, 2048)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		errPerMille := r.Cells[2].Mean
		if errPerMille < -20 || errPerMille > 20 {
			t.Fatalf("k=%v: model error %v per mille exceeds 2%%", r.X, errPerMille)
		}
	}
}

// TestBroadcastCrossoverShape: scatter-collect loses at small sizes and
// wins at large ones; the OPT tree always beats U-mesh; trees are
// contention-free on the mesh while scatter-collect's wrap send is not
// required to be.
func TestBroadcastCrossoverShape(t *testing.T) {
	s := DefaultSuite(MeshPlatform(8, 8, wormhole.DefaultConfig()))
	tab, err := BroadcastCrossover(s, []int{256, 1 << 19})
	if err != nil {
		t.Fatal(err)
	}
	small, large := tab.Rows[0], tab.Rows[1]
	if small.Cells[2].Mean <= small.Cells[1].Mean {
		t.Fatalf("small: scatter-collect %v should lose to OPT tree %v", small.Cells[2].Mean, small.Cells[1].Mean)
	}
	if large.Cells[2].Mean >= large.Cells[1].Mean {
		t.Fatalf("large: scatter-collect %v should beat OPT tree %v", large.Cells[2].Mean, large.Cells[1].Mean)
	}
	for _, r := range tab.Rows {
		if r.Cells[1].Mean > r.Cells[0].Mean {
			t.Fatalf("OPT tree %v worse than U-mesh %v", r.Cells[1].Mean, r.Cells[0].Mean)
		}
		if r.Cells[0].Blocked != 0 || r.Cells[1].Blocked != 0 {
			t.Fatalf("tree broadcasts contended: %+v", r)
		}
	}
}

// TestTorusSizesStructure: T1's claims — ordered OPT-torus beats
// U-torus, and the random OPT-tree contends more than the ordered one.
func TestTorusSizesStructure(t *testing.T) {
	s := DefaultSuite(TorusPlatform(8, 8, wormhole.DefaultConfig()))
	s.Trials = 6
	tab, err := TorusSizes(s, 20, []int{4096})
	if err != nil {
		t.Fatal(err)
	}
	r := tab.Rows[0]
	utorus, opttree, opttorus := r.Cells[0], r.Cells[1], r.Cells[2]
	if opttorus.Mean > utorus.Mean {
		t.Fatalf("OPT-torus %v worse than U-torus %v", opttorus.Mean, utorus.Mean)
	}
	if opttree.Blocked < opttorus.Blocked {
		t.Fatalf("random order contends less (%v) than dimension order (%v)", opttree.Blocked, opttorus.Blocked)
	}
}

// TestTemporalTuningImproves: tuned ordering never blocks more than the
// random ordering on average, and its latency is no worse.
func TestTemporalTuningImproves(t *testing.T) {
	s := DefaultSuite(ButterflyPlatform(64, wormhole.DefaultConfig()))
	s.Trials = 4
	tab, err := TemporalTuning(s, 20, 4096, 150)
	if err != nil {
		t.Fatal(err)
	}
	r := tab.Rows[0]
	randomBlocked, tunedBlocked := r.Cells[0].Mean, r.Cells[2].Mean
	if tunedBlocked > randomBlocked {
		t.Fatalf("tuning increased contention: %v -> %v", randomBlocked, tunedBlocked)
	}
	randomLat, tunedLat := r.Cells[3].Mean, r.Cells[4].Mean
	if tunedLat > randomLat {
		t.Fatalf("tuning increased latency: %v -> %v", randomLat, tunedLat)
	}
}

// TestConcurrentInterferenceRejectsOversizedBatch.
func TestConcurrentInterferenceRejectsOversizedBatch(t *testing.T) {
	s := DefaultSuite(MeshPlatform(4, 4, wormhole.DefaultConfig()))
	s.Trials = 1
	if _, err := ConcurrentInterference(s, []int{4}, 8, 64); err == nil {
		t.Fatal("4 groups of 8 on 16 nodes accepted")
	}
}
