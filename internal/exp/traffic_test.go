package exp

// F3 extensions of the engine determinism battery, plus the figure's
// capacity claims. The open-system cells are the heaviest in the repo —
// each is a full traffic run — so the battery drives a small 8x8 mesh /
// 64-node BMIN configuration; the properties (shard/merge bit-identity,
// kernel agreement, warm-cache zero recomputes, saturation ordering) are
// scale-free.

import (
	"strings"
	"testing"

	"repro/internal/bmin"
	"repro/internal/runner"
	"repro/internal/traffic"
	"repro/internal/wormhole"
)

func trafficTestScenario() TrafficScenario {
	return TrafficScenario{
		Ks:          []int{8, 16},
		Sizes:       []int{1024},
		Requests:    48,
		Warmup:      8,
		Arrival:     traffic.ArrivalPoisson,
		Admission:   traffic.AdmissionFIFO,
		MaxInFlight: 2,
		Trials:      2,
	}
}

func trafficTestRates() []int { return []int{25, 50, 100, 200, 400, 800} }

// trafficSweep renders the reference F3 sweep on the small platforms
// under the given kernel and exec.
func trafficSweep(t *testing.T, kernel wormhole.Kernel, ex *runner.Exec) *F3Tables {
	t.Helper()
	onKernel := func(p Platform) Platform {
		base := p.NewNet
		p.NewNet = func() *wormhole.Network {
			n := base()
			n.SetKernel(kernel)
			return n
		}
		return p
	}
	mesh := DefaultSuite(onKernel(MeshPlatform(8, 8, wormhole.DefaultConfig())))
	bm := DefaultSuite(onKernel(BMINPlatform(64, bmin.AscentStraight, wormhole.DefaultConfig())))
	mesh.Exec, bm.Exec = ex, ex
	f3, err := TrafficSweep(mesh, bm, trafficTestRates(), trafficTestScenario())
	if err != nil {
		t.Fatal(err)
	}
	return f3
}

func f3Format(f3 *F3Tables) string {
	return f3.Latency.Format() + "\n" + f3.Throughput.Format() + "\n" + f3.Queue.Format()
}

// TestTrafficSweepShardedBitIdentical: the engine determinism contract
// holds for open-system cells too — splitting the F3 sweep across shard
// runs with a shared cache, then merging, reproduces the serial cold
// tables byte for byte, and the merge recomputes nothing.
func TestTrafficSweepShardedBitIdentical(t *testing.T) {
	serial := f3Format(trafficSweep(t, wormhole.KernelFast, nil))
	dir := t.TempDir()
	const shards = 2
	for sh := 0; sh < shards; sh++ {
		ex := &runner.Exec{Shard: sh, NShards: shards, Cache: openCache(t, dir), Resume: true}
		part := trafficSweep(t, wormhole.KernelFast, ex)
		if sh < shards-1 && !part.Latency.Incomplete {
			t.Fatalf("shard %d/%d: tables not marked incomplete", sh, shards)
		}
	}
	sum := &runner.Summary{}
	merged := trafficSweep(t, wormhole.KernelFast, &runner.Exec{Cache: openCache(t, dir), Resume: true, Summary: sum})
	if merged.Latency.Incomplete {
		t.Fatal("merge run incomplete")
	}
	if got := f3Format(merged); got != serial {
		t.Fatalf("sharded merge differs from serial cold run:\nserial:\n%s\nmerged:\n%s", serial, got)
	}
	if sum.Computed != 0 || sum.Cached == 0 {
		t.Fatalf("merge computed %d cells (want 0), cached %d", sum.Computed, sum.Cached)
	}
}

// TestTrafficSweepKernelsAgree: the whole figure — every quantile of
// every open-system cell — is bit-identical across the fast and
// reference wormhole kernels.
func TestTrafficSweepKernelsAgree(t *testing.T) {
	fast := f3Format(trafficSweep(t, wormhole.KernelFast, nil))
	ref := f3Format(trafficSweep(t, wormhole.KernelReference, nil))
	if fast != ref {
		t.Fatalf("kernels render different F3 tables:\nfast:\n%s\nreference:\n%s", fast, ref)
	}
}

// TestTrafficSweepSaturationCrossover: the figure's capacity claims.
// Every series must reach its saturation knee inside the rate grid, and
// on each fabric the tuned OPT tree must saturate at a strictly higher
// offered rate than the binomial baseline — the paper's latency
// advantage restated as open-system capacity.
func TestTrafficSweepSaturationCrossover(t *testing.T) {
	f3 := trafficSweep(t, wormhole.KernelFast, nil)
	sat := make([]float64, len(f3.Latency.Algorithms))
	for ci, name := range f3.Latency.Algorithms {
		r, ok := SaturationRate(f3.Latency, ci, nil, SaturationFactor)
		if !ok {
			t.Fatalf("%s: no saturation point inside rates %v:\n%s",
				name, trafficTestRates(), f3.Latency.Format())
		}
		sat[ci] = r
	}
	// Columns: U-mesh, OPT-tree, OPT-mesh, U-min, OPT-min.
	if sat[2] <= sat[0] {
		t.Errorf("mesh: OPT-mesh saturates at %g req/Mcycle, U-mesh at %g; want OPT strictly later",
			sat[2], sat[0])
	}
	if sat[4] <= sat[3] {
		t.Errorf("BMIN: OPT-min saturates at %g req/Mcycle, U-min at %g; want OPT strictly later",
			sat[4], sat[3])
	}
	// Past the binomial knee the delivered-throughput curves separate:
	// at the top rate OPT must deliver strictly more than binomial.
	top := f3.Throughput.Rows[len(f3.Throughput.Rows)-1]
	if opt, u := top.Cells[2].Mean, top.Cells[0].Mean; opt <= u {
		t.Errorf("mesh at %g req/Mcycle: OPT-mesh delivers %.0f/Mcycle, U-mesh %.0f; want OPT higher",
			top.X, opt, u)
	}
	if opt, u := top.Cells[4].Mean, top.Cells[3].Mean; opt <= u {
		t.Errorf("BMIN at %g req/Mcycle: OPT-min delivers %.0f/Mcycle, U-min %.0f; want OPT higher",
			top.X, opt, u)
	}
	// The saturation notes must name every series.
	notes := strings.Join(f3.Latency.Notes, "\n")
	for _, name := range f3.Latency.Algorithms {
		if !strings.Contains(notes, "saturation "+name) {
			t.Errorf("latency notes missing a saturation line for %s:\n%s", name, notes)
		}
	}
}

// TestTrafficSweepValidation: the sweep rejects malformed rate grids.
func TestTrafficSweepValidation(t *testing.T) {
	mesh, bm := smallMeshSuite(), smallBMINSuite()
	sc := trafficTestScenario()
	for _, tc := range []struct {
		name  string
		rates []int
		want  string
	}{
		{"empty", nil, "at least one offered rate"},
		{"nonpositive", []int{0, 100}, "must be > 0"},
		{"nonincreasing", []int{100, 100}, "must increase"},
	} {
		_, err := TrafficSweep(mesh, bm, tc.rates, sc)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}
