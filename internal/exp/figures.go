package exp

import (
	"fmt"

	"repro/internal/bmin"
	"repro/internal/chain"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/mcastsim"
	"repro/internal/model"
	"repro/internal/plan"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/temporal"
	"repro/internal/wormhole"
)

// Figure1 reproduces the paper's worked example (its Figure 1): a 6×6
// mesh, 7 destinations, t_hold = 20, t_end = 55. The OPT-mesh tree
// achieves the theoretical optimum of 130 while the U-mesh binomial tree
// needs 165. These numbers are analytic and must match the paper exactly.
type Figure1Result struct {
	THold, TEnd model.Time
	Nodes       int
	OptLatency  model.Time // paper: 130
	UMeshLat    model.Time // paper: 165
	OptTree     *core.Tree // chain-indexed OPT tree from source position 0
	UMeshTree   *core.Tree
}

// Figure1 computes the worked example.
func Figure1() (*Figure1Result, error) {
	const k = 8
	const thold, tend = 20, 55
	seg := chain.Segment{L: 0, R: k - 1}
	opt, err := plan.Tree(core.NewOptTable(k, thold, tend), seg, 0)
	if err != nil {
		return nil, err
	}
	um, err := plan.Tree(core.BinomialTable{Max: k}, seg, 0)
	if err != nil {
		return nil, err
	}
	return &Figure1Result{
		THold:      thold,
		TEnd:       tend,
		Nodes:      k,
		OptLatency: opt.Eval(thold, tend),
		UMeshLat:   um.Eval(thold, tend),
		OptTree:    opt,
		UMeshTree:  um,
	}, nil
}

// DefaultSizes is Figure 2's x axis: 0 KB to 64 KB in 8 KB steps. A zero
// -byte multicast still carries a header flit, matching the paper's "0k"
// point.
func DefaultSizes() []int {
	sizes := make([]int, 0, 9)
	for s := 0; s <= 64*1024; s += 8 * 1024 {
		sizes = append(sizes, s)
	}
	return sizes
}

// DefaultNodeCounts is Figure 3's x axis on a 256-node mesh.
func DefaultNodeCounts(maxNodes int) []int {
	all := []int{4, 8, 16, 32, 48, 64, 96, 128, 192, 256}
	var out []int
	for _, k := range all {
		if k <= maxNodes {
			out = append(out, k)
		}
	}
	return out
}

// MeshAlgorithms is the series set of Figures 2 and 3: U-mesh, OPT-tree,
// OPT-mesh.
func MeshAlgorithms() []Algorithm {
	return []Algorithm{Binomial("U-mesh"), OptUnordered("OPT-tree"), Opt("OPT-mesh")}
}

// BMINAlgorithms is the BMIN counterpart: U-min, OPT-tree, OPT-min.
func BMINAlgorithms() []Algorithm {
	return []Algorithm{Binomial("U-min"), OptUnordered("OPT-tree"), Opt("OPT-min")}
}

// Figure2 regenerates "Comparison of 32-node multicast trees on a 16x16
// mesh": message size sweep, three series.
func Figure2(s *Suite) (*Table, error) {
	return s.SweepSizes("Figure 2: 32-node multicast trees on a "+s.Platform.Name, 32, DefaultSizes(), MeshAlgorithms())
}

// Figure2b is the 128-node variant the paper reports as "quite similar".
func Figure2b(s *Suite) (*Table, error) {
	return s.SweepSizes("Figure 2b: 128-node multicast trees on a "+s.Platform.Name, 128, DefaultSizes(), MeshAlgorithms())
}

// Figure3 regenerates "Comparison of 4-Kbyte multicast trees on a 16x16
// mesh": node count sweep at 4 KB.
func Figure3(s *Suite) (*Table, error) {
	return s.SweepNodes("Figure 3: 4-Kbyte multicast trees on a "+s.Platform.Name, 4096, DefaultNodeCounts(s.Platform.Nodes), MeshAlgorithms())
}

// BMINSizes regenerates the BMIN size sweep the paper ran with "the same
// network parameters used in the mesh experiments" and omitted for space.
func BMINSizes(s *Suite) (*Table, error) {
	return s.SweepSizes("BMIN-2: 32-node multicast trees on a "+s.Platform.Name, 32, DefaultSizes(), BMINAlgorithms())
}

// BMINNodes is the BMIN node-count sweep at 4 KB.
func BMINNodes(s *Suite) (*Table, error) {
	return s.SweepNodes("BMIN-3: 4-Kbyte multicast trees on a "+s.Platform.Name, 4096, DefaultNodeCounts(s.Platform.Nodes), BMINAlgorithms())
}

// ContentionComparison quantifies the paper's Section 5 observation that
// "the contention overhead in the OPT-tree is less severe" on the BMIN
// than on the mesh, because turnaround routing offers multiple paths.
// Rows are message sizes; columns are mean blocked cycles of the
// unordered OPT-tree on each platform, plus its tuned (contention-free)
// counterpart as a zero baseline.
func ContentionComparison(meshSuite, bminSuite *Suite, k int, sizes []int) (*Table, error) {
	mt, err := meshSuite.SweepSizes("", k, sizes, []Algorithm{OptUnordered("OPT-tree"), Opt("OPT-mesh")})
	if err != nil {
		return nil, err
	}
	// Run the BMIN half even when the mesh half is incomplete: a shard
	// must enumerate (and compute its slice of) every sub-sweep's cells,
	// or the merge run would find the later batches missing forever.
	bt, err := bminSuite.SweepSizes("", k, sizes, []Algorithm{OptUnordered("OPT-tree"), Opt("OPT-min")})
	if err != nil {
		return nil, err
	}
	out := &Table{
		Title:  fmt.Sprintf("Contention overhead of the unordered OPT-tree (%d-node multicast)", k),
		XLabel: "message size (bytes)",
		YLabel: "mean blocked cycles per multicast",
		Algorithms: []string{
			"OPT-tree @ " + meshSuite.Platform.Name,
			"OPT-mesh @ " + meshSuite.Platform.Name,
			"OPT-tree @ " + bminSuite.Platform.Name,
			"OPT-min @ " + bminSuite.Platform.Name,
		},
		Notes: append(mt.Notes, bt.Notes...),
	}
	if mt.Incomplete || bt.Incomplete {
		out.Incomplete = true
		return out, nil
	}
	for i, r := range mt.Rows {
		br := bt.Rows[i]
		out.Rows = append(out.Rows, Row{X: r.X, Cells: []Cell{
			blockedCell(r.Cells[0]), blockedCell(r.Cells[1]),
			blockedCell(br.Cells[0]), blockedCell(br.Cells[1]),
		}})
	}
	return out, nil
}

// blockedCell re-centers a cell on its contention metric so the shared
// renderer can print contention tables.
func blockedCell(c Cell) Cell {
	return Cell{Mean: c.Blocked, N: c.N}
}

// RatioAblation is analytic: it sweeps the t_hold/t_end ratio and reports
// the latency of OPT, binomial and sequential trees for k nodes. It shows
// binomial matching OPT exactly at ratio 1 (the U-mesh optimality
// condition) and sequential winning over binomial at small ratios — the
// motivating observations of the paper's introduction.
func RatioAblation(k int, tend model.Time, ratios []float64) *Table {
	t := &Table{
		Title:      fmt.Sprintf("Ablation: tree shapes vs t_hold/t_end ratio (k=%d, t_end=%d)", k, tend),
		XLabel:     "t_hold/t_end (x1000)",
		YLabel:     "analytic multicast latency (cycles)",
		Algorithms: []string{"OPT", "binomial", "sequential"},
		Notes:      []string{"analytic evaluation, no simulation"},
	}
	for _, r := range ratios {
		thold := model.Time(r * float64(tend))
		opt := core.NewOptTable(k, thold, tend).T(k)
		bino := core.Latency(core.BinomialTable{Max: k}, k, thold, tend)
		seq := core.Latency(core.SequentialTable{Max: k}, k, thold, tend)
		t.Rows = append(t.Rows, Row{X: r * 1000, Cells: []Cell{
			{Mean: float64(opt), N: 1}, {Mean: float64(bino), N: 1}, {Mean: float64(seq), N: 1},
		}})
	}
	return t
}

// AddrAblation measures the cost of carrying destination address lists in
// message payloads (the paper's "each message carries the addresses"
// remark, which the analytic model ignores): the same sweep run with 0
// and with addrBytes per carried address.
func AddrAblation(s *Suite, k, bytes, addrBytes int) (*Table, error) {
	algos := []Algorithm{Opt("OPT (free addresses)"), Opt("OPT (charged addresses)")}
	base := *s
	base.AddrBytes = 0
	charged := *s
	charged.AddrBytes = addrBytes

	bt, err := base.SweepNodes("", bytes, DefaultNodeCounts(s.Platform.Nodes), algos[:1])
	if err != nil {
		return nil, err
	}
	ct, err := charged.SweepNodes("", bytes, DefaultNodeCounts(s.Platform.Nodes), algos[1:])
	if err != nil {
		return nil, err
	}
	out := &Table{
		Title:      fmt.Sprintf("Ablation: address-list payload (%d bytes/address, %d-byte messages)", addrBytes, bytes),
		XLabel:     "number of nodes",
		YLabel:     "multicast latency (cycles)",
		Algorithms: []string{algos[0].Name, algos[1].Name},
		Notes:      append(bt.Notes, ct.Notes...),
	}
	if bt.Incomplete || ct.Incomplete {
		out.Incomplete = true
		return out, nil
	}
	for i, r := range bt.Rows {
		out.Rows = append(out.Rows, Row{X: r.X, Cells: []Cell{r.Cells[0], ct.Rows[i].Cells[0]}})
	}
	return out, nil
}

// HypercubeSizes is experiment H1: U-cube vs OPT-tree vs OPT-cube on a
// binary hypercube, exercising the paper's §6 claim that the tuning
// concept transfers to any network partitionable into contention-free
// clusters. The chain is the hypercube's dimension order (bit-reversed
// addresses); both ordered algorithms must report zero contention.
func HypercubeSizes(s *Suite, k int, sizes []int) (*Table, error) {
	algos := []Algorithm{Binomial("U-cube"), OptUnordered("OPT-tree"), Opt("OPT-cube")}
	return s.SweepSizes(fmt.Sprintf("H1: %d-node multicast trees on a %s", k, s.Platform.Name), k, sizes, algos)
}

// BroadcastCrossover is experiment B4: the paper's introduction pits
// portable tree multicast against the architecture-specific
// scatter/all-gather broadcast of Barnett et al. ("reported to perform
// nearly optimal"). This sweep broadcasts to every node of the platform
// and locates the message-size crossover where bandwidth-optimal
// scatter-collect overtakes even the optimal tree.
func BroadcastCrossover(s *Suite, sizes []int) (*Table, error) {
	p := s.Platform.Nodes
	out := &Table{
		Title:      fmt.Sprintf("B4: full broadcast, tree vs scatter-collect on a %s", s.Platform.Name),
		XLabel:     "message size (bytes)",
		YLabel:     "broadcast latency (cycles)",
		Algorithms: []string{"U-mesh tree", "OPT tree", "scatter-collect"},
	}
	addrs := make([]int, p)
	for i := range addrs {
		addrs[i] = i
	}
	ch := chain.New(addrs, s.Platform.Less)
	root, _ := ch.Index(0)
	// Calibration stays outside the cells: t_end is a deterministic probe,
	// cheap next to a full-machine broadcast, and every shard needs it to
	// key its cells identically.
	mcast := func(bytes int, tab core.SplitTable, algo string, thold, tend model.Time) runner.Cell {
		return runner.Cell{
			Key: runner.Key{
				Mode: "bcast", Platform: s.Platform.Name, Algo: algo, Soft: s.softKey(),
				K: p, Bytes: bytes, AddrBytes: s.AddrBytes, THold: thold, TEnd: tend,
			},
			Run: func() (runner.Result, error) {
				res, err := mcastsim.Run(s.Platform.NewNet(), tab, ch, root, bytes, s.runConfig())
				if err != nil {
					return runner.Result{}, err
				}
				return mcastResult(res), nil
			},
		}
	}
	var cells []runner.Cell
	for _, bytes := range sizes {
		tend, err := s.MeasureTEnd(bytes)
		if err != nil {
			return nil, err
		}
		thold := s.Software.Hold.At(bytes)
		bytes := bytes
		cells = append(cells,
			mcast(bytes, core.BinomialTable{Max: p}, "binomial", thold, tend),
			mcast(bytes, core.NewOptTable(p, thold, tend), "opt", thold, tend),
			runner.Cell{
				Key: runner.Key{
					Mode: "scatter", Platform: s.Platform.Name, Algo: "scatter-collect", Soft: s.softKey(),
					K: p, Bytes: bytes, AddrBytes: s.AddrBytes,
				},
				Run: func() (runner.Result, error) {
					sc, err := collective.ScatterAllgather(s.Platform.NewNet(), ch, bytes, s.runConfig())
					if err != nil {
						return runner.Result{}, err
					}
					return runner.Result{Metrics: map[string]float64{
						"latency": float64(sc.Latency),
						"blocked": float64(sc.BlockedCycles),
					}}, nil
				},
			})
	}
	results, have, err := s.exec().Run(out.Title, cells)
	if err != nil {
		return nil, err
	}
	if runner.Missing(have) > 0 {
		out.Incomplete = true
		return out, nil
	}
	for bi, bytes := range sizes {
		row := Row{X: float64(bytes), Cells: make([]Cell, 3)}
		for ci := 0; ci < 3; ci++ {
			r := &results[bi*3+ci]
			row.Cells[ci] = Cell{Mean: r.Metric("latency"), Blocked: r.Metric("blocked"), N: 1}
		}
		out.Rows = append(out.Rows, row)
	}
	out.Notes = append(out.Notes,
		"full-machine broadcast: placements are fixed (all nodes), so each row is one deterministic run",
		"scatter-collect's ring wrap send is not contention-free on a mesh; its blocked cycles are charged in the latency")
	return out, nil
}

// TorusSizes is experiment T1: U-torus vs OPT-tree vs OPT-torus on a
// wrap-around torus with dateline virtual channels. Unlike on the mesh,
// the dimension-ordered chain does NOT guarantee zero contention here —
// wrap paths break the direction lemma — so the tables record a small
// residual blocked count for the ordered algorithms alongside the large
// one of the random order.
func TorusSizes(s *Suite, k int, sizes []int) (*Table, error) {
	algos := []Algorithm{Binomial("U-torus"), OptUnordered("OPT-tree"), Opt("OPT-torus")}
	t, err := s.SweepSizes(fmt.Sprintf("T1: %d-node multicast trees on a %s", k, s.Platform.Name), k, sizes, algos)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "wrap links break the mesh direction lemma: ordered algorithms may retain residual contention")
	return t, nil
}

// ButterflyTemporal is experiment E1 (the paper's §6 future work): on a
// unidirectional butterfly no node ordering can make the recursion
// channel-disjoint, so the best one can do is temporal tuning. The sweep
// compares the unordered OPT-tree against the lexicographically ordered
// OPT tree and the binomial tree; the ordered variants reduce — but do
// not eliminate — blocked cycles.
func ButterflyTemporal(s *Suite, k int, sizes []int) (*Table, error) {
	algos := []Algorithm{
		OptUnordered("OPT-tree (random)"),
		Opt("OPT (lex-ordered)"),
		Binomial("binomial (lex-ordered)"),
	}
	t, err := s.SweepSizes(fmt.Sprintf("E1: temporal tuning on a %s (%d-node multicast)", s.Platform.Name, k), k, sizes, algos)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "butterfly paths are unique per (src,dst); contention can be reduced by ordering but not eliminated")
	return t, nil
}

// TemporalTuning is experiment E2: on the non-partitionable butterfly,
// compare the three levels of §6-style tuning for the OPT tree shape —
// random order, lexicographic order, and the search-based temporal tuner
// (package temporal) — by simulated latency and blocked cycles.
func TemporalTuning(s *Suite, k, bytes, iterations int) (*Table, error) {
	out := &Table{
		Title:  fmt.Sprintf("E2: temporal tuning of the OPT tree on a %s (k=%d, %dB)", s.Platform.Name, k, bytes),
		XLabel: "trial",
		YLabel: "blocked cycles (latency in mean column)",
		Algorithms: []string{
			"random blocked", "lex blocked", "tuned blocked",
			"random latency", "tuned latency",
		},
	}
	tend, err := s.MeasureTEnd(bytes)
	if err != nil {
		return nil, err
	}
	thold := s.Software.Hold.At(bytes)
	tab := core.NewOptTable(k, thold, tend)
	trials := s.Trials
	if trials <= 0 {
		trials = 16
	}
	out.Notes = append(out.Notes, fmt.Sprintf("measured t_hold=%d t_end=%d; tuner: %d iterations, 2 restarts", thold, tend, iterations))

	metricNames := []string{"rblocked", "lblocked", "tblocked", "rlat", "tlat"}
	cells := make([]runner.Cell, trials)
	for trial := 0; trial < trials; trial++ {
		trial := trial
		cells[trial] = runner.Cell{
			Key: runner.Key{
				Mode: "temporal", Platform: s.Platform.Name, Algo: "opt", Soft: s.softKey(),
				K: k, Bytes: bytes, Trial: trial, Seed: s.Seed, AddrBytes: s.AddrBytes,
				THold: thold, TEnd: tend,
				Extra: fmt.Sprintf("iters=%d,slack=50,restarts=2", iterations),
			},
			Run: func() (runner.Result, error) {
				addrs := s.placement(trial, k)
				runOne := func(ch chain.Chain, root int) (mcastsim.Result, error) {
					return mcastsim.Run(s.Platform.NewNet(), tab, ch, root, bytes, s.runConfig())
				}
				random, err := runOne(chain.Unordered(addrs), 0)
				if err != nil {
					return runner.Result{}, err
				}
				lexCh := chain.New(addrs, s.Platform.Less)
				lexRoot, _ := lexCh.Index(addrs[0])
				lex, err := runOne(lexCh, lexRoot)
				if err != nil {
					return runner.Result{}, err
				}
				tuned, err := temporal.Tune(temporal.Config{
					Topo:       s.Platform.NewNet().Topology(),
					Software:   s.Software,
					Slack:      50,
					Iterations: iterations,
					Restarts:   2,
					Seed:       s.Seed + uint64(trial),
				}, tab, addrs, bytes, thold, tend)
				if err != nil {
					return runner.Result{}, err
				}
				tunedRes, err := runOne(tuned.Chain, tuned.Root)
				if err != nil {
					return runner.Result{}, err
				}
				return runner.Result{Metrics: map[string]float64{
					"rblocked": float64(random.BlockedCycles),
					"lblocked": float64(lex.BlockedCycles),
					"tblocked": float64(tunedRes.BlockedCycles),
					"rlat":     float64(random.Latency),
					"tlat":     float64(tunedRes.Latency),
				}}, nil
			},
		}
	}
	results, have, err := s.exec().Run(out.Title, cells)
	if err != nil {
		return nil, err
	}
	if runner.Missing(have) > 0 {
		out.Incomplete = true
		return out, nil
	}
	var agg [5]sim.Stats
	for _, r := range results {
		for i, name := range metricNames {
			agg[i].Add(r.Metric(name))
		}
	}
	rowCells := make([]Cell, 5)
	for i := range rowCells {
		rowCells[i] = Cell{Mean: agg[i].Mean(), CI95: agg[i].CI95(), N: agg[i].N()}
	}
	out.Rows = []Row{{X: 0, Cells: rowCells}}
	return out, nil
}

// ModelValidation is experiment M1: how well do two measured parameters
// predict a real (simulated) machine? For each multicast size, compare
// the analytic OPT latency t[k] — computed only from the calibrated
// (t_hold, t_end) — against the flit-level simulation of the
// contention-free OPT-mesh tree. The error quantifies what the
// parameterized model abstracts away (per-hop distance spread), and its
// smallness is the paper's entire premise.
func ModelValidation(s *Suite, ks []int, bytes int) (*Table, error) {
	out := &Table{
		Title:      fmt.Sprintf("M1: parameterized-model fidelity on a %s (%dB messages)", s.Platform.Name, bytes),
		XLabel:     "number of nodes",
		YLabel:     "multicast latency (cycles)",
		Algorithms: []string{"analytic t[k]", "simulated OPT", "error x1000"},
	}
	tend, err := s.MeasureTEnd(bytes)
	if err != nil {
		return nil, err
	}
	thold := s.Software.Hold.At(bytes)
	trials := s.Trials
	if trials <= 0 {
		trials = 16
	}
	out.Notes = append(out.Notes, fmt.Sprintf("measured t_hold=%d t_end=%d; %d placements per point", thold, tend, trials))

	// The simulated column is the ordered OPT run at each k — exactly the
	// healthy mcast cell, so M1 shares cache entries with the node-count
	// sweeps at equal parameters.
	var kept []int
	var cells []runner.Cell
	for _, k := range ks {
		if k > s.Platform.Nodes {
			continue
		}
		kept = append(kept, k)
		for trial := 0; trial < trials; trial++ {
			cells = append(cells, s.mcastCell(Opt("OPT"), k, bytes, trial, thold, tend))
		}
	}
	results, have, err := s.exec().Run(out.Title, cells)
	if err != nil {
		return nil, err
	}
	if runner.Missing(have) > 0 {
		out.Incomplete = true
		return out, nil
	}
	for ki, k := range kept {
		analytic := float64(core.NewOptTable(k, thold, tend).T(k))
		var lat sim.Stats
		for trial := 0; trial < trials; trial++ {
			r := results[ki*trials+trial]
			if r.Metric("blocked") != 0 {
				return nil, fmt.Errorf("exp: model validation requires contention-free runs; k=%d trial %d blocked", k, trial)
			}
			lat.Add(r.Metric("latency"))
		}
		errPerMille := (lat.Mean() - analytic) / analytic * 1000
		out.Rows = append(out.Rows, Row{X: float64(k), Cells: []Cell{
			{Mean: analytic, N: 1},
			{Mean: lat.Mean(), CI95: lat.CI95(), N: lat.N()},
			{Mean: errPerMille, N: lat.N()},
		}})
	}
	return out, nil
}

// ConcurrentInterference is experiment C1: the paper's contention-free
// guarantee is per-multicast; this sweep runs g simultaneous OPT-mesh
// multicasts on disjoint node sets and reports how much they slow each
// other down through the shared fabric. Rows are group counts; columns
// are the mean solo latency, the mean concurrent latency, and the mean
// blocked cycles of the batch.
func ConcurrentInterference(s *Suite, groupCounts []int, k, bytes int) (*Table, error) {
	out := &Table{
		Title:      fmt.Sprintf("C1: concurrent OPT multicasts on a %s (k=%d each, %dB)", s.Platform.Name, k, bytes),
		XLabel:     "simultaneous multicasts",
		YLabel:     "latency (cycles)",
		Algorithms: []string{"solo latency", "concurrent latency", "batch blocked cycles"},
	}
	tend, err := s.MeasureTEnd(bytes)
	if err != nil {
		return nil, err
	}
	thold := s.Software.Hold.At(bytes)
	tab := core.NewOptTable(k, thold, tend)
	trials := s.Trials
	if trials <= 0 {
		trials = 16
	}
	out.Notes = append(out.Notes,
		fmt.Sprintf("measured t_hold=%d t_end=%d; %d trials on %s, seed %d", thold, tend, trials, s.Platform.Name, s.Seed))

	var cells []runner.Cell
	for _, g := range groupCounts {
		if g*k > s.Platform.Nodes {
			return nil, fmt.Errorf("exp: %d groups of %d nodes exceed the %d-node fabric", g, k, s.Platform.Nodes)
		}
		for trial := 0; trial < trials; trial++ {
			g, trial := g, trial
			cells = append(cells, runner.Cell{
				Key: runner.Key{
					Mode: "conc", Platform: s.Platform.Name, Algo: "opt", Soft: s.softKey(),
					K: k, Bytes: bytes, X: g, Trial: trial, Seed: s.Seed, AddrBytes: s.AddrBytes,
					THold: thold, TEnd: tend,
				},
				Run: func() (runner.Result, error) {
					r := sim.NewRNG(s.Seed + uint64(trial)*0x51ed + uint64(g))
					all := r.Sample(s.Platform.Nodes, g*k)
					groups := make([]mcastsim.Group, g)
					var soloSum float64
					for gi := range groups {
						addrs := all[gi*k : (gi+1)*k]
						ch := chain.New(addrs, s.Platform.Less)
						root, _ := ch.Index(addrs[0])
						groups[gi] = mcastsim.Group{Tab: tab, Chain: ch, Root: root, Bytes: bytes}
						res, err := mcastsim.Run(s.Platform.NewNet(), tab, ch, root, bytes, s.runConfig())
						if err != nil {
							return runner.Result{}, err
						}
						soloSum += float64(res.Latency)
					}
					batch, err := mcastsim.RunConcurrent(s.Platform.NewNet(), groups, s.runConfig())
					if err != nil {
						return runner.Result{}, err
					}
					var concSum float64
					for _, r := range batch {
						concSum += float64(r.Latency)
					}
					return runner.Result{Metrics: map[string]float64{
						"solo":    soloSum / float64(g),
						"conc":    concSum / float64(g),
						"blocked": float64(batch[0].BlockedCycles),
					}}, nil
				},
			})
		}
	}
	results, have, err := s.exec().Run(out.Title, cells)
	if err != nil {
		return nil, err
	}
	if runner.Missing(have) > 0 {
		out.Incomplete = true
		return out, nil
	}
	for gi, g := range groupCounts {
		var solo, conc, blocked sim.Stats
		for trial := 0; trial < trials; trial++ {
			r := results[gi*trials+trial]
			solo.Add(r.Metric("solo"))
			conc.Add(r.Metric("conc"))
			blocked.Add(r.Metric("blocked"))
		}
		out.Rows = append(out.Rows, Row{X: float64(g), Cells: []Cell{
			{Mean: solo.Mean(), CI95: solo.CI95(), N: solo.N()},
			{Mean: conc.Mean(), CI95: conc.CI95(), N: conc.N()},
			{Mean: blocked.Mean(), N: blocked.N()},
		}})
	}
	return out, nil
}

// PolicyAblation compares BMIN ascent policies by the contention they
// leave in the unordered OPT-tree — the "extra paths reduce contention"
// mechanism of Section 5 made explicit. exec, when non-nil, shares the
// caller's experiment engine across the per-policy suites.
func PolicyAblation(nodes int, cfg wormhole.Config, soft model.Software, trials int, seed uint64, k, bytes int, exec *runner.Exec) (*Table, error) {
	policies := []bmin.AscentPolicy{bmin.AscentStraight, bmin.AscentDest, bmin.AscentAdaptive, bmin.AscentAdaptiveDest}
	out := &Table{
		Title:      fmt.Sprintf("Ablation: BMIN ascent policy vs OPT-tree contention (k=%d, %dB)", k, bytes),
		XLabel:     "policy index",
		YLabel:     "mean blocked cycles per multicast",
		Algorithms: []string{"OPT-tree blocked", "OPT-min blocked", "OPT-tree latency", "OPT-min latency"},
	}
	for i, pol := range policies {
		s := &Suite{
			Platform: BMINPlatform(nodes, pol, cfg),
			Software: soft,
			Trials:   trials,
			Seed:     seed,
			Exec:     exec,
		}
		tab, err := s.SweepSizes("", k, []int{bytes}, []Algorithm{OptUnordered("OPT-tree"), Opt("OPT-min")})
		if err != nil {
			return nil, err
		}
		out.Notes = append(out.Notes, fmt.Sprintf("policy %d = %s", i, pol))
		if tab.Incomplete {
			// Keep iterating so every policy's cells are enumerated; only
			// the merge is deferred.
			out.Incomplete = true
			continue
		}
		if out.Incomplete {
			continue
		}
		c := tab.Rows[0].Cells
		out.Rows = append(out.Rows, Row{X: float64(i), Cells: []Cell{
			blockedCell(c[0]), blockedCell(c[1]),
			{Mean: c[0].Mean, N: c[0].N}, {Mean: c[1].Mean, N: c[1].N},
		}})
	}
	if out.Incomplete {
		out.Rows = nil
	}
	return out, nil
}
