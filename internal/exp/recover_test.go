package exp

import (
	"testing"
)

// TestRecoverSweepDeterministic: seeded fault plans and seeded backoff
// jitter — two runs must render all three tables byte-identically, and
// worker count must not matter (aggregation is a serial post-pass).
func TestRecoverSweepDeterministic(t *testing.T) {
	run := func(workers int) string {
		ms, bs := smallMeshSuite(), smallBMINSuite()
		ms.Workers, bs.Workers = workers, workers
		f2, err := RecoverSweep(ms, bs, 8, 1024, []int{0, 4}, 7)
		if err != nil {
			t.Fatal(err)
		}
		return f2.Latency.Format() + f2.Delivered.Format() + f2.Overhead.Format()
	}
	a, b := run(0), run(1)
	if a != b {
		t.Fatalf("recover sweep not reproducible:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestRecoverSweepDeliveredMatchesOracle: the tentpole claim in table
// form — on every row the delivered fraction must equal the
// reachability-oracle ceiling for that fabric, because recovery
// completes whenever a route exists and abandons only what the oracle
// already calls cut off.
func TestRecoverSweepDeliveredMatchesOracle(t *testing.T) {
	f2, err := RecoverSweep(smallMeshSuite(), smallBMINSuite(), 8, 1024, []int{0, 4, 10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	tb := f2.Delivered
	if len(tb.Algorithms) != 6 {
		t.Fatalf("delivered table algorithms %v, want 4 + 2 oracle columns", tb.Algorithms)
	}
	for _, row := range tb.Rows {
		for ci := 0; ci < 4; ci++ {
			oi := 4 // mesh oracle column
			if ci >= 2 {
				oi = 5 // BMIN oracle column
			}
			got, want := row.Cells[ci].Mean, row.Cells[oi].Mean
			if got != want {
				t.Errorf("at %g%%: %s delivered %.2f%% != reachable %.2f%%",
					row.X, tb.Algorithms[ci], got, want)
			}
		}
		if row.X == 0 {
			for ci, c := range row.Cells {
				if c.Mean != 100 {
					t.Errorf("healthy row: %s delivered %.2f%%, want 100", tb.Algorithms[ci], c.Mean)
				}
			}
		}
	}
	// A lossy row must show a real recovery premium in F2c.
	last := f2.Overhead.Rows[len(f2.Overhead.Rows)-1]
	var premium float64
	for _, c := range last.Cells {
		premium += c.Mean
	}
	if premium <= 0 {
		t.Errorf("10%% dead links produced zero recovery overhead across all algorithms: %+v", last)
	}
}

// TestRecoverSweepValidatesPercentages rejects x values outside [0,100].
func TestRecoverSweepValidatesPercentages(t *testing.T) {
	for _, pcts := range [][]int{{-1}, {101}} {
		if _, err := RecoverSweep(smallMeshSuite(), smallBMINSuite(), 8, 1024, pcts, 1); err == nil {
			t.Errorf("pcts %v accepted", pcts)
		}
	}
}
