package exp

// Experiment F6: the crossover surface as a service. The paper's
// message is that no single multicast algorithm wins everywhere — the
// best choice flips with (architecture, group size, message size,
// t_hold/t_end) and, per F1/F2, with fault state. F6 closes the loop:
// build a tuner.Surface per platform from measured training cells,
// compile it into the best-algorithm lookup, then score the selector
// on held-out evaluation trials against every static choice. The
// selector's regret (its eval latency minus the best static
// algorithm's) and its margin against the *worst* static choice
// quantify what crossover-aware selection buys.
//
// Train and eval reuse the standard cell builders (mcastCell /
// faultCell), so F6 shares cache entries with the other figures where
// parameters coincide, shards deterministically over the engine, and
// merges bit-identically from a warm cache.

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/tuner"
)

// TunerGrid pins the F6 crossover-surface axes: every combination of
// group size, message size and dead-link percentage is one grid point.
type TunerGrid struct {
	Ks, Bytes, FaultPcts []int
}

// DefaultTunerGrid spans the crossover-rich region: small and
// fabric-spanning groups, short and long messages, healthy through
// mildly degraded fabric (past a few percent dead links almost no
// closed-system run survives on spanning groups; see F1).
func DefaultTunerGrid() TunerGrid {
	return TunerGrid{Ks: []int{8, 32}, Bytes: []int{1024, 16384}, FaultPcts: []int{0, 1, 2}}
}

func (g TunerGrid) points() int { return len(g.Ks) * len(g.Bytes) * len(g.FaultPcts) }

// at expands a flat grid index into its (ki, bi, pi) coordinates,
// matching tuner.Surface's cell layout.
func (g TunerGrid) at(gi int) (ki, bi, pi int) {
	pi = gi % len(g.FaultPcts)
	bi = gi / len(g.FaultPcts) % len(g.Bytes)
	ki = gi / (len(g.FaultPcts) * len(g.Bytes))
	return
}

// F6Tables bundles the tuner experiment: the selected-algorithm map,
// the eval latencies of the selector against the static envelope, the
// regret table, and the compiled surfaces themselves (mesh first),
// ready for tuner.EncodeSet.
type F6Tables struct {
	Selection, Latency, Regret *Table
	Surfaces                   []*tuner.Surface
}

// TunerAlgos converts an exp algorithm set into tuner bindings (the
// surface algorithm vocabulary, in column order).
func TunerAlgos(algos []Algorithm) []tuner.Algo {
	out := make([]tuner.Algo, len(algos))
	for i, a := range algos {
		out[i] = tuner.Algo{Name: a.Name, Ordered: a.Ordered, Table: a.Table}
	}
	return out
}

// TunerSweep runs experiment F6 on the two paper platforms with their
// standard three-algorithm candidate sets (U-mesh/OPT-tree/OPT-mesh,
// U-min/OPT-tree/OPT-min). Each platform trains a surface on trials
// [0, Trials) and evaluates on trials [Trials, 2*Trials) — held-out
// placements and fault plans, same seeds discipline as every figure.
// faultSeed seeds the per-(pct, trial) fault plans via the F1 formula,
// so degraded cells share plans (and cache entries) with F1/F2 where
// the parameters line up.
func TunerSweep(meshSuite, bminSuite *Suite, grid TunerGrid, faultSeed uint64) (*F6Tables, error) {
	for _, p := range grid.FaultPcts {
		if p < 0 || p > 100 {
			return nil, fmt.Errorf("exp: fault percentage %d outside [0,100]", p)
		}
	}
	if grid.points() == 0 {
		return nil, fmt.Errorf("exp: empty tuner grid")
	}
	suites := []*Suite{meshSuite, bminSuite}
	algosOf := [][]Algorithm{MeshAlgorithms(), BMINAlgorithms()}
	trials := meshSuite.Trials
	if trials <= 0 {
		trials = 16
	}

	sel := &Table{
		Title:  fmt.Sprintf("F6a: crossover-surface selection map (%d-point grid, %d train + %d eval trials)", grid.points(), trials, trials),
		XLabel: "grid point",
		YLabel: "algorithm index (see notes)",
	}
	lat := &Table{
		Title:  "F6b: held-out eval latency, surface selector vs static envelope",
		XLabel: "grid point",
		YLabel: "multicast latency (cycles, mean over surviving eval runs)",
	}
	reg := &Table{
		Title:  "F6c: selector regret (vs best static) and margin (vs worst static)",
		XLabel: "grid point",
		YLabel: "latency difference (cycles; regret >= 0, margin <= 0)",
	}

	// Healthy-fabric calibration, once per (suite, message size).
	tends := make([]map[int]model.Time, len(suites))
	for si, s := range suites {
		tends[si] = make(map[int]model.Time)
		for _, b := range grid.Bytes {
			te, err := s.MeasureTEnd(b)
			if err != nil {
				return nil, err
			}
			tends[si][b] = te
			sel.Notes = append(sel.Notes, fmt.Sprintf("healthy calibration on %s: t_hold(%dB)=%d t_end(%dB)=%d",
				s.Platform.Name, b, s.Software.Hold.At(b), b, te))
		}
	}

	// One manifest over both platforms and both phases: phase 0 trains
	// on trials [0, trials), phase 1 evaluates on [trials, 2*trials).
	type job struct{ si, phase, gi, ai int }
	var jobs []job
	var cells []runner.Cell
	for si, s := range suites {
		for phase := 0; phase < 2; phase++ {
			for gi := 0; gi < grid.points(); gi++ {
				ki, bi, pi := grid.at(gi)
				k, b, pct := grid.Ks[ki], grid.Bytes[bi], grid.FaultPcts[pi]
				for ai, a := range algosOf[si] {
					for tr := 0; tr < trials; tr++ {
						trial := phase*trials + tr
						jobs = append(jobs, job{si, phase, gi, ai})
						cells = append(cells, s.faultCell(a, k, b, trial, pct,
							faultPlanSeed(faultSeed, pi, trial), s.Software.Hold.At(b), tends[si][b]))
					}
				}
			}
		}
	}
	results, have, err := meshSuite.exec().Run("F6 tuner", cells)
	if err != nil {
		return nil, err
	}
	if runner.Missing(have) > 0 {
		t := &Table{Incomplete: true}
		return &F6Tables{Selection: t, Latency: t, Regret: t}, nil
	}

	// Aggregate surviving-run latencies per (suite, phase, point, algo).
	na := len(algosOf[0])
	aggs := make([]sim.Stats, len(suites)*2*grid.points()*na)
	idx := func(si, phase, gi, ai int) int {
		return ((si*2+phase)*grid.points()+gi)*na + ai
	}
	for i, j := range jobs {
		if results[i].Failed {
			continue
		}
		aggs[idx(j.si, j.phase, j.gi, j.ai)].Add(results[i].Metric("latency"))
	}

	// Train surfaces, compile, and score the selector on eval.
	f6 := &F6Tables{Selection: sel, Latency: lat, Regret: reg}
	type score struct {
		selected            int
		evalBest, evalWorst int
		selLat, best, worst *sim.Stats
		excluded            bool
	}
	scores := make([][]score, len(suites))
	for si, s := range suites {
		names := make([]string, na)
		for ai, a := range algosOf[si] {
			names[ai] = a.Name
		}
		surf := tuner.New(s.Platform.Name, names, grid.Ks, grid.Bytes, grid.FaultPcts)
		for gi := 0; gi < grid.points(); gi++ {
			ki, bi, pi := grid.at(gi)
			for ai := 0; ai < na; ai++ {
				if st := &aggs[idx(si, 0, gi, ai)]; st.N() > 0 {
					surf.Set(ki, bi, pi, ai, st.Mean())
				}
			}
		}
		if err := surf.Compile(); err != nil {
			return nil, err
		}
		f6.Surfaces = append(f6.Surfaces, surf)
		sel.Notes = append(sel.Notes, fmt.Sprintf("%s surface hash %s", s.Platform.Name, surf.Hash()))

		scores[si] = make([]score, grid.points())
		for gi := 0; gi < grid.points(); gi++ {
			ki, bi, pi := grid.at(gi)
			sc := &scores[si][gi]
			sc.selected = surf.Select(grid.Ks[ki], grid.Bytes[bi], grid.FaultPcts[pi])
			sc.evalBest, sc.evalWorst = -1, -1
			for ai := 0; ai < na; ai++ {
				st := &aggs[idx(si, 1, gi, ai)]
				if st.N() == 0 {
					continue
				}
				if sc.evalBest < 0 || st.Mean() < aggs[idx(si, 1, gi, sc.evalBest)].Mean() {
					sc.evalBest = ai
				}
				if sc.evalWorst < 0 || st.Mean() > aggs[idx(si, 1, gi, sc.evalWorst)].Mean() {
					sc.evalWorst = ai
				}
			}
			sc.selLat = &aggs[idx(si, 1, gi, sc.selected)]
			if sc.evalBest < 0 || sc.selLat.N() == 0 {
				sc.excluded = true
				sel.Notes = append(sel.Notes, fmt.Sprintf("point %d on %s excluded: no surviving eval runs", gi, s.Platform.Name))
				continue
			}
			sc.best = &aggs[idx(si, 1, gi, sc.evalBest)]
			sc.worst = &aggs[idx(si, 1, gi, sc.evalWorst)]
		}
	}

	// Assemble the three tables, one row per grid point.
	short := []string{"mesh", "BMIN"}
	for si := range suites {
		sel.Algorithms = append(sel.Algorithms, "selected ("+short[si]+")", "eval best ("+short[si]+")")
		lat.Algorithms = append(lat.Algorithms, "selector ("+short[si]+")", "best static ("+short[si]+")", "worst static ("+short[si]+")")
		reg.Algorithms = append(reg.Algorithms, "regret ("+short[si]+")", "margin ("+short[si]+")")
	}
	match := make([]int, len(suites))
	scored := make([]int, len(suites))
	for gi := 0; gi < grid.points(); gi++ {
		selRow := Row{X: float64(gi)}
		latRow := Row{X: float64(gi)}
		regRow := Row{X: float64(gi)}
		for si := range suites {
			sc := &scores[si][gi]
			if sc.excluded {
				selRow.Cells = append(selRow.Cells, Cell{Mean: float64(sc.selected)}, Cell{Mean: -1})
				latRow.Cells = append(latRow.Cells, Cell{}, Cell{}, Cell{})
				regRow.Cells = append(regRow.Cells, Cell{}, Cell{})
				continue
			}
			scored[si]++
			// "Matches best static" tolerates exact ties: the selector
			// matched if its eval mean equals the best algorithm's.
			if sc.selLat.Mean() == sc.best.Mean() {
				match[si]++
			}
			selRow.Cells = append(selRow.Cells,
				Cell{Mean: float64(sc.selected), N: sc.selLat.N()},
				Cell{Mean: float64(sc.evalBest), N: sc.best.N()})
			latRow.Cells = append(latRow.Cells,
				Cell{Mean: sc.selLat.Mean(), CI95: sc.selLat.CI95(), N: sc.selLat.N()},
				Cell{Mean: sc.best.Mean(), CI95: sc.best.CI95(), N: sc.best.N()},
				Cell{Mean: sc.worst.Mean(), CI95: sc.worst.CI95(), N: sc.worst.N()})
			regRow.Cells = append(regRow.Cells,
				Cell{Mean: sc.selLat.Mean() - sc.best.Mean(), N: sc.selLat.N()},
				Cell{Mean: sc.selLat.Mean() - sc.worst.Mean(), N: sc.selLat.N()})
		}
		sel.Rows = append(sel.Rows, selRow)
		lat.Rows = append(lat.Rows, latRow)
		reg.Rows = append(reg.Rows, regRow)
	}

	// Legend and methodology notes.
	for gi := 0; gi < grid.points(); gi++ {
		ki, bi, pi := grid.at(gi)
		sel.Notes = append(sel.Notes, fmt.Sprintf("point %d: k=%d, %d-byte messages, %d%% dead links",
			gi, grid.Ks[ki], grid.Bytes[bi], grid.FaultPcts[pi]))
	}
	for si := range suites {
		names := make([]string, na)
		for ai, a := range algosOf[si] {
			names[ai] = fmt.Sprintf("%d=%s", ai, a.Name)
		}
		sel.Notes = append(sel.Notes, fmt.Sprintf("%s algorithm indices: %s", short[si], join(names)))
		reg.Notes = append(reg.Notes, fmt.Sprintf("selector matched best static on %d/%d scored %s points",
			match[si], scored[si], short[si]))
	}
	sel.Notes = append(sel.Notes, fmt.Sprintf("%d random placements per (point, algorithm, phase) on seed %d, fault seed %d; eval uses held-out trials [%d,%d)",
		trials, meshSuite.Seed, faultSeed, trials, 2*trials))
	reg.Notes = append(reg.Notes, "regret = selector eval latency - best static (0 when the surface picked the eval winner); margin = selector - worst static (never > 0 unless the surface mis-ranked the envelope)")
	return f6, nil
}

// join renders a name list as comma-separated text.
func join(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ", "
		}
		out += x
	}
	return out
}
