package exp

// Determinism battery for the F6 tuner sweep: the crossover surface
// built serially must be byte-identical to one built as 2 shards and
// merged from the warm cache, and the compiled selector decisions must
// agree across the fast, reference and domain-parallel wormhole
// kernels and across reruns. (The recalibration switch-point
// regression lives in internal/tuner.)

import (
	"testing"

	"repro/internal/bmin"
	"repro/internal/runner"
	"repro/internal/tuner"
	"repro/internal/wormhole"
)

func tunerTestGrid() TunerGrid {
	return TunerGrid{Ks: []int{4, 8}, Bytes: []int{512}, FaultPcts: []int{0, 1}}
}

// tunerSweep runs the reference F6 sweep on the small platforms under
// the given kernel wrap and exec. wrap is applied to each platform's
// NewNet (nil = stock fast kernel).
func tunerSweep(t *testing.T, wrap func(*wormhole.Network), ex *runner.Exec) *F6Tables {
	t.Helper()
	onKernel := func(p Platform) Platform {
		if wrap == nil {
			return p
		}
		base := p.NewNet
		p.NewNet = func() *wormhole.Network {
			n := base()
			wrap(n)
			return n
		}
		return p
	}
	mesh := DefaultSuite(onKernel(MeshPlatform(8, 8, wormhole.DefaultConfig())))
	bm := DefaultSuite(onKernel(BMINPlatform(64, bmin.AscentStraight, wormhole.DefaultConfig())))
	mesh.Trials, bm.Trials = 2, 2
	mesh.Workers, bm.Workers = 2, 2
	mesh.Exec, bm.Exec = ex, ex
	f6, err := TunerSweep(mesh, bm, tunerTestGrid(), 7)
	if err != nil {
		t.Fatal(err)
	}
	return f6
}

// f6Format renders everything a golden byte-identity check cares
// about: all three tables plus the surface-set artifact bytes.
func f6Format(t *testing.T, f6 *F6Tables) string {
	t.Helper()
	buf, err := tuner.EncodeSet(f6.Surfaces...)
	if err != nil {
		t.Fatal(err)
	}
	return f6.Selection.Format() + "\n" + f6.Latency.Format() + "\n" +
		f6.Regret.Format() + "\n" + string(buf)
}

// TestTunerSweepShardedBitIdentical: the surface built serially equals
// the surface built as 2 shards and merged — tables and encoded
// artifact byte for byte — and the warm merge recomputes nothing.
func TestTunerSweepShardedBitIdentical(t *testing.T) {
	serial := f6Format(t, tunerSweep(t, nil, nil))
	dir := t.TempDir()
	for sh := 0; sh < 2; sh++ {
		part := tunerSweep(t, nil, &runner.Exec{Shard: sh, NShards: 2, Cache: openCache(t, dir), Resume: true})
		if sh == 0 && !part.Selection.Incomplete {
			t.Fatal("shard 0/2 table not marked incomplete")
		}
	}
	sum := &runner.Summary{}
	merged := tunerSweep(t, nil, &runner.Exec{Cache: openCache(t, dir), Resume: true, Summary: sum})
	if merged.Selection.Incomplete {
		t.Fatal("merge run incomplete")
	}
	if got := f6Format(t, merged); got != serial {
		t.Fatalf("sharded F6 differs from serial cold run:\nserial:\n%s\nmerged:\n%s", serial, got)
	}
	if sum.Computed != 0 || sum.Cached == 0 {
		t.Fatalf("merge computed %d cells (want 0), cached %d", sum.Computed, sum.Cached)
	}
}

// TestTunerSurfaceKernelAgreement: the fast, reference and
// domain-parallel kernels build content-identical surfaces, so the
// compiled selector decisions cannot depend on which kernel measured
// the training cells. A rerun on the same kernel must also agree
// (replay determinism).
func TestTunerSurfaceKernelAgreement(t *testing.T) {
	wraps := map[string]func(*wormhole.Network){
		"fast":      func(n *wormhole.Network) { n.SetKernel(wormhole.KernelFast) },
		"reference": func(n *wormhole.Network) { n.SetKernel(wormhole.KernelReference) },
		"parallel": func(n *wormhole.Network) {
			n.SetKernel(wormhole.KernelFast)
			n.SetParallelism(2)
		},
	}
	base := f6Format(t, tunerSweep(t, wraps["fast"], nil))
	for name, wrap := range wraps {
		got := f6Format(t, tunerSweep(t, wrap, nil))
		if got != base {
			t.Errorf("kernel %s diverged from fast kernel:\nfast:\n%s\n%s:\n%s", name, base, name, got)
		}
	}
}
