package exp

import (
	"strings"
	"testing"

	"repro/internal/bmin"
	"repro/internal/model"
	"repro/internal/wormhole"
)

func smallMeshSuite() *Suite {
	s := DefaultSuite(MeshPlatform(8, 8, wormhole.DefaultConfig()))
	s.Trials = 4
	return s
}

func smallBMINSuite() *Suite {
	s := DefaultSuite(BMINPlatform(64, bmin.AscentStraight, wormhole.DefaultConfig()))
	s.Trials = 4
	return s
}

// TestFigure1ExactNumbers: the worked example must match the paper
// exactly: OPT 130, U-mesh 165.
func TestFigure1ExactNumbers(t *testing.T) {
	f, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if f.OptLatency != 130 {
		t.Errorf("OPT latency = %d, paper says 130", f.OptLatency)
	}
	if f.UMeshLat != 165 {
		t.Errorf("U-mesh latency = %d, paper says 165", f.UMeshLat)
	}
	if f.OptTree.Size() != 8 || f.UMeshTree.Size() != 8 {
		t.Error("trees do not cover 8 nodes")
	}
	if err := f.OptTree.Validate(); err != nil {
		t.Error(err)
	}
}

// TestSweepSizesShapeAndOrdering: table structure is sound; the tuned
// OPT-mesh never loses to U-mesh; both are contention-free.
func TestSweepSizesShapeAndOrdering(t *testing.T) {
	s := smallMeshSuite()
	tab, err := s.SweepSizes("test", 12, []int{0, 4096}, MeshAlgorithms())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 || len(tab.Algorithms) != 3 {
		t.Fatalf("table shape: %d rows, %d algos", len(tab.Rows), len(tab.Algorithms))
	}
	for _, r := range tab.Rows {
		for ai, c := range r.Cells {
			if c.N != s.Trials {
				t.Fatalf("cell N = %d, want %d", c.N, s.Trials)
			}
			if c.Mean <= 0 {
				t.Fatalf("non-positive latency in column %s", tab.Algorithms[ai])
			}
		}
		umesh, opttree, optmesh := r.Cells[0], r.Cells[1], r.Cells[2]
		if optmesh.Mean > umesh.Mean {
			t.Fatalf("x=%v: OPT-mesh %v worse than U-mesh %v", r.X, optmesh.Mean, umesh.Mean)
		}
		if optmesh.Blocked != 0 || umesh.Blocked != 0 {
			t.Fatalf("x=%v: tuned algorithms contended (U-mesh %v, OPT-mesh %v)", r.X, umesh.Blocked, optmesh.Blocked)
		}
		if opttree.Mean < optmesh.Mean {
			t.Fatalf("x=%v: unordered OPT-tree %v beat contention-free OPT-mesh %v", r.X, opttree.Mean, optmesh.Mean)
		}
	}
}

// TestSweepNodesMonotone: more nodes never makes the multicast faster.
func TestSweepNodesMonotone(t *testing.T) {
	s := smallMeshSuite()
	tab, err := s.SweepNodes("test", 1024, []int{4, 16, 64}, MeshAlgorithms())
	if err != nil {
		t.Fatal(err)
	}
	for ai := range tab.Algorithms {
		for i := 1; i < len(tab.Rows); i++ {
			if tab.Rows[i].Cells[ai].Mean < tab.Rows[i-1].Cells[ai].Mean {
				t.Fatalf("%s: latency decreased from k=%v to k=%v", tab.Algorithms[ai], tab.Rows[i-1].X, tab.Rows[i].X)
			}
		}
	}
}

// TestBMINSweepContentionFree: U-min and OPT-min are contention-free on
// the straight-ascent BMIN.
func TestBMINSweepContentionFree(t *testing.T) {
	s := smallBMINSuite()
	tab, err := s.SweepSizes("test", 12, []int{2048}, BMINAlgorithms())
	if err != nil {
		t.Fatal(err)
	}
	r := tab.Rows[0]
	if r.Cells[0].Blocked != 0 || r.Cells[2].Blocked != 0 {
		t.Fatalf("U-min blocked %v, OPT-min blocked %v", r.Cells[0].Blocked, r.Cells[2].Blocked)
	}
	if r.Cells[2].Mean > r.Cells[0].Mean {
		t.Fatalf("OPT-min %v worse than U-min %v", r.Cells[2].Mean, r.Cells[0].Mean)
	}
}

// TestMeasureTEndSaneAndDeterministic.
func TestMeasureTEnd(t *testing.T) {
	s := smallMeshSuite()
	a, err := s.MeasureTEnd(4096)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.MeasureTEnd(4096)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("calibration not deterministic: %d vs %d", a, b)
	}
	// Lower bound: software costs plus flit count; upper: plus the whole
	// fabric diameter several times over.
	soft := s.Software.Send.At(4096) + s.Software.Recv.At(4096)
	flits := int64(wormhole.DefaultConfig().Flits(4096))
	if a < soft+flits || a > soft+flits+1000 {
		t.Fatalf("t_end(4096) = %d out of sane range [%d, %d]", a, soft+flits, soft+flits+1000)
	}
}

// TestFitParams recovers a linear t_net with small residual.
func TestFitParams(t *testing.T) {
	s := smallMeshSuite()
	p, err := s.FitParams([]int{0, 1024, 4096, 16384})
	if err != nil {
		t.Fatal(err)
	}
	if p.Net.PerByte <= 0 || p.Net.Fixed <= 0 {
		t.Fatalf("fitted t_net = %v", p.Net)
	}
	// The fabric moves one 8-byte flit per cycle: per-byte cost ~1/8.
	if p.Net.PerByte < 0.1 || p.Net.PerByte > 0.15 {
		t.Fatalf("t_net per-byte %v, expected ~0.125", p.Net.PerByte)
	}
}

// TestRatioAblationProperties: binomial == OPT at ratio 1; sequential
// beats binomial at tiny ratios; OPT lower-bounds everything.
func TestRatioAblationProperties(t *testing.T) {
	tab := RatioAblation(16, 1000, []float64{0.01, 0.25, 0.5, 1.0})
	for _, r := range tab.Rows {
		opt, bino, seq := r.Cells[0].Mean, r.Cells[1].Mean, r.Cells[2].Mean
		if opt > bino || opt > seq {
			t.Fatalf("ratio %v: OPT %v not a lower bound (bin %v, seq %v)", r.X, opt, bino, seq)
		}
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last.Cells[0].Mean != last.Cells[1].Mean {
		t.Fatalf("at ratio 1, OPT %v != binomial %v", last.Cells[0].Mean, last.Cells[1].Mean)
	}
	first := tab.Rows[0]
	if first.Cells[2].Mean >= first.Cells[1].Mean {
		t.Fatalf("at ratio 0.01, sequential %v should beat binomial %v", first.Cells[2].Mean, first.Cells[1].Mean)
	}
}

// TestContentionComparisonStructure: tuned columns are zero; unordered
// columns show some contention overall.
func TestContentionComparisonStructure(t *testing.T) {
	ms, bs := smallMeshSuite(), smallBMINSuite()
	ms.Trials, bs.Trials = 6, 6
	tab, err := ContentionComparison(ms, bs, 24, []int{4096})
	if err != nil {
		t.Fatal(err)
	}
	r := tab.Rows[0]
	if r.Cells[1].Mean != 0 || r.Cells[3].Mean != 0 {
		t.Fatalf("tuned algorithms contended: %+v", r)
	}
	if r.Cells[0].Mean+r.Cells[2].Mean == 0 {
		t.Fatal("unordered OPT-tree showed no contention anywhere; comparison is vacuous")
	}
}

// TestAddrAblationCharges: charged addresses never make the multicast
// faster.
func TestAddrAblationCharges(t *testing.T) {
	s := smallMeshSuite()
	s.Trials = 3
	tab, err := AddrAblation(s, 16, 1024, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r.Cells[1].Mean < r.Cells[0].Mean {
			t.Fatalf("k=%v: charged %v < free %v", r.X, r.Cells[1].Mean, r.Cells[0].Mean)
		}
	}
}

// TestPolicyAblationRuns and keeps tuned OPT-min contention-free under
// the adaptive policies too.
func TestPolicyAblationRuns(t *testing.T) {
	tab, err := PolicyAblation(64, wormhole.DefaultConfig(), model.DefaultSoftware(), 3, 11, 16, 2048, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, r := range tab.Rows {
		if i == 1 {
			continue // dest ascent is the known-contending policy
		}
		if r.Cells[1].Mean != 0 {
			t.Fatalf("policy row %d: OPT-min blocked %v", i, r.Cells[1].Mean)
		}
	}
}

// TestTableRendering: Format and CSV are structurally sound.
func TestTableRendering(t *testing.T) {
	tab := RatioAblation(8, 100, []float64{0.5, 1.0})
	text := tab.Format()
	if !strings.Contains(text, "OPT") || !strings.Contains(text, "binomial") {
		t.Fatalf("Format missing columns:\n%s", text)
	}
	if !strings.Contains(text, tab.Title) {
		t.Fatal("Format missing title")
	}
	csv := tab.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3", len(lines))
	}
	if got := strings.Count(lines[1], ","); got != 9 {
		t.Fatalf("CSV data row has %d commas, want 9 (x + 3 algos x 3 fields)", got)
	}
}

// TestTableColumns: Column and BlockedColumn extract series.
func TestTableColumns(t *testing.T) {
	tab := RatioAblation(8, 100, []float64{0.5, 1.0})
	xs, means, ok := tab.Column("binomial")
	if !ok || len(xs) != 2 || len(means) != 2 {
		t.Fatal("Column failed")
	}
	if _, _, ok := tab.Column("nope"); ok {
		t.Fatal("Column found a missing algorithm")
	}
	if _, _, ok := tab.BlockedColumn("OPT"); !ok {
		t.Fatal("BlockedColumn failed")
	}
	if _, _, ok := tab.BlockedColumn("nope"); ok {
		t.Fatal("BlockedColumn found a missing algorithm")
	}
}

// TestSweepDeterministic: identical suites render identical tables.
func TestSweepDeterministic(t *testing.T) {
	run := func() string {
		s := smallMeshSuite()
		tab, err := s.SweepSizes("d", 10, []int{512}, MeshAlgorithms())
		if err != nil {
			t.Fatal(err)
		}
		return tab.Format()
	}
	if run() != run() {
		t.Fatal("sweeps diverged across runs")
	}
}

// TestSweepWorkerInvariance: the sim.ForEach fan-out must not affect
// results — a sweep rendered with one worker is byte-identical to the
// same sweep with several, both on the default stall-aware kernel (every
// sweep fabric also exercises worm recycling via newNet) and on the
// reference kernel, so worker count can never leak into tables.
func TestSweepWorkerInvariance(t *testing.T) {
	run := func(workers int, k wormhole.Kernel) string {
		p := MeshPlatform(8, 8, wormhole.DefaultConfig())
		base := p.NewNet
		p.NewNet = func() *wormhole.Network {
			n := base()
			n.SetKernel(k)
			return n
		}
		s := DefaultSuite(p)
		s.Trials = 4
		s.Workers = workers
		tab, err := s.SweepSizes("d", 12, []int{256, 4096}, MeshAlgorithms())
		if err != nil {
			t.Fatal(err)
		}
		return tab.Format()
	}
	fast1 := run(1, wormhole.KernelFast)
	if fast4 := run(4, wormhole.KernelFast); fast4 != fast1 {
		t.Fatalf("fast-kernel sweep depends on worker count:\n1 worker:\n%s\n4 workers:\n%s", fast1, fast4)
	}
	if ref4 := run(4, wormhole.KernelReference); ref4 != fast1 {
		t.Fatalf("reference-kernel sweep diverges from fast kernel:\nfast:\n%s\nreference:\n%s", fast1, ref4)
	}
}

// TestDefaultAxes: the canonical x axes match the paper.
func TestDefaultAxes(t *testing.T) {
	sizes := DefaultSizes()
	if len(sizes) != 9 || sizes[0] != 0 || sizes[8] != 65536 {
		t.Fatalf("sizes = %v", sizes)
	}
	ks := DefaultNodeCounts(256)
	if ks[0] != 4 || ks[len(ks)-1] != 256 {
		t.Fatalf("node counts = %v", ks)
	}
	if got := DefaultNodeCounts(128); got[len(got)-1] != 128 {
		t.Fatalf("clamped node counts = %v", got)
	}
}

// TestPlacementProperties: placements are distinct addresses in range and
// differ across trials.
func TestPlacementProperties(t *testing.T) {
	s := smallMeshSuite()
	a := s.placement(0, 16)
	b := s.placement(1, 16)
	seen := map[int]bool{}
	for _, v := range a {
		if v < 0 || v >= s.Platform.Nodes || seen[v] {
			t.Fatalf("bad placement %v", a)
		}
		seen[v] = true
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("trials 0 and 1 drew identical placements")
	}
}
