package exp

// Experiment F3: open-system service under sustained multicast load.
// Every other figure is closed-system — one multicast (or one batch) per
// measurement. F3 drives the internal/traffic engine instead: seeded
// Poisson (or bursty) arrivals at a swept offered rate, a mixed-k
// mixed-size workload, and a bounded service stage, all on one shared
// fabric. The output is the classic throughput/latency pair of curves:
// delivered rate vs offered rate (which peels away from the diagonal at
// saturation) and p99 completion latency vs offered rate (which turns
// upward at the same knee). The paper's tuning claim reappears here as a
// capacity claim: a tree that is faster in isolation saturates the
// open system at a higher offered rate.

import (
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// F3Tables bundles the three views of experiment F3 over one rate sweep.
type F3Tables struct {
	// Latency is p99 completion latency (arrival to last delivery,
	// queueing included) vs offered rate.
	Latency *Table
	// Throughput is delivered rate vs offered rate, with the measured
	// offered rate as a reference column; a gap between a series and the
	// reference marks saturation.
	Throughput *Table
	// Queue is the mean admission-queue delay vs offered rate — the
	// queueing-theory view of the same knee.
	Queue *Table
}

// TrafficScenario pins the workload and admission axes shared by every
// cell of one F3 sweep; the offered rate is the x axis.
type TrafficScenario struct {
	// Ks and Sizes are the per-request group-size and message-size mixes.
	Ks, Sizes []int
	// Requests arrivals per run, the first Warmup excluded from metrics.
	Requests, Warmup int
	// Arrival is traffic.ArrivalPoisson or traffic.ArrivalBursty;
	// OnCycles/OffCycles shape the bursty windows (0 = engine defaults).
	Arrival             string
	OnCycles, OffCycles int64
	// Admission is traffic.AdmissionFIFO or traffic.AdmissionBounded,
	// with the service parallelism and (bounded) queue bound.
	Admission             string
	MaxInFlight, QueueCap int
	// HotFrac/HotNodes add destination hot-spot skew (0 = uniform).
	HotFrac  float64
	HotNodes int
	// Trials is the number of independent runs per (rate, algorithm)
	// point. Each trial is a full open-system run, so F3 keeps this far
	// below the closed-system figures' 16.
	Trials int
}

// DefaultTrafficScenario is the headline F3 configuration: Poisson
// arrivals, a mixed workload, FIFO admission with 4-way service.
func DefaultTrafficScenario() TrafficScenario {
	return TrafficScenario{
		Ks:          []int{8, 16},
		Sizes:       []int{1024},
		Requests:    96,
		Warmup:      16,
		Arrival:     traffic.ArrivalPoisson,
		Admission:   traffic.AdmissionFIFO,
		MaxInFlight: 4,
		Trials:      3,
	}
}

// DefaultTrafficRates is the offered-rate grid (requests per Mcycle) of
// the headline F3 figure, spanning well below to well past the knee of
// the default scenario on the 16x16 mesh and 128-node BMIN.
func DefaultTrafficRates() []int {
	return []int{50, 100, 200, 400, 800, 1600}
}

// extra canonically encodes the scenario and the measured calibration
// for the cell key: everything that shapes a traffic run and is not
// already a first-class Key field.
func (sc TrafficScenario) extra(tends map[int]model.Time) string {
	ints := func(xs []int) string {
		parts := make([]string, len(xs))
		for i, x := range xs {
			parts[i] = fmt.Sprint(x)
		}
		return strings.Join(parts, "+")
	}
	tendParts := make([]string, len(sc.Sizes))
	for i, b := range sc.Sizes {
		tendParts[i] = fmt.Sprintf("%d:%d", b, tends[b])
	}
	return fmt.Sprintf("arr=%s/%d/%d,adm=%s/%d/%d,req=%d,warm=%d,ks=%s,sizes=%s,hot=%g/%d,tends=%s",
		sc.Arrival, sc.OnCycles, sc.OffCycles,
		sc.Admission, sc.MaxInFlight, sc.QueueCap,
		sc.Requests, sc.Warmup, ints(sc.Ks), ints(sc.Sizes),
		sc.HotFrac, sc.HotNodes, strings.Join(tendParts, "+"))
}

// trafficCell builds the engine cell for one open-system run: algorithm
// a serving scenario sc at the given offered rate on the suite's fabric.
// The rate rides in Key.X and the scenario (plus the measured t_end per
// size) in Key.Extra, so the key pins every input without widening the
// schema. Every reported metric is a deterministic function of the key,
// so cache round-trips replay a computed cell bit for bit.
func (s *Suite) trafficCell(a Algorithm, rate, trial int, sc TrafficScenario, tends map[int]model.Time) runner.Cell {
	return runner.Cell{
		Key: runner.Key{
			Mode: "traffic", Platform: s.Platform.Name, Algo: a.keyID(), Soft: s.softKey(),
			X: rate, Trial: trial, Seed: s.Seed, AddrBytes: s.AddrBytes,
			Extra: sc.extra(tends),
		},
		Run: func() (runner.Result, error) {
			var less func(x, y int) bool
			if a.Ordered {
				less = s.Platform.Less
			}
			res, err := traffic.Run(s.Platform.NewNet(), traffic.Config{
				Software:  s.Software,
				AddrBytes: s.AddrBytes,
				Arrival: traffic.ArrivalSpec{
					Kind: sc.Arrival, RatePerMcycle: float64(rate),
					OnCycles: sc.OnCycles, OffCycles: sc.OffCycles,
				},
				Load:     traffic.Workload{Ks: sc.Ks, Sizes: sc.Sizes, HotFrac: sc.HotFrac, HotNodes: sc.HotNodes},
				Admit:    traffic.Admission{Policy: sc.Admission, MaxInFlight: sc.MaxInFlight, QueueCap: sc.QueueCap},
				Requests: sc.Requests,
				Warmup:   sc.Warmup,
				Less:     less,
				Plan:     a.Table,
				TEnd:     func(b int) model.Time { return tends[b] },
				// The same per-trial seed derivation as Suite.placement, so
				// every algorithm at every rate of a trial faces the same
				// arrival pattern and workload mix — common random numbers
				// across series, as in the closed-system sweeps.
				Seed: s.Seed + uint64(trial)*0x9e37,
			})
			if err != nil {
				return runner.Result{}, err
			}
			m := res.Metrics
			return runner.Result{Metrics: map[string]float64{
				"offered":   m.OfferedPerMcycle,
				"delivered": m.DeliveredPerMcycle,
				"p50":       m.P50,
				"p99":       m.P99,
				"p999":      m.P999,
				"meanlat":   m.MeanLatency,
				"qdelay":    m.MeanQueueDelay,
				"maxqdelay": float64(m.MaxQueueDelay),
				"occ":       m.MeanOccupancy,
				"shed":      float64(m.ShedMeasured),
			}}, nil
		},
	}
}

// SaturationFactor is the knee criterion of the F3 notes and tests: a
// series is saturated at the first rate whose mean p99 completion
// latency reaches this multiple of its lowest-rate p99 (or where any
// measured request was shed).
const SaturationFactor = 3.0

// SaturationRate finds column col's saturation point in an F3 latency
// table: the first row whose mean reaches factor times the first row's
// mean, or whose N carries a shed marker via the companion sheds slice
// (nil = ignore sheds). ok is false when the sweep never saturates —
// the series sustains every offered rate tried.
func SaturationRate(latency *Table, col int, sheds []int, factor float64) (rate float64, ok bool) {
	if len(latency.Rows) == 0 {
		return 0, false
	}
	base := latency.Rows[0].Cells[col].Mean
	for ri, row := range latency.Rows {
		if row.Cells[col].Mean >= base*factor && base > 0 {
			return row.X, true
		}
		if sheds != nil && sheds[ri] > 0 {
			return row.X, true
		}
	}
	return 0, false
}

// TrafficSweep runs experiment F3: the scenario's open-system workload
// at each offered rate in rates, for the five tuned-tree series (U-mesh,
// OPT-tree, OPT-mesh on the mesh suite; U-min, OPT-min on the BMIN
// suite). Rates are requests per Mcycle, each > 0, in increasing order.
func TrafficSweep(meshSuite, bminSuite *Suite, rates []int, sc TrafficScenario) (*F3Tables, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("exp: traffic sweep needs at least one offered rate")
	}
	for i, r := range rates {
		if r <= 0 {
			return nil, fmt.Errorf("exp: offered rate %d must be > 0 requests/Mcycle", r)
		}
		if i > 0 && r <= rates[i-1] {
			return nil, fmt.Errorf("exp: offered rates must increase (got %d after %d)", r, rates[i-1])
		}
	}
	type column struct {
		suite *Suite
		algo  Algorithm
	}
	cols := []column{
		{meshSuite, Binomial("U-mesh")},
		{meshSuite, OptUnordered("OPT-tree")},
		{meshSuite, Opt("OPT-mesh")},
		{bminSuite, Binomial("U-min")},
		{bminSuite, Opt("OPT-min")},
	}
	trials := sc.Trials
	if trials <= 0 {
		trials = 3
	}
	sc.Trials = trials

	algoNames := make([]string, len(cols))
	for i, c := range cols {
		algoNames[i] = c.algo.Name
	}
	mix := fmt.Sprintf("k in %v, sizes %v", sc.Ks, sc.Sizes)
	newTable := func(title, ylabel string, algos []string) *Table {
		return &Table{
			Title:      title,
			XLabel:     "offered load (requests/Mcycle)",
			YLabel:     ylabel,
			Algorithms: algos,
		}
	}
	f3 := &F3Tables{
		Latency: newTable(
			fmt.Sprintf("F3a: p99 completion latency vs offered load (%s, %s arrivals)", mix, sc.Arrival),
			"p99 completion latency (cycles, arrival to last delivery)", algoNames),
		Throughput: newTable(
			fmt.Sprintf("F3b: delivered throughput vs offered load (%s, %s arrivals)", mix, sc.Arrival),
			"delivered rate (requests/Mcycle, measured window)",
			append(append([]string{}, algoNames...), "offered (measured)")),
		Queue: newTable(
			fmt.Sprintf("F3c: admission-queue delay vs offered load (%s, %s arrivals)", mix, sc.Arrival),
			"mean queueing delay (cycles, arrival to service start)", algoNames),
	}

	// Healthy-fabric calibration once per suite per message size; the
	// trees are planned from the same measured t_end at every rate.
	tendsByCol := make([]map[int]model.Time, len(cols))
	for ci, c := range cols {
		if ci > 0 && cols[ci-1].suite == c.suite {
			tendsByCol[ci] = tendsByCol[ci-1]
			continue
		}
		tends := make(map[int]model.Time, len(sc.Sizes))
		for _, b := range sc.Sizes {
			te, err := c.suite.MeasureTEnd(b)
			if err != nil {
				return nil, err
			}
			tends[b] = te
			f3.Latency.Notes = append(f3.Latency.Notes,
				fmt.Sprintf("calibration on %s: t_hold(%dB)=%d t_end(%dB)=%d",
					c.suite.Platform.Name, b, c.suite.Software.Hold.At(b), b, te))
		}
		tendsByCol[ci] = tends
	}
	f3.Latency.Notes = append(f3.Latency.Notes,
		fmt.Sprintf("%d runs per point, %d requests per run (first %d warm-up), admission %s x%d, seed %d",
			trials, sc.Requests, sc.Warmup, sc.Admission, sc.MaxInFlight, meshSuite.Seed))

	type job struct{ ri, ci, trial int }
	var jobs []job
	var cells []runner.Cell
	for ri, rate := range rates {
		for ci, c := range cols {
			for tr := 0; tr < trials; tr++ {
				jobs = append(jobs, job{ri, ci, tr})
				cells = append(cells, c.suite.trafficCell(c.algo, rate, tr, sc, tendsByCol[ci]))
			}
		}
	}
	results, have, err := meshSuite.exec().Run(f3.Latency.Title, cells)
	if err != nil {
		return nil, err
	}
	if runner.Missing(have) > 0 {
		f3.Latency.Incomplete = true
		f3.Throughput.Incomplete = true
		f3.Queue.Incomplete = true
		return f3, nil
	}

	type agg struct {
		p99, del, qd sim.Stats
		shed         int
	}
	aggs := make([]agg, len(rates)*len(cols))
	offeredByRow := make([]sim.Stats, len(rates))
	for i, j := range jobs {
		a := &aggs[j.ri*len(cols)+j.ci]
		res := &results[i]
		a.p99.Add(res.Metric("p99"))
		a.del.Add(res.Metric("delivered"))
		a.qd.Add(res.Metric("qdelay"))
		a.shed += int(res.Metric("shed"))
		offeredByRow[j.ri].Add(res.Metric("offered"))
	}
	shedsByCol := make([][]int, len(cols))
	for ci := range cols {
		shedsByCol[ci] = make([]int, len(rates))
	}
	f3.Latency.Rows = make([]Row, len(rates))
	f3.Throughput.Rows = make([]Row, len(rates))
	f3.Queue.Rows = make([]Row, len(rates))
	for ri, rate := range rates {
		latRow := Row{X: float64(rate), Cells: make([]Cell, len(cols))}
		thrRow := Row{X: float64(rate), Cells: make([]Cell, len(cols)+1)}
		quRow := Row{X: float64(rate), Cells: make([]Cell, len(cols))}
		for ci := range cols {
			a := &aggs[ri*len(cols)+ci]
			latRow.Cells[ci] = Cell{Mean: a.p99.Mean(), CI95: a.p99.CI95(), N: a.p99.N()}
			thrRow.Cells[ci] = Cell{Mean: a.del.Mean(), CI95: a.del.CI95(), N: a.del.N()}
			quRow.Cells[ci] = Cell{Mean: a.qd.Mean(), CI95: a.qd.CI95(), N: a.qd.N()}
			shedsByCol[ci][ri] = a.shed
			if a.shed > 0 {
				f3.Throughput.Notes = append(f3.Throughput.Notes,
					fmt.Sprintf("%s at %d req/Mcycle: %d measured requests shed across %d runs",
						cols[ci].algo.Name, rate, a.shed, trials))
			}
		}
		o := &offeredByRow[ri]
		thrRow.Cells[len(cols)] = Cell{Mean: o.Mean(), CI95: o.CI95(), N: o.N()}
		f3.Latency.Rows[ri] = latRow
		f3.Throughput.Rows[ri] = thrRow
		f3.Queue.Rows[ri] = quRow
	}

	// Saturation post-pass: where each series' latency curve leaves the
	// low-load regime. This is the figure's capacity claim in one line
	// per series.
	for ci, c := range cols {
		if sat, ok := SaturationRate(f3.Latency, ci, shedsByCol[ci], SaturationFactor); ok {
			f3.Latency.Notes = append(f3.Latency.Notes,
				fmt.Sprintf("saturation %s (%s): ~%g req/Mcycle (p99 >= %gx its low-load value)",
					c.algo.Name, c.suite.Platform.Name, sat, SaturationFactor))
		} else {
			f3.Latency.Notes = append(f3.Latency.Notes,
				fmt.Sprintf("saturation %s (%s): not reached at %d req/Mcycle",
					c.algo.Name, c.suite.Platform.Name, rates[len(rates)-1]))
		}
	}
	return f3, nil
}
