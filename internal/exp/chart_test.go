package exp

import (
	"strings"
	"testing"
)

func TestChartRendersAllSeries(t *testing.T) {
	tab := RatioAblation(16, 1000, []float64{0.1, 0.5, 1.0})
	c := tab.Chart(60, 12)
	for _, mark := range []string{"a = OPT", "b = binomial", "c = sequential"} {
		if !strings.Contains(c, mark) {
			t.Fatalf("legend missing %q:\n%s", mark, c)
		}
	}
	// All three marks (or collision stars) must appear in the plot area.
	body := c[:strings.Index(c, "a = OPT")]
	for _, mark := range []string{"a", "b", "c"} {
		if !strings.Contains(body, mark) && !strings.Contains(body, "*") {
			t.Fatalf("mark %q never plotted:\n%s", mark, c)
		}
	}
	if !strings.Contains(c, tab.Title) || !strings.Contains(c, tab.XLabel) {
		t.Fatal("chart missing title or x label")
	}
}

func TestChartAxisLabels(t *testing.T) {
	tab := RatioAblation(16, 1000, []float64{0.5, 1.0})
	c := tab.Chart(40, 8)
	// The y extremes are the min and max means across all cells.
	if !strings.Contains(c, "500") { // 0.5 * 1000 on the x axis, rendered
		t.Fatalf("x min missing:\n%s", c)
	}
	if !strings.Contains(c, "1000") {
		t.Fatalf("x max missing:\n%s", c)
	}
}

func TestChartDegenerate(t *testing.T) {
	empty := &Table{}
	if !strings.Contains(empty.Chart(40, 8), "empty") {
		t.Fatal("empty table not handled")
	}
	// Single row, single algorithm, constant value: no division by zero.
	one := &Table{
		Title: "t", XLabel: "x", YLabel: "y",
		Algorithms: []string{"only"},
		Rows:       []Row{{X: 5, Cells: []Cell{{Mean: 7}}}},
	}
	c := one.Chart(3, 2) // clamped up to minimums
	if c == "" || !strings.Contains(c, "only") {
		t.Fatalf("degenerate chart: %q", c)
	}
}

func TestChartCollisionsMarked(t *testing.T) {
	tab := &Table{
		Title: "overlap", XLabel: "x", YLabel: "y",
		Algorithms: []string{"p", "q"},
		Rows: []Row{
			{X: 0, Cells: []Cell{{Mean: 1}, {Mean: 1}}},
			{X: 1, Cells: []Cell{{Mean: 2}, {Mean: 1}}},
		},
	}
	c := tab.Chart(30, 6)
	if !strings.Contains(c, "*") {
		t.Fatalf("coincident points not starred:\n%s", c)
	}
}
