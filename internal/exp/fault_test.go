package exp

import (
	"testing"

	"repro/internal/sim"
)

// TestSweepAggregationMatchesRescan pins the indexed single-pass
// aggregation against the definitionally-correct per-cell rescan: re-run
// every (x, algorithm, trial) job independently, accumulate each cell's
// Stats in trial order, and require the sweep's cells to match
// bit-for-bit. This is the regression test for the former
// O(rows·algos·jobs) aggregation — the rewrite had to preserve the exact
// Add order so golden tables stay byte-identical.
func TestSweepAggregationMatchesRescan(t *testing.T) {
	s := smallMeshSuite()
	sizes := []int{256, 1024}
	algos := []Algorithm{Binomial("U-mesh"), Opt("OPT-mesh")}
	const k = 8

	table, err := s.SweepSizes("t", k, sizes, algos)
	if err != nil {
		t.Fatal(err)
	}

	trials := s.Trials
	for xi, x := range sizes {
		tend, err := s.MeasureTEnd(x)
		if err != nil {
			t.Fatal(err)
		}
		for ai, a := range algos {
			var want Cell
			var lat, blocked, wait sim.Stats
			for tr := 0; tr < trials; tr++ {
				res, err := s.runOnce(a, s.placement(tr, k), x, s.Software.Hold.At(x), tend)
				if err != nil {
					t.Fatal(err)
				}
				lat.Add(float64(res.Latency))
				blocked.Add(float64(res.BlockedCycles))
				wait.Add(float64(res.InjectWaitCycles))
			}
			want = Cell{
				Mean: lat.Mean(), CI95: lat.CI95(),
				Blocked: blocked.Mean(), InjectWait: wait.Mean(),
				N: lat.N(),
			}
			if got := table.Rows[xi].Cells[ai]; got != want {
				t.Errorf("%s at %d: sweep cell %+v != rescan %+v", a.Name, x, got, want)
			}
		}
	}
}

// TestFaultSweepDeterministic: the whole point of seeded fault plans —
// two runs with the same seeds must render byte-identical tables.
func TestFaultSweepDeterministic(t *testing.T) {
	run := func() string {
		tb, err := FaultSweep(smallMeshSuite(), smallBMINSuite(), 8, 1024, []int{0, 2}, 7)
		if err != nil {
			t.Fatal(err)
		}
		return tb.Format()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("fault sweep not reproducible:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestFaultSweepHealthyRow: the 0%% row is a healthy fabric — every run
// must survive, and the cells must carry real latencies.
func TestFaultSweepHealthyRow(t *testing.T) {
	ms, bs := smallMeshSuite(), smallBMINSuite()
	tb, err := FaultSweep(ms, bs, 8, 1024, []int{0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 || len(tb.Rows[0].Cells) != 4 {
		t.Fatalf("table shape %dx%d, want 1x4", len(tb.Rows), len(tb.Rows[0].Cells))
	}
	for ci, c := range tb.Rows[0].Cells {
		if c.N != ms.Trials {
			t.Errorf("%s: healthy row lost runs: N=%d want %d", tb.Algorithms[ci], c.N, ms.Trials)
		}
		if c.Mean <= 0 {
			t.Errorf("%s: healthy latency %g", tb.Algorithms[ci], c.Mean)
		}
	}
}

// TestFaultSweepValidatesPercentages rejects x values outside [0,100].
func TestFaultSweepValidatesPercentages(t *testing.T) {
	for _, pcts := range [][]int{{-1}, {101}, {0, 50, 200}} {
		if _, err := FaultSweep(smallMeshSuite(), smallBMINSuite(), 8, 1024, pcts, 1); err == nil {
			t.Errorf("pcts %v accepted", pcts)
		}
	}
}
