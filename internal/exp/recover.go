package exp

// Experiment F2: reliable delivery under faults. F1 measures what the
// tuned trees deliver with no help — past a few percent dead links
// almost every run loses some destination. F2 reruns the same seeded
// fault plans through the recovery layer (internal/recover: per-send
// timeout + retransmit, OPT-tree repair over the surviving chain,
// binomial fallback) and reports the cost of completing anyway: the
// completion latency, the fraction of destinations delivered next to
// the graph-reachability ceiling, and the retransmission overhead.

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/fault"
	"repro/internal/model"
	recov "repro/internal/recover"
	"repro/internal/sim"
	"repro/internal/wormhole"
)

// F2Tables bundles the three views of experiment F2 over one sweep.
type F2Tables struct {
	// Latency is completion latency (last successful delivery) vs % dead
	// links. Unlike F1, every run contributes: there are no failed runs
	// to exclude, only abandoned (provably cut off) destinations, which
	// do not extend the latency.
	Latency *Table
	// Delivered is the delivered fraction of destinations (percent) next
	// to the reachability-oracle ceiling per fabric — the headline claim
	// is that the two sets of curves coincide.
	Delivered *Table
	// Overhead is the recovery premium per run: retransmits + repair
	// sends + orphan sends, the messages a fault-free execution would
	// not have sent.
	Overhead *Table
}

// RecoverSweep runs experiment F2: the F1 fault sweep with the recovery
// layer turned on. Fault plans use the same per-(row, trial) seed
// formula as FaultSweep, so the two experiments face identical dead-link
// sets and their tables are directly comparable. pcts are the x values
// (percent of fabric-internal links made dead, each in [0,100]).
func RecoverSweep(meshSuite, bminSuite *Suite, k, bytes int, pcts []int, faultSeed uint64) (*F2Tables, error) {
	for _, p := range pcts {
		if p < 0 || p > 100 {
			return nil, fmt.Errorf("exp: fault percentage %d outside [0,100]", p)
		}
	}
	type column struct {
		suite *Suite
		algo  Algorithm
	}
	cols := []column{
		{meshSuite, Binomial("U-mesh")},
		{meshSuite, Opt("OPT-mesh")},
		{bminSuite, Binomial("U-min")},
		{bminSuite, Opt("OPT-min")},
	}
	trials := meshSuite.Trials
	if trials <= 0 {
		trials = 16
	}

	newTable := func(title, ylabel string, algos []string) *Table {
		return &Table{
			Title:      title,
			XLabel:     "failed links (%)",
			YLabel:     ylabel,
			Algorithms: algos,
		}
	}
	algoNames := make([]string, len(cols))
	for i, c := range cols {
		algoNames[i] = c.algo.Name
	}
	f2 := &F2Tables{
		Latency: newTable(
			fmt.Sprintf("F2a: completion latency under recovery vs %% failed links (k=%d, %d-byte messages)", k, bytes),
			"completion latency (cycles, mean over all runs)", algoNames),
		Delivered: newTable(
			fmt.Sprintf("F2b: delivered fraction under recovery vs %% failed links (k=%d, %d-byte messages)", k, bytes),
			"destinations delivered (%, vs reachability-oracle ceiling)",
			append(append([]string{}, algoNames...), "reachable (mesh)", "reachable (BMIN)")),
		Overhead: newTable(
			fmt.Sprintf("F2c: recovery overhead vs %% failed links (k=%d, %d-byte messages)", k, bytes),
			"extra messages per run (retransmits + repair sends + orphan sends, mean)", algoNames),
	}

	// Healthy-fabric calibration, once per suite (as in F1: the tree is
	// planned for the machine as specified, then recovered on the
	// degraded one).
	tends := make([]model.Time, len(cols))
	for i, c := range cols {
		if i > 0 && cols[i-1].suite == c.suite {
			tends[i] = tends[i-1]
			continue
		}
		te, err := c.suite.MeasureTEnd(bytes)
		if err != nil {
			return nil, err
		}
		tends[i] = te
		note := fmt.Sprintf("healthy calibration on %s: t_hold(%dB)=%d t_end(%dB)=%d",
			c.suite.Platform.Name, bytes, c.suite.Software.Hold.At(bytes), bytes, te)
		f2.Latency.Notes = append(f2.Latency.Notes, note)
	}
	f2.Latency.Notes = append(f2.Latency.Notes, fmt.Sprintf("%d random placements per point, placement seed %d, fault seed %d (same plans as F1)",
		trials, meshSuite.Seed, faultSeed))
	f2.Delivered.Notes = append(f2.Delivered.Notes,
		"reachable columns are the graph-reachability oracle (recover.Reachable) on the same fault plans;",
		"delivered ~= reachable means recovery completes whenever a route exists")

	type job struct{ pi, ci, trial int }
	var jobs []job
	for pi := range pcts {
		for ci := range cols {
			for tr := 0; tr < trials; tr++ {
				jobs = append(jobs, job{pi, ci, tr})
			}
		}
	}
	results := make([]recov.Result, len(jobs))
	reachFrac := make([]float64, len(jobs)) // valid on each suite's first column
	errs := make([]error, len(jobs))
	sim.ForEach(len(jobs), meshSuite.Workers, func(i int) {
		j := jobs[i]
		c := cols[j.ci]
		net := c.suite.Platform.NewNet()
		var fp *fault.Plan
		if pct := pcts[j.pi]; pct > 0 {
			// Same seed formula as F1, independent of the column: the two
			// mesh algorithms face identical dead-link sets, and F2's plans
			// match F1's row for row.
			fp = fault.MustPlan(net.Topology(), fault.Spec{
				DeadFrac: float64(pct) / 100,
				Seed:     faultSeed + uint64(j.pi)*0x9e3779b9 + uint64(j.trial)*0x85ebca6b,
			})
			net.SetFaults(fp)
		}
		addrs := c.suite.placement(j.trial, k)
		ch := chain.New(addrs, c.suite.Platform.Less)
		root, ok := ch.Index(addrs[0])
		if !ok {
			errs[i] = fmt.Errorf("exp: source %d not in chain", addrs[0])
			return
		}
		thold := c.suite.Software.Hold.At(bytes)
		tab := c.algo.Table(len(ch), thold, tends[j.ci])
		res, err := recov.Run(net, tab, ch, root, bytes, recov.Config{
			Sim:  c.suite.runConfig(),
			TEnd: tends[j.ci],
			Seed: faultSeed + uint64(j.pi)*0x9e3779b9 + uint64(j.trial)*0x85ebca6b + uint64(j.ci)*0xc2b2ae35,
		})
		if err != nil {
			errs[i] = err
			return
		}
		results[i] = res
		if j.ci == 0 || cols[j.ci-1].suite != c.suite {
			// Oracle once per (suite, row, trial) — it depends on the fault
			// plan and placement, not the algorithm. The 0% row has no plan:
			// pass a nil interface, not a typed-nil *fault.Plan.
			var fm wormhole.FaultModel
			if fp != nil {
				fm = fp
			}
			n := 0
			for _, ok := range recov.Reachable(net.Topology(), fm, ch, root) {
				if ok {
					n++
				}
			}
			reachFrac[i] = 100 * float64(n-1) / float64(len(ch)-1)
		}
	})
	for i, err := range errs {
		if err != nil {
			j := jobs[i]
			return nil, fmt.Errorf("exp: %s at %d%% trial %d: %w", cols[j.ci].algo.Name, pcts[j.pi], j.trial, err)
		}
	}

	type agg struct {
		lat, frac, over sim.Stats
		fallbacks       int
	}
	aggs := make([]agg, len(pcts)*len(cols))
	oracle := make([]sim.Stats, len(pcts)*2) // (row, suite) reachable fraction
	for i, j := range jobs {
		a := &aggs[j.pi*len(cols)+j.ci]
		res := &results[i]
		a.lat.Add(float64(res.Latency))
		a.frac.Add(100 * float64(res.Delivered) / float64(res.Delivered+res.Abandoned))
		oh := res.Overhead
		a.over.Add(float64(oh.Retransmits + oh.RepairSends + oh.OrphanSends))
		if res.FallbackAt >= 0 {
			a.fallbacks++
		}
		if j.ci == 0 || cols[j.ci-1].suite != cols[j.ci].suite {
			si := 0
			if cols[j.ci].suite != meshSuite {
				si = 1
			}
			oracle[j.pi*2+si].Add(reachFrac[i])
		}
	}
	f2.Latency.Rows = make([]Row, len(pcts))
	f2.Delivered.Rows = make([]Row, len(pcts))
	f2.Overhead.Rows = make([]Row, len(pcts))
	for pi, p := range pcts {
		latRow := Row{X: float64(p), Cells: make([]Cell, len(cols))}
		delRow := Row{X: float64(p), Cells: make([]Cell, len(cols)+2)}
		ovrRow := Row{X: float64(p), Cells: make([]Cell, len(cols))}
		for ci := range cols {
			a := &aggs[pi*len(cols)+ci]
			latRow.Cells[ci] = Cell{Mean: a.lat.Mean(), CI95: a.lat.CI95(), N: a.lat.N()}
			delRow.Cells[ci] = Cell{Mean: a.frac.Mean(), CI95: a.frac.CI95(), N: a.frac.N()}
			ovrRow.Cells[ci] = Cell{Mean: a.over.Mean(), CI95: a.over.CI95(), N: a.over.N()}
			if a.fallbacks > 0 {
				f2.Overhead.Notes = append(f2.Overhead.Notes, fmt.Sprintf("%s at %d%%: %d/%d runs fell back to binomial over survivors",
					cols[ci].algo.Name, p, a.fallbacks, trials))
			}
		}
		for si := 0; si < 2; si++ {
			o := &oracle[pi*2+si]
			delRow.Cells[len(cols)+si] = Cell{Mean: o.Mean(), CI95: o.CI95(), N: o.N()}
		}
		f2.Latency.Rows[pi] = latRow
		f2.Delivered.Rows[pi] = delRow
		f2.Overhead.Rows[pi] = ovrRow
	}
	return f2, nil
}
